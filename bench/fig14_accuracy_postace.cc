/**
 * @file
 * Figure 14: MeRLiN's class distribution vs injection of the complete
 * post-ACE fault list (ground truth over survivors), for the three
 * structures.  The paper reports near-identical distributions.
 */

#include "bench/common.hh"
#include "faultsim/fault.hh"

using namespace merlin;
using namespace merlin::bench;
using faultsim::Outcome;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t default_faults = 4'000;
    header("Figure 14 (accuracy vs full post-ACE injection)",
           "class distribution: full survivor injection vs MeRLiN", opts,
           default_faults);

    auto names = opts.workloadsOr({"qsort", "fft", "sha"});
    const uarch::Structure structs[] = {uarch::Structure::RegisterFile,
                                        uarch::Structure::StoreQueue,
                                        uarch::Structure::L1DCache};

    for (auto s : structs) {
        const unsigned v = sizeVariants(s)[1];
        core::ClassCounts truth, est;
        double max_err = 0;
        for (const auto &name : names) {
            auto w = workloads::buildWorkload(name);
            core::CampaignConfig cc;
            cc.target = s;
            cc.core = configFor(s, v);
            cc.sampling = opts.sampling(default_faults);
            cc.seed = opts.seed;
            cc.jobs = opts.jobs;
            core::Campaign camp(w.program, cc);
            auto r = camp.run(/*inject_all_survivors=*/true);
            truth = truth + *r.survivorTruth;
            est = est + r.merlinSurvivorEstimate;
            max_err = std::max(
                max_err, r.merlinSurvivorEstimate.maxInaccuracyVs(
                             *r.survivorTruth));
        }
        std::printf("\n-- %s (%s), %llu survivor faults --\n",
                    uarch::structureName(s), sizeLabel(s, v).c_str(),
                    static_cast<unsigned long long>(truth.total()));
        std::printf("%-10s %14s %14s\n", "class", "full-injection",
                    "MeRLiN");
        for (unsigned c = 0; c < faultsim::NUM_OUTCOMES; ++c) {
            const Outcome o = static_cast<Outcome>(c);
            if (truth.of(o) == 0 && est.of(o) == 0)
                continue;
            std::printf("%-10s %13.2f%% %13.2f%%\n",
                        faultsim::outcomeName(o),
                        100.0 * truth.fraction(o),
                        100.0 * est.fraction(o));
        }
        std::printf("worst per-workload inaccuracy: %.2f percentile "
                    "units\n", max_err);
    }
    std::printf("\nShape check: MeRLiN tracks the full injection within "
                "a few percentile units\nper class (paper: negligible "
                "differences across Figure 14).\n");
    return 0;
}
