/**
 * @file
 * Figure 17: per-class inaccuracy (percentile units) of MeRLiN vs the
 * Relyzer control-equivalence heuristic (depth-5 paths, one random
 * pilot per group), both measured against injection of the complete
 * post-ACE fault list.  Configuration: 128 regs, 16 SQ, 32KB L1D.
 */

#include "bench/common.hh"
#include "faultsim/fault.hh"

using namespace merlin;
using namespace merlin::bench;
using faultsim::Outcome;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t default_faults = 4'000;
    header("Figure 17 (MeRLiN vs Relyzer heuristic inaccuracy)",
           "vs full post-ACE injection; path depth 5", opts,
           default_faults);

    auto names = opts.workloadsOr({"qsort", "fft", "sha"});
    const uarch::Structure structs[] = {uarch::Structure::RegisterFile,
                                        uarch::Structure::StoreQueue,
                                        uarch::Structure::L1DCache};
    // Paper's worst classes: Relyzer up to ~4.1 units; MeRLiN ~1.1.
    const double paper_worst_relyzer[] = {4.01, 3.35, 4.12};
    const double paper_worst_merlin[] = {1.10, 0.92, 1.06};

    for (int si = 0; si < 3; ++si) {
        uarch::Structure s = structs[si];
        uarch::CoreConfig base =
            uarch::CoreConfig{}.withRegisterFile(128).withStoreQueue(16)
                .withL1dKb(32);
        double worst_m = 0, worst_r = 0;
        std::uint64_t inj_m = 0, inj_r = 0, surv = 0;
        for (const auto &name : names) {
            auto w = workloads::buildWorkload(name);
            core::CampaignConfig cc;
            cc.target = s;
            cc.core = base;
            cc.sampling = opts.sampling(default_faults);
            cc.seed = opts.seed;
            cc.jobs = opts.jobs;
            {
                core::Campaign camp(w.program, cc);
                auto r = camp.run(/*inject_all=*/true);
                worst_m = std::max(
                    worst_m, r.merlinSurvivorEstimate.maxInaccuracyVs(
                                 *r.survivorTruth));
                inj_m += r.injections;
                surv += r.survivors;
            }
            {
                core::Campaign camp(w.program, cc);
                auto r = camp.runRelyzer(/*inject_all=*/true, 5);
                worst_r = std::max(
                    worst_r, r.merlinSurvivorEstimate.maxInaccuracyVs(
                                 *r.survivorTruth));
                inj_r += r.injections;
            }
        }
        std::printf("\n-- %s --\n", uarch::structureName(s));
        std::printf("survivors: %llu; injections MeRLiN %llu vs Relyzer "
                    "%llu\n",
                    static_cast<unsigned long long>(surv),
                    static_cast<unsigned long long>(inj_m),
                    static_cast<unsigned long long>(inj_r));
        std::printf("worst-class inaccuracy: MeRLiN %.2f  Relyzer %.2f   "
                    "(paper: %.2f vs %.2f)\n",
                    worst_m, worst_r, paper_worst_merlin[si],
                    paper_worst_relyzer[si]);
    }
    std::printf("\nShape check: comparable injection counts but the "
                "Relyzer heuristic shows the\nlarger worst-class error "
                "(single pilots for big loop groups), as in Figure 17.\n");
    return 0;
}
