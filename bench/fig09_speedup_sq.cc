/**
 * @file
 * Figure 9: MeRLiN speedup for the store queue data field
 * (64/32/16 entries) over 10 MiBench workloads.
 */

#include "bench/speedup_common.hh"

int
main(int argc, char **argv)
{
    merlin::bench::PaperAverages paper{"Figure 9 (SQ speedup)",
                                       {224.9, 186.7, 146.9}};
    return merlin::bench::runSpeedupFigure(
        merlin::uarch::Structure::StoreQueue, argc, argv, paper);
}
