/**
 * @file
 * Figure 8: MeRLiN speedup for the physical integer register file
 * (256/128/64 registers) over 10 MiBench workloads.
 */

#include "bench/speedup_common.hh"

int
main(int argc, char **argv)
{
    merlin::bench::PaperAverages paper{"Figure 8 (RF speedup)",
                                       {93.1, 62.1, 43.7}};
    return merlin::bench::runSpeedupFigure(
        merlin::uarch::Structure::RegisterFile, argc, argv, paper);
}
