/**
 * @file
 * Figure 13: speedup scaling when the initial fault list grows 10x
 * (paper: 60,000 faults at 0.63% error margin vs 600,000 at 0.19%).
 * MeRLiN's speedup grows with list size because groups absorb the extra
 * faults; the paper reports a 3.46x average speedup scaling.
 *
 * Default uses the paper's 60K/600K unless --faults=N overrides the
 * small list (the large list is always 10x the small one).  All
 * 9 x |workloads| x 2 campaigns run as one shared-pool suite
 * (--jobs=N), so the bench's wall clock drops near-linearly with
 * cores while the numbers stay bit-identical.
 */

#include "bench/common.hh"
#include "sched/suite.hh"

using namespace merlin;
using namespace merlin::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t small = opts.faults ? opts.faults : 60'000;
    const std::uint64_t large = small * 10;
    header("Figure 13 (speedup scaling with fault-list size)",
           "60K vs 600K initial faults, 10 MiBench average", opts, small);

    auto names = opts.workloadsOr(workloads::mibenchWorkloads());

    struct Row
    {
        uarch::Structure s;
        unsigned variant;
        double paper_small, paper_large;
    };
    const Row rows[] = {
        {uarch::Structure::L1DCache, 64, 69.2, 348.5},
        {uarch::Structure::L1DCache, 32, 70.1, 303.8},
        {uarch::Structure::L1DCache, 16, 69.5, 292.6},
        {uarch::Structure::StoreQueue, 64, 298.0, 929.5},
        {uarch::Structure::StoreQueue, 32, 252.8, 686.5},
        {uarch::Structure::StoreQueue, 16, 200.5, 547.3},
        {uarch::Structure::RegisterFile, 256, 130.2, 367.1},
        {uarch::Structure::RegisterFile, 128, 81.3, 259.6},
        {uarch::Structure::RegisterFile, 64, 60.9, 183.7},
    };

    // One grouping-only spec per (row, workload, list size), run as a
    // single suite in print order.
    std::vector<sched::CampaignSpec> specs;
    specs.reserve(std::size(rows) * names.size() * 2);
    for (const Row &row : rows) {
        for (const auto &name : names) {
            for (int pass = 0; pass < 2; ++pass) {
                sched::CampaignSpec s;
                s.workload = name;
                s.structure = row.s;
                s.window = 0;
                switch (row.s) {
                  case uarch::Structure::RegisterFile:
                    s.regs = row.variant;
                    break;
                  case uarch::Structure::StoreQueue:
                    s.sqEntries = row.variant;
                    break;
                  case uarch::Structure::L1DCache:
                    s.l1dKb = row.variant;
                    break;
                }
                s.sampling = core::specFixed(pass ? large : small);
                s.seed = opts.seed;
                s.mode = sched::CampaignSpec::Mode::GroupingOnly;
                specs.push_back(std::move(s));
            }
        }
    }
    sched::SuiteOptions sopts;
    sopts.jobs = opts.jobs;
    sched::SuiteResult suite =
        sched::SuiteScheduler(specs, sopts).run();

    std::printf("\n%-10s %-10s %12s %12s %9s %22s\n", "structure",
                "size", "speedup@1x", "speedup@10x", "scaling",
                "paper (1x / 10x)");
    double scale_sum = 0;
    std::size_t at = 0;
    for (const Row &row : rows) {
        double s1 = 0, s10 = 0;
        for (std::size_t wi = 0; wi < names.size(); ++wi) {
            s1 += suite.results[at++].speedupTotal;
            s10 += suite.results[at++].speedupTotal;
        }
        s1 /= names.size();
        s10 /= names.size();
        scale_sum += s10 / s1;
        std::printf("%-10s %-10s %11.1fX %11.1fX %8.2fx %12.1f / %.1f\n",
                    uarch::structureName(row.s),
                    sizeLabel(row.s, row.variant).c_str(), s1, s10,
                    s10 / s1, row.paper_small, row.paper_large);
    }
    std::printf("\naverage speedup scaling: %.2fx (paper: 3.46x)\n",
                scale_sum / std::size(rows));
    std::printf("suite wall clock: %.2fs over %zu campaigns "
                "(--jobs=%u)\n",
                suite.wallSeconds, specs.size(), opts.jobs);
    std::printf("Shape check: a 10x larger list yields well under 10x "
                "more injections.\n");
    return 0;
}
