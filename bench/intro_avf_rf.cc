/**
 * @file
 * Section 1 motivating measurement: injection-based AVF of the physical
 * integer register file vs its size, against the ACE-like upper bound.
 * The paper reports 2.56% / 4.81% / 8.92% for 256 / 128 / 64 registers
 * (and ~25-30% from classic ACE analysis on an 80-register file) —
 * AVF must *rise* as the file shrinks because fewer entries are dead.
 */

#include "bench/common.hh"

using namespace merlin;
using namespace merlin::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t default_faults = 3'000;
    header("Section 1 (RF AVF vs size)",
           "injection AVF against the ACE-like bound", opts,
           default_faults);

    auto names = opts.workloadsOr({"qsort", "sha", "fft"});
    const double paper_avf[] = {2.56, 4.81, 8.92};

    std::printf("\n%-10s %14s %14s %16s\n", "registers",
                "injection AVF", "ACE-like AVF", "paper injection");
    const auto &variants = sizeVariants(uarch::Structure::RegisterFile);
    for (unsigned vi = 0; vi < variants.size(); ++vi) {
        double avf = 0, ace = 0;
        for (const auto &name : names) {
            auto w = workloads::buildWorkload(name);
            core::CampaignConfig cc;
            cc.target = uarch::Structure::RegisterFile;
            cc.core = configFor(uarch::Structure::RegisterFile,
                                variants[vi]);
            cc.sampling = opts.sampling(default_faults);
            cc.seed = opts.seed;
            cc.jobs = opts.jobs;
            core::Campaign camp(w.program, cc);
            auto r = camp.run(false);
            avf += r.merlinEstimate.avf();
            ace += r.aceAvf;
        }
        avf /= names.size();
        ace /= names.size();
        std::printf("%-10u %13.2f%% %13.2f%% %15.2f%%\n", variants[vi],
                    100 * avf, 100 * ace, paper_avf[vi]);
    }
    std::printf("\nShape check: AVF rises monotonically as the register "
                "file shrinks, and the\nACE-like bound sits above the "
                "injection AVF at every size — the gap that\nmotivates "
                "injection-based assessment in the first place.\n");
    return 0;
}
