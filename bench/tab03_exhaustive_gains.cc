/**
 * @file
 * Table 3: gains over the exhaustive fault list (every bit x every
 * cycle) for MeRLiN vs Relyzer.  The exhaustive population and the
 * remaining-fault counts are computed from measured campaign data; the
 * evaluation-time columns use measured simulator throughput in place of
 * the paper's assumed 1e5 cycles/s (gem5 full-system) and 1e6 (software
 * emulation).
 */

#include <chrono>

#include "bench/common.hh"
#include "sched/suite.hh"
#include "uarch/core.hh"

using namespace merlin;
using namespace merlin::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    header("Table 3 (exhaustive-list gains, MeRLiN vs Relyzer)",
           "analytic, from measured reduction rates and throughput",
           opts, 60'000);

    // Measured microarchitectural simulator throughput.
    auto w = workloads::buildWorkload("qsort");
    auto t0 = std::chrono::steady_clock::now();
    uarch::Core core(w.program, uarch::CoreConfig{});
    core.run();
    double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    const double cyc_per_sec = core.stats().cycles / dt;

    // Representative structures, as in the paper's example: L1D 32KB,
    // SQ 16, RF 64 over one workload's full run.
    const double cycles = static_cast<double>(core.stats().cycles);
    const double bits = 64.0 * 64 + 16.0 * 64 +
                        32.0 * 1024 * 8; // RF + SQ + L1D data bits
    const double exhaustive = bits * cycles;

    // MeRLiN reduction rate measured at 60K scale: the three
    // per-structure counting campaigns as one shared-pool suite.
    std::vector<sched::CampaignSpec> specs;
    for (auto s : {uarch::Structure::RegisterFile,
                   uarch::Structure::StoreQueue,
                   uarch::Structure::L1DCache}) {
        sched::CampaignSpec spec;
        spec.workload = "qsort";
        spec.structure = s;
        spec.regs = 64;
        spec.sqEntries = 16;
        spec.l1dKb = 32;
        spec.window = 0;
        spec.sampling = core::specFixed(60'000);
        spec.seed = opts.seed;
        spec.mode = sched::CampaignSpec::Mode::GroupingOnly;
        specs.push_back(std::move(spec));
    }
    sched::SuiteOptions sopts;
    sopts.jobs = opts.jobs;
    sched::SuiteResult suite =
        sched::SuiteScheduler(specs, sopts).run();
    double keep_rate_sum = 0;
    for (const core::CampaignResult &r : suite.results) {
        keep_rate_sum += static_cast<double>(r.injections) /
                         static_cast<double>(r.initialFaults);
    }
    const double keep_rate = keep_rate_sum / 3.0;

    const double merlin_remaining = exhaustive * keep_rate;
    const double merlin_gain = exhaustive / merlin_remaining;
    // Relyzer's published gain over its (software-level) exhaustive
    // list: 3-5 orders of magnitude; the paper's Table 3 uses 1e5.
    const double relyzer_gain = 1e5;

    auto years = [&](double runs) {
        return runs * (cycles / cyc_per_sec) / (365.0 * 24 * 3600);
    };

    std::printf("\nmeasured: %.0f cycles/run, %.2fM cycles/s, MeRLiN "
                "keeps %.4f%% of faults\n",
                cycles, cyc_per_sec / 1e6, 100.0 * keep_rate);
    std::printf("\n%-10s %14s %14s %10s %16s %16s\n", "method",
                "exhaustive", "remaining", "gain", "time(exhaustive)",
                "time(remaining)");
    std::printf("%-10s %14.2e %14.2e %9.0fX %13.1f yr %13.2f days\n",
                "MeRLiN", exhaustive, merlin_remaining, merlin_gain,
                years(exhaustive), years(merlin_remaining) * 365);
    std::printf("%-10s %14.2e %14.2e %9.0fX %16s %16s\n", "Relyzer",
                exhaustive / 100, exhaustive / 100 / relyzer_gain,
                relyzer_gain, "(paper: 3e6 yr)", "(paper: 32 yr)");
    std::printf("\npaper's Table 3: MeRLiN 1e13 -> 1e3 (1e10 gain); "
                "Relyzer 1e11 -> 1e6 (1e5 gain).\n");
    std::printf("Shape check: MeRLiN's gain over the exhaustive list "
                "exceeds Relyzer's by orders\nof magnitude because the "
                "statistical sample (not the program length) bounds the\n"
                "injected set.\n");
    return 0;
}
