/**
 * @file
 * Ablation (DESIGN.md): the design choices inside MeRLiN's grouping —
 * step-2 split granularity (none / byte / nibble, Section 3.2.2 says
 * byte suffices) and the max-group-size cap (time diversity).  For each
 * variant: injected representatives, final speedup, and accuracy vs the
 * same ground truth.
 */

#include "bench/common.hh"
#include "faultsim/fault.hh"

using namespace merlin;
using namespace merlin::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t default_faults = 4'000;
    header("Ablation (grouping design choices)",
           "split granularity and group-size cap, RF-128", opts,
           default_faults);

    auto names = opts.workloadsOr({"qsort", "fft"});

    struct Variant
    {
        const char *label;
        core::GroupingOptions o;
    };
    std::vector<Variant> variants;
    {
        core::GroupingOptions o;
        o.split = core::GroupingOptions::Split::None;
        variants.push_back({"no split (step 2 off)", o});
        o.split = core::GroupingOptions::Split::Byte;
        variants.push_back({"byte split (paper)", o});
        o.split = core::GroupingOptions::Split::Nibble;
        variants.push_back({"nibble split", o});
        o.split = core::GroupingOptions::Split::Bit;
        variants.push_back({"bit split", o});
        o.split = core::GroupingOptions::Split::Byte;
        o.maxGroupSize = 10;
        variants.push_back({"byte split, cap 10", o});
        o.maxGroupSize = 1000000;
        variants.push_back({"byte split, no cap", o});
        o = core::GroupingOptions{};
        o.repsPerGroup = 3;
        variants.push_back({"3-rep majority vote", o});
    }

    std::printf("\n%-22s %10s %10s %12s %14s\n", "variant", "groups",
                "injected", "speedup", "inaccuracy");
    for (const auto &v : variants) {
        std::uint64_t groups = 0, injected = 0;
        double speedup = 0, inacc = 0;
        for (const auto &name : names) {
            auto w = workloads::buildWorkload(name);
            core::CampaignConfig cc;
            cc.target = uarch::Structure::RegisterFile;
            cc.core = uarch::CoreConfig{}.withRegisterFile(128);
            cc.sampling = opts.sampling(default_faults);
            cc.grouping = v.o;
            cc.seed = opts.seed;
            cc.jobs = opts.jobs;
            core::Campaign camp(w.program, cc);
            auto r = camp.run(/*inject_all=*/true);
            groups += r.numGroups;
            injected += r.injections;
            speedup += r.speedupTotal;
            inacc = std::max(
                inacc, r.merlinSurvivorEstimate.maxInaccuracyVs(
                           *r.survivorTruth));
        }
        std::printf("%-22s %10llu %10llu %11.1fX %11.2f pp\n", v.label,
                    static_cast<unsigned long long>(groups),
                    static_cast<unsigned long long>(injected),
                    speedup / names.size(), inacc);
    }
    std::printf("\nShape check: coarser grouping buys speedup at an "
                "accuracy cost; byte split\nrecovers most accuracy "
                "(nibble adds injections for little gain — the paper's\n"
                "\"not necessary\" claim); removing the cap inflates "
                "groups and the error of\nunlucky representatives.\n");
    return 0;
}
