/**
 * @file
 * google-benchmark microbenchmarks of the substrates: out-of-order core
 * throughput, functional interpreter throughput, cache access path,
 * ACE-like profiling overhead, fault-list grouping throughput, and the
 * checkpointed multi-threaded injection engine (per-injection time and
 * speedup against the seed serial from-cycle-0 path).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench/common.hh"
#include "faultsim/runner.hh"
#include "io/result_store.hh"
#include "isa/interp.hh"
#include "merlin/campaign.hh"
#include "merlin/grouping.hh"
#include "merlin/sampling.hh"
#include "profile/ace.hh"
#include "sched/suite.hh"
#include "uarch/core.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace merlin;

const workloads::BuiltWorkload &
qsortWorkload()
{
    static auto w = workloads::buildWorkload("qsort");
    return w;
}

void
BM_CoreRun(benchmark::State &state)
{
    const auto &w = qsortWorkload();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        uarch::Core core(w.program, uarch::CoreConfig{});
        core.run();
        cycles += core.stats().cycles;
    }
    state.counters["Mcycles/s"] = benchmark::Counter(
        static_cast<double>(cycles) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreRun)->Unit(benchmark::kMillisecond);

void
BM_CoreRunProfiled(benchmark::State &state)
{
    const auto &w = qsortWorkload();
    uarch::CoreConfig cfg;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        profile::AceProfiler prof(cfg.numPhysIntRegs, cfg.sqEntries,
                                  cfg.l1d.totalWords());
        uarch::Core core(w.program, cfg, &prof);
        core.run();
        prof.finalize();
        cycles += core.stats().cycles;
    }
    state.counters["Mcycles/s"] = benchmark::Counter(
        static_cast<double>(cycles) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreRunProfiled)->Unit(benchmark::kMillisecond);

void
BM_Interp(benchmark::State &state)
{
    const auto &w = qsortWorkload();
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        auto r = isa::interpret(w.program);
        instrs += r.instret;
    }
    state.counters["Minstr/s"] = benchmark::Counter(
        static_cast<double>(instrs) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Interp)->Unit(benchmark::kMillisecond);

void
BM_CacheAccess(benchmark::State &state)
{
    isa::SegmentedMemory mem;
    mem.addSegment(0x10000, 1 << 20, isa::PermRead | isa::PermWrite);
    uarch::Cache l2("l2", uarch::CacheConfig{256 * 1024, 8, 64, 12},
                    nullptr, &mem);
    uarch::Cache l1("l1", uarch::CacheConfig{32 * 1024, 4, 64, 3}, &l2,
                    nullptr);
    Rng rng(1);
    std::uint64_t n = 0;
    for (auto _ : state) {
        Addr a = 0x10000 + (rng.nextBelow((1 << 20) - 64) & ~7ULL);
        auto r = l1.access(a, false, n, 0, 0);
        benchmark::DoNotOptimize(l1.readBytes(r.set, r.way, a & 63, 8));
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CacheAccess);

void
BM_GroupingThroughput(benchmark::State &state)
{
    const auto &w = qsortWorkload();
    uarch::CoreConfig cfg;
    profile::AceProfiler prof(cfg.numPhysIntRegs, cfg.sqEntries,
                              cfg.l1d.totalWords());
    uarch::Core core(w.program, cfg, &prof);
    core.run();
    prof.finalize();
    Rng sample_rng(3);
    auto faults = core::sampleFaults(
        uarch::Structure::RegisterFile, cfg.numPhysIntRegs,
        core.stats().cycles, core::specFixed(state.range(0)), sample_rng);
    std::uint64_t total = 0;
    for (auto _ : state) {
        Rng rng(7);
        auto res = core::groupFaults(
            faults, prof.profile(uarch::Structure::RegisterFile),
            core::GroupingOptions{}, rng);
        benchmark::DoNotOptimize(res.groups.data());
        total += faults.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_GroupingThroughput)->Arg(60000)->Arg(600000)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------- snapshot substrate (COW)

/**
 * Snapshot capture cost, deep (the seed engine's full duplication of
 * memory + cache arrays, emulated by detaching every COW chunk) vs
 * COW (pointer-table copy).  Arg: 0 = deep, 1 = cow.  The bytes/s
 * counter is SnapshotStats::bytesCopied throughput.
 */
void
BM_SnapshotCapture(benchmark::State &state)
{
    const auto &w = qsortWorkload();
    uarch::CoreConfig cfg;
    const bool deep = state.range(0) == 0;
    uarch::Core core(w.program, cfg);
    while (core.cycle() < 2000 && core.tick()) {
    }
    std::uint64_t copied = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        uarch::SnapshotStats st;
        auto snap = core.snapshot(&st, deep);
        benchmark::DoNotOptimize(snap);
        copied += st.bytesCopied;
        ++n;
    }
    state.counters["MB_copied/snap"] = static_cast<double>(copied) /
                                       static_cast<double>(n) / 1e6;
}
BENCHMARK(BM_SnapshotCapture)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"cow"})
    ->Unit(benchmark::kMicrosecond);

/** Restore cost from one snapshot, deep vs COW (Arg as above). */
void
BM_SnapshotRestore(benchmark::State &state)
{
    const auto &w = qsortWorkload();
    uarch::CoreConfig cfg;
    const bool deep = state.range(0) == 0;
    uarch::Core core(w.program, cfg);
    while (core.cycle() < 2000 && core.tick()) {
    }
    const auto snap = core.snapshot();
    std::uint64_t copied = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        uarch::SnapshotStats st;
        uarch::Core restored(w.program, cfg, snap, &st, deep);
        benchmark::DoNotOptimize(restored.cycle());
        copied += st.bytesCopied;
        ++n;
    }
    state.counters["MB_copied/restore"] = static_cast<double>(copied) /
                                          static_cast<double>(n) / 1e6;
}
BENCHMARK(BM_SnapshotRestore)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"cow"})
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------ injection engine

/** Random RF faults over the golden run, identical for every bench. */
std::vector<faultsim::Fault>
engineFaults(const faultsim::GoldenRun &g, const uarch::CoreConfig &cfg,
             std::size_t n)
{
    Rng rng(11);
    std::vector<faultsim::Fault> faults;
    faults.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        faultsim::Fault f;
        f.structure = uarch::Structure::RegisterFile;
        f.entry = static_cast<EntryIndex>(
            rng.nextBelow(cfg.numPhysIntRegs));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        f.cycle = rng.nextBelow(g.stats.cycles);
        faults.push_back(f);
    }
    return faults;
}

/**
 * Seed serial path: no checkpoints, every injection re-simulates from
 * cycle 0, one at a time.
 */
void
BM_InjectSeedSerial(benchmark::State &state)
{
    const auto &w = qsortWorkload();
    uarch::CoreConfig cfg;
    // Replay off: this bench IS the legacy baseline the fast paths
    // are measured against, so it must not take their shortcuts.
    faultsim::RunnerOptions opts;
    opts.checkpointInterval = 0;
    opts.replay = false;
    faultsim::InjectionRunner runner(w.program, cfg, opts);
    const auto g = runner.golden();
    const auto faults = engineFaults(g, cfg, 32);
    std::uint64_t n = 0;
    for (auto _ : state) {
        for (const auto &f : faults)
            benchmark::DoNotOptimize(runner.inject(f, g));
        n += faults.size();
    }
    state.counters["inject/s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InjectSeedSerial)->Unit(benchmark::kMillisecond);

/** Checkpointed path, still single-threaded (jobs = 1). */
void
BM_InjectCheckpointed(benchmark::State &state)
{
    const auto &w = qsortWorkload();
    uarch::CoreConfig cfg;
    // Replay off, isolating the checkpoint win alone.
    faultsim::RunnerOptions opts;
    opts.replay = false;
    faultsim::InjectionRunner runner(w.program, cfg, opts);
    const auto g = runner.golden();
    const auto faults = engineFaults(g, cfg, 32);
    std::uint64_t n = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runner.injectBatch(faults, g, 1));
        n += faults.size();
    }
    state.counters["inject/s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InjectCheckpointed)->Unit(benchmark::kMillisecond);

/**
 * Full engine (checkpoints + thread pool) against the seed serial path
 * on the same fault list.  Arg = jobs.  The "speedup" counter is the
 * acceptance-criterion number: seed serial wall clock / engine wall
 * clock per batch.
 */
void
BM_InjectEngineSpeedup(benchmark::State &state)
{
    const auto &w = qsortWorkload();
    uarch::CoreConfig cfg;
    const unsigned jobs = static_cast<unsigned>(state.range(0));
    // Replay off on BOTH sides: the counter isolates checkpoints +
    // pool against the seed path (BM_ReplayFastForward owns replay).
    faultsim::RunnerOptions opts;
    opts.checkpointInterval = 0;
    opts.replay = false;
    faultsim::InjectionRunner seed_runner(w.program, cfg, opts);
    opts.checkpointInterval =
        faultsim::RunnerOptions::kDefaultCheckpointInterval;
    faultsim::InjectionRunner runner(w.program, cfg, opts);
    const auto g = runner.golden();
    const auto faults = engineFaults(g, cfg, 64);

    // Seed-path reference, measured once outside the timing loop.
    // Golden capture is excluded on both sides: only injection time is
    // compared.
    const auto g_seed = seed_runner.golden();
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto &f : faults)
        benchmark::DoNotOptimize(seed_runner.inject(f, g_seed));
    const double seed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::uint64_t n = 0;
    double engine_seconds = 0;
    for (auto _ : state) {
        const auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(runner.injectBatch(faults, g, jobs));
        engine_seconds += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t1)
                              .count();
        n += faults.size();
    }
    state.counters["inject/s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
    state.counters["ms/inject"] =
        1e3 * engine_seconds / static_cast<double>(n);
    state.counters["speedup"] =
        engine_seconds > 0
            ? seed_seconds * (static_cast<double>(n) / faults.size()) /
                  engine_seconds
            : 0.0;
}
BENCHMARK(BM_InjectEngineSpeedup)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/**
 * Golden-reconvergence early exit, off vs on (Arg), on one RF
 * campaign's worth of random faults.  Runs that provably rejoin the
 * golden state stop at the next checkpoint instead of simulating to
 * program end; the ee% counter reports how many did.
 */
void
BM_EarlyExit(benchmark::State &state)
{
    const auto &w = qsortWorkload();
    uarch::CoreConfig cfg;
    faultsim::RunnerOptions opts;
    opts.earlyExit = state.range(0) != 0;
    // Replay off so the off-vs-on delta is the early exit alone.
    opts.replay = false;
    faultsim::InjectionRunner runner(w.program, cfg, opts);
    const auto g = runner.golden();
    const auto faults = engineFaults(g, cfg, 64);
    std::uint64_t n = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runner.injectBatch(faults, g, 1));
        n += faults.size();
    }
    const auto st = runner.injectionStats();
    state.counters["inject/s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
    state.counters["ee%"] =
        st.runs ? 100.0 * static_cast<double>(st.earlyExits) /
                      static_cast<double>(st.runs)
                : 0.0;
}
BENCHMARK(BM_EarlyExit)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"on"})
    ->Unit(benchmark::kMillisecond);

/**
 * Golden-trace replay fast path against full simulation on the same
 * random RF fault list.  Most random flips land on dead bytes: the
 * trace classifies them Masked with zero simulation, and diverging
 * flips resume from the last pre-divergence checkpoint instead of the
 * one behind the fault.  The full-sim reference is measured once
 * outside the timing loop (same early-exit setting on both sides, so
 * the delta is the head cost alone); "head_speedup" is the acceptance
 * number, also recorded as bench.replay_head_speedup for --json.
 */
void
BM_ReplayFastForward(benchmark::State &state)
{
    const auto &w = qsortWorkload();
    // The paper's smallest RF variant: enough live entries that the
    // fault list mixes Masked shortcuts with genuine handoffs, so the
    // measured speedup covers both replay paths.
    const uarch::CoreConfig cfg =
        uarch::CoreConfig{}.withRegisterFile(64);
    faultsim::RunnerOptions opts;
    opts.replay = false;
    faultsim::InjectionRunner slow(w.program, cfg, opts);
    opts.replay = true;
    faultsim::InjectionRunner fast(w.program, cfg, opts);
    const auto g_slow = slow.golden();
    const auto g_fast = fast.golden();
    const auto faults = engineFaults(g_fast, cfg, 64);

    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(slow.injectBatch(faults, g_slow, 1));
    const double slow_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::uint64_t n = 0;
    double fast_seconds = 0;
    for (auto _ : state) {
        const auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(fast.injectBatch(faults, g_fast, 1));
        fast_seconds += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t1)
                            .count();
        n += faults.size();
    }
    const auto st = fast.injectionStats();
    const double batches = static_cast<double>(n) /
                           static_cast<double>(faults.size());
    const double speedup =
        fast_seconds > 0 ? slow_seconds * batches / fast_seconds : 0.0;
    state.counters["inject/s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
    state.counters["head_speedup"] = speedup;
    state.counters["masked%"] =
        st.runs ? 100.0 * static_cast<double>(st.replayMasked) /
                      static_cast<double>(st.runs)
                : 0.0;
    state.counters["skip%"] =
        st.replayHeadCycles
            ? 100.0 * static_cast<double>(st.replayCyclesSkipped) /
                  static_cast<double>(st.replayHeadCycles)
            : 0.0;
    bench::record("bench.replay_head_speedup", speedup);
}
BENCHMARK(BM_ReplayFastForward)->Unit(benchmark::kMillisecond);

// ------------------------------------------------ suite scheduler

/** Four full RF campaigns — the suite-scheduler acceptance workload. */
std::vector<sched::CampaignSpec>
suiteSpecs()
{
    const char *wls[] = {"qsort", "fft", "sha", "stringsearch"};
    std::vector<sched::CampaignSpec> specs;
    for (const char *name : wls) {
        sched::CampaignSpec s;
        s.workload = name;
        s.structure = uarch::Structure::RegisterFile;
        s.regs = 128;
        s.window = 0;
        s.sampling = core::specFixed(300);
        s.seed = 3;
        specs.push_back(std::move(s));
    }
    return specs;
}

/**
 * The pre-suite baseline: campaigns strictly one after another, each
 * single-threaded — what every bench driver did before the scheduler.
 */
void
BM_SuiteSerial(benchmark::State &state)
{
    const auto specs = suiteSpecs();
    std::uint64_t n = 0;
    for (auto _ : state) {
        for (const auto &spec : specs) {
            auto w = workloads::buildWorkload(spec.workload);
            core::Campaign camp(w.program, spec.campaignConfig(w));
            benchmark::DoNotOptimize(camp.run(false));
        }
        n += specs.size();
    }
    state.counters["campaigns/s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SuiteSerial)->Unit(benchmark::kMillisecond);

/**
 * The same four campaigns on the shared-pool scheduler; Arg = jobs.
 * The acceptance criterion is >= 2x over BM_SuiteSerial at Arg(4):
 * profile phases overlap and finished campaigns' workers steal
 * injections from the ones still running.
 */
void
BM_SuiteScheduler(benchmark::State &state)
{
    const auto specs = suiteSpecs();
    sched::SuiteOptions opts;
    opts.jobs = static_cast<unsigned>(state.range(0));
    std::uint64_t n = 0;
    for (auto _ : state) {
        sched::SuiteResult r = sched::SuiteScheduler(specs, opts).run();
        benchmark::DoNotOptimize(r.results.data());
        n += specs.size();
    }
    state.counters["campaigns/s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SuiteScheduler)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * Section-keyed incremental re-run against the cold sectioned run of
 * the same suite.  The cold run (once, outside the timing loop) fills
 * the store's section tables; each timed iteration strips the
 * whole-campaign entries — so the full-entry cache cannot answer —
 * and resumes, serving every section from the store and injecting
 * nothing.  What remains is the irreducible warm cost (profile +
 * compose); "warm_speedup" is the payoff number, also recorded as
 * bench.sectioned_warm_speedup for --json.
 */
void
BM_SuiteSectionedResume(benchmark::State &state)
{
    const auto specs = suiteSpecs();
    const std::string path = (std::filesystem::temp_directory_path() /
                              "merlin_bench_sections.json")
                                 .string();
    sched::SuiteOptions opts;
    opts.jobs = 4;
    opts.sections = 8;
    opts.recordTiming = false;
    opts.storePath = path;

    std::filesystem::remove(path);
    const auto t0 = std::chrono::steady_clock::now();
    sched::SuiteScheduler(specs, opts).run();
    const double cold_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    opts.reuseCached = true;
    std::uint64_t n = 0;
    double warm_seconds = 0;
    for (auto _ : state) {
        state.PauseTiming();
        {
            io::ResultStore store(path);
            store.load();
            for (const auto &spec : specs)
                store.erase(spec.key());
            store.save();
        }
        state.ResumeTiming();
        const auto t1 = std::chrono::steady_clock::now();
        sched::SuiteResult r = sched::SuiteScheduler(specs, opts).run();
        warm_seconds += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t1)
                            .count();
        benchmark::DoNotOptimize(r.results.data());
        n += specs.size();
    }
    std::filesystem::remove(path);
    std::filesystem::remove_all(path + ".journal");
    const double batches =
        static_cast<double>(n) / static_cast<double>(specs.size());
    const double speedup =
        warm_seconds > 0 ? cold_seconds * batches / warm_seconds : 0.0;
    state.counters["campaigns/s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsRate);
    state.counters["warm_speedup"] = speedup;
    merlin::bench::record("bench.sectioned_warm_speedup", speedup);
}
BENCHMARK(BM_SuiteSectionedResume)->Unit(benchmark::kMillisecond);

void
BM_Sampling(benchmark::State &state)
{
    Rng rng(5);
    std::uint64_t total = 0;
    for (auto _ : state) {
        auto faults = core::sampleFaults(uarch::Structure::L1DCache,
                                         8192, 100000,
                                         core::specFixed(60000), rng);
        benchmark::DoNotOptimize(faults.data());
        total += faults.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_Sampling)->Unit(benchmark::kMillisecond);

} // namespace

/**
 * BENCHMARK_MAIN() plus one extra flag: --json=FILE writes the metrics
 * snapshot (engine counters + bench::record() measurements) on exit —
 * the same machine-readable path every per-figure bench binary has.
 * The flag is stripped before benchmark::Initialize so google-benchmark
 * never sees it.
 */
int
main(int argc, char **argv)
{
    std::string json;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json = argv[i] + 7;
        else
            argv[kept++] = argv[i];
    }
    argc = kept;
    if (!json.empty())
        merlin::bench::detail::dumpMetricsAtExit(json);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
