/**
 * @file
 * Figure 15: final class distribution of the comprehensive baseline
 * injection (entire initial fault list) vs MeRLiN's extrapolation, per
 * structure.  ACE-pruned faults count as Masked on both sides, as in
 * the paper.
 */

#include "bench/common.hh"
#include "faultsim/fault.hh"

using namespace merlin;
using namespace merlin::bench;
using faultsim::Outcome;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t default_faults = 4'000;
    header("Figure 15 (accuracy vs comprehensive baseline)",
           "final class distribution over the whole initial list", opts,
           default_faults);

    auto names = opts.workloadsOr({"qsort", "fft", "sha"});

    struct Ref
    {
        uarch::Structure s;
        double paper_masked; ///< paper baseline Masked%, middle size
    };
    const Ref refs[] = {
        {uarch::Structure::RegisterFile, 95.19},
        {uarch::Structure::StoreQueue, 97.33},
        {uarch::Structure::L1DCache, 76.58},
    };

    for (const Ref &ref : refs) {
        const unsigned v = sizeVariants(ref.s)[1];
        core::ClassCounts truth, est;
        for (const auto &name : names) {
            auto w = workloads::buildWorkload(name);
            core::CampaignConfig cc;
            cc.target = ref.s;
            cc.core = configFor(ref.s, v);
            cc.sampling = opts.sampling(default_faults);
            cc.seed = opts.seed;
            cc.jobs = opts.jobs;
            core::Campaign camp(w.program, cc);
            auto r = camp.run(/*inject_all_survivors=*/true);
            truth = truth + r.fullTruth();
            est = est + r.merlinEstimate;
        }
        std::printf("\n-- %s (%s), %llu total faults --\n",
                    uarch::structureName(ref.s),
                    sizeLabel(ref.s, v).c_str(),
                    static_cast<unsigned long long>(truth.total()));
        std::printf("%-10s %14s %14s\n", "class", "baseline", "MeRLiN");
        for (unsigned c = 0; c < faultsim::NUM_OUTCOMES; ++c) {
            const Outcome o = static_cast<Outcome>(c);
            if (truth.of(o) == 0 && est.of(o) == 0)
                continue;
            std::printf("%-10s %13.2f%% %13.2f%%\n",
                        faultsim::outcomeName(o),
                        100.0 * truth.fraction(o),
                        100.0 * est.fraction(o));
        }
        std::printf("inaccuracy (max class delta): %.2f percentile units;"
                    " paper baseline Masked%% at this size: %.2f%%\n",
                    est.maxInaccuracyVs(truth), ref.paper_masked);
    }
    std::printf("\nShape check: the two columns are virtually identical "
                "(paper Figure 15), with\nMasked dominating and "
                "L1D showing the largest SDC share.\n");
    return 0;
}
