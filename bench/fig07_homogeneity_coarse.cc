/**
 * @file
 * Figure 7: coarse-grained homogeneity (masked vs non-masked collapse)
 * and the fraction of groups with perfect homogeneity, per structure
 * size variant, averaged over MiBench workloads.
 */

#include "bench/common.hh"

using namespace merlin;
using namespace merlin::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t default_faults = 2'000;
    header("Figure 7 (coarse homogeneity + perfect groups)",
           "masked/non-masked collapse of group outcomes", opts,
           default_faults);

    auto names = opts.workloadsOr({"qsort", "fft"});

    struct Ref
    {
        uarch::Structure s;
        unsigned variant;
        double paper_coarse;
        double paper_perfect;
    };
    // Paper values from Figure 7 (bars: coarse on top, % perfect below).
    const Ref refs[] = {
        {uarch::Structure::RegisterFile, 256, 0.952, 0.908},
        {uarch::Structure::RegisterFile, 128, 0.953, 0.905},
        {uarch::Structure::RegisterFile, 64, 0.961, 0.903},
        {uarch::Structure::StoreQueue, 64, 0.983, 0.920},
        {uarch::Structure::StoreQueue, 32, 0.977, 0.907},
        {uarch::Structure::StoreQueue, 16, 0.973, 0.911},
        {uarch::Structure::L1DCache, 64, 0.944, 0.884},
        {uarch::Structure::L1DCache, 32, 0.942, 0.883},
        {uarch::Structure::L1DCache, 16, 0.931, 0.891},
    };

    std::printf("\n%-10s %-10s %10s %10s %14s %14s\n", "structure",
                "size", "coarse", "paper", "perfect-frac", "paper");
    for (const Ref &ref : refs) {
        double coarse = 0, perfect = 0;
        for (const auto &name : names) {
            auto w = workloads::buildWorkload(name);
            core::CampaignConfig cc;
            cc.target = ref.s;
            cc.core = configFor(ref.s, ref.variant);
            cc.sampling = opts.sampling(default_faults);
            cc.seed = opts.seed;
            cc.jobs = opts.jobs;
            core::Campaign camp(w.program, cc);
            auto r = camp.run(true);
            coarse += r.homogeneity->coarse;
            perfect += r.homogeneity->perfectFraction;
        }
        coarse /= names.size();
        perfect /= names.size();
        std::printf("%-10s %-10s %10.3f %10.3f %14.3f %14.3f\n",
                    uarch::structureName(ref.s),
                    sizeLabel(ref.s, ref.variant).c_str(), coarse,
                    ref.paper_coarse, perfect, ref.paper_perfect);
    }
    std::printf("\nShape check: coarse homogeneity above ~0.9 everywhere "
                "and a large majority of\ngroups perfectly homogeneous, "
                "as in the paper.\n");
    return 0;
}
