/**
 * @file
 * Section 4.4.5 verification: MeRLiN's AVF estimator is unbiased and
 * its variance stays orders of magnitude below the mean.
 *
 * Two parts:
 *  1. analytic — evaluate the paper's mean/variance formulas on the
 *     measured group structure (sizes s_i, non-masking rates p_i) of a
 *     ground-truth campaign;
 *  2. empirical — repeat the MeRLiN campaign across many seeds (new
 *     fault sample + new representatives each time) and compare the
 *     spread of the AVF estimate against the baseline estimator's.
 */

#include <cmath>

#include "bench/common.hh"
#include "base/statistics.hh"
#include "merlin/theory.hh"

using namespace merlin;
using namespace merlin::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t default_faults = 3'000;
    header("Section 4.4.5 (statistical behaviour of MeRLiN)",
           "mean preservation and variance bound", opts, default_faults);

    auto w = workloads::buildWorkload("qsort");
    core::CampaignConfig cc;
    cc.target = uarch::Structure::RegisterFile;
    cc.core = uarch::CoreConfig{}.withRegisterFile(128);
    cc.sampling = opts.sampling(default_faults);
    cc.seed = opts.seed;
    cc.jobs = opts.jobs;

    // ---- analytic: moments from the measured group structure ----
    core::Campaign camp(w.program, cc);
    auto truth_run = camp.run(/*inject_all=*/true);
    auto m = core::avfMoments(truth_run.groupModels,
                              truth_run.initialFaults);
    std::printf("\nanalytic (from %llu groups, max size %llu):\n",
                static_cast<unsigned long long>(
                    truth_run.groupModels.size()),
                static_cast<unsigned long long>(m.maxGroupSize));
    std::printf("  E(k) = E(k_MeRLiN) = %.5f   (measured truth AVF "
                "%.5f, MeRLiN %.5f)\n",
                m.meanComprehensive, truth_run.fullTruth().avf(),
                truth_run.merlinEstimate.avf());
    std::printf("  Var(k) = %.3e  Var(k_MeRLiN) = %.3e  (inflation "
                "%.1fx <= max group size %llu)\n",
                m.varComprehensive, m.varMerlin,
                m.varComprehensive > 0
                    ? m.varMerlin / m.varComprehensive
                    : 0.0,
                static_cast<unsigned long long>(m.maxGroupSize));
    std::printf("  mean/Var(k_MeRLiN) ratio: %.1e (paper: 6-8 orders "
                "of magnitude at 60K faults)\n",
                m.varMerlin > 0 ? m.meanComprehensive / m.varMerlin
                                : 0.0);

    // ---- empirical: estimator spread across seeds ----
    const unsigned seeds = 12;
    std::vector<double> merlin_avf, base_avf;
    for (unsigned s = 1; s <= seeds; ++s) {
        core::CampaignConfig c2 = cc;
        c2.seed = opts.seed * 1000 + s;
        core::Campaign c(w.program, c2);
        auto r = c.run(/*inject_all=*/true);
        merlin_avf.push_back(r.merlinEstimate.avf());
        base_avf.push_back(r.fullTruth().avf());
    }
    const double mu_m = stats::mean(merlin_avf);
    const double mu_b = stats::mean(base_avf);
    std::printf("\nempirical over %u seeds:\n", seeds);
    std::printf("  mean AVF: baseline %.5f vs MeRLiN %.5f (delta %.5f)\n",
                mu_b, mu_m, std::abs(mu_b - mu_m));
    std::printf("  stddev:   baseline %.5f vs MeRLiN %.5f\n",
                std::sqrt(stats::variance(base_avf)),
                std::sqrt(stats::variance(merlin_avf)));
    std::printf("\nShape check: identical means (unbiased estimator) "
                "and a MeRLiN stddev of the\nsame order as the "
                "baseline's — the \"almost statistically equivalent\" "
                "claim.\n");
    return 0;
}
