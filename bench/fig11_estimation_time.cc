/**
 * @file
 * Figure 11: actual reliability-estimation time of the comprehensive
 * baseline (60,000 injections per campaign) vs MeRLiN, for all MiBench
 * structure configurations, assuming sequential runs on one machine.
 *
 * Per-run cost is measured by timing real injection runs; campaign
 * counts come from grouping-only passes at the requested fault-list
 * scale (paper scale by default — counting needs no injections).  The
 * 90 counting campaigns run as one shared-pool suite (--jobs=N).
 */

#include "bench/common.hh"
#include "sched/suite.hh"

using namespace merlin;
using namespace merlin::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t default_faults = 60'000;
    header("Figure 11 (actual estimation time)",
           "baseline vs MeRLiN wall-clock, all MiBench configs", opts,
           default_faults);

    auto names = opts.workloadsOr(workloads::mibenchWorkloads());
    const uarch::Structure structs[] = {uarch::Structure::RegisterFile,
                                        uarch::Structure::StoreQueue,
                                        uarch::Structure::L1DCache};
    const double paper_base_months[] = {40.68, 77.07, 82.09};
    const double paper_merlin_months[] = {0.65, 0.49, 1.28};

    // Calibrate per-injection cost on a small real campaign.
    double sec_per_run = 0;
    {
        auto w = workloads::buildWorkload("fft");
        core::CampaignConfig cc;
        cc.target = uarch::Structure::RegisterFile;
        cc.sampling = core::specFixed(300);
        cc.jobs = opts.jobs;
        core::Campaign camp(w.program, cc);
        auto r = camp.run(false);
        sec_per_run = r.secondsPerInjection;
    }
    std::printf("\nmeasured injection cost: %.1f ms/run "
                "(gem5 full-system runs cost ~minutes)\n",
                sec_per_run * 1e3);

    // Counting campaigns for all (structure, size, workload) configs,
    // one shared-pool suite in iteration order.
    std::vector<sched::CampaignSpec> specs;
    for (int si = 0; si < 3; ++si) {
        for (unsigned v : sizeVariants(structs[si])) {
            for (const auto &name : names) {
                sched::CampaignSpec s;
                s.workload = name;
                s.structure = structs[si];
                s.window = 0;
                switch (structs[si]) {
                  case uarch::Structure::RegisterFile: s.regs = v; break;
                  case uarch::Structure::StoreQueue:
                    s.sqEntries = v;
                    break;
                  case uarch::Structure::L1DCache: s.l1dKb = v; break;
                }
                s.sampling = opts.sampling(default_faults);
                s.seed = opts.seed;
                s.mode = sched::CampaignSpec::Mode::GroupingOnly;
                specs.push_back(std::move(s));
            }
        }
    }
    sched::SuiteOptions sopts;
    sopts.jobs = opts.jobs;
    sched::SuiteResult suite =
        sched::SuiteScheduler(specs, sopts).run();

    double total_base_s = 0, total_merlin_s = 0;
    std::size_t at = 0;
    std::printf("\n%-14s %16s %16s %22s\n", "structure",
                "baseline months", "MeRLiN months",
                "paper (base->MeRLiN)");
    for (int si = 0; si < 3; ++si) {
        double base_runs = 0, merlin_runs = 0;
        for (unsigned v : sizeVariants(structs[si])) {
            (void)v;
            for (std::size_t wi = 0; wi < names.size(); ++wi) {
                const core::CampaignResult &r = suite.results[at++];
                base_runs += static_cast<double>(r.initialFaults);
                merlin_runs += static_cast<double>(r.injections);
            }
        }
        const double month = 30.0 * 24 * 3600;
        const double base_m = base_runs * sec_per_run / month;
        const double merlin_m = merlin_runs * sec_per_run / month;
        total_base_s += base_runs * sec_per_run;
        total_merlin_s += merlin_runs * sec_per_run;
        std::printf("%-14s %16.3f %16.4f %14.2f -> %.2f\n",
                    uarch::structureName(structs[si]), base_m, merlin_m,
                    paper_base_months[si], paper_merlin_months[si]);
    }
    std::printf("%-14s %16.3f %16.4f %14s\n", "TOTAL",
                total_base_s / (30.0 * 24 * 3600),
                total_merlin_s / (30.0 * 24 * 3600),
                "199.84 -> 2.42");
    std::printf("\nShape check: MeRLiN compresses the total campaign by "
                "~2 orders of magnitude\n(absolute months differ: our "
                "simulator is ~1000x faster than full-system gem5\nand "
                "our workloads are scaled; the ratio is the result).\n");
    return 0;
}
