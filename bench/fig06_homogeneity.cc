/**
 * @file
 * Figure 6: fine-grained homogeneity of fault effects (6 Table-2
 * classes) of MeRLiN's groups, for RF / SQ / L1D size variants over
 * MiBench workloads.
 *
 * Requires ground truth (every post-ACE fault injected), so the default
 * scales down the fault list and workload set; use --faults/--workloads
 * /--paper to widen.
 */

#include "bench/common.hh"

using namespace merlin;
using namespace merlin::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t default_faults = 3'000;
    header("Figure 6 (fine-grained homogeneity)",
           "dominant-class share of every MeRLiN group", opts,
           default_faults);

    auto names = opts.workloadsOr({"qsort", "fft", "sha"});

    struct Ref
    {
        uarch::Structure s;
        double paper_avg; // paper's best per structure (Sec. 4.4.1)
    };
    const Ref refs[] = {
        {uarch::Structure::RegisterFile, 0.940},
        {uarch::Structure::StoreQueue, 0.982},
        {uarch::Structure::L1DCache, 0.920},
    };

    for (const Ref &ref : refs) {
        const unsigned v = sizeVariants(ref.s)[1]; // middle size
        std::printf("\n-- %s (%s) --\n", uarch::structureName(ref.s),
                    sizeLabel(ref.s, v).c_str());
        std::printf("%-14s %10s %8s %12s %12s\n", "workload", "groups",
                    "faults", "homogeneity", "avg grp size");
        double sum = 0;
        for (const auto &name : names) {
            auto w = workloads::buildWorkload(name);
            core::CampaignConfig cc;
            cc.target = ref.s;
            cc.core = configFor(ref.s, v);
            cc.sampling = opts.sampling(default_faults);
            cc.seed = opts.seed;
            cc.jobs = opts.jobs;
            core::Campaign camp(w.program, cc);
            auto r = camp.run(/*inject_all_survivors=*/true);
            const auto &h = *r.homogeneity;
            std::printf("%-14s %10llu %8llu %12.3f %12.1f\n",
                        name.c_str(),
                        static_cast<unsigned long long>(h.groups),
                        static_cast<unsigned long long>(h.faults),
                        h.fine, h.avgGroupSize);
            sum += h.fine;
        }
        std::printf("%-14s %10s %8s %12.3f   (paper avg: %.3f)\n",
                    "average", "", "", sum / names.size(),
                    ref.paper_avg);
    }
    std::printf("\nShape check: homogeneity close to 1.0 for all three "
                "structures\n(paper: 0.88-0.99 across Figure 6).\n");
    return 0;
}
