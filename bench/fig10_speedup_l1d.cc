/**
 * @file
 * Figure 10: MeRLiN speedup for the L1 data cache data array
 * (64/32/16 KB) over 10 MiBench workloads.
 */

#include "bench/speedup_common.hh"

int
main(int argc, char **argv)
{
    merlin::bench::PaperAverages paper{"Figure 10 (L1D speedup)",
                                       {67.9, 61.6, 59.0}};
    return merlin::bench::runSpeedupFigure(
        merlin::uarch::Structure::L1DCache, argc, argv, paper);
}
