/**
 * @file
 * Table 4: MeRLiN's accuracy on window-truncated SPEC campaigns (gcc
 * and bzip2, register file, 128 regs / 16 SQ / 32KB L1D), using the
 * paper's five-way classification with the Unknown category for faults
 * still latent at the SimPoint boundary.
 */

#include "bench/common.hh"
#include "faultsim/fault.hh"

using namespace merlin;
using namespace merlin::bench;
using faultsim::Outcome;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t default_faults = 4'000;
    header("Table 4 (SPEC accuracy at the SimPoint boundary)",
           "gcc and bzip2, RF campaigns ended at the window", opts,
           default_faults);

    struct PaperCol
    {
        const char *cls;
        double merlin, baseline;
    };
    const PaperCol paper_gcc[] = {{"Masked", 85.08, 85.08},
                                  {"DUE", 0.06, 0.07},
                                  {"Crash", 3.67, 3.13},
                                  {"Assert", 0.01, 0.01},
                                  {"Unknown", 11.18, 11.71}};

    auto names = opts.workloadsOr({"gcc", "bzip2"});
    for (const auto &name : names) {
        auto w = workloads::buildWorkload(name);
        core::CampaignConfig cc;
        cc.target = uarch::Structure::RegisterFile;
        cc.core = specConfig(w.suggestedWindow);
        cc.sampling = opts.sampling(default_faults);
        cc.seed = opts.seed;
        cc.jobs = opts.jobs;
        core::Campaign camp(w.program, cc);
        auto r = camp.run(/*inject_all_survivors=*/true);
        auto truth = r.fullTruth();
        const auto &est = r.merlinEstimate;

        std::printf("\n-- %s (window %llu instructions) --\n",
                    name.c_str(),
                    static_cast<unsigned long long>(w.suggestedWindow));
        std::printf("%-10s %12s %12s\n", "class", "MeRLiN",
                    "baseline");
        for (unsigned c = 0; c < faultsim::NUM_OUTCOMES; ++c) {
            const Outcome o = static_cast<Outcome>(c);
            if (truth.of(o) == 0 && est.of(o) == 0)
                continue;
            std::printf("%-10s %11.2f%% %11.2f%%\n",
                        faultsim::outcomeName(o),
                        100.0 * est.fraction(o),
                        100.0 * truth.fraction(o));
        }
        std::printf("max inaccuracy: %.2f percentile units "
                    "(paper max: 1.11 for bzip2 Unknown)\n",
                    est.maxInaccuracyVs(truth));
    }

    std::printf("\npaper's gcc column for reference:\n");
    std::printf("%-10s %12s %12s\n", "class", "MeRLiN", "baseline");
    for (const auto &p : paper_gcc)
        std::printf("%-10s %11.2f%% %11.2f%%\n", p.cls, p.merlin,
                    p.baseline);
    std::printf("\nShape check: Masked dominates, a sizeable Unknown "
                "share of still-latent faults,\nand MeRLiN within ~1 "
                "percentile unit of the baseline per class.\n");
    return 0;
}
