/**
 * @file
 * Shared scaffolding for the per-figure/table bench binaries.
 *
 * Every binary regenerates one table or figure of the paper.  Defaults
 * are scaled so the whole bench suite finishes in minutes on a laptop;
 * flags restore paper scale:
 *
 *   --faults N        initial fault-list size (default per bench)
 *   --paper           paper-scale fault lists (60,000 / 600,000)
 *   --workloads a,b   comma-separated subset (default per bench)
 *   --seed N          campaign seed
 *   --jobs N          shared suite-pool workers (0 = all hardware
 *                     threads); campaigns overlap and workers steal
 *                     injections across campaigns, results unchanged
 */

#ifndef MERLIN_BENCH_COMMON_HH
#define MERLIN_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/parse.hh"
#include "base/strings.hh"
#include "merlin/campaign.hh"
#include "workloads/workloads.hh"

namespace merlin::bench
{

struct Options
{
    std::uint64_t faults = 0; ///< 0 = per-bench default
    std::uint64_t seed = 1;
    unsigned jobs = 1; ///< suite-pool workers (0 = hardware threads)
    bool paper = false;
    std::vector<std::string> workloads;

    static Options
    parse(int argc, char **argv)
    {
        // Bench mains have no try/catch around their flag handling;
        // turn a bad flag value into a clean usage exit, not a
        // std::terminate.
        try {
            return parseUnchecked(argc, argv);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            std::exit(2);
        }
    }

    static Options
    parseUnchecked(int argc, char **argv)
    {
        Options o;
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            auto val = [&](const char *flag) -> const char * {
                std::size_t n = std::strlen(flag);
                if (a.rfind(flag, 0) == 0 && a.size() > n &&
                    a[n] == '=') {
                    return a.c_str() + n + 1;
                }
                return nullptr;
            };
            if (a == "--paper") {
                o.paper = true;
            } else if (const char *v = val("--faults")) {
                // Strict shared parser (base::parseU64): raw strtoull
                // silently accepted "-1" (wrapping to 2^64-1),
                // overflow and trailing junk.
                o.faults = base::parseU64(v, "--faults");
            } else if (const char *v2 = val("--seed")) {
                o.seed = base::parseU64(v2, "--seed");
            } else if (const char *v3 = val("--workloads")) {
                o.workloads = base::splitCommaList(v3);
            } else if (const char *v4 = val("--jobs")) {
                o.jobs = base::parseU32(v4, "--jobs");
            } else if (a == "--help" || a == "-h") {
                std::printf("flags: --faults=N --paper "
                            "--workloads=a,b --seed=N --jobs=N\n");
                std::exit(0);
            }
        }
        return o;
    }

    /** Sampling spec given this bench's scaled default. */
    core::SamplingSpec
    sampling(std::uint64_t scaled_default) const
    {
        if (paper)
            return core::spec60k();
        return core::specFixed(faults ? faults : scaled_default);
    }

    std::vector<std::string>
    workloadsOr(const std::vector<std::string> &def) const
    {
        return workloads.empty() ? def : workloads;
    }
};

/** The paper's size variants per structure (Table 1). */
inline const std::vector<unsigned> &
sizeVariants(uarch::Structure s)
{
    static const std::vector<unsigned> rf = {256, 128, 64};
    static const std::vector<unsigned> sq = {64, 32, 16};
    static const std::vector<unsigned> l1d = {64, 32, 16}; // KB
    switch (s) {
      case uarch::Structure::RegisterFile: return rf;
      case uarch::Structure::StoreQueue:   return sq;
      default:                             return l1d;
    }
}

inline std::string
sizeLabel(uarch::Structure s, unsigned v)
{
    switch (s) {
      case uarch::Structure::RegisterFile:
        return std::to_string(v) + "regs";
      case uarch::Structure::StoreQueue:
        return std::to_string(v) + "entries";
      default:
        return std::to_string(v) + "KB";
    }
}

/** Core config with the target structure set to one size variant. */
inline uarch::CoreConfig
configFor(uarch::Structure s, unsigned variant)
{
    uarch::CoreConfig cfg;
    switch (s) {
      case uarch::Structure::RegisterFile:
        return cfg.withRegisterFile(variant);
      case uarch::Structure::StoreQueue:
        return cfg.withStoreQueue(variant);
      default:
        return cfg.withL1dKb(variant);
    }
}

/** The SPEC evaluation configuration (Section 4.4.2.3). */
inline uarch::CoreConfig
specConfig(std::uint64_t window)
{
    uarch::CoreConfig cfg;
    cfg = cfg.withRegisterFile(128).withStoreQueue(16).withL1dKb(32);
    cfg.instructionWindowEnd = window;
    return cfg;
}

/** Bits of the target structure (for FIT). */
inline std::uint64_t
structureBits(uarch::Structure s, const uarch::CoreConfig &cfg)
{
    switch (s) {
      case uarch::Structure::RegisterFile:
        return std::uint64_t(cfg.numPhysIntRegs) * 64;
      case uarch::Structure::StoreQueue:
        return std::uint64_t(cfg.sqEntries) * 64;
      default:
        return std::uint64_t(cfg.l1d.totalWords()) * 64;
    }
}

inline void
header(const char *id, const char *what, const Options &o,
       std::uint64_t default_faults)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", id, what);
    std::printf("initial fault list: %llu per campaign%s (paper: 60,000)\n",
                static_cast<unsigned long long>(
                    o.paper ? 60000 : (o.faults ? o.faults
                                                : default_faults)),
                o.paper ? " [--paper]" : "");
    std::printf("machine: %s\n",
                uarch::CoreConfig{}.summary().c_str());
    std::printf("==============================================================\n");
}

} // namespace merlin::bench

#endif // MERLIN_BENCH_COMMON_HH
