/**
 * @file
 * Shared scaffolding for the per-figure/table bench binaries.
 *
 * Every binary regenerates one table or figure of the paper.  Defaults
 * are scaled so the whole bench suite finishes in minutes on a laptop;
 * flags restore paper scale:
 *
 *   --faults N        initial fault-list size (default per bench)
 *   --paper           paper-scale fault lists (60,000 / 600,000)
 *   --workloads a,b   comma-separated subset (default per bench)
 *   --seed N          campaign seed
 *   --jobs N          shared suite-pool workers (0 = all hardware
 *                     threads); campaigns overlap and workers steal
 *                     injections across campaigns, results unchanged
 *   --json FILE       write a metrics snapshot (engine counters +
 *                     bench measurements recorded via record()) to
 *                     FILE when the binary exits
 */

#ifndef MERLIN_BENCH_COMMON_HH
#define MERLIN_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "base/parse.hh"
#include "base/strings.hh"
#include "merlin/campaign.hh"
#include "obs/metrics.hh"
#include "workloads/workloads.hh"

namespace merlin::bench
{

/**
 * Record one bench measurement (a speedup, a wall time) as a gauge so
 * it lands in the --json metrics snapshot next to the engine's own
 * counters.  Reporting stays on stdout; this is the machine-readable
 * copy.
 */
inline void
record(const std::string &name, double value)
{
    obs::Registry::global().gauge(name).set(value);
}

namespace detail
{

/**
 * Arrange for a metrics snapshot to be written when the process exits
 * (normally — a fatal() bypasses it).  An atexit hook rather than a
 * call at the end of each bench main: every main keeps its early
 * returns and the snapshot still captures whatever ran.
 */
inline void
dumpMetricsAtExit(const std::string &path)
{
    static std::string dump_path;
    if (!dump_path.empty())
        return; // one hook is enough; first path wins
    // Touch the registry BEFORE registering the hook: function-local
    // statics are destroyed in reverse construction order, so this
    // guarantees the registry outlives the handler below.
    obs::Registry::global();
    dump_path = path;
    std::atexit(+[] {
        std::ofstream out(dump_path,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr,
                         "bench: cannot write metrics to '%s'\n",
                         dump_path.c_str());
            return;
        }
        out << obs::Registry::global().snapshot().toJson().dump(2)
            << '\n';
    });
}

} // namespace detail

struct Options
{
    std::uint64_t faults = 0; ///< 0 = per-bench default
    std::uint64_t seed = 1;
    unsigned jobs = 1; ///< suite-pool workers (0 = hardware threads)
    bool paper = false;
    std::string jsonPath; ///< --json=FILE metrics snapshot on exit
    std::vector<std::string> workloads;

    static Options
    parse(int argc, char **argv)
    {
        // Bench mains have no try/catch around their flag handling;
        // turn a bad flag value into a clean usage exit, not a
        // std::terminate.
        try {
            Options o = parseUnchecked(argc, argv);
            if (!o.jsonPath.empty())
                detail::dumpMetricsAtExit(o.jsonPath);
            return o;
        } catch (const FatalError &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            std::exit(2);
        }
    }

    static Options
    parseUnchecked(int argc, char **argv)
    {
        Options o;
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            auto val = [&](const char *flag) -> const char * {
                std::size_t n = std::strlen(flag);
                if (a.rfind(flag, 0) == 0 && a.size() > n &&
                    a[n] == '=') {
                    return a.c_str() + n + 1;
                }
                return nullptr;
            };
            if (a == "--paper") {
                o.paper = true;
            } else if (const char *v = val("--faults")) {
                // Strict shared parser (base::parseU64): raw strtoull
                // silently accepted "-1" (wrapping to 2^64-1),
                // overflow and trailing junk.
                o.faults = base::parseU64(v, "--faults");
            } else if (const char *v2 = val("--seed")) {
                o.seed = base::parseU64(v2, "--seed");
            } else if (const char *v3 = val("--workloads")) {
                o.workloads = base::splitCommaList(v3);
            } else if (const char *v4 = val("--jobs")) {
                o.jobs = base::parseU32(v4, "--jobs");
            } else if (const char *v5 = val("--json")) {
                o.jsonPath = v5;
            } else if (a == "--help" || a == "-h") {
                std::printf("flags: --faults=N --paper "
                            "--workloads=a,b --seed=N --jobs=N "
                            "--json=FILE\n");
                std::exit(0);
            }
        }
        return o;
    }

    /** Sampling spec given this bench's scaled default. */
    core::SamplingSpec
    sampling(std::uint64_t scaled_default) const
    {
        if (paper)
            return core::spec60k();
        return core::specFixed(faults ? faults : scaled_default);
    }

    std::vector<std::string>
    workloadsOr(const std::vector<std::string> &def) const
    {
        return workloads.empty() ? def : workloads;
    }
};

/** The paper's size variants per structure (Table 1). */
inline const std::vector<unsigned> &
sizeVariants(uarch::Structure s)
{
    static const std::vector<unsigned> rf = {256, 128, 64};
    static const std::vector<unsigned> sq = {64, 32, 16};
    static const std::vector<unsigned> l1d = {64, 32, 16}; // KB
    switch (s) {
      case uarch::Structure::RegisterFile: return rf;
      case uarch::Structure::StoreQueue:   return sq;
      default:                             return l1d;
    }
}

inline std::string
sizeLabel(uarch::Structure s, unsigned v)
{
    switch (s) {
      case uarch::Structure::RegisterFile:
        return std::to_string(v) + "regs";
      case uarch::Structure::StoreQueue:
        return std::to_string(v) + "entries";
      default:
        return std::to_string(v) + "KB";
    }
}

/** Core config with the target structure set to one size variant. */
inline uarch::CoreConfig
configFor(uarch::Structure s, unsigned variant)
{
    uarch::CoreConfig cfg;
    switch (s) {
      case uarch::Structure::RegisterFile:
        return cfg.withRegisterFile(variant);
      case uarch::Structure::StoreQueue:
        return cfg.withStoreQueue(variant);
      default:
        return cfg.withL1dKb(variant);
    }
}

/** The SPEC evaluation configuration (Section 4.4.2.3). */
inline uarch::CoreConfig
specConfig(std::uint64_t window)
{
    uarch::CoreConfig cfg;
    cfg = cfg.withRegisterFile(128).withStoreQueue(16).withL1dKb(32);
    cfg.instructionWindowEnd = window;
    return cfg;
}

/** Bits of the target structure (for FIT). */
inline std::uint64_t
structureBits(uarch::Structure s, const uarch::CoreConfig &cfg)
{
    switch (s) {
      case uarch::Structure::RegisterFile:
        return std::uint64_t(cfg.numPhysIntRegs) * 64;
      case uarch::Structure::StoreQueue:
        return std::uint64_t(cfg.sqEntries) * 64;
      default:
        return std::uint64_t(cfg.l1d.totalWords()) * 64;
    }
}

inline void
header(const char *id, const char *what, const Options &o,
       std::uint64_t default_faults)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", id, what);
    std::printf("initial fault list: %llu per campaign%s (paper: 60,000)\n",
                static_cast<unsigned long long>(
                    o.paper ? 60000 : (o.faults ? o.faults
                                                : default_faults)),
                o.paper ? " [--paper]" : "");
    std::printf("machine: %s\n",
                uarch::CoreConfig{}.summary().c_str());
    std::printf("==============================================================\n");
}

} // namespace merlin::bench

#endif // MERLIN_BENCH_COMMON_HH
