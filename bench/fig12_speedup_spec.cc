/**
 * @file
 * Figure 12: MeRLiN speedup for RF / SQ / L1D over the 10 SPEC-like
 * workloads evaluated on SimPoint-style instruction windows
 * (configuration: 128 registers, 16+16 LSQ, 32KB L1D).  The 30
 * campaigns run as one shared-pool suite (--jobs=N).
 */

#include "bench/common.hh"
#include "sched/suite.hh"

using namespace merlin;
using namespace merlin::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t default_faults = 60'000;
    header("Figure 12 (SPEC speedups)",
           "grouping-only campaigns on SimPoint windows", opts,
           default_faults);

    auto names = opts.workloadsOr(workloads::specWorkloads());
    const uarch::Structure structs[] = {uarch::Structure::RegisterFile,
                                        uarch::Structure::StoreQueue,
                                        uarch::Structure::L1DCache};
    const double paper_avg[] = {1644, 2018, 171};

    // The SPEC evaluation configuration (Section 4.4.2.3) on the
    // workload's suggested SimPoint window (spec.window unset).
    std::vector<sched::CampaignSpec> specs;
    specs.reserve(names.size() * 3);
    for (const auto &name : names) {
        for (int si = 0; si < 3; ++si) {
            sched::CampaignSpec s;
            s.workload = name;
            s.structure = structs[si];
            s.regs = 128;
            s.sqEntries = 16;
            s.l1dKb = 32;
            s.sampling = opts.sampling(default_faults);
            s.seed = opts.seed;
            s.mode = sched::CampaignSpec::Mode::GroupingOnly;
            specs.push_back(std::move(s));
        }
    }
    sched::SuiteOptions sopts;
    sopts.jobs = opts.jobs;
    sched::SuiteResult suite =
        sched::SuiteScheduler(specs, sopts).run();

    std::printf("\n%-12s %10s %10s %10s %10s %10s %10s\n", "workload",
                "RF ace", "RF final", "SQ ace", "SQ final", "L1D ace",
                "L1D final");
    double sums[3] = {0, 0, 0};
    std::size_t at = 0;
    for (const auto &name : names) {
        double vals[6];
        for (int si = 0; si < 3; ++si) {
            const core::CampaignResult &r = suite.results[at++];
            vals[2 * si] = r.speedupAce;
            vals[2 * si + 1] = r.speedupTotal;
            sums[si] += r.speedupTotal;
        }
        std::printf("%-12s %9.1fX %9.1fX %9.1fX %9.1fX %9.1fX %9.1fX\n",
                    name.c_str(), vals[0], vals[1], vals[2], vals[3],
                    vals[4], vals[5]);
    }
    std::printf("%-12s %10s ", "average", "");
    for (int si = 0; si < 3; ++si) {
        std::printf("%9.1fX (paper %.0fX) ", sums[si] / names.size(),
                    paper_avg[si]);
    }
    std::printf("\n\nsuite wall clock: %.2fs over %zu campaigns "
                "(--jobs=%u)\n",
                suite.wallSeconds, specs.size(), opts.jobs);
    std::printf("Shape check: SPEC windows are more repetitive than "
                "full MiBench runs, so\nspeedups exceed the MiBench ones; "
                "SQ > RF > L1D ordering as in the paper.\n");
    return 0;
}
