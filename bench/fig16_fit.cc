/**
 * @file
 * Figure 16: final FIT rates (AVF x 0.01 FIT/bit x structure bits) of
 * the comprehensive baseline injection, MeRLiN, and the ACE-like
 * analysis, per structure size.  ACE-like must land well above the two
 * injection-based bars (its pessimistic upper bound is the paper's
 * motivation).
 */

#include "bench/common.hh"

using namespace merlin;
using namespace merlin::bench;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const std::uint64_t default_faults = 3'000;
    header("Figure 16 (FIT rates: baseline vs MeRLiN vs ACE-like)",
           "0.01 raw FIT/bit", opts, default_faults);

    auto names = opts.workloadsOr({"qsort", "fft"});

    struct Row
    {
        uarch::Structure s;
        unsigned variant;
        double paper_base, paper_merlin, paper_ace;
    };
    const Row rows[] = {
        {uarch::Structure::RegisterFile, 256, 4.196, 4.125, 12.262},
        {uarch::Structure::RegisterFile, 128, 3.941, 3.947, 12.313},
        {uarch::Structure::RegisterFile, 64, 3.653, 3.459, 12.058},
        {uarch::Structure::StoreQueue, 64, 0.892, 0.867, 4.407},
        {uarch::Structure::StoreQueue, 32, 0.549, 0.539, 2.566},
        {uarch::Structure::StoreQueue, 16, 0.272, 0.262, 1.456},
        {uarch::Structure::L1DCache, 64, 997, 937, 2459},
        {uarch::Structure::L1DCache, 32, 614, 622, 1120},
        {uarch::Structure::L1DCache, 16, 290, 303, 636},
    };

    std::printf("\n%-10s %-10s %10s %10s %10s %26s\n", "structure",
                "size", "baseline", "MeRLiN", "ACE-like",
                "paper (base/merlin/ace)");
    for (const Row &row : rows) {
        double base_avf = 0, merlin_avf = 0, ace_avf = 0;
        std::uint64_t bits = 0;
        for (const auto &name : names) {
            auto w = workloads::buildWorkload(name);
            core::CampaignConfig cc;
            cc.target = row.s;
            cc.core = configFor(row.s, row.variant);
            cc.sampling = opts.sampling(default_faults);
            cc.seed = opts.seed;
            cc.jobs = opts.jobs;
            core::Campaign camp(w.program, cc);
            auto r = camp.run(/*inject_all_survivors=*/true);
            base_avf += r.fullTruth().avf();
            merlin_avf += r.merlinEstimate.avf();
            ace_avf += r.aceAvf;
            bits = structureBits(row.s, cc.core);
        }
        base_avf /= names.size();
        merlin_avf /= names.size();
        ace_avf /= names.size();
        std::printf("%-10s %-10s %10.3f %10.3f %10.3f %12.2f/%.2f/%.2f\n",
                    uarch::structureName(row.s),
                    sizeLabel(row.s, row.variant).c_str(),
                    core::fitRate(base_avf, bits),
                    core::fitRate(merlin_avf, bits),
                    core::fitRate(ace_avf, bits), row.paper_base,
                    row.paper_merlin, row.paper_ace);
    }
    std::printf("\nShape check: baseline and MeRLiN FIT agree closely; "
                "ACE-like overestimates by\nroughly 2-4x (the paper's "
                "pessimistic lower bound on reliability).\n");
    return 0;
}
