/**
 * @file
 * Shared driver for the MiBench speedup figures (Figures 8, 9, 10):
 * for one target structure, run grouping-only campaigns over all 10
 * MiBench-like workloads and the three paper size variants, and print
 * the ACE-like and final (grouping) speedups exactly as the figures
 * report them.
 *
 * The 30 campaigns run as ONE suite on a shared pool (--jobs=N), so
 * their profile/grouping phases overlap; results are identical to the
 * old serial loop for any job count.
 *
 * Speedup definitions (Section 4.4.2): every injection run costs the
 * same with or without MeRLiN, so speedup = fault-count reduction.
 *   ACE-like speedup = initial_faults / post-ACE survivors
 *   final speedup    = initial_faults / injected representatives
 */

#ifndef MERLIN_BENCH_SPEEDUP_COMMON_HH
#define MERLIN_BENCH_SPEEDUP_COMMON_HH

#include "bench/common.hh"
#include "sched/suite.hh"

namespace merlin::bench
{

struct PaperAverages
{
    const char *figure;
    double finalSpeedup[3]; ///< per size variant, paper average
};

inline int
runSpeedupFigure(uarch::Structure target, int argc, char **argv,
                 const PaperAverages &paper)
{
    Options opts = Options::parse(argc, argv);
    // Grouping-only campaigns are cheap: paper-scale lists by default.
    const std::uint64_t default_faults = 60'000;
    header(paper.figure, "MeRLiN speedup, 10 MiBench workloads", opts,
           default_faults);

    auto names = opts.workloadsOr(workloads::mibenchWorkloads());
    const auto &variants = sizeVariants(target);

    // One spec per (size variant, workload), in print order.
    std::vector<sched::CampaignSpec> specs;
    specs.reserve(variants.size() * names.size());
    for (unsigned v : variants) {
        for (const auto &name : names) {
            sched::CampaignSpec s;
            s.workload = name;
            s.structure = target;
            s.window = 0; ///< MiBench figures run to completion
            switch (target) {
              case uarch::Structure::RegisterFile: s.regs = v; break;
              case uarch::Structure::StoreQueue:   s.sqEntries = v; break;
              case uarch::Structure::L1DCache:     s.l1dKb = v; break;
            }
            s.sampling = opts.sampling(default_faults);
            s.seed = opts.seed;
            s.mode = sched::CampaignSpec::Mode::GroupingOnly;
            specs.push_back(std::move(s));
        }
    }

    sched::SuiteOptions sopts;
    sopts.jobs = opts.jobs;
    sched::SuiteResult suite =
        sched::SuiteScheduler(specs, sopts).run();

    std::size_t at = 0;
    for (unsigned vi = 0; vi < variants.size(); ++vi) {
        const unsigned v = variants[vi];
        std::printf("\n-- %s --\n", sizeLabel(target, v).c_str());
        std::printf("%-14s %10s %10s %10s %12s %12s\n", "workload",
                    "initial", "post-ACE", "injected", "ACE-speedup",
                    "final");
        double sum_ace = 0, sum_total = 0;
        for (const auto &name : names) {
            const core::CampaignResult &r = suite.results[at++];
            std::printf("%-14s %10llu %10llu %10llu %11.1fX %11.1fX\n",
                        name.c_str(),
                        static_cast<unsigned long long>(r.initialFaults),
                        static_cast<unsigned long long>(r.survivors),
                        static_cast<unsigned long long>(r.injections),
                        r.speedupAce, r.speedupTotal);
            sum_ace += r.speedupAce;
            sum_total += r.speedupTotal;
        }
        std::printf("%-14s %10s %10s %10s %11.1fX %11.1fX   "
                    "(paper avg: %.1fX)\n",
                    "average", "", "", "",
                    sum_ace / names.size(), sum_total / names.size(),
                    paper.finalSpeedup[vi]);
        const std::string label = sizeLabel(target, v);
        record("bench." + label + ".speedup_ace_avg",
               sum_ace / names.size());
        record("bench." + label + ".speedup_final_avg",
               sum_total / names.size());
    }
    record("bench.suite_wall_seconds", suite.wallSeconds);
    std::printf("\nsuite wall clock: %.2fs over %zu campaigns "
                "(--jobs=%u)\n",
                suite.wallSeconds, specs.size(), opts.jobs);
    std::printf("\nShape check: speedups of 1-2+ orders of magnitude, "
                "growing with structure size,\nACE-like step contributing "
                "a 2-20X first factor — as in the paper's figure.\n");
    return 0;
}

} // namespace merlin::bench

#endif // MERLIN_BENCH_SPEEDUP_COMMON_HH
