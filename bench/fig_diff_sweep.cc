/**
 * @file
 * Differential sweep driver: the design-space-exploration workflow on
 * top of the fig08-style MiBench workloads.  Runs the same estimate
 * suite under two L1D sizes (configuration A = 64 KB, B = 16 KB by
 * default), stores both sides, joins them with sched::SuiteDiff on
 * the `l1d_kb` axis and emits the per-workload A/B delta table —
 * ΔAVF with its sampling confidence interval, Δclass counts,
 * Δinjection runs and Δearly-exit rate.
 *
 * Flags (bench/common.hh) plus:
 *   --l1d-a=KB --l1d-b=KB   the two swept sizes (default 64 / 16)
 *   --select=i/n            run only worker i's share of the sweep
 *                           (round-robin over the workload list on
 *                           BOTH sides, so each worker's diff covers
 *                           matching A/B pairs) — the same partition
 *                           `merlin_cli suite --select` uses, for
 *                           distributing A/B sweeps across machines
 *
 * Both suites run on the shared scheduler pool, so --jobs=N speeds
 * the sweep without changing a byte of the diff.
 */

#include <cstring>
#include <optional>

#include "bench/common.hh"
#include "io/result_store.hh"
#include "sched/diff.hh"
#include "sched/selector.hh"
#include "sched/suite.hh"

namespace
{

using namespace merlin;

/** Run one side of the sweep into an in-memory store. */
io::ResultStore
runSide(const std::vector<std::string> &names, unsigned l1d_kb,
        const bench::Options &opts, std::uint64_t default_faults,
        const std::optional<sched::SpecSelector> &select)
{
    std::vector<sched::CampaignSpec> specs;
    specs.reserve(names.size());
    for (const std::string &name : names) {
        sched::CampaignSpec s;
        s.workload = name;
        s.structure = uarch::Structure::L1DCache;
        s.l1dKb = l1d_kb;
        s.window = 0; ///< MiBench figures run to completion
        s.sampling = opts.sampling(default_faults);
        s.seed = opts.seed;
        s.mode = sched::CampaignSpec::Mode::Estimate;
        specs.push_back(std::move(s));
    }

    sched::SuiteOptions sopts;
    sopts.jobs = opts.jobs;
    sopts.recordTiming = false;
    sopts.select = select;
    sched::SuiteResult suite =
        sched::SuiteScheduler(specs, sopts).run();

    io::ResultStore store;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (suite.selected[i])
            store.put(specs[i].key(), specs[i].toJson(),
                      suite.results[i]);
    }
    return store;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace merlin;

    bench::Options opts = bench::Options::parse(argc, argv);
    unsigned l1d_a = 64, l1d_b = 16;
    std::optional<sched::SpecSelector> select;
    try {
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strncmp(arg, "--l1d-a=", 8) == 0)
                l1d_a = base::parseU32(arg + 8, "--l1d-a");
            else if (std::strncmp(arg, "--l1d-b=", 8) == 0)
                l1d_b = base::parseU32(arg + 8, "--l1d-b");
            else if (std::strncmp(arg, "--select=", 9) == 0)
                select = sched::SpecSelector::parse(
                    arg + 9, sched::SpecSelector::Mode::RoundRobin);
        }
    } catch (const merlin::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    const std::uint64_t default_faults = 2'000;
    bench::header("Differential sweep (suite --diff)",
                  "L1D size A vs B over the MiBench workloads", opts,
                  default_faults);
    std::printf("configuration A: %u KB L1D, configuration B: %u KB; "
                "estimate campaigns, --jobs=%u\n",
                l1d_a, l1d_b, opts.jobs);
    if (select)
        std::printf("selection %s: this worker diffs only its share "
                    "of the workloads\n",
                    select->describe().c_str());
    std::printf("\n");

    const auto names =
        opts.workloadsOr(workloads::mibenchWorkloads());
    const io::ResultStore a =
        runSide(names, l1d_a, opts, default_faults, select);
    const io::ResultStore b =
        runSide(names, l1d_b, opts, default_faults, select);

    sched::DiffOptions dopts;
    dopts.axis = {"l1d_kb"};
    const sched::SuiteDiffResult diff =
        sched::SuiteDiff(a, b, dopts).run();
    std::fputs(diff.table().c_str(), stdout);

    std::printf("\nShape check: a smaller L1D holds fewer live lines, "
                "so per-bit vulnerability (AVF) typically RISES as the "
                "same working set churns through less capacity; every "
                "|dAVF| should sit within a few CI widths.\n");
    return 0;
}
