/**
 * @file
 * Randomized property tests across the reliability stack:
 *  - the ACE-like interval builder against a brute-force reference model
 *    over synthetic event streams;
 *  - grouping partition/key invariants for every structure;
 *  - fault-flip involution on live cores;
 *  - sampling-statistics monotonicity.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/rng.hh"
#include "base/statistics.hh"
#include "masm/asm.hh"
#include "merlin/grouping.hh"
#include "merlin/sampling.hh"
#include "profile/ace.hh"
#include "uarch/core.hh"
#include "workloads/workloads.hh"

namespace merlin
{
namespace
{

using profile::AceProfiler;
using uarch::Structure;

/** Synthetic event for the reference model. */
struct Ev
{
    Cycle cycle;
    std::uint8_t phase;
    bool isRead;
    Rip rip;
};

/**
 * Drive the profiler with a random event stream on a few entries and
 * check find() against a brute-force replay for every (entry, cycle).
 */
TEST(ProfilerProperty, MatchesBruteForceReference)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed);
        const unsigned entries = 4;
        const Cycle horizon = 200;

        AceProfiler prof(entries, 1, 1);
        std::map<unsigned, std::vector<Ev>> events;

        for (unsigned e = 0; e < entries; ++e) {
            Cycle c = 0;
            while (true) {
                c += 1 + rng.nextBelow(20);
                if (c >= horizon)
                    break;
                Ev ev;
                ev.cycle = c;
                ev.phase = static_cast<std::uint8_t>(
                    1 + rng.nextBelow(9));
                ev.isRead = rng.nextBelow(2) == 0;
                ev.rip = 0x1000 + rng.nextBelow(8) * 8;
                events[e].push_back(ev);
                if (ev.isRead) {
                    prof.onCommittedRead(Structure::RegisterFile, e,
                                         ev.cycle, ev.phase, ev.rip, 0,
                                         0);
                } else {
                    prof.onWrite(Structure::RegisterFile, e, ev.cycle,
                                 ev.phase);
                }
            }
        }
        prof.finalize();
        const auto &p = prof.profile(Structure::RegisterFile);

        for (unsigned e = 0; e < entries; ++e) {
            for (Cycle t = 0; t <= horizon; ++t) {
                // Reference: a flip at the start of cycle t is consumed
                // iff the next event at cycle >= t ... precisely: find
                // the first event with cycle >= t; writes at the same
                // cycle overwrite the flip only if they precede the
                // first read of that cycle in phase order — the event
                // list is already in (cycle, phase) order per entry.
                bool vulnerable = false;
                Rip rip = 0;
                for (const Ev &ev : events[e]) {
                    if (ev.cycle < t)
                        continue;
                    vulnerable = ev.isRead;
                    rip = ev.rip;
                    break;
                }
                const profile::VulnerableInterval *iv = p.find(e, t);
                if (t == 0) {
                    // Flips at cycle 0 coincide with the implicit
                    // initial write; the builder treats them as
                    // overwritten.
                    EXPECT_EQ(iv, nullptr);
                    continue;
                }
                ASSERT_EQ(iv != nullptr, vulnerable)
                    << "seed " << seed << " entry " << e << " cycle "
                    << t;
                if (iv) {
                    EXPECT_EQ(iv->rip, rip);
                }
            }
        }
    }
}

TEST(ProfilerProperty, EventsAtSameCycleRespectPhaseOrder)
{
    // write(phase 4) then read(phase 5) at the same cycle: the read is
    // after the write, so a flip at that cycle is overwritten first ->
    // empty interval, nothing vulnerable at that cycle.
    AceProfiler prof(1, 1, 1);
    prof.onWrite(Structure::RegisterFile, 0, 10, uarch::phase::RegWrite);
    prof.onCommittedRead(Structure::RegisterFile, 0, 10,
                         uarch::phase::RegRead, 0x1000, 0, 0);
    prof.onCommittedRead(Structure::RegisterFile, 0, 20,
                         uarch::phase::RegRead, 0x2000, 0, 1);
    prof.finalize();
    const auto &p = prof.profile(Structure::RegisterFile);
    EXPECT_EQ(p.find(0, 10), nullptr);  // overwritten mid-cycle
    ASSERT_NE(p.find(0, 15), nullptr);  // write@10 .. read@20 interval
    EXPECT_EQ(p.find(0, 15)->rip, 0x2000u);

    // Reverse phase order (drain-read before issue-write): the read at
    // that cycle consumes the flip.
    AceProfiler prof2(1, 1, 1);
    prof2.onWrite(Structure::StoreQueue, 0, 5, uarch::phase::SqWrite);
    prof2.onCommittedRead(Structure::StoreQueue, 0, 10,
                          uarch::phase::SqDrainRead, 0x3000, 0, 2);
    prof2.onWrite(Structure::StoreQueue, 0, 10, uarch::phase::SqWrite);
    prof2.finalize();
    const auto &q = prof2.profile(Structure::StoreQueue);
    ASSERT_NE(q.find(0, 10), nullptr); // drain read happens first
    EXPECT_EQ(q.find(0, 10)->rip, 0x3000u);
}

class GroupingPropertyFixture
    : public ::testing::TestWithParam<Structure>
{
};

TEST_P(GroupingPropertyFixture, PartitionAndKeysHoldPerStructure)
{
    const Structure s = GetParam();
    auto w = workloads::buildWorkload("stringsearch");
    uarch::CoreConfig cfg;
    cfg = cfg.withRegisterFile(128).withStoreQueue(16).withL1dKb(16);
    AceProfiler prof(cfg.numPhysIntRegs, cfg.sqEntries,
                     cfg.l1d.totalWords());
    uarch::Core core(w.program, cfg, &prof);
    core.run();
    prof.finalize();

    unsigned entries = s == Structure::RegisterFile ? cfg.numPhysIntRegs
                       : s == Structure::StoreQueue ? cfg.sqEntries
                                                    : cfg.l1d.totalWords();
    Rng rng(5);
    auto faults = core::sampleFaults(s, entries, core.stats().cycles,
                                     core::specFixed(5000), rng);
    for (auto split : {core::GroupingOptions::Split::None,
                       core::GroupingOptions::Split::Byte,
                       core::GroupingOptions::Split::Nibble,
                       core::GroupingOptions::Split::Bit}) {
        core::GroupingOptions opts;
        opts.split = split;
        Rng grng(7);
        auto res = core::groupFaults(faults, prof.profile(s), opts, grng);
        EXPECT_EQ(res.aceMasked + res.survivors.size(), faults.size());
        std::size_t members = 0;
        for (const auto &g : res.groups) {
            members += g.members.size();
            for (auto m : g.members) {
                const auto &tf = res.survivors[m];
                EXPECT_EQ(tf.rip, g.rip);
                EXPECT_EQ(tf.upc, g.upc);
                switch (split) {
                  case core::GroupingOptions::Split::Byte:
                    EXPECT_EQ(tf.fault.bit / 8, g.byte);
                    break;
                  case core::GroupingOptions::Split::Nibble:
                    EXPECT_EQ(tf.fault.bit / 4, g.byte);
                    break;
                  case core::GroupingOptions::Split::Bit:
                    EXPECT_EQ(tf.fault.bit, g.byte);
                    break;
                  default:
                    break;
                }
            }
        }
        EXPECT_EQ(members, res.survivors.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, GroupingPropertyFixture,
    ::testing::Values(Structure::RegisterFile, Structure::StoreQueue,
                      Structure::L1DCache),
    [](const ::testing::TestParamInfo<Structure> &info) {
        return uarch::structureName(info.param);
    });

TEST(FaultProperty, DoubleFlipIsIdentityOnAllStructures)
{
    auto w = workloads::buildWorkload("fft");
    uarch::CoreConfig cfg;
    auto golden = isa::interpret(w.program);

    Rng rng(11);
    for (int i = 0; i < 6; ++i) {
        uarch::Core core(w.program, cfg);
        // Advance into the middle of the run, double-flip, finish.
        for (int c = 0; c < 500 && !core.finished(); ++c)
            core.tick();
        const unsigned reg = static_cast<unsigned>(
            rng.nextBelow(cfg.numPhysIntRegs));
        const unsigned slot =
            static_cast<unsigned>(rng.nextBelow(cfg.sqEntries));
        const unsigned word = static_cast<unsigned>(
            rng.nextBelow(cfg.l1d.totalWords()));
        const unsigned bit = static_cast<unsigned>(rng.nextBelow(64));
        core.flipRegisterFileBit(reg, bit);
        core.flipRegisterFileBit(reg, bit);
        core.flipStoreQueueBit(slot, bit);
        core.flipStoreQueueBit(slot, bit);
        core.flipL1dBit(word, bit);
        core.flipL1dBit(word, bit);
        auto r = core.run();
        EXPECT_TRUE(r.sameArchOutcome(golden)) << "iteration " << i;
    }
}

TEST(SamplingProperty, SampleSizeMonotonicity)
{
    const double pop = 1e12;
    // Tighter margin -> more faults.
    EXPECT_GT(stats::sampleSize(pop, 0.001, 0.99),
              stats::sampleSize(pop, 0.01, 0.99));
    // Higher confidence -> more faults.
    EXPECT_GT(stats::sampleSize(pop, 0.01, 0.999),
              stats::sampleSize(pop, 0.01, 0.9));
    // Larger population -> more faults (toward the asymptote).
    EXPECT_GE(stats::sampleSize(1e12, 0.01, 0.99),
              stats::sampleSize(1e4, 0.01, 0.99));
}

TEST(SamplingProperty, UniformityOverEntries)
{
    Rng rng(17);
    auto faults = core::sampleFaults(Structure::RegisterFile, 16, 1000,
                                     core::specFixed(16000), rng);
    std::vector<unsigned> hist(16, 0);
    for (const auto &f : faults)
        ++hist[f.entry];
    for (unsigned h : hist) {
        EXPECT_GT(h, 700u);  // expected 1000 each
        EXPECT_LT(h, 1300u);
    }
}

} // namespace
} // namespace merlin
