/**
 * @file
 * Workload validation: every benchmark's assembly implementation must
 * reproduce its C++ reference output in the functional interpreter, and
 * (for a representative subset, to bound test time) on the out-of-order
 * core as well.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/rng.hh"

#include "isa/interp.hh"
#include "uarch/core.hh"
#include "workloads/workloads.hh"

namespace merlin::workloads
{
namespace
{

class WorkloadInterp : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadInterp, MatchesReference)
{
    auto w = buildWorkload(GetParam());
    auto r = isa::interpret(w.program, 50'000'000);
    EXPECT_EQ(r.reason, isa::TerminateReason::Halted);
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.output, w.expectedOutput);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadInterp,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

class WorkloadOnCore : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadOnCore, MatchesReferenceOnOoOCore)
{
    auto w = buildWorkload(GetParam());
    uarch::Core core(w.program, uarch::CoreConfig{});
    auto r = core.run();
    EXPECT_EQ(r.reason, isa::TerminateReason::Halted);
    EXPECT_EQ(r.output, w.expectedOutput);
    // Timing sanity: the OoO core should exploit some ILP.
    EXPECT_GT(core.stats().ipc(), 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadOnCore,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Workloads, SuitesAreComplete)
{
    EXPECT_EQ(mibenchWorkloads().size(), 10u);
    EXPECT_EQ(specWorkloads().size(), 10u);
    EXPECT_EQ(allWorkloadNames().size(), 20u);
}

TEST(Workloads, SpecWorkloadsHaveWindows)
{
    for (const auto &name : specWorkloads()) {
        auto w = buildWorkload(name);
        EXPECT_GT(w.suggestedWindow, 0u) << name;
        // The window must be shorter than the full run (it truncates).
        auto r = isa::interpret(w.program, 50'000'000);
        EXPECT_GT(r.instret, w.suggestedWindow) << name;
    }
}

TEST(Workloads, MibenchWorkloadsRunToCompletion)
{
    for (const auto &name : mibenchWorkloads()) {
        auto w = buildWorkload(name);
        EXPECT_EQ(w.suggestedWindow, 0u) << name;
    }
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_THROW(buildWorkload("nonesuch"), merlin::FatalError);
}

TEST(Workloads, WindowedRunStopsAtWindow)
{
    auto w = buildWorkload("bzip2");
    uarch::CoreConfig cfg;
    cfg.instructionWindowEnd = w.suggestedWindow;
    uarch::Core core(w.program, cfg);
    auto r = core.run();
    EXPECT_EQ(r.reason, isa::TerminateReason::WindowEnd);
    EXPECT_EQ(r.instret, w.suggestedWindow);
}

} // namespace
} // namespace merlin::workloads
