/**
 * @file
 * SegmentedMemory / CowBytes edge cases: block accesses spanning
 * segment and chunk boundaries, permission traps, copy-on-write
 * sharing and detach semantics, contentEquals across shared vs
 * detached chunks, and snapshot/restore aliasing.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "base/cow.hh"
#include "base/logging.hh"
#include "isa/memory.hh"
#include "isa/program.hh"

namespace merlin::isa
{
namespace
{

using base::CowBytes;

SegmentedMemory
twoAdjacentSegments(std::uint32_t chunk_bytes = 256)
{
    SegmentedMemory m(chunk_bytes);
    m.addSegment(0x1000, 0x1000, PermRead | PermWrite);
    m.addSegment(0x2000, 0x1000, PermRead | PermWrite);
    return m;
}

// ----------------------------------------------------------- CowBytes

TEST(CowBytes, CopySharesAndWriteDetaches)
{
    CowBytes a(1024, 256);
    a.write(100, "hello", 5);
    CowBytes b = a;
    EXPECT_EQ(b.sharedChunksWith(a), 4u);
    EXPECT_TRUE(a.contentEquals(b));

    // A write into one chunk of the copy detaches that chunk only.
    b.write(300, "x", 1);
    EXPECT_EQ(b.sharedChunksWith(a), 3u);
    EXPECT_FALSE(a.contentEquals(b));
    EXPECT_EQ(b.bytesDetached() - a.bytesDetached(), 256u);

    // The donor never sees the copy's write.
    std::uint8_t byte = 0;
    a.read(300, &byte, 1);
    EXPECT_EQ(byte, 0u);
}

TEST(CowBytes, ContentEqualsOnDetachedChunksComparesBytes)
{
    CowBytes a(512, 128);
    CowBytes b = a;
    // Detach with the SAME content: still equal, though not shared.
    b.write(10, "\0", 1);
    EXPECT_EQ(b.sharedChunksWith(a), 3u);
    EXPECT_TRUE(a.contentEquals(b));
    // Now genuinely diverge and come back.
    b.write(10, "z", 1);
    EXPECT_FALSE(a.contentEquals(b));
    b.write(10, "\0", 1);
    EXPECT_TRUE(a.contentEquals(b));
}

TEST(CowBytes, ChunkSpanningReadWrite)
{
    CowBytes a(1024, 256);
    std::vector<std::uint8_t> pattern(600);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 7 + 1);
    // Crosses three chunk boundaries.
    a.write(200, pattern.data(), pattern.size());
    std::vector<std::uint8_t> back(pattern.size());
    a.read(200, back.data(), back.size());
    EXPECT_EQ(back, pattern);
}

TEST(CowBytes, MixedGranularityContentEquals)
{
    CowBytes a(1024, 256);
    CowBytes b(1024, 64);
    EXPECT_TRUE(a.contentEquals(b));
    b.write(999, "q", 1);
    EXPECT_FALSE(a.contentEquals(b));
    a.write(999, "q", 1);
    EXPECT_TRUE(a.contentEquals(b));
}

TEST(CowBytes, DetachAllPrivatizesEverything)
{
    CowBytes a(1024, 256);
    CowBytes b = a;
    b.detachAll();
    EXPECT_EQ(b.sharedChunksWith(a), 0u);
    EXPECT_EQ(b.exclusiveChunks(), 4u);
    EXPECT_TRUE(a.contentEquals(b));
}

// ---------------------------------------------------- SegmentedMemory

TEST(Memory, ScalarTrapMatrix)
{
    SegmentedMemory m;
    m.addSegment(0x1000, 0x100, PermRead);
    std::uint64_t v = 0;
    EXPECT_EQ(m.read(0x1008, 8, v), TrapKind::None);
    EXPECT_EQ(m.read(0x1001, 8, v), TrapKind::Misaligned);
    EXPECT_EQ(m.read(0x9000, 8, v), TrapKind::Segfault);
    EXPECT_EQ(m.write(0x1008, 8, 1), TrapKind::Segfault); // read-only
    EXPECT_EQ(m.check(0x1008, 8, false), TrapKind::None);
    EXPECT_EQ(m.check(0x1008, 8, true), TrapKind::Segfault);
}

TEST(Memory, BlockSpanningSegmentBoundaryTraps)
{
    SegmentedMemory m = twoAdjacentSegments();
    std::uint8_t buf[64] = {};
    // Fully inside either segment: fine.
    EXPECT_EQ(m.readBlock(0x1fc0, buf, 64), TrapKind::None);
    EXPECT_EQ(m.readBlock(0x2000, buf, 64), TrapKind::None);
    // Straddling the two segments: never legal, even though both
    // sides are mapped (a cache line belongs to one segment).
    EXPECT_EQ(m.readBlock(0x1fe0, buf, 64), TrapKind::Segfault);
    EXPECT_EQ(m.writeBlock(0x1fe0, buf, 64), TrapKind::Segfault);
    // Off the end of the last segment.
    EXPECT_EQ(m.readBlock(0x2fe0, buf, 64), TrapKind::Segfault);
}

TEST(Memory, BlockPermissionTraps)
{
    SegmentedMemory m;
    m.addSegment(0x1000, 0x100, PermWrite); // write-only (no R, no X)
    m.addSegment(0x2000, 0x100, PermExec);
    std::uint8_t buf[32] = {};
    EXPECT_EQ(m.readBlock(0x1000, buf, 32), TrapKind::Segfault);
    // Exec-only is readable as a block (I-cache line fills).
    EXPECT_EQ(m.readBlock(0x2000, buf, 32), TrapKind::None);
    // writeBlock is the write-back path: permissions are not checked,
    // only the mapping (dirty text lines are legal write-backs).
    EXPECT_EQ(m.writeBlock(0x2000, buf, 32), TrapKind::None);
    EXPECT_EQ(m.writeBlock(0x8000, buf, 32), TrapKind::Segfault);
}

TEST(Memory, BlockSpanningChunksRoundTrips)
{
    // 64-byte chunks, a 192-byte block write crossing two boundaries.
    SegmentedMemory m(64);
    m.addSegment(0x1000, 0x400, PermRead | PermWrite);
    std::vector<std::uint8_t> pattern(192);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::uint8_t>(255 - i);
    EXPECT_EQ(m.writeBlock(0x1020, pattern.data(), 192), TrapKind::None);
    std::vector<std::uint8_t> back(192);
    EXPECT_EQ(m.readBlock(0x1020, back.data(), 192), TrapKind::None);
    EXPECT_EQ(back, pattern);
    std::uint64_t v = 0;
    EXPECT_EQ(m.read(0x1020, 1, v), TrapKind::None);
    EXPECT_EQ(v, 255u);
}

TEST(Memory, CopySharesChunksAndContentEqualsShortCircuits)
{
    SegmentedMemory a = twoAdjacentSegments();
    ASSERT_EQ(a.write(0x1100, 8, 0x1234), TrapKind::None);
    SegmentedMemory b = a;
    const std::size_t total_chunks = 2 * (0x1000 / 256);
    EXPECT_EQ(b.sharedChunksWith(a), total_chunks);
    EXPECT_TRUE(a.contentEquals(b));

    // Same value written -> detached chunk, still content-equal.
    ASSERT_EQ(b.write(0x1100, 8, 0x1234), TrapKind::None);
    EXPECT_EQ(b.sharedChunksWith(a), total_chunks - 1);
    EXPECT_TRUE(a.contentEquals(b));

    // Different value -> unequal; restoring it -> equal again.
    ASSERT_EQ(b.write(0x2100, 8, 99), TrapKind::None);
    EXPECT_FALSE(a.contentEquals(b));
    ASSERT_EQ(b.write(0x2100, 8, 0), TrapKind::None);
    EXPECT_TRUE(a.contentEquals(b));
}

TEST(Memory, WritesAfterRestoreNeverLeakIntoALiveSnapshot)
{
    // The aliasing property the snapshot engine relies on: keep an
    // immutable copy ("snapshot"), mutate restored copies freely, and
    // every later restore still sees the original bytes.
    SegmentedMemory snap = twoAdjacentSegments();
    ASSERT_EQ(snap.write(0x1000, 8, 0xAB), TrapKind::None);

    SegmentedMemory first = snap;
    ASSERT_EQ(first.write(0x1000, 8, 0xCD), TrapKind::None);
    ASSERT_EQ(first.write(0x2000, 8, 0xEF), TrapKind::None);

    SegmentedMemory second = snap;
    std::uint64_t v = 0;
    ASSERT_EQ(second.read(0x1000, 8, v), TrapKind::None);
    EXPECT_EQ(v, 0xABu);
    ASSERT_EQ(second.read(0x2000, 8, v), TrapKind::None);
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(second.contentEquals(snap));
    EXPECT_FALSE(first.contentEquals(snap));
}

TEST(Memory, RejectsBadGeometry)
{
    EXPECT_THROW(SegmentedMemory(100), SimAssertError); // not a pow2
    SegmentedMemory m;
    EXPECT_THROW(m.addSegment(0x1010, 0x100, PermRead), FatalError);
    m.addSegment(0x1000, 0x100, PermRead);
    EXPECT_THROW(m.addSegment(0x1040, 0x100, PermRead), FatalError);
}

TEST(Memory, ProgramLoadIsCheckedEndToEnd)
{
    // Images are now loaded through the checked writeBlock path: a
    // text/data image that did not fit its mapped segment would
    // fatal() with a clear message instead of writing through the
    // null pointer the old unchecked rawAt()+memcpy produced.  The
    // segments are sized from the images, so the in-bounds cases must
    // load and verify.
    Program p;
    p.name = "oversize";
    p.text.assign(64, 0);
    p.data.assign(128, 1);
    p.bssSize = 0;
    SegmentedMemory ok = p.buildMemory();
    std::uint64_t v = 0;
    ASSERT_EQ(ok.read(layout::DATA_BASE, 1, v), TrapKind::None);
    EXPECT_EQ(v, 1u);

    Program empty;
    empty.name = "empty";
    EXPECT_THROW(empty.buildMemory(), FatalError); // no text at all
}

TEST(Memory, ChunkGranularityNeverChangesContents)
{
    Program p;
    p.name = "gran";
    p.text.assign(256, 0x11);
    p.data.assign(300, 0x22);
    p.bssSize = 100;
    SegmentedMemory coarse = p.buildMemory(64 * 1024);
    SegmentedMemory fine = p.buildMemory(64);
    EXPECT_EQ(coarse.chunkBytes(), 64u * 1024);
    EXPECT_EQ(fine.chunkBytes(), 64u);
    EXPECT_TRUE(coarse.contentEquals(fine));
    ASSERT_EQ(coarse.write(layout::HEAP_BASE, 8, 7), TrapKind::None);
    EXPECT_FALSE(coarse.contentEquals(fine));
    ASSERT_EQ(fine.write(layout::HEAP_BASE, 8, 7), TrapKind::None);
    EXPECT_TRUE(coarse.contentEquals(fine));
}

} // namespace
} // namespace merlin::isa
