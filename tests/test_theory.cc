/**
 * @file
 * Tests for the Section 4.4.5 statistical model: mean preservation,
 * variance formulas, the max-group-size inflation bound, and an
 * empirical cross-check against real campaigns.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/statistics.hh"
#include "merlin/campaign.hh"
#include "merlin/theory.hh"
#include "workloads/workloads.hh"

namespace merlin::core
{
namespace
{

TEST(Theory, HandComputedExample)
{
    // F = 100; groups: (s=10, p=1.0), (s=5, p=0.2), pruned remainder 85.
    std::vector<GroupModel> groups = {{10, 1.0}, {5, 0.2}};
    auto m = avfMoments(groups, 100);
    // E(k) = (10*1 + 5*0.2) / 100 = 0.11
    EXPECT_DOUBLE_EQ(m.meanComprehensive, 0.11);
    EXPECT_DOUBLE_EQ(m.meanMerlin, 0.11);
    // Var(k) = (10*1*0 + 5*0.2*0.8) / 100^2 = 0.8 / 10000
    EXPECT_DOUBLE_EQ(m.varComprehensive, 0.8 / 10000);
    // Var(k_MeRLiN) = (100*0 + 25*0.16) / 10000 = 4 / 10000
    EXPECT_DOUBLE_EQ(m.varMerlin, 4.0 / 10000);
    EXPECT_EQ(m.maxGroupSize, 10u);
}

TEST(Theory, PerfectHomogeneityHasZeroVariance)
{
    // p_i in {0, 1} => both variances vanish: MeRLiN is then *exact*.
    std::vector<GroupModel> groups = {{50, 1.0}, {30, 0.0}, {20, 1.0}};
    auto m = avfMoments(groups, 200);
    EXPECT_DOUBLE_EQ(m.varComprehensive, 0.0);
    EXPECT_DOUBLE_EQ(m.varMerlin, 0.0);
    EXPECT_DOUBLE_EQ(m.meanComprehensive, 70.0 / 200);
}

TEST(Theory, VarianceInflationBoundedByMaxGroupSize)
{
    Rng rng(3);
    std::vector<GroupModel> groups;
    std::uint64_t total = 500; // pruned part
    for (int i = 0; i < 40; ++i) {
        GroupModel g;
        g.size = 1 + rng.nextBelow(20);
        g.pNonMasked = rng.nextDouble();
        total += g.size;
        groups.push_back(g);
    }
    auto m = avfMoments(groups, total);
    EXPECT_GT(m.varMerlin, 0.0);
    // sum s_i^2 q_i <= max(s) * sum s_i q_i
    EXPECT_LE(m.varMerlin,
              static_cast<double>(m.maxGroupSize) * m.varComprehensive +
                  1e-15);
    // and never below the comprehensive variance (s_i >= 1).
    EXPECT_GE(m.varMerlin, m.varComprehensive - 1e-15);
}

TEST(Theory, SingletonGroupsReduceToBinomial)
{
    // All groups of size 1: MeRLiN == comprehensive campaign exactly.
    std::vector<GroupModel> groups;
    for (int i = 0; i < 100; ++i)
        groups.push_back({1, (i % 10) / 10.0});
    auto m = avfMoments(groups, 1000);
    EXPECT_DOUBLE_EQ(m.varMerlin, m.varComprehensive);
}

TEST(Theory, CampaignModelMatchesMeasuredTruth)
{
    // E(k) computed from the measured group structure must equal the
    // measured ground-truth AVF (it is literally the same sum).
    auto w = workloads::buildWorkload("fft");
    CampaignConfig cfg;
    cfg.target = uarch::Structure::RegisterFile;
    cfg.core = cfg.core.withRegisterFile(128);
    cfg.sampling = specFixed(1000);
    Campaign camp(w.program, cfg);
    auto r = camp.run(/*inject_all=*/true);
    ASSERT_FALSE(r.groupModels.empty());

    auto m = avfMoments(r.groupModels, r.initialFaults);
    EXPECT_NEAR(m.meanComprehensive, r.fullTruth().avf(), 1e-12);
    // Variance stays orders of magnitude below the mean (paper's
    // conclusion); guard the ratio loosely for the scaled campaign.
    if (m.varMerlin > 0) {
        EXPECT_GT(m.meanComprehensive / m.varMerlin, 100.0);
    }
}

TEST(Theory, EmpiricalMeanPreservation)
{
    // Across seeds, the average MeRLiN estimate tracks the average
    // ground truth (unbiasedness).
    auto w = workloads::buildWorkload("stringsearch");
    std::vector<double> est, truth;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        CampaignConfig cfg;
        cfg.target = uarch::Structure::RegisterFile;
        cfg.core = cfg.core.withRegisterFile(128);
        cfg.sampling = specFixed(800);
        cfg.seed = seed;
        Campaign camp(w.program, cfg);
        auto r = camp.run(true);
        est.push_back(r.merlinEstimate.avf());
        truth.push_back(r.fullTruth().avf());
    }
    EXPECT_NEAR(stats::mean(est), stats::mean(truth), 0.01);
}

} // namespace
} // namespace merlin::core
