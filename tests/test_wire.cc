/**
 * @file
 * merlin-wire-v1 framing tests over socketpairs and a real Unix
 * socket: message round-trips, the clean-EOF vs truncated-frame
 * distinction, oversize/malformed-frame rejection, and stale-socket
 * replacement at bind time.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>

#include "base/logging.hh"
#include "io/json.hh"
#include "io/wire.hh"

namespace merlin::io
{
namespace
{

/** A connected socketpair, each end owned by a WireConnection. */
struct WirePair
{
    WireConnection a, b;

    WirePair()
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = WireConnection(fds[0]);
        b = WireConnection(fds[1]);
    }
};

TEST(Wire, MessagesRoundTripInOrder)
{
    WirePair p;
    Json req = Json::object();
    req.set("type", Json("status"));
    req.set("id", Json(std::uint64_t(7)));
    Json nested = Json::object();
    nested.set("resume", Json(true));
    req.set("opts", nested);

    const std::size_t bytes = p.a.write(req);
    EXPECT_GT(bytes, 0u);

    Json got;
    ASSERT_TRUE(p.b.read(got));
    // Framing must deliver the exact dump bytes, not a re-encoding.
    EXPECT_EQ(got.dump(), req.dump());
    EXPECT_EQ(got.strOr("type", ""), "status");
    EXPECT_EQ(got.u64Or("id", 0), 7u);

    // Several frames queued before any read stay ordered.
    for (int i = 0; i < 3; ++i) {
        Json m = Json::object();
        m.set("seq", Json(std::uint64_t(i)));
        p.b.write(m);
    }
    for (int i = 0; i < 3; ++i) {
        Json m;
        ASSERT_TRUE(p.a.read(m));
        EXPECT_EQ(m.u64Or("seq", 99), std::uint64_t(i));
    }
}

TEST(Wire, CleanEofIsFalseNotFatal)
{
    WirePair p;
    p.a = WireConnection(); // destroys a's end: close at frame boundary
    Json msg;
    EXPECT_FALSE(p.b.read(msg));
}

TEST(Wire, TruncatedFrameIsFatal)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // A length prefix promising 16 bytes, then only 4, then EOF: a
    // peer that died mid-frame must be distinguished from a clean
    // close.
    const unsigned char partial[] = {0, 0, 0, 16, '{', '"', 'a', '"'};
    ASSERT_EQ(::write(fds[0], partial, sizeof partial),
              static_cast<ssize_t>(sizeof partial));
    ::close(fds[0]);

    WireConnection conn(fds[1]);
    Json msg;
    EXPECT_THROW(conn.read(msg), FatalError);
}

TEST(Wire, OversizeFrameIsRejectedWithoutBuffering)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // Length prefix just past the cap; no payload needs to follow —
    // the reader must refuse on the prefix alone.
    const std::uint32_t len = kWireMaxFrame + 1;
    const unsigned char prefix[] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len),
    };
    ASSERT_EQ(::write(fds[0], prefix, sizeof prefix),
              static_cast<ssize_t>(sizeof prefix));

    WireConnection conn(fds[1]);
    Json msg;
    EXPECT_THROW(conn.read(msg), FatalError);
    ::close(fds[0]);
}

TEST(Wire, MalformedAndNonObjectPayloadsAreFatal)
{
    for (const std::string payload : {"{\"a\":", "[1,2,3]", "42"}) {
        int fds[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        wireWriteFrame(fds[0], payload);
        WireConnection conn(fds[1]);
        Json msg;
        EXPECT_THROW(conn.read(msg), FatalError)
            << "payload: " << payload;
        ::close(fds[0]);
    }
}

TEST(Wire, RawFramesCarryArbitraryBytes)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::string payload("\x00\x01\xffraw", 6);
    wireWriteFrame(fds[0], payload);
    std::string got;
    ASSERT_TRUE(wireReadFrame(fds[1], got));
    EXPECT_EQ(got, payload);

    ::close(fds[0]);
    EXPECT_FALSE(wireReadFrame(fds[1], got)); // clean EOF
    ::close(fds[1]);
}

TEST(Wire, ListenConnectAcceptAndStaleSocketReplacement)
{
    const std::string path =
        testing::TempDir() + "merlin_wire_test.sock";
    ::unlink(path.c_str());

    int listener = wireListen(path);
    ASSERT_GE(listener, 0);

    Json reply;
    std::thread server([&] {
        WireConnection conn(wireAccept(listener));
        Json msg;
        ASSERT_TRUE(conn.read(msg));
        msg.set("echoed", Json(true));
        conn.write(msg);
    });

    {
        WireConnection client(wireConnect(path));
        Json hello = Json::object();
        hello.set("type", Json("hello"));
        client.write(hello);
        ASSERT_TRUE(client.read(reply));
    }
    server.join();
    EXPECT_TRUE(reply.boolOr("echoed", false));
    ::close(listener);

    // The socket file is still on disk but nothing is bound: the next
    // daemon must treat it as stale and bind anyway.
    int relisten = wireListen(path);
    EXPECT_GE(relisten, 0);
    ::close(relisten);
    ::unlink(path.c_str());
}

} // namespace
} // namespace merlin::io
