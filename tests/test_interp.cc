/**
 * @file
 * Unit tests for the functional interpreter: instruction semantics,
 * composites, control flow, traps, output stream.
 */

#include <gtest/gtest.h>

#include "isa/interp.hh"
#include "masm/asm.hh"

namespace merlin::isa
{
namespace
{

ArchResult
run(const std::string &src)
{
    auto p = masm::assemble(src, "t");
    return interpret(p, 10'000'000);
}

TEST(Interp, HaltExitCode)
{
    auto r = run("halt 7\n");
    EXPECT_EQ(r.reason, TerminateReason::Halted);
    EXPECT_EQ(r.exitCode, 7);
    EXPECT_EQ(r.instret, 1u);
}

TEST(Interp, AluChain)
{
    auto r = run("movi a0, 6\n"
                 "movi a1, 7\n"
                 "mul a2, a0, a1\n"
                 "out.d a2\n"
                 "halt 0\n");
    ASSERT_EQ(r.output.size(), 8u);
    EXPECT_EQ(r.output[0], 42);
}

TEST(Interp, LoadStoreRoundTrip)
{
    auto r = run(".data\nbuf: .space 64\n.text\n"
                 "la a0, buf\n"
                 "movi a1, 0x1234\n"
                 "st.w a1, [a0+4]\n"
                 "ld.w a2, [a0+4]\n"
                 "out.d a2\n"
                 "halt 0\n");
    ASSERT_EQ(r.output.size(), 8u);
    EXPECT_EQ(r.output[0], 0x34);
    EXPECT_EQ(r.output[1], 0x12);
}

TEST(Interp, SignExtendingLoads)
{
    auto r = run(".data\nv: .byte 0xff\n.text\n"
                 "la a0, v\n"
                 "ld.b a1, [a0]\n"
                 "ld.bu a2, [a0]\n"
                 "out.d a1\n"
                 "out.d a2\n"
                 "halt 0\n");
    ASSERT_EQ(r.output.size(), 16u);
    EXPECT_EQ(r.output[7], 0xff);  // sign-extended -1
    EXPECT_EQ(r.output[8], 0xff);  // zero-extended 255
    EXPECT_EQ(r.output[15], 0x00);
}

TEST(Interp, LoopSumsCorrectly)
{
    // sum 1..10 = 55
    auto r = run("movi a0, 0\n"
                 "movi a1, 1\n"
                 "movi a2, 11\n"
                 "loop:\n"
                 "add a0, a0, a1\n"
                 "addi a1, a1, 1\n"
                 "bne a1, a2, loop\n"
                 "out.d a0\n"
                 "halt 0\n");
    EXPECT_EQ(r.output[0], 55);
}

TEST(Interp, CallAndRet)
{
    auto r = run("  movi a0, 5\n"
                 "  call double\n"
                 "  out.d a0\n"
                 "  halt 0\n"
                 "double:\n"
                 "  add a0, a0, a0\n"
                 "  ret\n");
    EXPECT_EQ(r.output[0], 10);
}

TEST(Interp, CallrThroughFunctionPointer)
{
    auto r = run("  la t0, fn\n"
                 "  movi a0, 3\n"
                 "  callr t0\n"
                 "  out.d a0\n"
                 "  halt 0\n"
                 "fn:\n"
                 "  addi a0, a0, 100\n"
                 "  ret\n");
    EXPECT_EQ(r.output[0], 103);
}

TEST(Interp, PushPopNesting)
{
    auto r = run("  movi s0, 1\n"
                 "  movi s1, 2\n"
                 "  push s0\n"
                 "  push s1\n"
                 "  pop a0\n"    // 2
                 "  pop a1\n"    // 1
                 "  out.d a0\n"
                 "  out.d a1\n"
                 "  halt 0\n");
    EXPECT_EQ(r.output[0], 2);
    EXPECT_EQ(r.output[8], 1);
}

TEST(Interp, LdaddComposite)
{
    auto r = run(".data\nv: .quad 40\n.text\n"
                 "la a0, v\n"
                 "movi a1, 2\n"
                 "ldadd a1, [a0]\n"
                 "out.d a1\n"
                 "halt 0\n");
    EXPECT_EQ(r.output[0], 42);
    // ldadd retires 2 uops.
    EXPECT_GT(r.uopsRetired, r.instret);
}

TEST(Interp, MemaddComposite)
{
    auto r = run(".data\nv: .quad 10\n.text\n"
                 "la a0, v\n"
                 "movi a1, 32\n"
                 "memadd a1, [a0]\n"
                 "ld.d a2, [a0]\n"
                 "out.d a2\n"
                 "halt 0\n");
    EXPECT_EQ(r.output[0], 42);
}

TEST(Interp, DivZeroTrap)
{
    auto r = run("movi a0, 1\n"
                 "movi a1, 0\n"
                 "div a2, a0, a1\n"
                 "halt 0\n");
    EXPECT_EQ(r.reason, TerminateReason::Trapped);
    ASSERT_EQ(r.traps.size(), 1u);
    EXPECT_EQ(r.traps[0].kind, TrapKind::DivZero);
    EXPECT_EQ(r.exitCode, 128 + static_cast<int>(TrapKind::DivZero));
}

TEST(Interp, TrapnzFiresOnlyWhenNonZero)
{
    auto ok = run("movi a0, 0\ntrapnz a0\nhalt 3\n");
    EXPECT_EQ(ok.reason, TerminateReason::Halted);
    EXPECT_EQ(ok.exitCode, 3);

    auto bad = run("movi a0, 1\ntrapnz a0\nhalt 3\n");
    EXPECT_EQ(bad.reason, TerminateReason::Trapped);
    ASSERT_EQ(bad.traps.size(), 1u);
    EXPECT_EQ(bad.traps[0].kind, TrapKind::DetectedError);
}

TEST(Interp, SegfaultOnWildAccess)
{
    auto r = run("movi a0, 0x10\n"
                 "ld.d a1, [a0]\n"
                 "halt 0\n");
    EXPECT_EQ(r.reason, TerminateReason::Trapped);
    ASSERT_EQ(r.traps.size(), 1u);
    EXPECT_EQ(r.traps[0].kind, TrapKind::Segfault);
}

TEST(Interp, MisalignedAccessTraps)
{
    auto r = run(".data\nbuf: .space 16\n.text\n"
                 "la a0, buf\n"
                 "ld.d a1, [a0+3]\n"
                 "halt 0\n");
    EXPECT_EQ(r.reason, TerminateReason::Trapped);
    EXPECT_EQ(r.traps[0].kind, TrapKind::Misaligned);
}

TEST(Interp, JumpToDataTraps)
{
    auto r = run(".data\nbuf: .quad 0\n.text\n"
                 "la a0, buf\n"
                 "jr a0\n"
                 "halt 0\n");
    EXPECT_EQ(r.reason, TerminateReason::Trapped);
    EXPECT_EQ(r.traps[0].kind, TrapKind::PcOutOfText);
}

TEST(Interp, MovhiBuildsLargeConstants)
{
    auto r = run("li a0, 0x123456789abcdef0\n"
                 "out.d a0\n"
                 "halt 0\n");
    ASSERT_EQ(r.output.size(), 8u);
    EXPECT_EQ(r.output[0], 0xf0);
    EXPECT_EQ(r.output[7], 0x12);
}

TEST(Interp, InstructionBudgetStopsRun)
{
    auto p = masm::assemble("spin: jmp spin\n", "t");
    auto r = interpret(p, 1000);
    EXPECT_EQ(r.reason, TerminateReason::CycleLimit);
    EXPECT_EQ(r.instret, 1000u);
}

TEST(Interp, SameArchOutcomeComparator)
{
    auto a = run("movi a0, 1\nout.d a0\nhalt 0\n");
    auto b = run("movi a0, 1\nout.d a0\nhalt 0\n");
    EXPECT_TRUE(a.sameArchOutcome(b));
    auto c = run("movi a0, 2\nout.d a0\nhalt 0\n");
    EXPECT_FALSE(a.sameArchOutcome(c));
}

TEST(Interp, StackDisciplineAcrossCalls)
{
    // Nested calls with saved ra.
    auto r = run("  movi a0, 1\n"
                 "  call f\n"
                 "  out.d a0\n"
                 "  halt 0\n"
                 "f:\n"
                 "  push ra\n"
                 "  addi a0, a0, 10\n"
                 "  call g\n"
                 "  pop ra\n"
                 "  ret\n"
                 "g:\n"
                 "  addi a0, a0, 100\n"
                 "  ret\n");
    EXPECT_EQ(r.output[0], 111);
}

} // namespace
} // namespace merlin::isa
