/**
 * @file
 * io tests: JSON value semantics, writer/parser round trips, exact
 * integer preservation, CampaignResult serialization (with and
 * without the optional ground-truth fields), and ResultStore
 * load/save/lookup with deterministic on-disk bytes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "base/logging.hh"
#include "io/journal.hh"
#include "io/json.hh"
#include "io/result_store.hh"

namespace merlin::io
{
namespace
{

using core::CampaignResult;
using core::HomogeneityReport;
using faultsim::Outcome;

// ------------------------------------------------------------- Json

TEST(Json, ScalarsRoundTrip)
{
    EXPECT_EQ(Json::parse("null").dump(), "null");
    EXPECT_EQ(Json::parse("true").dump(), "true");
    EXPECT_EQ(Json::parse("false").dump(), "false");
    EXPECT_EQ(Json::parse("42").dump(), "42");
    EXPECT_EQ(Json::parse("-7").dump(), "-7");
    EXPECT_EQ(Json::parse("\"hi\"").dump(), "\"hi\"");
}

TEST(Json, SixtyFourBitIntegersAreExact)
{
    // 2^64 - 1 and INT64_MIN survive a round trip unchanged — they
    // would not through a double.
    const std::string big = "18446744073709551615";
    EXPECT_EQ(Json::parse(big).asU64(), 18446744073709551615ULL);
    EXPECT_EQ(Json::parse(big).dump(), big);
    const std::string neg = "-9223372036854775808";
    EXPECT_EQ(Json::parse(neg).asI64(), INT64_MIN);
    EXPECT_EQ(Json::parse(neg).dump(), neg);
}

TEST(Json, DoublesUseShortestRoundTrip)
{
    Json j(0.1);
    EXPECT_EQ(j.dump(), "0.1");
    EXPECT_DOUBLE_EQ(Json::parse(j.dump()).asDouble(), 0.1);
    // A value with no short decimal form still round-trips exactly.
    const double ugly = 2.0 / 3.0;
    EXPECT_DOUBLE_EQ(Json::parse(Json(ugly).dump()).asDouble(), ugly);
}

TEST(Json, NonFiniteDoublesSerializeAsNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
}

TEST(Json, StringEscapes)
{
    Json j(std::string("a\"b\\c\nd\te\x01"));
    const std::string dumped = j.dump();
    EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    EXPECT_EQ(Json::parse(dumped).asString(), j.asString());
}

TEST(Json, UnicodeEscapesDecodeToUtf8)
{
    EXPECT_EQ(Json::parse("\"\\u00e9\"").asString(), "\xc3\xa9");
    // Surrogate pair: U+1F600.
    EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    Json j = Json::object();
    j.set("zebra", 1);
    j.set("alpha", 2);
    EXPECT_EQ(j.dump(), "{\"zebra\":1,\"alpha\":2}");
    // set() on an existing key replaces in place, keeping the order.
    j.set("zebra", 3);
    EXPECT_EQ(j.dump(), "{\"zebra\":3,\"alpha\":2}");
}

TEST(Json, NestedStructuresRoundTrip)
{
    const std::string text =
        "{\"a\":[1,2.5,\"x\",null,true],\"b\":{\"c\":[]},\"d\":{}}";
    Json j = Json::parse(text);
    EXPECT_EQ(j.dump(), text);
    EXPECT_EQ(j.at("a").size(), 5u);
    EXPECT_EQ(j.at("a")[0].asU64(), 1u);
    EXPECT_TRUE(j.at("b").at("c").isArray());
    // dump(parse(dump)) is a fixed point — the determinism property.
    EXPECT_EQ(Json::parse(j.dump(2)).dump(2), j.dump(2));
}

TEST(Json, TolerantLookupsUseDefaults)
{
    Json j = Json::parse("{\"n\":3,\"s\":\"x\"}");
    EXPECT_EQ(j.u64Or("n", 9), 3u);
    EXPECT_EQ(j.u64Or("missing", 9), 9u);
    EXPECT_EQ(j.strOr("s", "d"), "x");
    EXPECT_EQ(j.strOr("n", "d"), "d"); // wrong type -> default
    EXPECT_FALSE(j.find("missing"));
}

TEST(Json, MalformedInputThrows)
{
    EXPECT_THROW(Json::parse(""), FatalError);
    EXPECT_THROW(Json::parse("{"), FatalError);
    EXPECT_THROW(Json::parse("[1,]"), FatalError);
    EXPECT_THROW(Json::parse("tru"), FatalError);
    EXPECT_THROW(Json::parse("\"unterminated"), FatalError);
    EXPECT_THROW(Json::parse("1 2"), FatalError);
    EXPECT_THROW(Json::parse("{\"a\":1,}"), FatalError);
}

TEST(Json, TypeMismatchesThrow)
{
    Json j = Json::parse("{\"a\":1}");
    EXPECT_THROW(j.at("b"), FatalError);
    EXPECT_THROW(j.at("a").asString(), FatalError);
    EXPECT_THROW(Json::parse("-1").asU64(), FatalError);
}

// Fuzz-ish negative coverage: every input below once either crashed,
// silently lost data, or silently accepted non-JSON.  All must throw
// (never crash, never mangle).

TEST(JsonFuzz, TruncatedInputsThrowAtEveryPrefix)
{
    const std::string doc =
        "{\"a\":[1,-2.5e3,\"x\\u00e9\",null,true],\"b\":{\"c\":false}}";
    // Parse of the full document succeeds...
    EXPECT_EQ(Json::parse(doc).at("a").size(), 5u);
    // ...and every strict prefix fails cleanly.
    for (std::size_t n = 0; n < doc.size(); ++n) {
        EXPECT_THROW(Json::parse(doc.substr(0, n)), FatalError)
            << "prefix length " << n;
    }
}

TEST(JsonFuzz, DuplicateObjectKeysAreRejected)
{
    // "Last one wins" would make the parsed value depend on member
    // order — reject instead.
    EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), FatalError);
    EXPECT_THROW(Json::parse("{\"x\":{\"k\":1,\"k\":1}}"), FatalError);
    // Same key at different nesting levels is fine.
    EXPECT_EQ(Json::parse("{\"a\":{\"a\":1}}").at("a").at("a").asU64(),
              1u);
}

TEST(JsonFuzz, SixtyFourBitBoundaries)
{
    // The exact edges round-trip as integers...
    EXPECT_EQ(Json::parse("18446744073709551615").asU64(), UINT64_MAX);
    EXPECT_EQ(Json::parse("-9223372036854775808").asI64(), INT64_MIN);
    // ...one past the edge overflows into a double (lossy but legal
    // JSON), and must say so when asked for an exact integer.
    const Json past_u64 = Json::parse("18446744073709551616");
    EXPECT_TRUE(past_u64.isNumber());
    EXPECT_DOUBLE_EQ(past_u64.asDouble(), 18446744073709551616.0);
    EXPECT_THROW(past_u64.asU64(), FatalError);
    const Json past_i64 = Json::parse("-9223372036854775809");
    EXPECT_THROW(past_i64.asI64(), FatalError);
    EXPECT_DOUBLE_EQ(past_i64.asDouble(), -9223372036854775809.0);
}

TEST(JsonFuzz, NanAndInfinityAreRejected)
{
    for (const char *bad :
         {"NaN", "nan", "Infinity", "-Infinity", "inf", "-inf",
          "[1,NaN]", "{\"x\":Infinity}"})
        EXPECT_THROW(Json::parse(bad), FatalError) << bad;
    // Overflowing literals would materialize +-Inf through strtod;
    // they must be rejected at the boundary, not dumped back as null.
    EXPECT_THROW(Json::parse("1e999"), FatalError);
    EXPECT_THROW(Json::parse("-1e999"), FatalError);
    EXPECT_THROW(Json::parse("[1e400]"), FatalError);
}

TEST(JsonFuzz, MalformedNumbersThrow)
{
    for (const char *bad : {"-", "+1", "1.2.3", "1e", "1e+", "--1",
                            "0x10", "1f", ".5", "2."})
        EXPECT_THROW(Json::parse(bad), FatalError) << bad;
}

TEST(JsonFuzz, PathologicalNestingIsAnErrorNotAStackOverflow)
{
    // Past the depth cap: must throw, not crash.
    const std::string deep_arrays(10'000, '[');
    EXPECT_THROW(Json::parse(deep_arrays), FatalError);
    std::string deep_objects;
    for (int i = 0; i < 10'000; ++i)
        deep_objects += "{\"a\":";
    EXPECT_THROW(Json::parse(deep_objects), FatalError);
    // At half the cap: parses fine (closed properly).
    const int ok_depth = Json::kMaxParseDepth / 2;
    std::string ok(static_cast<std::size_t>(ok_depth), '[');
    ok += "1";
    ok.append(static_cast<std::size_t>(ok_depth), ']');
    EXPECT_EQ(Json::parse(ok).size(), 1u);
}

// ------------------------------------------- CampaignResult <-> JSON

CampaignResult
sampleResult(bool with_truth)
{
    CampaignResult r;
    r.goldenCycles = 123456;
    r.goldenInstret = 65432;
    r.aceAvf = 0.0625;
    r.initialFaults = 60000;
    r.aceMasked = 55000;
    r.survivors = 5000;
    r.numGroups = 300;
    r.injections = 310;
    r.merlinEstimate.add(Outcome::Masked, 58000);
    r.merlinEstimate.add(Outcome::SDC, 1200);
    r.merlinEstimate.add(Outcome::DUE, 500);
    r.merlinEstimate.add(Outcome::Crash, 300);
    r.merlinSurvivorEstimate.add(Outcome::Masked, 3000);
    r.merlinSurvivorEstimate.add(Outcome::SDC, 2000);
    r.speedupAce = 12.0;
    r.speedupTotal = 193.5;
    r.profileSeconds = 1.25;
    r.injectionSeconds = 9.75;
    r.secondsPerInjection = 0.03145;
    if (with_truth) {
        core::ClassCounts truth;
        truth.add(Outcome::Masked, 2900);
        truth.add(Outcome::SDC, 2050);
        truth.add(Outcome::Timeout, 30);
        truth.add(Outcome::Unknown, 20);
        r.survivorTruth = truth;
        HomogeneityReport h;
        h.fine = 0.93;
        h.coarse = 0.97;
        h.perfectFraction = 0.82;
        h.groups = 300;
        h.faults = 5000;
        h.avgGroupSize = 16.67;
        r.homogeneity = h;
        r.groupModels = {{100, 0.25}, {50, 0.0}, {1, 1.0}};
    }
    return r;
}

void
expectSameResult(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.goldenCycles, b.goldenCycles);
    EXPECT_EQ(a.goldenInstret, b.goldenInstret);
    EXPECT_DOUBLE_EQ(a.aceAvf, b.aceAvf);
    EXPECT_EQ(a.initialFaults, b.initialFaults);
    EXPECT_EQ(a.aceMasked, b.aceMasked);
    EXPECT_EQ(a.survivors, b.survivors);
    EXPECT_EQ(a.numGroups, b.numGroups);
    EXPECT_EQ(a.injections, b.injections);
    EXPECT_EQ(a.merlinEstimate.counts, b.merlinEstimate.counts);
    EXPECT_EQ(a.merlinSurvivorEstimate.counts,
              b.merlinSurvivorEstimate.counts);
    ASSERT_EQ(a.survivorTruth.has_value(), b.survivorTruth.has_value());
    if (a.survivorTruth)
        EXPECT_EQ(a.survivorTruth->counts, b.survivorTruth->counts);
    ASSERT_EQ(a.homogeneity.has_value(), b.homogeneity.has_value());
    if (a.homogeneity) {
        EXPECT_DOUBLE_EQ(a.homogeneity->fine, b.homogeneity->fine);
        EXPECT_DOUBLE_EQ(a.homogeneity->coarse, b.homogeneity->coarse);
        EXPECT_DOUBLE_EQ(a.homogeneity->perfectFraction,
                         b.homogeneity->perfectFraction);
        EXPECT_EQ(a.homogeneity->groups, b.homogeneity->groups);
        EXPECT_EQ(a.homogeneity->faults, b.homogeneity->faults);
        EXPECT_DOUBLE_EQ(a.homogeneity->avgGroupSize,
                         b.homogeneity->avgGroupSize);
    }
    ASSERT_EQ(a.groupModels.size(), b.groupModels.size());
    for (std::size_t i = 0; i < a.groupModels.size(); ++i) {
        EXPECT_EQ(a.groupModels[i].size, b.groupModels[i].size);
        EXPECT_DOUBLE_EQ(a.groupModels[i].pNonMasked,
                         b.groupModels[i].pNonMasked);
    }
    EXPECT_DOUBLE_EQ(a.speedupAce, b.speedupAce);
    EXPECT_DOUBLE_EQ(a.speedupTotal, b.speedupTotal);
    EXPECT_DOUBLE_EQ(a.profileSeconds, b.profileSeconds);
    EXPECT_DOUBLE_EQ(a.injectionSeconds, b.injectionSeconds);
    EXPECT_DOUBLE_EQ(a.secondsPerInjection, b.secondsPerInjection);
}

TEST(ResultJson, RoundTripWithoutOptionals)
{
    const CampaignResult r = sampleResult(false);
    const Json j = resultToJson(r);
    EXPECT_FALSE(j.find("survivor_truth"));
    EXPECT_FALSE(j.find("homogeneity"));
    EXPECT_FALSE(j.find("group_models"));
    expectSameResult(r, resultFromJson(Json::parse(j.dump(2))));
}

TEST(ResultJson, RoundTripWithTruthAndHomogeneity)
{
    const CampaignResult r = sampleResult(true);
    expectSameResult(
        r, resultFromJson(Json::parse(resultToJson(r).dump())));
}

TEST(ResultJson, MalformedResultThrows)
{
    Json j = resultToJson(sampleResult(false));
    Json truncated = Json::object();
    truncated.set("golden_cycles", 1);
    EXPECT_THROW(resultFromJson(truncated), FatalError);
}

// ----------------------------------------------------- ResultStore

class StoreFixture : public ::testing::Test
{
  protected:
    std::string
    path(const char *name) const
    {
        return testing::TempDir() + "merlin_" + name + ".json";
    }

    void
    TearDown() override
    {
        // remove_all: some tests track shard directories, not files.
        for (const std::string &p : created_) {
            std::error_code ec;
            std::filesystem::remove_all(p, ec);
        }
    }

    std::string
    track(const std::string &p)
    {
        created_.push_back(p);
        return p;
    }

    static std::string
    storeText(const std::string &p)
    {
        std::ifstream in(p);
        EXPECT_TRUE(in.good()) << p;
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }

    std::vector<std::string> created_;
};

TEST_F(StoreFixture, SaveLoadLookupRoundTrip)
{
    const std::string p = track(path("roundtrip"));
    {
        ResultStore store(p);
        store.put("k1", Json::object(), sampleResult(true));
        store.put("k2", Json::object(), sampleResult(false));
        store.save();
    }
    ResultStore loaded(p);
    ASSERT_TRUE(loaded.load());
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_TRUE(loaded.contains("k1"));
    EXPECT_FALSE(loaded.contains("k3"));
    CampaignResult out;
    ASSERT_TRUE(loaded.lookup("k1", out));
    expectSameResult(sampleResult(true), out);
    EXPECT_FALSE(loaded.lookup("k3", out));
}

TEST_F(StoreFixture, MissingFileLoadsAsFresh)
{
    ResultStore store(path("nonexistent"));
    EXPECT_FALSE(store.load());
    EXPECT_EQ(store.size(), 0u);
}

TEST_F(StoreFixture, MalformedFileIsFatalNotSilent)
{
    const std::string p = track(path("corrupt"));
    std::ofstream(p) << "{\"format\":\"merlin-results-v1\","
                        "\"campaigns\":{\"k\":{}}}";
    ResultStore store(p);
    EXPECT_THROW(store.load(), FatalError);
    std::ofstream(p) << "not json at all";
    EXPECT_THROW(store.load(), FatalError);
}

TEST_F(StoreFixture, TruncatedStoresAreDiagnosedByName)
{
    // The two shapes an interrupted save can leave.  Both must fail
    // with a message that names the store file and the likely cause,
    // not a bare JSON parse error at offset 0.
    const std::string p = track(path("truncated"));
    std::ofstream(p) << ""; // zero-length
    ResultStore store(p);
    try {
        store.load();
        FAIL() << "empty store loaded";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(p), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("empty"),
                  std::string::npos);
    }
    std::ofstream(p) << "   \n\t"; // whitespace-only counts as empty
    EXPECT_THROW(store.load(), FatalError);
    // A valid prefix cut mid-write: unparseable, with the path named.
    std::ofstream(p) << "{\"format\":\"merlin-results-v1\",\"campa";
    try {
        store.load();
        FAIL() << "truncated store loaded";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(p), std::string::npos);
    }
}

TEST_F(StoreFixture, DirectoryAtStorePathIsDiagnosedAsPathMixUp)
{
    // A shard --out-dir passed where the store FILE belongs: the
    // directory opens "successfully" and reads nothing, so without a
    // dedicated check this would be blamed on a truncated save.  The
    // diagnosis must name the path, say it is a directory, and point
    // at `store merge`.
    const std::string p = track(testing::TempDir() + "merlin_dirstore");
    std::filesystem::create_directory(p);
    ResultStore store(p);
    try {
        store.load();
        FAIL() << "directory loaded as a store";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(p), std::string::npos);
        EXPECT_NE(what.find("is a directory"), std::string::npos);
        EXPECT_NE(what.find("store merge"), std::string::npos);
    }
}

TEST_F(StoreFixture, SaveFailureIsFatalNotSilent)
{
    // A store whose temp file cannot be created must throw, not
    // quietly skip persistence.
    ResultStore store(testing::TempDir() +
                      "no_such_dir_merlin/store.json");
    store.put("k", Json::object(), sampleResult(false));
    EXPECT_THROW(store.save(), FatalError);
}

TEST_F(StoreFixture, SelectionRoundTripsAndMergeDropsIt)
{
    // A worker store records which suite share produced it; a merged
    // store must NOT inherit that (it represents the whole suite
    // again), or merged bytes would differ from a single-host run.
    const std::string p = track(path("selection"));
    Json sel = Json::object();
    sel.set("mode", "round-robin");
    sel.set("index", 1);
    sel.set("count", 3);
    {
        ResultStore store(p);
        store.put("k1", Json::object(), sampleResult(false));
        store.setSelection(sel);
        store.save();
    }
    ResultStore loaded(p);
    ASSERT_TRUE(loaded.load());
    ASSERT_TRUE(loaded.selection().has_value());
    EXPECT_EQ(loaded.selection()->dump(), sel.dump());

    ResultStore merged;
    merged.merge(loaded);
    EXPECT_FALSE(merged.selection().has_value());
    EXPECT_EQ(merged.size(), 1u);

    // A plain store without a selection parses back as selection-free.
    loaded.clearSelection();
    loaded.save();
    ResultStore replain(p);
    ASSERT_TRUE(replain.load());
    EXPECT_FALSE(replain.selection().has_value());
}

TEST_F(StoreFixture, EraseRemovesEntries)
{
    ResultStore store;
    store.put("a", Json::object(), sampleResult(false));
    store.put("b", Json::object(), sampleResult(false));
    EXPECT_TRUE(store.erase("a"));
    EXPECT_FALSE(store.erase("a"));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.contains("b"));
}

TEST_F(StoreFixture, GatherExpandsDirectoriesAndRejectsGaps)
{
    // Two shard files in a directory plus one loose store file.
    const std::string dir = track(testing::TempDir() + "merlin_shards");
    std::filesystem::create_directories(dir);
    const auto shard = [&](const char *name, const char *key) {
        ResultStore s(dir + "/" + name);
        s.put(key, Json::object(), sampleResult(false));
        s.save();
        track(dir + "/" + name);
    };
    shard("bb.json", "k2");
    shard("aa.json", "k1");
    std::ofstream(dir + "/notes.txt") << "ignored";
    track(dir + "/notes.txt");
    const std::string loose = track(path("loose"));
    {
        ResultStore s(loose);
        s.put("k3", Json::object(), sampleResult(true));
        s.save();
    }

    const auto files = gatherStoreFiles({dir, loose});
    ASSERT_EQ(files.size(), 3u);
    // Directory members come sorted; non-.json files are skipped.
    EXPECT_EQ(files[0], dir + "/aa.json");
    EXPECT_EQ(files[1], dir + "/bb.json");
    EXPECT_EQ(files[2], loose);

    ResultStore merged;
    const auto stats = mergeStoreFiles(merged, files);
    EXPECT_EQ(stats.added, 3u);
    EXPECT_EQ(merged.size(), 3u);

    // A missing input or a shard-less directory is a gather error —
    // a silently skipped worker would yield an incomplete store.
    EXPECT_THROW(gatherStoreFiles({path("no_such_input")}), FatalError);
    const std::string empty_dir =
        track(testing::TempDir() + "merlin_empty_shards");
    std::filesystem::create_directories(empty_dir);
    EXPECT_THROW(gatherStoreFiles({empty_dir}), FatalError);
}

TEST_F(StoreFixture, SerializationIsIndependentOfInsertionOrder)
{
    const std::string pa = track(path("order_a"));
    const std::string pb = track(path("order_b"));
    ResultStore a(pa), b(pb);
    a.put("x", Json::object(), sampleResult(false));
    a.put("m", Json::object(), sampleResult(true));
    a.put("a", Json::object(), sampleResult(false));
    b.put("a", Json::object(), sampleResult(false));
    b.put("x", Json::object(), sampleResult(false));
    b.put("m", Json::object(), sampleResult(true));
    EXPECT_EQ(a.toJson().dump(2), b.toJson().dump(2));
}

TEST_F(StoreFixture, MemoryOnlyStoreSkipsIo)
{
    ResultStore store; // no path
    store.put("k", Json::object(), sampleResult(false));
    store.save(); // must not touch the filesystem or throw
    EXPECT_FALSE(store.load());
    CampaignResult out;
    EXPECT_TRUE(store.lookup("k", out));
}

// ------------------------------------------ quarantine serialization

TEST(ResultJson, QuarantineRoundTripsAndIsOmittedWhenEmpty)
{
    CampaignResult r = sampleResult(false);
    // A clean campaign serializes without the member at all, so the
    // quarantine feature cannot move a byte of pre-existing stores.
    EXPECT_FALSE(resultToJson(r).find("quarantine"));

    r.quarantine.push_back({0x1234, "simulator exception: boom"});
    r.quarantine.push_back({0xffff'ffff'ffff'ffffull, "wall clock"});
    const Json j = resultToJson(r);
    ASSERT_TRUE(j.find("quarantine"));
    const CampaignResult back = resultFromJson(Json::parse(j.dump(2)));
    ASSERT_EQ(back.quarantine.size(), 2u);
    EXPECT_TRUE(back.quarantine[0] == r.quarantine[0]);
    EXPECT_TRUE(back.quarantine[1] == r.quarantine[1]);
}

TEST(ResultJson, UnrecognizedQuarantineRecordsAreSkippedNotFatal)
{
    CampaignResult r = sampleResult(false);
    r.quarantine.push_back({7, "known shape"});
    std::string text = resultToJson(r).dump();
    // Splice a record of a shape this build does not know — what a
    // store written by a NEWER engine might contain — ahead of the
    // good one.  The reader must keep every outcome and the readable
    // record, and only drop the foreign one (with a warning).
    const std::size_t at = text.find('[', text.find("\"quarantine\""));
    ASSERT_NE(at, std::string::npos);
    text.insert(at + 1, "{\"schema_v2_token\": 9},");
    const CampaignResult back = resultFromJson(Json::parse(text));
    ASSERT_EQ(back.quarantine.size(), 1u);
    EXPECT_TRUE(back.quarantine[0] == r.quarantine[0]);
    expectSameResult(r, back);
}

// ------------------------------------------- section tables (v2)

/** A distinguishable SectionData for section index @p idx. */
core::SectionData
sampleSection(unsigned idx, bool with_quarantine = false)
{
    core::SectionData s;
    s.estimate.add(Outcome::Masked, 100 + idx);
    s.estimate.add(Outcome::SDC, 10 * idx);
    s.injectionRuns = 5 + idx;
    s.earlyExits = idx;
    s.replayMasked = 2 * idx;
    s.replayHandoffs = 7 + idx;
    s.replayCyclesSkipped = 1000 + idx;
    s.replayHeadCycles = 2000 + idx;
    if (with_quarantine)
        s.quarantine.push_back({0xbeef + idx, "wall clock"});
    return s;
}

void
expectSameSection(const core::SectionData &a, const core::SectionData &b)
{
    EXPECT_EQ(a.estimate.counts, b.estimate.counts);
    EXPECT_EQ(a.injectionRuns, b.injectionRuns);
    EXPECT_EQ(a.earlyExits, b.earlyExits);
    EXPECT_EQ(a.replayMasked, b.replayMasked);
    EXPECT_EQ(a.replayHandoffs, b.replayHandoffs);
    EXPECT_EQ(a.replayCyclesSkipped, b.replayCyclesSkipped);
    EXPECT_EQ(a.replayHeadCycles, b.replayHeadCycles);
    ASSERT_EQ(a.quarantine.size(), b.quarantine.size());
    for (std::size_t i = 0; i < a.quarantine.size(); ++i)
        EXPECT_TRUE(a.quarantine[i] == b.quarantine[i]);
}

TEST_F(StoreFixture, SectionTablesRoundTripThroughDisk)
{
    const std::string p = track(path("sections"));
    std::vector<core::SectionData> table;
    for (unsigned i = 0; i < 4; ++i)
        table.push_back(sampleSection(i, i == 2));
    Json spec = Json::object();
    spec.set("workload", "fft");
    spec.set("sections", 4);
    {
        ResultStore store(p);
        store.put("k1", Json::object(), sampleResult(false));
        store.putSections("rk1", spec, 12345, table);
        store.save();
    }
    ResultStore loaded(p);
    ASSERT_TRUE(loaded.load());
    EXPECT_EQ(loaded.size(), 1u);
    const auto hit = loaded.lookupSections("rk1");
    ASSERT_TRUE(hit.found);
    EXPECT_EQ(hit.goldenCycles, 12345u);
    ASSERT_EQ(hit.sections.size(), 4u);
    for (unsigned i = 0; i < 4; ++i) {
        ASSERT_TRUE(hit.sections.count(i));
        expectSameSection(table[i], hit.sections.at(i));
    }
    EXPECT_FALSE(loaded.lookupSections("rk2").found);

    // eraseSections removes the table without touching campaigns.
    EXPECT_TRUE(loaded.eraseSections("rk1"));
    EXPECT_FALSE(loaded.eraseSections("rk1"));
    EXPECT_TRUE(loaded.contains("k1"));
}

TEST_F(StoreFixture, SectionSerializationIsIndependentOfInsertionOrder)
{
    const std::vector<core::SectionData> t1 = {sampleSection(0),
                                               sampleSection(1)};
    const std::vector<core::SectionData> t2 = {sampleSection(2)};
    ResultStore a, b;
    a.putSections("zz", Json::object(), 100, t1);
    a.putSections("aa", Json::object(), 200, t2);
    b.putSections("aa", Json::object(), 200, t2);
    b.putSections("zz", Json::object(), 100, t1);
    EXPECT_EQ(a.toJson().dump(2), b.toJson().dump(2));
}

TEST_F(StoreFixture, SectionlessStoresCarryNoSectionsMember)
{
    // The v2 member is emitted only when tables exist, so a suite run
    // without --sections writes the same campaign-only shape as v1
    // (modulo the format tag).
    ResultStore store;
    store.put("k", Json::object(), sampleResult(false));
    EXPECT_FALSE(store.toJson().find("sections"));
    EXPECT_EQ(store.toJson().strOr("format", ""), "merlin-store-v2");
}

TEST_F(StoreFixture, LegacyV1TagLoadsAndResavesAsV2)
{
    const std::string p = track(path("v1_upgrade"));
    {
        ResultStore store(p);
        store.put("k1", Json::object(), sampleResult(true));
        store.save();
    }
    // Rewrite the file as a v1-era store: old tag, no sections.
    std::string text = storeText(p);
    const std::size_t at = text.find("merlin-store-v2");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, std::strlen("merlin-store-v2"), "merlin-results-v1");
    std::ofstream(p, std::ios::trunc) << text;

    ResultStore loaded(p);
    ASSERT_TRUE(loaded.load());
    EXPECT_EQ(loaded.size(), 1u);
    CampaignResult out;
    ASSERT_TRUE(loaded.lookup("k1", out));
    expectSameResult(sampleResult(true), out);
    // Saving writes the current format; a reload round-trips.
    loaded.save();
    EXPECT_NE(storeText(p).find("merlin-store-v2"), std::string::npos);
    ASSERT_TRUE(loaded.load());
}

TEST_F(StoreFixture, MergeFoldsSectionTables)
{
    const std::vector<core::SectionData> t1 = {sampleSection(0),
                                               sampleSection(1)};
    const std::vector<core::SectionData> t2 = {sampleSection(2),
                                               sampleSection(3)};
    ResultStore a;
    a.putSections("shared", Json::object(), 100, t1);
    ResultStore b;
    b.putSections("shared", Json::object(), 100, t1); // identical
    b.putSections("only_b", Json::object(), 200, t2);

    ResultStore merged;
    auto stats = merged.merge(a);
    EXPECT_EQ(stats.sectionEntriesAdded, t1.size());
    stats = merged.merge(b);
    EXPECT_EQ(stats.sectionEntriesAdded, t2.size()); // "shared" dedups
    EXPECT_EQ(merged.sectionTables().size(), 2u);
    // Merge order cannot leak into the bytes.
    ResultStore reversed;
    reversed.merge(b);
    reversed.merge(a);
    EXPECT_EQ(merged.toJson().dump(2), reversed.toJson().dump(2));

    // A same-key table with a DIFFERENT payload is a conflict: fatal
    // by default, resolved by force_theirs.
    ResultStore conflicting;
    conflicting.putSections("shared", Json::object(), 100,
                            {sampleSection(7), sampleSection(8)});
    EXPECT_THROW(merged.merge(conflicting), FatalError);
    merged.merge(conflicting, /*force_theirs=*/true);
    const auto hit = merged.lookupSections("shared");
    ASSERT_TRUE(hit.found);
    expectSameSection(sampleSection(7), hit.sections.at(0));
}

TEST_F(StoreFixture, MergeFillsMissingSectionEntriesOfATable)
{
    // Two workers ran disjoint halves of one table (same reduced key,
    // same golden run): the merge must interleave their entries.
    ResultStore evens, odds;
    ResultStore::SectionTable half;
    half.spec = Json::object();
    half.goldenCycles = 100;
    half.entries[0] = sectionDataToJson(sampleSection(0));
    half.entries[2] = sectionDataToJson(sampleSection(2));
    evens.putSectionTable("rk", half);
    half.entries.clear();
    half.entries[1] = sectionDataToJson(sampleSection(1));
    half.entries[3] = sectionDataToJson(sampleSection(3));
    odds.putSectionTable("rk", half);

    ResultStore merged;
    merged.merge(evens);
    const auto stats = merged.merge(odds);
    EXPECT_EQ(stats.sectionEntriesAdded, 2u);
    const auto hit = merged.lookupSections("rk");
    ASSERT_TRUE(hit.found);
    ASSERT_EQ(hit.sections.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        expectSameSection(sampleSection(i), hit.sections.at(i));
}

TEST_F(StoreFixture, UnrecognizedQuarantineWarnsOncePerStoreLoad)
{
    // Three foreign records spread over a campaign entry and two
    // section entries must produce ONE aggregated warning naming the
    // count — not three identical lines.
    const std::string p = track(path("quarantine_dedupe"));
    {
        ResultStore store(p);
        CampaignResult r = sampleResult(false);
        r.quarantine.push_back({1, "known"});
        store.put("k1", Json::object(), r);
        std::vector<core::SectionData> table = {sampleSection(0, true),
                                                sampleSection(1, true)};
        store.putSections("rk", Json::object(), 100, table);
        store.save();
    }
    std::string text = storeText(p);
    std::size_t spliced = 0;
    const std::string marker = "\"quarantine\": [";
    for (std::size_t at = text.find(marker); at != std::string::npos;
         at = text.find(marker, at + 1)) {
        text.insert(at + marker.size(), "{\"future_field\": 9},");
        ++spliced;
    }
    ASSERT_EQ(spliced, 3u);
    std::ofstream(p, std::ios::trunc) << text;

    ResultStore loaded(p);
    testing::internal::CaptureStderr();
    ASSERT_TRUE(loaded.load());
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("skipped 3 unrecognized quarantine records"),
              std::string::npos)
        << err;
    // One line, not one per record.
    std::size_t warnings = 0;
    const std::string warned = "unrecognized quarantine";
    for (std::size_t at = err.find(warned); at != std::string::npos;
         at = err.find(warned, at + 1))
        ++warnings;
    EXPECT_EQ(warnings, 1u) << err;
    // Every readable record survived the skip.
    CampaignResult out;
    ASSERT_TRUE(loaded.lookup("k1", out));
    ASSERT_EQ(out.quarantine.size(), 1u);
    EXPECT_EQ(out.quarantine[0].reason, "known");
    const auto hit = loaded.lookupSections("rk");
    ASSERT_TRUE(hit.found);
    ASSERT_EQ(hit.sections.at(0).quarantine.size(), 1u);
    ASSERT_EQ(hit.sections.at(1).quarantine.size(), 1u);
}

// ------------------------------------------------- OutcomeJournal

class JournalFixture : public StoreFixture
{
  protected:
    std::string
    journalPath(const char *name)
    {
        return track(testing::TempDir() + "merlin_journal_" + name);
    }

    /** restore() into a key->outcome map plus the counters. */
    OutcomeJournal::Restored
    restoreAll(OutcomeJournal &j,
               std::map<std::uint64_t, faultsim::Outcome> &seen)
    {
        return j.restore([&](std::uint64_t key, faultsim::Outcome o) {
            seen[key] = o;
        });
    }
};

TEST_F(JournalFixture, AppendRestoreRoundTrip)
{
    const std::string p = journalPath("roundtrip");
    faultsim::InjectDetail plain;
    faultsim::InjectDetail early;
    early.earlyExit = true;
    faultsim::InjectDetail sick;
    sick.quarantined = true;
    sick.reason = "simulator exception: boom";
    {
        OutcomeJournal j(p, "spec-a");
        std::map<std::uint64_t, faultsim::Outcome> none;
        const auto r = restoreAll(j, none); // missing file: fresh start
        EXPECT_EQ(r.runs, 0u);
        EXPECT_TRUE(none.empty());
        j.open();
        j.append(1, faultsim::Outcome::Masked, plain);
        j.append(2, faultsim::Outcome::SDC, early);
        j.append(3, faultsim::Outcome::Crash, sick);
        j.close();
    }
    OutcomeJournal j(p, "spec-a");
    std::map<std::uint64_t, faultsim::Outcome> seen;
    const auto r = restoreAll(j, seen);
    EXPECT_EQ(r.runs, 3u);
    EXPECT_EQ(r.earlyExits, 1u);
    ASSERT_EQ(r.quarantine.size(), 1u);
    EXPECT_EQ(r.quarantine[0].faultKey, 3u);
    EXPECT_EQ(r.quarantine[0].reason, sick.reason);
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[1], faultsim::Outcome::Masked);
    EXPECT_EQ(seen[2], faultsim::Outcome::SDC);
    EXPECT_EQ(seen[3], faultsim::Outcome::Crash);
}

TEST_F(JournalFixture, TornFinalLineIsTruncatedAndAppendsResume)
{
    const std::string p = journalPath("torn");
    {
        OutcomeJournal j(p, "spec-a");
        j.open();
        j.append(1, faultsim::Outcome::Masked, {});
        j.append(2, faultsim::Outcome::DUE, {});
        j.close();
    }
    const auto whole = std::filesystem::file_size(p);
    {
        // The mid-append crash artifact: a final line with no newline.
        std::ofstream app(p, std::ios::app | std::ios::binary);
        app << "[3, 1";
    }
    {
        OutcomeJournal j(p, "spec-a");
        std::map<std::uint64_t, faultsim::Outcome> seen;
        const auto r = restoreAll(j, seen);
        EXPECT_EQ(r.runs, 2u); // the torn entry re-runs
        EXPECT_EQ(seen.count(3), 0u);
        // The torn bytes are gone, so a resumed run appends after a
        // well-formed prefix...
        EXPECT_EQ(std::filesystem::file_size(p), whole);
        j.open();
        j.append(3, faultsim::Outcome::SDC, {});
        j.close();
    }
    // ...and the next restore sees all three.
    OutcomeJournal j(p, "spec-a");
    std::map<std::uint64_t, faultsim::Outcome> seen;
    EXPECT_EQ(restoreAll(j, seen).runs, 3u);
    EXPECT_EQ(seen[3], faultsim::Outcome::SDC);
}

TEST_F(JournalFixture, TornHeaderStartsTheCampaignOver)
{
    const std::string p = journalPath("torn-header");
    {
        std::ofstream out(p, std::ios::binary);
        out << "{\"format\":\"merlin-jour"; // crashed mid-header
    }
    OutcomeJournal j(p, "spec-a");
    std::map<std::uint64_t, faultsim::Outcome> seen;
    EXPECT_EQ(restoreAll(j, seen).runs, 0u);
    EXPECT_TRUE(seen.empty());
    // open() rewrites a good header; the journal is usable again.
    j.open();
    j.append(9, faultsim::Outcome::Timeout, {});
    j.close();
    OutcomeJournal again(p, "spec-a");
    EXPECT_EQ(restoreAll(again, seen).runs, 1u);
    EXPECT_EQ(seen[9], faultsim::Outcome::Timeout);
}

TEST_F(JournalFixture, CompleteGarbageLineIsFatal)
{
    const std::string p = journalPath("corrupt");
    {
        OutcomeJournal j(p, "spec-a");
        j.open();
        j.close();
    }
    {
        std::ofstream app(p, std::ios::app | std::ios::binary);
        app << "not json\n"; // complete line => not a crash artifact
    }
    OutcomeJournal j(p, "spec-a");
    EXPECT_THROW(j.restore([](std::uint64_t, faultsim::Outcome) {}),
                 FatalError);
}

TEST_F(JournalFixture, SpecMismatchIsFatal)
{
    const std::string p = journalPath("mismatch");
    {
        OutcomeJournal j(p, "spec-a");
        j.open();
        j.append(1, faultsim::Outcome::Masked, {});
        j.close();
    }
    OutcomeJournal j(p, "spec-b");
    EXPECT_THROW(j.restore([](std::uint64_t, faultsim::Outcome) {}),
                 FatalError);
}

TEST_F(JournalFixture, OutcomeBeyondThisBuildIsFatal)
{
    const std::string p = journalPath("newer");
    {
        OutcomeJournal j(p, "spec-a");
        j.open();
        j.close();
    }
    {
        std::ofstream app(p, std::ios::app | std::ios::binary);
        app << "[1, 250, 0]\n"; // outcome class a newer build added
    }
    OutcomeJournal j(p, "spec-a");
    EXPECT_THROW(j.restore([](std::uint64_t, faultsim::Outcome) {}),
                 FatalError);
}

TEST_F(JournalFixture, EmptyPathDisablesEveryOperation)
{
    OutcomeJournal j("", "spec-a");
    std::map<std::uint64_t, faultsim::Outcome> seen;
    EXPECT_EQ(restoreAll(j, seen).runs, 0u);
    j.open();
    j.append(1, faultsim::Outcome::Masked, {});
    j.close();
    j.remove();
    EXPECT_TRUE(seen.empty());
}

TEST_F(JournalFixture, RemoveDeletesTheFile)
{
    const std::string p = journalPath("remove");
    OutcomeJournal j(p, "spec-a");
    j.open();
    j.append(1, faultsim::Outcome::Masked, {});
    j.remove();
    EXPECT_FALSE(std::filesystem::exists(p));
    j.remove(); // idempotent
}

} // namespace
} // namespace merlin::io
