/**
 * @file
 * Differential-sweep tests: ResultStore::merge conflict policy, shard
 * spill + merge byte-fidelity against a single-store run, SuiteDiff
 * join/masking semantics, the reliability-invariant property suite
 * (diff(A,A) == 0, antisymmetry, --jobs and shard-order invariance)
 * and a golden-file regression lock on the diff report format.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "base/statistics.hh"
#include "io/result_store.hh"
#include "sched/diff.hh"
#include "sched/suite.hh"

namespace merlin::sched
{
namespace
{

using core::CampaignResult;
using faultsim::Outcome;
using io::Json;
using io::ResultStore;

// ------------------------------------------------------ test helpers

/** A spec whose only interesting knobs are the workload and L1D size. */
CampaignSpec
makeSpec(const std::string &workload, unsigned l1d_kb,
         std::uint64_t seed = 7)
{
    CampaignSpec s;
    s.workload = workload;
    s.structure = uarch::Structure::L1DCache;
    s.l1dKb = l1d_kb;
    s.window = 0;
    s.sampling = core::specFixed(100);
    s.seed = seed;
    return s;
}

/** A synthetic result with the fields the differ reads. */
CampaignResult
makeResult(std::uint64_t masked, std::uint64_t sdc, std::uint64_t due,
           std::uint64_t initial, std::uint64_t runs,
           std::uint64_t exits)
{
    CampaignResult r;
    r.goldenCycles = 1000;
    r.goldenInstret = 800;
    r.initialFaults = initial;
    r.aceMasked = masked / 2;
    r.survivors = initial - masked / 2;
    r.numGroups = 10;
    r.injections = runs;
    r.merlinEstimate.add(Outcome::Masked, masked);
    r.merlinEstimate.add(Outcome::SDC, sdc);
    r.merlinEstimate.add(Outcome::DUE, due);
    r.merlinSurvivorEstimate.add(Outcome::SDC, sdc);
    r.speedupAce = 2.0;
    r.speedupTotal = 8.0;
    r.injectionRuns = runs;
    r.earlyExits = exits;
    return r;
}

void
putSpec(ResultStore &store, const CampaignSpec &spec,
        const CampaignResult &res)
{
    store.put(spec.key(), spec.toJson(), res);
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------- merging

class MergeFixture : public ::testing::Test
{
  protected:
    std::string
    path(const char *name)
    {
        std::string p =
            testing::TempDir() + "merlin_merge_" + name + ".json";
        created_.push_back(p);
        return p;
    }

    void
    TearDown() override
    {
        for (const std::string &p : created_)
            std::remove(p.c_str());
    }

    std::vector<std::string> created_;
};

TEST_F(MergeFixture, DisjointStoresUnion)
{
    ResultStore a, b;
    putSpec(a, makeSpec("qsort", 64), makeResult(80, 15, 5, 100, 20, 4));
    putSpec(b, makeSpec("fft", 64), makeResult(70, 20, 10, 100, 25, 6));

    const auto stats = a.merge(b);
    EXPECT_EQ(stats.added, 1u);
    EXPECT_EQ(stats.identical, 0u);
    EXPECT_EQ(stats.replaced, 0u);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_TRUE(a.contains(makeSpec("fft", 64).key()));
}

TEST_F(MergeFixture, OverlappingIdenticalPayloadsAreIdempotent)
{
    ResultStore a, b;
    const CampaignSpec shared = makeSpec("qsort", 64);
    const CampaignResult res = makeResult(80, 15, 5, 100, 20, 4);
    putSpec(a, shared, res);
    putSpec(b, shared, res);
    putSpec(b, makeSpec("sha", 64), makeResult(60, 30, 10, 100, 30, 2));

    const auto stats = a.merge(b);
    EXPECT_EQ(stats.added, 1u);
    EXPECT_EQ(stats.identical, 1u);
    EXPECT_EQ(stats.replaced, 0u);
    EXPECT_EQ(a.size(), 2u);
}

TEST_F(MergeFixture, ConflictingPayloadsAreFatalUnlessForced)
{
    const CampaignSpec shared = makeSpec("qsort", 64);
    ResultStore a, b;
    putSpec(a, shared, makeResult(80, 15, 5, 100, 20, 4));
    putSpec(b, shared, makeResult(80, 15, 5, 100, 20, 9999));

    EXPECT_THROW(a.merge(b), FatalError);

    const auto stats = a.merge(b, /*force_theirs=*/true);
    EXPECT_EQ(stats.replaced, 1u);
    CampaignResult out;
    ASSERT_TRUE(a.lookup(shared.key(), out));
    EXPECT_EQ(out.earlyExits, 9999u);
}

TEST_F(MergeFixture, MergeOrderDoesNotChangeTheBytes)
{
    const auto mk = [&](const char *wl, unsigned kb) {
        ResultStore s;
        putSpec(s, makeSpec(wl, kb), makeResult(80, 15, 5, 100, 20, 4));
        return s;
    };
    const ResultStore s1 = mk("qsort", 64);
    const ResultStore s2 = mk("fft", 64);
    const ResultStore s3 = mk("sha", 32);

    ResultStore fwd, rev;
    fwd.merge(s1);
    fwd.merge(s2);
    fwd.merge(s3);
    rev.merge(s3);
    rev.merge(s2);
    rev.merge(s1);
    EXPECT_EQ(fwd.toJson().dump(2), rev.toJson().dump(2));
}

/**
 * The acceptance property: a suite spilling per-campaign shards
 * produces, after `store merge`, a file byte-for-byte equal to the
 * single-store run — in any shard fold order.
 */
TEST_F(MergeFixture, ShardSpillPlusMergeEqualsSingleStoreBytes)
{
    std::vector<CampaignSpec> specs;
    specs.push_back(makeSpec("qsort", 64));
    specs.back().sampling = core::specFixed(150);
    specs.push_back(makeSpec("fft", 64));
    specs.back().sampling = core::specFixed(150);

    const std::string shardDir =
        testing::TempDir() + "merlin_merge_shards";
    SuiteOptions opts;
    opts.jobs = 2;
    opts.recordTiming = false;
    opts.storePath = path("single");
    opts.shardDir = shardDir;
    SuiteScheduler(specs, opts).run();

    std::vector<std::string> shards;
    for (const auto &e :
         std::filesystem::directory_iterator(shardDir)) {
        shards.push_back(e.path().string());
        created_.push_back(e.path().string());
    }
    ASSERT_EQ(shards.size(), specs.size());
    std::sort(shards.begin(), shards.end());

    const auto mergeAll = [&](const std::vector<std::string> &files,
                              const std::string &out) {
        ResultStore merged(out);
        for (const std::string &f : files) {
            ResultStore part(f);
            EXPECT_TRUE(part.load());
            merged.merge(part);
        }
        merged.save();
    };
    const std::string fwd = path("folded_fwd");
    const std::string rev = path("folded_rev");
    mergeAll(shards, fwd);
    auto reversed = shards;
    std::reverse(reversed.begin(), reversed.end());
    mergeAll(reversed, rev);

    const std::string single = fileBytes(opts.storePath);
    EXPECT_FALSE(single.empty());
    EXPECT_EQ(single, fileBytes(fwd)) << "shard merge diverged";
    EXPECT_EQ(single, fileBytes(rev)) << "shard order leaked in";

    // A --resume re-run serves every campaign from the store; the
    // shard directory must STILL come out complete, or a distributed
    // gather over resumed workers would silently drop campaigns.
    std::error_code ec;
    std::filesystem::remove_all(shardDir, ec);
    opts.reuseCached = true;
    SuiteResult resumed = SuiteScheduler(specs, opts).run();
    EXPECT_EQ(resumed.campaignsRun, 0u);
    const std::string refolded = path("folded_resumed");
    std::vector<std::string> reshards;
    for (const auto &e :
         std::filesystem::directory_iterator(shardDir)) {
        reshards.push_back(e.path().string());
        created_.push_back(e.path().string());
    }
    ASSERT_EQ(reshards.size(), specs.size());
    std::sort(reshards.begin(), reshards.end());
    mergeAll(reshards, refolded);
    EXPECT_EQ(single, fileBytes(refolded))
        << "cache hits skipped the shard spill";

    std::filesystem::remove_all(shardDir, ec);
}

// -------------------------------------------------- SuiteDiff joins

TEST(SuiteDiff, JoinsAcrossTheMaskedAxisAndReportsOneSiders)
{
    ResultStore a, b;
    // qsort pairs across the axis; fft exists only in A, sha only in B.
    putSpec(a, makeSpec("qsort", 64), makeResult(80, 15, 5, 100, 20, 4));
    putSpec(a, makeSpec("fft", 64), makeResult(70, 20, 10, 100, 25, 6));
    putSpec(b, makeSpec("qsort", 16), makeResult(70, 25, 5, 100, 30, 2));
    putSpec(b, makeSpec("sha", 16), makeResult(60, 30, 10, 100, 30, 2));

    DiffOptions opts;
    opts.axis = {"l1d_kb"};
    const SuiteDiffResult diff = SuiteDiff(a, b, opts).run();

    ASSERT_EQ(diff.deltas.size(), 1u);
    ASSERT_EQ(diff.onlyA.size(), 1u);
    ASSERT_EQ(diff.onlyB.size(), 1u);
    EXPECT_EQ(diff.onlyA[0].spec.strOr("workload", ""), "fft");
    EXPECT_EQ(diff.onlyB[0].spec.strOr("workload", ""), "sha");
    EXPECT_EQ(diff.campaignsA, 2u);
    EXPECT_EQ(diff.campaignsB, 2u);

    const CampaignDelta &d = diff.deltas[0];
    EXPECT_EQ(d.maskedSpec.strOr("workload", ""), "qsort");
    // The axis member is masked out of the join spec but recorded
    // per side.
    EXPECT_FALSE(d.maskedSpec.find("l1d_kb"));
    EXPECT_EQ(d.axisA.at("l1d_kb").asU64(), 64u);
    EXPECT_EQ(d.axisB.at("l1d_kb").asU64(), 16u);
    EXPECT_EQ(d.keyA, makeSpec("qsort", 64).key());
    EXPECT_EQ(d.keyB, makeSpec("qsort", 16).key());

    // Hand-checked deltas: AVF_A = 20/100, AVF_B = 30/100.
    EXPECT_DOUBLE_EQ(d.avfA, 0.20);
    EXPECT_DOUBLE_EQ(d.avfB, 0.30);
    EXPECT_EQ(d.dAvf, d.avfB - d.avfA); // exactly B - A, bit for bit
    EXPECT_EQ(d.dClasses[static_cast<unsigned>(Outcome::Masked)], -10);
    EXPECT_EQ(d.dClasses[static_cast<unsigned>(Outcome::SDC)], 10);
    EXPECT_EQ(d.dClasses[static_cast<unsigned>(Outcome::DUE)], 0);
    EXPECT_EQ(d.dRuns, 10);
    EXPECT_DOUBLE_EQ(d.eeRateA, 0.20);
    EXPECT_DOUBLE_EQ(d.eeRateB, 2.0 / 30.0);

    // The CI is the paper's sampling margin per side, combined in
    // quadrature: e = z(c) * sqrt(0.25 / initialFaults).
    const double e = stats::zForConfidence(opts.confidence) *
                     std::sqrt(0.25 / 100.0);
    ASSERT_TRUE(d.dAvfCi.has_value());
    EXPECT_DOUBLE_EQ(*d.dAvfCi, std::sqrt(2.0 * e * e));
}

// -------------------------------------------------- sampling margins

TEST(SamplingMargin, MatchesTheLeveugleFormula)
{
    const auto m = samplingMargin(100, 0.9);
    ASSERT_TRUE(m.has_value());
    EXPECT_DOUBLE_EQ(*m, stats::zForConfidence(0.9) *
                             std::sqrt(0.25 / 100.0));
    // More faults, tighter margin.
    EXPECT_LT(*samplingMargin(400, 0.9), *m);
}

TEST(SamplingMargin, ZeroFaultSideHasNoMarginNotZero)
{
    // A side with no sample has no margin at all — reporting 0 would
    // claim false certainty (the original sideMargin() bug).
    EXPECT_FALSE(samplingMargin(0, 0.998).has_value());
    EXPECT_FALSE(quadratureMargin(std::nullopt, 0.1).has_value());
    EXPECT_FALSE(quadratureMargin(0.1, std::nullopt).has_value());
    const auto q = quadratureMargin(0.3, 0.4);
    ASSERT_TRUE(q.has_value());
    EXPECT_DOUBLE_EQ(*q, 0.5);
}

/**
 * Regression: a joined pair with a zero-fault side (e.g. a
 * grouping-only campaign stored with initialFaults == 0 on one side)
 * must yield an ABSENT per-pair CI and an absent aggregate CI — never
 * inf/NaN, and never a false-certainty 0 — while the finite deltas
 * keep flowing.
 */
TEST(SamplingMargin, ZeroFaultPairPropagatesAbsenceIntoTheDiff)
{
    ResultStore a, b;
    putSpec(a, makeSpec("qsort", 64), makeResult(80, 15, 5, 100, 20, 4));
    CampaignResult empty = makeResult(0, 0, 0, 100, 0, 0);
    empty.initialFaults = 0; // the zero-fault side
    putSpec(b, makeSpec("qsort", 16), empty);

    DiffOptions opts;
    opts.axis = {"l1d_kb"};
    const SuiteDiffResult diff = SuiteDiff(a, b, opts).run();
    ASSERT_EQ(diff.deltas.size(), 1u);
    EXPECT_FALSE(diff.deltas[0].dAvfCi.has_value());
    EXPECT_FALSE(diff.meanDAvfCi.has_value());
    // Absent margins serialize as null and render as "-", without
    // poisoning anything else in the report.
    const Json doc = diff.toJson();
    EXPECT_TRUE(doc.at("deltas")[0].at("d_avf_ci").isNull());
    EXPECT_TRUE(doc.at("aggregate").at("mean_d_avf_ci").isNull());
    const std::string table = diff.table();
    EXPECT_NE(table.find("-"), std::string::npos);
    EXPECT_EQ(table.find("nan"), std::string::npos);
    EXPECT_EQ(table.find("inf"), std::string::npos);
}

TEST(SuiteDiff, EmptyAxisMeansExactJoin)
{
    ResultStore a, b;
    putSpec(a, makeSpec("qsort", 64), makeResult(80, 15, 5, 100, 20, 4));
    putSpec(b, makeSpec("qsort", 64), makeResult(80, 15, 5, 100, 20, 4));
    putSpec(b, makeSpec("qsort", 16), makeResult(70, 25, 5, 100, 30, 2));

    const SuiteDiffResult diff = SuiteDiff(a, b, {}).run();
    ASSERT_EQ(diff.deltas.size(), 1u);
    EXPECT_DOUBLE_EQ(diff.deltas[0].dAvf, 0.0);
    ASSERT_EQ(diff.onlyB.size(), 1u);
    EXPECT_EQ(diff.onlyB[0].key, makeSpec("qsort", 16).key());
}

TEST(SuiteDiff, UnknownAxisKnobIsFatal)
{
    ResultStore a, b;
    EXPECT_THROW(SuiteDiff(a, b, DiffOptions{{"l1d_size"}, 0.998}),
                 FatalError);
    EXPECT_THROW(SuiteDiff(a, b, DiffOptions{{"l1d_kb"}, 1.5}),
                 FatalError);
}

TEST(SuiteDiff, AmbiguousJoinWithinOneStoreIsFatal)
{
    // Store A itself contains the sweep: qsort at 64 AND 32 KB both
    // collapse onto one join key once l1d_kb is masked.
    ResultStore a, b;
    putSpec(a, makeSpec("qsort", 64), makeResult(80, 15, 5, 100, 20, 4));
    putSpec(a, makeSpec("qsort", 32), makeResult(75, 20, 5, 100, 22, 4));
    putSpec(b, makeSpec("qsort", 16), makeResult(70, 25, 5, 100, 30, 2));

    DiffOptions opts;
    opts.axis = {"l1d_kb"};
    EXPECT_THROW(SuiteDiff(a, b, opts).run(), FatalError);
    // Without masking the two entries are distinct: no ambiguity.
    EXPECT_NO_THROW(SuiteDiff(a, b, {}).run());
}

TEST(SuiteDiff, MultiKnobAxisMasksEveryListedMember)
{
    ResultStore a, b;
    CampaignSpec sa = makeSpec("qsort", 64);
    CampaignSpec sb = makeSpec("qsort", 16);
    sb.seed = 9; // second swept knob
    putSpec(a, sa, makeResult(80, 15, 5, 100, 20, 4));
    putSpec(b, sb, makeResult(70, 25, 5, 100, 30, 2));

    DiffOptions one;
    one.axis = {"l1d_kb"};
    EXPECT_TRUE(SuiteDiff(a, b, one).run().deltas.empty());

    DiffOptions both;
    both.axis = {"l1d_kb", "seed"};
    const SuiteDiffResult diff = SuiteDiff(a, b, both).run();
    ASSERT_EQ(diff.deltas.size(), 1u);
    EXPECT_EQ(diff.deltas[0].axisA.at("seed").asU64(), 7u);
    EXPECT_EQ(diff.deltas[0].axisB.at("seed").asU64(), 9u);
}

// ------------------------------------------- reliability invariants

/** Two-sided synthetic sweep with several campaigns for properties. */
void
buildSweep(ResultStore &a, ResultStore &b)
{
    putSpec(a, makeSpec("qsort", 64), makeResult(80, 15, 5, 100, 20, 4));
    putSpec(a, makeSpec("fft", 64), makeResult(70, 20, 10, 120, 25, 6));
    putSpec(a, makeSpec("sha", 64), makeResult(90, 8, 2, 80, 12, 1));
    putSpec(b, makeSpec("qsort", 16), makeResult(70, 25, 5, 100, 30, 2));
    putSpec(b, makeSpec("fft", 16), makeResult(60, 30, 10, 120, 33, 3));
    putSpec(b, makeSpec("sha", 16), makeResult(85, 12, 3, 80, 16, 0));
}

TEST(DiffInvariants, DiffAgainstItselfIsAllZero)
{
    ResultStore a, b;
    buildSweep(a, b);
    DiffOptions opts;
    opts.axis = {"l1d_kb"};
    const SuiteDiffResult self = SuiteDiff(a, a, opts).run();

    ASSERT_EQ(self.deltas.size(), a.entries().size());
    EXPECT_TRUE(self.onlyA.empty());
    EXPECT_TRUE(self.onlyB.empty());
    for (const CampaignDelta &d : self.deltas) {
        EXPECT_EQ(d.dAvf, 0.0);
        EXPECT_EQ(d.dRuns, 0);
        EXPECT_EQ(d.dInjections, 0);
        EXPECT_EQ(d.dEeRate, 0.0);
        for (unsigned c = 0; c < faultsim::NUM_OUTCOMES; ++c) {
            EXPECT_EQ(d.dClasses[c], 0);
            EXPECT_EQ(d.dClassFracs[c], 0.0);
        }
        // Exactly +0.0, so the serialized report says "0", not "-0".
        EXPECT_FALSE(std::signbit(d.dAvf));
    }
    EXPECT_EQ(self.meanDAvf, 0.0);
    EXPECT_EQ(self.meanAbsDAvf, 0.0);
    EXPECT_EQ(self.dRuns, 0);
    EXPECT_EQ(self.dEeRate, 0.0);
    for (unsigned c = 0; c < faultsim::NUM_OUTCOMES; ++c)
        EXPECT_EQ(self.dClassTotals[c], 0);
}

TEST(DiffInvariants, DiffIsAntisymmetric)
{
    ResultStore a, b;
    buildSweep(a, b);
    DiffOptions opts;
    opts.axis = {"l1d_kb"};
    const SuiteDiffResult ab = SuiteDiff(a, b, opts).run();
    const SuiteDiffResult ba = SuiteDiff(b, a, opts).run();

    ASSERT_EQ(ab.deltas.size(), 3u);
    ASSERT_EQ(ba.deltas.size(), ab.deltas.size());
    for (std::size_t i = 0; i < ab.deltas.size(); ++i) {
        const CampaignDelta &f = ab.deltas[i];
        const CampaignDelta &r = ba.deltas[i];
        EXPECT_EQ(f.joinKey, r.joinKey);
        // Sides swap...
        EXPECT_DOUBLE_EQ(f.avfA, r.avfB);
        EXPECT_DOUBLE_EQ(f.avfB, r.avfA);
        EXPECT_EQ(f.keyA, r.keyB);
        EXPECT_EQ(f.axisA.dump(), r.axisB.dump());
        // ...every delta negates...
        EXPECT_DOUBLE_EQ(f.dAvf, -r.dAvf);
        EXPECT_EQ(f.dRuns, -r.dRuns);
        EXPECT_EQ(f.dInjections, -r.dInjections);
        EXPECT_DOUBLE_EQ(f.dEeRate, -r.dEeRate);
        for (unsigned c = 0; c < faultsim::NUM_OUTCOMES; ++c) {
            EXPECT_EQ(f.dClasses[c], -r.dClasses[c]);
            EXPECT_DOUBLE_EQ(f.dClassFracs[c], -r.dClassFracs[c]);
        }
        // ...and the uncertainty does not.
        ASSERT_TRUE(f.dAvfCi.has_value());
        ASSERT_TRUE(r.dAvfCi.has_value());
        EXPECT_DOUBLE_EQ(*f.dAvfCi, *r.dAvfCi);
    }
    EXPECT_DOUBLE_EQ(ab.meanDAvf, -ba.meanDAvf);
    EXPECT_DOUBLE_EQ(ab.meanAbsDAvf, ba.meanAbsDAvf);
    ASSERT_TRUE(ab.meanDAvfCi.has_value());
    ASSERT_TRUE(ba.meanDAvfCi.has_value());
    EXPECT_DOUBLE_EQ(*ab.meanDAvfCi, *ba.meanDAvfCi);
    EXPECT_EQ(ab.dRuns, -ba.dRuns);
    EXPECT_DOUBLE_EQ(ab.dEeRate, -ba.dEeRate);
    for (unsigned c = 0; c < faultsim::NUM_OUTCOMES; ++c)
        EXPECT_EQ(ab.dClassTotals[c], -ba.dClassTotals[c]);
}

/**
 * End-to-end invariance on REAL campaigns: the serialized diff of two
 * sweep sides must not change with the job count that produced either
 * side, nor with the shard order a side was reassembled from.
 */
TEST(DiffInvariants, ReportInvariantToJobsAndShardOrder)
{
    const auto sideSpecs = [](unsigned l1d_kb) {
        std::vector<CampaignSpec> specs;
        for (const char *wl : {"qsort", "fft"}) {
            CampaignSpec s = makeSpec(wl, l1d_kb);
            s.sampling = core::specFixed(150);
            specs.push_back(std::move(s));
        }
        return specs;
    };
    const auto runSide = [&](unsigned l1d_kb, unsigned jobs) {
        const auto specs = sideSpecs(l1d_kb);
        SuiteOptions opts;
        opts.jobs = jobs;
        opts.recordTiming = false;
        SuiteResult suite = SuiteScheduler(specs, opts).run();
        ResultStore store;
        for (std::size_t i = 0; i < specs.size(); ++i)
            store.put(specs[i].key(), specs[i].toJson(),
                      suite.results[i]);
        return store;
    };

    DiffOptions dopts;
    dopts.axis = {"l1d_kb"};
    const auto diffDump = [&](const ResultStore &a,
                              const ResultStore &b) {
        return SuiteDiff(a, b, dopts).run().toJson().dump(2);
    };

    const ResultStore a1 = runSide(64, 1);
    const ResultStore a4 = runSide(64, 4);
    const ResultStore b1 = runSide(16, 1);
    const ResultStore b4 = runSide(16, 4);

    const std::string ref = diffDump(a1, b1);
    EXPECT_FALSE(ref.empty());
    EXPECT_EQ(ref, diffDump(a4, b4)) << "--jobs leaked into the diff";
    EXPECT_EQ(ref, diffDump(a1, b4));
    EXPECT_EQ(ref, diffDump(a4, b1));

    // Shard-order invariance: rebuild side A by merging its entries
    // in reversed order; the diff must not move.
    ResultStore reassembled;
    std::vector<std::pair<std::string, ResultStore::Entry>> entries(
        a1.entries().begin(), a1.entries().end());
    std::reverse(entries.begin(), entries.end());
    for (const auto &[key, entry] : entries) {
        ResultStore one;
        one.put(key, entry.spec,
                io::resultFromJson(entry.result));
        reassembled.merge(one);
    }
    EXPECT_EQ(ref, diffDump(reassembled, b1))
        << "shard order leaked into the diff";
    // And the human table is equally order-blind.
    EXPECT_EQ(SuiteDiff(a1, b1, dopts).run().table(),
              SuiteDiff(reassembled, b4, dopts).run().table());
}

// ------------------------------------------------- golden report

/**
 * Byte-for-byte lock on the serialized diff-report format, so a
 * format change has to be deliberate (regenerate by copying the
 * *_actual.json file the failure message names into tests/golden/).
 *
 * The fixture uses confidence 0.9 on purpose: its normal quantile
 * evaluates on the rational-polynomial central branch — pure
 * IEEE-deterministic arithmetic (+ sqrt), no libm log() whose last
 * ulp could vary across hosts.
 */
TEST(DiffGolden, ReportBytesMatchCommittedGolden)
{
    ResultStore a, b;
    buildSweep(a, b);
    DiffOptions opts;
    opts.axis = {"l1d_kb"};
    opts.confidence = 0.9;
    // An unpaired campaign on each side, so the golden locks the
    // only_a/only_b shape too.
    putSpec(a, makeSpec("susan", 64), makeResult(88, 9, 3, 90, 14, 2));
    putSpec(b, makeSpec("jpeg", 16), makeResult(66, 28, 6, 90, 28, 1));

    const std::string actual =
        SuiteDiff(a, b, opts).run().toJson().dump(2) + "\n";

    const std::string goldenPath = std::string(MERLIN_SOURCE_DIR) +
                                   "/tests/golden/diff_report.json";
    const std::string actualPath =
        testing::TempDir() + "diff_report_actual.json";
    std::ofstream(actualPath, std::ios::trunc) << actual;

    std::ifstream in(goldenPath);
    ASSERT_TRUE(in.good())
        << "missing golden file " << goldenPath
        << "; seed it from " << actualPath;
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(golden.str(), actual)
        << "diff report format changed; if deliberate, copy "
        << actualPath << " over " << goldenPath;
}

} // namespace
} // namespace merlin::sched
