/**
 * @file
 * ACE-like profiler tests: interval construction semantics (Figure 3),
 * structural invariants, committed-read filtering, and the ground-truth
 * property that pruned faults really are masked.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/rng.hh"

#include "faultsim/runner.hh"
#include "masm/asm.hh"
#include "profile/ace.hh"
#include "uarch/core.hh"
#include "workloads/workloads.hh"

namespace merlin::profile
{
namespace
{

using uarch::Structure;

struct Profiled
{
    std::shared_ptr<AceProfiler> profiler;
    uarch::CoreStats stats;
    isa::ArchResult result;
};

Profiled
profileProgram(const std::string &src, uarch::CoreConfig cfg = {})
{
    auto prog = masm::assemble(src, "t");
    Profiled p;
    p.profiler = std::make_shared<AceProfiler>(
        cfg.numPhysIntRegs, cfg.sqEntries, cfg.l1d.totalWords());
    uarch::Core core(prog, cfg, p.profiler.get());
    p.result = core.run();
    p.stats = core.stats();
    p.profiler->finalize();
    return p;
}

TEST(AceProfiler, IntervalsAreSortedAndDisjoint)
{
    auto p = profileProgram(".data\nbuf: .space 256\n.text\n"
                            "  la s0, buf\n"
                            "  movi s1, 0\n"
                            "  movi s2, 24\n"
                            "loop:\n"
                            "  shli t0, s1, 3\n"
                            "  add t0, t0, s0\n"
                            "  st.d s1, [t0]\n"
                            "  ld.d t1, [t0]\n"
                            "  add s3, s3, t1\n"
                            "  addi s1, s1, 1\n"
                            "  blt s1, s2, loop\n"
                            "  out.d s3\n"
                            "  halt 0\n");
    for (Structure s : {Structure::RegisterFile, Structure::StoreQueue,
                        Structure::L1DCache}) {
        const StructureProfile &prof = p.profiler->profile(s);
        for (unsigned e = 0; e < prof.numEntries(); ++e) {
            const auto &iv = prof.intervals(e);
            for (std::size_t i = 0; i < iv.size(); ++i) {
                EXPECT_LT(iv[i].start, iv[i].end);
                if (i > 0) {
                    EXPECT_GE(iv[i].start, iv[i - 1].end);
                }
            }
        }
    }
}

TEST(AceProfiler, FindLocatesContainingInterval)
{
    auto p = profileProgram("movi s0, 5\n"
                            "movi s1, 0\n"
                            "movi s2, 2000\n"
                            "spin:\n"
                            "  addi s1, s1, 1\n"
                            "  blt s1, s2, spin\n"
                            "  out.d s0\n" // reads s0 ~2000 cycles later
                            "  halt 0\n");
    const auto &prof = p.profiler->profile(Structure::RegisterFile);
    // Some register holds a long vulnerable interval (s0's value).
    bool found_long = false;
    for (unsigned e = 0; e < prof.numEntries(); ++e) {
        for (const auto &iv : prof.intervals(e)) {
            if (iv.end - iv.start > 500) {
                found_long = true;
                // find() must return this interval for an interior cycle.
                Cycle mid = iv.start + (iv.end - iv.start) / 2;
                const VulnerableInterval *hit = prof.find(e, mid);
                ASSERT_NE(hit, nullptr);
                EXPECT_EQ(hit->start, iv.start);
                // Boundary semantics: (start, end] membership.
                EXPECT_EQ(prof.find(e, iv.start), nullptr);
                EXPECT_NE(prof.find(e, iv.end), nullptr);
            }
        }
    }
    EXPECT_TRUE(found_long);
}

TEST(AceProfiler, DeadValuesHaveNoInterval)
{
    // s0 written, never read: no RF interval may end with a read of it.
    auto p = profileProgram("movi s0, 123\n"
                            "movi s1, 7\n"
                            "out.d s1\n"
                            "halt 0\n");
    const auto &prof = p.profiler->profile(Structure::RegisterFile);
    // The total vulnerable time should be small: only s1 and the
    // bookkeeping registers are ever read.
    EXPECT_LT(prof.aceAvf(p.stats.cycles), 0.2);
}

TEST(AceProfiler, SquashedReadsDoNotEndIntervals)
{
    // A wrong-path load reads a register but is squashed; committed
    // interval count must match an equivalent program without the
    // mispredicted hammock.
    auto p = profileProgram(".data\nbuf: .quad 42\n.text\n"
                            "  la s0, buf\n"
                            "  movi s1, 0\n"
                            "  movi s2, 300\n"
                            "loop:\n"
                            "  andi t0, s1, 3\n"
                            "  movi t1, 3\n"
                            "  bne t0, t1, skip\n"
                            "  ld.d s3, [s0]\n"
                            "skip:\n"
                            "  addi s1, s1, 1\n"
                            "  blt s1, s2, loop\n"
                            "  out.d s3\n"
                            "  halt 0\n");
    // All intervals must end with a committed reader: every interval's
    // RIP must be a valid text address.
    const auto &prof = p.profiler->profile(Structure::RegisterFile);
    for (unsigned e = 0; e < prof.numEntries(); ++e) {
        for (const auto &iv : prof.intervals(e)) {
            EXPECT_GE(iv.rip, isa::layout::TEXT_BASE);
            EXPECT_LT(iv.upc, isa::MAX_UOPS_PER_MACRO);
        }
    }
}

TEST(AceProfiler, StoreQueueIntervalsEndAtForwardOrDrain)
{
    auto p = profileProgram(".data\nbuf: .space 64\n.text\n"
                            "  la s0, buf\n"
                            "  movi s1, 0xab\n"
                            "  st.d s1, [s0]\n"
                            "  ld.d s2, [s0]\n" // likely forwarded
                            "  out.d s2\n"
                            "  halt 0\n");
    const auto &prof = p.profiler->profile(Structure::StoreQueue);
    std::uint64_t total = 0;
    for (unsigned e = 0; e < prof.numEntries(); ++e)
        total += prof.intervals(e).size();
    EXPECT_GE(total, 1u); // at least the store's write->drain interval
}

TEST(AceProfiler, L1dProfileTracksCacheWords)
{
    auto p = profileProgram(".data\nbuf: .space 512\n.text\n"
                            "  la s0, buf\n"
                            "  movi s1, 0\n"
                            "  movi s2, 64\n"
                            "wr:\n"
                            "  shli t0, s1, 3\n"
                            "  add t0, t0, s0\n"
                            "  st.d s1, [t0]\n"
                            "  addi s1, s1, 1\n"
                            "  blt s1, s2, wr\n"
                            "  movi s1, 0\n"
                            "rd:\n"
                            "  shli t0, s1, 3\n"
                            "  add t0, t0, s0\n"
                            "  ldadd s3, [t0]\n"
                            "  addi s1, s1, 1\n"
                            "  blt s1, s2, rd\n"
                            "  out.d s3\n"
                            "  halt 0\n");
    const auto &prof = p.profiler->profile(Structure::L1DCache);
    EXPECT_GT(prof.totalVulnerableCycles(), 0u);
}

TEST(AceProfiler, AceAvfIsUpperBoundButBelowOne)
{
    auto w = workloads::buildWorkload("qsort");
    uarch::CoreConfig cfg;
    AceProfiler prof(cfg.numPhysIntRegs, cfg.sqEntries,
                     cfg.l1d.totalWords());
    uarch::Core core(w.program, cfg, &prof);
    core.run();
    prof.finalize();
    const double avf =
        prof.profile(Structure::RegisterFile).aceAvf(core.stats().cycles);
    EXPECT_GT(avf, 0.0);
    EXPECT_LT(avf, 1.0);
}

TEST(AceProfiler, PathSignatureDiscriminatesPaths)
{
    auto p = profileProgram(".data\ntab: .quad 1,0,1,1,0,0,1,0\n.text\n"
                            "  la s0, tab\n"
                            "  movi s1, 0\n"
                            "  movi s2, 8\n"
                            "loop:\n"
                            "  shli t0, s1, 3\n"
                            "  add t0, t0, s0\n"
                            "  ld.d t1, [t0]\n"
                            "  beq t1, t8, zero\n"
                            "  addi s3, s3, 1\n"
                            "zero:\n"
                            "  addi s1, s1, 1\n"
                            "  blt s1, s2, loop\n"
                            "  out.d s3\n"
                            "  halt 0\n");
    // Different sequence points see different depth-5 branch futures.
    const auto &branches = p.profiler->branchTrace();
    ASSERT_GT(branches.size(), 8u);
    auto sig1 = p.profiler->pathSignature(branches[0].seq, 5);
    auto sig2 = p.profiler->pathSignature(branches[3].seq, 5);
    EXPECT_NE(sig1, sig2);
    // Depth 0 collapses everything.
    EXPECT_EQ(p.profiler->pathSignature(branches[0].seq, 0),
              p.profiler->pathSignature(branches[3].seq, 0));
}

TEST(AceProfiler, GroundTruth_PrunedFaultsAreMasked)
{
    // The load-bearing soundness property of the ACE-like step: inject
    // faults the profile calls non-vulnerable and verify they are all
    // architecturally masked.
    auto w = workloads::buildWorkload("fft");
    uarch::CoreConfig cfg;
    faultsim::InjectionRunner runner(w.program, cfg);
    auto profiler = std::make_shared<AceProfiler>(
        cfg.numPhysIntRegs, cfg.sqEntries, cfg.l1d.totalWords());
    auto golden = runner.golden(profiler.get());
    profiler->finalize();

    const auto &prof = profiler->profile(Structure::RegisterFile);
    merlin::Rng rng(42);
    unsigned tested = 0;
    for (unsigned i = 0; i < 4000 && tested < 40; ++i) {
        faultsim::Fault f;
        f.structure = Structure::RegisterFile;
        f.entry = static_cast<EntryIndex>(
            rng.nextBelow(cfg.numPhysIntRegs));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        f.cycle = rng.nextBelow(golden.stats.cycles);
        if (prof.find(f.entry, f.cycle))
            continue; // vulnerable: skip, we test the pruned ones
        ++tested;
        EXPECT_EQ(runner.inject(f, golden), faultsim::Outcome::Masked)
            << "entry " << f.entry << " bit " << int(f.bit) << " cycle "
            << f.cycle;
    }
    EXPECT_EQ(tested, 40u);
}

} // namespace
} // namespace merlin::profile
