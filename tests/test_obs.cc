/**
 * @file
 * Observability tests: metrics registry semantics (sharded counters,
 * gauges, log2 histograms, order-independent merge, deterministic
 * snapshot order), the clock override seam, trace span collection and
 * trace_event serialization, the progress sink, and the headline
 * telemetry guarantee — suite store bytes identical with tracing,
 * metrics and progress on or off, at any job count.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "io/journal.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/trace.hh"
#include "sched/suite.hh"

namespace merlin::obs
{
namespace
{

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ------------------------------------------------------------ Counter

TEST(Counter, CountsAcrossThreads)
{
    Counter c;
    EXPECT_EQ(c.total(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.total(), 42u);

    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < 1000; ++i)
                c.add();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.total(), 42u + 8 * 1000u);

    c.reset();
    EXPECT_EQ(c.total(), 0u);
}

// -------------------------------------------------------------- Gauge

TEST(Gauge, TracksLastValueAndMax)
{
    Gauge g;
    GaugeSnapshot s = g.snapshot();
    EXPECT_EQ(s.sets, 0u);
    EXPECT_EQ(s.value, 0.0);
    EXPECT_EQ(s.max, 0.0);

    g.set(3.5);
    g.set(9.25);
    g.set(1.0);
    s = g.snapshot();
    EXPECT_EQ(s.sets, 3u);
    EXPECT_EQ(s.value, 1.0);
    EXPECT_EQ(s.max, 9.25);

    g.reset();
    s = g.snapshot();
    EXPECT_EQ(s.sets, 0u);
    EXPECT_EQ(s.value, 0.0);
}

// ---------------------------------------------------------- Histogram

TEST(Histogram, BucketsByBitWidth)
{
    Histogram h;
    h.observe(0);  // bucket 0
    h.observe(1);  // bucket 1: [1, 2)
    h.observe(2);  // bucket 2: [2, 4)
    h.observe(3);  // bucket 2
    h.observe(4);  // bucket 3: [4, 8)
    h.observe(1000); // bucket 10: [512, 1024)

    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 6u);
    EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 4 + 1000);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, 1000u);
    EXPECT_EQ(s.buckets[0], 1u);
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[2], 2u);
    EXPECT_EQ(s.buckets[3], 1u);
    EXPECT_EQ(s.buckets[10], 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 1010.0 / 6.0);
}

TEST(Histogram, ObservesFromManyThreads)
{
    Histogram h;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&h, t] {
            for (int i = 0; i < 500; ++i)
                h.observe(static_cast<std::uint64_t>(t * 500 + i));
        });
    }
    for (auto &t : threads)
        t.join();
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 4000u);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, 3999u);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : s.buckets)
        bucket_total += b;
    EXPECT_EQ(bucket_total, s.count);
}

TEST(Histogram, MergeIsOrderIndependent)
{
    Histogram a, b, c;
    for (std::uint64_t v : {0ull, 7ull, 300ull})
        a.observe(v);
    for (std::uint64_t v : {12ull, 12ull, 4096ull, 1ull})
        b.observe(v);
    c.observe(1ull << 40);

    const HistogramSnapshot sa = a.snapshot();
    const HistogramSnapshot sb = b.snapshot();
    const HistogramSnapshot sc = c.snapshot();

    HistogramSnapshot abc = sa;
    abc.merge(sb);
    abc.merge(sc);
    HistogramSnapshot cba = sc;
    cba.merge(sb);
    cba.merge(sa);
    // Also fold an empty snapshot in: the identity element.
    cba.merge(HistogramSnapshot{});

    EXPECT_EQ(abc.count, cba.count);
    EXPECT_EQ(abc.sum, cba.sum);
    EXPECT_EQ(abc.min, cba.min);
    EXPECT_EQ(abc.max, cba.max);
    EXPECT_EQ(abc.buckets, cba.buckets);
    EXPECT_EQ(abc.count, 8u);
    EXPECT_EQ(abc.min, 0u);
    EXPECT_EQ(abc.max, 1ull << 40);
}

// ----------------------------------------------------------- Registry

TEST(Registry, SnapshotIsSortedByNameAndParsesAsJson)
{
    Registry reg;
    reg.counter("zeta").add(3);
    reg.counter("alpha").add(1);
    reg.gauge("mid").set(2.5);
    reg.histogram("lat_us").observe(100);
    reg.histogram("lat_us").observe(0);

    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "alpha");
    EXPECT_EQ(snap.counters[1].first, "zeta");
    EXPECT_EQ(snap.counters[1].second, 3u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].second.count, 2u);

    // The dump round-trips through the strict parser.
    const io::Json doc = io::Json::parse(snap.toJson().dump(2));
    EXPECT_EQ(doc.strOr("format", ""), "merlin-metrics-v1");
    EXPECT_EQ(doc.at("counters").at("alpha").asU64(), 1u);
    EXPECT_EQ(doc.at("gauges").at("mid").at("sets").asU64(), 1u);
    const io::Json &h = doc.at("histograms").at("lat_us");
    EXPECT_EQ(h.at("count").asU64(), 2u);
    EXPECT_EQ(h.at("max").asU64(), 100u);
    // Sparse [bucket_floor, count] pairs: 0 and 100's bucket only.
    EXPECT_EQ(h.at("buckets").size(), 2u);
}

TEST(Registry, HandlesStayValidAcrossReset)
{
    Registry reg;
    Counter &c = reg.counter("events");
    c.add(5);
    reg.reset();
    EXPECT_EQ(c.total(), 0u);
    c.add(2);
    EXPECT_EQ(reg.counter("events").total(), 2u);
    EXPECT_EQ(&reg.counter("events"), &c);
}

// -------------------------------------------------------------- Clock

TEST(Clock, OverrideIsTheTestSeam)
{
    const TimePoint epoch{};
    TimePoint fake = epoch + std::chrono::seconds(100);
    {
        ClockOverride ov([&fake] { return fake; });
        const TimePoint t0 = now();
        EXPECT_EQ(t0, fake);
        fake += std::chrono::milliseconds(2500);
        EXPECT_DOUBLE_EQ(secondsSince(t0), 2.5);
        EXPECT_EQ(microsSince(t0), 2'500'000u);
        // Clamped at zero when the clock moves backwards.
        fake = epoch + std::chrono::seconds(99);
        EXPECT_EQ(microsSince(t0), 0u);
    }
    // Restored: the real steady clock is monotonic and non-fake.
    const TimePoint a = now();
    const TimePoint b = now();
    EXPECT_LE(a, b);
}

// -------------------------------------------------------------- Trace

TEST(Trace, CollectsSpansAcrossThreadsAndSerializes)
{
    TraceWriter &w = TraceWriter::global();
    w.start(""); // collect only
    EXPECT_TRUE(w.enabled());
    {
        Span outer("sched", "suite.run");
        std::vector<std::thread> threads;
        for (int t = 0; t < 4; ++t) {
            threads.emplace_back([] {
                Span s("inject", "injection");
            });
        }
        for (auto &t : threads)
            t.join();
    }
    const io::Json doc = io::Json::parse(w.toJson().dump(2));
    const io::Json &events = doc.at("traceEvents");
    ASSERT_EQ(events.size(), 5u);
    for (const io::Json &e : events.items()) {
        EXPECT_EQ(e.strOr("ph", ""), "X");
        EXPECT_FALSE(e.strOr("name", "").empty());
        EXPECT_FALSE(e.strOr("cat", "").empty());
        e.at("pid").asU64();
        e.at("tid").asU64();
        e.at("ts").asU64();
        e.at("dur").asU64();
    }
    EXPECT_TRUE(w.finish());
    EXPECT_FALSE(w.enabled());
    // Finishing again without a start is a reported no-op.
    EXPECT_FALSE(w.finish());
}

TEST(Trace, SpansAreFreeWhenDisabled)
{
    ASSERT_FALSE(TraceWriter::global().enabled());
    {
        Span s("sched", "ignored");
    }
    TraceWriter::global().start("");
    const io::Json doc = TraceWriter::global().toJson();
    EXPECT_EQ(doc.at("traceEvents").size(), 0u);
    TraceWriter::global().finish();
}

TEST(Trace, WritesAValidFileAtomically)
{
    const std::string path = testing::TempDir() + "merlin_trace.json";
    TraceWriter::global().start(path);
    {
        Span s("io", "store.save");
    }
    ASSERT_TRUE(TraceWriter::global().finish());
    const io::Json doc = io::Json::parse(fileBytes(path));
    EXPECT_EQ(doc.at("traceEvents").size(), 1u);
    EXPECT_EQ(doc.strOr("displayTimeUnit", ""), "ms");
    std::remove(path.c_str());
}

// ----------------------------------------------------------- Progress

TEST(Progress, InertSinkCountsWithoutEmitting)
{
    ProgressSink sink;
    sink.campaignsTotal.store(4);
    sink.campaignsSelected.store(4);
    sink.campaignsDone.store(2);
    sink.injections.store(100);
    const io::Json j = sink.toJson("running");
    EXPECT_EQ(j.strOr("format", ""), "merlin-progress-v1");
    EXPECT_EQ(j.strOr("state", ""), "running");
    EXPECT_EQ(j.at("campaigns").at("done").asU64(), 2u);
    EXPECT_EQ(j.at("injections").asU64(), 100u);
    EXPECT_FALSE(j.find("selection")); // only present under --select
    sink.finish(); // nothing configured: a no-op
}

TEST(Progress, WritesFinalJsonOnFinish)
{
    const std::string path = testing::TempDir() + "merlin_progress.json";
    {
        ProgressSink::Options opts;
        opts.intervalSeconds = 3600.0; // only the final emit matters
        opts.jsonPath = path;
        opts.selection = "0/3 round-robin";
        ProgressSink sink(opts);
        sink.campaignsTotal.store(3);
        sink.campaignsSelected.store(1);
        sink.campaignsDone.store(1);
        sink.injections.store(42);
        sink.finish();
    }
    const io::Json j = io::Json::parse(fileBytes(path));
    EXPECT_EQ(j.strOr("state", ""), "done");
    EXPECT_EQ(j.strOr("selection", ""), "0/3 round-robin");
    EXPECT_EQ(j.at("campaigns").at("total").asU64(), 3u);
    EXPECT_EQ(j.at("injections").asU64(), 42u);
    EXPECT_GT(j.at("epoch").asU64(), 0u);
    std::remove(path.c_str());
}

// ------------------------------------------- suite-level invariance

std::vector<sched::CampaignSpec>
invarianceSpecs()
{
    std::vector<sched::CampaignSpec> specs;
    sched::CampaignSpec s;
    s.workload = "qsort";
    s.structure = uarch::Structure::RegisterFile;
    s.sampling = core::specFixed(500);
    s.seed = 11;
    specs.push_back(s);
    s.workload = "fft";
    s.structure = uarch::Structure::StoreQueue;
    specs.push_back(s);
    return specs;
}

/**
 * The telemetry guarantee in testable form: store bytes are identical
 * with every telemetry channel on vs off, for jobs 1 and 4.  (The
 * per-campaign journals are removed on completion, so the store and
 * shard bytes are the entire durable output.)
 */
TEST(TelemetryInvariance, StoreBytesIdenticalWithTelemetryOnOrOff)
{
    const auto specs = invarianceSpecs();
    std::string baseline;
    for (unsigned jobs : {1u, 4u}) {
        for (bool telemetry : {false, true}) {
            const std::string store =
                testing::TempDir() + "merlin_obs_suite.json";
            const std::string trace =
                testing::TempDir() + "merlin_obs_trace.json";
            const std::string progress =
                testing::TempDir() + "merlin_obs_progress.json";

            sched::SuiteOptions opts;
            opts.jobs = jobs;
            opts.recordTiming = false;
            opts.storePath = store;
            if (telemetry) {
                TraceWriter::global().start(trace);
                opts.progressPath = progress;
                opts.progressInterval = 0.01;
            }
            sched::SuiteResult suite =
                sched::SuiteScheduler(specs, opts).run();
            EXPECT_EQ(suite.campaignsRun, specs.size());
            EXPECT_GT(suite.injectionsSimulated, 0u);

            const std::string bytes = fileBytes(store);
            std::remove(store.c_str());
            if (baseline.empty())
                baseline = bytes;
            else
                EXPECT_EQ(bytes, baseline)
                    << "jobs=" << jobs << " telemetry=" << telemetry;

            if (telemetry) {
                ASSERT_TRUE(TraceWriter::global().finish());
                // The trace parses and covers scheduler, campaign and
                // injection layers.
                const io::Json doc = io::Json::parse(fileBytes(trace));
                bool sched_cat = false, campaign_cat = false,
                     inject_cat = false;
                for (const io::Json &e :
                     doc.at("traceEvents").items()) {
                    const std::string cat = e.strOr("cat", "");
                    sched_cat = sched_cat || cat == "sched";
                    campaign_cat = campaign_cat || cat == "campaign";
                    inject_cat = inject_cat || cat == "inject";
                }
                EXPECT_TRUE(sched_cat);
                EXPECT_TRUE(campaign_cat);
                EXPECT_TRUE(inject_cat);
                std::remove(trace.c_str());

                const io::Json p =
                    io::Json::parse(fileBytes(progress));
                EXPECT_EQ(p.strOr("state", ""), "done");
                EXPECT_EQ(p.at("campaigns").at("done").asU64(),
                          specs.size());
                std::remove(progress.c_str());
            }
        }
    }
}

TEST(TelemetryInvariance, JournalBytesIdenticalWithTelemetryOnOrOff)
{
    // The journal's bytes are a pure function of the appended
    // outcomes; arming the tracer and hammering the registry around
    // the appends must not move a byte.
    auto writeJournal = [](const std::string &path) {
        io::OutcomeJournal j(path, "spec-key");
        j.open();
        faultsim::InjectDetail plain;
        faultsim::InjectDetail early;
        early.earlyExit = true;
        faultsim::InjectDetail bad;
        bad.quarantined = true;
        bad.reason = "guarded failure";
        j.append(7, faultsim::Outcome::Masked, plain);
        j.append(11, faultsim::Outcome::SDC, early);
        j.append(13, faultsim::Outcome::Crash, bad);
        j.close();
    };

    const std::string off = testing::TempDir() + "obs_journal_off.jnl";
    const std::string on = testing::TempDir() + "obs_journal_on.jnl";
    writeJournal(off);

    TraceWriter::global().start("");
    Registry::global().counter("test.journal_invariance").add();
    writeJournal(on);
    EXPECT_TRUE(TraceWriter::global().finish());

    EXPECT_EQ(fileBytes(on), fileBytes(off));
    std::remove(off.c_str());
    std::remove(on.c_str());
}

} // namespace
} // namespace merlin::obs
