/**
 * @file
 * Chaos tests for the fault-tolerance layer: a suite process is
 * SIGKILLed at randomized-but-seeded points mid-campaign, then resumed
 * (--resume semantics: reuseCached + the outcome journal), and the
 * final store must be BYTE-identical to an uninterrupted run's — the
 * determinism contract must survive arbitrary crash/resume schedules.
 *
 * Mechanics: each interrupted attempt runs in a fork()ed child (the
 * parent holds no live pool threads at fork time — every scheduler
 * joins its pool before run() returns), which calls _exit() so no
 * gtest/atexit state of the parent image runs twice.  The parent
 * sleeps a seeded random delay and SIGKILLs the child, exactly like a
 * machine loss mid-dispatch.  Where the kill lands — before the first
 * injection, mid-campaign (journal replay), between store save and
 * journal cleanup (stale-journal removal), or after everything — is
 * intentionally left to timing: every landing point must produce the
 * same final bytes, and the seeds make a given machine's schedule
 * repeatable enough to rerun a failure.
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>
#include <unistd.h>

#include "io/result_store.hh"
#include "sched/suite.hh"

namespace merlin::sched
{
namespace
{

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Two estimate campaigns big enough (~2000 injections each) that a
 * kill a few dozen milliseconds in lands mid-injection-loop, which is
 * the case the journal exists for.
 */
std::vector<CampaignSpec>
chaosSpecs()
{
    std::vector<CampaignSpec> specs;
    CampaignSpec s;
    s.workload = "qsort";
    s.structure = uarch::Structure::RegisterFile;
    s.regs = 128;
    s.window = 0;
    s.sampling = core::specFixed(2000);
    s.seed = 7;
    specs.push_back(s);

    s = CampaignSpec{};
    s.workload = "fft";
    s.structure = uarch::Structure::StoreQueue;
    s.sqEntries = 16;
    s.window = 0;
    s.sampling = core::specFixed(2000);
    s.seed = 7;
    specs.push_back(s);
    return specs;
}

class ChaosFixture : public ::testing::Test
{
  protected:
    std::string
    storePath(const std::string &name)
    {
        std::string p = testing::TempDir() + "merlin_chaos_" + name;
        cleanup_.push_back(p);
        // The journal directory a store-only run places next to the
        // store file, and the atomic-save temp file.
        cleanup_.push_back(p + ".journal");
        cleanup_.push_back(p + ".tmp");
        return p;
    }

    std::string
    dirPath(const std::string &name)
    {
        std::string p = testing::TempDir() + "merlin_chaos_" + name;
        cleanup_.push_back(p);
        return p;
    }

    void
    TearDown() override
    {
        for (const std::string &p : cleanup_) {
            std::error_code ec;
            std::filesystem::remove_all(p, ec);
        }
    }

    /**
     * Run the suite once in a forked child and SIGKILL it after a
     * seeded random delay.  @return true when the child finished
     * (exited cleanly) before the kill landed.
     */
    bool
    runAndKill(const std::vector<CampaignSpec> &specs,
               const SuiteOptions &opts, std::mt19937 &rng)
    {
        const pid_t pid = fork();
        if (pid == 0) {
            // Child: run the suite and leave through _exit so the
            // parent's gtest machinery never runs in this copy.
            try {
                SuiteScheduler(specs, opts).run();
            } catch (...) {
                _exit(2);
            }
            _exit(0);
        }
        EXPECT_GT(pid, 0);
        std::uniform_int_distribution<int> delay_ms(5, 120);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms(rng)));
        kill(pid, SIGKILL); // ESRCH when already done — fine
        int status = 0;
        EXPECT_EQ(waitpid(pid, &status, 0), pid);
        EXPECT_FALSE(WIFEXITED(status) && WEXITSTATUS(status) == 2)
            << "suite raised in the child";
        return WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }

    std::vector<std::string> cleanup_;
};

/**
 * The headline property: kill a suite mid-campaign several times,
 * resuming after each kill, and the store the final clean run writes
 * is byte-identical to an uninterrupted single-run store — for a
 * serial and a parallel worker pool.
 */
TEST_F(ChaosFixture, KilledAndResumedStoreIsByteIdentical)
{
    const auto specs = chaosSpecs();

    SuiteOptions ref;
    ref.jobs = 1;
    ref.recordTiming = false;
    ref.storePath = storePath("ref.json");
    SuiteScheduler(specs, ref).run();
    const std::string want = fileBytes(ref.storePath);

    for (const unsigned jobs : {1u, 4u}) {
        SuiteOptions opts;
        opts.jobs = jobs;
        opts.recordTiming = false;
        opts.reuseCached = true; // --resume
        opts.storePath =
            storePath("kill-j" + std::to_string(jobs) + ".json");

        std::mt19937 rng(0xC0FFEE + jobs);
        bool finished = false;
        for (int round = 0; round < 4 && !finished; ++round)
            finished = runAndKill(specs, opts, rng);
        if (!finished) {
            // Every attempt died: one clean in-process run completes
            // the suite from whatever the journals preserved.
            SuiteScheduler(specs, opts).run();
        }

        EXPECT_EQ(fileBytes(opts.storePath), want)
            << "resumed store diverged with jobs=" << jobs;
        // The journal has nothing left to protect once the store
        // landed: resume must have cleaned up after itself.
        EXPECT_FALSE(std::filesystem::exists(opts.storePath + ".journal")
                     && !std::filesystem::is_empty(
                         opts.storePath + ".journal"))
            << "stale journal left behind with jobs=" << jobs;
    }
}

/**
 * The distributed variant dispatch.sh leans on: one of the workers
 * (disjoint --select shares, private stores and shard spills) is
 * killed mid-run and re-dispatched with --resume; merging the shard
 * directories must still reproduce the single-host store
 * byte-for-byte.  One worker per campaign, so every share is
 * non-empty.
 */
TEST_F(ChaosFixture, KilledWorkerShareMergesByteIdentical)
{
    const auto specs = chaosSpecs();

    SuiteOptions ref;
    ref.jobs = 1;
    ref.recordTiming = false;
    ref.storePath = storePath("share-ref.json");
    SuiteScheduler(specs, ref).run();
    const std::string want = fileBytes(ref.storePath);

    std::mt19937 rng(0xBADF00D);
    std::vector<std::string> shard_dirs;
    for (int w = 0; w < 2; ++w) {
        SuiteOptions opts;
        opts.jobs = 2;
        opts.recordTiming = false;
        opts.reuseCached = true;
        opts.storePath =
            storePath("worker-" + std::to_string(w) + ".json");
        opts.shardDir = dirPath("shards-" + std::to_string(w));
        opts.select = SpecSelector{SpecSelector::Mode::RoundRobin,
                                   static_cast<std::uint64_t>(w), 2};
        shard_dirs.push_back(opts.shardDir);

        // Worker 1 is the casualty: killed mid-run, then re-dispatched.
        bool finished = w != 1;
        if (w == 1)
            finished = runAndKill(specs, opts, rng);
        if (!finished || w != 1)
            SuiteScheduler(specs, opts).run();
    }

    io::ResultStore merged(storePath("share-merged.json"));
    io::mergeStoreFiles(merged, io::gatherStoreFiles(shard_dirs));
    merged.save();
    EXPECT_EQ(fileBytes(merged.path()), want);
}

} // namespace
} // namespace merlin::sched
