/**
 * @file
 * Distributed-dispatch tests: SpecSelector parsing and partition
 * laws (disjoint + complete for both modes), the headline scatter/
 * gather property — per-worker shard spills merged back are
 * byte-identical to the single-host store for any worker count,
 * job count and gather order — and the --select x --resume rules
 * (foreign entries skipped, overlapping worker stores refused).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "io/result_store.hh"
#include "sched/selector.hh"
#include "sched/suite.hh"

namespace merlin::sched
{
namespace
{

using io::Json;

// ------------------------------------------------------ SpecSelector

TEST(SpecSelector, ParsesStrictIOverN)
{
    const auto s =
        SpecSelector::parse("2/5", SpecSelector::Mode::RoundRobin);
    EXPECT_EQ(s.index, 2u);
    EXPECT_EQ(s.count, 5u);
    EXPECT_EQ(s.mode, SpecSelector::Mode::RoundRobin);
    EXPECT_EQ(s.describe(), "2/5 round-robin");

    const auto h = SpecSelector::parse("0/1", SpecSelector::Mode::Hash);
    EXPECT_EQ(h.describe(), "0/1 hash");
}

TEST(SpecSelector, RejectsGarbageAndOutOfRange)
{
    const auto parse = [](const char *text) {
        return SpecSelector::parse(text,
                                   SpecSelector::Mode::RoundRobin);
    };
    // i >= n and n == 0 are usage errors, not empty selections.
    EXPECT_THROW(parse("3/3"), FatalError);
    EXPECT_THROW(parse("5/3"), FatalError);
    EXPECT_THROW(parse("0/0"), FatalError);
    // Not i/n at all.
    EXPECT_THROW(parse(""), FatalError);
    EXPECT_THROW(parse("1"), FatalError);
    EXPECT_THROW(parse("1/"), FatalError);
    EXPECT_THROW(parse("/3"), FatalError);
    EXPECT_THROW(parse("1/2/3"), FatalError);
    // The strict integer rules: sign, whitespace, junk, overflow.
    EXPECT_THROW(parse("-1/3"), FatalError);
    EXPECT_THROW(parse("+1/3"), FatalError);
    EXPECT_THROW(parse(" 1/3"), FatalError);
    EXPECT_THROW(parse("1/3x"), FatalError);
    EXPECT_THROW(parse("0x1/3"), FatalError);
    EXPECT_THROW(parse("1/99999999999999999999"), FatalError);
}

TEST(SpecSelector, JsonRoundTrip)
{
    SpecSelector s;
    s.mode = SpecSelector::Mode::Hash;
    s.index = 3;
    s.count = 7;
    const SpecSelector r =
        SpecSelector::fromJson(Json::parse(s.toJson().dump()));
    EXPECT_TRUE(s == r);
    EXPECT_THROW(SpecSelector::fromJson(
                     Json::parse("{\"mode\":\"hash\",\"index\":7,"
                                 "\"count\":7}")),
                 FatalError);
    EXPECT_THROW(SpecSelector::fromJson(
                     Json::parse("{\"mode\":\"quux\",\"index\":0,"
                                 "\"count\":1}")),
                 FatalError);
}

/** A spread of distinct specs, cheap to hash (never run). */
std::vector<CampaignSpec>
manySpecs(std::size_t n)
{
    std::vector<CampaignSpec> specs;
    for (std::size_t i = 0; i < n; ++i) {
        CampaignSpec s;
        s.workload = i % 2 ? "fft" : "qsort";
        s.seed = i + 1;
        specs.push_back(s);
    }
    return specs;
}

TEST(SpecSelector, PartitionIsDisjointAndCompleteInBothModes)
{
    const auto specs = manySpecs(23);
    for (const auto mode : {SpecSelector::Mode::RoundRobin,
                            SpecSelector::Mode::Hash}) {
        for (std::uint64_t n : {1u, 2u, 3u, 5u}) {
            for (std::size_t i = 0; i < specs.size(); ++i) {
                unsigned owners = 0;
                for (std::uint64_t w = 0; w < n; ++w) {
                    SpecSelector sel;
                    sel.mode = mode;
                    sel.index = w;
                    sel.count = n;
                    owners += sel.selects(i, specs[i].key()) ? 1 : 0;
                }
                // Every spec belongs to exactly one worker.
                EXPECT_EQ(owners, 1u)
                    << "mode " << (mode == SpecSelector::Mode::Hash)
                    << " n " << n << " spec " << i;
            }
        }
    }
}

TEST(SpecSelector, HashShareIsInvariantToManifestPosition)
{
    const auto specs = manySpecs(12);
    SpecSelector sel;
    sel.mode = SpecSelector::Mode::Hash;
    sel.index = 1;
    sel.count = 3;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        // Moving the spec anywhere in the manifest changes nothing.
        EXPECT_EQ(sel.selects(i, specs[i].key()),
                  sel.selects((i + 7) % specs.size(), specs[i].key()));
    }
}

TEST(SpecSelector, PlanStyleManifestRoundTripsTheSelection)
{
    // What `suite --plan n` emits: a manifest whose campaigns are the
    // selection's specs, fully resolved.  Parsing it back must yield
    // exactly the selected spec keys, so running a per-worker
    // manifest equals running the full manifest under --select.
    const auto specs = manySpecs(9);
    SpecSelector sel;
    sel.index = 1;
    sel.count = 2;
    Json camps = Json::array();
    std::vector<std::string> want;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (sel.selects(i, specs[i].key())) {
            camps.push(specs[i].toJson());
            want.push_back(specs[i].key());
        }
    }
    Json manifest = Json::object();
    manifest.set("campaigns", camps);
    const auto parsed = parseManifest(Json::parse(manifest.dump(2)));
    ASSERT_EQ(parsed.size(), want.size());
    for (std::size_t i = 0; i < parsed.size(); ++i)
        EXPECT_EQ(parsed[i].key(), want[i]);
}

// ------------------------------------------- scatter/gather suites

/** Four small campaigns spanning structures — fast enough to run the
 *  partition matrix below. */
std::vector<CampaignSpec>
suiteSpecs()
{
    std::vector<CampaignSpec> specs;
    CampaignSpec s;
    s.workload = "qsort";
    s.structure = uarch::Structure::RegisterFile;
    s.regs = 128;
    s.window = 0;
    s.sampling = core::specFixed(120);
    s.seed = 9;
    specs.push_back(s);

    s = CampaignSpec{};
    s.workload = "fft";
    s.structure = uarch::Structure::RegisterFile;
    s.window = 0;
    s.sampling = core::specFixed(120);
    s.seed = 9;
    specs.push_back(s);

    s = CampaignSpec{};
    s.workload = "qsort";
    s.structure = uarch::Structure::StoreQueue;
    s.sqEntries = 16;
    s.window = 0;
    s.sampling = core::specFixed(120);
    s.seed = 9;
    specs.push_back(s);

    s = CampaignSpec{};
    s.workload = "fft";
    s.structure = uarch::Structure::StoreQueue;
    s.sqEntries = 16;
    s.window = 0;
    s.sampling = core::specFixed(120);
    s.seed = 9;
    specs.push_back(s);
    return specs;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class DispatchFixture : public ::testing::Test
{
  protected:
    std::string
    scratch(const std::string &name)
    {
        const std::string p = testing::TempDir() + "merlin_sel_" + name;
        created_.push_back(p);
        return p;
    }

    void
    TearDown() override
    {
        for (const std::string &p : created_) {
            std::error_code ec;
            std::filesystem::remove_all(p, ec);
        }
    }

    std::vector<std::string> created_;
};

/**
 * The acceptance property: split the suite --select i/n across n
 * "workers", each spilling its own shards; merging the shards (in
 * forward or reverse gather order) reproduces the single-host store
 * byte-for-byte, for n in {1,2,3} x jobs in {1,4} and both modes.
 */
TEST_F(DispatchFixture, MergedWorkerShardsMatchSingleHostBytes)
{
    const auto specs = suiteSpecs();

    SuiteOptions ref_opts;
    ref_opts.jobs = 2;
    ref_opts.recordTiming = false;
    ref_opts.storePath = scratch("ref.json");
    SuiteScheduler(specs, ref_opts).run();
    const std::string ref = fileBytes(ref_opts.storePath);

    for (const auto mode : {SpecSelector::Mode::RoundRobin,
                            SpecSelector::Mode::Hash}) {
        for (std::uint64_t n : {1u, 2u, 3u}) {
            for (unsigned jobs : {1u, 4u}) {
                const std::string tag =
                    std::to_string(static_cast<int>(mode)) + "_" +
                    std::to_string(n) + "_" + std::to_string(jobs);
                std::vector<std::string> shard_dirs;
                std::uint64_t selected_total = 0;
                for (std::uint64_t w = 0; w < n; ++w) {
                    SuiteOptions opts;
                    opts.jobs = jobs;
                    opts.recordTiming = false;
                    opts.shardDir =
                        scratch(tag + "_w" + std::to_string(w));
                    SpecSelector sel;
                    sel.mode = mode;
                    sel.index = w;
                    sel.count = n;
                    opts.select = sel;
                    SuiteResult r = SuiteScheduler(specs, opts).run();
                    std::uint64_t mine = 0;
                    for (std::size_t i = 0; i < specs.size(); ++i)
                        mine += r.selected[i] ? 1 : 0;
                    selected_total += mine;
                    // Hash shares can legitimately be empty; gather
                    // only the workers that spilled something (what
                    // tools/dispatch.sh does after checking worker
                    // exit codes).
                    if (mine > 0)
                        shard_dirs.push_back(opts.shardDir);
                }
                EXPECT_EQ(selected_total, specs.size())
                    << tag << ": shares are not a partition";

                // Gather forward and reverse: same bytes either way.
                for (const bool reverse : {false, true}) {
                    auto inputs = shard_dirs;
                    if (reverse)
                        std::reverse(inputs.begin(), inputs.end());
                    const std::string merged_path = scratch(
                        tag + (reverse ? "_rev" : "_fwd") + ".json");
                    io::ResultStore merged(merged_path);
                    io::mergeStoreFiles(merged,
                                        io::gatherStoreFiles(inputs));
                    merged.save();
                    EXPECT_EQ(fileBytes(merged_path), ref)
                        << tag << (reverse ? " reverse" : " forward");
                }
            }
        }
    }
}

/**
 * Regression (--select x --resume): a worker resuming from a store
 * that contains out-of-selection entries — here a full single-host
 * store copied to every worker — must treat them as foreign: serve
 * its own share from the cache, spill ONLY its share as shards, and
 * drop the foreign entries from its store instead of re-serializing
 * them, so the gathered shards still merge to the single-host bytes.
 */
TEST_F(DispatchFixture, ResumeSkipsForeignEntriesInsteadOfRespilling)
{
    const auto specs = suiteSpecs();

    SuiteOptions ref_opts;
    ref_opts.jobs = 2;
    ref_opts.recordTiming = false;
    ref_opts.storePath = scratch("seed_ref.json");
    SuiteScheduler(specs, ref_opts).run();
    const std::string ref = fileBytes(ref_opts.storePath);

    std::vector<std::string> shard_dirs;
    for (std::uint64_t w = 0; w < 2; ++w) {
        SuiteOptions opts;
        opts.jobs = 2;
        opts.recordTiming = false;
        opts.reuseCached = true;
        opts.storePath =
            scratch("seed_w" + std::to_string(w) + ".json");
        opts.shardDir = scratch("seed_shards" + std::to_string(w));
        SpecSelector sel;
        sel.index = w;
        sel.count = 2;
        opts.select = sel;
        // Seed the worker store with the FULL single-host store.
        std::filesystem::copy_file(ref_opts.storePath, opts.storePath);

        SuiteResult r = SuiteScheduler(specs, opts).run();
        shard_dirs.push_back(opts.shardDir);

        // Every selected spec came from the cache; nothing re-ran.
        EXPECT_EQ(r.campaignsRun, 0u);
        std::size_t mine = 0;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (r.selected[i]) {
                ++mine;
                EXPECT_TRUE(r.cached[i]);
            }
        }

        // The shard directory holds exactly this worker's share —
        // foreign entries were not re-spilled.
        std::size_t shards = 0;
        for (const auto &e :
             std::filesystem::directory_iterator(opts.shardDir)) {
            (void)e;
            ++shards;
        }
        EXPECT_EQ(shards, mine) << "worker " << w;

        // And the worker store was canonicalized: only its share,
        // with the selection recorded.
        io::ResultStore worker(opts.storePath);
        ASSERT_TRUE(worker.load());
        EXPECT_EQ(worker.size(), mine);
        ASSERT_TRUE(worker.selection().has_value());
        EXPECT_TRUE(SpecSelector::fromJson(*worker.selection()) == sel);
    }

    // Foreign-entry handling must not have cost us completeness.
    const std::string merged_path = scratch("seed_merged.json");
    io::ResultStore merged(merged_path);
    io::mergeStoreFiles(merged, io::gatherStoreFiles(shard_dirs));
    merged.save();
    EXPECT_EQ(fileBytes(merged_path), ref);
}

TEST_F(DispatchFixture, ResumingAnotherWorkersStoreIsRefused)
{
    const auto specs = suiteSpecs();

    SuiteOptions opts;
    opts.jobs = 2;
    opts.recordTiming = false;
    opts.reuseCached = true;
    opts.storePath = scratch("overlap.json");
    SpecSelector sel;
    sel.index = 0;
    sel.count = 2;
    opts.select = sel;
    SuiteScheduler(specs, opts).run();

    // Same store, different share: refused, not silently mixed.
    SuiteOptions other = opts;
    other.select->index = 1;
    EXPECT_THROW(SuiteScheduler(specs, other).run(), FatalError);

    // Different worker count too.
    other.select->index = 0;
    other.select->count = 3;
    EXPECT_THROW(SuiteScheduler(specs, other).run(), FatalError);

    // The rightful owner still resumes cleanly, fully cached.
    SuiteResult again = SuiteScheduler(specs, opts).run();
    EXPECT_EQ(again.campaignsRun, 0u);

    // And a selection-free run promotes the store back to a plain
    // single-host store (selection cleared, missing share re-run).
    SuiteOptions full = opts;
    full.select.reset();
    SuiteResult whole = SuiteScheduler(specs, full).run();
    EXPECT_GT(whole.campaignsRun, 0u);
    io::ResultStore store(opts.storePath);
    ASSERT_TRUE(store.load());
    EXPECT_FALSE(store.selection().has_value());
    EXPECT_EQ(store.size(), specs.size());
}

} // namespace
} // namespace merlin::sched
