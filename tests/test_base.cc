/**
 * @file
 * Unit tests for base utilities: logging, RNG, statistics, bit helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "base/bits.hh"
#include "base/logging.hh"
#include "base/parse.hh"
#include "base/rng.hh"
#include "base/statistics.hh"

namespace merlin
{
namespace
{

// ------------------------------------------------------- base::parse

TEST(Parse, AcceptsStrictUnsignedIntegers)
{
    EXPECT_EQ(base::tryParseU64("0"), 0u);
    EXPECT_EQ(base::tryParseU64("42"), 42u);
    EXPECT_EQ(base::tryParseU64("18446744073709551615"), UINT64_MAX);
    EXPECT_EQ(base::tryParseU64("ff", 16), 255u);
    EXPECT_EQ(base::parseU64("7", "--x"), 7u);
}

TEST(Parse, RejectsWhatStrtoullSilentlyAccepts)
{
    // strtoull wraps "-1" to 2^64-1, skips leading whitespace,
    // accepts "+", saturates on overflow, and stops at trailing junk
    // — all of these must be errors for flag values.
    EXPECT_FALSE(base::tryParseU64("-1"));
    EXPECT_FALSE(base::tryParseU64("+1"));
    EXPECT_FALSE(base::tryParseU64(" 1"));
    EXPECT_FALSE(base::tryParseU64("1 "));
    EXPECT_FALSE(base::tryParseU64("1x"));
    EXPECT_FALSE(base::tryParseU64(""));
    EXPECT_FALSE(base::tryParseU64("18446744073709551616")); // 2^64
    EXPECT_FALSE(base::tryParseU64("99999999999999999999999"));
    EXPECT_FALSE(base::tryParseU64("0x10")); // base 10: junk
    EXPECT_THROW(base::parseU64("-1", "--x"), FatalError);
    EXPECT_THROW(base::parseU64("2kb", "--x"), FatalError);
}

TEST(Parse, U32RangeCheckCatchesTruncation)
{
    EXPECT_EQ(base::parseU32("4294967295", "--jobs"), 4294967295u);
    // 2^32 would truncate to 0 — for --jobs, "all hardware threads".
    EXPECT_THROW(base::parseU32("4294967296", "--jobs"), FatalError);
    EXPECT_THROW(base::parseU32("-1", "--jobs"), FatalError);
}

TEST(Parse, DoublesAreFiniteAndFullyConsumed)
{
    EXPECT_DOUBLE_EQ(*base::tryParseDouble("0.5"), 0.5);
    EXPECT_DOUBLE_EQ(*base::tryParseDouble("-2.5e3"), -2500.0);
    EXPECT_FALSE(base::tryParseDouble(""));
    EXPECT_FALSE(base::tryParseDouble(" 1.0"));
    EXPECT_FALSE(base::tryParseDouble("+1.0"));
    EXPECT_FALSE(base::tryParseDouble("1.0x"));
    EXPECT_FALSE(base::tryParseDouble("nan"));
    EXPECT_FALSE(base::tryParseDouble("inf"));
    EXPECT_FALSE(base::tryParseDouble("1e999"));
    EXPECT_THROW(base::parseDouble("abc", "--m"), FatalError);
}

TEST(Logging, PanicThrowsSimAssertError)
{
    EXPECT_THROW(panic("boom ", 42), SimAssertError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error"), FatalError);
}

TEST(Logging, AssertMacroPassesAndFails)
{
    EXPECT_NO_THROW(MERLIN_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(MERLIN_ASSERT(false, "must fire"), SimAssertError);
}

TEST(Logging, AssertMessageContainsContext)
{
    try {
        MERLIN_ASSERT(false, "ctx ", 7);
        FAIL() << "should have thrown";
    } catch (const SimAssertError &e) {
        EXPECT_NE(std::string(e.what()).find("ctx 7"), std::string::npos);
    }
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng r(99);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng r(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        auto v = r.nextInRange(10, 12);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 12u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ForkIndependent)
{
    Rng parent(42);
    Rng child = parent.fork();
    EXPECT_NE(parent.next(), child.next());
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(3);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Stats, ZValuesMatchTables)
{
    // Classic two-sided z-scores.
    EXPECT_NEAR(stats::zForConfidence(0.95), 1.9600, 1e-3);
    EXPECT_NEAR(stats::zForConfidence(0.99), 2.5758, 1e-3);
    EXPECT_NEAR(stats::zForConfidence(0.998), 3.0902, 1e-3);
}

TEST(Stats, PaperSampleSizes)
{
    // The paper's 2,000-fault campaign: e=2.88%, c=99%, large population.
    const double huge = 1e13;
    auto n2000 = stats::sampleSize(huge, 0.0288, 0.99);
    EXPECT_NEAR(static_cast<double>(n2000), 2000.0, 20.0);

    // The 60,000-fault baseline: e=0.63%, c=99.8%.
    auto n60k = stats::sampleSize(huge, 0.0063, 0.998);
    EXPECT_NEAR(static_cast<double>(n60k), 60000.0, 400.0);
}

TEST(Stats, SampleSizeSmallPopulationIsBounded)
{
    // With a small finite population the sample cannot exceed it.
    auto n = stats::sampleSize(1000.0, 0.01, 0.99);
    EXPECT_LE(n, 1000u);
    EXPECT_GT(n, 900u); // tight margins need nearly the whole population
}

TEST(Stats, ErrorMarginInvertsSampleSize)
{
    const double population = 1e12;
    const double conf = 0.998;
    auto n = stats::sampleSize(population, 0.0063, conf);
    double e = stats::errorMargin(population, static_cast<double>(n), conf);
    EXPECT_NEAR(e, 0.0063, 1e-4);
}

TEST(Stats, MeanAndVariance)
{
    std::vector<double> v{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(stats::mean(v), 2.5);
    EXPECT_DOUBLE_EQ(stats::variance(v), 1.25);
    EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stats::variance({}), 0.0);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0x1234, 16), 0x1234);
}

TEST(Bits, BitsOf)
{
    EXPECT_EQ(bitsOf(0xabcd, 4, 8), 0xbcu);
    EXPECT_EQ(bitsOf(~0ULL, 0, 64), ~0ULL);
}

TEST(Bits, LoadStoreLERoundTrip)
{
    std::uint8_t buf[8] = {};
    storeLE(buf, 0x1122334455667788ULL, 8);
    EXPECT_EQ(loadLE(buf, 8), 0x1122334455667788ULL);
    EXPECT_EQ(loadLE(buf, 4), 0x55667788ULL);
    EXPECT_EQ(buf[0], 0x88);
}

TEST(Bits, Alignment)
{
    EXPECT_TRUE(isAligned(0x1000, 8));
    EXPECT_FALSE(isAligned(0x1001, 2));
    EXPECT_TRUE(isAligned(0x1001, 1));
}

} // namespace
} // namespace merlin
