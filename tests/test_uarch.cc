/**
 * @file
 * Unit and property tests for the uarch substrates: caches (including a
 * randomized differential test against a flat reference memory), branch
 * predictors, BTB, RAS, and configuration plumbing.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "isa/memory.hh"
#include "uarch/branch.hh"
#include "uarch/cache.hh"

namespace merlin::uarch
{
namespace
{

isa::SegmentedMemory
flatMemory(std::uint64_t size = 1 << 20)
{
    isa::SegmentedMemory m;
    m.addSegment(0x10000, size, isa::PermRead | isa::PermWrite);
    return m;
}

TEST(CacheConfig, Geometry)
{
    CacheConfig c{64 * 1024, 4, 64, 3};
    EXPECT_EQ(c.numSets(), 256u);
    EXPECT_EQ(c.wordsPerLine(), 8u);
    EXPECT_EQ(c.totalWords(), 8192u);
}

TEST(Cache, HitAfterMiss)
{
    auto mem = flatMemory();
    Cache l1("l1", CacheConfig{16 * 1024, 4, 64, 3}, nullptr, &mem);
    auto r1 = l1.access(0x10040, false, 0, 0, 0);
    EXPECT_FALSE(r1.hit);
    auto r2 = l1.access(0x10044, false, 1, 0, 0);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.set, r1.set);
    EXPECT_EQ(r2.way, r1.way);
    EXPECT_LT(r2.latency, r1.latency);
}

TEST(Cache, ReadBytesSeesMemoryContent)
{
    auto mem = flatMemory();
    mem.write(0x10100, 8, 0x1122334455667788ULL);
    Cache l1("l1", CacheConfig{16 * 1024, 4, 64, 3}, nullptr, &mem);
    auto r = l1.access(0x10100, false, 0, 0, 0);
    EXPECT_EQ(l1.readBytes(r.set, r.way, 0x100 & 63, 8),
              0x1122334455667788ULL);
    EXPECT_EQ(l1.readBytes(r.set, r.way, (0x100 & 63) + 2, 2), 0x5566ULL);
}

TEST(Cache, WriteBackOnEviction)
{
    auto mem = flatMemory();
    CacheConfig cfg{4 * 1024, 4, 64, 3}; // 16 sets: easy to thrash
    Cache l1("l1", cfg, nullptr, &mem);

    auto r = l1.access(0x10000, true, 0, 0, 0);
    l1.writeBytes(r.set, r.way, 0, 8, 0xdeadbeef, 0);
    // Memory must NOT see the write yet (write-back).
    std::uint64_t v = 0;
    mem.read(0x10000, 8, v);
    EXPECT_EQ(v, 0u);

    // Evict by touching 4 more lines mapping to the same set.
    for (int i = 1; i <= 4; ++i)
        l1.access(0x10000 + i * 4096, false, i, 0, 0);
    mem.read(0x10000, 8, v);
    EXPECT_EQ(v, 0xdeadbeefULL);
    EXPECT_GE(l1.writebacks(), 1u);
}

TEST(Cache, FlipBitCorruptsAndRefillHeals)
{
    auto mem = flatMemory();
    mem.write(0x10000, 8, 0xff);
    CacheConfig cfg{4 * 1024, 4, 64, 3};
    Cache l1("l1", cfg, nullptr, &mem);
    auto r = l1.access(0x10000, false, 0, 0, 0);
    l1.flipBit(l1.wordIndex(r.set, r.way, 0), 0);
    EXPECT_EQ(l1.readBytes(r.set, r.way, 0, 8), 0xfeULL);
    // Clean line: eviction drops the corruption; refill restores.
    for (int i = 1; i <= 4; ++i)
        l1.access(0x10000 + i * 4096, false, i, 0, 0);
    auto r2 = l1.access(0x10000, false, 9, 0, 0);
    EXPECT_EQ(l1.readBytes(r2.set, r2.way, 0, 8), 0xffULL);
}

TEST(Cache, TwoLevelPropagation)
{
    auto mem = flatMemory();
    mem.write(0x10000, 8, 42);
    Cache l2("l2", CacheConfig{64 * 1024, 8, 64, 12}, nullptr, &mem);
    Cache l1("l1", CacheConfig{4 * 1024, 4, 64, 3}, &l2, nullptr);
    auto r = l1.access(0x10000, false, 0, 0, 0);
    EXPECT_EQ(l1.readBytes(r.set, r.way, 0, 8), 42u);
    EXPECT_EQ(l2.misses(), 1u);
    // L1 miss that hits in L2 is cheaper than memory.
    for (int i = 1; i <= 4; ++i)
        l1.access(0x10000 + i * 4096, false, i, 0, 0);
    auto r2 = l1.access(0x10000, false, 9, 0, 0);
    EXPECT_FALSE(r2.hit);
    EXPECT_LT(r2.latency, 3u + 12u + 80u);
}

/** Differential property test: cache hierarchy == flat memory. */
TEST(CacheProperty, RandomOpsMatchFlatMemory)
{
    Rng rng(123);
    auto mem = flatMemory(1 << 16);
    auto ref = flatMemory(1 << 16);
    Cache l2("l2", CacheConfig{16 * 1024, 8, 64, 12}, nullptr, &mem);
    Cache l1("l1", CacheConfig{2 * 1024, 2, 64, 3}, &l2, nullptr);

    for (unsigned op = 0; op < 20000; ++op) {
        const unsigned sizes[] = {1, 2, 4, 8};
        const unsigned size = sizes[rng.nextBelow(4)];
        Addr addr = 0x10000 + (rng.nextBelow((1 << 16) - 8) & ~(size - 1));
        if (rng.nextBelow(2)) {
            std::uint64_t val = rng.next();
            auto r = l1.access(addr, true, op, 0, 0);
            l1.writeBytes(r.set, r.way, addr & 63, size, val, op);
            ref.write(addr, size, val);
        } else {
            auto r = l1.access(addr, false, op, 0, 0);
            std::uint64_t got = l1.readBytes(r.set, r.way, addr & 63,
                                             size);
            std::uint64_t want = 0;
            ref.read(addr, size, want);
            if (size < 8)
                want &= (1ULL << (size * 8)) - 1;
            ASSERT_EQ(got, want) << "op " << op << " addr " << std::hex
                                 << addr;
        }
    }
}

TEST(Tournament, LearnsAlwaysTaken)
{
    CoreConfig cfg;
    TournamentPredictor tp(cfg);
    const Addr pc = 0x1000;
    int correct = 0;
    for (int i = 0; i < 64; ++i) {
        auto st = tp.predict(pc);
        if (st.taken)
            ++correct;
        tp.update(pc, true, st);
    }
    // Warm-up costs ~12 iterations (local history must saturate before
    // a trained counter is reused); afterwards it must stay taken.
    EXPECT_GT(correct, 45);
}

TEST(Tournament, LearnsAlternatingPattern)
{
    CoreConfig cfg;
    TournamentPredictor tp(cfg);
    const Addr pc = 0x2000;
    int correct = 0;
    for (int i = 0; i < 256; ++i) {
        bool actual = (i & 1) != 0;
        auto st = tp.predict(pc);
        if (st.taken == actual)
            ++correct;
        tp.update(pc, actual, st);
    }
    // The local component's history should capture period-2 patterns.
    EXPECT_GT(correct, 180);
}

TEST(Tournament, HistoryRepairAfterSquash)
{
    CoreConfig cfg;
    TournamentPredictor tp(cfg);
    auto st = tp.predict(0x3000);
    const std::uint32_t polluted = tp.globalHistory();
    // Pretend the branch was mispredicted: repair with the actual.
    tp.repairHistory(st, !st.taken);
    EXPECT_NE(tp.globalHistory(), polluted);
    EXPECT_EQ(tp.globalHistory() & 1u,
              static_cast<std::uint32_t>(!st.taken));
}

TEST(Btb, StoresAndEvicts)
{
    Btb btb(16);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    ASSERT_TRUE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(*btb.lookup(0x1000), 0x2000u);
    // Aliasing entry replaces (direct mapped).
    btb.update(0x1000 + 16 * 8, 0x3000);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
}

TEST(Ras, PushPopNesting)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, SnapshotRestore)
{
    Ras ras(8);
    ras.push(0x100);
    auto snap = ras.snapshot();
    ras.push(0x200);
    ras.pop();
    ras.pop(); // now corrupted past the snapshot
    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(CoreConfig, FluentVariants)
{
    CoreConfig base;
    auto rf = base.withRegisterFile(64);
    EXPECT_EQ(rf.numPhysIntRegs, 64u);
    EXPECT_EQ(base.numPhysIntRegs, 256u);
    auto sq = base.withStoreQueue(16);
    EXPECT_EQ(sq.sqEntries, 16u);
    EXPECT_EQ(sq.lqEntries, 16u);
    auto l1 = base.withL1dKb(32);
    EXPECT_EQ(l1.l1d.sizeBytes, 32u * 1024);
    EXPECT_NE(base.summary().find("RF=256"), std::string::npos);
}

} // namespace
} // namespace merlin::uarch
