/**
 * @file
 * Suite-scheduler tests: spec hashing/serialization, manifest parsing,
 * the store-backed cache-hit/resume path, agreement with directly-run
 * campaigns, and the headline determinism property — byte-identical
 * suite output for any job count and any spec order.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "io/result_store.hh"
#include "obs/metrics.hh"
#include "sched/suite.hh"
#include "workloads/workloads.hh"

namespace merlin::sched
{
namespace
{

using io::Json;

// ------------------------------------------------------ CampaignSpec

TEST(CampaignSpec, KeyIsAPureFunctionOfTheSpecValue)
{
    CampaignSpec a;
    a.workload = "qsort";
    CampaignSpec b;
    b.workload = "qsort";
    EXPECT_EQ(a.key(), b.key());
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.key().size(), 16u);
}

TEST(CampaignSpec, EveryFieldChangesTheKey)
{
    CampaignSpec base;
    base.workload = "qsort";
    const std::string k = base.key();

    CampaignSpec s = base;
    s.workload = "fft";
    EXPECT_NE(s.key(), k);
    s = base;
    s.structure = uarch::Structure::StoreQueue;
    EXPECT_NE(s.key(), k);
    s = base;
    s.regs = 128;
    EXPECT_NE(s.key(), k);
    s = base;
    s.window = 1000;
    EXPECT_NE(s.key(), k);
    s = base;
    s.sampling = core::specFixed(99);
    EXPECT_NE(s.key(), k);
    s = base;
    s.seed = 2;
    EXPECT_NE(s.key(), k);
    s = base;
    s.mode = CampaignSpec::Mode::Truth;
    EXPECT_NE(s.key(), k);
    s = base;
    s.relyzer = true;
    EXPECT_NE(s.key(), k);
    s = base;
    s.grouping.maxGroupSize = 7;
    EXPECT_NE(s.key(), k);
    s = base;
    s.earlyExit = false;
    EXPECT_NE(s.key(), k);
    s = base;
    s.replay = false;
    EXPECT_NE(s.key(), k);
}

TEST(CampaignSpec, JsonRoundTrip)
{
    CampaignSpec s;
    s.workload = "sha";
    s.structure = uarch::Structure::L1DCache;
    s.regs = 128;
    s.sqEntries = 16;
    s.l1dKb = 32;
    s.window = 5000;
    s.sampling = core::specFixed(1234);
    s.grouping.split = core::GroupingOptions::Split::Nibble;
    s.grouping.maxGroupSize = 50;
    s.grouping.repsPerGroup = 3;
    s.seed = 99;
    s.checkpointInterval = 256;
    s.maxCheckpoints = 8;
    s.mode = CampaignSpec::Mode::Truth;
    s.relyzer = true;
    s.pathDepth = 7;

    const CampaignSpec r = CampaignSpec::fromJson(
        Json::parse(s.toJson().dump()));
    EXPECT_TRUE(s == r);
    EXPECT_EQ(s.key(), r.key());
}

TEST(CampaignSpec, StatisticalSamplingRoundTrips)
{
    CampaignSpec s;
    s.workload = "fft";
    s.sampling.confidence = 0.99;
    s.sampling.errorMargin = 0.01;
    const CampaignSpec r = CampaignSpec::fromJson(
        Json::parse(s.toJson().dump()));
    EXPECT_FALSE(r.sampling.fixedCount.has_value());
    EXPECT_DOUBLE_EQ(r.sampling.confidence, 0.99);
    EXPECT_DOUBLE_EQ(r.sampling.errorMargin, 0.01);
}

TEST(Manifest, DefaultsMergeIntoEveryCampaign)
{
    const Json m = Json::parse(R"({
        "defaults": {"faults": 500, "seed": 3, "structure": "sq"},
        "campaigns": [
            {"workload": "qsort"},
            {"workload": "fft", "structure": "rf", "seed": 4}
        ]})");
    const auto specs = parseManifest(m);
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].workload, "qsort");
    EXPECT_EQ(specs[0].structure, uarch::Structure::StoreQueue);
    EXPECT_EQ(specs[0].sampling.fixedCount, 500u);
    EXPECT_EQ(specs[0].seed, 3u);
    EXPECT_EQ(specs[1].structure, uarch::Structure::RegisterFile);
    EXPECT_EQ(specs[1].seed, 4u);
    EXPECT_EQ(specs[1].sampling.fixedCount, 500u);
}

TEST(Manifest, CampaignSamplingStyleOverridesDefaultsStyle)
{
    // defaults fix a fault count; one campaign opts into statistical
    // sampling instead — its choice must not be shadowed by the
    // inherited 'faults'.
    const Json m = Json::parse(R"({
        "defaults": {"faults": 2000},
        "campaigns": [
            {"workload": "qsort"},
            {"workload": "fft", "confidence": 0.99,
             "error_margin": 0.01},
            {"workload": "sha", "faults": 50}
        ]})");
    const auto specs = parseManifest(m);
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].sampling.fixedCount, 2000u);
    EXPECT_FALSE(specs[1].sampling.fixedCount.has_value());
    EXPECT_DOUBLE_EQ(specs[1].sampling.confidence, 0.99);
    EXPECT_DOUBLE_EQ(specs[1].sampling.errorMargin, 0.01);
    EXPECT_EQ(specs[2].sampling.fixedCount, 50u);
}

TEST(Manifest, IntegralDoublesAreAcceptedForIntegerKnobs)
{
    const Json m = Json::parse(R"({
        "campaigns": [{"workload": "qsort", "regs": 128.0,
                       "faults": 2e3}]})");
    const auto specs = parseManifest(m);
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].regs, 128u);
    EXPECT_EQ(specs[0].sampling.fixedCount, 2000u);
}

TEST(Manifest, RejectsTyposAndMissingFields)
{
    EXPECT_THROW(parseManifest(Json::parse("[]")), FatalError);
    EXPECT_THROW(parseManifest(Json::parse("{\"campaigns\":[]}")),
                 FatalError);
    // Unknown member: almost certainly a misspelled knob.
    EXPECT_THROW(
        parseManifest(Json::parse(
            "{\"campaigns\":[{\"workload\":\"qsort\",\"fautls\":5}]}")),
        FatalError);
    // Campaign without a workload.
    EXPECT_THROW(
        parseManifest(Json::parse("{\"campaigns\":[{\"seed\":1}]}")),
        FatalError);
    // Bad COW chunk granularity must fail at parse time, not as an
    // assertion deep inside core construction mid-suite.
    EXPECT_THROW(
        parseManifest(Json::parse(
            "{\"campaigns\":[{\"workload\":\"qsort\","
            "\"mem_chunk_bytes\":100}]}")),
        FatalError);
    EXPECT_THROW(
        parseManifest(Json::parse(
            "{\"campaigns\":[{\"workload\":\"qsort\","
            "\"mem_chunk_bytes\":32}]}")),
        FatalError);
}

// ---------------------------------------------------- SuiteScheduler

/** The test suite: 4 small campaigns spanning modes and structures. */
std::vector<CampaignSpec>
testSpecs()
{
    std::vector<CampaignSpec> specs;
    CampaignSpec s;
    s.workload = "qsort";
    s.structure = uarch::Structure::RegisterFile;
    s.regs = 128;
    s.window = 0;
    s.sampling = core::specFixed(150);
    s.seed = 7;
    s.mode = CampaignSpec::Mode::Truth;
    specs.push_back(s);

    s = CampaignSpec{};
    s.workload = "fft";
    s.structure = uarch::Structure::RegisterFile;
    s.window = 0;
    s.sampling = core::specFixed(200);
    s.seed = 7;
    specs.push_back(s);

    s = CampaignSpec{};
    s.workload = "fft";
    s.structure = uarch::Structure::StoreQueue;
    s.sqEntries = 16;
    s.window = 0;
    s.sampling = core::specFixed(200);
    s.seed = 7;
    specs.push_back(s);

    s = CampaignSpec{};
    s.workload = "stringsearch";
    s.structure = uarch::Structure::RegisterFile;
    s.window = 0;
    s.sampling = core::specFixed(2000);
    s.seed = 7;
    s.mode = CampaignSpec::Mode::GroupingOnly;
    specs.push_back(s);
    return specs;
}

std::string
storeBytes(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class SuiteFixture : public ::testing::Test
{
  protected:
    std::string
    storePath(const char *name)
    {
        std::string p =
            testing::TempDir() + "merlin_suite_" + name + ".json";
        created_.push_back(p);
        return p;
    }

    void
    TearDown() override
    {
        for (const std::string &p : created_)
            std::remove(p.c_str());
    }

    std::vector<std::string> created_;
};

TEST_F(SuiteFixture, MatchesDirectlyRunCampaigns)
{
    const auto specs = testSpecs();
    SuiteOptions opts;
    opts.jobs = 2;
    SuiteResult suite = SuiteScheduler(specs, opts).run();
    ASSERT_EQ(suite.results.size(), specs.size());
    EXPECT_EQ(suite.campaignsRun, specs.size());

    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto w = workloads::buildWorkload(specs[i].workload);
        core::Campaign camp(w.program, specs[i].campaignConfig(w));
        core::CampaignResult direct;
        switch (specs[i].mode) {
          case CampaignSpec::Mode::Truth:
            direct = camp.run(true);
            break;
          case CampaignSpec::Mode::Estimate:
            direct = camp.run(false);
            break;
          case CampaignSpec::Mode::GroupingOnly:
            direct = camp.runGroupingOnly();
            break;
        }
        EXPECT_EQ(suite.results[i].merlinEstimate.counts,
                  direct.merlinEstimate.counts)
            << "campaign " << i;
        EXPECT_EQ(suite.results[i].injections, direct.injections);
        EXPECT_EQ(suite.results[i].survivors, direct.survivors);
        if (direct.survivorTruth) {
            ASSERT_TRUE(suite.results[i].survivorTruth);
            EXPECT_EQ(suite.results[i].survivorTruth->counts,
                      direct.survivorTruth->counts);
        }
    }
}

/**
 * The acceptance property: a suite of >= 4 campaigns produces
 * byte-identical serialized results for jobs 1 vs 4 and for a
 * shuffled spec order.
 */
TEST_F(SuiteFixture, ByteIdenticalAcrossJobsAndSpecOrder)
{
    const auto specs = testSpecs();
    ASSERT_GE(specs.size(), 4u);

    SuiteOptions opts;
    opts.recordTiming = false; // wall clock is the one impure field

    opts.jobs = 1;
    opts.storePath = storePath("j1");
    SuiteScheduler(specs, opts).run();

    opts.jobs = 4;
    opts.storePath = storePath("j4");
    SuiteScheduler(specs, opts).run();

    // Shuffled order (deterministically), still 4 jobs.
    auto shuffled = specs;
    std::rotate(shuffled.begin(), shuffled.begin() + 2, shuffled.end());
    std::swap(shuffled[0], shuffled[1]);
    opts.storePath = storePath("shuf");
    SuiteScheduler(shuffled, opts).run();

    const std::string j1 = storeBytes(created_[0]);
    EXPECT_FALSE(j1.empty());
    EXPECT_EQ(j1, storeBytes(created_[1])) << "jobs 1 vs 4 differ";
    EXPECT_EQ(j1, storeBytes(created_[2])) << "spec order leaked in";
}

/**
 * Engine-knob invariance at suite level: early-exit on/off and any
 * COW chunk granularity must leave every campaign OUTCOME bit-
 * identical, for jobs 1 and 4.  (Whole-store comparison is the wrong
 * tool here: the knobs are part of the spec, so keys and the recorded
 * early-exit counters legitimately differ — the claim is about the
 * fault classifications.)
 */
TEST_F(SuiteFixture, OutcomesInvariantToEarlyExitAndChunkSize)
{
    std::vector<CampaignSpec> base;
    CampaignSpec s;
    s.workload = "qsort";
    s.structure = uarch::Structure::RegisterFile;
    s.regs = 128;
    s.window = 0;
    s.sampling = core::specFixed(200);
    s.seed = 5;
    s.mode = CampaignSpec::Mode::Truth;
    base.push_back(s);

    s = CampaignSpec{};
    s.workload = "fft";
    s.structure = uarch::Structure::StoreQueue;
    s.sqEntries = 16;
    s.window = 0;
    s.sampling = core::specFixed(200);
    s.seed = 5;
    base.push_back(s);

    const auto variant = [&](bool early_exit,
                             std::uint32_t chunk_bytes) {
        auto specs = base;
        for (auto &sp : specs) {
            sp.earlyExit = early_exit;
            sp.memChunkBytes = chunk_bytes;
        }
        return specs;
    };
    const auto runSuite = [&](std::vector<CampaignSpec> specs,
                              unsigned jobs) {
        SuiteOptions opts;
        opts.jobs = jobs;
        opts.recordTiming = false;
        return SuiteScheduler(std::move(specs), opts).run();
    };

    const SuiteResult ref = runSuite(variant(true, 4096), 4);
    const SuiteResult no_exit = runSuite(variant(false, 4096), 1);
    const SuiteResult fine = runSuite(variant(true, 256), 4);
    const SuiteResult coarse = runSuite(variant(true, 64 * 1024), 1);

    const auto expectSameOutcomes = [&](const SuiteResult &got,
                                        const char *what) {
        for (std::size_t i = 0; i < base.size(); ++i) {
            const auto &a = ref.results[i];
            const auto &b = got.results[i];
            EXPECT_EQ(a.merlinEstimate.counts, b.merlinEstimate.counts)
                << what << " campaign " << i;
            EXPECT_EQ(a.merlinSurvivorEstimate.counts,
                      b.merlinSurvivorEstimate.counts)
                << what << " campaign " << i;
            EXPECT_EQ(a.initialFaults, b.initialFaults);
            EXPECT_EQ(a.aceMasked, b.aceMasked);
            EXPECT_EQ(a.survivors, b.survivors);
            EXPECT_EQ(a.numGroups, b.numGroups);
            EXPECT_EQ(a.injections, b.injections);
            EXPECT_EQ(a.injectionRuns, b.injectionRuns);
            ASSERT_EQ(a.survivorTruth.has_value(),
                      b.survivorTruth.has_value());
            if (a.survivorTruth) {
                EXPECT_EQ(a.survivorTruth->counts,
                          b.survivorTruth->counts)
                    << what << " campaign " << i;
            }
        }
    };
    expectSameOutcomes(no_exit, "early-exit off");
    expectSameOutcomes(fine, "256B chunks");
    expectSameOutcomes(coarse, "64KB chunks");

    // With the exit disabled the counter must be hard zero; enabled,
    // the knob must be recorded as having done something somewhere.
    std::uint64_t exits = 0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(no_exit.results[i].earlyExits, 0u);
        EXPECT_EQ(ref.results[i].earlyExits, fine.results[i].earlyExits)
            << "early-exit count depends on chunk size";
        exits += ref.results[i].earlyExits;
    }
    EXPECT_GT(exits, 0u);
}

/**
 * Replay-knob invariance, the acceptance grid for the golden-trace
 * fast path: replay {on,off} x early-exit {on,off} x jobs {1,4}.
 * Per knob config the serialized store must be byte-identical across
 * job counts; across knob configs every campaign OUTCOME (and the
 * injection-run count) must match.  earlyExits is NOT compared across
 * replay variants: a dead flip that full simulation would early-exit
 * is classified Masked by the replay shortcut without ever reaching a
 * reconvergence checkpoint, so the counter legitimately differs —
 * which is exactly why replay is a spec member.
 */
TEST_F(SuiteFixture, OutcomesInvariantToReplayEarlyExitAndJobs)
{
    std::vector<CampaignSpec> base;
    CampaignSpec s;
    s.workload = "qsort";
    s.structure = uarch::Structure::RegisterFile;
    s.regs = 128;
    s.window = 0;
    s.sampling = core::specFixed(120);
    s.seed = 5;
    s.mode = CampaignSpec::Mode::Truth;
    base.push_back(s);

    s = CampaignSpec{};
    s.workload = "fft";
    s.structure = uarch::Structure::StoreQueue;
    s.sqEntries = 16;
    s.window = 0;
    s.sampling = core::specFixed(120);
    s.seed = 5;
    base.push_back(s);

    // L1D lines live far longer than registers or SQ slots, and the
    // tight checkpoint cadence puts checkpoints between a fault and
    // its first read — the case where the handoff actually skips
    // head cycles instead of degenerating to the classic resume.
    s = CampaignSpec{};
    s.workload = "qsort";
    s.structure = uarch::Structure::L1DCache;
    s.l1dKb = 16;
    s.window = 0;
    s.sampling = core::specFixed(80);
    s.seed = 5;
    s.checkpointInterval = 64;
    base.push_back(s);

    struct Config
    {
        bool replay;
        bool earlyExit;
        const char *name;
    };
    const Config configs[] = {
        {true, true, "r1e1"},
        {true, false, "r1e0"},
        {false, true, "r0e1"},
        {false, false, "r0e0"},
    };

    std::vector<SuiteResult> results;
    for (const Config &cfg : configs) {
        auto specs = base;
        for (auto &sp : specs) {
            sp.replay = cfg.replay;
            sp.earlyExit = cfg.earlyExit;
        }
        SuiteOptions opts;
        opts.recordTiming = false;
        opts.jobs = 1;
        opts.storePath =
            storePath((std::string(cfg.name) + "_j1").c_str());
        SuiteScheduler(specs, opts).run();

        opts.jobs = 4;
        opts.storePath =
            storePath((std::string(cfg.name) + "_j4").c_str());
        results.push_back(SuiteScheduler(specs, opts).run());

        const std::string j1 =
            storeBytes(created_[created_.size() - 2]);
        EXPECT_FALSE(j1.empty());
        EXPECT_EQ(j1, storeBytes(created_.back()))
            << cfg.name << ": jobs 1 vs 4 stores differ";
    }

    const SuiteResult &ref = results[0];
    for (std::size_t c = 1; c < results.size(); ++c) {
        for (std::size_t i = 0; i < base.size(); ++i) {
            const auto &a = ref.results[i];
            const auto &b = results[c].results[i];
            EXPECT_EQ(a.merlinEstimate.counts, b.merlinEstimate.counts)
                << configs[c].name << " campaign " << i;
            EXPECT_EQ(a.merlinSurvivorEstimate.counts,
                      b.merlinSurvivorEstimate.counts)
                << configs[c].name << " campaign " << i;
            EXPECT_EQ(a.initialFaults, b.initialFaults);
            EXPECT_EQ(a.survivors, b.survivors);
            EXPECT_EQ(a.injections, b.injections);
            EXPECT_EQ(a.injectionRuns, b.injectionRuns);
            ASSERT_EQ(a.survivorTruth.has_value(),
                      b.survivorTruth.has_value());
            if (a.survivorTruth) {
                EXPECT_EQ(a.survivorTruth->counts,
                          b.survivorTruth->counts)
                    << configs[c].name << " campaign " << i;
            }
        }
    }

    // The replay counters record what actually happened: with the
    // knob on every injection run was consulted (shortcut or
    // handoff); with it off the counters are hard zero.  Campaign
    // survivors are by construction faults whose entry IS read (the
    // ACE-like analysis already dropped the dead flips without
    // simulating them), so here the trace mostly hands off — the
    // Masked shortcut itself is pinned by the runner-level tests.
    std::uint64_t consulted = 0;
    std::uint64_t skipped = 0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        for (std::size_t c = 0; c < 2; ++c) { // replay-on configs
            const auto &r = results[c].results[i];
            EXPECT_EQ(r.replayMasked + r.replayHandoffs,
                      r.injectionRuns)
                << configs[c].name << " campaign " << i;
            consulted += r.replayMasked + r.replayHandoffs;
            skipped += r.replayCyclesSkipped;
        }
        for (std::size_t c = 2; c < 4; ++c) { // replay-off configs
            const auto &r = results[c].results[i];
            EXPECT_EQ(r.replayMasked, 0u) << configs[c].name;
            EXPECT_EQ(r.replayHandoffs, 0u) << configs[c].name;
            EXPECT_EQ(r.replayCyclesSkipped, 0u) << configs[c].name;
        }
    }
    EXPECT_GT(consulted, 0u);
    EXPECT_GT(skipped, 0u) << "replay never skipped any head cycles";
}

TEST_F(SuiteFixture, ResumeServesCachedResultsWithoutRerunning)
{
    const auto specs = testSpecs();
    SuiteOptions opts;
    opts.jobs = 2;
    opts.storePath = storePath("resume");
    opts.reuseCached = true;

    SuiteResult first = SuiteScheduler(specs, opts).run();
    EXPECT_EQ(first.campaignsRun, specs.size());

    SuiteResult second = SuiteScheduler(specs, opts).run();
    EXPECT_EQ(second.campaignsRun, 0u);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_TRUE(second.cached[i]);
        EXPECT_EQ(second.results[i].merlinEstimate.counts,
                  first.results[i].merlinEstimate.counts);
    }

    // Prove the cache is authoritative: doctor one stored entry and
    // watch the doctored value come back instead of a re-run.
    io::ResultStore store(opts.storePath);
    ASSERT_TRUE(store.load());
    core::CampaignResult doctored = first.results[0];
    doctored.injections = 424242;
    store.put(specs[0].key(), specs[0].toJson(), doctored);
    store.save();

    SuiteResult third = SuiteScheduler(specs, opts).run();
    EXPECT_EQ(third.campaignsRun, 0u);
    EXPECT_EQ(third.results[0].injections, 424242u);
}

TEST_F(SuiteFixture, PartialStoreResumesOnlyTheMissingCampaigns)
{
    const auto specs = testSpecs();
    SuiteOptions opts;
    opts.jobs = 2;
    opts.storePath = storePath("partial");
    opts.reuseCached = true;

    // Simulate an interrupted run: only the first two campaigns made
    // it into the store.
    SuiteResult full = SuiteScheduler(specs, opts).run();
    io::ResultStore store(opts.storePath);
    ASSERT_TRUE(store.load());
    io::ResultStore partial(opts.storePath);
    core::CampaignResult r;
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(store.lookup(specs[static_cast<std::size_t>(i)].key(), r));
        partial.put(specs[static_cast<std::size_t>(i)].key(),
                    specs[static_cast<std::size_t>(i)].toJson(), r);
    }
    partial.save();

    SuiteResult resumed = SuiteScheduler(specs, opts).run();
    EXPECT_EQ(resumed.campaignsRun, specs.size() - 2);
    EXPECT_TRUE(resumed.cached[0]);
    EXPECT_TRUE(resumed.cached[1]);
    EXPECT_FALSE(resumed.cached[2]);
    EXPECT_FALSE(resumed.cached[3]);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resumed.results[i].merlinEstimate.counts,
                  full.results[i].merlinEstimate.counts);
    }
}

// --------------------------------------------- sectioned campaigns

/**
 * The section-eligible pair (Estimate mode, one representative per
 * group): fft on the register file and on the store queue.
 */
std::vector<CampaignSpec>
sectionSpecs()
{
    const auto all = testSpecs();
    return {all[1], all[2]};
}

/**
 * Turning sectioning on must not move a byte of any campaign entry:
 * the composed result of a cold sectioned run equals the unsectioned
 * run's, and ineligible specs (Truth, GroupingOnly) fall back to the
 * plain path untouched.
 */
TEST_F(SuiteFixture, ColdSectionedRunComposesTheUnsectionedResults)
{
    const auto specs = testSpecs();
    SuiteOptions opts;
    opts.jobs = 2;
    opts.recordTiming = false;
    opts.storePath = storePath("sec_off");
    SuiteScheduler(specs, opts).run();

    opts.sections = 4;
    opts.storePath = storePath("sec_on");
    const SuiteResult sectioned = SuiteScheduler(specs, opts).run();

    io::ResultStore off(created_[0]), on(created_[1]);
    ASSERT_TRUE(off.load());
    ASSERT_TRUE(on.load());
    // Campaign entries byte-identical; only the sectioned store grows
    // the v2 tables (one per eligible spec).
    EXPECT_EQ(off.toJson().at("campaigns").dump(2),
              on.toJson().at("campaigns").dump(2));
    EXPECT_EQ(off.sectionTables().size(), 0u);
    EXPECT_EQ(on.sectionTables().size(), 2u);

    // A cold run consults no cache: eligible specs miss every
    // section, ineligible specs stay out of the accounting.
    ASSERT_EQ(sectioned.sectionsMissed.size(), specs.size());
    EXPECT_EQ(sectioned.sectionsMissed[0], 0u); // Truth: ineligible
    EXPECT_EQ(sectioned.sectionsMissed[1], 4u);
    EXPECT_EQ(sectioned.sectionsMissed[2], 4u);
    EXPECT_EQ(sectioned.sectionsMissed[3], 0u); // GroupingOnly
    EXPECT_EQ(sectioned.sectionsHit[1], 0u);
}

/**
 * A whole-campaign cache hit under --sections counts as an
 * all-sections hit — which is exactly how a legacy v1 store (no
 * section tables at all) is promoted into the sectioned accounting.
 */
TEST_F(SuiteFixture, FullEntryHitPromotesToAllSectionsHit)
{
    const auto specs = testSpecs();
    SuiteOptions opts;
    opts.jobs = 2;
    opts.recordTiming = false;
    opts.reuseCached = true;
    opts.storePath = storePath("promote");
    SuiteScheduler(specs, opts).run(); // unsectioned: no tables

    opts.sections = 4;
    const SuiteResult warm = SuiteScheduler(specs, opts).run();
    EXPECT_EQ(warm.campaignsRun, 0u);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_TRUE(warm.cached[i]);
        EXPECT_EQ(warm.sectionsMissed[i], 0u);
    }
    EXPECT_EQ(warm.sectionsHit[0], 0u); // Truth: ineligible
    EXPECT_EQ(warm.sectionsHit[1], 4u);
    EXPECT_EQ(warm.sectionsHit[2], 4u);
    EXPECT_EQ(warm.sectionsHit[3], 0u); // GroupingOnly
}

/**
 * The tentpole acceptance grid: doctor a cold sectioned store down to
 * a partial table (campaign entries gone, even-indexed sections
 * gone), resume, and require (a) only the missing sections'
 * representatives re-ran, (b) the composed result and the final store
 * BYTES equal the cold run's — for jobs {1,4} x sections {1,4,16}.
 */
TEST_F(SuiteFixture, PartialSectionHitsComposeByteIdenticalStores)
{
    const auto specs = sectionSpecs();
    obs::Counter &injectRuns =
        obs::Registry::global().counter("inject.runs");
    for (const unsigned jobs : {1u, 4u}) {
        for (const unsigned S : {1u, 4u, 16u}) {
            const std::string name = "grid_j" + std::to_string(jobs) +
                                     "_s" + std::to_string(S);
            SuiteOptions opts;
            opts.jobs = jobs;
            opts.recordTiming = false;
            opts.sections = S;
            opts.storePath = storePath(name.c_str());

            const std::uint64_t runs0 = injectRuns.total();
            const SuiteResult cold = SuiteScheduler(specs, opts).run();
            const std::uint64_t coldRuns = injectRuns.total() - runs0;
            const std::string coldBytes = storeBytes(opts.storePath);
            ASSERT_FALSE(coldBytes.empty());

            // Doctor the store into a partial-hit shape.
            io::ResultStore store(opts.storePath);
            ASSERT_TRUE(store.load());
            for (const CampaignSpec &sp : specs)
                ASSERT_TRUE(store.erase(sp.key()));
            std::vector<std::pair<std::string,
                                  io::ResultStore::SectionTable>>
                doctored;
            for (const auto &[key, table] : store.sectionTables()) {
                auto t = table;
                for (unsigned s = 0; s < S; s += 2)
                    t.entries.erase(s);
                doctored.emplace_back(key, std::move(t));
            }
            ASSERT_EQ(doctored.size(), specs.size());
            for (auto &[key, t] : doctored)
                store.putSectionTable(key, std::move(t));
            store.save();

            opts.reuseCached = true;
            const std::uint64_t runs1 = injectRuns.total();
            const SuiteResult warm = SuiteScheduler(specs, opts).run();
            const std::uint64_t warmRuns = injectRuns.total() - runs1;

            EXPECT_EQ(warm.campaignsRun, specs.size());
            const std::uint32_t hits = S / 2; // odd indices survived
            for (std::size_t i = 0; i < specs.size(); ++i) {
                EXPECT_EQ(warm.sectionsHit[i], hits) << name;
                EXPECT_EQ(warm.sectionsMissed[i], S - hits) << name;
                EXPECT_EQ(warm.results[i].merlinEstimate.counts,
                          cold.results[i].merlinEstimate.counts)
                    << name << " campaign " << i;
                EXPECT_EQ(warm.results[i].injectionRuns,
                          cold.results[i].injectionRuns);
            }
            // Strictly fewer injections when any section was served
            // (S == 1 degenerates to a full re-run)...
            if (S > 1) {
                EXPECT_LT(warmRuns, coldRuns) << name;
            } else {
                EXPECT_EQ(warmRuns, coldRuns) << name;
            }
            // ...yet the final store is the cold store, byte for byte.
            EXPECT_EQ(storeBytes(opts.storePath), coldBytes) << name;
        }
    }
}

/**
 * A stored table cut from a different golden run must be refused, not
 * silently composed into nonsense.
 */
TEST_F(SuiteFixture, MismatchedGoldenRunFailsTheSectionedResume)
{
    const auto specs = sectionSpecs();
    SuiteOptions opts;
    opts.jobs = 2;
    opts.recordTiming = false;
    opts.sections = 4;
    opts.storePath = storePath("golden_mismatch");
    SuiteScheduler(specs, opts).run();

    io::ResultStore store(opts.storePath);
    ASSERT_TRUE(store.load());
    for (const CampaignSpec &sp : specs)
        ASSERT_TRUE(store.erase(sp.key()));
    std::vector<std::pair<std::string, io::ResultStore::SectionTable>>
        doctored;
    for (const auto &[key, table] : store.sectionTables()) {
        auto t = table;
        t.goldenCycles += 1;
        doctored.emplace_back(key, std::move(t));
    }
    for (auto &[key, t] : doctored)
        store.putSectionTable(key, std::move(t));
    store.save();

    opts.reuseCached = true;
    EXPECT_THROW(SuiteScheduler(specs, opts).run(), FatalError);
}

TEST_F(SuiteFixture, UnknownWorkloadFailsTheSuite)
{
    CampaignSpec s;
    s.workload = "no_such_workload";
    s.sampling = core::specFixed(10);
    SuiteOptions opts;
    opts.jobs = 2;
    EXPECT_THROW(SuiteScheduler({s}, opts).run(), std::exception);
}

} // namespace
} // namespace merlin::sched
