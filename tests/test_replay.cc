/**
 * @file
 * Effect-trace tests: packing/query semantics, binary round-trip with
 * truncation diagnostics, and exact-cycle divergence detection against
 * two independent observers (the committed-read Probe on a branch-free
 * program, and the per-cycle injectHook seam).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "base/logging.hh"
#include "faultsim/runner.hh"
#include "masm/asm.hh"
#include "replay/trace.hh"
#include "workloads/workloads.hh"

namespace merlin::replay
{
namespace
{

using faultsim::Fault;
using faultsim::InjectDetail;
using faultsim::InjectionRunner;
using faultsim::Outcome;
using faultsim::ReplayAction;
using faultsim::RunnerOptions;
using uarch::Structure;

TEST(EffectTrace, FirstTouchReturnsExactCycleAndKind)
{
    EffectTrace t(/*rf=*/4, /*sq=*/2, /*l1d=*/2);
    // Entry 1: full write at 10, full read at 20, byte-1 read at 30.
    t.onEffect(Structure::RegisterFile, 1, 10, 0xff, true);
    t.onEffect(Structure::RegisterFile, 1, 20, 0xff, false);
    t.onEffect(Structure::RegisterFile, 1, 30, 0x02, false);

    // Any bit, asked from the beginning: killed by the write at 10.
    for (unsigned bit : {0u, 17u, 63u}) {
        const FirstTouch ft =
            t.firstTouch(Structure::RegisterFile, 1, bit, 0);
        EXPECT_EQ(ft.kind, Touch::Killed);
        EXPECT_EQ(ft.cycle, 10u);
    }
    // A flip ON the event cycle is covered by that event (flips land at
    // the start of a cycle, before the stages run).
    EXPECT_EQ(t.firstTouch(Structure::RegisterFile, 1, 0, 10).kind,
              Touch::Killed);
    // Past the write: the full read at 20 diverges every byte.
    {
        const FirstTouch ft =
            t.firstTouch(Structure::RegisterFile, 1, 40, 11);
        EXPECT_EQ(ft.kind, Touch::Diverged);
        EXPECT_EQ(ft.cycle, 20u);
    }
    // Past the full read: only byte 1 (bits 8..15) is ever touched.
    EXPECT_EQ(t.firstTouch(Structure::RegisterFile, 1, 12, 21).kind,
              Touch::Diverged);
    EXPECT_EQ(t.firstTouch(Structure::RegisterFile, 1, 12, 21).cycle,
              30u);
    EXPECT_EQ(t.firstTouch(Structure::RegisterFile, 1, 16, 21).kind,
              Touch::None);
    // Untouched entry / other structures: never touched.
    EXPECT_EQ(t.firstTouch(Structure::RegisterFile, 0, 0, 0).kind,
              Touch::None);
    EXPECT_EQ(t.firstTouch(Structure::StoreQueue, 1, 0, 0).kind,
              Touch::None);
}

TEST(EffectTrace, SerializeRoundTripsBitExactly)
{
    // A real trace, not a toy: record qsort's golden run.
    auto w = workloads::buildWorkload("qsort");
    InjectionRunner runner(w.program, uarch::CoreConfig{});
    auto g = runner.golden();
    ASSERT_NE(g.trace, nullptr);
    ASSERT_GT(g.trace->numEvents(), 0u);

    std::ostringstream out;
    g.trace->serialize(out);
    std::istringstream in(out.str());
    const EffectTrace back = EffectTrace::deserialize(in, "round-trip");
    EXPECT_TRUE(back == *g.trace);
    EXPECT_EQ(back.numEvents(), g.trace->numEvents());
}

TEST(EffectTrace, TruncatedOrForeignStreamIsFatalWithDiagnostic)
{
    EffectTrace t(/*rf=*/2, /*sq=*/1, /*l1d=*/1);
    t.onEffect(Structure::RegisterFile, 0, 5, 0xff, true);
    t.onEffect(Structure::L1DCache, 0, 9, 0x0f, false);
    std::ostringstream out;
    t.serialize(out);
    const std::string bytes = out.str();

    // Every proper prefix is a truncation: magic, counts, slot counts,
    // or event payload — all must fail loudly, never parse partially.
    for (const std::size_t len :
         {std::size_t{0}, std::size_t{4}, std::size_t{8},
          std::size_t{14}, std::size_t{24}, bytes.size() - 9,
          bytes.size() - 1}) {
        std::istringstream in(bytes.substr(0, len));
        EXPECT_THROW(EffectTrace::deserialize(in, "truncated"),
                     FatalError)
            << "prefix of " << len << " bytes parsed";
    }
    try {
        std::istringstream in(bytes.substr(0, bytes.size() - 1));
        EffectTrace::deserialize(in, "campaign-X");
        FAIL() << "truncated stream deserialized";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("campaign-X"), std::string::npos);
        EXPECT_NE(what.find("truncated"), std::string::npos);
    }

    // A foreign stream fails on the magic, with its own diagnostic.
    std::string foreign = bytes;
    foreign[0] = 'X';
    try {
        std::istringstream in(foreign);
        EffectTrace::deserialize(in, "foreign");
        FAIL() << "foreign stream deserialized";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad magic"),
                  std::string::npos);
    }
}

namespace
{

/** Committed-read/physical-write recorder for the cross-check below. */
struct RecordingProbe final : uarch::Probe
{
    struct Ev
    {
        Cycle cycle;
        std::uint8_t phase;
        bool isWrite;
    };
    std::map<EntryIndex, std::vector<Ev>> rf;

    void
    onWrite(Structure s, EntryIndex entry, Cycle cycle,
            std::uint8_t phase) override
    {
        if (s == Structure::RegisterFile && phase != uarch::phase::Init)
            rf[entry].push_back(Ev{cycle, phase, true});
    }

    void
    onCommittedRead(Structure s, EntryIndex entry, Cycle read_cycle,
                    std::uint8_t phase, Rip, Upc, SeqNum) override
    {
        if (s == Structure::RegisterFile)
            rf[entry].push_back(Ev{read_cycle, phase, false});
    }
};

} // namespace

/**
 * Divergence detection fires on the EXACT cycle the flipped storage is
 * first consumed or overwritten.  On a branch-free program there is no
 * wrong path and no speculative read, so the committed-read Probe and
 * the physical effect trace must observe the same per-entry event
 * stream — for every register and every flip cycle, the trace's
 * firstTouch answer must equal the probe-derived one, cycle for cycle.
 */
TEST(EffectTrace, DivergenceMatchesProbeOnBranchFreeProgram)
{
    auto prog = masm::assemble("  movi s0, 7\n"
                               "  movi s1, 3\n"
                               "  movi s2, 5\n"
                               "  add s3, s1, s2\n"
                               "  add s4, s3, s0\n"
                               "  out.d s4\n"
                               "  out.d s0\n"
                               "  halt 0\n",
                               "t");
    uarch::CoreConfig cfg;
    InjectionRunner runner(prog, cfg);
    RecordingProbe probe;
    auto g = runner.golden(&probe);
    ASSERT_NE(g.trace, nullptr);

    unsigned checked = 0, diverged = 0;
    for (auto &[entry, evs] : probe.rf) {
        // Probe reads are delivered at commit time; order by when the
        // bits were physically touched (cycle, then stage phase).
        std::sort(evs.begin(), evs.end(),
                  [](const RecordingProbe::Ev &a,
                     const RecordingProbe::Ev &b) {
                      return a.cycle != b.cycle ? a.cycle < b.cycle
                                                : a.phase < b.phase;
                  });
        std::vector<Cycle> probes{0};
        for (const auto &ev : evs) {
            probes.push_back(ev.cycle);
            probes.push_back(ev.cycle + 1);
        }
        for (const Cycle from : probes) {
            auto it = std::find_if(
                evs.begin(), evs.end(),
                [from](const RecordingProbe::Ev &ev) {
                    return ev.cycle >= from;
                });
            const FirstTouch ft = g.trace->firstTouch(
                Structure::RegisterFile, entry, /*bit=*/17, from);
            if (it == evs.end()) {
                EXPECT_EQ(ft.kind, Touch::None)
                    << "entry " << entry << " from " << from;
            } else {
                EXPECT_EQ(ft.kind, it->isWrite ? Touch::Killed
                                               : Touch::Diverged)
                    << "entry " << entry << " from " << from;
                EXPECT_EQ(ft.cycle, it->cycle)
                    << "entry " << entry << " from " << from;
                if (!it->isWrite)
                    ++diverged;
            }
            ++checked;
        }
    }
    // The sweep must actually have exercised both sides.
    EXPECT_GT(checked, 10u);
    EXPECT_GT(diverged, 0u);
}

/**
 * The injectHook seam (PR 6) disables replay entirely: the hook
 * observes every simulated post-flip cycle, so nothing may be skipped.
 * The hook-equipped run therefore visits the trace's divergence cycle
 * exactly, and classifies identically to the replay-accelerated run.
 */
TEST(EffectTrace, InjectHookDisablesReplayAndVisitsEveryCycle)
{
    auto prog = masm::assemble("  movi s0, 0\n"
                               "  movi s1, 1\n"
                               "  movi s2, 201\n"
                               "loop:\n"
                               "  add s0, s0, s1\n"
                               "  addi s1, s1, 1\n"
                               "  blt s1, s2, loop\n"
                               "  out.d s0\n"
                               "  halt 0\n",
                               "t");
    uarch::CoreConfig cfg;

    InjectionRunner fast(prog, cfg);
    auto g = fast.golden();
    ASSERT_NE(g.trace, nullptr);

    // A live mid-run flip that the trace resolves as a divergence.
    Fault f;
    f.structure = Structure::RegisterFile;
    f.entry = 36;
    f.bit = 7;
    f.cycle = g.stats.cycles / 2;
    const FirstTouch ft = g.trace->firstTouch(f.structure, f.entry,
                                              f.bit, f.cycle);
    ASSERT_EQ(ft.kind, Touch::Diverged);
    ASSERT_GE(ft.cycle, f.cycle);

    std::vector<Cycle> seen;
    RunnerOptions opts;
    opts.injectHook = [&seen](const Fault &, Cycle c) {
        seen.push_back(c);
    };
    InjectionRunner hooked(prog, cfg, opts);
    auto gh = hooked.golden();
    EXPECT_EQ(gh.trace, nullptr); // no recording under a hook

    InjectDetail detail;
    const Outcome o = hooked.inject(f, gh, &detail);
    EXPECT_EQ(detail.replay, ReplayAction::None);
    EXPECT_EQ(o, fast.inject(f, g));

    // Every cycle from the flip onward was simulated — including the
    // exact divergence cycle the trace predicted.
    ASSERT_FALSE(seen.empty());
    EXPECT_EQ(seen.front(), f.cycle);
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], seen[i - 1] + 1);
    EXPECT_TRUE(std::find(seen.begin(), seen.end(), ft.cycle) !=
                seen.end());
}

} // namespace
} // namespace merlin::replay
