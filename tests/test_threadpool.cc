/**
 * @file
 * ThreadPool tests: completion, dynamic parallelFor coverage,
 * exception propagation, reuse across waves.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "base/threadpool.hh"

namespace merlin::base
{
namespace
{

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> hits{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&hits] { ++hits; });
    pool.wait();
    EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> seen(1000);
    pool.parallelFor(1000, [&seen](std::uint64_t i) { ++seen[i]; });
    for (const auto &s : seen)
        EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, ParallelForWithMoreWorkersThanItems)
{
    ThreadPool pool(16);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(3, [&sum](std::uint64_t i) { sum += i + 1; });
    EXPECT_EQ(sum.load(), 6u);
}

TEST(ThreadPool, ZeroItemsIsANoOp)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](std::uint64_t) { FAIL(); });
}

TEST(ThreadPool, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The pool stays usable after an exception.
    std::atomic<int> hits{0};
    pool.submit([&hits] { ++hits; });
    pool.wait();
    EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, ReusableAcrossWaves)
{
    ThreadPool pool(3);
    std::uint64_t total = 0;
    for (int wave = 0; wave < 5; ++wave) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(50, [&sum](std::uint64_t i) { sum += i; });
        total += sum.load();
    }
    EXPECT_EQ(total, 5u * (49u * 50u / 2));
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> hits{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 20; ++i)
            pool.submit([&hits] { ++hits; });
    }
    EXPECT_EQ(hits.load(), 20);
}

} // namespace
} // namespace merlin::base
