/**
 * @file
 * ThreadPool tests: completion, dynamic parallelFor coverage,
 * exception propagation, reuse across waves; TaskGroup tests: subset
 * completion on a shared pool, nested help-running waits (the suite
 * scheduler's deadlock-freedom), per-group exception isolation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/threadpool.hh"

namespace merlin::base
{
namespace
{

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> hits{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&hits] { ++hits; });
    pool.wait();
    EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> seen(1000);
    pool.parallelFor(1000, [&seen](std::uint64_t i) { ++seen[i]; });
    for (const auto &s : seen)
        EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, ParallelForWithMoreWorkersThanItems)
{
    ThreadPool pool(16);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(3, [&sum](std::uint64_t i) { sum += i + 1; });
    EXPECT_EQ(sum.load(), 6u);
}

TEST(ThreadPool, ZeroItemsIsANoOp)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](std::uint64_t) { FAIL(); });
}

TEST(ThreadPool, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The pool stays usable after an exception.
    std::atomic<int> hits{0};
    pool.submit([&hits] { ++hits; });
    pool.wait();
    EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, ReusableAcrossWaves)
{
    ThreadPool pool(3);
    std::uint64_t total = 0;
    for (int wave = 0; wave < 5; ++wave) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(50, [&sum](std::uint64_t i) { sum += i; });
        total += sum.load();
    }
    EXPECT_EQ(total, 5u * (49u * 50u / 2));
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> hits{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 20; ++i)
            pool.submit([&hits] { ++hits; });
    }
    EXPECT_EQ(hits.load(), 20);
}

TEST(TaskGroup, WaitsForItsOwnTasksOnly)
{
    ThreadPool pool(4);
    std::atomic<int> a{0}, b{0};
    TaskGroup ga(pool), gb(pool);
    for (int i = 0; i < 50; ++i)
        ga.submit([&a] { ++a; });
    for (int i = 0; i < 30; ++i)
        gb.submit([&b] { ++b; });
    ga.wait();
    EXPECT_EQ(a.load(), 50);
    gb.wait();
    EXPECT_EQ(b.load(), 30);
    pool.wait();
}

TEST(TaskGroup, RunOneExecutesQueuedTaskOnCaller)
{
    // A pool whose only worker is pinned on a task: runOne() must let
    // the caller drain the queue itself.  The started-latch guarantees
    // the WORKER holds the pinned task before anything else is queued
    // (otherwise the caller's runOne() could pop it and spin forever).
    ThreadPool pool(1);
    std::atomic<bool> started{false}, release{false};
    pool.submit([&] {
        started = true;
        while (!release.load())
            std::this_thread::yield();
    });
    while (!started.load())
        std::this_thread::yield();
    std::atomic<int> hits{0};
    pool.submit([&hits] { ++hits; });
    while (pool.runOne())
        ;
    EXPECT_EQ(hits.load(), 1);
    release = true;
    pool.wait();
}

TEST(TaskGroup, NestedWaitOnSingleWorkerPoolDoesNotDeadlock)
{
    // The suite-scheduler shape: a pool task fans a batch into the
    // SAME pool through a group and waits on it.  With one worker this
    // only terminates because wait() help-runs queued tasks.
    ThreadPool pool(1);
    std::atomic<int> inner_hits{0};
    TaskGroup outer(pool);
    outer.submit([&] {
        TaskGroup inner(pool);
        for (int i = 0; i < 25; ++i)
            inner.submit([&inner_hits] { ++inner_hits; });
        inner.wait();
    });
    outer.wait();
    EXPECT_EQ(inner_hits.load(), 25);
}

TEST(TaskGroup, ManyGroupsStealFromOneQueue)
{
    // Several "campaigns" multiplexed on one pool: every group's tasks
    // complete no matter which group's wait() help-runs them.
    ThreadPool pool(2);
    constexpr int kGroups = 6, kTasks = 40;
    std::atomic<int> done{0};
    std::vector<std::unique_ptr<TaskGroup>> groups;
    for (int g = 0; g < kGroups; ++g)
        groups.push_back(std::make_unique<TaskGroup>(pool));
    for (int g = 0; g < kGroups; ++g)
        for (int t = 0; t < kTasks; ++t)
            groups[static_cast<std::size_t>(g)]->submit(
                [&done] { ++done; });
    for (auto &g : groups)
        g->wait();
    EXPECT_EQ(done.load(), kGroups * kTasks);
}

TEST(TaskGroup, ExceptionStaysWithinItsGroup)
{
    ThreadPool pool(2);
    TaskGroup bad(pool), good(pool);
    std::atomic<int> hits{0};
    bad.submit([] { throw std::runtime_error("campaign failed"); });
    for (int i = 0; i < 10; ++i)
        good.submit([&hits] { ++hits; });
    EXPECT_THROW(bad.wait(), std::runtime_error);
    good.wait(); // must NOT rethrow the other group's error
    EXPECT_EQ(hits.load(), 10);
    pool.wait(); // group errors never leak into the pool either
}

TEST(TaskGroup, NonStandardExceptionsReachTheWaiter)
{
    // The catch-all path: a worker throwing something outside the
    // std::exception hierarchy must surface at wait(), not terminate
    // the process (the quarantine guard depends on this for its
    // catch (...) clause).
    ThreadPool pool(2);
    TaskGroup group(pool);
    group.submit([] { throw 42; });
    EXPECT_THROW(group.wait(), int);
    // The group (and pool) stay usable afterwards.
    std::atomic<int> hits{0};
    group.submit([&hits] { ++hits; });
    group.wait();
    EXPECT_EQ(hits.load(), 1);

    pool.submit([] { throw 'x'; });
    EXPECT_THROW(pool.wait(), char);
    pool.wait(); // the error was consumed by the first wait
}

} // namespace
} // namespace merlin::base
