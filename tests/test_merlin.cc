/**
 * @file
 * MeRLiN-core tests: sampling statistics, the two-step grouping
 * invariants, the Relyzer baseline, report math, and end-to-end
 * campaigns including the headline accuracy property (MeRLiN's estimate
 * vs ground truth over the same fault list).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "base/logging.hh"
#include "merlin/campaign.hh"
#include "workloads/workloads.hh"

namespace merlin::core
{
namespace
{

using faultsim::Outcome;
using uarch::Structure;

TEST(Sampling, PaperBaselineCounts)
{
    const double pop = 1e13;
    EXPECT_NEAR(static_cast<double>(spec60k().count(pop)), 60000, 400);
    EXPECT_NEAR(static_cast<double>(spec600k().count(pop)), 600000,
                70000);
    EXPECT_EQ(specFixed(1234).count(pop), 1234u);
}

TEST(Sampling, FixedCountClampedToPopulation)
{
    EXPECT_EQ(specFixed(1000).count(100.0), 100u);
}

TEST(Sampling, FaultsAreInBounds)
{
    Rng rng(3);
    auto list = sampleFaults(Structure::StoreQueue, 16, 5000,
                             specFixed(2000), rng);
    ASSERT_EQ(list.size(), 2000u);
    for (const auto &f : list) {
        EXPECT_LT(f.entry, 16u);
        EXPECT_LT(f.bit, 64);
        EXPECT_LT(f.cycle, 5000u);
        EXPECT_EQ(f.structure, Structure::StoreQueue);
    }
}

TEST(Sampling, SeededReproducibility)
{
    Rng a(9), b(9);
    auto la = sampleFaults(Structure::RegisterFile, 64, 1000,
                           specFixed(100), a);
    auto lb = sampleFaults(Structure::RegisterFile, 64, 1000,
                           specFixed(100), b);
    EXPECT_TRUE(la == lb);
}

TEST(Report, ClassCountsMath)
{
    ClassCounts c;
    c.add(Outcome::Masked, 70);
    c.add(Outcome::SDC, 20);
    c.add(Outcome::Crash, 10);
    EXPECT_EQ(c.total(), 100u);
    EXPECT_DOUBLE_EQ(c.fraction(Outcome::SDC), 0.2);
    EXPECT_DOUBLE_EQ(c.avf(), 0.3);

    ClassCounts d;
    d.add(Outcome::Masked, 75);
    d.add(Outcome::SDC, 15);
    d.add(Outcome::Crash, 10);
    EXPECT_NEAR(c.maxInaccuracyVs(d), 5.0, 1e-9);
    EXPECT_EQ((c + d).total(), 200u);
}

TEST(Report, FitRateFormula)
{
    // AVF 2.56%, 256 regs x 64 bits, 0.01 FIT/bit => 4.19 FIT (paper's
    // Figure 16 ballpark for the 256-register RF).
    double fit = fitRate(0.0256, 256 * 64);
    EXPECT_NEAR(fit, 4.19, 0.01);
}

TEST(Report, HomogeneityPerfectAndMixed)
{
    std::vector<std::vector<Outcome>> groups = {
        {Outcome::Masked, Outcome::Masked, Outcome::Masked},
        {Outcome::SDC, Outcome::SDC},
        {Outcome::SDC, Outcome::Masked, Outcome::SDC, Outcome::SDC},
    };
    auto h = computeHomogeneity(groups);
    EXPECT_EQ(h.groups, 3u);
    EXPECT_EQ(h.faults, 9u);
    // fine: (3 + 2 + 3) / 9
    EXPECT_NEAR(h.fine, 8.0 / 9.0, 1e-12);
    EXPECT_NEAR(h.coarse, 8.0 / 9.0, 1e-12);
    EXPECT_NEAR(h.perfectFraction, 2.0 / 3.0, 1e-12);
}

class GroupingFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        w_ = workloads::buildWorkload("fft");
        cfg_.numPhysIntRegs = 128;
        runner_ = std::make_unique<faultsim::InjectionRunner>(w_.program,
                                                              cfg_);
        profiler_ = std::make_unique<profile::AceProfiler>(
            cfg_.numPhysIntRegs, cfg_.sqEntries, cfg_.l1d.totalWords());
        golden_ = runner_->golden(profiler_.get());
        profiler_->finalize();
        Rng rng(11);
        faults_ = sampleFaults(Structure::RegisterFile,
                               cfg_.numPhysIntRegs, golden_.stats.cycles,
                               specFixed(4000), rng);
    }

    workloads::BuiltWorkload w_;
    uarch::CoreConfig cfg_;
    std::unique_ptr<faultsim::InjectionRunner> runner_;
    std::unique_ptr<profile::AceProfiler> profiler_;
    faultsim::GoldenRun golden_;
    std::vector<faultsim::Fault> faults_;
};

TEST_F(GroupingFixture, GroupsPartitionSurvivors)
{
    Rng rng(1);
    GroupingOptions opts;
    auto res = groupFaults(
        faults_, profiler_->profile(Structure::RegisterFile), opts, rng);

    EXPECT_EQ(res.aceMasked + res.survivors.size(), faults_.size());

    std::vector<bool> seen(res.survivors.size(), false);
    for (const auto &g : res.groups) {
        EXPECT_FALSE(g.members.empty());
        for (auto m : g.members) {
            ASSERT_LT(m, seen.size());
            EXPECT_FALSE(seen[m]) << "fault in two groups";
            seen[m] = true;
        }
    }
    for (bool s : seen)
        EXPECT_TRUE(s) << "fault in no group";
}

TEST_F(GroupingFixture, GroupMembersShareKey)
{
    Rng rng(1);
    auto res = groupFaults(faults_,
                           profiler_->profile(Structure::RegisterFile),
                           GroupingOptions{}, rng);
    for (const auto &g : res.groups) {
        for (auto m : g.members) {
            const TaggedFault &tf = res.survivors[m];
            EXPECT_EQ(tf.rip, g.rip);
            EXPECT_EQ(tf.upc, g.upc);
            EXPECT_EQ(tf.fault.byte(), g.byte);
        }
        ASSERT_FALSE(g.representatives.empty());
        for (auto rep : g.representatives) {
            EXPECT_NE(std::find(g.members.begin(), g.members.end(), rep),
                      g.members.end())
                << "representative outside its group";
        }
    }
}

TEST_F(GroupingFixture, MaxGroupSizeRespected)
{
    Rng rng(1);
    GroupingOptions opts;
    opts.maxGroupSize = 10;
    auto res = groupFaults(
        faults_, profiler_->profile(Structure::RegisterFile), opts, rng);
    for (const auto &g : res.groups)
        EXPECT_LE(g.members.size(), 10u);
}

TEST_F(GroupingFixture, SmallerCapMeansMoreGroups)
{
    Rng r1(1), r2(1);
    GroupingOptions big;
    big.maxGroupSize = 1000;
    GroupingOptions small;
    small.maxGroupSize = 5;
    auto rb = groupFaults(
        faults_, profiler_->profile(Structure::RegisterFile), big, r1);
    auto rs = groupFaults(
        faults_, profiler_->profile(Structure::RegisterFile), small, r2);
    EXPECT_GT(rs.groups.size(), rb.groups.size());
}

TEST_F(GroupingFixture, ByteSplitRefinesGroups)
{
    Rng r1(1), r2(1), r3(1);
    GroupingOptions none;
    none.split = GroupingOptions::Split::None;
    GroupingOptions byte;
    byte.split = GroupingOptions::Split::Byte;
    GroupingOptions nib;
    nib.split = GroupingOptions::Split::Nibble;
    auto rn = groupFaults(
        faults_, profiler_->profile(Structure::RegisterFile), none, r1);
    auto rb = groupFaults(
        faults_, profiler_->profile(Structure::RegisterFile), byte, r2);
    auto rni = groupFaults(
        faults_, profiler_->profile(Structure::RegisterFile), nib, r3);
    EXPECT_LE(rn.groups.size(), rb.groups.size());
    EXPECT_LE(rb.groups.size(), rni.groups.size());
}

TEST_F(GroupingFixture, MultiRepresentativeSelection)
{
    Rng rng(1);
    GroupingOptions opts;
    opts.repsPerGroup = 3;
    auto res = groupFaults(
        faults_, profiler_->profile(Structure::RegisterFile), opts, rng);
    for (const auto &g : res.groups) {
        // min(3, group size) distinct representatives, all members.
        EXPECT_EQ(g.representatives.size(),
                  std::min<std::size_t>(3, g.members.size()));
        for (auto rep : g.representatives) {
            EXPECT_NE(std::find(g.members.begin(), g.members.end(), rep),
                      g.members.end());
        }
    }
    EXPECT_GT(res.numInjections(), res.groups.size());
}

TEST(Campaign, MajorityVoteAtLeastAsAccurate)
{
    // With 3 representatives per group the estimate must stay close to
    // truth (voting can only help against unlucky single picks).
    auto w = workloads::buildWorkload("fft");
    CampaignConfig cfg;
    cfg.target = Structure::RegisterFile;
    cfg.core = cfg.core.withRegisterFile(128);
    cfg.sampling = specFixed(1000);
    cfg.grouping.repsPerGroup = 3;
    Campaign camp(w.program, cfg);
    auto r = camp.run(true);
    EXPECT_LT(
        r.merlinSurvivorEstimate.maxInaccuracyVs(*r.survivorTruth),
        10.0);
    EXPECT_GT(r.injections, r.numGroups);
}

TEST_F(GroupingFixture, RelyzerGroupsAreAPartitionToo)
{
    Rng rng(1);
    auto res = relyzerGroupFaults(
        faults_, profiler_->profile(Structure::RegisterFile), *profiler_,
        5, rng);
    EXPECT_EQ(res.aceMasked + res.survivors.size(), faults_.size());
    std::size_t member_total = 0;
    for (const auto &g : res.groups)
        member_total += g.members.size();
    EXPECT_EQ(member_total, res.survivors.size());
}

TEST_F(GroupingFixture, GroupingIsDeterministic)
{
    Rng r1(77), r2(77);
    auto a = groupFaults(faults_,
                         profiler_->profile(Structure::RegisterFile),
                         GroupingOptions{}, r1);
    auto b = groupFaults(faults_,
                         profiler_->profile(Structure::RegisterFile),
                         GroupingOptions{}, r2);
    ASSERT_EQ(a.groups.size(), b.groups.size());
    for (std::size_t i = 0; i < a.groups.size(); ++i) {
        EXPECT_EQ(a.groups[i].representatives,
                  b.groups[i].representatives);
        EXPECT_EQ(a.groups[i].members, b.groups[i].members);
    }
}

// ---- end-to-end campaigns ----

TEST(Campaign, EndToEndEstimateMatchesTruth)
{
    // The paper's core claim, in miniature: MeRLiN's extrapolated class
    // distribution over the post-ACE list must track the full-injection
    // distribution within a few percentile units.
    auto w = workloads::buildWorkload("qsort");
    CampaignConfig cfg;
    cfg.target = Structure::RegisterFile;
    cfg.core.numPhysIntRegs = 128;
    cfg.sampling = specFixed(1500);
    cfg.seed = 2024;

    Campaign camp(w.program, cfg);
    auto res = camp.run(/*inject_all_survivors=*/true);

    EXPECT_EQ(res.initialFaults, 1500u);
    EXPECT_EQ(res.aceMasked + res.survivors, 1500u);
    EXPECT_GT(res.speedupAce, 1.0);
    EXPECT_GT(res.speedupTotal, res.speedupAce);

    ASSERT_TRUE(res.survivorTruth.has_value());
    ASSERT_TRUE(res.homogeneity.has_value());
    EXPECT_GT(res.homogeneity->fine, 0.75);

    const double err =
        res.merlinSurvivorEstimate.maxInaccuracyVs(*res.survivorTruth);
    EXPECT_LT(err, 12.0) << "estimate drifted from ground truth";

    // Full-list comparison (ACE-pruned faults are masked on both sides).
    const double full_err =
        res.merlinEstimate.maxInaccuracyVs(res.fullTruth());
    EXPECT_LT(full_err, 5.0);
}

TEST(Campaign, AceAvfUpperBoundsInjectionAvf)
{
    auto w = workloads::buildWorkload("sha");
    CampaignConfig cfg;
    cfg.target = Structure::RegisterFile;
    cfg.sampling = specFixed(600);
    Campaign camp(w.program, cfg);
    auto res = camp.run(false);
    EXPECT_GE(res.aceAvf + 0.02, res.merlinEstimate.avf());
}

TEST(Campaign, RelyzerVariantRuns)
{
    auto w = workloads::buildWorkload("stringsearch");
    CampaignConfig cfg;
    cfg.target = Structure::RegisterFile;
    cfg.sampling = specFixed(500);
    Campaign camp(w.program, cfg);
    auto res = camp.runRelyzer(false, 5);
    EXPECT_GT(res.injections, 0u);
    EXPECT_EQ(res.merlinEstimate.total(), 500u);
}

TEST(Campaign, WindowedCampaignUsesUnknown)
{
    auto w = workloads::buildWorkload("gcc");
    CampaignConfig cfg;
    cfg.target = Structure::RegisterFile;
    cfg.core.numPhysIntRegs = 128;
    cfg.core.instructionWindowEnd = w.suggestedWindow;
    cfg.sampling = specFixed(400);
    Campaign camp(w.program, cfg);
    auto res = camp.run(false);
    EXPECT_EQ(res.merlinEstimate.total(), 400u);
    // Windowed classification may produce Unknowns but never Timeouts
    // from the window end itself.
    EXPECT_GE(res.merlinEstimate.of(faultsim::Outcome::Unknown), 0u);
}

TEST(Campaign, StoreQueueCampaignEndToEnd)
{
    auto w = workloads::buildWorkload("caes");
    CampaignConfig cfg;
    cfg.target = Structure::StoreQueue;
    cfg.core = cfg.core.withStoreQueue(16);
    cfg.sampling = specFixed(800);
    Campaign camp(w.program, cfg);
    auto res = camp.run(false);
    EXPECT_EQ(res.merlinEstimate.total(), 800u);
    EXPECT_GT(res.speedupTotal, 10.0); // SQ prunes hard (paper Fig. 9)
}

TEST(Campaign, L1dCampaignEndToEnd)
{
    auto w = workloads::buildWorkload("fft");
    CampaignConfig cfg;
    cfg.target = Structure::L1DCache;
    cfg.core = cfg.core.withL1dKb(16);
    cfg.sampling = specFixed(400);
    Campaign camp(w.program, cfg);
    auto res = camp.run(false);
    EXPECT_EQ(res.merlinEstimate.total(), 400u);
    EXPECT_GT(res.speedupAce, 1.0);
}

TEST(Campaign, SeededCampaignsReproduce)
{
    auto w = workloads::buildWorkload("susan_c");
    CampaignConfig cfg;
    cfg.target = Structure::RegisterFile;
    cfg.sampling = specFixed(300);
    cfg.seed = 5;
    auto r1 = Campaign(w.program, cfg).run(false);
    auto r2 = Campaign(w.program, cfg).run(false);
    EXPECT_EQ(r1.merlinEstimate.counts, r2.merlinEstimate.counts);
    EXPECT_EQ(r1.injections, r2.injections);
}

/**
 * The acceptance property of the parallel engine: class counts are
 * bit-identical for any thread count, with and without ground truth.
 */
TEST(Campaign, ParallelCampaignMatchesSerial)
{
    auto w = workloads::buildWorkload("qsort");
    CampaignConfig cfg;
    cfg.target = Structure::RegisterFile;
    cfg.sampling = specFixed(250);
    cfg.seed = 7;

    cfg.jobs = 1;
    auto serial = Campaign(w.program, cfg).run(true);
    cfg.jobs = 8;
    auto parallel = Campaign(w.program, cfg).run(true);

    EXPECT_EQ(serial.merlinEstimate.counts,
              parallel.merlinEstimate.counts);
    EXPECT_EQ(serial.merlinSurvivorEstimate.counts,
              parallel.merlinSurvivorEstimate.counts);
    ASSERT_TRUE(serial.survivorTruth && parallel.survivorTruth);
    EXPECT_EQ(serial.survivorTruth->counts, parallel.survivorTruth->counts);
    EXPECT_EQ(serial.injections, parallel.injections);
    EXPECT_EQ(serial.homogeneity->fine, parallel.homogeneity->fine);
}

/** Checkpointing must not change campaign results either. */
TEST(Campaign, CheckpointedCampaignMatchesUncheckpointed)
{
    auto w = workloads::buildWorkload("stringsearch");
    CampaignConfig cfg;
    cfg.target = Structure::RegisterFile;
    cfg.sampling = specFixed(200);
    cfg.seed = 11;

    cfg.checkpointInterval = 0;
    auto plain = Campaign(w.program, cfg).run(false);
    cfg.checkpointInterval = 100;
    auto ck = Campaign(w.program, cfg).run(false);

    EXPECT_EQ(plain.merlinEstimate.counts, ck.merlinEstimate.counts);
    EXPECT_EQ(plain.injections, ck.injections);
}

/**
 * Regression for the old fault-key packing that capped L1D entries at
 * 16K words: a 256 KB L1D (32K words) campaign must run end to end.
 */
TEST(Campaign, LargeL1dCampaignSurvivesKeyPacking)
{
    auto w = workloads::buildWorkload("fft");
    CampaignConfig cfg;
    cfg.target = Structure::L1DCache;
    cfg.core = cfg.core.withL1dKb(256);
    ASSERT_GT(cfg.core.l1d.totalWords(), 1u << 14);
    cfg.sampling = specFixed(150);
    auto res = Campaign(w.program, cfg).run(false);
    EXPECT_EQ(res.merlinEstimate.total(), 150u);
}

TEST(Campaign, QuarantinedInjectionsAreRecordedAndCountedCrash)
{
    auto w = workloads::buildWorkload("qsort");
    CampaignConfig cfg;
    cfg.target = Structure::RegisterFile;
    cfg.core.numPhysIntRegs = 128;
    cfg.sampling = specFixed(600);
    cfg.seed = 11;
    // A pathological-fault model: any injection into a low bit blows
    // up the simulator.  The campaign must absorb every blow-up —
    // recorded, counted Crash — and still finish the rest.
    cfg.injectHook = [](const faultsim::Fault &f, Cycle) {
        if (f.bit < 8)
            throw std::runtime_error("sick bit");
    };
    auto res = Campaign(w.program, cfg).run(false);

    ASSERT_FALSE(res.quarantine.empty());
    for (std::size_t i = 0; i < res.quarantine.size(); ++i) {
        EXPECT_NE(res.quarantine[i].reason.find(
                      "simulator exception: sick bit"),
                  std::string::npos);
        if (i > 0) { // sorted for byte-stable serialization
            EXPECT_LT(res.quarantine[i - 1].faultKey,
                      res.quarantine[i].faultKey);
        }
    }
    EXPECT_GT(res.merlinEstimate.of(Outcome::Crash), 0u);
    EXPECT_EQ(res.merlinEstimate.total(), 600u);
}

TEST(Campaign, QuarantinePolicyFailAbortsTheCampaign)
{
    auto w = workloads::buildWorkload("qsort");
    CampaignConfig cfg;
    cfg.target = Structure::RegisterFile;
    cfg.core.numPhysIntRegs = 128;
    cfg.sampling = specFixed(300);
    cfg.quarantineFail = true;
    cfg.injectHook = [](const faultsim::Fault &, Cycle) {
        throw std::runtime_error("boom");
    };
    EXPECT_THROW(Campaign(w.program, cfg).run(false), FatalError);
}

} // namespace
} // namespace merlin::core
