/**
 * @file
 * Tests for the out-of-order core: architectural correctness against the
 * functional interpreter (differential + randomized), timing sanity,
 * squash recovery, traps, watchdogs, and fault hooks.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "isa/interp.hh"
#include "masm/asm.hh"
#include "uarch/core.hh"
#include "workloads/random_program.hh"

namespace merlin::uarch
{
namespace
{

isa::Program
prog(const std::string &src)
{
    return masm::assemble(src, "t");
}

isa::ArchResult
runCore(const std::string &src, CoreConfig cfg = CoreConfig{})
{
    Core core(prog(src), cfg);
    return core.run();
}

void
expectMatchesInterp(const std::string &src, CoreConfig cfg = CoreConfig{})
{
    auto p = prog(src);
    auto ref = isa::interpret(p);
    Core core(p, cfg);
    auto got = core.run();
    EXPECT_EQ(static_cast<int>(got.reason), static_cast<int>(ref.reason));
    EXPECT_EQ(got.exitCode, ref.exitCode);
    EXPECT_EQ(got.output, ref.output);
    ASSERT_EQ(got.traps.size(), ref.traps.size());
    for (std::size_t i = 0; i < ref.traps.size(); ++i) {
        EXPECT_EQ(static_cast<int>(got.traps[i].kind),
                  static_cast<int>(ref.traps[i].kind));
        EXPECT_EQ(got.traps[i].rip, ref.traps[i].rip);
    }
    EXPECT_EQ(got.instret, ref.instret);
}

TEST(Core, HaltsWithExitCode)
{
    auto r = runCore("halt 42\n");
    EXPECT_EQ(r.reason, isa::TerminateReason::Halted);
    EXPECT_EQ(r.exitCode, 42);
}

TEST(Core, SimpleAluMatchesInterp)
{
    expectMatchesInterp("movi a0, 6\n"
                        "movi a1, 7\n"
                        "mul a2, a0, a1\n"
                        "addi a2, a2, -2\n"
                        "out.d a2\n"
                        "halt 0\n");
}

TEST(Core, DependentChainMatchesInterp)
{
    expectMatchesInterp("movi a0, 1\n"
                        "add a0, a0, a0\n"
                        "add a0, a0, a0\n"
                        "add a0, a0, a0\n"
                        "mul a0, a0, a0\n"
                        "out.d a0\n"
                        "halt 0\n");
}

TEST(Core, LoopMatchesInterp)
{
    expectMatchesInterp("movi a0, 0\n"
                        "movi a1, 1\n"
                        "movi a2, 101\n"
                        "loop:\n"
                        "add a0, a0, a1\n"
                        "addi a1, a1, 1\n"
                        "bne a1, a2, loop\n"
                        "out.d a0\n"
                        "halt 0\n");
}

TEST(Core, MemoryAndForwarding)
{
    // Store immediately followed by a load: exercises SQ forwarding.
    expectMatchesInterp(".data\nbuf: .space 64\n.text\n"
                        "la a0, buf\n"
                        "movi a1, 0xbeef\n"
                        "st.d a1, [a0+8]\n"
                        "ld.d a2, [a0+8]\n"
                        "out.d a2\n"
                        "st.w a1, [a0+16]\n"
                        "ld.bu a3, [a0+16]\n"
                        "out.d a3\n"
                        "halt 0\n");
}

TEST(Core, PartialOverlapStoreLoad)
{
    // A narrow store inside a wide load range forces a drain-then-load.
    expectMatchesInterp(".data\nbuf: .quad 0\n.text\n"
                        "la a0, buf\n"
                        "movi a1, -1\n"
                        "st.b a1, [a0+3]\n"
                        "ld.d a2, [a0]\n"
                        "out.d a2\n"
                        "halt 0\n");
}

TEST(Core, CompositesMatchInterp)
{
    expectMatchesInterp(".data\nv: .quad 40\nw: .quad 5\n.text\n"
                        "la a0, v\n"
                        "movi a1, 2\n"
                        "ldadd a1, [a0]\n"
                        "out.d a1\n"
                        "movi a2, 10\n"
                        "memadd a2, [a0]\n"
                        "ld.d a3, [a0]\n"
                        "out.d a3\n"
                        "push a3\n"
                        "pop a4\n"
                        "out.d a4\n"
                        "halt 0\n");
}

TEST(Core, CallRetAndIndirect)
{
    expectMatchesInterp("  movi a0, 5\n"
                        "  call f\n"
                        "  la t0, g\n"
                        "  callr t0\n"
                        "  out.d a0\n"
                        "  halt 0\n"
                        "f:\n"
                        "  push ra\n"
                        "  call g\n"
                        "  pop ra\n"
                        "  ret\n"
                        "g:\n"
                        "  addi a0, a0, 7\n"
                        "  ret\n");
}

TEST(Core, DataDependentBranchesMatchInterp)
{
    // Alternating hard-to-predict branches: exercises squash recovery.
    expectMatchesInterp(".data\ntab: .quad 3, 1, 4, 1, 5, 9, 2, 6\n.text\n"
                        "  la s0, tab\n"
                        "  movi s1, 0\n"   // index
                        "  movi s2, 8\n"   // count
                        "  movi s3, 0\n"   // accum
                        "  movi t0, 0\n"
                        "loop:\n"
                        "  shli t1, s1, 3\n"
                        "  add t1, t1, s0\n"
                        "  ld.d t2, [t1]\n"
                        "  andi t3, t2, 1\n"
                        "  beq t3, t0, even\n"
                        "  add s3, s3, t2\n"
                        "  jmp next\n"
                        "even:\n"
                        "  sub s3, s3, t2\n"
                        "next:\n"
                        "  addi s1, s1, 1\n"
                        "  bne s1, s2, loop\n"
                        "  out.d s3\n"
                        "  halt 0\n");
}

TEST(Core, DivZeroTrapMatchesInterp)
{
    expectMatchesInterp("movi a0, 5\n"
                        "movi a1, 0\n"
                        "div a2, a0, a1\n"
                        "halt 0\n");
}

TEST(Core, SegfaultMatchesInterp)
{
    expectMatchesInterp("movi a0, 64\n"
                        "ld.d a1, [a0]\n"
                        "halt 0\n");
}

TEST(Core, MisalignedMatchesInterp)
{
    expectMatchesInterp(".data\nb: .space 16\n.text\n"
                        "la a0, b\n"
                        "ld.w a1, [a0+2]\n"
                        "halt 0\n");
}

TEST(Core, TrapnzMatchesInterp)
{
    expectMatchesInterp("movi a0, 3\ntrapnz a0\nhalt 0\n");
}

TEST(Core, JumpToDataMatchesInterp)
{
    expectMatchesInterp(".data\nb: .quad 0\n.text\n"
                        "la a0, b\n"
                        "jr a0\n"
                        "halt 0\n");
}

TEST(Core, WrongPathFaultDoesNotCrash)
{
    // The load behind the (taken) branch is fetched on the wrong path and
    // would segfault if its fault were not squashed.
    expectMatchesInterp("  movi a0, 1\n"
                        "  movi a1, 1\n"
                        "  movi a2, 16\n"
                        "  beq a0, a1, safe\n"
                        "  ld.d a3, [a2]\n" // wild access, wrong path
                        "safe:\n"
                        "  out.d a0\n"
                        "  halt 0\n");
}

TEST(Core, TightStoreLoadLoopMatchesInterp)
{
    expectMatchesInterp(".data\nbuf: .space 256\n.text\n"
                        "  la s0, buf\n"
                        "  movi s1, 0\n"
                        "  movi s2, 32\n"
                        "fill:\n"
                        "  shli t0, s1, 3\n"
                        "  add t0, t0, s0\n"
                        "  mul t1, s1, s1\n"
                        "  st.d t1, [t0]\n"
                        "  addi s1, s1, 1\n"
                        "  bne s1, s2, fill\n"
                        "  movi s1, 0\n"
                        "  movi s3, 0\n"
                        "sum:\n"
                        "  shli t0, s1, 3\n"
                        "  add t0, t0, s0\n"
                        "  ldadd s3, [t0]\n"
                        "  addi s1, s1, 1\n"
                        "  bne s1, s2, sum\n"
                        "  out.d s3\n"
                        "  halt 0\n");
}

TEST(Core, Timing_IpcIsPositiveAndBounded)
{
    auto p = prog("movi a0, 0\n"
                  "movi a1, 1\n"
                  "movi a2, 1001\n"
                  "loop:\n"
                  "add a0, a0, a1\n"
                  "addi a1, a1, 1\n"
                  "bne a1, a2, loop\n"
                  "halt 0\n");
    Core core(p, CoreConfig{});
    core.run();
    const auto &st = core.stats();
    EXPECT_GT(st.cycles, 0u);
    EXPECT_GT(st.ipc(), 0.1);
    EXPECT_LE(st.ipc(), 4.0); // cannot exceed commit width
}

TEST(Core, Timing_MispredictsDetected)
{
    // Branch on pseudo-random bit: plenty of mispredictions expected.
    auto p = prog("  movi s0, 12345\n"
                  "  movi s1, 0\n"
                  "  movi s2, 500\n"
                  "  movi t0, 0\n"
                  "loop:\n"
                  "  mul s0, s0, s0\n"
                  "  shri t1, s0, 13\n"
                  "  xor s0, s0, t1\n"
                  "  addi s0, s0, 7\n"
                  "  andi t1, s0, 1\n"
                  "  beq t1, t0, skip\n"
                  "  addi s1, s1, 1\n"
                  "skip:\n"
                  "  addi s2, s2, -1\n"
                  "  bne s2, t0, loop\n"
                  "  halt 0\n");
    Core core(p, CoreConfig{});
    core.run();
    EXPECT_GT(core.stats().branchMispredicts, 20u);
}

TEST(Core, Timing_CacheMissesCostCycles)
{
    // Stride through 256KB: misses in a 64KB L1D.
    const char *src = ".data\nbig: .space 262144\n.text\n"
                      "  la s0, big\n"
                      "  movi s1, 0\n"
                      "  movi s2, 4096\n"
                      "  movi t0, 0\n"
                      "loop:\n"
                      "  shli t1, s1, 6\n"
                      "  add t1, t1, s0\n"
                      "  ld.d t2, [t1]\n"
                      "  add s3, s3, t2\n"
                      "  addi s1, s1, 1\n"
                      "  bne s1, s2, loop\n"
                      "  halt 0\n";
    Core big(prog(src), CoreConfig{});
    big.run();
    EXPECT_GT(big.stats().l1dMisses, 3000u);
}

TEST(Core, DeadlockWatchdogFires)
{
    // A load that can never complete does not exist by construction, so
    // emulate no-progress with an infinite dependency-free loop plus a
    // tiny cycle budget instead: the cycle-limit watchdog must fire.
    CoreConfig cfg;
    cfg.maxCycles = 5'000;
    auto r = runCore("spin: jmp spin\n", cfg);
    EXPECT_EQ(r.reason, isa::TerminateReason::CycleLimit);
}

TEST(Core, SmallestConfigStillCorrect)
{
    CoreConfig cfg;
    cfg = cfg.withRegisterFile(64).withStoreQueue(16).withL1dKb(16);
    expectMatchesInterp(".data\nbuf: .space 128\n.text\n"
                        "  la s0, buf\n"
                        "  movi s1, 0\n"
                        "  movi s2, 16\n"
                        "loop:\n"
                        "  shli t0, s1, 3\n"
                        "  add t0, t0, s0\n"
                        "  st.d s1, [t0]\n"
                        "  ld.d t1, [t0]\n"
                        "  add s3, s3, t1\n"
                        "  addi s1, s1, 1\n"
                        "  bne s1, s2, loop\n"
                        "  out.d s3\n"
                        "  halt 0\n",
                        cfg);
}

TEST(Core, ArchRegAndMemoryViews)
{
    auto p = prog(".data\nv: .quad 0\n.text\n"
                  "movi s5, 777\n"
                  "la a0, v\n"
                  "movi a1, 123\n"
                  "st.d a1, [a0]\n"
                  "halt 0\n");
    Core core(p, CoreConfig{});
    core.run();
    EXPECT_EQ(core.archRegValue(21), 777u); // s5 = r21
    auto view = core.archMemoryView();
    std::uint64_t v = 0;
    EXPECT_EQ(view.read(p.symbol("v"), 8, v), isa::TrapKind::None);
    EXPECT_EQ(v, 123u);
}

TEST(Core, WindowEndTerminatesRun)
{
    CoreConfig cfg;
    cfg.instructionWindowEnd = 50;
    auto r = runCore("spin: addi a0, a0, 1\njmp spin\n", cfg);
    EXPECT_EQ(r.reason, isa::TerminateReason::WindowEnd);
    EXPECT_EQ(r.instret, 50u);
}

TEST(CoreFaults, RegisterFlipFlipsBack)
{
    auto p = prog("halt 0\n");
    Core core(p, CoreConfig{});
    core.flipRegisterFileBit(40, 5);
    core.flipRegisterFileBit(40, 5);
    auto r = core.run();
    EXPECT_EQ(r.reason, isa::TerminateReason::Halted);
}

TEST(CoreFaults, FlipInDeadRegisterIsMasked)
{
    auto src = "movi a0, 1\nout.d a0\nhalt 0\n";
    auto p = prog(src);
    auto golden = isa::interpret(p);

    Core core(p, CoreConfig{});
    // Flip a bit in a free physical register nothing will ever read.
    core.flipRegisterFileBit(200, 13);
    auto r = core.run();
    EXPECT_TRUE(r.sameArchOutcome(golden));
}

TEST(CoreFaults, FlipInLiveRegisterCorruptsOutput)
{
    // a0 holds 16 across a bounded loop and is printed at the end.  Once
    // the loop is mid-flight, flip bit 3 of every physical register: the
    // live copy of a0 is among them, so the output must change.  The
    // loop exits on >= so a corrupted counter still terminates.
    auto src = "movi a0, 16\n"
               "movi a1, 1\n"
               "loop: addi a1, a1, 1\n"
               "blt a1, a0, loop\n"
               "out.d a0\n"
               "halt 0\n";
    auto p = prog(src);
    auto golden = isa::interpret(p);

    CoreConfig cfg;
    cfg.maxCycles = 1'000'000;
    Core core(p, cfg);
    // Advance until the MOVIs have architecturally committed (the cold
    // I-cache miss alone costs ~90 cycles).
    while (!core.finished() && core.result().instret < 2 &&
           core.archRegValue(0) != 16) {
        core.tick();
    }
    ASSERT_FALSE(core.finished());
    for (unsigned reg = 0; reg < cfg.numPhysIntRegs; ++reg)
        core.flipRegisterFileBit(reg, 3);
    auto r = core.run();
    EXPECT_FALSE(r.sameArchOutcome(golden));
}

TEST(CoreDiff, RandomProgramsMatchInterp)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        workloads::RandomProgramOptions opts;
        auto src = workloads::generateRandomProgram(seed, opts);
        auto p = masm::assemble(src, "rand" + std::to_string(seed));
        auto ref = isa::interpret(p);
        ASSERT_EQ(ref.reason, isa::TerminateReason::Halted)
            << "seed " << seed << " generator produced a trapping program";
        Core core(p, CoreConfig{});
        auto got = core.run();
        EXPECT_TRUE(got.sameArchOutcome(ref)) << "seed " << seed;
    }
}

TEST(CoreDiff, RandomProgramsSmallConfig)
{
    CoreConfig cfg;
    cfg = cfg.withRegisterFile(48).withStoreQueue(16).withL1dKb(16);
    for (std::uint64_t seed = 100; seed < 106; ++seed) {
        auto src = workloads::generateRandomProgram(seed);
        auto p = masm::assemble(src, "rand");
        auto ref = isa::interpret(p);
        Core core(p, cfg);
        auto got = core.run();
        EXPECT_TRUE(got.sameArchOutcome(ref)) << "seed " << seed;
    }
}

TEST(CoreDiff, DeterministicAcrossRuns)
{
    auto src = workloads::generateRandomProgram(77);
    auto p = masm::assemble(src, "rand");
    Core c1(p, CoreConfig{});
    Core c2(p, CoreConfig{});
    auto r1 = c1.run();
    auto r2 = c2.run();
    EXPECT_TRUE(r1.sameArchOutcome(r2));
    EXPECT_EQ(c1.stats().cycles, c2.stats().cycles);
    EXPECT_EQ(c1.stats().branchMispredicts, c2.stats().branchMispredicts);
}

// ------------------------------------------------- snapshot / restore

void
expectSameFinalState(const Core &a, const Core &b)
{
    EXPECT_EQ(static_cast<int>(a.result().reason),
              static_cast<int>(b.result().reason));
    EXPECT_EQ(a.result().exitCode, b.result().exitCode);
    EXPECT_EQ(a.result().output, b.result().output);
    EXPECT_EQ(a.result().instret, b.result().instret);
    EXPECT_EQ(a.stats().cycles, b.stats().cycles);
    EXPECT_EQ(a.stats().instret, b.stats().instret);
    EXPECT_EQ(a.stats().uopsRetired, b.stats().uopsRetired);
    EXPECT_EQ(a.stats().branchMispredicts, b.stats().branchMispredicts);
    EXPECT_EQ(a.stats().condBranches, b.stats().condBranches);
    EXPECT_EQ(a.stats().squashes, b.stats().squashes);
    EXPECT_EQ(a.stats().loadsExecuted, b.stats().loadsExecuted);
    EXPECT_EQ(a.stats().storeForwards, b.stats().storeForwards);
    EXPECT_EQ(a.stats().l1dHits, b.stats().l1dHits);
    EXPECT_EQ(a.stats().l1dMisses, b.stats().l1dMisses);
    for (unsigned r = 0; r < isa::NUM_RENAMEABLE_REGS; ++r)
        EXPECT_EQ(a.archRegValue(r), b.archRegValue(r));
    EXPECT_TRUE(a.archMemoryView().contentEquals(b.archMemoryView()));
}

TEST(CoreSnapshot, RestoredRunMatchesUninterrupted)
{
    auto src = workloads::generateRandomProgram(42);
    auto p = masm::assemble(src, "rand");
    CoreConfig cfg;

    Core reference(p, cfg);
    reference.run();
    ASSERT_GT(reference.stats().cycles, 100u);

    // Snapshot mid-run at several points; each restored core must end in
    // exactly the reference's final state.
    for (double frac : {0.1, 0.5, 0.9}) {
        const Cycle at = static_cast<Cycle>(
            static_cast<double>(reference.stats().cycles) * frac);
        Core running(p, cfg);
        while (running.cycle() < at && running.tick()) {
        }
        ASSERT_FALSE(running.finished());
        Core::Snapshot snap = running.snapshot();
        EXPECT_EQ(snap.cycle(), running.cycle());
        ASSERT_TRUE(snap.valid());

        Core restored(p, cfg, snap);
        EXPECT_EQ(restored.cycle(), at);
        restored.run();
        expectSameFinalState(restored, reference);

        // The donor core is unaffected by the snapshot and also
        // finishes identically.
        running.run();
        expectSameFinalState(running, reference);
    }
}

TEST(CoreSnapshot, RestoreIsRepeatable)
{
    auto src = workloads::generateRandomProgram(91);
    auto p = masm::assemble(src, "rand");
    CoreConfig cfg;
    Core running(p, cfg);
    while (running.cycle() < 200 && running.tick()) {
    }
    ASSERT_FALSE(running.finished());
    Core::Snapshot snap = running.snapshot();

    // One immutable snapshot feeds many restored cores.
    Core a(p, cfg, snap);
    Core b(p, cfg, snap);
    a.run();
    b.run();
    expectSameFinalState(a, b);
}

TEST(CoreSnapshot, CowRestoreCopiesFarFewerBytesThanDeep)
{
    // The acceptance criterion of the COW substrate, asserted on the
    // SnapshotStats byte counters rather than wall clock: a COW
    // capture/restore duplicates only the non-COW core state, while
    // the seed-equivalent deep mode duplicates memory and all cache
    // data arrays on top of it.
    auto src = workloads::generateRandomProgram(7);
    auto p = masm::assemble(src, "rand");
    CoreConfig cfg;
    Core running(p, cfg);
    while (running.cycle() < 400 && running.tick()) {
    }
    ASSERT_FALSE(running.finished());

    SnapshotStats cap;
    Core::Snapshot snap = running.snapshot(&cap);
    EXPECT_GT(cap.bytesShared, 0u);
    // Memory (2MB heap alone) + cache arrays dwarf the deep remainder.
    EXPECT_GT(cap.bytesShared, cap.bytesCopied);

    SnapshotStats cow, deep;
    Core a(p, cfg, snap, &cow);
    Core b(p, cfg, snap, &deep, /*deep=*/true);
    EXPECT_EQ(deep.bytesShared, 0u);
    EXPECT_EQ(cow.total(), deep.total());
    // "Measurably fewer": at least 4x less actually copied.
    EXPECT_LT(cow.bytesCopied, deep.bytesCopied / 4);

    // Both restore flavours still produce the same run.
    a.run();
    b.run();
    expectSameFinalState(a, b);
}

TEST(CoreSnapshot, RunsAfterRestoreNeverLeakIntoTheSnapshot)
{
    // Strict aliasing order: restore + run to completion (mutating
    // every shared structure), THEN restore again from the same
    // snapshot — the second core must see pristine snapshot state.
    auto src = workloads::generateRandomProgram(55);
    auto p = masm::assemble(src, "rand");
    CoreConfig cfg;
    Core running(p, cfg);
    while (running.cycle() < 250 && running.tick()) {
    }
    ASSERT_FALSE(running.finished());
    Core::Snapshot snap = running.snapshot();

    Core first(p, cfg, snap);
    first.run();
    Core second(p, cfg, snap);
    EXPECT_EQ(second.cycle(), snap.cycle());
    EXPECT_TRUE(second.stateEquals(snap));
    second.run();
    expectSameFinalState(first, second);
}

TEST(CoreSnapshot, StateEqualsDetectsDivergenceAndReconvergence)
{
    auto p = prog("movi a0, 1\nout.d a0\nhalt 0\n");
    CoreConfig cfg;
    Core running(p, cfg);
    while (running.cycle() < 20 && running.tick()) {
    }
    ASSERT_FALSE(running.finished());
    Core::Snapshot snap = running.snapshot();

    Core restored(p, cfg, snap);
    EXPECT_TRUE(restored.stateEquals(snap));
    // Flip a bit nothing uses: state now differs...
    restored.flipRegisterFileBit(cfg.numPhysIntRegs - 1, 3);
    EXPECT_FALSE(restored.stateEquals(snap));
    // ...and flipping it back reconverges exactly.
    restored.flipRegisterFileBit(cfg.numPhysIntRegs - 1, 3);
    EXPECT_TRUE(restored.stateEquals(snap));
}

TEST(CoreSnapshot, RestoringAnEmptySnapshotTrips)
{
    auto p = prog("movi a0, 1\nhalt 0\n");
    Core::Snapshot empty;
    EXPECT_FALSE(empty.valid());
    EXPECT_THROW((Core(p, CoreConfig{}, empty)), SimAssertError);
}

TEST(CoreSnapshot, RestoreAllowsTighterWatchdog)
{
    auto p = prog("  movi s0, 0\n"
                  "  movi s1, 300\n"
                  "spin:\n"
                  "  addi s0, s0, 1\n"
                  "  blt s0, s1, spin\n"
                  "  out.d s0\n"
                  "  halt 0\n");
    CoreConfig cfg;
    Core running(p, cfg);
    while (running.cycle() < 50 && running.tick()) {
    }
    Core::Snapshot snap = running.snapshot();

    // The injector's 3x-golden cycle budget must bite in restored runs.
    CoreConfig tight = cfg;
    tight.maxCycles = 60;
    Core restored(p, tight, snap);
    auto r = restored.run();
    EXPECT_EQ(r.reason, isa::TerminateReason::CycleLimit);
}

} // namespace
} // namespace merlin::uarch
