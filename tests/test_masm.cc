/**
 * @file
 * Unit tests for the assembler: syntax, labels, directives, pseudo
 * instructions, and error diagnostics.
 */

#include <gtest/gtest.h>

#include "base/bits.hh"
#include "isa/isa.hh"
#include "masm/asm.hh"

namespace merlin::masm
{
namespace
{

using isa::Opcode;

isa::Instruction
insnAt(const isa::Program &p, unsigned idx)
{
    auto raw = loadLE(p.text.data() + idx * isa::INSN_BYTES,
                      isa::INSN_BYTES);
    auto d = isa::decode(raw);
    EXPECT_TRUE(d.has_value());
    return d.value_or(isa::Instruction{});
}

TEST(Masm, MinimalProgram)
{
    auto p = assemble("halt 0\n", "t");
    ASSERT_EQ(p.instructionCount(), 1u);
    EXPECT_EQ(insnAt(p, 0).op, Opcode::HALT);
}

TEST(Masm, RegisterAliases)
{
    EXPECT_EQ(parseRegister("r0"), 0u);
    EXPECT_EQ(parseRegister("r31"), 31u);
    EXPECT_EQ(parseRegister("a0"), 0u);
    EXPECT_EQ(parseRegister("a5"), 5u);
    EXPECT_EQ(parseRegister("t0"), 6u);
    EXPECT_EQ(parseRegister("t9"), 15u);
    EXPECT_EQ(parseRegister("s0"), 16u);
    EXPECT_EQ(parseRegister("s9"), 25u);
    EXPECT_EQ(parseRegister("gp"), 26u);
    EXPECT_EQ(parseRegister("tp"), 27u);
    EXPECT_EQ(parseRegister("fp"), 28u);
    EXPECT_EQ(parseRegister("sp"), 29u);
    EXPECT_EQ(parseRegister("at"), 30u);
    EXPECT_EQ(parseRegister("ra"), 31u);
    EXPECT_EQ(parseRegister("r32"), 255u);
    EXPECT_EQ(parseRegister("a6"), 255u);
    EXPECT_EQ(parseRegister("bogus"), 255u);
}

TEST(Masm, ThreeOperandAlu)
{
    auto p = assemble("add t0, t1, t2\nhalt 0\n", "t");
    auto i = insnAt(p, 0);
    EXPECT_EQ(i.op, Opcode::ADD);
    EXPECT_EQ(i.rd, 6);
    EXPECT_EQ(i.rs1, 7);
    EXPECT_EQ(i.rs2, 8);
}

TEST(Masm, ImmediateForms)
{
    auto p = assemble("addi a0, a0, -4\n"
                      "movi a1, 0x10\n"
                      "movi a2, 'A'\n"
                      "halt 0\n",
                      "t");
    EXPECT_EQ(insnAt(p, 0).imm, -4);
    EXPECT_EQ(insnAt(p, 1).imm, 0x10);
    EXPECT_EQ(insnAt(p, 2).imm, 'A');
}

TEST(Masm, MemoryOperands)
{
    auto p = assemble("ld.w t0, [a0+8]\n"
                      "st.d t1, [sp]\n"
                      "ld.d t2, [a1-16]\n"
                      "halt 0\n",
                      "t");
    auto l = insnAt(p, 0);
    EXPECT_EQ(l.op, Opcode::LDW);
    EXPECT_EQ(l.rd, 6);
    EXPECT_EQ(l.rs1, 0);
    EXPECT_EQ(l.imm, 8);
    auto s = insnAt(p, 1);
    EXPECT_EQ(s.op, Opcode::STD);
    EXPECT_EQ(s.rs2, 7);
    EXPECT_EQ(s.rs1, isa::REG_SP);
    EXPECT_EQ(s.imm, 0);
    EXPECT_EQ(insnAt(p, 2).imm, -16);
}

TEST(Masm, LabelsResolveAcrossForwardAndBackward)
{
    auto p = assemble("start:\n"
                      "  jmp fwd\n"
                      "  nop\n"
                      "fwd:\n"
                      "  beq a0, a1, start\n"
                      "  halt 0\n",
                      "t");
    EXPECT_EQ(static_cast<Addr>(insnAt(p, 0).imm),
              isa::layout::TEXT_BASE + 2 * isa::INSN_BYTES);
    EXPECT_EQ(static_cast<Addr>(insnAt(p, 2).imm), isa::layout::TEXT_BASE);
    EXPECT_EQ(p.symbol("start"), isa::layout::TEXT_BASE);
    EXPECT_EQ(p.symbol("fwd"), isa::layout::TEXT_BASE + 16);
}

TEST(Masm, DataDirectivesAndSymbols)
{
    auto p = assemble(".data\n"
                      "tab: .quad 1, 2, 3\n"
                      "b:   .byte 0xff\n"
                      "     .align 4\n"
                      "w:   .word 513\n"
                      "s:   .asciz \"hi\"\n"
                      "buf: .space 16\n"
                      ".text\n"
                      "halt 0\n",
                      "t");
    EXPECT_EQ(p.symbol("tab"), isa::layout::DATA_BASE);
    EXPECT_EQ(p.symbol("b"), isa::layout::DATA_BASE + 24);
    EXPECT_EQ(p.symbol("w"), isa::layout::DATA_BASE + 28);
    EXPECT_EQ(p.symbol("s"), isa::layout::DATA_BASE + 32);
    EXPECT_EQ(p.symbol("buf"), isa::layout::DATA_BASE + 35);
    // Contents.
    EXPECT_EQ(loadLE(p.data.data(), 8), 1u);
    EXPECT_EQ(loadLE(p.data.data() + 8, 8), 2u);
    EXPECT_EQ(p.data[24], 0xff);
    EXPECT_EQ(loadLE(p.data.data() + 28, 4), 513u);
    EXPECT_EQ(p.data[32], 'h');
    EXPECT_EQ(p.data[33], 'i');
    EXPECT_EQ(p.data[34], '\0');
}

TEST(Masm, SymbolImmediates)
{
    auto p = assemble(".data\n"
                      "v: .quad 42\n"
                      ".text\n"
                      "la a0, v\n"
                      "ld.d a1, [a0+0]\n"
                      "ld.d a2, [a0+v-1048576]\n"
                      "halt 0\n",
                      "t");
    EXPECT_EQ(static_cast<Addr>(insnAt(p, 0).imm), isa::layout::DATA_BASE);
}

TEST(Masm, LiSmallIsOneInstruction)
{
    auto p = assemble("li a0, 1000\nhalt 0\n", "t");
    EXPECT_EQ(p.instructionCount(), 2u);
    EXPECT_EQ(insnAt(p, 0).op, Opcode::MOVI);
}

TEST(Masm, LiLargeIsTwoInstructions)
{
    auto p = assemble("li a0, 0x123456789abcdef0\nhalt 0\n", "t");
    EXPECT_EQ(p.instructionCount(), 3u);
    EXPECT_EQ(insnAt(p, 0).op, Opcode::MOVI);
    EXPECT_EQ(insnAt(p, 1).op, Opcode::MOVHI);
    EXPECT_EQ(static_cast<std::uint32_t>(insnAt(p, 0).imm), 0x9abcdef0u);
    EXPECT_EQ(static_cast<std::uint32_t>(insnAt(p, 1).imm), 0x12345678u);
}

TEST(Masm, PseudoMovAndRet)
{
    auto p = assemble("mov a0, a1\nret\nhalt 0\n", "t");
    auto m = insnAt(p, 0);
    EXPECT_EQ(m.op, Opcode::ADDI);
    EXPECT_EQ(m.rd, 0);
    EXPECT_EQ(m.rs1, 1);
    EXPECT_EQ(m.imm, 0);
    auto r = insnAt(p, 1);
    EXPECT_EQ(r.op, Opcode::JR);
    EXPECT_EQ(r.rs1, isa::REG_RA);
}

TEST(Masm, CommentsAndBlankLines)
{
    auto p = assemble("; leading comment\n"
                      "\n"
                      "  # another\n"
                      "nop ; trailing\n"
                      "halt 0 # trailing too\n",
                      "t");
    EXPECT_EQ(p.instructionCount(), 2u);
}

TEST(Masm, EntryDefaultsToTextBaseOrStart)
{
    auto p1 = assemble("nop\nhalt 0\n", "t");
    EXPECT_EQ(p1.entry, isa::layout::TEXT_BASE);
    auto p2 = assemble("nop\n_start:\nhalt 0\n", "t");
    EXPECT_EQ(p2.entry, isa::layout::TEXT_BASE + 8);
}

TEST(MasmErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble("frobnicate a0\n", "t"), AsmError);
}

TEST(MasmErrors, BadRegister)
{
    EXPECT_THROW(assemble("add q0, a1, a2\nhalt 0\n", "t"), AsmError);
}

TEST(MasmErrors, UndefinedSymbol)
{
    EXPECT_THROW(assemble("jmp nowhere\nhalt 0\n", "t"), AsmError);
}

TEST(MasmErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble("x:\nnop\nx:\nhalt 0\n", "t"), AsmError);
}

TEST(MasmErrors, WrongOperandCount)
{
    EXPECT_THROW(assemble("add a0, a1\nhalt 0\n", "t"), AsmError);
}

TEST(MasmErrors, CallrRaRejected)
{
    EXPECT_THROW(assemble("callr ra\nhalt 0\n", "t"), AsmError);
}

TEST(MasmErrors, DirectiveInText)
{
    EXPECT_THROW(assemble(".quad 1\nhalt 0\n", "t"), AsmError);
}

TEST(MasmErrors, MessageHasLineNumber)
{
    try {
        assemble("nop\nbogus a0\n", "prog");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_NE(std::string(e.what()).find("prog:2"), std::string::npos);
    }
}

TEST(MasmErrors, ImmediateOverflow)
{
    EXPECT_THROW(assemble("addi a0, a0, 0x100000000\nhalt 0\n", "t"),
                 AsmError);
}

} // namespace
} // namespace merlin::masm
