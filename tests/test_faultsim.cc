/**
 * @file
 * Injection-harness tests: outcome classification against Table 2,
 * timeout rule, window-truncation semantics, determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"

#include "faultsim/runner.hh"
#include "masm/asm.hh"
#include "workloads/workloads.hh"

namespace merlin::faultsim
{
namespace
{

using uarch::Structure;

TEST(OutcomeNames, AllDistinct)
{
    for (unsigned i = 0; i < NUM_OUTCOMES; ++i) {
        for (unsigned j = i + 1; j < NUM_OUTCOMES; ++j) {
            EXPECT_STRNE(outcomeName(static_cast<Outcome>(i)),
                         outcomeName(static_cast<Outcome>(j)));
        }
    }
}

TEST(Fault, ByteDerivedFromBit)
{
    Fault f;
    f.bit = 13;
    EXPECT_EQ(f.byte(), 1);
    f.bit = 63;
    EXPECT_EQ(f.byte(), 7);
}

TEST(Runner, GoldenCapturesCleanRun)
{
    auto prog = masm::assemble("movi a0, 9\nout.d a0\nhalt 0\n", "t");
    InjectionRunner runner(prog, uarch::CoreConfig{});
    auto g = runner.golden();
    EXPECT_EQ(g.arch.reason, isa::TerminateReason::Halted);
    EXPECT_FALSE(g.windowed);
    EXPECT_GT(g.stats.cycles, 0u);
}

TEST(Runner, GoldenRefusesTrappingProgram)
{
    auto prog = masm::assemble("movi a0, 1\nmovi a1, 0\ndiv a2, a0, a1\n"
                               "halt 0\n",
                               "t");
    InjectionRunner runner(prog, uarch::CoreConfig{});
    EXPECT_THROW(runner.golden(), FatalError);
}

TEST(Runner, FaultAfterEndIsMasked)
{
    auto prog = masm::assemble("movi a0, 9\nout.d a0\nhalt 0\n", "t");
    InjectionRunner runner(prog, uarch::CoreConfig{});
    auto g = runner.golden();
    Fault f;
    f.structure = Structure::RegisterFile;
    f.entry = 40;
    f.bit = 1;
    f.cycle = g.stats.cycles + 100; // never applied
    EXPECT_EQ(runner.inject(f, g), Outcome::Masked);
}

TEST(Runner, DeadRegisterFaultIsMasked)
{
    auto prog = masm::assemble("movi a0, 9\nout.d a0\nhalt 0\n", "t");
    uarch::CoreConfig cfg;
    InjectionRunner runner(prog, cfg);
    auto g = runner.golden();
    Fault f;
    f.structure = Structure::RegisterFile;
    f.entry = cfg.numPhysIntRegs - 1; // deep in the free list
    f.bit = 5;
    f.cycle = 1;
    EXPECT_EQ(runner.inject(f, g), Outcome::Masked);
}

/**
 * Exhaustively sweep one register's bits at one cycle on a program whose
 * output depends on that register: outcomes must include non-masked ones
 * and every run must classify into a Table-2 category.
 */
TEST(Runner, LiveRegisterSweepProducesNonMaskedOutcomes)
{
    // sum loop kept alive long enough that the flip lands mid-loop.
    auto prog = masm::assemble("  movi s0, 0\n"
                               "  movi s1, 1\n"
                               "  movi s2, 201\n"
                               "loop:\n"
                               "  add s0, s0, s1\n"
                               "  addi s1, s1, 1\n"
                               "  blt s1, s2, loop\n"
                               "  out.d s0\n"
                               "  halt 0\n",
                               "t");
    uarch::CoreConfig cfg;
    InjectionRunner runner(prog, cfg);
    auto g = runner.golden();

    unsigned non_masked = 0;
    for (unsigned reg = 34; reg < 44; ++reg) {
        Fault f;
        f.structure = Structure::RegisterFile;
        f.entry = reg;
        f.bit = 7;
        f.cycle = g.stats.cycles / 2;
        Outcome o = runner.inject(f, g);
        EXPECT_LT(static_cast<unsigned>(o), NUM_OUTCOMES);
        if (o != Outcome::Masked)
            ++non_masked;
    }
    EXPECT_GT(non_masked, 0u);
}

TEST(Runner, SdcDetectedOnCorruptedOutput)
{
    // Find a fault that corrupts the printed value: flip a high bit of
    // the accumulator register just before the OUT.
    auto prog = masm::assemble("  movi s0, 5\n"
                               "  movi s1, 0\n"
                               "  movi s2, 400\n"
                               "spin:\n"
                               "  addi s1, s1, 1\n"
                               "  blt s1, s2, spin\n"
                               "  out.d s0\n"
                               "  halt 0\n",
                               "t");
    uarch::CoreConfig cfg;
    InjectionRunner runner(prog, cfg);
    auto g = runner.golden();
    // s0's physical register: first free-list allocation.  Rather than
    // guess, sweep a few registers late in the run and require at least
    // one SDC (the value sits idle for ~400 iterations).
    bool saw_sdc = false;
    for (unsigned reg = 34; reg < 54 && !saw_sdc; ++reg) {
        Fault f;
        f.structure = Structure::RegisterFile;
        f.entry = reg;
        f.bit = 3;
        f.cycle = g.stats.cycles - 50;
        if (runner.inject(f, g) == Outcome::SDC)
            saw_sdc = true;
    }
    EXPECT_TRUE(saw_sdc);
}

TEST(Runner, StoreQueueFaultCanReachMemory)
{
    // Store a value, read it back much later (after drain): an SQ data
    // flip between execute and drain corrupts memory -> SDC.
    auto prog = masm::assemble(".data\nv: .quad 0\n.text\n"
                               "  la s0, v\n"
                               "  movi s1, 0x77\n"
                               "  st.d s1, [s0]\n"
                               "  movi s2, 0\n"
                               "  movi s3, 120\n"
                               "wait:\n"
                               "  addi s2, s2, 1\n"
                               "  blt s2, s3, wait\n"
                               "  ld.d s4, [s0]\n"
                               "  out.d s4\n"
                               "  halt 0\n",
                               "t");
    uarch::CoreConfig cfg;
    InjectionRunner runner(prog, cfg);
    auto g = runner.golden();
    unsigned sdc = 0;
    for (unsigned slot = 0; slot < cfg.sqEntries; ++slot) {
        for (Cycle c = 90; c < 100; ++c) {
            Fault f;
            f.structure = Structure::StoreQueue;
            f.entry = slot;
            f.bit = 0;
            f.cycle = c;
            if (runner.inject(f, g) == Outcome::SDC)
                ++sdc;
        }
    }
    EXPECT_GT(sdc, 0u);
}

TEST(Runner, L1dFaultSweepClassifies)
{
    auto w = workloads::buildWorkload("susan_s");
    uarch::CoreConfig cfg;
    InjectionRunner runner(w.program, cfg);
    auto g = runner.golden();
    Rng rng(7);
    unsigned nm = 0;
    for (unsigned i = 0; i < 30; ++i) {
        Fault f;
        f.structure = Structure::L1DCache;
        f.entry = static_cast<EntryIndex>(
            rng.nextBelow(cfg.l1d.totalWords()));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        f.cycle = rng.nextBelow(g.stats.cycles);
        Outcome o = runner.inject(f, g);
        EXPECT_LT(static_cast<unsigned>(o), NUM_OUTCOMES);
        if (o != Outcome::Masked)
            ++nm;
    }
    // Most random L1D faults are masked; the sweep must still classify.
    EXPECT_LE(nm, 30u);
}

TEST(Runner, InjectionIsDeterministic)
{
    auto w = workloads::buildWorkload("qsort");
    uarch::CoreConfig cfg;
    InjectionRunner runner(w.program, cfg);
    auto g = runner.golden();
    Fault f;
    f.structure = Structure::RegisterFile;
    f.entry = 60;
    f.bit = 11;
    f.cycle = g.stats.cycles / 3;
    Outcome o1 = runner.inject(f, g);
    Outcome o2 = runner.inject(f, g);
    EXPECT_EQ(o1, o2);
}

TEST(Runner, WindowedGoldenSnapshotsState)
{
    auto w = workloads::buildWorkload("mcf");
    uarch::CoreConfig cfg;
    cfg.instructionWindowEnd = w.suggestedWindow;
    InjectionRunner runner(w.program, cfg);
    auto g = runner.golden();
    EXPECT_TRUE(g.windowed);
    EXPECT_EQ(g.arch.reason, isa::TerminateReason::WindowEnd);
    ASSERT_NE(g.archMem, nullptr);
}

TEST(FaultKey, WidePackingRoundTripsAndIsDistinct)
{
    // Regression for the old 44/14/6 packing that capped entries at
    // 16K words (a 128 KB L1D): 18 entry bits must survive.
    Fault a;
    a.cycle = (1ULL << 40) - 1;
    a.entry = (1u << 18) - 1; // 256K words = a 2 MB data array
    a.bit = 63;
    Fault b = a;
    b.entry = (1u << 14); // first entry the old packing overflowed on
    EXPECT_NE(faultKey(a), faultKey(b));

    // Key distinctness over a dense sample of the coordinate space.
    std::vector<std::uint64_t> keys;
    for (Cycle c : {0ULL, 1ULL, (1ULL << 39)}) {
        for (EntryIndex e : {0u, 16384u, 100000u, (1u << 18) - 1}) {
            for (unsigned bit : {0u, 63u}) {
                Fault f;
                f.cycle = c;
                f.entry = e;
                f.bit = static_cast<std::uint8_t>(bit);
                keys.push_back(faultKey(f));
            }
        }
    }
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

/** End-to-end: inject into L1D entries past the old 16K-word cap. */
TEST(FaultKey, LargeL1dEntriesInjectThroughTheBatchPath)
{
    auto w = workloads::buildWorkload("qsort");
    uarch::CoreConfig cfg = uarch::CoreConfig{}.withL1dKb(256);
    InjectionRunner runner(w.program, cfg);
    auto g = runner.golden();
    std::vector<Fault> faults;
    for (EntryIndex e : {16384u, 20000u, cfg.l1d.totalWords() - 1}) {
        Fault f;
        f.structure = Structure::L1DCache;
        f.entry = e;
        f.bit = 9;
        f.cycle = g.stats.cycles / 2;
        faults.push_back(f);
    }
    OutcomeMemo memo(faults.size());
    const auto outs = runner.injectBatch(faults, g, 2, &memo);
    ASSERT_EQ(outs.size(), faults.size());
    EXPECT_EQ(memo.size(), faults.size());
    for (Outcome o : outs)
        EXPECT_LT(static_cast<unsigned>(o), NUM_OUTCOMES);
}

TEST(FaultKey, OverflowTripsTheAssert)
{
    Fault f;
    f.entry = 1u << 18;
    EXPECT_THROW(faultKey(f), SimAssertError);
}

TEST(OutcomeMemo, LookupInsertRoundTrip)
{
    OutcomeMemo memo(1000);
    Outcome o = Outcome::Masked;
    EXPECT_FALSE(memo.lookup(42, o));
    memo.insert(42, Outcome::SDC);
    ASSERT_TRUE(memo.lookup(42, o));
    EXPECT_EQ(o, Outcome::SDC);
    EXPECT_EQ(memo.size(), 1u);
    // First insertion wins (outcomes are deterministic anyway).
    memo.insert(42, Outcome::DUE);
    ASSERT_TRUE(memo.lookup(42, o));
    EXPECT_EQ(o, Outcome::SDC);
}

/** Checkpointed resume must classify exactly like a from-scratch run. */
TEST(Runner, CheckpointResumeMatchesFromScratch)
{
    auto w = workloads::buildWorkload("qsort");
    uarch::CoreConfig cfg;
    // Fine-grained checkpoints vs none at all.
    InjectionRunner ck(w.program, cfg, /*checkpoint_interval=*/128);
    InjectionRunner scratch(w.program, cfg, /*checkpoint_interval=*/0);
    auto g_ck = ck.golden();
    auto g_scratch = scratch.golden();
    ASSERT_FALSE(g_ck.checkpoints.empty());
    EXPECT_TRUE(g_scratch.checkpoints.empty());
    EXPECT_EQ(g_ck.stats.cycles, g_scratch.stats.cycles);

    Rng rng(21);
    for (unsigned i = 0; i < 40; ++i) {
        Fault f;
        f.structure = Structure::RegisterFile;
        f.entry = static_cast<EntryIndex>(
            rng.nextBelow(cfg.numPhysIntRegs));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        f.cycle = rng.nextBelow(g_ck.stats.cycles);
        EXPECT_EQ(ck.inject(f, g_ck), scratch.inject(f, g_scratch))
            << "entry " << f.entry << " bit " << unsigned(f.bit)
            << " cycle " << f.cycle;
    }
}

TEST(Runner, CheckpointListIsAscendingAndBounded)
{
    auto w = workloads::buildWorkload("qsort");
    uarch::CoreConfig cfg;
    const unsigned max_ckpts = 8;
    InjectionRunner runner(w.program, cfg, 64, max_ckpts);
    auto g = runner.golden();
    ASSERT_FALSE(g.checkpoints.empty());
    EXPECT_LE(g.checkpoints.size(), max_ckpts);
    for (std::size_t i = 1; i < g.checkpoints.size(); ++i)
        EXPECT_LT(g.checkpoints[i - 1].cycle(),
                  g.checkpoints[i].cycle());
    EXPECT_LT(g.checkpoints.back().cycle(), g.stats.cycles);
}

/**
 * Checkpoint-thinning regression: after thinning has fired (once,
 * then repeatedly), every kept checkpoint must still hold bit-identical
 * golden state — a fresh run advanced to the checkpoint cycle compares
 * equal — and a run resumed from any of them must finish exactly like
 * the golden run.  The kept grid must stay uniform through the last
 * checkpoint: thinning may never drop the deepest resume point.
 */
TEST(Runner, ThinnedCheckpointsHoldBitIdenticalGoldenState)
{
    auto w = workloads::buildWorkload("qsort");
    uarch::CoreConfig cfg;
    const Cycle interval = 64;
    for (const unsigned max_ckpts : {16u, 8u}) {
        InjectionRunner runner(w.program, cfg, interval, max_ckpts);
        auto g = runner.golden();
        ASSERT_GE(g.checkpoints.size(), 2u);

        // Thinning fired: the kept grid is coarser than requested, and
        // the tighter bound has been through at least one more round.
        const Cycle spacing =
            g.checkpoints[1].cycle() - g.checkpoints[0].cycle();
        unsigned rounds = 0;
        for (Cycle s = interval; s < spacing; s *= 2)
            ++rounds;
        EXPECT_GE(rounds, max_ckpts == 16u ? 1u : 2u)
            << "max " << max_ckpts << " spacing " << spacing;

        // Uniform grid through the back: the last checkpoint survived
        // every thinning round.
        for (std::size_t i = 1; i < g.checkpoints.size(); ++i) {
            EXPECT_EQ(g.checkpoints[i].cycle(),
                      g.checkpoints[0].cycle() + i * spacing);
        }
        EXPECT_GT(g.checkpoints.back().cycle() + 2 * spacing,
                  g.stats.cycles);

        // Bit-identical state at every kept checkpoint.
        uarch::Core fresh(w.program, cfg);
        auto ck = g.checkpoints.begin();
        while (ck != g.checkpoints.end()) {
            if (fresh.cycle() == ck->cycle()) {
                EXPECT_TRUE(fresh.stateEquals(*ck))
                    << "checkpoint at cycle " << ck->cycle();
                ++ck;
            }
            ASSERT_TRUE(fresh.tick());
        }

        // Resume from every kept checkpoint reproduces the golden run.
        for (const auto &snap : g.checkpoints) {
            uarch::Core resumed(w.program, cfg, snap);
            const auto r = resumed.run();
            EXPECT_EQ(r.reason, g.arch.reason);
            EXPECT_EQ(r.output, g.arch.output);
            EXPECT_EQ(r.exitCode, g.arch.exitCode);
            EXPECT_EQ(resumed.stats().cycles, g.stats.cycles);
        }
    }
}

TEST(Runner, TimeoutBudgetIsSaturatingAndFactorScaled)
{
    constexpr Cycle kMax = std::numeric_limits<Cycle>::max();
    EXPECT_EQ(InjectionRunner::timeoutBudget(100, 3), 1300u);
    EXPECT_EQ(InjectionRunner::timeoutBudget(100, 5), 1500u);
    // Factor 0 is treated as 1, never a zero budget.
    EXPECT_EQ(InjectionRunner::timeoutBudget(100, 0), 1100u);
    // The seed expression 3*c+1000 wrapped here; it must clamp.
    EXPECT_EQ(InjectionRunner::timeoutBudget(kMax / 2, 3), kMax);
    EXPECT_EQ(InjectionRunner::timeoutBudget(kMax, 1), kMax);
    EXPECT_EQ(InjectionRunner::timeoutBudget((kMax - 1000) / 3, 3),
              kMax - 1000 - (kMax - 1000) % 3 + 1000);
}

/**
 * The early-exit acceptance property: outcomes are bit-identical with
 * the golden-reconvergence exit on vs off (it only skips simulation
 * past a proven state match), and the exit actually fires.
 */
TEST(Runner, EarlyExitPreservesEveryOutcome)
{
    auto w = workloads::buildWorkload("qsort");
    uarch::CoreConfig cfg;
    RunnerOptions on;
    on.checkpointInterval = 128;
    // Replay would resolve most of these flips before the early-exit
    // machinery ever runs; this test isolates the early-exit property.
    on.replay = false;
    RunnerOptions off = on;
    off.earlyExit = false;

    InjectionRunner fast(w.program, cfg, on);
    InjectionRunner slow(w.program, cfg, off);
    auto g_fast = fast.golden();
    auto g_slow = slow.golden();
    ASSERT_EQ(g_fast.stats.cycles, g_slow.stats.cycles);

    Rng rng(17);
    std::vector<Fault> faults;
    for (unsigned i = 0; i < 60; ++i) {
        Fault f;
        f.structure = Structure::RegisterFile;
        f.entry = static_cast<EntryIndex>(
            rng.nextBelow(cfg.numPhysIntRegs));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        f.cycle = rng.nextBelow(g_fast.stats.cycles);
        faults.push_back(f);
    }
    const auto with = fast.injectBatch(faults, g_fast, 1);
    const auto without = slow.injectBatch(faults, g_slow, 1);
    EXPECT_EQ(with, without);

    // Random RF flips mostly land in dead registers: the exit must
    // have fired, and only on the runner that has it enabled.
    EXPECT_GT(fast.injectionStats().earlyExits, 0u);
    EXPECT_GT(fast.injectionStats().runs, 0u);
    EXPECT_LE(fast.injectionStats().earlyExits,
              fast.injectionStats().runs);
    EXPECT_EQ(slow.injectionStats().earlyExits, 0u);
}

/** Early exit across all three target structures stays classification-
 *  preserving (SQ and L1D flips detach COW chunks mid-run). */
TEST(Runner, EarlyExitMatchesAcrossStructures)
{
    auto w = workloads::buildWorkload("fft");
    uarch::CoreConfig cfg = uarch::CoreConfig{}.withStoreQueue(16);
    RunnerOptions on;
    RunnerOptions off;
    off.earlyExit = false;
    InjectionRunner fast(w.program, cfg, on);
    InjectionRunner slow(w.program, cfg, off);
    auto g = fast.golden();
    auto g_off = slow.golden();

    Rng rng(23);
    for (Structure s : {Structure::RegisterFile, Structure::StoreQueue,
                        Structure::L1DCache}) {
        const unsigned entries =
            s == Structure::RegisterFile ? cfg.numPhysIntRegs
            : s == Structure::StoreQueue ? cfg.sqEntries
                                         : cfg.l1d.totalWords();
        for (unsigned i = 0; i < 12; ++i) {
            Fault f;
            f.structure = s;
            f.entry = static_cast<EntryIndex>(rng.nextBelow(entries));
            f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
            f.cycle = rng.nextBelow(g.stats.cycles);
            EXPECT_EQ(fast.inject(f, g), slow.inject(f, g_off))
                << uarch::structureName(s) << " entry " << f.entry
                << " bit " << unsigned(f.bit) << " cycle " << f.cycle;
        }
    }
}

// ------------------------------------------------ replay fast path

/**
 * The replay acceptance property: outcomes are bit-identical with the
 * golden-trace fast path on vs off, across all three target
 * structures, and the trace actually resolves faults both ways
 * (shortcut Masked and divergence handoff).
 */
TEST(Runner, ReplayPreservesEveryOutcome)
{
    auto w = workloads::buildWorkload("qsort");
    uarch::CoreConfig cfg;
    RunnerOptions on;
    RunnerOptions off;
    off.replay = false;
    InjectionRunner fast(w.program, cfg, on);
    InjectionRunner slow(w.program, cfg, off);
    auto g_fast = fast.golden();
    auto g_slow = slow.golden();
    ASSERT_NE(g_fast.trace, nullptr);
    EXPECT_EQ(g_slow.trace, nullptr);
    EXPECT_GT(g_fast.trace->numEvents(), 0u);

    Rng rng(41);
    std::vector<Fault> faults;
    for (unsigned i = 0; i < 90; ++i) {
        Fault f;
        f.structure = i % 3 == 0   ? Structure::RegisterFile
                      : i % 3 == 1 ? Structure::StoreQueue
                                   : Structure::L1DCache;
        const unsigned entries =
            f.structure == Structure::RegisterFile ? cfg.numPhysIntRegs
            : f.structure == Structure::StoreQueue ? cfg.sqEntries
                                                   : cfg.l1d.totalWords();
        f.entry = static_cast<EntryIndex>(rng.nextBelow(entries));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        f.cycle = rng.nextBelow(g_fast.stats.cycles);
        faults.push_back(f);
    }
    const auto with = fast.injectBatch(faults, g_fast, 1);
    const auto without = slow.injectBatch(faults, g_slow, 1);
    EXPECT_EQ(with, without);

    // Every replay-enabled injection is resolved by the trace, one way
    // or the other; the replay-off runner never consults it.
    const auto st = fast.injectionStats();
    EXPECT_GT(st.replayMasked, 0u);
    EXPECT_GT(st.replayHandoffs, 0u);
    EXPECT_EQ(st.replayMasked + st.replayHandoffs, st.runs);
    EXPECT_GT(st.replayCyclesSkipped, 0u);
    EXPECT_EQ(slow.injectionStats().replayMasked, 0u);
    EXPECT_EQ(slow.injectionStats().replayHandoffs, 0u);
    EXPECT_EQ(slow.injectionStats().replayCyclesSkipped, 0u);
}

/**
 * Windowed runs: a never-touched flip is still latent at the window
 * end, so replay must hand it off to the Table-4 comparison rather
 * than shortcut it — the Unknown class must survive intact.
 */
TEST(Runner, ReplayPreservesWindowedOutcomes)
{
    auto w = workloads::buildWorkload("mcf");
    uarch::CoreConfig cfg;
    cfg.instructionWindowEnd = w.suggestedWindow;
    RunnerOptions on;
    RunnerOptions off;
    off.replay = false;
    InjectionRunner fast(w.program, cfg, on);
    InjectionRunner slow(w.program, cfg, off);
    auto g_fast = fast.golden();
    auto g_slow = slow.golden();
    ASSERT_TRUE(g_fast.windowed);

    Rng rng(5);
    unsigned unknown = 0;
    for (unsigned i = 0; i < 60; ++i) {
        Fault f;
        f.structure = Structure::RegisterFile;
        f.entry = static_cast<EntryIndex>(
            rng.nextBelow(cfg.numPhysIntRegs));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        f.cycle = rng.nextBelow(g_fast.stats.cycles);
        const Outcome o = fast.inject(f, g_fast);
        EXPECT_EQ(o, slow.inject(f, g_slow))
            << "entry " << f.entry << " bit " << unsigned(f.bit)
            << " cycle " << f.cycle;
        if (o == Outcome::Unknown)
            ++unknown;
    }
    EXPECT_GT(unknown, 0u);
}

/** Per-injection replay facts land in InjectDetail. */
TEST(Runner, ReplayDetailReportsActionAndSkippedCycles)
{
    auto prog = masm::assemble("movi a0, 9\nout.d a0\nhalt 0\n", "t");
    uarch::CoreConfig cfg;
    InjectionRunner runner(prog, cfg);
    auto g = runner.golden();
    ASSERT_NE(g.trace, nullptr);

    // Deep in the free list, flipped on the final cycles: nothing can
    // touch it again, so the trace proves it dead outright.
    Fault f;
    f.structure = Structure::RegisterFile;
    f.entry = cfg.numPhysIntRegs - 1;
    f.bit = 5;
    f.cycle = g.stats.cycles - 1;
    InjectDetail detail;
    EXPECT_EQ(runner.inject(f, g, &detail), Outcome::Masked);
    EXPECT_EQ(detail.replay, ReplayAction::Masked);
    EXPECT_EQ(detail.replayCyclesSkipped, detail.replayHeadCycles);
    EXPECT_GT(detail.replayCyclesSkipped, 0u);
}

/** jobs=1 and jobs=8 must produce bit-identical outcome vectors. */
TEST(Runner, InjectBatchIsDeterministicAcrossThreadCounts)
{
    auto w = workloads::buildWorkload("qsort");
    uarch::CoreConfig cfg;
    InjectionRunner runner(w.program, cfg);
    auto g = runner.golden();

    Rng rng(31);
    std::vector<Fault> faults;
    for (unsigned i = 0; i < 60; ++i) {
        Fault f;
        f.structure = Structure::RegisterFile;
        f.entry = static_cast<EntryIndex>(
            rng.nextBelow(cfg.numPhysIntRegs));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        f.cycle = rng.nextBelow(g.stats.cycles);
        faults.push_back(f);
    }
    // Duplicates exercise the in-batch dedup path.
    faults.push_back(faults[3]);
    faults.push_back(faults[17]);

    const auto serial = runner.injectBatch(faults, g, 1);
    const auto parallel = runner.injectBatch(faults, g, 8);
    ASSERT_EQ(serial.size(), faults.size());
    EXPECT_EQ(serial, parallel);

    // And both agree with one-at-a-time injection.
    for (std::size_t i = 0; i < faults.size(); ++i)
        EXPECT_EQ(serial[i], runner.inject(faults[i], g)) << "fault " << i;
}

TEST(Runner, InjectBatchReusesTheMemo)
{
    auto w = workloads::buildWorkload("qsort");
    uarch::CoreConfig cfg;
    InjectionRunner runner(w.program, cfg);
    auto g = runner.golden();

    Rng rng(33);
    std::vector<Fault> faults;
    for (unsigned i = 0; i < 10; ++i) {
        Fault f;
        f.structure = Structure::RegisterFile;
        f.entry = static_cast<EntryIndex>(
            rng.nextBelow(cfg.numPhysIntRegs));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        // Distinct cycles guarantee distinct keys for the size checks.
        f.cycle = 10 + i * (g.stats.cycles / 16);
        faults.push_back(f);
    }
    OutcomeMemo memo(faults.size());
    const auto first = runner.injectBatch(faults, g, 2, &memo);
    EXPECT_EQ(memo.size(), faults.size());
    // Second batch over the same faults is answered from the memo and
    // must agree exactly.
    const auto second = runner.injectBatch(faults, g, 2, &memo);
    EXPECT_EQ(first, second);
    EXPECT_EQ(memo.size(), faults.size());
}

TEST(Runner, WindowedRunsUseUnknownCategory)
{
    auto w = workloads::buildWorkload("mcf");
    uarch::CoreConfig cfg;
    cfg.instructionWindowEnd = w.suggestedWindow;
    InjectionRunner runner(w.program, cfg);
    auto g = runner.golden();
    Rng rng(5);
    unsigned unknown = 0, masked = 0;
    for (unsigned i = 0; i < 60; ++i) {
        Fault f;
        f.structure = Structure::RegisterFile;
        f.entry = static_cast<EntryIndex>(
            rng.nextBelow(cfg.numPhysIntRegs));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        f.cycle = rng.nextBelow(g.stats.cycles);
        Outcome o = runner.inject(f, g);
        if (o == Outcome::Unknown)
            ++unknown;
        if (o == Outcome::Masked)
            ++masked;
    }
    EXPECT_GT(masked, 0u);
    EXPECT_GT(unknown, 0u); // latent faults exist at the window end
}

// ------------------------------------------------ quarantine guard

namespace
{

/** A runner over the live-loop program with @p opts' guard knobs. */
isa::Program
loopProgram()
{
    return masm::assemble("  movi s0, 0\n"
                          "  movi s1, 1\n"
                          "  movi s2, 201\n"
                          "loop:\n"
                          "  add s0, s0, s1\n"
                          "  addi s1, s1, 1\n"
                          "  blt s1, s2, loop\n"
                          "  out.d s0\n"
                          "  halt 0\n",
                          "t");
}

Fault
midRunFault(const GoldenRun &g, EntryIndex entry = 40)
{
    Fault f;
    f.structure = Structure::RegisterFile;
    f.entry = entry;
    f.bit = 7;
    f.cycle = g.stats.cycles / 2;
    return f;
}

} // namespace

TEST(Quarantine, EscapedSimulatorExceptionIsRecordedAsCrash)
{
    auto prog = loopProgram();
    RunnerOptions opts;
    // Model a fault that corrupts the simulator: the run throws a few
    // cycles after the flip lands.
    opts.injectHook = [](const Fault &f, Cycle c) {
        if (c >= f.cycle + 3)
            throw std::runtime_error("boom");
    };
    InjectionRunner runner(prog, uarch::CoreConfig{}, opts);
    auto g = runner.golden();

    InjectDetail detail;
    const Fault f = midRunFault(g);
    EXPECT_EQ(runner.inject(f, g, &detail), Outcome::Crash);
    EXPECT_TRUE(detail.quarantined);
    EXPECT_NE(detail.reason.find("simulator exception: boom"),
              std::string::npos);

    const auto q = runner.quarantineRecords();
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q[0].faultKey, faultKey(f));
    EXPECT_EQ(q[0].reason, detail.reason);
    EXPECT_EQ(runner.injectionStats().quarantined, 1u);
}

TEST(Quarantine, NonStandardExceptionIsGuardedToo)
{
    auto prog = loopProgram();
    RunnerOptions opts;
    opts.injectHook = [](const Fault &f, Cycle c) {
        if (c >= f.cycle + 3)
            throw 42; // immune to catch (std::exception&)
    };
    InjectionRunner runner(prog, uarch::CoreConfig{}, opts);
    auto g = runner.golden();

    InjectDetail detail;
    EXPECT_EQ(runner.inject(midRunFault(g), g, &detail), Outcome::Crash);
    EXPECT_TRUE(detail.quarantined);
    EXPECT_EQ(detail.reason, "non-standard exception");
}

TEST(Quarantine, BatchCompletesAroundAPathologicalFault)
{
    auto prog = loopProgram();
    RunnerOptions opts;
    const EntryIndex sick_entry = 40;
    opts.injectHook = [sick_entry](const Fault &f, Cycle) {
        if (f.structure == Structure::RegisterFile &&
            f.entry == sick_entry)
            throw std::runtime_error("only this fault is sick");
    };
    InjectionRunner runner(prog, uarch::CoreConfig{}, opts);
    auto g = runner.golden();

    // A clean reference runner classifies the healthy faults.
    InjectionRunner clean(prog, uarch::CoreConfig{});
    auto gc = clean.golden();

    std::vector<Fault> faults;
    for (EntryIndex e = 36; e < 44; ++e)
        faults.push_back(midRunFault(g, e));
    const auto outcomes = runner.injectBatch(faults, g, 2);
    ASSERT_EQ(outcomes.size(), faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (faults[i].entry == sick_entry)
            EXPECT_EQ(outcomes[i], Outcome::Crash);
        else
            EXPECT_EQ(outcomes[i], clean.inject(faults[i], gc));
    }
    ASSERT_EQ(runner.quarantineRecords().size(), 1u);
    EXPECT_EQ(runner.quarantineRecords()[0].faultKey,
              faultKey(midRunFault(g, sick_entry)));
}

TEST(Quarantine, PolicyFailAbortsTheCampaign)
{
    auto prog = loopProgram();
    RunnerOptions opts;
    opts.quarantine = QuarantinePolicy::Fail;
    opts.injectHook = [](const Fault &, Cycle) {
        throw std::runtime_error("boom");
    };
    InjectionRunner runner(prog, uarch::CoreConfig{}, opts);
    auto g = runner.golden();
    EXPECT_THROW(runner.inject(midRunFault(g), g), FatalError);
}

TEST(Quarantine, WallClockWatchdogTripsOnAWedgedRun)
{
    auto prog = loopProgram();
    RunnerOptions opts;
    opts.wallClockLimit = 0.02;
    // A livelock model: every post-flip cycle burns ~1ms of real time
    // while the simulated cycle budget stays far from its bound, so
    // only the watchdog can end the run.  The check cadence is every
    // 256 ticks; 0.02s is exceeded long before then.
    opts.injectHook = [](const Fault &, Cycle) {
        const auto until =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(1);
        while (std::chrono::steady_clock::now() < until) {
        }
    };
    uarch::CoreConfig cfg;
    InjectionRunner runner(prog, cfg, opts);
    auto g = runner.golden();

    // A dead-register flip early in the run: the simulation itself
    // would run (and mask) to completion, so plenty of post-flip
    // cycles pass a watchdog checkpoint.
    Fault f;
    f.structure = Structure::RegisterFile;
    f.entry = cfg.numPhysIntRegs - 1;
    f.bit = 5;
    f.cycle = 1;
    InjectDetail detail;
    EXPECT_EQ(runner.inject(f, g, &detail), Outcome::Crash);
    EXPECT_TRUE(detail.quarantined);
    EXPECT_NE(detail.reason.find("wall-clock watchdog"),
              std::string::npos);
}

} // namespace
} // namespace merlin::faultsim
