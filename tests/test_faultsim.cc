/**
 * @file
 * Injection-harness tests: outcome classification against Table 2,
 * timeout rule, window-truncation semantics, determinism.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/rng.hh"

#include "faultsim/runner.hh"
#include "masm/asm.hh"
#include "workloads/workloads.hh"

namespace merlin::faultsim
{
namespace
{

using uarch::Structure;

TEST(OutcomeNames, AllDistinct)
{
    for (unsigned i = 0; i < NUM_OUTCOMES; ++i) {
        for (unsigned j = i + 1; j < NUM_OUTCOMES; ++j) {
            EXPECT_STRNE(outcomeName(static_cast<Outcome>(i)),
                         outcomeName(static_cast<Outcome>(j)));
        }
    }
}

TEST(Fault, ByteDerivedFromBit)
{
    Fault f;
    f.bit = 13;
    EXPECT_EQ(f.byte(), 1);
    f.bit = 63;
    EXPECT_EQ(f.byte(), 7);
}

TEST(Runner, GoldenCapturesCleanRun)
{
    auto prog = masm::assemble("movi a0, 9\nout.d a0\nhalt 0\n", "t");
    InjectionRunner runner(prog, uarch::CoreConfig{});
    auto g = runner.golden();
    EXPECT_EQ(g.arch.reason, isa::TerminateReason::Halted);
    EXPECT_FALSE(g.windowed);
    EXPECT_GT(g.stats.cycles, 0u);
}

TEST(Runner, GoldenRefusesTrappingProgram)
{
    auto prog = masm::assemble("movi a0, 1\nmovi a1, 0\ndiv a2, a0, a1\n"
                               "halt 0\n",
                               "t");
    InjectionRunner runner(prog, uarch::CoreConfig{});
    EXPECT_THROW(runner.golden(), FatalError);
}

TEST(Runner, FaultAfterEndIsMasked)
{
    auto prog = masm::assemble("movi a0, 9\nout.d a0\nhalt 0\n", "t");
    InjectionRunner runner(prog, uarch::CoreConfig{});
    auto g = runner.golden();
    Fault f;
    f.structure = Structure::RegisterFile;
    f.entry = 40;
    f.bit = 1;
    f.cycle = g.stats.cycles + 100; // never applied
    EXPECT_EQ(runner.inject(f, g), Outcome::Masked);
}

TEST(Runner, DeadRegisterFaultIsMasked)
{
    auto prog = masm::assemble("movi a0, 9\nout.d a0\nhalt 0\n", "t");
    uarch::CoreConfig cfg;
    InjectionRunner runner(prog, cfg);
    auto g = runner.golden();
    Fault f;
    f.structure = Structure::RegisterFile;
    f.entry = cfg.numPhysIntRegs - 1; // deep in the free list
    f.bit = 5;
    f.cycle = 1;
    EXPECT_EQ(runner.inject(f, g), Outcome::Masked);
}

/**
 * Exhaustively sweep one register's bits at one cycle on a program whose
 * output depends on that register: outcomes must include non-masked ones
 * and every run must classify into a Table-2 category.
 */
TEST(Runner, LiveRegisterSweepProducesNonMaskedOutcomes)
{
    // sum loop kept alive long enough that the flip lands mid-loop.
    auto prog = masm::assemble("  movi s0, 0\n"
                               "  movi s1, 1\n"
                               "  movi s2, 201\n"
                               "loop:\n"
                               "  add s0, s0, s1\n"
                               "  addi s1, s1, 1\n"
                               "  blt s1, s2, loop\n"
                               "  out.d s0\n"
                               "  halt 0\n",
                               "t");
    uarch::CoreConfig cfg;
    InjectionRunner runner(prog, cfg);
    auto g = runner.golden();

    unsigned non_masked = 0;
    for (unsigned reg = 34; reg < 44; ++reg) {
        Fault f;
        f.structure = Structure::RegisterFile;
        f.entry = reg;
        f.bit = 7;
        f.cycle = g.stats.cycles / 2;
        Outcome o = runner.inject(f, g);
        EXPECT_LT(static_cast<unsigned>(o), NUM_OUTCOMES);
        if (o != Outcome::Masked)
            ++non_masked;
    }
    EXPECT_GT(non_masked, 0u);
}

TEST(Runner, SdcDetectedOnCorruptedOutput)
{
    // Find a fault that corrupts the printed value: flip a high bit of
    // the accumulator register just before the OUT.
    auto prog = masm::assemble("  movi s0, 5\n"
                               "  movi s1, 0\n"
                               "  movi s2, 400\n"
                               "spin:\n"
                               "  addi s1, s1, 1\n"
                               "  blt s1, s2, spin\n"
                               "  out.d s0\n"
                               "  halt 0\n",
                               "t");
    uarch::CoreConfig cfg;
    InjectionRunner runner(prog, cfg);
    auto g = runner.golden();
    // s0's physical register: first free-list allocation.  Rather than
    // guess, sweep a few registers late in the run and require at least
    // one SDC (the value sits idle for ~400 iterations).
    bool saw_sdc = false;
    for (unsigned reg = 34; reg < 54 && !saw_sdc; ++reg) {
        Fault f;
        f.structure = Structure::RegisterFile;
        f.entry = reg;
        f.bit = 3;
        f.cycle = g.stats.cycles - 50;
        if (runner.inject(f, g) == Outcome::SDC)
            saw_sdc = true;
    }
    EXPECT_TRUE(saw_sdc);
}

TEST(Runner, StoreQueueFaultCanReachMemory)
{
    // Store a value, read it back much later (after drain): an SQ data
    // flip between execute and drain corrupts memory -> SDC.
    auto prog = masm::assemble(".data\nv: .quad 0\n.text\n"
                               "  la s0, v\n"
                               "  movi s1, 0x77\n"
                               "  st.d s1, [s0]\n"
                               "  movi s2, 0\n"
                               "  movi s3, 120\n"
                               "wait:\n"
                               "  addi s2, s2, 1\n"
                               "  blt s2, s3, wait\n"
                               "  ld.d s4, [s0]\n"
                               "  out.d s4\n"
                               "  halt 0\n",
                               "t");
    uarch::CoreConfig cfg;
    InjectionRunner runner(prog, cfg);
    auto g = runner.golden();
    unsigned sdc = 0;
    for (unsigned slot = 0; slot < cfg.sqEntries; ++slot) {
        for (Cycle c = 90; c < 100; ++c) {
            Fault f;
            f.structure = Structure::StoreQueue;
            f.entry = slot;
            f.bit = 0;
            f.cycle = c;
            if (runner.inject(f, g) == Outcome::SDC)
                ++sdc;
        }
    }
    EXPECT_GT(sdc, 0u);
}

TEST(Runner, L1dFaultSweepClassifies)
{
    auto w = workloads::buildWorkload("susan_s");
    uarch::CoreConfig cfg;
    InjectionRunner runner(w.program, cfg);
    auto g = runner.golden();
    Rng rng(7);
    unsigned nm = 0;
    for (unsigned i = 0; i < 30; ++i) {
        Fault f;
        f.structure = Structure::L1DCache;
        f.entry = static_cast<EntryIndex>(
            rng.nextBelow(cfg.l1d.totalWords()));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        f.cycle = rng.nextBelow(g.stats.cycles);
        Outcome o = runner.inject(f, g);
        EXPECT_LT(static_cast<unsigned>(o), NUM_OUTCOMES);
        if (o != Outcome::Masked)
            ++nm;
    }
    // Most random L1D faults are masked; the sweep must still classify.
    EXPECT_LE(nm, 30u);
}

TEST(Runner, InjectionIsDeterministic)
{
    auto w = workloads::buildWorkload("qsort");
    uarch::CoreConfig cfg;
    InjectionRunner runner(w.program, cfg);
    auto g = runner.golden();
    Fault f;
    f.structure = Structure::RegisterFile;
    f.entry = 60;
    f.bit = 11;
    f.cycle = g.stats.cycles / 3;
    Outcome o1 = runner.inject(f, g);
    Outcome o2 = runner.inject(f, g);
    EXPECT_EQ(o1, o2);
}

TEST(Runner, WindowedGoldenSnapshotsState)
{
    auto w = workloads::buildWorkload("mcf");
    uarch::CoreConfig cfg;
    cfg.instructionWindowEnd = w.suggestedWindow;
    InjectionRunner runner(w.program, cfg);
    auto g = runner.golden();
    EXPECT_TRUE(g.windowed);
    EXPECT_EQ(g.arch.reason, isa::TerminateReason::WindowEnd);
    ASSERT_NE(g.archMem, nullptr);
}

TEST(Runner, WindowedRunsUseUnknownCategory)
{
    auto w = workloads::buildWorkload("mcf");
    uarch::CoreConfig cfg;
    cfg.instructionWindowEnd = w.suggestedWindow;
    InjectionRunner runner(w.program, cfg);
    auto g = runner.golden();
    Rng rng(5);
    unsigned unknown = 0, masked = 0;
    for (unsigned i = 0; i < 60; ++i) {
        Fault f;
        f.structure = Structure::RegisterFile;
        f.entry = static_cast<EntryIndex>(
            rng.nextBelow(cfg.numPhysIntRegs));
        f.bit = static_cast<std::uint8_t>(rng.nextBelow(64));
        f.cycle = rng.nextBelow(g.stats.cycles);
        Outcome o = runner.inject(f, g);
        if (o == Outcome::Unknown)
            ++unknown;
        if (o == Outcome::Masked)
            ++masked;
    }
    EXPECT_GT(masked, 0u);
    EXPECT_GT(unknown, 0u); // latent faults exist at the window end
}

} // namespace
} // namespace merlin::faultsim
