/**
 * @file
 * Unit tests for the MRL-64 ISA: encode/decode round trips, uop
 * expansion shapes, and shared execution semantics.
 */

#include <gtest/gtest.h>

#include "isa/exec.hh"
#include "isa/isa.hh"
#include "isa/uops.hh"

namespace merlin::isa
{
namespace
{

TEST(Encoding, RoundTripAllOpcodes)
{
    for (unsigned op = 0;
         op < static_cast<unsigned>(Opcode::NUM_OPCODES); ++op) {
        Instruction in;
        in.op = static_cast<Opcode>(op);
        in.rd = 3;
        in.rs1 = 17;
        in.rs2 = 31;
        in.imm = -12345;
        auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value()) << "opcode " << op;
        EXPECT_EQ(out->op, in.op);
        EXPECT_EQ(out->rd, in.rd);
        EXPECT_EQ(out->rs1, in.rs1);
        EXPECT_EQ(out->rs2, in.rs2);
        EXPECT_EQ(out->imm, in.imm);
    }
}

TEST(Encoding, RejectsBadOpcode)
{
    std::uint64_t raw = 0xff; // opcode 255
    EXPECT_FALSE(decode(raw).has_value());
}

TEST(Encoding, RejectsBadRegisterField)
{
    Instruction in;
    in.op = Opcode::ADD;
    std::uint64_t raw = encode(in);
    raw |= std::uint64_t(200) << 8; // rd = 200
    EXPECT_FALSE(decode(raw).has_value());
}

TEST(Encoding, ImmSignPreserved)
{
    Instruction in;
    in.op = Opcode::MOVI;
    in.imm = -1;
    auto out = decode(encode(in));
    ASSERT_TRUE(out);
    EXPECT_EQ(out->imm, -1);
}

TEST(Uops, SimpleOpsAreSingleUop)
{
    StaticUop u[MAX_UOPS_PER_MACRO];
    for (Opcode op : {Opcode::ADD, Opcode::MOVI, Opcode::LDW, Opcode::STD,
                      Opcode::BEQ, Opcode::JMP, Opcode::HALT}) {
        Instruction in;
        in.op = op;
        EXPECT_EQ(expand(in, 0x1000, u), 1u) << opcodeName(op);
    }
}

TEST(Uops, LdaddExpandsToLoadThenAdd)
{
    Instruction in;
    in.op = Opcode::LDADD;
    in.rd = 4;
    in.rs1 = 5;
    in.imm = 16;
    StaticUop u[MAX_UOPS_PER_MACRO];
    ASSERT_EQ(expand(in, 0x1000, u), 2u);
    EXPECT_EQ(u[0].kind, UopKind::Load);
    EXPECT_EQ(u[0].dst, REG_TMP0);
    EXPECT_EQ(u[0].src1, 5);
    EXPECT_EQ(u[0].imm, 16);
    EXPECT_EQ(u[1].kind, UopKind::Alu);
    EXPECT_EQ(u[1].dst, 4);
    EXPECT_EQ(u[1].src1, 4);
    EXPECT_EQ(u[1].src2, REG_TMP0);
}

TEST(Uops, MemaddIsReadModifyWrite)
{
    Instruction in;
    in.op = Opcode::MEMADD;
    in.rs1 = 2;
    in.rs2 = 3;
    in.imm = 8;
    StaticUop u[MAX_UOPS_PER_MACRO];
    ASSERT_EQ(expand(in, 0x1000, u), 3u);
    EXPECT_EQ(u[0].kind, UopKind::Load);
    EXPECT_EQ(u[1].kind, UopKind::Alu);
    EXPECT_EQ(u[2].kind, UopKind::Store);
    EXPECT_EQ(u[2].src2, REG_TMP0);
    EXPECT_EQ(u[2].src1, 2);
}

TEST(Uops, PushDecrementsThenStores)
{
    Instruction in;
    in.op = Opcode::PUSH;
    in.rs2 = 7;
    StaticUop u[MAX_UOPS_PER_MACRO];
    ASSERT_EQ(expand(in, 0x1000, u), 2u);
    EXPECT_EQ(u[0].kind, UopKind::Alu);
    EXPECT_EQ(u[0].dst, REG_SP);
    EXPECT_EQ(u[0].imm, -8);
    EXPECT_EQ(u[1].kind, UopKind::Store);
    EXPECT_EQ(u[1].src1, REG_SP);
    EXPECT_EQ(u[1].src2, 7);
}

TEST(Uops, CallLinksThenJumps)
{
    Instruction in;
    in.op = Opcode::CALL;
    in.imm = 0x2000;
    StaticUop u[MAX_UOPS_PER_MACRO];
    ASSERT_EQ(expand(in, 0x1008, u), 2u);
    EXPECT_EQ(u[0].dst, REG_RA);
    EXPECT_EQ(u[0].imm, 0x1010);
    EXPECT_TRUE(u[1].isCall);
    EXPECT_EQ(u[1].kind, UopKind::Jump);
}

TEST(Uops, CallrReadsTargetBeforeLink)
{
    Instruction in;
    in.op = Opcode::CALLR;
    in.rs1 = 9;
    StaticUop u[MAX_UOPS_PER_MACRO];
    ASSERT_EQ(expand(in, 0x1000, u), 3u);
    // uop0 snapshots the target so CALLR via ra-adjacent registers works.
    EXPECT_EQ(u[0].dst, REG_TMP0);
    EXPECT_EQ(u[0].src1, 9);
    EXPECT_EQ(u[1].dst, REG_RA);
    EXPECT_EQ(u[2].src1, REG_TMP0);
    EXPECT_TRUE(u[2].isCall);
}

TEST(Uops, JrRaIsReturn)
{
    Instruction in;
    in.op = Opcode::JR;
    in.rs1 = REG_RA;
    StaticUop u[MAX_UOPS_PER_MACRO];
    ASSERT_EQ(expand(in, 0x1000, u), 1u);
    EXPECT_TRUE(u[0].isReturn);

    in.rs1 = 5;
    expand(in, 0x1000, u);
    EXPECT_FALSE(u[0].isReturn);
}

TEST(Exec, BasicAlu)
{
    EXPECT_EQ(aluCompute(Opcode::ADD, 2, 3).value, 5u);
    EXPECT_EQ(aluCompute(Opcode::SUB, 2, 3).value,
              static_cast<std::uint64_t>(-1));
    EXPECT_EQ(aluCompute(Opcode::AND, 0xf0, 0x3c).value, 0x30u);
    EXPECT_EQ(aluCompute(Opcode::OR, 0xf0, 0x0f).value, 0xffu);
    EXPECT_EQ(aluCompute(Opcode::XOR, 0xff, 0x0f).value, 0xf0u);
}

TEST(Exec, ShiftsMaskAmount)
{
    EXPECT_EQ(aluCompute(Opcode::SHL, 1, 64).value, 1u);
    EXPECT_EQ(aluCompute(Opcode::SHL, 1, 65).value, 2u);
    EXPECT_EQ(aluCompute(Opcode::SHR, 0x8000000000000000ULL, 63).value, 1u);
}

TEST(Exec, ArithmeticShiftKeepsSign)
{
    EXPECT_EQ(static_cast<std::int64_t>(
                  aluCompute(Opcode::SRA, static_cast<std::uint64_t>(-16), 2)
                      .value),
              -4);
}

TEST(Exec, MulHigh)
{
    // (2^40) * (2^40) = 2^80: high half is 2^16.
    EXPECT_EQ(aluCompute(Opcode::MULH, 1ULL << 40, 1ULL << 40).value,
              1ULL << 16);
}

TEST(Exec, DivisionSemantics)
{
    EXPECT_EQ(static_cast<std::int64_t>(
                  aluCompute(Opcode::DIV, static_cast<std::uint64_t>(-7), 2)
                      .value),
              -3);
    EXPECT_EQ(static_cast<std::int64_t>(
                  aluCompute(Opcode::REM, static_cast<std::uint64_t>(-7), 2)
                      .value),
              -1);
    EXPECT_EQ(aluCompute(Opcode::DIVU, 7, 2).value, 3u);
    EXPECT_EQ(aluCompute(Opcode::REMU, 7, 2).value, 1u);
}

TEST(Exec, DivByZeroFlagged)
{
    EXPECT_TRUE(aluCompute(Opcode::DIV, 1, 0).divByZero);
    EXPECT_TRUE(aluCompute(Opcode::REM, 1, 0).divByZero);
    EXPECT_TRUE(aluCompute(Opcode::DIVU, 1, 0).divByZero);
    EXPECT_TRUE(aluCompute(Opcode::REMU, 1, 0).divByZero);
    EXPECT_FALSE(aluCompute(Opcode::DIV, 1, 1).divByZero);
}

TEST(Exec, DivOverflowWraps)
{
    auto r = aluCompute(Opcode::DIV,
                        static_cast<std::uint64_t>(INT64_MIN),
                        static_cast<std::uint64_t>(-1));
    EXPECT_FALSE(r.divByZero);
    EXPECT_EQ(r.value, static_cast<std::uint64_t>(INT64_MIN));
}

TEST(Exec, Movhi)
{
    auto r = aluCompute(Opcode::MOVHI, 0x00000000deadbeefULL, 0x12345678);
    EXPECT_EQ(r.value, 0x12345678deadbeefULL);
}

TEST(Exec, SetLessThan)
{
    EXPECT_EQ(aluCompute(Opcode::SLT, static_cast<std::uint64_t>(-1), 0)
                  .value, 1u);
    EXPECT_EQ(aluCompute(Opcode::SLTU, static_cast<std::uint64_t>(-1), 0)
                  .value, 0u);
}

TEST(Exec, BranchConditions)
{
    EXPECT_TRUE(branchTaken(Opcode::BEQ, 5, 5));
    EXPECT_FALSE(branchTaken(Opcode::BEQ, 5, 6));
    EXPECT_TRUE(branchTaken(Opcode::BNE, 5, 6));
    EXPECT_TRUE(branchTaken(Opcode::BLT, static_cast<std::uint64_t>(-1), 0));
    EXPECT_FALSE(
        branchTaken(Opcode::BLTU, static_cast<std::uint64_t>(-1), 0));
    EXPECT_TRUE(branchTaken(Opcode::BGE, 0, 0));
    EXPECT_TRUE(
        branchTaken(Opcode::BGEU, static_cast<std::uint64_t>(-1), 1));
}

TEST(Disasm, ProducesMnemonic)
{
    Instruction in;
    in.op = Opcode::ADD;
    in.rd = 1;
    in.rs1 = 2;
    in.rs2 = 3;
    EXPECT_EQ(disassemble(in), "add r1, r2, r3");
}

TEST(Predicates, Classification)
{
    EXPECT_TRUE(isCondBranch(Opcode::BEQ));
    EXPECT_TRUE(isCondBranch(Opcode::BGEU));
    EXPECT_FALSE(isCondBranch(Opcode::JMP));
    EXPECT_TRUE(isControlFlow(Opcode::JMP));
    EXPECT_TRUE(isControlFlow(Opcode::CALLR));
    EXPECT_FALSE(isControlFlow(Opcode::ADD));
    EXPECT_TRUE(isMemOp(Opcode::LDW));
    EXPECT_TRUE(isMemOp(Opcode::PUSH));
    EXPECT_FALSE(isMemOp(Opcode::ADD));
}

} // namespace
} // namespace merlin::isa
