/**
 * @file
 * CampaignService tests: the process-lifetime campaign engine behind
 * merlin_serve and (as a thin wrapper) the batch suite.  The headline
 * property is single-flight coalescing — N concurrent submissions of
 * one spec cost ONE simulation, and every subscriber receives the
 * byte-identical result — plus warm-cache serving, queued-submission
 * cancellation, shutdown refusal, and batch-wrapper equivalence.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "io/result_store.hh"
#include "obs/metrics.hh"
#include "sched/service.hh"
#include "sched/suite.hh"

namespace merlin::sched
{
namespace
{

/** One small, fast campaign (same shape the suite tests use). */
CampaignSpec
smallSpec(std::uint64_t seed = 7)
{
    CampaignSpec s;
    s.workload = "qsort";
    s.structure = uarch::Structure::RegisterFile;
    s.regs = 128;
    s.window = 0;
    s.sampling = core::specFixed(150);
    s.seed = seed;
    return s;
}

CampaignService::Config
memoryConfig(unsigned jobs, bool paused)
{
    CampaignService::Config cfg;
    cfg.jobs = jobs;
    cfg.recordTiming = false;
    cfg.startPaused = paused;
    return cfg;
}

TEST(CampaignService, SingleFlightCoalescesIdenticalSpecs)
{
    // The satellite acceptance test: N threads submit the same spec;
    // inject.runs is paid once and every subscriber's result dump is
    // byte-identical.
    constexpr int kClients = 6;
    auto &injectRuns = obs::Registry::global().counter("inject.runs");
    const std::uint64_t runs0 = injectRuns.total();

    CampaignService svc(memoryConfig(2, /*paused=*/true));
    const CampaignSpec spec = smallSpec();

    std::vector<CampaignService::TicketPtr> tickets(kClients);
    {
        // Concurrent submissions while the (paused) service cannot
        // settle any of them: all six must land on ONE job.
        std::vector<std::thread> threads;
        for (int i = 0; i < kClients; ++i) {
            threads.emplace_back([&, i] {
                CampaignService::SubmitOptions opts;
                opts.client = "client-" + std::to_string(i);
                tickets[i] = svc.submit(spec, opts);
            });
        }
        for (auto &t : threads)
            t.join();
    }
    for (const auto &t : tickets)
        ASSERT_NE(t, nullptr);

    svc.resume();
    std::vector<std::string> dumps;
    int coalesced = 0;
    for (const auto &t : tickets) {
        ASSERT_EQ(t->wait(), CampaignService::State::Done);
        const auto &o = t->outcome();
        EXPECT_FALSE(o.cached);
        coalesced += o.coalesced ? 1 : 0;
        dumps.push_back(io::resultToJson(o.result).dump());
    }
    // One primary, kClients - 1 subscribers; identical bytes for all.
    EXPECT_EQ(coalesced, kClients - 1);
    for (const auto &d : dumps)
        EXPECT_EQ(d, dumps.front());

    const auto stats = svc.stats();
    EXPECT_EQ(stats.submitted, std::uint64_t(kClients));
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.coalesced, std::uint64_t(kClients - 1));
    EXPECT_EQ(stats.cacheHits, 0u);

    // The simulation ran once: the global injection counter moved by
    // exactly the one campaign's run count.
    EXPECT_EQ(injectRuns.total() - runs0,
              tickets.front()->outcome().result.injectionRuns);
}

TEST(CampaignService, WarmCacheServesRepeatSubmissionWithoutRunning)
{
    auto &injectRuns = obs::Registry::global().counter("inject.runs");
    CampaignService svc(memoryConfig(2, /*paused=*/false));
    const CampaignSpec spec = smallSpec(11);

    CampaignService::SubmitOptions opts;
    opts.reuseCached = true;
    auto cold = svc.submit(spec, opts);
    ASSERT_NE(cold, nullptr);
    ASSERT_EQ(cold->wait(), CampaignService::State::Done);
    EXPECT_FALSE(cold->outcome().cached);

    // Same spec again: a store hit, zero additional injections, and
    // the identical result bytes.
    const std::uint64_t runs0 = injectRuns.total();
    auto warm = svc.submit(spec, opts);
    ASSERT_NE(warm, nullptr);
    ASSERT_EQ(warm->wait(), CampaignService::State::Done);
    EXPECT_TRUE(warm->outcome().cached);
    EXPECT_EQ(injectRuns.total() - runs0, 0u);
    EXPECT_EQ(io::resultToJson(warm->outcome().result).dump(),
              io::resultToJson(cold->outcome().result).dump());

    const auto stats = svc.stats();
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.cacheHits, 1u);

    // keyState: a settled key reads Done (from the store).
    CampaignService::State st;
    ASSERT_TRUE(svc.keyState(spec.key(), st));
    EXPECT_EQ(st, CampaignService::State::Done);
    EXPECT_FALSE(svc.keyState("0000000000000000", st));
}

TEST(CampaignService, CancelRemovesQueuedSubmission)
{
    CampaignService svc(memoryConfig(1, /*paused=*/true));
    CampaignService::SubmitOptions opts;
    auto ticket = svc.submit(smallSpec(13), opts);
    ASSERT_NE(ticket, nullptr);
    EXPECT_EQ(ticket->state(), CampaignService::State::Queued);

    EXPECT_TRUE(svc.cancel(ticket));
    EXPECT_EQ(ticket->wait(), CampaignService::State::Cancelled);
    // Cancelling a settled ticket is a no-op, not an error.
    EXPECT_FALSE(svc.cancel(ticket));

    svc.resume();
    svc.drain();
    EXPECT_EQ(svc.stats().cancelled, 1u);
    EXPECT_EQ(svc.stats().executed, 0u);
}

TEST(CampaignService, ShutdownRefusesNewSubmissionsAndCancelsQueued)
{
    CampaignService svc(memoryConfig(1, /*paused=*/true));
    CampaignService::SubmitOptions opts;
    auto queued = svc.submit(smallSpec(17), opts);
    ASSERT_NE(queued, nullptr);

    svc.beginShutdown(/*cancel_queued=*/true);
    EXPECT_TRUE(svc.draining());
    EXPECT_EQ(svc.submit(smallSpec(19), opts), nullptr);
    EXPECT_EQ(queued->wait(), CampaignService::State::Cancelled);
    svc.resume();
    svc.drain();
}

TEST(CampaignService, SubscribeAttachesToInflightKey)
{
    CampaignService svc(memoryConfig(1, /*paused=*/true));
    const CampaignSpec spec = smallSpec(23);
    CampaignService::SubmitOptions opts;
    auto primary = svc.submit(spec, opts);
    ASSERT_NE(primary, nullptr);

    auto sub = svc.subscribe(spec.key());
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->key(), primary->key());
    EXPECT_EQ(svc.subscribe("0000000000000000"), nullptr);

    svc.resume();
    ASSERT_EQ(primary->wait(), CampaignService::State::Done);
    ASSERT_EQ(sub->wait(), CampaignService::State::Done);
    EXPECT_TRUE(sub->outcome().coalesced);
    EXPECT_EQ(io::resultToJson(sub->outcome().result).dump(),
              io::resultToJson(primary->outcome().result).dump());
}

TEST(CampaignService, UnknownWorkloadFailsTheTicketNotTheService)
{
    CampaignService svc(memoryConfig(1, /*paused=*/false));
    CampaignSpec bad = smallSpec();
    bad.workload = "no-such-workload";
    CampaignService::SubmitOptions opts;
    auto ticket = svc.submit(bad, opts);
    ASSERT_NE(ticket, nullptr);
    EXPECT_EQ(ticket->wait(), CampaignService::State::Failed);
    EXPECT_NE(ticket->error(), nullptr);

    // The service survives: the next submission runs normally.
    auto good = svc.submit(smallSpec(29), opts);
    ASSERT_NE(good, nullptr);
    EXPECT_EQ(good->wait(), CampaignService::State::Done);
    EXPECT_EQ(svc.stats().failed, 1u);
}

TEST(CampaignService, BatchWrapperMatchesDirectServiceSubmissions)
{
    // The refactor contract seen from above: SuiteScheduler (now a
    // submit-all-and-wait wrapper) returns the same result bytes as
    // direct service submissions of the same specs.
    std::vector<CampaignSpec> specs{smallSpec(31), smallSpec(37)};
    specs[1].workload = "fft";

    SuiteOptions sopts;
    sopts.jobs = 2;
    sopts.recordTiming = false;
    SuiteResult batch = SuiteScheduler(specs, sopts).run();

    CampaignService svc(memoryConfig(2, /*paused=*/false));
    for (std::size_t i = 0; i < specs.size(); ++i) {
        CampaignService::SubmitOptions opts;
        auto t = svc.submit(specs[i], opts);
        ASSERT_NE(t, nullptr);
        ASSERT_EQ(t->wait(), CampaignService::State::Done);
        EXPECT_EQ(io::resultToJson(t->outcome().result).dump(),
                  io::resultToJson(batch.results[i]).dump())
            << "spec " << i;
    }
}

} // namespace
} // namespace merlin::sched
