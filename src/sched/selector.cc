#include "sched/selector.hh"

#include "base/logging.hh"
#include "base/parse.hh"

namespace merlin::sched
{

using io::Json;

namespace
{

const char *
modeTag(SpecSelector::Mode m)
{
    switch (m) {
      case SpecSelector::Mode::RoundRobin: return "round-robin";
      case SpecSelector::Mode::Hash:       return "hash";
    }
    panic("bad selector mode");
}

SpecSelector::Mode
modeFromTag(const std::string &s)
{
    if (s == "round-robin")
        return SpecSelector::Mode::RoundRobin;
    if (s == "hash")
        return SpecSelector::Mode::Hash;
    fatal("selection: unknown mode '", s,
          "' (use round-robin | hash)");
}

} // namespace

SpecSelector
SpecSelector::parse(const std::string &text, Mode mode)
{
    const char *flag = mode == Mode::Hash ? "--select-hash" : "--select";
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos ||
        text.find('/', slash + 1) != std::string::npos)
        fatal(flag, ": '", text, "' is not of the form i/n");
    SpecSelector s;
    s.mode = mode;
    s.index = base::parseU64(text.substr(0, slash),
                             std::string(flag) + " index");
    s.count = base::parseU64(text.substr(slash + 1),
                             std::string(flag) + " count");
    if (s.count == 0)
        fatal(flag, ": worker count must be >= 1");
    if (s.index >= s.count)
        fatal(flag, ": worker index ", s.index, " is out of range for ",
              s.count, " worker", s.count == 1 ? "" : "s",
              " (use 0..", s.count - 1, ")");
    return s;
}

bool
SpecSelector::selects(std::size_t position, const std::string &spec_key) const
{
    switch (mode) {
      case Mode::RoundRobin:
        return position % count == index;
      case Mode::Hash: {
        // The spec key IS the FNV-1a 64 content hash, as hex — reuse
        // it so the partition is a pure function of the spec value.
        const auto h = base::tryParseU64(spec_key, 16);
        if (!h)
            panic("spec key '", spec_key, "' is not a 64-bit hex hash");
        return *h % count == index;
      }
    }
    panic("bad selector mode");
}

std::string
SpecSelector::describe() const
{
    return std::to_string(index) + "/" + std::to_string(count) + " " +
           modeTag(mode);
}

Json
SpecSelector::toJson() const
{
    Json j = Json::object();
    j.set("mode", modeTag(mode));
    j.set("index", index);
    j.set("count", count);
    return j;
}

SpecSelector
SpecSelector::fromJson(const Json &j)
{
    SpecSelector s;
    s.mode = modeFromTag(j.strOr("mode", ""));
    s.index = j.at("index").asU64();
    s.count = j.at("count").asU64();
    if (s.count == 0 || s.index >= s.count)
        fatal("selection: index ", s.index, "/", s.count,
              " is out of range");
    return s;
}

} // namespace merlin::sched
