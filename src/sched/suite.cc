#include "sched/suite.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "base/logging.hh"
#include "base/threadpool.hh"
#include "faultsim/fault.hh"
#include "io/journal.hh"
#include "io/result_store.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/trace.hh"

namespace merlin::sched
{

using io::Json;

namespace
{

const char *
structureTag(uarch::Structure s)
{
    switch (s) {
      case uarch::Structure::RegisterFile: return "rf";
      case uarch::Structure::StoreQueue:   return "sq";
      case uarch::Structure::L1DCache:     return "l1d";
    }
    panic("bad structure");
}

uarch::Structure
structureFromTag(const std::string &s)
{
    if (s == "rf")
        return uarch::Structure::RegisterFile;
    if (s == "sq")
        return uarch::Structure::StoreQueue;
    if (s == "l1d")
        return uarch::Structure::L1DCache;
    fatal("suite: unknown structure '", s, "' (use rf | sq | l1d)");
}

const char *
splitTag(core::GroupingOptions::Split s)
{
    switch (s) {
      case core::GroupingOptions::Split::None:   return "none";
      case core::GroupingOptions::Split::Byte:   return "byte";
      case core::GroupingOptions::Split::Nibble: return "nibble";
      case core::GroupingOptions::Split::Bit:    return "bit";
    }
    panic("bad split");
}

core::GroupingOptions::Split
splitFromTag(const std::string &s)
{
    if (s == "none")
        return core::GroupingOptions::Split::None;
    if (s == "byte")
        return core::GroupingOptions::Split::Byte;
    if (s == "nibble")
        return core::GroupingOptions::Split::Nibble;
    if (s == "bit")
        return core::GroupingOptions::Split::Bit;
    fatal("suite: unknown split '", s,
          "' (use none | byte | nibble | bit)");
}

const char *
modeTag(CampaignSpec::Mode m)
{
    switch (m) {
      case CampaignSpec::Mode::Estimate:     return "estimate";
      case CampaignSpec::Mode::Truth:        return "truth";
      case CampaignSpec::Mode::GroupingOnly: return "grouping_only";
    }
    panic("bad mode");
}

CampaignSpec::Mode
modeFromTag(const std::string &s)
{
    if (s == "estimate")
        return CampaignSpec::Mode::Estimate;
    if (s == "truth")
        return CampaignSpec::Mode::Truth;
    if (s == "grouping_only")
        return CampaignSpec::Mode::GroupingOnly;
    fatal("suite: unknown mode '", s,
          "' (use estimate | truth | grouping_only)");
}

/** Members a spec/manifest entry may carry; anything else is a typo. */
const char *const kSpecMembers[] = {
    "workload",      "structure",      "regs",
    "sq_entries",    "l1d_kb",         "window",
    "faults",        "confidence",     "error_margin",
    "split",         "max_group_size", "reps_per_group",
    "seed",          "checkpoint_interval", "max_checkpoints",
    "early_exit",    "replay",         "timeout_factor",
    "mem_chunk_bytes",
    "mode",          "relyzer",        "path_depth",
};

void
checkSpecMembers(const Json &j, const char *what)
{
    for (const auto &[name, value] : j.members()) {
        (void)value;
        if (!isSpecMember(name))
            fatal("suite ", what, ": unknown member '", name, "'");
    }
}

/**
 * Can @p spec take part in sectioned (partial-hit) caching?  The
 * spec-level half of the test — the runtime half is
 * core::sectionable() on the prepared campaign.  Estimate mode with
 * one representative per group is the paper's configuration and the
 * one where per-section accounting provably sums to a cold run's
 * totals (see core::sectionable()).
 */
bool
sectionEligible(const CampaignSpec &spec)
{
    return spec.mode == CampaignSpec::Mode::Estimate &&
           spec.grouping.repsPerGroup == 1;
}

/**
 * The reduced spec a section table is keyed by: the full spec minus
 * the swept knobs — members a sweep varies WITHOUT changing campaign
 * outcomes, currently {mem_chunk_bytes} — plus the section count (a
 * table cut into 4 sections serves no 16-section lookup).
 */
Json
reducedSpecFor(const CampaignSpec &spec, unsigned sections)
{
    Json j = spec.toJson();
    j.erase("mem_chunk_bytes");
    j.set("sections", static_cast<std::uint64_t>(sections));
    return j;
}

std::string
reducedKeyFor(const CampaignSpec &spec, unsigned sections)
{
    return io::contentKey(reducedSpecFor(spec, sections));
}

} // namespace

bool
isSpecMember(const std::string &name)
{
    for (const char *m : kSpecMembers) {
        if (name == m)
            return true;
    }
    return false;
}

// --------------------------------------------------------- CampaignSpec

core::CampaignConfig
CampaignSpec::campaignConfig(const workloads::BuiltWorkload &w) const
{
    core::CampaignConfig cc;
    cc.target = structure;
    cc.core = uarch::CoreConfig{}
                  .withRegisterFile(regs)
                  .withStoreQueue(sqEntries)
                  .withL1dKb(l1dKb);
    cc.core.instructionWindowEnd = window ? *window : w.suggestedWindow;
    cc.sampling = sampling;
    cc.grouping = grouping;
    cc.seed = seed;
    // Intra-campaign parallelism comes from the shared suite pool, not
    // from a per-campaign pool.
    cc.jobs = 1;
    cc.checkpointInterval = checkpointInterval;
    cc.maxCheckpoints = maxCheckpoints;
    cc.earlyExit = earlyExit;
    cc.replay = replay;
    cc.timeoutFactor = timeoutFactor;
    cc.core.memChunkBytes = memChunkBytes;
    return cc;
}

Json
CampaignSpec::toJson() const
{
    // Fixed member order and a member for every field: this dump is
    // the content-hash input, so it must be a pure function of the
    // spec VALUE, never of how the spec was built.
    Json j = Json::object();
    j.set("workload", workload);
    j.set("structure", structureTag(structure));
    j.set("regs", regs);
    j.set("sq_entries", sqEntries);
    j.set("l1d_kb", l1dKb);
    j.set("window", window ? Json(*window) : Json());
    if (sampling.fixedCount) {
        j.set("faults", *sampling.fixedCount);
    } else {
        j.set("confidence", sampling.confidence);
        j.set("error_margin", sampling.errorMargin);
    }
    j.set("split", splitTag(grouping.split));
    j.set("max_group_size", grouping.maxGroupSize);
    j.set("reps_per_group", grouping.repsPerGroup);
    j.set("seed", seed);
    j.set("checkpoint_interval", checkpointInterval);
    j.set("max_checkpoints", maxCheckpoints);
    j.set("early_exit", earlyExit);
    j.set("replay", replay);
    j.set("timeout_factor", timeoutFactor);
    j.set("mem_chunk_bytes", memChunkBytes);
    j.set("mode", modeTag(mode));
    j.set("relyzer", relyzer);
    j.set("path_depth", pathDepth);
    return j;
}

CampaignSpec
CampaignSpec::fromJson(const Json &j)
{
    checkSpecMembers(j, "spec");
    CampaignSpec s;
    s.workload = j.strOr("workload", "");
    if (s.workload.empty())
        fatal("suite spec: missing 'workload'");
    s.structure = structureFromTag(j.strOr("structure", "rf"));
    s.regs = static_cast<unsigned>(j.u64Or("regs", s.regs));
    s.sqEntries =
        static_cast<unsigned>(j.u64Or("sq_entries", s.sqEntries));
    s.l1dKb = static_cast<unsigned>(j.u64Or("l1d_kb", s.l1dKb));
    if (const Json *w = j.find("window")) {
        if (!w->isNull())
            s.window = w->asU64();
    }
    if (const Json *f = j.find("faults")) {
        s.sampling = core::specFixed(f->asU64());
    } else {
        s.sampling.confidence =
            j.numOr("confidence", s.sampling.confidence);
        s.sampling.errorMargin =
            j.numOr("error_margin", s.sampling.errorMargin);
    }
    s.grouping.split = splitFromTag(j.strOr("split", "byte"));
    s.grouping.maxGroupSize = static_cast<unsigned>(
        j.u64Or("max_group_size", s.grouping.maxGroupSize));
    s.grouping.repsPerGroup = static_cast<unsigned>(
        j.u64Or("reps_per_group", s.grouping.repsPerGroup));
    s.seed = j.u64Or("seed", s.seed);
    s.checkpointInterval =
        j.u64Or("checkpoint_interval", s.checkpointInterval);
    s.maxCheckpoints = static_cast<unsigned>(
        j.u64Or("max_checkpoints", s.maxCheckpoints));
    s.earlyExit = j.boolOr("early_exit", s.earlyExit);
    s.replay = j.boolOr("replay", s.replay);
    s.timeoutFactor = static_cast<unsigned>(
        j.u64Or("timeout_factor", s.timeoutFactor));
    const std::uint64_t chunk =
        j.u64Or("mem_chunk_bytes", s.memChunkBytes);
    if (!isa::isValidChunkBytes(chunk))
        fatal("suite spec: mem_chunk_bytes ", chunk,
              " is not a power of two >= 64");
    s.memChunkBytes = static_cast<std::uint32_t>(chunk);
    s.mode = modeFromTag(j.strOr("mode", "estimate"));
    s.relyzer = j.boolOr("relyzer", false);
    s.pathDepth =
        static_cast<unsigned>(j.u64Or("path_depth", s.pathDepth));
    return s;
}

std::string
CampaignSpec::key() const
{
    return io::contentKey(toJson());
}

bool
CampaignSpec::operator==(const CampaignSpec &o) const
{
    return toJson() == o.toJson();
}

std::vector<CampaignSpec>
parseManifest(const Json &manifest)
{
    if (!manifest.isObject())
        fatal("suite manifest: expected a top-level object");
    Json defaults = Json::object();
    if (const Json *d = manifest.find("defaults")) {
        checkSpecMembers(*d, "manifest defaults");
        defaults = *d;
    }
    const Json *camps = manifest.find("campaigns");
    if (!camps || !camps->isArray() || camps->size() == 0)
        fatal("suite manifest: 'campaigns' must be a non-empty array");

    std::vector<CampaignSpec> specs;
    specs.reserve(camps->size());
    for (const Json &entry : camps->items()) {
        if (!entry.isObject())
            fatal("suite manifest: campaign entries must be objects");
        Json merged = defaults;
        for (const auto &[name, value] : entry.members())
            merged.set(name, value);
        // The two sampling styles compete ('faults' wins in fromJson):
        // an entry that explicitly chooses one style must shed the
        // other style inherited from the defaults, or a defaults-level
        // 'faults' would silently override a per-campaign margin.
        if (entry.find("faults")) {
            merged.erase("confidence");
            merged.erase("error_margin");
        } else if (entry.find("confidence") ||
                   entry.find("error_margin")) {
            merged.erase("faults");
        }
        specs.push_back(CampaignSpec::fromJson(merged));
    }
    return specs;
}

// ------------------------------------------------------- SuiteScheduler

SuiteScheduler::SuiteScheduler(std::vector<CampaignSpec> specs,
                               SuiteOptions opts)
    : specs_(std::move(specs)), opts_(std::move(opts))
{
}

SuiteResult
SuiteScheduler::run()
{
    const obs::TimePoint t0 = obs::now();
    obs::Span suite_span("sched", "suite.run");
    SuiteResult out;
    out.results.resize(specs_.size());
    out.cached.assign(specs_.size(), false);
    out.selected.assign(specs_.size(), true);
    out.sectionsHit.assign(specs_.size(), 0);
    out.sectionsMissed.assign(specs_.size(), 0);
    if (opts_.select) {
        for (std::size_t i = 0; i < specs_.size(); ++i)
            out.selected[i] = opts_.select->selects(i, specs_[i].key());
    }

    // Live progress: inert unless an output is configured, so the
    // counters are maintained unconditionally at relaxed-atomic cost.
    obs::ProgressSink progress(obs::ProgressSink::Options{
        opts_.progressInterval, opts_.progressStderr, opts_.progressPath,
        opts_.select ? opts_.select->describe() : std::string()});
    progress.campaignsTotal.store(specs_.size(),
                                  std::memory_order_relaxed);
    progress.campaignsSelected.store(
        static_cast<std::uint64_t>(
            std::count(out.selected.begin(), out.selected.end(), true)),
        std::memory_order_relaxed);

    io::ResultStore store(opts_.storePath);
    if (opts_.reuseCached && store.load() && store.selection() &&
        opts_.select) {
        // Refuse overlapping resume stores: a store that records a
        // different selection belongs to another worker, and resuming
        // from it would mix two shares into one file (and clobber the
        // other worker's entries on save).
        const SpecSelector recorded =
            SpecSelector::fromJson(*store.selection());
        if (!(recorded == *opts_.select))
            fatal("suite --resume: store '", opts_.storePath,
                  "' was produced under selection ",
                  recorded.describe(), ", not ",
                  opts_.select->describe(),
                  " — give every worker its own --out store");
    }
    if (opts_.select) {
        store.setSelection(opts_.select->toJson());
        // Entries outside this worker's share — unselected manifest
        // specs, or specs of some other suite entirely (a single-host
        // store copied in to seed the resume) — are foreign: drop
        // them so they are neither re-spilled as shards nor
        // re-serialized into this worker's store, which would
        // duplicate them across the merge inputs.
        std::set<std::string> mine;
        for (std::size_t i = 0; i < specs_.size(); ++i) {
            if (out.selected[i])
                mine.insert(specs_[i].key());
        }
        std::vector<std::string> foreign;
        for (const auto &[key, entry] : store.entries()) {
            (void)entry;
            if (!mine.count(key))
                foreign.push_back(key);
        }
        for (const std::string &key : foreign)
            store.erase(key);
        // Section tables are foreign under the same rule, against the
        // reduced keys this worker's share can produce (none at all
        // when sectioning is off).
        std::set<std::string> mineSections;
        if (opts_.sections > 0) {
            for (std::size_t i = 0; i < specs_.size(); ++i) {
                if (out.selected[i] && sectionEligible(specs_[i]))
                    mineSections.insert(
                        reducedKeyFor(specs_[i], opts_.sections));
            }
        }
        std::vector<std::string> foreignSections;
        for (const auto &[key, table] : store.sectionTables()) {
            (void)table;
            if (!mineSections.count(key))
                foreignSections.push_back(key);
        }
        for (const std::string &key : foreignSections)
            store.eraseSections(key);
    } else {
        // A full run owns the whole suite; a worker store being
        // promoted back to a single-host store sheds its selection.
        store.clearSelection();
    }
    if (!opts_.shardDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts_.shardDir, ec);
        if (ec)
            fatal("suite: cannot create shard directory '",
                  opts_.shardDir, "': ", ec.message());
    }

    // Crash-safe journals live next to the shard spill when there is
    // one, else in a sibling directory of the store; a memory-only
    // suite (neither path set) has nothing durable to resume into, so
    // journaling is off.  Shards keep the .json suffix to themselves —
    // gatherStoreFiles must never pick a journal up as a shard.
    const std::string journalDir =
        !opts_.shardDir.empty()
            ? opts_.shardDir
            : (opts_.storePath.empty() ? std::string()
                                       : opts_.storePath + ".journal");
    if (!journalDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(journalDir, ec);
        if (ec)
            fatal("suite: cannot create journal directory '", journalDir,
                  "': ", ec.message());
    }
    const auto journalPathFor = [&](const CampaignSpec &spec) {
        return journalDir.empty()
                   ? std::string()
                   : (std::filesystem::path(journalDir) /
                      (spec.key() + ".journal"))
                         .string();
    };

    // Campaigns of one workload share the built program.  One slot per
    // distinct name, created up front so lookups never mutate the map;
    // call_once builds each workload exactly once while leaving
    // DIFFERENT workloads free to build concurrently (a single cache
    // mutex held across buildWorkload() would serialize the whole
    // profile phase).
    struct WorkloadSlot
    {
        std::once_flag once;
        std::shared_ptr<const workloads::BuiltWorkload> wl;
    };
    std::map<std::string, WorkloadSlot> wlCache;
    for (const CampaignSpec &spec : specs_)
        wlCache[spec.workload];
    const auto workloadFor = [&](const std::string &name) {
        WorkloadSlot &slot = wlCache.at(name);
        std::call_once(slot.once, [&] {
            slot.wl = std::make_shared<const workloads::BuiltWorkload>(
                workloads::buildWorkload(name));
        });
        return slot.wl;
    };

    // One single-entry store per campaign, named by the spec key, so
    // `store merge` folds shards in any order into exactly the
    // single-store bytes.
    // A sectioned campaign's shard also carries its section table
    // (@p section_key + @p table, both empty/null when unsectioned),
    // so merged shards reassemble the section tables too.
    const auto spillShard =
        [&](const CampaignSpec &spec, const core::CampaignResult &res,
            const std::string &section_key = std::string(),
            const io::ResultStore::SectionTable *table = nullptr) {
            io::ResultStore shard(
                (std::filesystem::path(opts_.shardDir) /
                 (spec.key() + ".json"))
                    .string());
            shard.put(spec.key(), spec.toJson(), res);
            if (table)
                shard.putSectionTable(section_key, *table);
            shard.save();
        };

    // Resolve every cache hit BEFORE any campaign starts: workers
    // mutate the store (put + save under storeMu below), so lookups
    // must not race with them.  Cache hits spill their shard too —
    // the shard directory's contract is one shard per suite
    // campaign, however the result was obtained, so merging it
    // always reassembles the full store.
    // Section bookkeeping, resolved alongside the cache hits (the
    // store must not be read once workers mutate it): for every
    // selected, section-eligible spec, decode the reduced-key table
    // and pin the answer for the campaign body to consume.
    const unsigned S = opts_.sections;
    std::vector<io::ResultStore::SectionLookup> sectionCache(
        specs_.size());
    obs::Counter &sectionHitsCtr =
        obs::Registry::global().counter("store.section_hits");
    obs::Counter &sectionMissCtr =
        obs::Registry::global().counter("store.section_misses");

    std::vector<std::size_t> pending;
    pending.reserve(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        if (!out.selected[i])
            continue; // another worker's spec: not run, not spilled
        const bool sectionedSpec = S > 0 && sectionEligible(specs_[i]);
        if (opts_.reuseCached &&
            store.lookup(specs_[i].key(), out.results[i])) {
            out.cached[i] = true;
            if (sectionedSpec) {
                // A whole-campaign hit IS an all-sections hit — this
                // is also how legacy v1 stores (no section tables at
                // all) are promoted into the sectioned accounting.
                out.sectionsHit[i] = S;
                sectionHitsCtr.add(S);
            }
            progress.campaignsDone.fetch_add(1, std::memory_order_relaxed);
            progress.campaignsCached.fetch_add(1,
                                               std::memory_order_relaxed);
            if (!opts_.shardDir.empty()) {
                // The cached spec's section table (when the store has
                // one) rides along on the shard, keeping merged shards
                // byte-identical to the single-host store.
                const io::ResultStore::SectionTable *table = nullptr;
                std::string rkey;
                if (sectionedSpec) {
                    rkey = reducedKeyFor(specs_[i], S);
                    auto it = store.sectionTables().find(rkey);
                    if (it != store.sectionTables().end())
                        table = &it->second;
                }
                spillShard(specs_[i], out.results[i], rkey, table);
            }
            // A journal outliving a stored result means the previous
            // run died between the store save and the journal cleanup;
            // the store won, so the journal is stale.
            if (!journalDir.empty()) {
                std::error_code ec;
                std::filesystem::remove(journalPathFor(specs_[i]), ec);
            }
        } else {
            if (sectionedSpec) {
                // Like the whole-campaign cache, stored tables are
                // only consulted under --resume; a cold run overwrites.
                if (opts_.reuseCached) {
                    sectionCache[i] =
                        store.lookupSections(reducedKeyFor(specs_[i], S));
                }
                std::uint32_t hits = 0;
                for (const auto &[idx, data] : sectionCache[i].sections) {
                    (void)data;
                    if (idx < S)
                        ++hits;
                }
                out.sectionsHit[i] = hits;
                out.sectionsMissed[i] = S - hits;
                sectionHitsCtr.add(hits);
                sectionMissCtr.add(S - hits);
            }
            pending.push_back(i);
        }
    }
    // Canonicalize a worker store up front: selection recorded and
    // foreign entries gone even when every campaign is served from
    // the cache and no per-campaign save would otherwise happen.
    if (opts_.select && !opts_.storePath.empty())
        store.save();

    base::ThreadPool pool(opts_.jobs ? opts_.jobs
                                     : base::ThreadPool::hardwareThreads());
    std::mutex storeMu;
    std::mutex errMu;
    std::exception_ptr firstError;
    std::atomic<std::uint64_t> ran{0};

    // The sectioned campaign body: serve the stored slices, inject
    // only the missing sections' representatives, compose the result
    // from the complete per-section table, and persist both.  By
    // construction (see core::composeSectioned) the result — and
    // therefore the store bytes — is identical to the unsectioned
    // path's for the same spec.
    const auto runSectioned = [&](std::size_t i, const CampaignSpec &spec,
                                  core::Campaign &camp,
                                  core::PreparedCampaign prep) {
        const Cycle goldenCycles = prep.result.goldenCycles;
        const std::vector<unsigned> gsec = core::groupSections(prep, S);
        const io::ResultStore::SectionLookup &hit = sectionCache[i];
        if (hit.found && hit.goldenCycles != goldenCycles)
            fatal("suite: stored section table for spec ", spec.key(),
                  " records a golden run of ", hit.goldenCycles,
                  " cycles, but this campaign produced ", goldenCycles,
                  " — the store was built by a different engine; "
                  "delete it or run without --sections");
        std::vector<bool> missing(S, true);
        if (hit.found) {
            for (const auto &[idx, data] : hit.sections) {
                (void)data;
                if (idx < S)
                    missing[idx] = false;
            }
        }

        // Only missing sections' representatives run; freshGroups maps
        // the reduced fault list back onto group indices.
        std::vector<faultsim::Fault> runFaults;
        std::vector<std::size_t> freshGroups;
        for (std::size_t g = 0; g < prep.faults.size(); ++g) {
            if (missing[gsec[g]]) {
                runFaults.push_back(prep.faults[g]);
                freshGroups.push_back(g);
            }
        }

        std::vector<core::SectionData> acct(S);
        std::mutex acctMu;
        const auto sectionOfKey = [&](std::uint64_t key) {
            return core::sectionOfCycle(faultsim::faultKeyCycle(key),
                                        goldenCycles, S);
        };
        std::vector<faultsim::Outcome> outcomes;
        double inject_seconds = 0.0;
        io::OutcomeJournal journal(journalPathFor(spec), spec.key());
        if (!runFaults.empty()) {
            faultsim::OutcomeMemo memo(runFaults.size());
            io::OutcomeJournal::Restored restored;
            if (opts_.reuseCached) {
                obs::Span replay_span("io", "journal.replay");
                restored = journal.restore(
                    [&](std::uint64_t key, faultsim::Outcome o,
                        const faultsim::InjectDetail &detail) {
                        memo.insert(key, o);
                        // Hit sections already carry their runs inside
                        // the stored table; only missing sections
                        // account the replayed share.
                        const unsigned s = sectionOfKey(key);
                        if (missing[s])
                            acct[s].addRun(key, detail);
                    });
            }
            progress.injections.fetch_add(restored.runs,
                                          std::memory_order_relaxed);
            journal.open();
            const faultsim::InjectionRunner::OutcomeCallback record =
                [&](std::uint64_t key, faultsim::Outcome o,
                    const faultsim::InjectDetail &detail) {
                    journal.append(key, o, detail);
                    const unsigned s = sectionOfKey(key);
                    {
                        // Callbacks fire concurrently from pool
                        // workers as injections finish.
                        std::lock_guard<std::mutex> lock(acctMu);
                        if (missing[s])
                            acct[s].addRun(key, detail);
                    }
                    progress.injections.fetch_add(
                        1, std::memory_order_relaxed);
                };
            base::TaskGroup group(pool);
            const obs::TimePoint t1 = obs::now();
            {
                obs::Span inject_span("campaign",
                                      "inject-batch " + spec.workload);
                outcomes = camp.runner().injectBatch(
                    runFaults, camp.goldenRun(), group, &memo, &record);
            }
            inject_seconds = obs::secondsSince(t1);
            journal.close();
        }
        // Extrapolate each freshly-run group into its section's slice.
        // The engine counters are already inside acct: restored runs
        // via the restore sink, simulated runs via the callback.
        for (std::size_t p = 0; p < runFaults.size(); ++p) {
            const std::size_t g = freshGroups[p];
            acct[gsec[g]].estimate.add(
                outcomes[p], prep.grouping.groups[g].members.size());
        }
        // The COMPLETE table: stored slices for hit sections, fresh
        // accounting for the rest.
        std::vector<core::SectionData> table(S);
        for (unsigned s = 0; s < S; ++s) {
            table[s] =
                missing[s] ? std::move(acct[s]) : hit.sections.at(s);
        }
        core::CampaignResult res = core::composeSectioned(
            std::move(prep), table, inject_seconds, runFaults.size());
        if (!opts_.recordTiming) {
            res.profileSeconds = 0.0;
            res.injectionSeconds = 0.0;
            res.secondsPerInjection = 0.0;
        }
        const std::string rkey = reducedKeyFor(spec, S);
        {
            std::lock_guard<std::mutex> lock(storeMu);
            store.put(spec.key(), spec.toJson(), res);
            store.putSections(rkey, reducedSpecFor(spec, S),
                              goldenCycles, table);
            store.save();
            if (!opts_.shardDir.empty())
                spillShard(spec, res, rkey,
                           &store.sectionTables().at(rkey));
        }
        journal.remove();
        out.results[i] = std::move(res);
        ran.fetch_add(1, std::memory_order_relaxed);
        progress.campaignsDone.fetch_add(1, std::memory_order_relaxed);
    };

    const auto runCampaign = [&](std::size_t i) {
        const CampaignSpec &spec = specs_[i];
        obs::Span span("sched",
                       "campaign " + spec.workload + " " + spec.key());
        const auto wl = workloadFor(spec.workload);
        core::CampaignConfig cc = spec.campaignConfig(*wl);
        // Fault-tolerance knobs ride on the options, not the spec:
        // they decide how failures are handled, never what a healthy
        // campaign computes.
        cc.injectWallLimit = opts_.injectWallLimit;
        cc.quarantineFail = opts_.quarantineFail;
        core::Campaign camp(wl->program, cc);
        core::PreparedCampaign prep =
            camp.prepare(spec.mode == CampaignSpec::Mode::Truth,
                         spec.relyzer, spec.pathDepth,
                         spec.mode == CampaignSpec::Mode::GroupingOnly);

        if (S > 0 && sectionEligible(spec) && core::sectionable(prep)) {
            runSectioned(i, spec, camp, std::move(prep));
            return;
        }

        std::vector<faultsim::Outcome> outcomes;
        double inject_seconds = 0.0;
        io::OutcomeJournal journal(journalPathFor(spec), spec.key());
        io::OutcomeJournal::Restored restored;
        if (!prep.faults.empty()) {
            // Crash safety under the per-campaign store save: replay
            // the journal of a killed predecessor into the batch memo
            // (so finished injections are not re-simulated), then
            // journal every fresh outcome as it lands.  Without
            // --resume the journal is started over along with the
            // campaign.
            faultsim::OutcomeMemo memo(prep.faults.size());
            if (opts_.reuseCached) {
                obs::Span replay_span("io", "journal.replay");
                restored = journal.restore(
                    [&](std::uint64_t key, faultsim::Outcome o) {
                        memo.insert(key, o);
                    });
            }
            progress.injections.fetch_add(restored.runs,
                                          std::memory_order_relaxed);
            journal.open();
            const faultsim::InjectionRunner::OutcomeCallback record =
                [&](std::uint64_t key, faultsim::Outcome o,
                    const faultsim::InjectDetail &detail) {
                    journal.append(key, o, detail);
                    progress.injections.fetch_add(
                        1, std::memory_order_relaxed);
                };
            // Fan this campaign's injections into the SHARED pool: the
            // queue interleaves them with every other in-flight
            // campaign, so any worker whose own campaign chain has run
            // dry picks them up.  (The batch dedups internally; no
            // cross-batch memo exists to share any more.)
            base::TaskGroup group(pool);
            const obs::TimePoint t1 = obs::now();
            {
                obs::Span inject_span("campaign",
                                      "inject-batch " + spec.workload);
                outcomes = camp.runner().injectBatch(
                    prep.faults, camp.goldenRun(), group, &memo, &record);
            }
            inject_seconds = obs::secondsSince(t1);
            journal.close();
        }
        core::CampaignResult res =
            camp.finish(std::move(prep), outcomes, inject_seconds);
        // Fold the replayed share back in: the runner's counters only
        // saw what THIS process simulated, but the result must equal
        // an uninterrupted run's — same totals, same sorted quarantine
        // list — for the store bytes to stay identical.
        res.injectionRuns += restored.runs;
        res.earlyExits += restored.earlyExits;
        res.replayMasked += restored.replayMasked;
        res.replayHandoffs += restored.replayHandoffs;
        res.replayCyclesSkipped += restored.replayCyclesSkipped;
        res.replayHeadCycles += restored.replayHeadCycles;
        if (!restored.quarantine.empty()) {
            res.quarantine.insert(res.quarantine.end(),
                                  restored.quarantine.begin(),
                                  restored.quarantine.end());
            std::sort(res.quarantine.begin(), res.quarantine.end(),
                      [](const faultsim::QuarantineRecord &a,
                         const faultsim::QuarantineRecord &b) {
                          return a.faultKey != b.faultKey
                                     ? a.faultKey < b.faultKey
                                     : a.reason < b.reason;
                      });
        }
        if (!opts_.recordTiming) {
            res.profileSeconds = 0.0;
            res.injectionSeconds = 0.0;
            res.secondsPerInjection = 0.0;
        }
        {
            // Persist after EVERY campaign: an interrupted suite
            // resumes from the completed prefix.  Shard spill shares
            // the lock — a manifest may repeat a spec, and two
            // writers racing on the same shard path must serialize.
            std::lock_guard<std::mutex> lock(storeMu);
            store.put(spec.key(), spec.toJson(), res);
            store.save();
            if (!opts_.shardDir.empty())
                spillShard(spec, res);
        }
        // The store save is durable; the journal has nothing left to
        // protect (and must not shadow the next run of this spec).
        journal.remove();
        out.results[i] = std::move(res);
        ran.fetch_add(1, std::memory_order_relaxed);
        progress.campaignsDone.fetch_add(1, std::memory_order_relaxed);
    };

    // One looping driver per worker, pulling campaigns off a shared
    // cursor: at most `jobs` campaigns are in flight (golden runs and
    // checkpoints resident) at a time, however long the suite is.
    // Drivers that exhaust the cursor finish their pool task, freeing
    // that worker to execute queued injection tasks of the campaigns
    // still running — the cross-campaign work stealing.  A campaign
    // failure is recorded and the chain moves on, so one bad spec
    // cannot starve the rest of the suite.
    std::atomic<std::size_t> cursor{0};
    const std::size_t drivers =
        std::min<std::size_t>(pool.size(), pending.size());
    for (std::size_t d = 0; d < drivers; ++d) {
        pool.submit([&] {
            for (std::size_t n;
                 (n = cursor.fetch_add(1, std::memory_order_relaxed)) <
                 pending.size();) {
                try {
                    runCampaign(pending[n]);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errMu);
                    if (!firstError)
                        firstError = std::current_exception();
                }
            }
        });
    }
    pool.wait();
    if (firstError)
        std::rethrow_exception(firstError);

    out.campaignsRun = ran.load();
    out.injectionsSimulated =
        progress.injections.load(std::memory_order_relaxed);
    out.wallSeconds = obs::secondsSince(t0);
    progress.finish();
    return out;
}

} // namespace merlin::sched
