#include "sched/suite.hh"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <set>

#include "base/logging.hh"
#include "io/result_store.hh"
#include "obs/clock.hh"
#include "obs/progress.hh"
#include "obs/trace.hh"
#include "sched/service.hh"

namespace merlin::sched
{

using io::Json;

namespace
{

const char *
structureTag(uarch::Structure s)
{
    switch (s) {
      case uarch::Structure::RegisterFile: return "rf";
      case uarch::Structure::StoreQueue:   return "sq";
      case uarch::Structure::L1DCache:     return "l1d";
    }
    panic("bad structure");
}

uarch::Structure
structureFromTag(const std::string &s)
{
    if (s == "rf")
        return uarch::Structure::RegisterFile;
    if (s == "sq")
        return uarch::Structure::StoreQueue;
    if (s == "l1d")
        return uarch::Structure::L1DCache;
    fatal("suite: unknown structure '", s, "' (use rf | sq | l1d)");
}

const char *
splitTag(core::GroupingOptions::Split s)
{
    switch (s) {
      case core::GroupingOptions::Split::None:   return "none";
      case core::GroupingOptions::Split::Byte:   return "byte";
      case core::GroupingOptions::Split::Nibble: return "nibble";
      case core::GroupingOptions::Split::Bit:    return "bit";
    }
    panic("bad split");
}

core::GroupingOptions::Split
splitFromTag(const std::string &s)
{
    if (s == "none")
        return core::GroupingOptions::Split::None;
    if (s == "byte")
        return core::GroupingOptions::Split::Byte;
    if (s == "nibble")
        return core::GroupingOptions::Split::Nibble;
    if (s == "bit")
        return core::GroupingOptions::Split::Bit;
    fatal("suite: unknown split '", s,
          "' (use none | byte | nibble | bit)");
}

const char *
modeTag(CampaignSpec::Mode m)
{
    switch (m) {
      case CampaignSpec::Mode::Estimate:     return "estimate";
      case CampaignSpec::Mode::Truth:        return "truth";
      case CampaignSpec::Mode::GroupingOnly: return "grouping_only";
    }
    panic("bad mode");
}

CampaignSpec::Mode
modeFromTag(const std::string &s)
{
    if (s == "estimate")
        return CampaignSpec::Mode::Estimate;
    if (s == "truth")
        return CampaignSpec::Mode::Truth;
    if (s == "grouping_only")
        return CampaignSpec::Mode::GroupingOnly;
    fatal("suite: unknown mode '", s,
          "' (use estimate | truth | grouping_only)");
}

/** Members a spec/manifest entry may carry; anything else is a typo. */
const char *const kSpecMembers[] = {
    "workload",      "structure",      "regs",
    "sq_entries",    "l1d_kb",         "window",
    "faults",        "confidence",     "error_margin",
    "split",         "max_group_size", "reps_per_group",
    "seed",          "checkpoint_interval", "max_checkpoints",
    "early_exit",    "replay",         "timeout_factor",
    "mem_chunk_bytes",
    "mode",          "relyzer",        "path_depth",
};

void
checkSpecMembers(const Json &j, const char *what)
{
    for (const auto &[name, value] : j.members()) {
        (void)value;
        if (!isSpecMember(name))
            fatal("suite ", what, ": unknown member '", name, "'");
    }
}

} // namespace

bool
isSpecMember(const std::string &name)
{
    for (const char *m : kSpecMembers) {
        if (name == m)
            return true;
    }
    return false;
}

// --------------------------------------------------------- CampaignSpec

core::CampaignConfig
CampaignSpec::campaignConfig(const workloads::BuiltWorkload &w) const
{
    core::CampaignConfig cc;
    cc.target = structure;
    cc.core = uarch::CoreConfig{}
                  .withRegisterFile(regs)
                  .withStoreQueue(sqEntries)
                  .withL1dKb(l1dKb);
    cc.core.instructionWindowEnd = window ? *window : w.suggestedWindow;
    cc.sampling = sampling;
    cc.grouping = grouping;
    cc.seed = seed;
    // Intra-campaign parallelism comes from the shared suite pool, not
    // from a per-campaign pool.
    cc.jobs = 1;
    cc.checkpointInterval = checkpointInterval;
    cc.maxCheckpoints = maxCheckpoints;
    cc.earlyExit = earlyExit;
    cc.replay = replay;
    cc.timeoutFactor = timeoutFactor;
    cc.core.memChunkBytes = memChunkBytes;
    return cc;
}

Json
CampaignSpec::toJson() const
{
    // Fixed member order and a member for every field: this dump is
    // the content-hash input, so it must be a pure function of the
    // spec VALUE, never of how the spec was built.
    Json j = Json::object();
    j.set("workload", workload);
    j.set("structure", structureTag(structure));
    j.set("regs", regs);
    j.set("sq_entries", sqEntries);
    j.set("l1d_kb", l1dKb);
    j.set("window", window ? Json(*window) : Json());
    if (sampling.fixedCount) {
        j.set("faults", *sampling.fixedCount);
    } else {
        j.set("confidence", sampling.confidence);
        j.set("error_margin", sampling.errorMargin);
    }
    j.set("split", splitTag(grouping.split));
    j.set("max_group_size", grouping.maxGroupSize);
    j.set("reps_per_group", grouping.repsPerGroup);
    j.set("seed", seed);
    j.set("checkpoint_interval", checkpointInterval);
    j.set("max_checkpoints", maxCheckpoints);
    j.set("early_exit", earlyExit);
    j.set("replay", replay);
    j.set("timeout_factor", timeoutFactor);
    j.set("mem_chunk_bytes", memChunkBytes);
    j.set("mode", modeTag(mode));
    j.set("relyzer", relyzer);
    j.set("path_depth", pathDepth);
    return j;
}

CampaignSpec
CampaignSpec::fromJson(const Json &j)
{
    checkSpecMembers(j, "spec");
    CampaignSpec s;
    s.workload = j.strOr("workload", "");
    if (s.workload.empty())
        fatal("suite spec: missing 'workload'");
    s.structure = structureFromTag(j.strOr("structure", "rf"));
    s.regs = static_cast<unsigned>(j.u64Or("regs", s.regs));
    s.sqEntries =
        static_cast<unsigned>(j.u64Or("sq_entries", s.sqEntries));
    s.l1dKb = static_cast<unsigned>(j.u64Or("l1d_kb", s.l1dKb));
    if (const Json *w = j.find("window")) {
        if (!w->isNull())
            s.window = w->asU64();
    }
    if (const Json *f = j.find("faults")) {
        s.sampling = core::specFixed(f->asU64());
    } else {
        s.sampling.confidence =
            j.numOr("confidence", s.sampling.confidence);
        s.sampling.errorMargin =
            j.numOr("error_margin", s.sampling.errorMargin);
    }
    s.grouping.split = splitFromTag(j.strOr("split", "byte"));
    s.grouping.maxGroupSize = static_cast<unsigned>(
        j.u64Or("max_group_size", s.grouping.maxGroupSize));
    s.grouping.repsPerGroup = static_cast<unsigned>(
        j.u64Or("reps_per_group", s.grouping.repsPerGroup));
    s.seed = j.u64Or("seed", s.seed);
    s.checkpointInterval =
        j.u64Or("checkpoint_interval", s.checkpointInterval);
    s.maxCheckpoints = static_cast<unsigned>(
        j.u64Or("max_checkpoints", s.maxCheckpoints));
    s.earlyExit = j.boolOr("early_exit", s.earlyExit);
    s.replay = j.boolOr("replay", s.replay);
    s.timeoutFactor = static_cast<unsigned>(
        j.u64Or("timeout_factor", s.timeoutFactor));
    const std::uint64_t chunk =
        j.u64Or("mem_chunk_bytes", s.memChunkBytes);
    if (!isa::isValidChunkBytes(chunk))
        fatal("suite spec: mem_chunk_bytes ", chunk,
              " is not a power of two >= 64");
    s.memChunkBytes = static_cast<std::uint32_t>(chunk);
    s.mode = modeFromTag(j.strOr("mode", "estimate"));
    s.relyzer = j.boolOr("relyzer", false);
    s.pathDepth =
        static_cast<unsigned>(j.u64Or("path_depth", s.pathDepth));
    return s;
}

std::string
CampaignSpec::key() const
{
    return io::contentKey(toJson());
}

bool
CampaignSpec::operator==(const CampaignSpec &o) const
{
    return toJson() == o.toJson();
}

std::vector<CampaignSpec>
parseManifest(const Json &manifest)
{
    if (!manifest.isObject())
        fatal("suite manifest: expected a top-level object");
    Json defaults = Json::object();
    if (const Json *d = manifest.find("defaults")) {
        checkSpecMembers(*d, "manifest defaults");
        defaults = *d;
    }
    const Json *camps = manifest.find("campaigns");
    if (!camps || !camps->isArray() || camps->size() == 0)
        fatal("suite manifest: 'campaigns' must be a non-empty array");

    std::vector<CampaignSpec> specs;
    specs.reserve(camps->size());
    for (const Json &entry : camps->items()) {
        if (!entry.isObject())
            fatal("suite manifest: campaign entries must be objects");
        Json merged = defaults;
        for (const auto &[name, value] : entry.members())
            merged.set(name, value);
        // The two sampling styles compete ('faults' wins in fromJson):
        // an entry that explicitly chooses one style must shed the
        // other style inherited from the defaults, or a defaults-level
        // 'faults' would silently override a per-campaign margin.
        if (entry.find("faults")) {
            merged.erase("confidence");
            merged.erase("error_margin");
        } else if (entry.find("confidence") ||
                   entry.find("error_margin")) {
            merged.erase("faults");
        }
        specs.push_back(CampaignSpec::fromJson(merged));
    }
    return specs;
}

// ------------------------------------------------------- SuiteScheduler

SuiteScheduler::SuiteScheduler(std::vector<CampaignSpec> specs,
                               SuiteOptions opts)
    : specs_(std::move(specs)), opts_(std::move(opts))
{
}

SuiteResult
SuiteScheduler::run()
{
    const obs::TimePoint t0 = obs::now();
    obs::Span suite_span("sched", "suite.run");
    SuiteResult out;
    out.results.resize(specs_.size());
    out.cached.assign(specs_.size(), false);
    out.selected.assign(specs_.size(), true);
    out.sectionsHit.assign(specs_.size(), 0);
    out.sectionsMissed.assign(specs_.size(), 0);
    if (opts_.select) {
        for (std::size_t i = 0; i < specs_.size(); ++i)
            out.selected[i] = opts_.select->selects(i, specs_[i].key());
    }

    // Live progress: inert unless an output is configured, so the
    // counters are maintained unconditionally at relaxed-atomic cost.
    obs::ProgressSink progress(obs::ProgressSink::Options{
        opts_.progressInterval, opts_.progressStderr, opts_.progressPath,
        opts_.select ? opts_.select->describe() : std::string()});
    progress.campaignsTotal.store(specs_.size(),
                                  std::memory_order_relaxed);
    progress.campaignsSelected.store(
        static_cast<std::uint64_t>(
            std::count(out.selected.begin(), out.selected.end(), true)),
        std::memory_order_relaxed);

    // The engine: a CampaignService scoped to this one suite.  The
    // config derivations (journal placement, store loading only under
    // --resume) are exactly the one-shot scheduler's old rules.
    // startPaused preserves the batch phase structure: every cache
    // hit and section lookup resolves against the loaded store BEFORE
    // any campaign mutates it, so reports and store bytes cannot
    // depend on submission/completion races.
    CampaignService::Config cfg;
    cfg.jobs = opts_.jobs;
    cfg.storePath = opts_.storePath;
    cfg.journalDir =
        !opts_.shardDir.empty()
            ? opts_.shardDir
            : (opts_.storePath.empty() ? std::string()
                                       : opts_.storePath + ".journal");
    cfg.sections = opts_.sections;
    cfg.recordTiming = opts_.recordTiming;
    cfg.injectWallLimit = opts_.injectWallLimit;
    cfg.quarantineFail = opts_.quarantineFail;
    cfg.loadStore = opts_.reuseCached;
    cfg.startPaused = true;
    CampaignService svc(cfg);

    svc.withStore([&](io::ResultStore &store) {
        if (opts_.reuseCached && store.selection() && opts_.select) {
            // Refuse overlapping resume stores: a store that records a
            // different selection belongs to another worker, and
            // resuming from it would mix two shares into one file (and
            // clobber the other worker's entries on save).  (A store
            // that failed to load has no selection, so this gate is
            // the old load()-gated check unchanged.)
            const SpecSelector recorded =
                SpecSelector::fromJson(*store.selection());
            if (!(recorded == *opts_.select))
                fatal("suite --resume: store '", opts_.storePath,
                      "' was produced under selection ",
                      recorded.describe(), ", not ",
                      opts_.select->describe(),
                      " — give every worker its own --out store");
        }
        if (opts_.select) {
            store.setSelection(opts_.select->toJson());
            // Entries outside this worker's share — unselected
            // manifest specs, or specs of some other suite entirely (a
            // single-host store copied in to seed the resume) — are
            // foreign: drop them so they are neither re-spilled as
            // shards nor re-serialized into this worker's store, which
            // would duplicate them across the merge inputs.
            std::set<std::string> mine;
            for (std::size_t i = 0; i < specs_.size(); ++i) {
                if (out.selected[i])
                    mine.insert(specs_[i].key());
            }
            std::vector<std::string> foreign;
            for (const auto &[key, entry] : store.entries()) {
                (void)entry;
                if (!mine.count(key))
                    foreign.push_back(key);
            }
            for (const std::string &key : foreign)
                store.erase(key);
            // Section tables are foreign under the same rule, against
            // the reduced keys this worker's share can produce (none
            // at all when sectioning is off).
            std::set<std::string> mineSections;
            if (opts_.sections > 0) {
                for (std::size_t i = 0; i < specs_.size(); ++i) {
                    if (out.selected[i] && sectionEligible(specs_[i]))
                        mineSections.insert(
                            reducedKeyFor(specs_[i], opts_.sections));
                }
            }
            std::vector<std::string> foreignSections;
            for (const auto &[key, table] : store.sectionTables()) {
                (void)table;
                if (!mineSections.count(key))
                    foreignSections.push_back(key);
            }
            for (const std::string &key : foreignSections)
                store.eraseSections(key);
        } else {
            // A full run owns the whole suite; a worker store being
            // promoted back to a single-host store sheds its selection.
            store.clearSelection();
        }
    });
    if (!opts_.shardDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts_.shardDir, ec);
        if (ec)
            fatal("suite: cannot create shard directory '",
                  opts_.shardDir, "': ", ec.message());
    }

    // Submit every selected spec; cache hits resolve immediately on
    // this thread (the service is paused, so nothing mutates the
    // store underneath the lookups), misses queue for the drivers.
    CampaignService::SubmitOptions sopts;
    sopts.reuseCached = opts_.reuseCached;
    sopts.shardDir = opts_.shardDir;
    sopts.client = "suite";
    sopts.progress = &progress;
    std::vector<CampaignService::TicketPtr> tickets(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        if (out.selected[i])
            tickets[i] = svc.submit(specs_[i], sopts);
    }
    // Canonicalize a worker store up front: selection recorded and
    // foreign entries gone even when every campaign is served from
    // the cache and no per-campaign save would otherwise happen.
    if (opts_.select && !opts_.storePath.empty())
        svc.withStore([](io::ResultStore &store) { store.save(); });

    // Unpause: the drivers spin up (one per pool worker, at most) and
    // run the queued campaigns with cross-campaign work stealing.
    svc.resume();

    std::exception_ptr firstError;
    std::uint64_t ran = 0;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        if (!tickets[i])
            continue;
        const CampaignService::State st = tickets[i]->wait();
        if (st == CampaignService::State::Failed) {
            // A campaign failure is recorded and the rest of the suite
            // still runs; the first one propagates afterwards.
            if (!firstError)
                firstError = tickets[i]->error();
            continue;
        }
        if (st != CampaignService::State::Done)
            continue;
        const CampaignService::Outcome &o = tickets[i]->outcome();
        out.results[i] = o.result;
        out.cached[i] = o.cached;
        out.sectionsHit[i] = o.sectionsHit;
        out.sectionsMissed[i] = o.sectionsMissed;
        if (!o.cached)
            ++ran;
    }
    svc.drain();
    if (firstError)
        std::rethrow_exception(firstError);

    out.campaignsRun = ran;
    out.injectionsSimulated =
        progress.injections.load(std::memory_order_relaxed);
    out.wallSeconds = obs::secondsSince(t0);
    progress.finish();
    return out;
}

} // namespace merlin::sched
