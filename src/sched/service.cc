/**
 * @file
 * CampaignService implementation.  The campaign bodies (plain and
 * sectioned) are the former SuiteScheduler internals, moved here
 * verbatim so the batch wrapper keeps its byte-identity guarantees;
 * what is new is the lifetime around them: per-client queues, the
 * single-flight index, and drivers that spawn on demand instead of
 * once per suite.
 */

#include "sched/service.hh"

#include <algorithm>
#include <filesystem>
#include <set>
#include <utility>

#include "base/logging.hh"
#include "faultsim/fault.hh"
#include "io/journal.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace merlin::sched
{

using io::Json;

bool
sectionEligible(const CampaignSpec &spec)
{
    return spec.mode == CampaignSpec::Mode::Estimate &&
           spec.grouping.repsPerGroup == 1;
}

Json
reducedSpecFor(const CampaignSpec &spec, unsigned sections)
{
    Json j = spec.toJson();
    j.erase("mem_chunk_bytes");
    j.set("sections", static_cast<std::uint64_t>(sections));
    return j;
}

std::string
reducedKeyFor(const CampaignSpec &spec, unsigned sections)
{
    return io::contentKey(reducedSpecFor(spec, sections));
}

namespace
{

void
bumpRelaxed(obs::ProgressSink *sink,
            std::atomic<std::uint64_t> obs::ProgressSink::*field,
            std::uint64_t n = 1)
{
    if (sink)
        (sink->*field).fetch_add(n, std::memory_order_relaxed);
}

obs::Gauge &
clientGauge(const std::string &client, const char *what)
{
    return obs::Registry::global().gauge("service.client." + client +
                                         "." + what);
}

obs::Counter &
clientCounter(const std::string &client, const char *what)
{
    return obs::Registry::global().counter("service.client." + client +
                                           "." + what);
}

} // namespace

// --------------------------------------------------------------- Ticket

CampaignService::Ticket::Ticket(CampaignSpec spec, std::string key,
                                SubmitOptions opts)
    : spec_(std::move(spec)), key_(std::move(key)), opts_(std::move(opts))
{
}

CampaignService::State
CampaignService::Ticket::state() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
}

CampaignService::State
CampaignService::Ticket::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
        return state_ == State::Done || state_ == State::Failed ||
               state_ == State::Cancelled;
    });
    return state_;
}

const CampaignService::Outcome &
CampaignService::Ticket::outcome() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::Done)
        fatal("campaign service: outcome() on a ticket in state ",
              stateName(state_));
    return outcome_;
}

std::exception_ptr
CampaignService::Ticket::error() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return error_;
}

void
CampaignService::Ticket::complete(State s, Outcome out,
                                  std::exception_ptr err)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        state_ = s;
        outcome_ = std::move(out);
        error_ = err;
    }
    cv_.notify_all();
}

const char *
CampaignService::stateName(State s)
{
    switch (s) {
      case State::Queued:    return "queued";
      case State::Running:   return "running";
      case State::Done:      return "done";
      case State::Failed:    return "failed";
      case State::Cancelled: return "cancelled";
    }
    panic("bad service state");
}

// ------------------------------------------------------ CampaignService

/** One queued/running simulation and everyone waiting on it. */
struct CampaignService::Job
{
    CampaignSpec spec;
    std::string key;
    std::string client; ///< fairness queue that owns the job
    /** Consult journals / section tables (primary's reuseCached). */
    bool resume = false;
    bool sectioned = false; ///< section-eligible under cfg_.sections
    /** Pinned at submit time — the store must not be re-read once
     *  drivers mutate it. */
    io::ResultStore::SectionLookup sectionHit;
    bool running = false;
    /** Filled by runJob(); fanned out per ticket by settleLocked(). */
    Outcome outcome;
    /** Subscribers; [0] is the submitter whose options drive the run.
     *  Mutated only under the service mutex. */
    std::vector<TicketPtr> tickets;
};

struct CampaignService::WorkloadSlot
{
    std::once_flag once;
    std::shared_ptr<const workloads::BuiltWorkload> wl;
};

CampaignService::CampaignService(Config cfg)
    : cfg_(std::move(cfg)),
      pool_(cfg_.jobs ? cfg_.jobs : base::ThreadPool::hardwareThreads()),
      store_(cfg_.storePath), paused_(cfg_.startPaused)
{
    if (cfg_.loadStore)
        store_.load();
    if (!cfg_.journalDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg_.journalDir, ec);
        if (ec)
            fatal("campaign service: cannot create journal directory '",
                  cfg_.journalDir, "': ", ec.message());
    }
}

CampaignService::~CampaignService()
{
    drain();
}

std::shared_ptr<const workloads::BuiltWorkload>
CampaignService::workloadFor(const std::string &name)
{
    WorkloadSlot *slot;
    {
        // Slot creation is the only map mutation; call_once runs
        // outside the lock so DIFFERENT workloads build concurrently.
        std::lock_guard<std::mutex> lock(wlMu_);
        auto &up = wlCache_[name];
        if (!up)
            up = std::make_unique<WorkloadSlot>();
        slot = up.get();
    }
    std::call_once(slot->once, [&] {
        slot->wl = std::make_shared<const workloads::BuiltWorkload>(
            workloads::buildWorkload(name));
    });
    return slot->wl;
}

std::string
CampaignService::journalPathFor(const CampaignSpec &spec) const
{
    return cfg_.journalDir.empty()
               ? std::string()
               : (std::filesystem::path(cfg_.journalDir) /
                  (spec.key() + ".journal"))
                     .string();
}

// One single-entry store per campaign, named by the spec key, so
// `store merge` folds shards in any order into exactly the
// single-store bytes.  A sectioned campaign's shard also carries its
// section table (@p section_key + @p table, both empty/null when
// unsectioned), so merged shards reassemble the section tables too.
// Caller holds storeMu_ — two writers racing on one shard path (a
// manifest may repeat a spec) must serialize.
void
CampaignService::spillShardLocked(const std::string &shard_dir,
                                  const CampaignSpec &spec,
                                  const core::CampaignResult &res,
                                  const std::string &section_key,
                                  const io::ResultStore::SectionTable *table)
{
    io::ResultStore shard(
        (std::filesystem::path(shard_dir) / (spec.key() + ".json"))
            .string());
    shard.put(spec.key(), spec.toJson(), res);
    if (table)
        shard.putSectionTable(section_key, *table);
    shard.save();
}

CampaignService::TicketPtr
CampaignService::submit(const CampaignSpec &spec, const SubmitOptions &opts)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (draining_)
            return nullptr;
    }
    const std::string key = spec.key();
    TicketPtr ticket(new Ticket(spec, key, opts));
    const unsigned S = cfg_.sections;
    const bool sectionedSpec = S > 0 && sectionEligible(spec);
    obs::Counter &sectionHitsCtr =
        obs::Registry::global().counter("store.section_hits");
    obs::Counter &sectionMissCtr =
        obs::Registry::global().counter("store.section_misses");
    clientCounter(opts.client, "submitted").add();

    // Resolve the store on the submitter's thread, before the job ever
    // reaches a driver — the same "lookups never race with writers"
    // discipline the batch scheduler had, per submission.
    bool cacheHit = false;
    core::CampaignResult cachedRes;
    io::ResultStore::SectionLookup sectionHit;
    if (opts.reuseCached) {
        std::lock_guard<std::mutex> lock(storeMu_);
        if (store_.lookup(key, cachedRes)) {
            cacheHit = true;
            if (!opts.shardDir.empty()) {
                // The cached spec's section table (when the store has
                // one) rides along on the shard, keeping merged shards
                // byte-identical to the single-host store.
                const io::ResultStore::SectionTable *table = nullptr;
                std::string rkey;
                if (sectionedSpec) {
                    rkey = reducedKeyFor(spec, S);
                    auto it = store_.sectionTables().find(rkey);
                    if (it != store_.sectionTables().end())
                        table = &it->second;
                }
                spillShardLocked(opts.shardDir, spec, cachedRes, rkey,
                                 table);
            }
        } else if (sectionedSpec) {
            sectionHit = store_.lookupSections(reducedKeyFor(spec, S));
        }
    }

    if (cacheHit) {
        Outcome out;
        out.result = std::move(cachedRes);
        out.cached = true;
        if (sectionedSpec) {
            // A whole-campaign hit IS an all-sections hit — this is
            // also how legacy v1 stores (no section tables at all) are
            // promoted into the sectioned accounting.
            out.sectionsHit = S;
            sectionHitsCtr.add(S);
        }
        // A journal outliving a stored result means a previous run
        // died between the store save and the journal cleanup; the
        // store won, so the journal is stale.
        if (!cfg_.journalDir.empty()) {
            std::error_code ec;
            std::filesystem::remove(journalPathFor(spec), ec);
        }
        bumpRelaxed(opts.progress, &obs::ProgressSink::campaignsDone);
        bumpRelaxed(opts.progress, &obs::ProgressSink::campaignsCached);
        clientCounter(opts.client, "cache_hits").add();
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.submitted;
            ++stats_.cacheHits;
        }
        ticket->complete(State::Done, std::move(out), nullptr);
        return ticket;
    }

    std::lock_guard<std::mutex> lock(mu_);
    if (draining_)
        return nullptr;
    ++stats_.submitted;

    // Single-flight: an identical spec already queued or running means
    // this submission subscribes instead of simulating — outcomes are
    // a pure function of the spec, so the bytes are safely shareable.
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
        Job &job = *it->second;
        if (job.running)
            ticket->state_ = State::Running; // ticket not yet shared
        job.tickets.push_back(ticket);
        ++stats_.coalesced;
        clientCounter(opts.client, "coalesced").add();
        return ticket;
    }

    auto job = std::make_shared<Job>();
    job->spec = spec;
    job->key = key;
    job->client = opts.client;
    job->resume = opts.reuseCached;
    job->sectioned = sectionedSpec;
    job->sectionHit = std::move(sectionHit);
    if (sectionedSpec) {
        std::uint32_t hits = 0;
        for (const auto &[idx, data] : job->sectionHit.sections) {
            (void)data;
            if (idx < S)
                ++hits;
        }
        job->outcome.sectionsHit = hits;
        job->outcome.sectionsMissed = S - hits;
        sectionHitsCtr.add(hits);
        sectionMissCtr.add(S - hits);
    }
    job->tickets.push_back(ticket);

    auto [qit, fresh] = queues_.try_emplace(opts.client);
    if (fresh)
        clientOrder_.push_back(opts.client);
    qit->second.push_back(job);
    clientGauge(opts.client, "queued")
        .set(static_cast<double>(qit->second.size()));
    inflight_.emplace(key, job);
    ++queuedJobs_;
    ++stats_.queued;
    maybeSpawnDriverLocked();
    return ticket;
}

CampaignService::TicketPtr
CampaignService::subscribe(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end())
        return nullptr;
    Job &job = *it->second;
    TicketPtr ticket(new Ticket(job.spec, key, SubmitOptions{}));
    if (job.running)
        ticket->state_ = State::Running;
    job.tickets.push_back(ticket);
    ++stats_.coalesced;
    return ticket;
}

bool
CampaignService::cancel(const TicketPtr &ticket)
{
    if (!ticket)
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(ticket->key());
    if (it == inflight_.end() || it->second->running)
        return false;
    Job &job = *it->second;
    auto tit = std::find(job.tickets.begin(), job.tickets.end(), ticket);
    if (tit == job.tickets.end())
        return false; // a ticket from some earlier job for this key
    job.tickets.erase(tit);
    ticket->complete(State::Cancelled, Outcome{}, nullptr);
    ++stats_.cancelled;
    if (!job.tickets.empty())
        return true; // other subscribers keep the job alive
    auto &q = queues_[job.client];
    auto qit = std::find(q.begin(), q.end(), it->second);
    if (qit != q.end())
        q.erase(qit);
    clientGauge(job.client, "queued").set(static_cast<double>(q.size()));
    inflight_.erase(it);
    --queuedJobs_;
    --stats_.queued;
    idleCv_.notify_all();
    return true;
}

void
CampaignService::resume()
{
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
    maybeSpawnDriverLocked();
}

void
CampaignService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    if (paused_) {
        // Draining a paused service would deadlock on its own queue.
        paused_ = false;
        maybeSpawnDriverLocked();
    }
    // Wait for the drivers too, not just the jobs: a driver that just
    // settled its last job is still executing driverLoop(), and the
    // destructor must not tear the queues down under it.
    idleCv_.wait(lock, [&] {
        return queuedJobs_ == 0 && runningJobs_ == 0 &&
               activeDrivers_ == 0;
    });
}

void
CampaignService::beginShutdown(bool cancel_queued)
{
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    if (!cancel_queued)
        return;
    for (auto &[client, q] : queues_) {
        while (!q.empty()) {
            std::shared_ptr<Job> job = q.front();
            q.pop_front();
            --queuedJobs_;
            --stats_.queued;
            settleLocked(job, State::Cancelled, nullptr);
        }
        clientGauge(client, "queued").set(0.0);
    }
    idleCv_.notify_all();
}

bool
CampaignService::draining() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return draining_;
}

void
CampaignService::withStore(const std::function<void(io::ResultStore &)> &fn)
{
    std::lock_guard<std::mutex> lock(storeMu_);
    fn(store_);
}

bool
CampaignService::keyState(const std::string &key, State &out)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            out = it->second->running ? State::Running : State::Queued;
            return true;
        }
    }
    std::lock_guard<std::mutex> lock(storeMu_);
    if (store_.contains(key)) {
        out = State::Done;
        return true;
    }
    return false;
}

CampaignService::Stats
CampaignService::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
CampaignService::maybeSpawnDriverLocked()
{
    // Driver demand is one per in-flight job, capped at the pool: the
    // classic "min(pool.size(), pending.size())" of the batch
    // scheduler, maintained incrementally.  Drivers that find the
    // queues empty exit, freeing their worker for queued injections.
    while (!paused_ && activeDrivers_ < pool_.size() &&
           activeDrivers_ < runningJobs_ + queuedJobs_) {
        ++activeDrivers_;
        pool_.submit([this] { driverLoop(); });
    }
}

std::shared_ptr<CampaignService::Job>
CampaignService::popNextLocked()
{
    // Round-robin across the per-client queues: the rotation pointer
    // advances past each served client, so one tenant's thousand-spec
    // sweep cannot starve another's single submission.
    for (std::size_t k = 0; k < clientOrder_.size(); ++k) {
        const std::size_t idx = (rrNext_ + k) % clientOrder_.size();
        auto &q = queues_[clientOrder_[idx]];
        if (q.empty())
            continue;
        std::shared_ptr<Job> job = q.front();
        q.pop_front();
        clientGauge(clientOrder_[idx], "queued")
            .set(static_cast<double>(q.size()));
        rrNext_ = (idx + 1) % clientOrder_.size();
        return job;
    }
    return nullptr;
}

void
CampaignService::driverLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::lock_guard<std::mutex> lock(mu_);
            job = popNextLocked();
            if (!job) {
                --activeDrivers_;
                idleCv_.notify_all();
                return;
            }
            --queuedJobs_;
            --stats_.queued;
            ++runningJobs_;
            ++stats_.running;
            job->running = true;
            clientGauge(job->client, "running")
                .set(static_cast<double>(++runningByClient_[job->client]));
            for (const TicketPtr &t : job->tickets)
                t->complete(State::Running, Outcome{}, nullptr);
        }
        std::exception_ptr err;
        try {
            runJob(*job);
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --runningJobs_;
            --stats_.running;
            clientGauge(job->client, "running")
                .set(static_cast<double>(--runningByClient_[job->client]));
            settleLocked(job, err ? State::Failed : State::Done, err);
            idleCv_.notify_all();
        }
    }
}

void
CampaignService::settleLocked(const std::shared_ptr<Job> &job, State state,
                              std::exception_ptr err)
{
    auto it = inflight_.find(job->key);
    if (it != inflight_.end() && it->second == job)
        inflight_.erase(it);
    if (state == State::Done)
        ++stats_.executed;
    else if (state == State::Failed)
        ++stats_.failed;
    else if (state == State::Cancelled)
        stats_.cancelled += job->tickets.size();
    bool first = true;
    for (const TicketPtr &t : job->tickets) {
        Outcome out = job->outcome;
        out.coalesced = !first;
        first = false;
        if (state == State::Done) {
            bumpRelaxed(t->opts_.progress,
                        &obs::ProgressSink::campaignsDone);
        }
        t->complete(state, std::move(out), err);
    }
}

std::vector<std::string>
CampaignService::shardDirsOf(const Job &job)
{
    // Snapshot under the service mutex (subscribers may still be
    // attaching); distinct dirs only — one shard file per campaign
    // per directory, however many tickets share it.
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> dirs;
    for (const TicketPtr &t : job.tickets) {
        const std::string &d = t->opts_.shardDir;
        if (!d.empty() &&
            std::find(dirs.begin(), dirs.end(), d) == dirs.end())
            dirs.push_back(d);
    }
    return dirs;
}

obs::ProgressSink *
CampaignService::primaryProgress(const Job &job)
{
    std::lock_guard<std::mutex> lock(mu_);
    return job.tickets.empty() ? nullptr : job.tickets[0]->opts_.progress;
}

// The sectioned campaign body: serve the stored slices, inject only
// the missing sections' representatives, compose the result from the
// complete per-section table, and persist both.  By construction (see
// core::composeSectioned) the result — and therefore the store bytes —
// is identical to the unsectioned path's for the same spec.
void
CampaignService::runSectioned(Job &job, core::Campaign &camp,
                              core::PreparedCampaign prep)
{
    const CampaignSpec &spec = job.spec;
    const unsigned S = cfg_.sections;
    obs::ProgressSink *progress = primaryProgress(job);
    const Cycle goldenCycles = prep.result.goldenCycles;
    const std::vector<unsigned> gsec = core::groupSections(prep, S);
    const io::ResultStore::SectionLookup &hit = job.sectionHit;
    if (hit.found && hit.goldenCycles != goldenCycles)
        fatal("suite: stored section table for spec ", spec.key(),
              " records a golden run of ", hit.goldenCycles,
              " cycles, but this campaign produced ", goldenCycles,
              " — the store was built by a different engine; "
              "delete it or run without --sections");
    std::vector<bool> missing(S, true);
    if (hit.found) {
        for (const auto &[idx, data] : hit.sections) {
            (void)data;
            if (idx < S)
                missing[idx] = false;
        }
    }

    // Only missing sections' representatives run; freshGroups maps
    // the reduced fault list back onto group indices.
    std::vector<faultsim::Fault> runFaults;
    std::vector<std::size_t> freshGroups;
    for (std::size_t g = 0; g < prep.faults.size(); ++g) {
        if (missing[gsec[g]]) {
            runFaults.push_back(prep.faults[g]);
            freshGroups.push_back(g);
        }
    }

    std::vector<core::SectionData> acct(S);
    std::mutex acctMu;
    const auto sectionOfKey = [&](std::uint64_t key) {
        return core::sectionOfCycle(faultsim::faultKeyCycle(key),
                                    goldenCycles, S);
    };
    std::vector<faultsim::Outcome> outcomes;
    double inject_seconds = 0.0;
    io::OutcomeJournal journal(journalPathFor(spec), spec.key());
    if (!runFaults.empty()) {
        faultsim::OutcomeMemo memo(runFaults.size());
        io::OutcomeJournal::Restored restored;
        if (job.resume) {
            obs::Span replay_span("io", "journal.replay");
            restored = journal.restore(
                [&](std::uint64_t key, faultsim::Outcome o,
                    const faultsim::InjectDetail &detail) {
                    memo.insert(key, o);
                    // Hit sections already carry their runs inside
                    // the stored table; only missing sections
                    // account the replayed share.
                    const unsigned s = sectionOfKey(key);
                    if (missing[s])
                        acct[s].addRun(key, detail);
                });
        }
        bumpRelaxed(progress, &obs::ProgressSink::injections,
                    restored.runs);
        journal.open();
        const faultsim::InjectionRunner::OutcomeCallback record =
            [&](std::uint64_t key, faultsim::Outcome o,
                const faultsim::InjectDetail &detail) {
                journal.append(key, o, detail);
                const unsigned s = sectionOfKey(key);
                {
                    // Callbacks fire concurrently from pool
                    // workers as injections finish.
                    std::lock_guard<std::mutex> lock(acctMu);
                    if (missing[s])
                        acct[s].addRun(key, detail);
                }
                bumpRelaxed(progress, &obs::ProgressSink::injections);
            };
        base::TaskGroup group(pool_);
        const obs::TimePoint t1 = obs::now();
        {
            obs::Span inject_span("campaign",
                                  "inject-batch " + spec.workload);
            outcomes = camp.runner().injectBatch(
                runFaults, camp.goldenRun(), group, &memo, &record);
        }
        inject_seconds = obs::secondsSince(t1);
        journal.close();
    }
    // Extrapolate each freshly-run group into its section's slice.
    // The engine counters are already inside acct: restored runs
    // via the restore sink, simulated runs via the callback.
    for (std::size_t p = 0; p < runFaults.size(); ++p) {
        const std::size_t g = freshGroups[p];
        acct[gsec[g]].estimate.add(
            outcomes[p], prep.grouping.groups[g].members.size());
    }
    // The COMPLETE table: stored slices for hit sections, fresh
    // accounting for the rest.
    std::vector<core::SectionData> table(S);
    for (unsigned s = 0; s < S; ++s)
        table[s] = missing[s] ? std::move(acct[s]) : hit.sections.at(s);
    core::CampaignResult res = core::composeSectioned(
        std::move(prep), table, inject_seconds, runFaults.size());
    if (!cfg_.recordTiming) {
        res.profileSeconds = 0.0;
        res.injectionSeconds = 0.0;
        res.secondsPerInjection = 0.0;
    }
    const std::string rkey = reducedKeyFor(spec, S);
    const std::vector<std::string> shardDirs = shardDirsOf(job);
    {
        std::lock_guard<std::mutex> lock(storeMu_);
        store_.put(spec.key(), spec.toJson(), res);
        store_.putSections(rkey, reducedSpecFor(spec, S), goldenCycles,
                           table);
        store_.save();
        for (const std::string &dir : shardDirs)
            spillShardLocked(dir, spec, res, rkey,
                             &store_.sectionTables().at(rkey));
    }
    journal.remove();
    job.outcome.result = std::move(res);
}

void
CampaignService::runJob(Job &job)
{
    const CampaignSpec &spec = job.spec;
    obs::Span span("sched",
                   "campaign " + spec.workload + " " + spec.key());
    obs::ProgressSink *progress = primaryProgress(job);
    const auto wl = workloadFor(spec.workload);
    core::CampaignConfig cc = spec.campaignConfig(*wl);
    // Fault-tolerance knobs ride on the service config, not the spec:
    // they decide how failures are handled, never what a healthy
    // campaign computes.
    cc.injectWallLimit = cfg_.injectWallLimit;
    cc.quarantineFail = cfg_.quarantineFail;
    core::Campaign camp(wl->program, cc);
    core::PreparedCampaign prep =
        camp.prepare(spec.mode == CampaignSpec::Mode::Truth, spec.relyzer,
                     spec.pathDepth,
                     spec.mode == CampaignSpec::Mode::GroupingOnly);

    if (cfg_.sections > 0 && sectionEligible(spec) &&
        core::sectionable(prep)) {
        runSectioned(job, camp, std::move(prep));
        return;
    }

    std::vector<faultsim::Outcome> outcomes;
    double inject_seconds = 0.0;
    io::OutcomeJournal journal(journalPathFor(spec), spec.key());
    io::OutcomeJournal::Restored restored;
    if (!prep.faults.empty()) {
        // Crash safety under the per-campaign store save: replay the
        // journal of a killed predecessor into the batch memo (so
        // finished injections are not re-simulated), then journal
        // every fresh outcome as it lands.  Without resume the
        // journal is started over along with the campaign.
        faultsim::OutcomeMemo memo(prep.faults.size());
        if (job.resume) {
            obs::Span replay_span("io", "journal.replay");
            restored = journal.restore(
                [&](std::uint64_t key, faultsim::Outcome o) {
                    memo.insert(key, o);
                });
        }
        bumpRelaxed(progress, &obs::ProgressSink::injections,
                    restored.runs);
        journal.open();
        const faultsim::InjectionRunner::OutcomeCallback record =
            [&](std::uint64_t key, faultsim::Outcome o,
                const faultsim::InjectDetail &detail) {
                journal.append(key, o, detail);
                bumpRelaxed(progress, &obs::ProgressSink::injections);
            };
        // Fan this campaign's injections into the SHARED pool: the
        // queue interleaves them with every other in-flight
        // campaign, so any worker whose own campaign chain has run
        // dry picks them up.  (The batch dedups internally; no
        // cross-batch memo exists to share any more.)
        base::TaskGroup group(pool_);
        const obs::TimePoint t1 = obs::now();
        {
            obs::Span inject_span("campaign",
                                  "inject-batch " + spec.workload);
            outcomes = camp.runner().injectBatch(
                prep.faults, camp.goldenRun(), group, &memo, &record);
        }
        inject_seconds = obs::secondsSince(t1);
        journal.close();
    }
    core::CampaignResult res =
        camp.finish(std::move(prep), outcomes, inject_seconds);
    // Fold the replayed share back in: the runner's counters only
    // saw what THIS process simulated, but the result must equal
    // an uninterrupted run's — same totals, same sorted quarantine
    // list — for the store bytes to stay identical.
    res.injectionRuns += restored.runs;
    res.earlyExits += restored.earlyExits;
    res.replayMasked += restored.replayMasked;
    res.replayHandoffs += restored.replayHandoffs;
    res.replayCyclesSkipped += restored.replayCyclesSkipped;
    res.replayHeadCycles += restored.replayHeadCycles;
    if (!restored.quarantine.empty()) {
        res.quarantine.insert(res.quarantine.end(),
                              restored.quarantine.begin(),
                              restored.quarantine.end());
        std::sort(res.quarantine.begin(), res.quarantine.end(),
                  [](const faultsim::QuarantineRecord &a,
                     const faultsim::QuarantineRecord &b) {
                      return a.faultKey != b.faultKey
                                 ? a.faultKey < b.faultKey
                                 : a.reason < b.reason;
                  });
    }
    if (!cfg_.recordTiming) {
        res.profileSeconds = 0.0;
        res.injectionSeconds = 0.0;
        res.secondsPerInjection = 0.0;
    }
    const std::vector<std::string> shardDirs = shardDirsOf(job);
    {
        // Persist after EVERY campaign: an interrupted service
        // resumes from the completed prefix.
        std::lock_guard<std::mutex> lock(storeMu_);
        store_.put(spec.key(), spec.toJson(), res);
        store_.save();
        for (const std::string &dir : shardDirs)
            spillShardLocked(dir, spec, res);
    }
    // The store save is durable; the journal has nothing left to
    // protect (and must not shadow the next run of this spec).
    journal.remove();
    job.outcome.result = std::move(res);
}

} // namespace merlin::sched
