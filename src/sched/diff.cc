#include "sched/diff.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "base/logging.hh"
#include "base/statistics.hh"
#include "sched/suite.hh"

namespace merlin::sched
{

using io::Json;

namespace
{

constexpr const char *kDiffFormatTag = "merlin-diff-v1";

/** One store entry, indexed for the join. */
struct SideEntry
{
    std::string fullKey;
    Json maskedSpec;
    Json axisVals;
    Json spec;
    core::CampaignResult res;
};

/**
 * Index a store by axis-masked spec hash.  Fatal when two entries
 * collapse onto one join key: that store contains the sweep itself,
 * and the pairing would be ambiguous.
 */
std::map<std::string, SideEntry>
indexStore(const io::ResultStore &store, const char *label,
           const std::vector<std::string> &axis)
{
    std::map<std::string, SideEntry> out;
    for (const auto &[key, entry] : store.entries()) {
        SideEntry side;
        side.fullKey = key;
        side.spec = entry.spec;
        side.maskedSpec = entry.spec;
        side.axisVals = Json::object();
        for (const std::string &knob : axis) {
            if (const Json *v = side.maskedSpec.find(knob))
                side.axisVals.set(knob, *v);
            side.maskedSpec.erase(knob);
        }
        side.res = io::resultFromJson(entry.result);
        const std::string joinKey = io::contentKey(side.maskedSpec);
        auto [it, inserted] = out.emplace(joinKey, std::move(side));
        if (!inserted)
            fatal("suite diff: store ", label, ": entries '",
                  it->second.fullKey, "' and '", key,
                  "' are identical modulo the swept axis — each side "
                  "of a diff must hold one configuration per campaign");
    }
    return out;
}

Json
classDeltaJson(
    const std::array<std::int64_t, faultsim::NUM_OUTCOMES> &d)
{
    Json arr = Json::array();
    for (std::int64_t v : d)
        arr.push(v);
    return arr;
}

Json
classFracJson(const std::array<double, faultsim::NUM_OUTCOMES> &d)
{
    Json arr = Json::array();
    for (double v : d)
        arr.push(v);
    return arr;
}

Json
unpairedJson(const std::vector<UnpairedCampaign> &v)
{
    Json arr = Json::array();
    for (const UnpairedCampaign &u : v) {
        Json j = Json::object();
        j.set("join_key", u.joinKey);
        j.set("key", u.key);
        j.set("spec", u.spec);
        arr.push(j);
    }
    return arr;
}

/** Compact "a,b,c" rendering of an axis-value object. */
std::string
axisLabel(const Json &axis_vals)
{
    if (!axis_vals.isObject() || axis_vals.size() == 0)
        return "-";
    std::string out;
    for (const auto &[name, value] : axis_vals.members()) {
        (void)name;
        if (!out.empty())
            out += ',';
        if (value.isString())
            out += value.asString();
        else
            out += value.dump();
    }
    return out;
}

} // namespace

std::optional<double>
samplingMargin(std::uint64_t initial_faults, double confidence)
{
    if (initial_faults == 0)
        return std::nullopt;
    return stats::zForConfidence(confidence) *
           std::sqrt(0.25 / static_cast<double>(initial_faults));
}

std::optional<double>
quadratureMargin(std::optional<double> a, std::optional<double> b)
{
    if (!a || !b)
        return std::nullopt;
    return std::sqrt(*a * *a + *b * *b);
}

SuiteDiff::SuiteDiff(const io::ResultStore &a, const io::ResultStore &b,
                     DiffOptions opts)
    : a_(a), b_(b), opts_(std::move(opts))
{
    for (const std::string &knob : opts_.axis) {
        if (!isSpecMember(knob))
            fatal("suite diff: '", knob,
                  "' is not a spec member (valid sweep axes are the "
                  "manifest knob names, e.g. l1d_kb)");
    }
    if (!(opts_.confidence > 0.0 && opts_.confidence < 1.0))
        fatal("suite diff: confidence must be in (0, 1)");
}

SuiteDiffResult
SuiteDiff::run() const
{
    const auto sideA = indexStore(a_, "A", opts_.axis);
    const auto sideB = indexStore(b_, "B", opts_.axis);

    SuiteDiffResult out;
    out.axis = opts_.axis;
    out.confidence = opts_.confidence;
    out.campaignsA = a_.entries().size();
    out.campaignsB = b_.entries().size();

    std::uint64_t runsTotalA = 0, runsTotalB = 0;
    std::uint64_t exitsTotalA = 0, exitsTotalB = 0;
    double ciSquares = 0.0;
    bool allMargins = true;

    // Both indexes iterate in joinKey order, so the output is sorted
    // by construction.
    for (const auto &[joinKey, ea] : sideA) {
        auto itB = sideB.find(joinKey);
        if (itB == sideB.end()) {
            out.onlyA.push_back(
                UnpairedCampaign{joinKey, ea.fullKey, ea.spec});
            continue;
        }
        const SideEntry &eb = itB->second;

        CampaignDelta d;
        d.joinKey = joinKey;
        d.maskedSpec = ea.maskedSpec;
        d.axisA = ea.axisVals;
        d.axisB = eb.axisVals;
        d.keyA = ea.fullKey;
        d.keyB = eb.fullKey;

        d.avfA = ea.res.merlinEstimate.avf();
        d.avfB = eb.res.merlinEstimate.avf();
        d.dAvf = d.avfB - d.avfA;
        d.dAvfCi = quadratureMargin(
            samplingMargin(ea.res.initialFaults, opts_.confidence),
            samplingMargin(eb.res.initialFaults, opts_.confidence));

        for (unsigned c = 0; c < faultsim::NUM_OUTCOMES; ++c) {
            const auto o = static_cast<faultsim::Outcome>(c);
            d.dClasses[c] =
                static_cast<std::int64_t>(eb.res.merlinEstimate.of(o)) -
                static_cast<std::int64_t>(ea.res.merlinEstimate.of(o));
            d.dClassFracs[c] = eb.res.merlinEstimate.fraction(o) -
                               ea.res.merlinEstimate.fraction(o);
            out.dClassTotals[c] += d.dClasses[c];
        }

        d.runsA = ea.res.injectionRuns;
        d.runsB = eb.res.injectionRuns;
        d.dRuns = static_cast<std::int64_t>(d.runsB) -
                  static_cast<std::int64_t>(d.runsA);
        d.injectionsA = ea.res.injections;
        d.injectionsB = eb.res.injections;
        d.dInjections = static_cast<std::int64_t>(d.injectionsB) -
                        static_cast<std::int64_t>(d.injectionsA);
        d.eeRateA = ea.res.earlyExitRate();
        d.eeRateB = eb.res.earlyExitRate();
        d.dEeRate = d.eeRateB - d.eeRateA;

        out.meanDAvf += d.dAvf;
        out.meanAbsDAvf += std::abs(d.dAvf);
        if (d.dAvfCi)
            ciSquares += *d.dAvfCi * *d.dAvfCi;
        else
            allMargins = false;
        out.dRuns += d.dRuns;
        runsTotalA += d.runsA;
        runsTotalB += d.runsB;
        exitsTotalA += ea.res.earlyExits;
        exitsTotalB += eb.res.earlyExits;

        out.deltas.push_back(std::move(d));
    }
    for (const auto &[joinKey, eb] : sideB) {
        if (sideA.find(joinKey) == sideA.end())
            out.onlyB.push_back(
                UnpairedCampaign{joinKey, eb.fullKey, eb.spec});
    }

    if (!out.deltas.empty()) {
        const double n = static_cast<double>(out.deltas.size());
        out.meanDAvf /= n;
        out.meanAbsDAvf /= n;
        if (allMargins)
            out.meanDAvfCi = std::sqrt(ciSquares) / n;
    }
    const auto pooledRate = [](std::uint64_t exits, std::uint64_t runs) {
        return runs ? static_cast<double>(exits) /
                          static_cast<double>(runs)
                    : 0.0;
    };
    out.dEeRate = pooledRate(exitsTotalB, runsTotalB) -
                  pooledRate(exitsTotalA, runsTotalA);
    return out;
}

Json
SuiteDiffResult::toJson() const
{
    Json doc = Json::object();
    doc.set("format", kDiffFormatTag);
    Json axisArr = Json::array();
    for (const std::string &knob : axis)
        axisArr.push(knob);
    doc.set("axis", axisArr);
    doc.set("confidence", confidence);
    doc.set("campaigns_a", static_cast<std::uint64_t>(campaignsA));
    doc.set("campaigns_b", static_cast<std::uint64_t>(campaignsB));
    doc.set("joined", static_cast<std::uint64_t>(deltas.size()));

    Json rows = Json::array();
    for (const CampaignDelta &d : deltas) {
        Json r = Json::object();
        r.set("join_key", d.joinKey);
        r.set("spec", d.maskedSpec);
        r.set("axis_a", d.axisA);
        r.set("axis_b", d.axisB);
        r.set("key_a", d.keyA);
        r.set("key_b", d.keyB);
        r.set("avf_a", d.avfA);
        r.set("avf_b", d.avfB);
        r.set("d_avf", d.dAvf);
        r.set("d_avf_ci", d.dAvfCi ? Json(*d.dAvfCi) : Json());
        r.set("d_classes", classDeltaJson(d.dClasses));
        r.set("d_class_fracs", classFracJson(d.dClassFracs));
        r.set("runs_a", d.runsA);
        r.set("runs_b", d.runsB);
        r.set("d_runs", d.dRuns);
        r.set("injections_a", d.injectionsA);
        r.set("injections_b", d.injectionsB);
        r.set("d_injections", d.dInjections);
        r.set("early_exit_rate_a", d.eeRateA);
        r.set("early_exit_rate_b", d.eeRateB);
        r.set("d_early_exit_rate", d.dEeRate);
        rows.push(r);
    }
    doc.set("deltas", rows);
    doc.set("only_a", unpairedJson(onlyA));
    doc.set("only_b", unpairedJson(onlyB));

    Json agg = Json::object();
    agg.set("mean_d_avf", meanDAvf);
    agg.set("mean_abs_d_avf", meanAbsDAvf);
    agg.set("mean_d_avf_ci", meanDAvfCi ? Json(*meanDAvfCi) : Json());
    agg.set("d_class_totals", classDeltaJson(dClassTotals));
    agg.set("d_runs", dRuns);
    agg.set("d_early_exit_rate", dEeRate);
    doc.set("aggregate", agg);
    return doc;
}

std::string
SuiteDiffResult::table() const
{
    std::string out;
    char line[256];
    const auto emit = [&](const char *fmt, auto... args) {
        std::snprintf(line, sizeof line, fmt, args...);
        out += line;
    };

    std::string axisNames;
    for (const std::string &knob : axis) {
        if (!axisNames.empty())
            axisNames += ',';
        axisNames += knob;
    }
    emit("axis: %s   confidence: %.3g%%\n",
         axisNames.empty() ? "(exact join)" : axisNames.c_str(),
         100.0 * confidence);
    emit("%-14s %-4s %-13s %14s %9s %9s %10s %9s %8s %8s\n", "workload",
         "tgt", "mode", "axis A->B", "AVF A%", "AVF B%", "dAVF pp",
         "+-CI pp", "dRuns", "dEE pp");
    for (const CampaignDelta &d : deltas) {
        const std::string axisAB =
            axisLabel(d.axisA) + " -> " + axisLabel(d.axisB);
        std::string mode = d.maskedSpec.strOr("mode", "*");
        if (mode == "grouping_only")
            mode = "grouping-only";
        char ci[32];
        if (d.dAvfCi)
            std::snprintf(ci, sizeof ci, "%9.3f", 100.0 * *d.dAvfCi);
        else
            std::snprintf(ci, sizeof ci, "%9s", "-");
        emit("%-14s %-4s %-13s %14s %9.3f %9.3f %+10.3f %s %+8lld "
             "%+8.2f\n",
             d.maskedSpec.strOr("workload", "*").c_str(),
             d.maskedSpec.strOr("structure", "*").c_str(), mode.c_str(),
             axisAB.c_str(), 100.0 * d.avfA, 100.0 * d.avfB,
             100.0 * d.dAvf, ci, static_cast<long long>(d.dRuns),
             100.0 * d.dEeRate);
    }
    emit("\n%zu campaigns joined (A: %zu, B: %zu; only-A: %zu, "
         "only-B: %zu)\n",
         deltas.size(), campaignsA, campaignsB, onlyA.size(),
         onlyB.size());
    if (!deltas.empty()) {
        if (meanDAvfCi) {
            emit("aggregate: mean dAVF %+.3f pp (+- %.3f pp at %.3g%%), "
                 "mean |dAVF| %.3f pp, dRuns %+lld, dEE %+.2f pp\n",
                 100.0 * meanDAvf, 100.0 * *meanDAvfCi,
                 100.0 * confidence, 100.0 * meanAbsDAvf,
                 static_cast<long long>(dRuns), 100.0 * dEeRate);
        } else {
            emit("aggregate: mean dAVF %+.3f pp (CI -: a zero-fault "
                 "side has no sampling margin), mean |dAVF| %.3f pp, "
                 "dRuns %+lld, dEE %+.2f pp\n",
                 100.0 * meanDAvf, 100.0 * meanAbsDAvf,
                 static_cast<long long>(dRuns), 100.0 * dEeRate);
        }
    }
    for (const UnpairedCampaign &u : onlyA)
        emit("only in A: %s (%s)\n",
             u.spec.strOr("workload", "?").c_str(), u.key.c_str());
    for (const UnpairedCampaign &u : onlyB)
        emit("only in B: %s (%s)\n",
             u.spec.strOr("workload", "?").c_str(), u.key.c_str());
    return out;
}

} // namespace merlin::sched
