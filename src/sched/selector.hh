/**
 * @file
 * Deterministic suite partitioning for distributed dispatch.
 *
 * A SpecSelector names one worker's share of a suite: "--select i/n"
 * keeps every spec whose manifest position is congruent to i mod n
 * (round-robin), "--select-hash i/n" keeps every spec whose content
 * hash is congruent to i mod n (invariant to manifest reordering, and
 * it lands repeated specs on the same worker).  For a fixed mode and
 * n, the selections 0/n .. n-1/n are disjoint and complete, so the
 * per-worker shard spills merge back into exactly the single-host
 * store (`merlin_cli store merge`).
 */

#ifndef MERLIN_SCHED_SELECTOR_HH
#define MERLIN_SCHED_SELECTOR_HH

#include <cstdint>
#include <string>

#include "io/json.hh"

namespace merlin::sched
{

struct SpecSelector
{
    enum class Mode : std::uint8_t
    {
        RoundRobin, ///< by manifest position (--select)
        Hash,       ///< by spec content hash (--select-hash)
    };

    Mode mode = Mode::RoundRobin;
    std::uint64_t index = 0;
    std::uint64_t count = 1;

    /**
     * Parse "i/n".  fatal() on anything that is not two strict
     * unsigned integers joined by one '/', on n == 0, and on i >= n —
     * an out-of-range worker would silently run nothing.
     */
    static SpecSelector parse(const std::string &text, Mode mode);

    /**
     * Does this selection keep the spec at manifest @p position whose
     * content hash is @p spec_key (CampaignSpec::key())?  Round-robin
     * looks only at the position, hash mode only at the key.
     */
    bool selects(std::size_t position, const std::string &spec_key) const;

    /** "0/3 round-robin" — for reports and diagnostics. */
    std::string describe() const;

    /** Canonical JSON, recorded in a worker's result store. */
    io::Json toJson() const;

    /** Inverse of toJson(); fatal() on malformed input. */
    static SpecSelector fromJson(const io::Json &j);

    bool operator==(const SpecSelector &o) const
    {
        return mode == o.mode && index == o.index && count == o.count;
    }
};

} // namespace merlin::sched

#endif // MERLIN_SCHED_SELECTOR_HH
