/**
 * @file
 * Differential sweeps: join two result stores campaign-by-campaign
 * and report what a configuration change did to reliability.
 *
 * A design-space exploration runs the same suite under configuration
 * A and configuration B (say L1D 64 KB vs 16 KB) into two stores.
 * SuiteDiff pairs the campaigns up by joining on the content hash of
 * each spec *modulo the swept axis* — the axis knobs (e.g. `l1d_kb`)
 * are masked out of the spec JSON before hashing, so two specs that
 * differ only in the sweep pair up and everything else (a different
 * seed, workload, sampling...) stays unpaired and is reported as
 * one-sided.
 *
 * Per joined pair the diff reports B - A deltas: ΔAVF, per-class
 * count and fraction deltas, Δinjection-runs and Δearly-exit rate —
 * each AVF/fraction delta with a confidence interval from the
 * paper's statistical sampling model (Leveugle et al.): each side's
 * estimate derives from an initial sample of n faults, so its margin
 * at confidence c is e = z(c) * sqrt(p(1-p)/n) with the conservative
 * p = 0.5, and the margin of the difference of the two independent
 * estimates combines in quadrature, sqrt(eA^2 + eB^2).
 *
 * Everything about the result is deterministic: rows are sorted by
 * join key, serialization uses the io::Json byte-stable dump, and
 * the inputs are themselves byte-identical for any --jobs/shard
 * order — so a diff of two sweeps is a comparable, committable
 * artifact.
 */

#ifndef MERLIN_SCHED_DIFF_HH
#define MERLIN_SCHED_DIFF_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "faultsim/fault.hh"
#include "io/result_store.hh"

namespace merlin::sched
{

/**
 * Conservative sampling margin of one AVF estimate derived from an
 * initial statistical sample of @p initial_faults faults: at
 * confidence c the estimate of any outcome fraction carries
 * e = z(c) * sqrt(p(1-p)/n) with the conservative p = 0.5 (Leveugle
 * et al.; MeRLiN's claim, verified by the accuracy figures, is that
 * pruning and grouping add no further error, so n is the INITIAL
 * fault count, not the injected representative count).  A zero-fault
 * side has no sample and therefore NO margin — the statistical model
 * simply does not apply — so the margin is absent, never 0.
 */
std::optional<double> samplingMargin(std::uint64_t initial_faults,
                                     double confidence);

/**
 * Margin of the difference of two independent estimates: the
 * quadrature combination sqrt(a^2 + b^2), absent when either side's
 * margin is (an absent side would silently understate the interval).
 */
std::optional<double> quadratureMargin(std::optional<double> a,
                                       std::optional<double> b);

struct DiffOptions
{
    /**
     * Spec members masked out of the join key (the swept knobs).
     * Every name must be a CampaignSpec JSON member (isSpecMember);
     * a typo here would silently empty the join, so it is fatal.
     * Empty = exact join: only byte-identical specs pair up.
     */
    std::vector<std::string> axis;
    /** Confidence level of the per-delta intervals (paper: 0.998). */
    double confidence = 0.998;
};

/** One joined campaign pair: every delta is B minus A. */
struct CampaignDelta
{
    std::string joinKey; ///< content hash of the axis-masked spec
    io::Json maskedSpec; ///< the shared (non-axis) spec members
    io::Json axisA;      ///< axis member -> value on side A
    io::Json axisB;      ///< axis member -> value on side B
    std::string keyA;    ///< full store key on side A
    std::string keyB;    ///< full store key on side B

    double avfA = 0.0; ///< MeRLiN-estimate AVF, side A
    double avfB = 0.0;
    double dAvf = 0.0; ///< avfB - avfA
    /**
     * CI half-width on dAvf (and any class fraction delta; same
     * conservative margin).  Absent — serialized as JSON null,
     * printed as "-" — when either side ran zero initial faults:
     * no sample, no margin (0 would claim false certainty).
     */
    std::optional<double> dAvfCi;

    /** Per-class deltas of the extrapolated estimate (Table-2 order). */
    std::array<std::int64_t, faultsim::NUM_OUTCOMES> dClasses{};
    std::array<double, faultsim::NUM_OUTCOMES> dClassFracs{};

    std::uint64_t runsA = 0; ///< distinct faulty runs simulated
    std::uint64_t runsB = 0;
    std::int64_t dRuns = 0;
    std::uint64_t injectionsA = 0; ///< injected representatives
    std::uint64_t injectionsB = 0;
    std::int64_t dInjections = 0;
    double eeRateA = 0.0; ///< early-exit rate
    double eeRateB = 0.0;
    double dEeRate = 0.0;
};

/** A campaign present in only one store (no partner across the axis). */
struct UnpairedCampaign
{
    std::string joinKey;
    std::string key; ///< full store key
    io::Json spec;   ///< the full spec as stored
};

struct SuiteDiffResult
{
    std::vector<std::string> axis;
    double confidence = 0.998;
    std::size_t campaignsA = 0; ///< entries in store A
    std::size_t campaignsB = 0;

    std::vector<CampaignDelta> deltas;      ///< sorted by joinKey
    std::vector<UnpairedCampaign> onlyA;    ///< sorted by joinKey
    std::vector<UnpairedCampaign> onlyB;

    // Aggregates over the joined pairs.
    double meanDAvf = 0.0;
    double meanAbsDAvf = 0.0;
    /**
     * sqrt(sum ci^2)/n — CI on meanDAvf.  Present only when EVERY
     * joined pair carries a margin; one absent pair would make the
     * aggregate silently understate the interval.
     */
    std::optional<double> meanDAvfCi;
    std::array<std::int64_t, faultsim::NUM_OUTCOMES> dClassTotals{};
    std::int64_t dRuns = 0;
    double dEeRate = 0.0; ///< pooled-rate delta (total exits / runs)

    /** Deterministic JSON document (fixed member order, sorted rows). */
    io::Json toJson() const;

    /** Deterministic human-readable table (what the CLI prints). */
    std::string table() const;
};

/**
 * Joins two result stores.  Construction validates the axis names;
 * run() performs the join and is fatal when either store holds two
 * entries that are identical modulo the axis (an ambiguous join:
 * the store itself contains the sweep).
 */
class SuiteDiff
{
  public:
    SuiteDiff(const io::ResultStore &a, const io::ResultStore &b,
              DiffOptions opts = {});

    SuiteDiffResult run() const;

  private:
    const io::ResultStore &a_;
    const io::ResultStore &b_;
    DiffOptions opts_;
};

} // namespace merlin::sched

#endif // MERLIN_SCHED_DIFF_HH
