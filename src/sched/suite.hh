/**
 * @file
 * Campaign-suite scheduling: run many (workload x structure x config)
 * campaigns — a whole paper figure's worth — on one shared thread pool.
 *
 * Execution model.  One looping driver task per pool worker pulls
 * campaigns off a shared cursor (so at most `jobs` campaigns are
 * resident at a time), runs each campaign's golden/profile and
 * grouping phases (profiles of different campaigns overlap), then
 * fans its injections into the SAME pool at per-injection granularity
 * through a base::TaskGroup.  The pool's queue therefore interleaves
 * injections of every in-flight campaign, and a driver whose chain
 * runs dry frees its worker to execute the queued injections of the
 * campaigns still running — cross-campaign work stealing without any
 * dedicated balancer.  Outcomes are a pure function of their fault,
 * so the suite's results are bit-identical for any --jobs value and
 * any schedule.
 *
 * Persistence.  With a store path set, every finished campaign is
 * written (atomically) to a ResultStore keyed by the spec's content
 * hash; reuseCached turns matching stored entries into cache hits that
 * skip the campaign entirely, which is also how an interrupted suite
 * resumes.
 */

#ifndef MERLIN_SCHED_SUITE_HH
#define MERLIN_SCHED_SUITE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/json.hh"
#include "merlin/campaign.hh"
#include "sched/selector.hh"
#include "workloads/workloads.hh"

namespace merlin::sched
{

/**
 * Everything that defines one campaign of a suite — a value type, so
 * it can be hashed, serialized into manifests/results, and compared.
 * The job count is deliberately NOT part of a spec: it never changes
 * the result, so it must not change the cache key.
 */
struct CampaignSpec
{
    enum class Mode : std::uint8_t
    {
        Estimate,     ///< MeRLiN estimate only (representatives)
        Truth,        ///< + ground-truth sweep of every survivor
        GroupingOnly, ///< fault-list reduction only, no injections
    };

    std::string workload; ///< bundled workload name (workloads::)
    uarch::Structure structure = uarch::Structure::RegisterFile;

    // Core geometry of the target structures (the rest of the core
    // keeps CoreConfig defaults, as everywhere in the evaluation).
    unsigned regs = 256;
    unsigned sqEntries = 64;
    unsigned l1dKb = 64;
    /** Instruction window; nullopt = the workload's suggested window. */
    std::optional<std::uint64_t> window;

    core::SamplingSpec sampling;
    core::GroupingOptions grouping;
    std::uint64_t seed = 1;
    Cycle checkpointInterval =
        faultsim::InjectionRunner::kDefaultCheckpointInterval;
    unsigned maxCheckpoints =
        faultsim::InjectionRunner::kDefaultMaxCheckpoints;
    /**
     * Engine knobs, part of the spec value and therefore of the
     * content hash: a result must record exactly how it was produced.
     * earlyExit, replay and memChunkBytes never change campaign
     * outcomes (early exit and the golden-trace replay fast path are
     * classification-preserving, the chunk size only shapes COW detach
     * cost); timeoutFactor DOES move the Timeout classification
     * boundary — the paper's rule is the default 3.
     */
    bool earlyExit = true;
    bool replay = true;
    unsigned timeoutFactor =
        faultsim::RunnerOptions::kDefaultTimeoutFactor;
    std::uint32_t memChunkBytes = isa::SegmentedMemory::kDefaultChunkBytes;

    Mode mode = Mode::Estimate;
    bool relyzer = false;   ///< Relyzer grouping baseline (Fig. 17)
    unsigned pathDepth = 5; ///< Relyzer control-path depth

    /** Campaign configuration for @p w (resolves the window). */
    core::CampaignConfig
    campaignConfig(const workloads::BuiltWorkload &w) const;

    /** Canonical JSON (fixed member order — the hash input). */
    io::Json toJson() const;

    /** Inverse of toJson(); unknown members are fatal(). */
    static CampaignSpec fromJson(const io::Json &j);

    /**
     * Content hash of the spec (16 hex digits, FNV-1a over the
     * canonical JSON): the ResultStore key.
     */
    std::string key() const;

    bool operator==(const CampaignSpec &o) const;
};

/**
 * Parse a suite manifest: `{"defaults": {...}, "campaigns": [{...}]}`
 * where every campaign entry overrides the (optional) defaults object
 * member-by-member.  Member names match CampaignSpec::toJson().
 */
std::vector<CampaignSpec> parseManifest(const io::Json &manifest);

/** Is @p name a CampaignSpec JSON member (a valid sweep axis knob)? */
bool isSpecMember(const std::string &name);

struct SuiteOptions
{
    /** Shared-pool worker threads (0 = hardware concurrency). */
    unsigned jobs = 1;
    /** Result-store path; empty = keep results in memory only. */
    std::string storePath;
    /**
     * Shard-spill directory (--out-dir); empty = off.  Every suite
     * campaign — run or served from the cache — is additionally
     * written as a single-entry store file `<dir>/<spec key>.json`,
     * so machines of a distributed sweep can each spill their share
     * and `merlin_cli store merge` folds the shards back into one
     * store byte-identical to a single-store run.
     */
    std::string shardDir;
    /**
     * Reuse stored results for matching spec keys instead of
     * re-running (--resume / cache hits).  Off = re-run everything and
     * overwrite.
     */
    bool reuseCached = false;
    /**
     * Section count for incremental campaigns (--sections; 0 = off).
     * With N > 0 every eligible campaign's golden run is cut into N
     * equal cycle intervals, each sampled fault is attributed to the
     * section containing its injection cycle, and the per-section
     * outcome slices are stored in the result store keyed at (spec
     * minus the swept knobs, currently {mem_chunk_bytes}) x section.
     * A later run whose spec differs only in a swept knob then serves
     * the stored sections as PARTIAL cache hits: only missing
     * sections' faults are re-injected, and the composed result is
     * byte-identical to a cold full run.  Eligible campaigns are
     * estimate-mode specs with reps_per_group == 1 (the paper's
     * configuration); others always run whole.  Deliberately NOT a
     * spec member — like jobs, it never changes a campaign's result,
     * so it must not change the cache key.
     */
    unsigned sections = 0;
    /**
     * Record wall-clock fields in the results.  Off zeroes them so
     * the serialized store is byte-identical across runs — the suite
     * determinism guarantee in testable form.
     */
    bool recordTiming = true;
    /**
     * Per-injection real-wall-clock watchdog in seconds (0 = off),
     * and what to do when the quarantine guard fires.  Operational
     * knobs, deliberately NOT spec members: a quarantined injection
     * is counted Crash either way, so they never change the bytes a
     * clean campaign stores — only whether a sick one survives.
     */
    double injectWallLimit = 0.0;
    bool quarantineFail = false;
    /**
     * Live-progress outputs (strictly out-of-band, never part of the
     * spec or the stored bytes): a periodic stderr line and/or an
     * atomically-rewritten progress.json sampled every
     * progressInterval seconds.  Both off by default.
     */
    double progressInterval = 1.0;
    bool progressStderr = false;
    std::string progressPath;
    /**
     * This worker's share of the suite (--select i/n /
     * --select-hash i/n); nullopt = run everything.  Applied before
     * dispatch: unselected specs are not run, not served from the
     * cache, and not spilled as shards; their SuiteResult slots stay
     * default-constructed with selected[i] == false.  The selection
     * is recorded in the store file, and resuming from a store that
     * records a DIFFERENT selection is fatal — two workers sharing
     * one store would clobber each other's share.  Entries of a
     * selection-free store (e.g. a copied single-host store) that
     * fall outside the selection are foreign: dropped on load so
     * they are neither re-spilled nor re-serialized.
     */
    std::optional<SpecSelector> select;
};

struct SuiteResult
{
    /** One result per spec, in spec order. */
    std::vector<core::CampaignResult> results;
    /** Which specs were served from the store without running. */
    std::vector<bool> cached;
    /**
     * Which specs this worker's selection kept (all of them without
     * --select).  results[i] is meaningful only when selected[i].
     */
    std::vector<bool> selected;
    /**
     * Per-spec section-store accounting (all zero when sectioning is
     * off or the spec is not section-eligible): how many of the
     * SuiteOptions::sections slices were served from the store and how
     * many had to run.  A whole-campaign cache hit on an eligible spec
     * counts as all sections hit.
     */
    std::vector<std::uint32_t> sectionsHit;
    std::vector<std::uint32_t> sectionsMissed;
    std::uint64_t campaignsRun = 0;
    /**
     * Injections this run simulated or replayed from journals (cache
     * hits excluded) — the numerator of the suite's injections/sec.
     */
    std::uint64_t injectionsSimulated = 0;
    double wallSeconds = 0.0;
};

/** Runs a list of CampaignSpecs as one shared-pool suite. */
class SuiteScheduler
{
  public:
    explicit SuiteScheduler(std::vector<CampaignSpec> specs,
                            SuiteOptions opts = {});

    /**
     * Execute the suite.  Campaign failures (e.g. an unknown workload
     * name) propagate as exceptions after the remaining campaigns
     * finish.
     */
    SuiteResult run();

    const std::vector<CampaignSpec> &specs() const { return specs_; }

  private:
    std::vector<CampaignSpec> specs_;
    SuiteOptions opts_;
};

} // namespace merlin::sched

#endif // MERLIN_SCHED_SUITE_HH
