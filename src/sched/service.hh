/**
 * @file
 * Campaign service: the suite engine, detached from the process
 * lifetime.
 *
 * CampaignService owns everything a suite run used to create and tear
 * down per invocation — the shared ThreadPool, the ResultStore, the
 * outcome-journal directory, the section tables and the built-workload
 * cache — and accepts campaign submissions at ANY time.  The one-shot
 * SuiteScheduler is now a thin submit-all-and-wait wrapper over it,
 * and merlin_serve keeps one instance resident behind a Unix socket.
 *
 * Semantics carried over unchanged from the batch scheduler (the
 * refactor contract is byte-identical stores and journals):
 *
 *   - at most pool-size campaigns are in flight at a time, driven by
 *     looping driver tasks whose injections fan into the SAME pool
 *     (cross-campaign work stealing);
 *   - with reuseCached, a submitted spec whose content hash is in the
 *     store is served from it without running, and section-eligible
 *     specs serve PARTIAL hits from the section tables;
 *   - every completed campaign is persisted (put + atomic save) under
 *     one store mutex, with optional single-entry shard spill;
 *   - a crash-safe outcome journal protects each running campaign, and
 *     is removed once the store save lands.
 *
 * New, service-only semantics:
 *
 *   - single-flight: concurrent submissions of the SAME spec (equal
 *     content hash) coalesce onto one simulation — determinism makes
 *     the result bytes safely shareable, so every subscriber gets the
 *     identical Outcome while inject.runs is paid once;
 *   - fairness: each submission names a client, and the drivers pick
 *     the next campaign round-robin across the per-client queues, so
 *     one tenant's thousand-spec sweep cannot starve another's single
 *     submission.
 */

#ifndef MERLIN_SCHED_SERVICE_HH
#define MERLIN_SCHED_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/threadpool.hh"
#include "io/result_store.hh"
#include "obs/progress.hh"
#include "sched/suite.hh"

namespace merlin::sched
{

/**
 * Can @p spec take part in sectioned (partial-hit) caching?  The
 * spec-level half of the test — the runtime half is
 * core::sectionable() on the prepared campaign.
 */
bool sectionEligible(const CampaignSpec &spec);

/**
 * The reduced spec a section table is keyed by: the full spec minus
 * the swept knobs (members a sweep varies WITHOUT changing campaign
 * outcomes, currently {mem_chunk_bytes}) plus the section count.
 */
io::Json reducedSpecFor(const CampaignSpec &spec, unsigned sections);
std::string reducedKeyFor(const CampaignSpec &spec, unsigned sections);

class CampaignService
{
  public:
    /** Process-lifetime configuration (one store, one pool). */
    struct Config
    {
        /** Shared-pool worker threads (0 = hardware concurrency). */
        unsigned jobs = 1;
        /** Result-store path; empty = keep results in memory only. */
        std::string storePath;
        /**
         * Outcome-journal directory; empty = journaling off.  The
         * batch wrapper derives it exactly as before (shard dir when
         * spilling, else storePath + ".journal"); the daemon keeps it
         * beside its store.
         */
        std::string journalDir;
        /** Section count for incremental campaigns (0 = off). */
        unsigned sections = 0;
        /** Zero wall-clock fields so stored bytes are reproducible. */
        bool recordTiming = true;
        /** Quarantine knobs (operational, never part of a spec). */
        double injectWallLimit = 0.0;
        bool quarantineFail = false;
        /**
         * Load an existing store file at construction.  The batch
         * wrapper sets this only under --resume (a cold suite
         * overwrites); the daemon always sets it — a warm cache is
         * its reason to exist.
         */
        bool loadStore = false;
        /**
         * Test seam: queue submissions without running them until
         * resume() — the deterministic way to exercise single-flight
         * coalescing.
         */
        bool startPaused = false;
    };

    enum class State : std::uint8_t
    {
        Queued,
        Running,
        Done,
        Failed,
        Cancelled,
    };

    static const char *stateName(State s);

    /** What a finished submission yields. */
    struct Outcome
    {
        core::CampaignResult result;
        /** Served from the store without running. */
        bool cached = false;
        /** Coalesced onto another submission's simulation. */
        bool coalesced = false;
        /** Section-store accounting (zero when sectioning is off). */
        std::uint32_t sectionsHit = 0;
        std::uint32_t sectionsMissed = 0;
    };

    /** Per-submission knobs (the per-client half of SuiteOptions). */
    struct SubmitOptions
    {
        /** Serve store hits instead of re-running. */
        bool reuseCached = false;
        /** Shard-spill directory; empty = off. */
        std::string shardDir;
        /** Fairness queue / telemetry label for this submitter. */
        std::string client = "local";
        /** Optional live-progress counters to bump (not owned). */
        obs::ProgressSink *progress = nullptr;
    };

    /**
     * Handle to one submission.  wait() blocks until the submission
     * reaches a terminal state; outcome() is valid in Done, error()
     * in Failed.  Tickets are shared_ptr-held and safe to wait from
     * any thread (including several threads on one ticket).
     */
    class Ticket
    {
        friend class CampaignService;

      public:
        const CampaignSpec &spec() const { return spec_; }
        const std::string &key() const { return key_; }

        State state() const;
        /** Block until Done / Failed / Cancelled; returns the state. */
        State wait();
        /** The result; fatal() unless state() == Done. */
        const Outcome &outcome() const;
        /** The failure; null unless state() == Failed. */
        std::exception_ptr error() const;

      private:
        Ticket(CampaignSpec spec, std::string key, SubmitOptions opts);
        void complete(State s, Outcome out, std::exception_ptr err);

        const CampaignSpec spec_;
        const std::string key_;
        const SubmitOptions opts_;
        mutable std::mutex mu_;
        std::condition_variable cv_;
        State state_ = State::Queued;
        Outcome outcome_;
        std::exception_ptr error_;
    };

    using TicketPtr = std::shared_ptr<Ticket>;

    /** Service-level accounting (monotonic except queued/running). */
    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t executed = 0;  ///< campaigns actually simulated
        std::uint64_t cacheHits = 0; ///< served whole from the store
        std::uint64_t coalesced = 0; ///< single-flight subscribers
        std::uint64_t failed = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t queued = 0;  ///< currently waiting for a driver
        std::uint64_t running = 0; ///< currently simulating
    };

    explicit CampaignService(Config cfg);

    /** Drains all accepted work (equivalent to drain()), then joins
     *  the pool. */
    ~CampaignService();

    CampaignService(const CampaignService &) = delete;
    CampaignService &operator=(const CampaignService &) = delete;

    const Config &config() const { return cfg_; }

    /**
     * Submit one campaign.  Returns immediately with a ticket; the
     * campaign is served from the store (reuseCached), coalesced onto
     * an identical in-flight submission, or queued.  Returns null
     * once shutdown has begun.
     */
    TicketPtr submit(const CampaignSpec &spec,
                     const SubmitOptions &opts);

    /**
     * Attach a new ticket to the in-flight submission for @p key
     * (single-flight subscribe by content hash); null when nothing
     * with that key is queued or running.
     */
    TicketPtr subscribe(const std::string &key);

    /**
     * Cancel a submission that has not started running.  @return true
     * when the ticket was cancelled; false when it already ran (or is
     * running — campaigns are never killed mid-flight, so their
     * journals always close cleanly).
     */
    bool cancel(const TicketPtr &ticket);

    /** Start a paused service's drivers (see Config::startPaused). */
    void resume();

    /** Block until no submission is queued or running. */
    void drain();

    /**
     * Stop accepting submissions (submit() returns null from here
     * on).  With @p cancel_queued, submissions no driver has picked
     * up yet are cancelled — the graceful-SIGTERM policy: running
     * campaigns complete and persist (their journals close and are
     * removed once the store save lands), queued ones are handed
     * back to their clients as Cancelled.  Call drain() after.
     */
    void beginShutdown(bool cancel_queued);

    bool draining() const;

    /**
     * Run @p fn with exclusive access to the result store (the batch
     * wrapper's selection canonicalization; the daemon's key
     * queries).  Must not call back into the service.
     */
    void withStore(const std::function<void(io::ResultStore &)> &fn);

    /** Where @p key currently is, for status queries: Queued/Running
     *  when in flight, Done when in the store, Cancelled never, and
     *  Failed never — failures are not remembered across tickets.
     *  @return true when the key is known at all. */
    bool keyState(const std::string &key, State &out);

    Stats stats() const;

  private:
    struct Job;
    struct WorkloadSlot;

    std::shared_ptr<const workloads::BuiltWorkload>
    workloadFor(const std::string &name);
    std::string journalPathFor(const CampaignSpec &spec) const;
    void spillShardLocked(const std::string &shard_dir,
                          const CampaignSpec &spec,
                          const core::CampaignResult &res,
                          const std::string &section_key = std::string(),
                          const io::ResultStore::SectionTable *table =
                              nullptr);
    void maybeSpawnDriverLocked();
    void driverLoop();
    std::shared_ptr<Job> popNextLocked();
    void runJob(Job &job);
    void runSectioned(Job &job, core::Campaign &camp,
                      core::PreparedCampaign prep);
    void settleLocked(const std::shared_ptr<Job> &job, State state,
                      std::exception_ptr err);
    std::vector<std::string> shardDirsOf(const Job &job);
    obs::ProgressSink *primaryProgress(const Job &job);

    const Config cfg_;
    base::ThreadPool pool_;

    io::ResultStore store_;
    mutable std::mutex storeMu_;

    mutable std::mutex mu_;
    std::condition_variable idleCv_;
    /** Per-client FIFO queues, picked round-robin for fairness. */
    std::map<std::string, std::deque<std::shared_ptr<Job>>> queues_;
    std::vector<std::string> clientOrder_; ///< first-seen rotation
    std::size_t rrNext_ = 0;
    /** Single-flight index: spec key -> queued/running job. */
    std::map<std::string, std::shared_ptr<Job>> inflight_;
    std::size_t activeDrivers_ = 0;
    std::size_t queuedJobs_ = 0;
    std::size_t runningJobs_ = 0;
    std::map<std::string, std::size_t> runningByClient_;
    bool paused_ = false;
    bool draining_ = false;
    Stats stats_;

    std::mutex wlMu_;
    std::map<std::string, std::unique_ptr<WorkloadSlot>> wlCache_;
};

} // namespace merlin::sched

#endif // MERLIN_SCHED_SERVICE_HH
