/**
 * @file
 * A loadable program image (output of the assembler).
 */

#ifndef MERLIN_ISA_PROGRAM_HH
#define MERLIN_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "isa/isa.hh"
#include "isa/memory.hh"

namespace merlin::isa
{

/** Text + data image with symbols, ready to load into a machine. */
struct Program
{
    std::string name;
    std::vector<std::uint8_t> text;   ///< encoded instructions
    std::vector<std::uint8_t> data;   ///< initialized data (.data)
    std::uint64_t bssSize = 0;        ///< zero-filled bytes after .data
    Addr entry = layout::TEXT_BASE;
    std::map<std::string, Addr> symbols;

    /** Address of a named symbol; fatal() if missing. */
    Addr symbol(const std::string &sym) const;

    /** Number of macro instructions in the text segment. */
    std::uint64_t
    instructionCount() const
    {
        return text.size() / INSN_BYTES;
    }

    /**
     * Build the canonical memory image (text/data/heap/stack).
     * @p chunk_bytes sets the image's copy-on-write granularity.
     */
    SegmentedMemory buildMemory(
        std::uint32_t chunk_bytes =
            SegmentedMemory::kDefaultChunkBytes) const;
};

} // namespace merlin::isa

#endif // MERLIN_ISA_PROGRAM_HH
