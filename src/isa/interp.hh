/**
 * @file
 * Functional reference interpreter for MRL-64.
 *
 * Executes macro instructions directly (no timing, no speculation).  It is
 * the semantic oracle: workload outputs are validated against C++
 * reference implementations through it, and the out-of-order core is
 * differentially tested against it.
 */

#ifndef MERLIN_ISA_INTERP_HH
#define MERLIN_ISA_INTERP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/memory.hh"
#include "isa/program.hh"
#include "isa/traps.hh"

namespace merlin::isa
{

/** Architectural outcome of a run (identical fields for interp and core). */
struct ArchResult
{
    TerminateReason reason = TerminateReason::Halted;
    int exitCode = 0;
    std::vector<std::uint8_t> output;
    std::vector<TrapEvent> traps;
    std::uint64_t instret = 0;   ///< committed macro instructions
    std::uint64_t uopsRetired = 0;

    /** Architectural equivalence (used by the outcome classifier). */
    bool
    sameArchOutcome(const ArchResult &o) const
    {
        return reason == o.reason && exitCode == o.exitCode &&
               output == o.output && traps == o.traps;
    }

    /** Exact equality, all fields (reconvergence check). */
    bool operator==(const ArchResult &) const = default;
};

/** Functional interpreter state + driver. */
class Interpreter
{
  public:
    explicit Interpreter(const Program &prog);

    /** Run until HALT, trap, or @p max_instr retired. */
    ArchResult run(std::uint64_t max_instr = 500'000'000);

    /** Single-step one macro instruction; false when the run ended. */
    bool step();

    const ArchResult &result() const { return result_; }
    std::uint64_t reg(unsigned idx) const { return regs_[idx]; }
    void setReg(unsigned idx, std::uint64_t v) { regs_[idx] = v; }
    Addr pc() const { return pc_; }
    SegmentedMemory &memory() { return mem_; }

  private:
    void raiseTrap(TrapKind kind);

    SegmentedMemory mem_;
    std::array<std::uint64_t, NUM_ARCH_REGS> regs_{};
    Addr pc_;
    bool done_ = false;
    ArchResult result_;
};

/** Convenience: assemble-free full run of a program. */
ArchResult interpret(const Program &prog,
                     std::uint64_t max_instr = 500'000'000);

} // namespace merlin::isa

#endif // MERLIN_ISA_INTERP_HH
