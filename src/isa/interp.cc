#include "isa/interp.hh"

#include "base/bits.hh"
#include "base/logging.hh"
#include "isa/exec.hh"
#include "isa/uops.hh"

namespace merlin::isa
{

Interpreter::Interpreter(const Program &prog)
    : mem_(prog.buildMemory()), pc_(prog.entry)
{
    regs_.fill(0);
    regs_[REG_SP] = layout::STACK_TOP;
}

void
Interpreter::raiseTrap(TrapKind kind)
{
    result_.traps.push_back(TrapEvent{kind, pc_});
    result_.reason = TerminateReason::Trapped;
    result_.exitCode = 128 + static_cast<int>(kind);
    done_ = true;
}

bool
Interpreter::step()
{
    if (done_)
        return false;

    std::uint64_t raw = 0;
    if (mem_.fetch(pc_, raw) != TrapKind::None) {
        raiseTrap(TrapKind::PcOutOfText);
        return false;
    }
    auto decoded = decode(raw);
    if (!decoded) {
        raiseTrap(TrapKind::IllegalInstruction);
        return false;
    }
    const Instruction &insn = *decoded;
    Addr next_pc = pc_ + INSN_BYTES;
    unsigned uops = 1;

    auto mem_read = [&](Addr a, unsigned sz, std::uint64_t &v) {
        TrapKind t = mem_.read(a, sz, v);
        if (t != TrapKind::None) {
            raiseTrap(t);
            return false;
        }
        return true;
    };
    auto mem_write = [&](Addr a, unsigned sz, std::uint64_t v) {
        TrapKind t = mem_.write(a, sz, v);
        if (t != TrapKind::None) {
            raiseTrap(t);
            return false;
        }
        return true;
    };
    auto alu = [&](std::uint64_t a, std::uint64_t b) -> bool {
        AluResult r = aluCompute(insn.op, a, b);
        if (r.divByZero) {
            raiseTrap(TrapKind::DivZero);
            return false;
        }
        regs_[insn.rd] = r.value;
        return true;
    };

    switch (insn.op) {
      case Opcode::NOP:
        break;

      case Opcode::ADD: case Opcode::SUB: case Opcode::AND: case Opcode::OR:
      case Opcode::XOR: case Opcode::SHL: case Opcode::SHR: case Opcode::SRA:
      case Opcode::MUL: case Opcode::MULH: case Opcode::DIV:
      case Opcode::REM: case Opcode::DIVU: case Opcode::REMU:
      case Opcode::SLT: case Opcode::SLTU:
        if (!alu(regs_[insn.rs1], regs_[insn.rs2]))
            return false;
        break;

      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SHLI: case Opcode::SHRI:
      case Opcode::SRAI: case Opcode::SLTI:
        if (!alu(regs_[insn.rs1], static_cast<std::int64_t>(insn.imm)))
            return false;
        break;

      case Opcode::MOVI:
        regs_[insn.rd] = static_cast<std::int64_t>(insn.imm);
        break;
      case Opcode::MOVHI:
        regs_[insn.rd] =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(insn.imm))
             << 32) |
            (regs_[insn.rd] & 0xffffffffULL);
        break;

      case Opcode::LDB: case Opcode::LDBU: case Opcode::LDH:
      case Opcode::LDHU: case Opcode::LDW: case Opcode::LDWU:
      case Opcode::LDD: {
        StaticUop u[MAX_UOPS_PER_MACRO];
        expand(insn, pc_, u);
        const Addr a = regs_[insn.rs1] + insn.imm;
        std::uint64_t v = 0;
        if (!mem_read(a, u[0].memSize, v))
            return false;
        regs_[insn.rd] = u[0].loadSigned
                             ? static_cast<std::uint64_t>(
                                   signExtend(v, u[0].memSize * 8))
                             : v;
        break;
      }

      case Opcode::STB: case Opcode::STH: case Opcode::STW:
      case Opcode::STD: {
        static const unsigned sizes[] = {1, 2, 4, 8};
        const unsigned sz =
            sizes[static_cast<int>(insn.op) - static_cast<int>(Opcode::STB)];
        if (!mem_write(regs_[insn.rs1] + insn.imm, sz, regs_[insn.rs2]))
            return false;
        break;
      }

      case Opcode::LDADD: {
        const Addr a = regs_[insn.rs1] + insn.imm;
        std::uint64_t v = 0;
        if (!mem_read(a, 8, v))
            return false;
        regs_[insn.rd] += v;
        uops = 2;
        break;
      }
      case Opcode::MEMADD: {
        const Addr a = regs_[insn.rs1] + insn.imm;
        std::uint64_t v = 0;
        if (!mem_read(a, 8, v))
            return false;
        if (!mem_write(a, 8, v + regs_[insn.rs2]))
            return false;
        uops = 3;
        break;
      }
      case Opcode::PUSH: {
        regs_[REG_SP] -= 8;
        if (!mem_write(regs_[REG_SP], 8, regs_[insn.rs2]))
            return false;
        uops = 2;
        break;
      }
      case Opcode::POP: {
        std::uint64_t v = 0;
        if (!mem_read(regs_[REG_SP], 8, v))
            return false;
        regs_[insn.rd] = v;
        regs_[REG_SP] += 8;
        uops = 2;
        break;
      }

      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        if (branchTaken(insn.op, regs_[insn.rs1], regs_[insn.rs2]))
            next_pc = static_cast<std::uint32_t>(insn.imm);
        break;

      case Opcode::JMP:
        next_pc = static_cast<std::uint32_t>(insn.imm);
        break;
      case Opcode::JR:
        next_pc = regs_[insn.rs1];
        break;
      case Opcode::CALL:
        regs_[REG_RA] = pc_ + INSN_BYTES;
        next_pc = static_cast<std::uint32_t>(insn.imm);
        uops = 2;
        break;
      case Opcode::CALLR: {
        const Addr target = regs_[insn.rs1];
        regs_[REG_RA] = pc_ + INSN_BYTES;
        next_pc = target;
        uops = 3;
        break;
      }

      case Opcode::OUTB:
        result_.output.push_back(
            static_cast<std::uint8_t>(regs_[insn.rs2] & 0xff));
        break;
      case Opcode::OUTD: {
        std::uint8_t buf[8];
        storeLE(buf, regs_[insn.rs2], 8);
        result_.output.insert(result_.output.end(), buf, buf + 8);
        break;
      }

      case Opcode::TRAPNZ:
        if (regs_[insn.rs1] != 0) {
            raiseTrap(TrapKind::DetectedError);
            return false;
        }
        break;

      case Opcode::HALT:
        result_.reason = TerminateReason::Halted;
        result_.exitCode = insn.imm;
        result_.instret += 1;
        result_.uopsRetired += 1;
        done_ = true;
        return false;

      default:
        raiseTrap(TrapKind::IllegalInstruction);
        return false;
    }

    result_.instret += 1;
    result_.uopsRetired += uops;
    pc_ = next_pc;
    return true;
}

ArchResult
Interpreter::run(std::uint64_t max_instr)
{
    while (!done_) {
        if (result_.instret >= max_instr) {
            result_.reason = TerminateReason::CycleLimit;
            done_ = true;
            break;
        }
        step();
    }
    return result_;
}

ArchResult
interpret(const Program &prog, std::uint64_t max_instr)
{
    Interpreter in(prog);
    return in.run(max_instr);
}

} // namespace merlin::isa
