/**
 * @file
 * Shared scalar semantics of MRL-64 operations.
 *
 * Both the functional interpreter and the out-of-order core call these
 * helpers so the two models cannot diverge on arithmetic corner cases
 * (shift-amount masking, signed division overflow, ...).
 */

#ifndef MERLIN_ISA_EXEC_HH
#define MERLIN_ISA_EXEC_HH

#include <cstdint>

#include "base/logging.hh"
#include "isa/isa.hh"

namespace merlin::isa
{

/** Result of an ALU-class computation. */
struct AluResult
{
    std::uint64_t value = 0;
    bool divByZero = false;
};

/**
 * Compute an ALU/Mul/Div operation.  @p a is rs1 (or the merge source for
 * MOVHI), @p b is rs2 or the immediate, depending on the opcode's form.
 */
inline AluResult
aluCompute(Opcode op, std::uint64_t a, std::uint64_t b)
{
    using U = std::uint64_t;
    using S = std::int64_t;
    AluResult r;
    switch (op) {
      case Opcode::ADD: case Opcode::ADDI: r.value = a + b; break;
      case Opcode::SUB:                    r.value = a - b; break;
      case Opcode::AND: case Opcode::ANDI: r.value = a & b; break;
      case Opcode::OR:  case Opcode::ORI:  r.value = a | b; break;
      case Opcode::XOR: case Opcode::XORI: r.value = a ^ b; break;
      case Opcode::SHL: case Opcode::SHLI: r.value = a << (b & 63); break;
      case Opcode::SHR: case Opcode::SHRI: r.value = a >> (b & 63); break;
      case Opcode::SRA: case Opcode::SRAI:
        r.value = static_cast<U>(static_cast<S>(a) >> (b & 63));
        break;
      case Opcode::MUL: r.value = a * b; break;
      case Opcode::MULH: {
        // High 64 bits of the signed 128-bit product.
        __int128 p = static_cast<__int128>(static_cast<S>(a)) *
                     static_cast<__int128>(static_cast<S>(b));
        r.value = static_cast<U>(p >> 64);
        break;
      }
      case Opcode::DIV:
        if (b == 0) {
            r.divByZero = true;
        } else if (static_cast<S>(a) == INT64_MIN &&
                   static_cast<S>(b) == -1) {
            r.value = a; // overflow wraps, x86-free definition
        } else {
            r.value = static_cast<U>(static_cast<S>(a) / static_cast<S>(b));
        }
        break;
      case Opcode::REM:
        if (b == 0) {
            r.divByZero = true;
        } else if (static_cast<S>(a) == INT64_MIN &&
                   static_cast<S>(b) == -1) {
            r.value = 0;
        } else {
            r.value = static_cast<U>(static_cast<S>(a) % static_cast<S>(b));
        }
        break;
      case Opcode::DIVU:
        if (b == 0)
            r.divByZero = true;
        else
            r.value = a / b;
        break;
      case Opcode::REMU:
        if (b == 0)
            r.divByZero = true;
        else
            r.value = a % b;
        break;
      case Opcode::SLT: case Opcode::SLTI:
        r.value = static_cast<S>(a) < static_cast<S>(b) ? 1 : 0;
        break;
      case Opcode::SLTU: r.value = a < b ? 1 : 0; break;
      case Opcode::MOVI: r.value = b; break;
      case Opcode::MOVHI:
        r.value = (b << 32) | (a & 0xffffffffULL);
        break;
      default:
        panic("aluCompute: non-ALU opcode ", opcodeName(op));
    }
    return r;
}

/** Evaluate a conditional branch. */
inline bool
branchTaken(Opcode op, std::uint64_t a, std::uint64_t b)
{
    using S = std::int64_t;
    switch (op) {
      case Opcode::BEQ:  return a == b;
      case Opcode::BNE:  return a != b;
      case Opcode::BLT:  return static_cast<S>(a) < static_cast<S>(b);
      case Opcode::BGE:  return static_cast<S>(a) >= static_cast<S>(b);
      case Opcode::BLTU: return a < b;
      case Opcode::BGEU: return a >= b;
      default:
        panic("branchTaken: non-branch opcode ", opcodeName(op));
    }
}

} // namespace merlin::isa

#endif // MERLIN_ISA_EXEC_HH
