#include "isa/memory.hh"

#include <cstring>

#include "base/bits.hh"
#include "base/logging.hh"
#include "isa/isa.hh"

namespace merlin::isa
{

void
SegmentedMemory::addSegment(Addr base, std::uint64_t size,
                            std::uint8_t perms)
{
    for (const auto &s : segments_) {
        const bool overlap =
            base < s.base + s.bytes.size() && s.base < base + size;
        if (overlap)
            fatal("overlapping memory segments");
    }
    Segment seg;
    seg.base = base;
    seg.perms = perms;
    seg.bytes.assign(size, 0);
    segments_.push_back(std::move(seg));
}

const SegmentedMemory::Segment *
SegmentedMemory::find(Addr addr, unsigned len) const
{
    for (const auto &s : segments_) {
        if (addr >= s.base && addr + len <= s.base + s.bytes.size())
            return &s;
    }
    return nullptr;
}

TrapKind
SegmentedMemory::read(Addr addr, unsigned size, std::uint64_t &value) const
{
    if (!isAligned(addr, size))
        return TrapKind::Misaligned;
    const Segment *s = find(addr, size);
    if (!s || !(s->perms & PermRead))
        return TrapKind::Segfault;
    value = loadLE(s->bytes.data() + (addr - s->base), size);
    return TrapKind::None;
}

TrapKind
SegmentedMemory::write(Addr addr, unsigned size, std::uint64_t value)
{
    if (!isAligned(addr, size))
        return TrapKind::Misaligned;
    Segment *s = const_cast<Segment *>(find(addr, size));
    if (!s || !(s->perms & PermWrite))
        return TrapKind::Segfault;
    storeLE(s->bytes.data() + (addr - s->base), value, size);
    return TrapKind::None;
}

TrapKind
SegmentedMemory::fetch(Addr addr, std::uint64_t &raw) const
{
    if (!isAligned(addr, INSN_BYTES))
        return TrapKind::PcOutOfText;
    const Segment *s = find(addr, INSN_BYTES);
    if (!s || !(s->perms & PermExec))
        return TrapKind::PcOutOfText;
    raw = loadLE(s->bytes.data() + (addr - s->base), INSN_BYTES);
    return TrapKind::None;
}

TrapKind
SegmentedMemory::readBlock(Addr addr, std::uint8_t *out, unsigned len) const
{
    const Segment *s = find(addr, len);
    if (!s || !(s->perms & (PermRead | PermExec)))
        return TrapKind::Segfault;
    std::memcpy(out, s->bytes.data() + (addr - s->base), len);
    return TrapKind::None;
}

TrapKind
SegmentedMemory::writeBlock(Addr addr, const std::uint8_t *in, unsigned len)
{
    Segment *s = const_cast<Segment *>(find(addr, len));
    if (!s)
        return TrapKind::Segfault;
    // Write-backs of text lines are legal: L2 holds both I and D lines.
    std::memcpy(s->bytes.data() + (addr - s->base), in, len);
    return TrapKind::None;
}

TrapKind
SegmentedMemory::check(Addr addr, unsigned size, bool for_write) const
{
    if (!isAligned(addr, size))
        return TrapKind::Misaligned;
    const Segment *s = find(addr, size);
    if (!s || !(s->perms & (for_write ? PermWrite : PermRead)))
        return TrapKind::Segfault;
    return TrapKind::None;
}

std::uint8_t *
SegmentedMemory::rawAt(Addr addr, unsigned len)
{
    Segment *s = const_cast<Segment *>(find(addr, len));
    return s ? s->bytes.data() + (addr - s->base) : nullptr;
}

const std::uint8_t *
SegmentedMemory::rawAt(Addr addr, unsigned len) const
{
    const Segment *s = find(addr, len);
    return s ? s->bytes.data() + (addr - s->base) : nullptr;
}

bool
SegmentedMemory::contentEquals(const SegmentedMemory &other) const
{
    if (segments_.size() != other.segments_.size())
        return false;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        if (segments_[i].base != other.segments_[i].base ||
            segments_[i].bytes != other.segments_[i].bytes) {
            return false;
        }
    }
    return true;
}

const char *
trapKindName(TrapKind k)
{
    switch (k) {
      case TrapKind::None:               return "none";
      case TrapKind::DivZero:            return "div-zero";
      case TrapKind::DetectedError:      return "detected-error";
      case TrapKind::Segfault:           return "segfault";
      case TrapKind::Misaligned:         return "misaligned";
      case TrapKind::IllegalInstruction: return "illegal-instruction";
      case TrapKind::PcOutOfText:        return "pc-out-of-text";
      default:                           return "<bad>";
    }
}

} // namespace merlin::isa
