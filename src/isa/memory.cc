#include "isa/memory.hh"

#include <cstring>

#include "base/bits.hh"
#include "base/logging.hh"
#include "isa/isa.hh"

namespace merlin::isa
{

SegmentedMemory::SegmentedMemory(std::uint32_t chunk_bytes)
    : chunkBytes_(chunk_bytes)
{
    MERLIN_ASSERT(isValidChunkBytes(chunk_bytes),
                  "memory chunk size must be a power of two >= 64");
}

void
SegmentedMemory::addSegment(Addr base, std::uint64_t size,
                            std::uint8_t perms)
{
    // Chunked storage indexes by (addr - base); a 64-byte-aligned base
    // keeps aligned scalars and cache lines inside single chunks.
    if (base % 64 != 0)
        fatal("segment base must be 64-byte aligned");
    for (const auto &s : segments_) {
        const bool overlap = base < s.base + s.size && s.base < base + size;
        if (overlap)
            fatal("overlapping memory segments");
    }
    Segment seg;
    seg.base = base;
    seg.size = size;
    seg.perms = perms;
    seg.bytes = base::CowBytes(size, chunkBytes_);
    segments_.push_back(std::move(seg));
}

const SegmentedMemory::Segment *
SegmentedMemory::find(Addr addr, unsigned len) const
{
    for (const auto &s : segments_) {
        if (addr >= s.base && addr + len <= s.base + s.size)
            return &s;
    }
    return nullptr;
}

SegmentedMemory::Segment *
SegmentedMemory::find(Addr addr, unsigned len)
{
    return const_cast<Segment *>(
        static_cast<const SegmentedMemory *>(this)->find(addr, len));
}

TrapKind
SegmentedMemory::read(Addr addr, unsigned size, std::uint64_t &value) const
{
    if (!isAligned(addr, size))
        return TrapKind::Misaligned;
    const Segment *s = find(addr, size);
    if (!s || !(s->perms & PermRead))
        return TrapKind::Segfault;
    // An aligned scalar never crosses a chunk (chunks are >= 64 bytes).
    value = loadLE(s->bytes.readPtr(addr - s->base, size), size);
    return TrapKind::None;
}

TrapKind
SegmentedMemory::write(Addr addr, unsigned size, std::uint64_t value)
{
    if (!isAligned(addr, size))
        return TrapKind::Misaligned;
    Segment *s = find(addr, size);
    if (!s || !(s->perms & PermWrite))
        return TrapKind::Segfault;
    storeLE(s->bytes.writePtr(addr - s->base, size), value, size);
    return TrapKind::None;
}

TrapKind
SegmentedMemory::fetch(Addr addr, std::uint64_t &raw) const
{
    if (!isAligned(addr, INSN_BYTES))
        return TrapKind::PcOutOfText;
    const Segment *s = find(addr, INSN_BYTES);
    if (!s || !(s->perms & PermExec))
        return TrapKind::PcOutOfText;
    raw = loadLE(s->bytes.readPtr(addr - s->base, INSN_BYTES), INSN_BYTES);
    return TrapKind::None;
}

TrapKind
SegmentedMemory::readBlock(Addr addr, std::uint8_t *out, unsigned len) const
{
    const Segment *s = find(addr, len);
    if (!s || !(s->perms & (PermRead | PermExec)))
        return TrapKind::Segfault;
    s->bytes.read(addr - s->base, out, len);
    return TrapKind::None;
}

TrapKind
SegmentedMemory::writeBlock(Addr addr, const std::uint8_t *in, unsigned len)
{
    Segment *s = find(addr, len);
    if (!s)
        return TrapKind::Segfault;
    // Write-backs of text lines are legal: L2 holds both I and D lines.
    s->bytes.write(addr - s->base, in, len);
    return TrapKind::None;
}

TrapKind
SegmentedMemory::check(Addr addr, unsigned size, bool for_write) const
{
    if (!isAligned(addr, size))
        return TrapKind::Misaligned;
    const Segment *s = find(addr, size);
    if (!s || !(s->perms & (for_write ? PermWrite : PermRead)))
        return TrapKind::Segfault;
    return TrapKind::None;
}

bool
SegmentedMemory::contentEquals(const SegmentedMemory &other) const
{
    if (segments_.size() != other.segments_.size())
        return false;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        if (segments_[i].base != other.segments_[i].base ||
            !segments_[i].bytes.contentEquals(other.segments_[i].bytes)) {
            return false;
        }
    }
    return true;
}

std::uint64_t
SegmentedMemory::contentBytes() const
{
    std::uint64_t n = 0;
    for (const auto &s : segments_)
        n += s.size;
    return n;
}

std::size_t
SegmentedMemory::sharedChunksWith(const SegmentedMemory &other) const
{
    if (segments_.size() != other.segments_.size())
        return 0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < segments_.size(); ++i)
        n += segments_[i].bytes.sharedChunksWith(other.segments_[i].bytes);
    return n;
}

std::uint64_t
SegmentedMemory::bytesDetached() const
{
    std::uint64_t n = 0;
    for (const auto &s : segments_)
        n += s.bytes.bytesDetached();
    return n;
}

void
SegmentedMemory::detachAll()
{
    for (auto &s : segments_)
        s.bytes.detachAll();
}

const char *
trapKindName(TrapKind k)
{
    switch (k) {
      case TrapKind::None:               return "none";
      case TrapKind::DivZero:            return "div-zero";
      case TrapKind::DetectedError:      return "detected-error";
      case TrapKind::Segfault:           return "segfault";
      case TrapKind::Misaligned:         return "misaligned";
      case TrapKind::IllegalInstruction: return "illegal-instruction";
      case TrapKind::PcOutOfText:        return "pc-out-of-text";
      default:                           return "<bad>";
    }
}

} // namespace merlin::isa
