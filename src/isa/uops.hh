/**
 * @file
 * Macro-op to micro-op expansion.
 *
 * Each macro instruction expands to 1..3 micro-ops.  The index of a uop
 * within its macro-op is the uPC that, together with the macro RIP,
 * identifies the static micro-instruction MeRLiN groups faults by.
 */

#ifndef MERLIN_ISA_UOPS_HH
#define MERLIN_ISA_UOPS_HH

#include <cstdint>

#include "isa/isa.hh"

namespace merlin::isa
{

/** Functional class of a micro-op (selects FU and latency). */
enum class UopKind : std::uint8_t
{
    Alu,     ///< single-cycle integer op (incl. register moves)
    Mul,     ///< pipelined multiplier
    Div,     ///< unpipelined divider
    Load,    ///< memory read
    Store,   ///< memory write (address+data into the store queue)
    Branch,  ///< conditional branch
    Jump,    ///< unconditional direct/indirect jump
    Out,     ///< architectural output
    Trap,    ///< software-raised detected-error check
    Halt,    ///< program termination
    Nop,
};

/** Maximum uops a macro-op can expand to. */
constexpr unsigned MAX_UOPS_PER_MACRO = 3;

/**
 * One static micro-op.  Register identifiers live in the renameable
 * namespace (0..33, REG_NONE when absent).
 */
struct StaticUop
{
    UopKind kind = UopKind::Nop;
    /** Semantic flavor: which ALU op / load width / branch condition. */
    Opcode base = Opcode::NOP;
    std::uint8_t dst = REG_NONE;
    std::uint8_t src1 = REG_NONE;
    std::uint8_t src2 = REG_NONE;
    /** Immediate; holds the return address for link uops. */
    std::int64_t imm = 0;
    /** Access size in bytes for Load/Store/Out. */
    std::uint8_t memSize = 0;
    /** Sign-extend the loaded value. */
    bool loadSigned = false;
    /** Control-flow hints for the return-address-stack predictor. */
    bool isCall = false;
    bool isReturn = false;

    bool operator==(const StaticUop &) const = default;
};

/**
 * Expand @p insn (fetched from @p pc) into micro-ops.
 *
 * @return number of uops written to @p out (1..MAX_UOPS_PER_MACRO).
 */
unsigned expand(const Instruction &insn, Addr pc,
                StaticUop out[MAX_UOPS_PER_MACRO]);

} // namespace merlin::isa

#endif // MERLIN_ISA_UOPS_HH
