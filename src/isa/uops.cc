#include "isa/uops.hh"

#include "base/logging.hh"

namespace merlin::isa
{

namespace
{

StaticUop
aluUop(Opcode base, unsigned dst, unsigned src1, unsigned src2,
       std::int64_t imm = 0)
{
    StaticUop u;
    u.kind = (base == Opcode::MUL || base == Opcode::MULH) ? UopKind::Mul
             : (base == Opcode::DIV || base == Opcode::REM ||
                base == Opcode::DIVU || base == Opcode::REMU)
                 ? UopKind::Div
                 : UopKind::Alu;
    u.base = base;
    u.dst = dst;
    u.src1 = src1;
    u.src2 = src2;
    u.imm = imm;
    return u;
}

StaticUop
loadUop(Opcode width, unsigned dst, unsigned base_reg, std::int64_t imm)
{
    StaticUop u;
    u.kind = UopKind::Load;
    u.base = width;
    u.dst = dst;
    u.src1 = base_reg;
    u.imm = imm;
    switch (width) {
      case Opcode::LDB:  u.memSize = 1; u.loadSigned = true;  break;
      case Opcode::LDBU: u.memSize = 1; u.loadSigned = false; break;
      case Opcode::LDH:  u.memSize = 2; u.loadSigned = true;  break;
      case Opcode::LDHU: u.memSize = 2; u.loadSigned = false; break;
      case Opcode::LDW:  u.memSize = 4; u.loadSigned = true;  break;
      case Opcode::LDWU: u.memSize = 4; u.loadSigned = false; break;
      case Opcode::LDD:  u.memSize = 8; u.loadSigned = false; break;
      default: panic("loadUop: bad width opcode");
    }
    return u;
}

StaticUop
storeUop(Opcode width, unsigned data_reg, unsigned base_reg,
         std::int64_t imm)
{
    StaticUop u;
    u.kind = UopKind::Store;
    u.base = width;
    u.src1 = base_reg;
    u.src2 = data_reg;
    u.imm = imm;
    switch (width) {
      case Opcode::STB: u.memSize = 1; break;
      case Opcode::STH: u.memSize = 2; break;
      case Opcode::STW: u.memSize = 4; break;
      case Opcode::STD: u.memSize = 8; break;
      default: panic("storeUop: bad width opcode");
    }
    return u;
}

} // namespace

unsigned
expand(const Instruction &insn, Addr pc, StaticUop out[MAX_UOPS_PER_MACRO])
{
    const auto op = insn.op;
    const std::int64_t ret_addr =
        static_cast<std::int64_t>(pc + INSN_BYTES);

    switch (op) {
      case Opcode::NOP: {
        out[0] = StaticUop{};
        return 1;
      }

      // Plain ALU, register or immediate form: one uop.
      case Opcode::ADD: case Opcode::SUB: case Opcode::AND: case Opcode::OR:
      case Opcode::XOR: case Opcode::SHL: case Opcode::SHR: case Opcode::SRA:
      case Opcode::MUL: case Opcode::MULH: case Opcode::DIV:
      case Opcode::REM: case Opcode::DIVU: case Opcode::REMU:
      case Opcode::SLT: case Opcode::SLTU: {
        out[0] = aluUop(op, insn.rd, insn.rs1, insn.rs2);
        return 1;
      }
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SHLI: case Opcode::SHRI:
      case Opcode::SRAI: case Opcode::SLTI: {
        out[0] = aluUop(op, insn.rd, insn.rs1, REG_NONE, insn.imm);
        return 1;
      }
      case Opcode::MOVI: {
        out[0] = aluUop(op, insn.rd, REG_NONE, REG_NONE, insn.imm);
        return 1;
      }
      case Opcode::MOVHI: {
        // Reads its own destination (merges the low half).
        out[0] = aluUop(op, insn.rd, insn.rd, REG_NONE, insn.imm);
        return 1;
      }

      case Opcode::LDB: case Opcode::LDBU: case Opcode::LDH:
      case Opcode::LDHU: case Opcode::LDW: case Opcode::LDWU:
      case Opcode::LDD: {
        out[0] = loadUop(op, insn.rd, insn.rs1, insn.imm);
        return 1;
      }
      case Opcode::STB: case Opcode::STH: case Opcode::STW:
      case Opcode::STD: {
        out[0] = storeUop(op, insn.rs2, insn.rs1, insn.imm);
        return 1;
      }

      case Opcode::LDADD: {
        // uop0: tmp0 = mem[rs1+imm];  uop1: rd += tmp0
        out[0] = loadUop(Opcode::LDD, REG_TMP0, insn.rs1, insn.imm);
        out[1] = aluUop(Opcode::ADD, insn.rd, insn.rd, REG_TMP0);
        return 2;
      }
      case Opcode::MEMADD: {
        // uop0: tmp0 = mem[rs1+imm];  uop1: tmp0 += rs2;
        // uop2: mem[rs1+imm] = tmp0
        out[0] = loadUop(Opcode::LDD, REG_TMP0, insn.rs1, insn.imm);
        out[1] = aluUop(Opcode::ADD, REG_TMP0, REG_TMP0, insn.rs2);
        out[2] = storeUop(Opcode::STD, REG_TMP0, insn.rs1, insn.imm);
        return 3;
      }
      case Opcode::PUSH: {
        // uop0: sp -= 8;  uop1: mem[sp] = rs2
        out[0] = aluUop(Opcode::ADDI, REG_SP, REG_SP, REG_NONE, -8);
        out[1] = storeUop(Opcode::STD, insn.rs2, REG_SP, 0);
        return 2;
      }
      case Opcode::POP: {
        // uop0: rd = mem[sp];  uop1: sp += 8
        out[0] = loadUop(Opcode::LDD, insn.rd, REG_SP, 0);
        out[1] = aluUop(Opcode::ADDI, REG_SP, REG_SP, REG_NONE, 8);
        return 2;
      }

      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU: {
        StaticUop u;
        u.kind = UopKind::Branch;
        u.base = op;
        u.src1 = insn.rs1;
        u.src2 = insn.rs2;
        u.imm = insn.imm;
        out[0] = u;
        return 1;
      }
      case Opcode::JMP: {
        StaticUop u;
        u.kind = UopKind::Jump;
        u.base = op;
        u.imm = insn.imm;
        out[0] = u;
        return 1;
      }
      case Opcode::JR: {
        StaticUop u;
        u.kind = UopKind::Jump;
        u.base = op;
        u.src1 = insn.rs1;
        u.isReturn = (insn.rs1 == REG_RA);
        out[0] = u;
        return 1;
      }
      case Opcode::CALL: {
        // uop0: ra = pc + 8;  uop1: pc = imm
        out[0] = aluUop(Opcode::MOVI, REG_RA, REG_NONE, REG_NONE, ret_addr);
        StaticUop j;
        j.kind = UopKind::Jump;
        j.base = Opcode::JMP;
        j.imm = insn.imm;
        j.isCall = true;
        out[1] = j;
        return 2;
      }
      case Opcode::CALLR: {
        // uop0: tmp0 = rs1 (so CALLR ra is well defined);
        // uop1: ra = pc + 8;  uop2: pc = tmp0
        out[0] = aluUop(Opcode::ADDI, REG_TMP0, insn.rs1, REG_NONE, 0);
        out[1] = aluUop(Opcode::MOVI, REG_RA, REG_NONE, REG_NONE, ret_addr);
        StaticUop j;
        j.kind = UopKind::Jump;
        j.base = Opcode::JR;
        j.src1 = REG_TMP0;
        j.isCall = true;
        out[2] = j;
        return 3;
      }

      case Opcode::OUTB: case Opcode::OUTD: {
        StaticUop u;
        u.kind = UopKind::Out;
        u.base = op;
        u.src2 = insn.rs2;
        u.memSize = (op == Opcode::OUTB) ? 1 : 8;
        out[0] = u;
        return 1;
      }
      case Opcode::TRAPNZ: {
        StaticUop u;
        u.kind = UopKind::Trap;
        u.base = op;
        u.src1 = insn.rs1;
        out[0] = u;
        return 1;
      }
      case Opcode::HALT: {
        StaticUop u;
        u.kind = UopKind::Halt;
        u.base = op;
        u.imm = insn.imm;
        out[0] = u;
        return 1;
      }

      default:
        panic("expand: unhandled opcode ", static_cast<int>(op));
    }
}

} // namespace merlin::isa
