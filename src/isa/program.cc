#include "isa/program.hh"

#include <limits>

#include "base/logging.hh"

namespace merlin::isa
{

Addr
Program::symbol(const std::string &sym) const
{
    auto it = symbols.find(sym);
    if (it == symbols.end())
        fatal("program '", name, "': unknown symbol '", sym, "'");
    return it->second;
}

SegmentedMemory
Program::buildMemory(std::uint32_t chunk_bytes) const
{
    SegmentedMemory mem(chunk_bytes);
    const auto load = [&](Addr base, const std::vector<std::uint8_t> &img,
                          const char *what) {
        if (img.empty())
            return;
        if (img.size() > std::numeric_limits<unsigned>::max() ||
            mem.writeBlock(base, img.data(),
                           static_cast<unsigned>(img.size())) !=
                TrapKind::None) {
            fatal("program '", name, "': ", what, " image (",
                  img.size(), " bytes) does not fit its mapped segment");
        }
    };

    // Text segment, rounded up to a cache line.
    std::uint64_t text_size = (text.size() + 63) & ~std::uint64_t(63);
    if (text_size == 0)
        fatal("program '", name, "': empty text segment");
    mem.addSegment(layout::TEXT_BASE, text_size, PermRead | PermExec);
    load(layout::TEXT_BASE, text, "text");

    // Data + bss segment.
    std::uint64_t data_size = data.size() + bssSize;
    data_size = ((data_size + 63) & ~std::uint64_t(63));
    if (data_size == 0)
        data_size = 64;
    mem.addSegment(layout::DATA_BASE, data_size, PermRead | PermWrite);
    load(layout::DATA_BASE, data, "data");

    mem.addSegment(layout::HEAP_BASE, layout::HEAP_SIZE,
                   PermRead | PermWrite);
    mem.addSegment(layout::STACK_TOP - layout::STACK_SIZE,
                   layout::STACK_SIZE, PermRead | PermWrite);
    return mem;
}

} // namespace merlin::isa
