#include "isa/program.hh"

#include <cstring>

#include "base/logging.hh"

namespace merlin::isa
{

Addr
Program::symbol(const std::string &sym) const
{
    auto it = symbols.find(sym);
    if (it == symbols.end())
        fatal("program '", name, "': unknown symbol '", sym, "'");
    return it->second;
}

SegmentedMemory
Program::buildMemory() const
{
    SegmentedMemory mem;

    // Text segment, rounded up to a cache line.
    std::uint64_t text_size = (text.size() + 63) & ~std::uint64_t(63);
    if (text_size == 0)
        fatal("program '", name, "': empty text segment");
    mem.addSegment(layout::TEXT_BASE, text_size, PermRead | PermExec);
    std::memcpy(mem.rawAt(layout::TEXT_BASE, text.size()), text.data(),
                text.size());

    // Data + bss segment.
    std::uint64_t data_size = data.size() + bssSize;
    data_size = ((data_size + 63) & ~std::uint64_t(63));
    if (data_size == 0)
        data_size = 64;
    mem.addSegment(layout::DATA_BASE, data_size, PermRead | PermWrite);
    if (!data.empty()) {
        std::memcpy(mem.rawAt(layout::DATA_BASE, data.size()), data.data(),
                    data.size());
    }

    mem.addSegment(layout::HEAP_BASE, layout::HEAP_SIZE,
                   PermRead | PermWrite);
    mem.addSegment(layout::STACK_TOP - layout::STACK_SIZE,
                   layout::STACK_SIZE, PermRead | PermWrite);
    return mem;
}

} // namespace merlin::isa
