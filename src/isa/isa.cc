#include "isa/isa.hh"

#include <sstream>

#include "base/bits.hh"

namespace merlin::isa
{

std::uint64_t
encode(const Instruction &insn)
{
    std::uint64_t raw = 0;
    raw |= static_cast<std::uint64_t>(insn.op);
    raw |= static_cast<std::uint64_t>(insn.rd) << 8;
    raw |= static_cast<std::uint64_t>(insn.rs1) << 16;
    raw |= static_cast<std::uint64_t>(insn.rs2) << 24;
    raw |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(insn.imm))
           << 32;
    return raw;
}

std::optional<Instruction>
decode(std::uint64_t raw)
{
    Instruction insn;
    const std::uint8_t op = raw & 0xff;
    if (op >= static_cast<std::uint8_t>(Opcode::NUM_OPCODES))
        return std::nullopt;
    insn.op = static_cast<Opcode>(op);
    insn.rd = (raw >> 8) & 0xff;
    insn.rs1 = (raw >> 16) & 0xff;
    insn.rs2 = (raw >> 24) & 0xff;
    insn.imm = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(raw >> 32));
    if (insn.rd >= NUM_ARCH_REGS || insn.rs1 >= NUM_ARCH_REGS ||
        insn.rs2 >= NUM_ARCH_REGS) {
        return std::nullopt;
    }
    return insn;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::NOP:    return "nop";
      case Opcode::ADD:    return "add";
      case Opcode::SUB:    return "sub";
      case Opcode::AND:    return "and";
      case Opcode::OR:     return "or";
      case Opcode::XOR:    return "xor";
      case Opcode::SHL:    return "shl";
      case Opcode::SHR:    return "shr";
      case Opcode::SRA:    return "sra";
      case Opcode::MUL:    return "mul";
      case Opcode::MULH:   return "mulh";
      case Opcode::DIV:    return "div";
      case Opcode::REM:    return "rem";
      case Opcode::DIVU:   return "divu";
      case Opcode::REMU:   return "remu";
      case Opcode::SLT:    return "slt";
      case Opcode::SLTU:   return "sltu";
      case Opcode::ADDI:   return "addi";
      case Opcode::ANDI:   return "andi";
      case Opcode::ORI:    return "ori";
      case Opcode::XORI:   return "xori";
      case Opcode::SHLI:   return "shli";
      case Opcode::SHRI:   return "shri";
      case Opcode::SRAI:   return "srai";
      case Opcode::SLTI:   return "slti";
      case Opcode::MOVI:   return "movi";
      case Opcode::MOVHI:  return "movhi";
      case Opcode::LDB:    return "ld.b";
      case Opcode::LDBU:   return "ld.bu";
      case Opcode::LDH:    return "ld.h";
      case Opcode::LDHU:   return "ld.hu";
      case Opcode::LDW:    return "ld.w";
      case Opcode::LDWU:   return "ld.wu";
      case Opcode::LDD:    return "ld.d";
      case Opcode::STB:    return "st.b";
      case Opcode::STH:    return "st.h";
      case Opcode::STW:    return "st.w";
      case Opcode::STD:    return "st.d";
      case Opcode::LDADD:  return "ldadd";
      case Opcode::MEMADD: return "memadd";
      case Opcode::PUSH:   return "push";
      case Opcode::POP:    return "pop";
      case Opcode::BEQ:    return "beq";
      case Opcode::BNE:    return "bne";
      case Opcode::BLT:    return "blt";
      case Opcode::BGE:    return "bge";
      case Opcode::BLTU:   return "bltu";
      case Opcode::BGEU:   return "bgeu";
      case Opcode::JMP:    return "jmp";
      case Opcode::JR:     return "jr";
      case Opcode::CALL:   return "call";
      case Opcode::CALLR:  return "callr";
      case Opcode::OUTB:   return "out.b";
      case Opcode::OUTD:   return "out.d";
      case Opcode::TRAPNZ: return "trapnz";
      case Opcode::HALT:   return "halt";
      default:             return "<bad>";
    }
}

bool
isCondBranch(Opcode op)
{
    return op >= Opcode::BEQ && op <= Opcode::BGEU;
}

bool
isControlFlow(Opcode op)
{
    return (op >= Opcode::BEQ && op <= Opcode::CALLR);
}

bool
isMemOp(Opcode op)
{
    return (op >= Opcode::LDB && op <= Opcode::POP);
}

std::string
disassemble(const Instruction &insn)
{
    std::ostringstream os;
    os << opcodeName(insn.op);
    auto r = [](unsigned n) { return "r" + std::to_string(n); };
    switch (insn.op) {
      case Opcode::NOP:
        break;
      case Opcode::ADD: case Opcode::SUB: case Opcode::AND: case Opcode::OR:
      case Opcode::XOR: case Opcode::SHL: case Opcode::SHR: case Opcode::SRA:
      case Opcode::MUL: case Opcode::MULH: case Opcode::DIV:
      case Opcode::REM: case Opcode::DIVU: case Opcode::REMU:
      case Opcode::SLT: case Opcode::SLTU:
        os << " " << r(insn.rd) << ", " << r(insn.rs1) << ", "
           << r(insn.rs2);
        break;
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SHLI: case Opcode::SHRI:
      case Opcode::SRAI: case Opcode::SLTI:
        os << " " << r(insn.rd) << ", " << r(insn.rs1) << ", " << insn.imm;
        break;
      case Opcode::MOVI: case Opcode::MOVHI:
        os << " " << r(insn.rd) << ", " << insn.imm;
        break;
      case Opcode::LDB: case Opcode::LDBU: case Opcode::LDH:
      case Opcode::LDHU: case Opcode::LDW: case Opcode::LDWU:
      case Opcode::LDD: case Opcode::LDADD:
        os << " " << r(insn.rd) << ", [" << r(insn.rs1) << "+" << insn.imm
           << "]";
        break;
      case Opcode::STB: case Opcode::STH: case Opcode::STW:
      case Opcode::STD: case Opcode::MEMADD:
        os << " " << r(insn.rs2) << ", [" << r(insn.rs1) << "+" << insn.imm
           << "]";
        break;
      case Opcode::PUSH:
        os << " " << r(insn.rs2);
        break;
      case Opcode::POP:
        os << " " << r(insn.rd);
        break;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        os << " " << r(insn.rs1) << ", " << r(insn.rs2) << ", 0x" << std::hex
           << insn.imm;
        break;
      case Opcode::JMP: case Opcode::CALL:
        os << " 0x" << std::hex << insn.imm;
        break;
      case Opcode::JR: case Opcode::CALLR:
        os << " " << r(insn.rs1);
        break;
      case Opcode::OUTB: case Opcode::OUTD:
        os << " " << r(insn.rs2);
        break;
      case Opcode::TRAPNZ:
        os << " " << r(insn.rs1);
        break;
      case Opcode::HALT:
        os << " " << insn.imm;
        break;
      default:
        break;
    }
    return os.str();
}

} // namespace merlin::isa
