/**
 * @file
 * Architectural traps and run termination reasons.
 *
 * Traps split into two families that map onto the paper's Table-2
 * classification:
 *  - exception-like (DivZero, DetectedError): the fault was *detected*;
 *    a run whose exception log differs from the golden run is a DUE.
 *  - crash-like (Segfault, Misaligned, IllegalInstruction, PcOutOfText):
 *    abnormal termination of the simulated process; classified Crash.
 */

#ifndef MERLIN_ISA_TRAPS_HH
#define MERLIN_ISA_TRAPS_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace merlin::isa
{

enum class TrapKind : std::uint8_t
{
    None = 0,
    DivZero,            ///< integer division by zero (x86 #DE analogue)
    DetectedError,      ///< TRAPNZ fired (software integrity check)
    Segfault,           ///< access outside mapped segments / bad perms
    Misaligned,         ///< natural-alignment violation
    IllegalInstruction, ///< undecodable opcode or register field
    PcOutOfText,        ///< fetch from a non-executable address
};

/** True for the DUE family (detected, exception-like). */
inline bool
isExceptionTrap(TrapKind k)
{
    return k == TrapKind::DivZero || k == TrapKind::DetectedError;
}

/** One logged trap occurrence. */
struct TrapEvent
{
    TrapKind kind = TrapKind::None;
    Rip rip = 0;

    bool
    operator==(const TrapEvent &o) const
    {
        return kind == o.kind && rip == o.rip;
    }
};

/** Why a run ended. */
enum class TerminateReason : std::uint8_t
{
    Halted,        ///< HALT committed
    Trapped,       ///< fatal trap taken
    CycleLimit,    ///< watchdog: exceeded the cycle/instruction budget
    Deadlock,      ///< watchdog: no commit progress
    WindowEnd,     ///< SimPoint-style window boundary reached
};

const char *trapKindName(TrapKind k);

} // namespace merlin::isa

#endif // MERLIN_ISA_TRAPS_HH
