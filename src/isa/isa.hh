/**
 * @file
 * MRL-64: the instruction set of the simulated machine.
 *
 * MRL-64 is a 64-bit, little-endian, CISC-lite ISA designed to stand in
 * for x86-64 in the MeRLiN reproduction (see DESIGN.md).  Its load-op /
 * read-modify-write / push-pop / call composites expand to multiple
 * micro-ops, so a static instruction is identified by its RIP while the
 * micro-op within it is identified by a uPC — exactly the pair MeRLiN's
 * grouping step keys on.
 *
 * Encoding: fixed 8 bytes per instruction.
 *   byte 0      opcode
 *   byte 1      rd
 *   byte 2      rs1
 *   byte 3      rs2
 *   bytes 4..7  imm32 (signed, little-endian)
 *
 * 32 general-purpose integer registers r0..r31.  Conventions (assembler
 * aliases): a0-a5 = r0-r5 (arguments/results), t0-t9 = r6-r15 (caller
 * saved), s0-s9 = r16-r25 (callee saved), gp = r26, tp = r27, fp = r28,
 * sp = r29 (implicit in PUSH/POP), at = r30 (assembler temp),
 * ra = r31 (link register, written by CALL/CALLR).
 */

#ifndef MERLIN_ISA_ISA_HH
#define MERLIN_ISA_ISA_HH

#include <cstdint>
#include <optional>
#include <string>

#include "base/types.hh"

namespace merlin::isa
{

/** Number of programmer-visible integer registers. */
constexpr unsigned NUM_ARCH_REGS = 32;

/** Micro-architectural temporaries used inside macro-op expansions. */
constexpr unsigned REG_TMP0 = 32;
constexpr unsigned REG_TMP1 = 33;

/** Total renameable architectural namespace (arch regs + temps). */
constexpr unsigned NUM_RENAMEABLE_REGS = 34;

/** Sentinel for "no register operand". */
constexpr unsigned REG_NONE = 255;

/** Stack pointer / link register conventions. */
constexpr unsigned REG_SP = 29;
constexpr unsigned REG_RA = 31;

/** Size of one encoded instruction in bytes. */
constexpr unsigned INSN_BYTES = 8;

/** Macro-instruction opcodes. */
enum class Opcode : std::uint8_t
{
    NOP = 0,

    // Register-register ALU: rd = rs1 op rs2.
    ADD, SUB, AND, OR, XOR, SHL, SHR, SRA,
    MUL, MULH, DIV, REM, DIVU, REMU, SLT, SLTU,

    // Register-immediate ALU: rd = rs1 op imm.
    ADDI, ANDI, ORI, XORI, SHLI, SHRI, SRAI, SLTI,

    MOVI,   ///< rd = sign_extend(imm32)
    MOVHI,  ///< rd = (imm32 << 32) | (rd & 0xffffffff)

    // Loads: rd = mem[rs1 + imm].
    LDB, LDBU, LDH, LDHU, LDW, LDWU, LDD,

    // Stores: mem[rs1 + imm] = rs2.
    STB, STH, STW, STD,

    // CISC composites (multi-uop; see uops.hh).
    LDADD,   ///< rd += mem[rs1 + imm]                      (2 uops)
    MEMADD,  ///< mem[rs1 + imm] += rs2                     (3 uops)
    PUSH,    ///< sp -= 8; mem[sp] = rs2                    (2 uops)
    POP,     ///< rd = mem[sp]; sp += 8                     (2 uops)

    // Control flow.  Branch/jump targets are absolute imm32 addresses.
    BEQ, BNE, BLT, BGE, BLTU, BGEU,  ///< if (rs1 cond rs2) pc = imm
    JMP,    ///< pc = imm
    JR,     ///< pc = rs1  (JR ra is predicted as a return)
    CALL,   ///< ra = pc + 8; pc = imm                      (2 uops)
    CALLR,  ///< ra = pc + 8; pc = rs1                      (3 uops)

    // System.
    OUTB,    ///< append low byte of rs2 to the output stream
    OUTD,    ///< append rs2 (8 bytes LE) to the output stream
    TRAPNZ,  ///< if rs1 != 0 raise DetectedError (a software check)
    HALT,    ///< terminate with exit code imm

    NUM_OPCODES
};

/** Decoded form of one 8-byte macro instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;
};

/** Encode an instruction into its 8-byte form. */
std::uint64_t encode(const Instruction &insn);

/**
 * Decode 8 raw bytes.  Returns std::nullopt for an invalid opcode or
 * register field — the fetch path turns that into an illegal-instruction
 * trap (a flipped L1I/L2 bit can produce one).
 */
std::optional<Instruction> decode(std::uint64_t raw);

/** Mnemonic for an opcode ("add", "ld.w", ...). */
const char *opcodeName(Opcode op);

/** Human-readable disassembly of one instruction. */
std::string disassemble(const Instruction &insn);

/** True for conditional branches (BEQ..BGEU). */
bool isCondBranch(Opcode op);

/** True for any control-transfer macro-op. */
bool isControlFlow(Opcode op);

/** True if the macro-op reads or writes memory. */
bool isMemOp(Opcode op);

} // namespace merlin::isa

#endif // MERLIN_ISA_ISA_HH
