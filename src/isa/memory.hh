/**
 * @file
 * Functional backing memory of the simulated machine.
 *
 * A small set of permission-checked segments over a flat address space.
 * Both the functional interpreter and the cache hierarchy (as its
 * lowest level) use this class; block accessors move whole cache lines.
 */

#ifndef MERLIN_ISA_MEMORY_HH
#define MERLIN_ISA_MEMORY_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "isa/traps.hh"

namespace merlin::isa
{

/** Segment permission bits. */
enum Perm : std::uint8_t
{
    PermRead = 1,
    PermWrite = 2,
    PermExec = 4,
};

/** Flat, segmented, permission-checked memory. */
class SegmentedMemory
{
  public:
    /** Map [base, base+size) with @p perms; contents zero-initialized. */
    void addSegment(Addr base, std::uint64_t size, std::uint8_t perms);

    /**
     * Aligned scalar read of @p size in {1,2,4,8} bytes.
     * @return TrapKind::None on success, else the trap to raise.
     */
    TrapKind read(Addr addr, unsigned size, std::uint64_t &value) const;

    /** Aligned scalar write; see read(). */
    TrapKind write(Addr addr, unsigned size, std::uint64_t value);

    /** Fetch 8 instruction bytes; requires PermExec. */
    TrapKind fetch(Addr addr, std::uint64_t &raw) const;

    /**
     * Copy a block (cache line) out of memory.  No alignment requirement;
     * the block must lie inside one segment with PermRead or PermExec.
     */
    TrapKind readBlock(Addr addr, std::uint8_t *out, unsigned len) const;

    /** Copy a block into memory (cache write-back path). */
    TrapKind writeBlock(Addr addr, const std::uint8_t *in, unsigned len);

    /** Permission check only (no data movement). */
    TrapKind check(Addr addr, unsigned size, bool for_write) const;

    /** Raw pointer into the segment holding @p addr, or nullptr. */
    std::uint8_t *rawAt(Addr addr, unsigned len);
    const std::uint8_t *rawAt(Addr addr, unsigned len) const;

    /** Byte-for-byte content equality (same segment layout assumed). */
    bool contentEquals(const SegmentedMemory &other) const;

  private:
    struct Segment
    {
        Addr base;
        std::uint8_t perms;
        std::vector<std::uint8_t> bytes;
    };

    const Segment *find(Addr addr, unsigned len) const;

    std::vector<Segment> segments_;
};

/** Canonical memory layout of a loaded program. */
namespace layout
{
constexpr Addr TEXT_BASE = 0x1000;
constexpr Addr DATA_BASE = 0x100000;
constexpr Addr HEAP_BASE = 0x400000;
constexpr std::uint64_t HEAP_SIZE = 0x200000;   // 2 MiB
constexpr Addr STACK_TOP = 0x7f0000;
constexpr std::uint64_t STACK_SIZE = 0x40000;   // 256 KiB
} // namespace layout

} // namespace merlin::isa

#endif // MERLIN_ISA_MEMORY_HH
