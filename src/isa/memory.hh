/**
 * @file
 * Functional backing memory of the simulated machine.
 *
 * A small set of permission-checked segments over a flat address space.
 * Both the functional interpreter and the cache hierarchy (as its
 * lowest level) use this class; block accessors move whole cache lines.
 *
 * Segment contents live in fixed-size copy-on-write chunks
 * (base::CowBytes): copying a SegmentedMemory copies O(#chunks) shared
 * pointers, writes detach only the chunk they touch, and
 * contentEquals() short-circuits on chunks the two images still share.
 * This is what makes full-core snapshots cheap enough to checkpoint
 * densely and state comparison cheap enough to run every checkpoint.
 */

#ifndef MERLIN_ISA_MEMORY_HH
#define MERLIN_ISA_MEMORY_HH

#include <cstdint>
#include <vector>

#include "base/cow.hh"
#include "base/types.hh"
#include "isa/traps.hh"

namespace merlin::isa
{

/** Valid COW chunk granularity: a power of two of at least 64 bytes
 *  (so aligned scalars and cache lines never span chunks).  Exposed
 *  so front ends can reject bad values at parse time. */
constexpr bool
isValidChunkBytes(std::uint64_t v)
{
    return v >= 64 && v <= (1u << 30) && (v & (v - 1)) == 0;
}

/** Segment permission bits. */
enum Perm : std::uint8_t
{
    PermRead = 1,
    PermWrite = 2,
    PermExec = 4,
};

/** Flat, segmented, permission-checked, copy-on-write memory. */
class SegmentedMemory
{
  public:
    /** Default COW chunk granularity (bytes). */
    static constexpr std::uint32_t kDefaultChunkBytes =
        base::CowBytes::kDefaultChunkBytes;

    /**
     * @p chunk_bytes is the COW granularity: a power of two >= 64
     * (so a cache line never spans chunks on the scalar fast path).
     */
    explicit SegmentedMemory(
        std::uint32_t chunk_bytes = kDefaultChunkBytes);

    /** Map [base, base+size) with @p perms; contents zero-initialized. */
    void addSegment(Addr base, std::uint64_t size, std::uint8_t perms);

    /**
     * Aligned scalar read of @p size in {1,2,4,8} bytes.
     * @return TrapKind::None on success, else the trap to raise.
     */
    TrapKind read(Addr addr, unsigned size, std::uint64_t &value) const;

    /** Aligned scalar write; see read(). */
    TrapKind write(Addr addr, unsigned size, std::uint64_t value);

    /** Fetch 8 instruction bytes; requires PermExec. */
    TrapKind fetch(Addr addr, std::uint64_t &raw) const;

    /**
     * Copy a block (cache line) out of memory.  No alignment requirement;
     * the block must lie inside one segment with PermRead or PermExec.
     */
    TrapKind readBlock(Addr addr, std::uint8_t *out, unsigned len) const;

    /** Copy a block into memory (cache write-back path). */
    TrapKind writeBlock(Addr addr, const std::uint8_t *in, unsigned len);

    /** Permission check only (no data movement). */
    TrapKind check(Addr addr, unsigned size, bool for_write) const;

    /** Byte-for-byte content equality (same segment layout assumed). */
    bool contentEquals(const SegmentedMemory &other) const;

    /** COW chunk granularity of this image. */
    std::uint32_t chunkBytes() const { return chunkBytes_; }

    /** Total mapped bytes across all segments. */
    std::uint64_t contentBytes() const;

    /** Chunks physically shared with @p other (same layout assumed). */
    std::size_t sharedChunksWith(const SegmentedMemory &other) const;

    /** Cumulative bytes copied by COW detaches (see CowBytes). */
    std::uint64_t bytesDetached() const;

    /** Privatize every chunk (emulates the old deep-copy snapshot). */
    void detachAll();

  private:
    struct Segment
    {
        Addr base;
        std::uint64_t size;
        std::uint8_t perms;
        base::CowBytes bytes;
    };

    const Segment *find(Addr addr, unsigned len) const;
    Segment *find(Addr addr, unsigned len);

    std::vector<Segment> segments_;
    std::uint32_t chunkBytes_;
};

/** Canonical memory layout of a loaded program. */
namespace layout
{
constexpr Addr TEXT_BASE = 0x1000;
constexpr Addr DATA_BASE = 0x100000;
constexpr Addr HEAP_BASE = 0x400000;
constexpr std::uint64_t HEAP_SIZE = 0x200000;   // 2 MiB
constexpr Addr STACK_TOP = 0x7f0000;
constexpr std::uint64_t STACK_SIZE = 0x40000;   // 256 KiB
} // namespace layout

} // namespace merlin::isa

#endif // MERLIN_ISA_MEMORY_HH
