#include "masm/asm.hh"

#include <cctype>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "base/bits.hh"
#include "isa/isa.hh"

namespace merlin::masm
{

using isa::Instruction;
using isa::Opcode;

namespace
{

/** Operand shapes accepted by the parser. */
enum class Form
{
    None,     // nop
    R3,       // op rd, rs1, rs2
    R2I,      // op rd, rs1, imm
    RI,       // op rd, imm
    MemLoad,  // op rd, [rs1+imm]
    MemStore, // op rs2, [rs1+imm]
    SrcReg,   // op rs2       (push, out.*)
    DstReg,   // op rd        (pop)
    Branch,   // op rs1, rs2, target
    Target,   // op target    (jmp, call)
    Rs1,      // op rs1       (jr, callr, trapnz)
    Imm,      // op imm       (halt)
};

struct MnemonicInfo
{
    Opcode op;
    Form form;
};

const std::map<std::string, MnemonicInfo> &
mnemonicTable()
{
    static const std::map<std::string, MnemonicInfo> table = {
        {"nop", {Opcode::NOP, Form::None}},
        {"add", {Opcode::ADD, Form::R3}},
        {"sub", {Opcode::SUB, Form::R3}},
        {"and", {Opcode::AND, Form::R3}},
        {"or", {Opcode::OR, Form::R3}},
        {"xor", {Opcode::XOR, Form::R3}},
        {"shl", {Opcode::SHL, Form::R3}},
        {"shr", {Opcode::SHR, Form::R3}},
        {"sra", {Opcode::SRA, Form::R3}},
        {"mul", {Opcode::MUL, Form::R3}},
        {"mulh", {Opcode::MULH, Form::R3}},
        {"div", {Opcode::DIV, Form::R3}},
        {"rem", {Opcode::REM, Form::R3}},
        {"divu", {Opcode::DIVU, Form::R3}},
        {"remu", {Opcode::REMU, Form::R3}},
        {"slt", {Opcode::SLT, Form::R3}},
        {"sltu", {Opcode::SLTU, Form::R3}},
        {"addi", {Opcode::ADDI, Form::R2I}},
        {"andi", {Opcode::ANDI, Form::R2I}},
        {"ori", {Opcode::ORI, Form::R2I}},
        {"xori", {Opcode::XORI, Form::R2I}},
        {"shli", {Opcode::SHLI, Form::R2I}},
        {"shri", {Opcode::SHRI, Form::R2I}},
        {"srai", {Opcode::SRAI, Form::R2I}},
        {"slti", {Opcode::SLTI, Form::R2I}},
        {"movi", {Opcode::MOVI, Form::RI}},
        {"movhi", {Opcode::MOVHI, Form::RI}},
        {"ld.b", {Opcode::LDB, Form::MemLoad}},
        {"ld.bu", {Opcode::LDBU, Form::MemLoad}},
        {"ld.h", {Opcode::LDH, Form::MemLoad}},
        {"ld.hu", {Opcode::LDHU, Form::MemLoad}},
        {"ld.w", {Opcode::LDW, Form::MemLoad}},
        {"ld.wu", {Opcode::LDWU, Form::MemLoad}},
        {"ld.d", {Opcode::LDD, Form::MemLoad}},
        {"st.b", {Opcode::STB, Form::MemStore}},
        {"st.h", {Opcode::STH, Form::MemStore}},
        {"st.w", {Opcode::STW, Form::MemStore}},
        {"st.d", {Opcode::STD, Form::MemStore}},
        {"ldadd", {Opcode::LDADD, Form::MemLoad}},
        {"memadd", {Opcode::MEMADD, Form::MemStore}},
        {"push", {Opcode::PUSH, Form::SrcReg}},
        {"pop", {Opcode::POP, Form::DstReg}},
        {"beq", {Opcode::BEQ, Form::Branch}},
        {"bne", {Opcode::BNE, Form::Branch}},
        {"blt", {Opcode::BLT, Form::Branch}},
        {"bge", {Opcode::BGE, Form::Branch}},
        {"bltu", {Opcode::BLTU, Form::Branch}},
        {"bgeu", {Opcode::BGEU, Form::Branch}},
        {"jmp", {Opcode::JMP, Form::Target}},
        {"b", {Opcode::JMP, Form::Target}},
        {"jr", {Opcode::JR, Form::Rs1}},
        {"call", {Opcode::CALL, Form::Target}},
        {"callr", {Opcode::CALLR, Form::Rs1}},
        {"out.b", {Opcode::OUTB, Form::SrcReg}},
        {"out.d", {Opcode::OUTD, Form::SrcReg}},
        {"trapnz", {Opcode::TRAPNZ, Form::Rs1}},
        {"halt", {Opcode::HALT, Form::Imm}},
    };
    return table;
}

/** A parsed source line (label / directive / instruction). */
struct Line
{
    int number = 0;
    std::string label;
    std::string mnemonic; // instruction or directive (with leading '.')
    std::vector<std::string> operands;
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

/** Split one raw source line into label/mnemonic/comma-separated ops. */
std::optional<Line>
tokenizeLine(const std::string &raw, int number, const std::string &file)
{
    // Strip comments; respect string literals.
    std::string s;
    bool in_str = false;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        char c = raw[i];
        if (c == '"' && (i == 0 || raw[i - 1] != '\\'))
            in_str = !in_str;
        if (!in_str && (c == ';' || c == '#'))
            break;
        s.push_back(c);
    }

    Line line;
    line.number = number;

    std::size_t pos = 0;
    auto skip_ws = [&] {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
    };

    skip_ws();
    if (pos >= s.size())
        return std::nullopt;

    // Optional label.
    if (isIdentStart(s[pos]) && s[pos] != '.') {
        std::size_t start = pos;
        while (pos < s.size() && isIdentChar(s[pos]))
            ++pos;
        if (pos < s.size() && s[pos] == ':') {
            line.label = s.substr(start, pos - start);
            ++pos;
            skip_ws();
        } else {
            pos = start;
        }
    }

    if (pos >= s.size())
        return line;

    // Mnemonic or directive.
    {
        std::size_t start = pos;
        while (pos < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
        line.mnemonic = s.substr(start, pos - start);
    }
    skip_ws();

    // Operands: comma separated, but commas inside "..." or [...] bind.
    std::string cur;
    int bracket = 0;
    in_str = false;
    for (; pos < s.size(); ++pos) {
        char c = s[pos];
        if (c == '"' && s[pos - 1] != '\\')
            in_str = !in_str;
        if (!in_str) {
            if (c == '[')
                ++bracket;
            if (c == ']')
                --bracket;
            if (c == ',' && bracket == 0) {
                line.operands.push_back(cur);
                cur.clear();
                continue;
            }
        }
        cur.push_back(c);
    }
    if (bracket != 0) {
        throw AsmError(file + ":" + std::to_string(number) +
                       ": unbalanced brackets");
    }
    // Trim and push the last operand.
    auto trim = [](std::string t) {
        std::size_t b = t.find_first_not_of(" \t");
        std::size_t e = t.find_last_not_of(" \t");
        if (b == std::string::npos)
            return std::string();
        return t.substr(b, e - b + 1);
    };
    cur = trim(cur);
    if (!cur.empty())
        line.operands.push_back(cur);
    for (auto &op : line.operands)
        op = trim(op);
    return line;
}

/** Immediate expression: literal | 'c' | symbol | symbol+lit | symbol-lit */
struct ImmExpr
{
    std::string symbol; // empty for pure literals
    std::int64_t offset = 0;
};

} // namespace

unsigned
parseRegister(const std::string &tok)
{
    static const std::map<std::string, unsigned> aliases = {
        {"gp", 26}, {"tp", 27}, {"fp", 28},
        {"sp", isa::REG_SP}, {"at", 30}, {"ra", isa::REG_RA},
    };
    if (tok.empty())
        return 255;
    auto it = aliases.find(tok);
    if (it != aliases.end())
        return it->second;
    char cls = tok[0];
    if ((cls == 'r' || cls == 'a' || cls == 't' || cls == 's') &&
        tok.size() >= 2) {
        for (std::size_t i = 1; i < tok.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(tok[i])))
                return 255;
        }
        unsigned n = std::stoul(tok.substr(1));
        switch (cls) {
          case 'r': return n < 32 ? n : 255;
          case 'a': return n <= 5 ? n : 255;       // a0-a5 = r0-r5
          case 't': return n <= 9 ? 6 + n : 255;   // t0-t9 = r6-r15
          case 's': return n <= 9 ? 16 + n : 255;  // s0-s9 = r16-r25
        }
    }
    return 255;
}

namespace
{

class Assembler
{
  public:
    Assembler(const std::string &source, std::string name)
        : name_(std::move(name))
    {
        std::istringstream is(source);
        std::string raw;
        int n = 0;
        while (std::getline(is, raw)) {
            ++n;
            auto line = tokenizeLine(raw, n, name_);
            if (line)
                lines_.push_back(std::move(*line));
        }
    }

    isa::Program
    run()
    {
        passOne();
        passTwo();
        prog_.name = name_;
        return std::move(prog_);
    }

  private:
    [[noreturn]] void
    err(int line, const std::string &msg) const
    {
        throw AsmError(name_ + ":" + std::to_string(line) + ": " + msg);
    }

    std::int64_t
    parseLiteral(const std::string &tok, int line) const
    {
        if (tok.size() >= 3 && tok.front() == '\'' && tok.back() == '\'') {
            if (tok.size() == 4 && tok[1] == '\\') {
                switch (tok[2]) {
                  case 'n': return '\n';
                  case 't': return '\t';
                  case '0': return '\0';
                  case '\\': return '\\';
                  default: err(line, "bad escape in char literal " + tok);
                }
            }
            if (tok.size() != 3)
                err(line, "bad char literal " + tok);
            return static_cast<unsigned char>(tok[1]);
        }
        try {
            std::size_t used = 0;
            long long v = std::stoll(tok, &used, 0);
            if (used != tok.size())
                err(line, "trailing junk in literal '" + tok + "'");
            return v;
        } catch (const std::invalid_argument &) {
            err(line, "bad numeric literal '" + tok + "'");
        } catch (const std::out_of_range &) {
            // Large unsigned 64-bit constants (hashes, masks) wrap into
            // the signed representation.
            try {
                std::size_t used = 0;
                unsigned long long u = std::stoull(tok, &used, 0);
                if (used != tok.size())
                    err(line, "trailing junk in literal '" + tok + "'");
                return static_cast<std::int64_t>(u);
            } catch (...) {
                err(line, "numeric literal out of range '" + tok + "'");
            }
        }
    }

    bool
    looksLiteral(const std::string &tok) const
    {
        if (tok.empty())
            return false;
        char c = tok[0];
        return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
               c == '+' || c == '\'';
    }

    ImmExpr
    parseImmExpr(const std::string &tok, int line) const
    {
        ImmExpr e;
        if (looksLiteral(tok)) {
            e.offset = parseLiteral(tok, line);
            return e;
        }
        // symbol[+|-literal]
        std::size_t p = tok.find_first_of("+-", 1);
        if (p == std::string::npos) {
            e.symbol = tok;
            return e;
        }
        e.symbol = tok.substr(0, p);
        std::int64_t off = parseLiteral(tok.substr(p + 1), line);
        e.offset = (tok[p] == '-') ? -off : off;
        return e;
    }

    std::int64_t
    resolve(const ImmExpr &e, int line) const
    {
        if (e.symbol.empty())
            return e.offset;
        auto it = symbols_.find(e.symbol);
        if (it == symbols_.end())
            err(line, "undefined symbol '" + e.symbol + "'");
        return static_cast<std::int64_t>(it->second) + e.offset;
    }

    std::int32_t
    toImm32(std::int64_t v, int line) const
    {
        if (v < INT32_MIN || v > INT32_MAX)
            err(line, "immediate out of 32-bit range: " + std::to_string(v));
        return static_cast<std::int32_t>(v);
    }

    unsigned
    reg(const std::string &tok, int line) const
    {
        unsigned r = parseRegister(tok);
        if (r == 255)
            err(line, "bad register '" + tok + "'");
        return r;
    }

    /** Parse "[reg]", "[reg+imm]", "[reg+sym]", "[reg-imm]". */
    std::pair<unsigned, ImmExpr>
    parseMemOperand(const std::string &tok, int line) const
    {
        if (tok.size() < 3 || tok.front() != '[' || tok.back() != ']')
            err(line, "bad memory operand '" + tok + "'");
        std::string inner = tok.substr(1, tok.size() - 2);
        std::size_t p = inner.find_first_of("+-");
        std::string reg_tok = (p == std::string::npos)
                                  ? inner
                                  : inner.substr(0, p);
        // Trim spaces around the register token.
        while (!reg_tok.empty() && reg_tok.back() == ' ')
            reg_tok.pop_back();
        unsigned base = reg(reg_tok, line);
        ImmExpr e;
        if (p != std::string::npos) {
            std::string rest = inner.substr(p);
            if (rest[0] == '+')
                rest = rest.substr(1);
            e = parseImmExpr(rest, line);
        }
        return {base, e};
    }

    /** Number of encoded instructions a line will produce (pass 1). */
    unsigned
    instructionWords(const Line &line) const
    {
        const std::string &m = line.mnemonic;
        if (m == "li") {
            if (line.operands.size() != 2)
                err(line.number, "li needs 2 operands");
            if (looksLiteral(line.operands[1])) {
                std::int64_t v = parseLiteral(line.operands[1], line.number);
                return (v >= INT32_MIN && v <= INT32_MAX) ? 1 : 2;
            }
            return 1; // symbols always fit 31 bits
        }
        return 1; // every other mnemonic/pseudo is a single instruction
    }

    void
    dataDirective(const Line &line, bool size_only)
    {
        const std::string &d = line.mnemonic;
        auto &bytes = prog_.data;
        auto emit = [&](std::uint64_t v, unsigned sz) {
            if (!size_only) {
                std::uint8_t buf[8];
                storeLE(buf, v, 8);
                bytes.insert(bytes.end(), buf, buf + sz);
            }
            dataOff_ += sz;
        };

        if (d == ".byte" || d == ".half" || d == ".word" || d == ".quad") {
            unsigned sz = d == ".byte" ? 1 : d == ".half" ? 2
                          : d == ".word" ? 4 : 8;
            for (const auto &op : line.operands) {
                ImmExpr e = parseImmExpr(op, line.number);
                std::int64_t v =
                    size_only ? 0 : resolve(e, line.number);
                emit(static_cast<std::uint64_t>(v), sz);
            }
        } else if (d == ".space") {
            if (line.operands.size() != 1)
                err(line.number, ".space needs one size operand");
            std::int64_t n = parseLiteral(line.operands[0], line.number);
            if (n < 0)
                err(line.number, ".space with negative size");
            if (!size_only)
                bytes.insert(bytes.end(), n, 0);
            dataOff_ += n;
        } else if (d == ".ascii" || d == ".asciz") {
            if (line.operands.size() != 1)
                err(line.number, d + " needs one string operand");
            const std::string &q = line.operands[0];
            if (q.size() < 2 || q.front() != '"' || q.back() != '"')
                err(line.number, "bad string literal");
            std::string out;
            for (std::size_t i = 1; i + 1 < q.size(); ++i) {
                char c = q[i];
                if (c == '\\' && i + 2 < q.size()) {
                    ++i;
                    switch (q[i]) {
                      case 'n': c = '\n'; break;
                      case 't': c = '\t'; break;
                      case '0': c = '\0'; break;
                      case '\\': c = '\\'; break;
                      case '"': c = '"'; break;
                      default: err(line.number, "bad string escape");
                    }
                }
                out.push_back(c);
            }
            if (d == ".asciz")
                out.push_back('\0');
            if (!size_only)
                bytes.insert(bytes.end(), out.begin(), out.end());
            dataOff_ += out.size();
        } else if (d == ".align") {
            if (line.operands.size() != 1)
                err(line.number, ".align needs one operand");
            std::int64_t a = parseLiteral(line.operands[0], line.number);
            if (a <= 0 || (a & (a - 1)) != 0)
                err(line.number, ".align requires a power of two");
            while (dataOff_ % a != 0) {
                if (!size_only)
                    bytes.push_back(0);
                ++dataOff_;
            }
        } else {
            err(line.number, "unknown directive '" + d + "'");
        }
    }

    void
    passOne()
    {
        bool in_text = true;
        textOff_ = 0;
        dataOff_ = 0;
        for (const auto &line : lines_) {
            if (!line.label.empty()) {
                Addr addr = in_text ? isa::layout::TEXT_BASE + textOff_
                                    : isa::layout::DATA_BASE + dataOff_;
                if (!symbols_.emplace(line.label, addr).second)
                    err(line.number, "duplicate label '" + line.label + "'");
            }
            if (line.mnemonic.empty())
                continue;
            if (line.mnemonic == ".text") {
                in_text = true;
            } else if (line.mnemonic == ".data") {
                in_text = false;
            } else if (line.mnemonic[0] == '.') {
                if (in_text)
                    err(line.number, "directives only allowed in .data");
                dataDirective(line, /*size_only=*/true);
            } else {
                if (!in_text)
                    err(line.number, "instruction outside .text");
                textOff_ += instructionWords(line) * isa::INSN_BYTES;
            }
        }
        prog_.symbols = symbols_;
    }

    void
    emitInsn(const Instruction &insn)
    {
        std::uint8_t buf[8];
        storeLE(buf, isa::encode(insn), 8);
        prog_.text.insert(prog_.text.end(), buf, buf + 8);
    }

    void
    assembleInstruction(const Line &line)
    {
        const std::string &m = line.mnemonic;
        const auto &ops = line.operands;
        const int ln = line.number;

        // Pseudo-instructions first.
        if (m == "li") {
            unsigned rd = reg(ops[0], ln);
            ImmExpr e = parseImmExpr(ops[1], ln);
            std::int64_t v = resolve(e, ln);
            if (v >= INT32_MIN && v <= INT32_MAX) {
                emitInsn({Opcode::MOVI, static_cast<std::uint8_t>(rd), 0, 0,
                          static_cast<std::int32_t>(v)});
            } else {
                emitInsn({Opcode::MOVI, static_cast<std::uint8_t>(rd), 0, 0,
                          static_cast<std::int32_t>(
                              static_cast<std::uint32_t>(v))});
                emitInsn({Opcode::MOVHI, static_cast<std::uint8_t>(rd), 0, 0,
                          static_cast<std::int32_t>(static_cast<std::uint32_t>(
                              static_cast<std::uint64_t>(v) >> 32))});
            }
            return;
        }
        if (m == "la") {
            if (ops.size() != 2)
                err(ln, "la needs 2 operands");
            unsigned rd = reg(ops[0], ln);
            ImmExpr e = parseImmExpr(ops[1], ln);
            emitInsn({Opcode::MOVI, static_cast<std::uint8_t>(rd), 0, 0,
                      toImm32(resolve(e, ln), ln)});
            return;
        }
        if (m == "mov") {
            if (ops.size() != 2)
                err(ln, "mov needs 2 operands");
            unsigned rd = reg(ops[0], ln);
            unsigned rs = reg(ops[1], ln);
            emitInsn({Opcode::ADDI, static_cast<std::uint8_t>(rd),
                      static_cast<std::uint8_t>(rs), 0, 0});
            return;
        }
        if (m == "ret") {
            emitInsn({Opcode::JR, 0, isa::REG_RA, 0, 0});
            return;
        }

        auto it = mnemonicTable().find(m);
        if (it == mnemonicTable().end())
            err(ln, "unknown mnemonic '" + m + "'");
        const MnemonicInfo &info = it->second;

        auto need = [&](std::size_t n) {
            if (ops.size() != n) {
                err(ln, m + " needs " + std::to_string(n) + " operand(s), " +
                            "got " + std::to_string(ops.size()));
            }
        };

        Instruction insn;
        insn.op = info.op;
        switch (info.form) {
          case Form::None:
            need(0);
            break;
          case Form::R3:
            need(3);
            insn.rd = reg(ops[0], ln);
            insn.rs1 = reg(ops[1], ln);
            insn.rs2 = reg(ops[2], ln);
            break;
          case Form::R2I:
            need(3);
            insn.rd = reg(ops[0], ln);
            insn.rs1 = reg(ops[1], ln);
            insn.imm = toImm32(resolve(parseImmExpr(ops[2], ln), ln), ln);
            break;
          case Form::RI:
            need(2);
            insn.rd = reg(ops[0], ln);
            insn.imm = toImm32(resolve(parseImmExpr(ops[1], ln), ln), ln);
            break;
          case Form::MemLoad: {
            need(2);
            insn.rd = reg(ops[0], ln);
            auto [base, e] = parseMemOperand(ops[1], ln);
            insn.rs1 = base;
            insn.imm = toImm32(resolve(e, ln), ln);
            break;
          }
          case Form::MemStore: {
            need(2);
            insn.rs2 = reg(ops[0], ln);
            auto [base, e] = parseMemOperand(ops[1], ln);
            insn.rs1 = base;
            insn.imm = toImm32(resolve(e, ln), ln);
            break;
          }
          case Form::SrcReg:
            need(1);
            insn.rs2 = reg(ops[0], ln);
            break;
          case Form::DstReg:
            need(1);
            insn.rd = reg(ops[0], ln);
            break;
          case Form::Branch:
            need(3);
            insn.rs1 = reg(ops[0], ln);
            insn.rs2 = reg(ops[1], ln);
            insn.imm = toImm32(resolve(parseImmExpr(ops[2], ln), ln), ln);
            break;
          case Form::Target:
            need(1);
            insn.imm = toImm32(resolve(parseImmExpr(ops[0], ln), ln), ln);
            break;
          case Form::Rs1:
            need(1);
            insn.rs1 = reg(ops[0], ln);
            if (info.op == Opcode::CALLR && insn.rs1 == isa::REG_RA)
                err(ln, "callr ra is unsupported (link clobbers target)");
            break;
          case Form::Imm:
            need(1);
            insn.imm = toImm32(resolve(parseImmExpr(ops[0], ln), ln), ln);
            break;
        }
        emitInsn(insn);
    }

    void
    passTwo()
    {
        bool in_text = true;
        dataOff_ = 0;
        prog_.data.clear();
        for (const auto &line : lines_) {
            if (line.mnemonic.empty())
                continue;
            if (line.mnemonic == ".text") {
                in_text = true;
            } else if (line.mnemonic == ".data") {
                in_text = false;
            } else if (line.mnemonic[0] == '.') {
                dataDirective(line, /*size_only=*/false);
            } else if (in_text) {
                assembleInstruction(line);
            }
        }
        if (prog_.text.empty())
            throw AsmError(name_ + ": no instructions");
        prog_.entry = isa::layout::TEXT_BASE;
        auto it = symbols_.find("_start");
        if (it != symbols_.end())
            prog_.entry = it->second;
    }

    std::string name_;
    std::vector<Line> lines_;
    std::map<std::string, Addr> symbols_;
    std::uint64_t textOff_ = 0;
    std::uint64_t dataOff_ = 0;
    isa::Program prog_;
};

} // namespace

isa::Program
assemble(const std::string &source, const std::string &name)
{
    Assembler as(source, name);
    return as.run();
}

} // namespace merlin::masm
