/**
 * @file
 * MRL-64 assembler.
 *
 * A two-pass assembler over a simple AT&T-free syntax:
 *
 *     ; comment (also '#')
 *     .text                     ; section switch (default .text)
 *         movi  a0, 42
 *         la    a1, buf         ; symbol as immediate
 *         ld.w  t0, [a1+8]
 *         st.d  t0, [sp]
 *     loop:
 *         beq   a0, t0, done
 *         call  func
 *     done:
 *         halt  0
 *     .data
 *     buf:  .space 1024
 *     tab:  .quad  1, 2, 3
 *     msg:  .asciz "hello"
 *
 * Registers: r0..r31 with aliases a0-a5 (r0-r5), t0-t9 (r6-r15),
 * s0-s9 (r16-r25), gp, tp, fp, sp, at, ra.
 *
 * Directives: .text .data .align N .byte .half .word .quad .space N
 * .ascii .asciz
 *
 * Pseudo-instructions: li rd,imm64 (1-2 insns) / la rd,sym / mov rd,rs /
 * ret / b target.
 */

#ifndef MERLIN_MASM_ASM_HH
#define MERLIN_MASM_ASM_HH

#include <stdexcept>
#include <string>

#include "isa/program.hh"

namespace merlin::masm
{

/** Raised on any syntax or semantic assembly error ("name:line: msg"). */
class AsmError : public std::runtime_error
{
  public:
    explicit AsmError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Assemble @p source into a loadable program.
 *
 * @param source  assembly text
 * @param name    program name used in diagnostics
 * @throws AsmError on malformed input
 */
isa::Program assemble(const std::string &source, const std::string &name);

/** Parse a register name ("r7", "sp", "a0"); returns 255 when invalid. */
unsigned parseRegister(const std::string &tok);

} // namespace merlin::masm

#endif // MERLIN_MASM_ASM_HH
