#include "obs/metrics.hh"

#include <bit>
#include <thread>

namespace merlin::obs
{

namespace detail
{

unsigned
shardIndex() noexcept
{
    // One hash per thread, cached: the hot path pays a thread_local
    // read, not a std::hash of std::thread::id per event.
    thread_local const unsigned idx = static_cast<unsigned>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        kShards);
    return idx;
}

} // namespace detail

// ---------------------------------------------------------------- Gauge

void
Gauge::set(double v) noexcept
{
    value_.store(v, std::memory_order_relaxed);
    double cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
    sets_.fetch_add(1, std::memory_order_relaxed);
}

GaugeSnapshot
Gauge::snapshot() const noexcept
{
    GaugeSnapshot s;
    s.sets = sets_.load(std::memory_order_relaxed);
    s.value = value_.load(std::memory_order_relaxed);
    s.max = s.sets ? max_.load(std::memory_order_relaxed) : 0.0;
    return s;
}

void
Gauge::reset() noexcept
{
    value_.store(0.0, std::memory_order_relaxed);
    max_.store(std::numeric_limits<double>::lowest(),
               std::memory_order_relaxed);
    sets_.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------ Histogram

void
Histogram::observe(std::uint64_t v) noexcept
{
    Shard &s = shards_[detail::shardIndex()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.buckets[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t cur = s.min.load(std::memory_order_relaxed);
    while (v < cur &&
           !s.min.compare_exchange_weak(cur, v,
                                        std::memory_order_relaxed)) {
    }
    cur = s.max.load(std::memory_order_relaxed);
    while (v > cur &&
           !s.max.compare_exchange_weak(cur, v,
                                        std::memory_order_relaxed)) {
    }
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot out;
    for (const Shard &s : shards_) {
        HistogramSnapshot part;
        part.count = s.count.load(std::memory_order_relaxed);
        if (part.count == 0)
            continue;
        part.sum = s.sum.load(std::memory_order_relaxed);
        part.min = s.min.load(std::memory_order_relaxed);
        part.max = s.max.load(std::memory_order_relaxed);
        for (unsigned b = 0; b < HistogramSnapshot::kBuckets; ++b)
            part.buckets[b] =
                s.buckets[b].load(std::memory_order_relaxed);
        out.merge(part);
    }
    return out;
}

void
Histogram::reset() noexcept
{
    for (Shard &s : shards_) {
        s.count.store(0, std::memory_order_relaxed);
        s.sum.store(0, std::memory_order_relaxed);
        s.min.store(std::numeric_limits<std::uint64_t>::max(),
                    std::memory_order_relaxed);
        s.max.store(0, std::memory_order_relaxed);
        for (auto &b : s.buckets)
            b.store(0, std::memory_order_relaxed);
    }
}

void
HistogramSnapshot::merge(const HistogramSnapshot &o)
{
    if (o.count == 0)
        return;
    min = count == 0 ? o.min : std::min(min, o.min);
    max = count == 0 ? o.max : std::max(max, o.max);
    count += o.count;
    sum += o.sum;
    for (unsigned b = 0; b < kBuckets; ++b)
        buckets[b] += o.buckets[b];
}

// ------------------------------------------------------ MetricsSnapshot

io::Json
MetricsSnapshot::toJson() const
{
    io::Json c = io::Json::object();
    for (const auto &[name, total] : counters)
        c.set(name, total);

    io::Json g = io::Json::object();
    for (const auto &[name, snap] : gauges) {
        io::Json e = io::Json::object();
        e.set("value", snap.value);
        e.set("max", snap.max);
        e.set("sets", snap.sets);
        g.set(name, e);
    }

    io::Json h = io::Json::object();
    for (const auto &[name, snap] : histograms) {
        io::Json e = io::Json::object();
        e.set("count", snap.count);
        e.set("sum", snap.sum);
        e.set("min", snap.count ? snap.min : 0);
        e.set("max", snap.count ? snap.max : 0);
        e.set("mean", snap.mean());
        // Sparse [bucket_floor, count] pairs: bucket b >= 1 holds
        // values in [2^(b-1), 2^b), bucket 0 holds exact zeros.
        io::Json buckets = io::Json::array();
        for (unsigned b = 0; b < HistogramSnapshot::kBuckets; ++b) {
            if (snap.buckets[b] == 0)
                continue;
            io::Json pair = io::Json::array();
            pair.push(b == 0 ? std::uint64_t(0)
                             : std::uint64_t(1) << (b - 1));
            pair.push(snap.buckets[b]);
            buckets.push(pair);
        }
        e.set("buckets", buckets);
        h.set(name, e);
    }

    io::Json doc = io::Json::object();
    doc.set("format", "merlin-metrics-v1");
    doc.set("counters", c);
    doc.set("gauges", g);
    doc.set("histograms", h);
    return doc;
}

// ------------------------------------------------------------- Registry

Registry &
Registry::global()
{
    static Registry r;
    return r;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot s;
    std::lock_guard<std::mutex> lock(mu_);
    // std::map iteration is sorted by name — the deterministic
    // aggregation order the serializer relies on.
    s.counters.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        s.counters.emplace_back(name, c->total());
    s.gauges.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        s.gauges.emplace_back(name, g->snapshot());
    s.histograms.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_)
        s.histograms.emplace_back(name, h->snapshot());
    return s;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace merlin::obs
