/**
 * @file
 * Chrome trace_event JSON spans for whole-run timelines.
 *
 * One process-global TraceWriter collects complete ("ph":"X") events
 * while enabled and dumps them as `{"traceEvents": [...]}` — the
 * format chrome://tracing and Perfetto load directly — at finish().
 * Span is the RAII recording primitive: construct at phase entry,
 * the destructor emits the event.
 *
 * Cost model: when tracing is off (the default), a Span costs one
 * relaxed atomic load and never touches the clock or allocates; code
 * can therefore leave spans in hot paths unconditionally.  When on,
 * each span is two clock reads plus one short mutex-guarded append.
 *
 * Tracing is strictly out-of-band: spans observe phases, they never
 * influence outcomes, store bytes, or journal bytes.
 */

#ifndef MERLIN_OBS_TRACE_HH
#define MERLIN_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "io/json.hh"
#include "obs/clock.hh"

namespace merlin::obs
{

class TraceWriter
{
  public:
    static TraceWriter &global();

    /**
     * Begin collecting.  @p path is where finish() writes the trace
     * (empty: collect only, e.g. for tests that inspect toJson()).
     * Restarting discards previously collected events.
     */
    void start(std::string path);

    bool
    enabled() const noexcept
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Record one complete event (used by Span's destructor). */
    void complete(const char *cat, std::string name, TimePoint begin,
                  TimePoint end);

    /**
     * Stop collecting, write the trace file (atomically, when a path
     * was given), and clear the buffer.  @return false when start()
     * was never called — callers can finish() unconditionally.
     */
    bool finish();

    /** The collected events as a trace_event document (sorted). */
    io::Json toJson() const;

  private:
    struct Event
    {
        std::string name;
        const char *cat;
        std::uint32_t tid;
        std::uint64_t ts;  ///< microseconds since start()
        std::uint64_t dur; ///< microseconds
    };

    mutable std::mutex mu_;
    std::vector<Event> events_;
    std::string path_;
    TimePoint t0_;
    bool started_ = false;
    std::atomic<bool> enabled_{false};
};

/**
 * RAII trace span: records [construction, destruction) as one complete
 * event under the global writer.  @p cat groups events into trace
 * viewer rows/colors — the layer names used across the tree are
 * "sched", "campaign", "inject", and "io".
 */
class Span
{
  public:
    Span(const char *cat, const char *name)
    {
        if (TraceWriter::global().enabled())
            arm(cat, name);
    }

    Span(const char *cat, std::string name)
    {
        if (TraceWriter::global().enabled())
            arm(cat, std::move(name));
    }

    ~Span() { end(); }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Close the span early (idempotent). */
    void
    end()
    {
        if (!active_)
            return;
        active_ = false;
        TraceWriter::global().complete(cat_, std::move(name_), begin_,
                                       now());
    }

  private:
    void
    arm(const char *cat, std::string name)
    {
        cat_ = cat;
        name_ = std::move(name);
        begin_ = now();
        active_ = true;
    }

    const char *cat_ = nullptr;
    std::string name_;
    TimePoint begin_;
    bool active_ = false;
};

} // namespace merlin::obs

#endif // MERLIN_OBS_TRACE_HH
