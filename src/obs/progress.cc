#include "obs/progress.hh"

#include <chrono>
#include <cstdio>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "base/logging.hh"

namespace merlin::obs
{

namespace
{

std::uint64_t
processId()
{
#if defined(__unix__) || defined(__APPLE__)
    return static_cast<std::uint64_t>(::getpid());
#else
    return 1;
#endif
}

/** Wall-clock unix seconds — the staleness reference external
 *  monitors compare against their own clock. */
std::uint64_t
epochSeconds()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

} // namespace

ProgressSink::ProgressSink(Options opts) : opts_(std::move(opts))
{
    if (opts_.intervalSeconds <= 0.0)
        opts_.intervalSeconds = 1.0;
    emitterConfigured_ = opts_.stderrLine || !opts_.jsonPath.empty();
    if (emitterConfigured_)
        thread_ = std::thread([this] { loop(); });
}

ProgressSink::~ProgressSink()
{
    try {
        finish();
    } catch (...) {
        // Destructor context: a failed final rewrite must not
        // terminate a suite that already computed its results.
    }
}

io::Json
ProgressSink::toJson(const char *state) const
{
    const std::uint64_t inj = injections.load(std::memory_order_relaxed);
    const double elapsed = secondsSince(t0_);

    io::Json campaigns = io::Json::object();
    campaigns.set("total",
                  campaignsTotal.load(std::memory_order_relaxed));
    campaigns.set("selected",
                  campaignsSelected.load(std::memory_order_relaxed));
    campaigns.set("done", campaignsDone.load(std::memory_order_relaxed));
    campaigns.set("cached",
                  campaignsCached.load(std::memory_order_relaxed));

    io::Json doc = io::Json::object();
    doc.set("format", "merlin-progress-v1");
    doc.set("state", state);
    doc.set("pid", processId());
    doc.set("epoch", epochSeconds());
    doc.set("elapsed_seconds", elapsed);
    if (!opts_.selection.empty())
        doc.set("selection", opts_.selection);
    doc.set("campaigns", campaigns);
    doc.set("injections", inj);
    doc.set("injections_per_sec",
            elapsed > 0.0 ? static_cast<double>(inj) / elapsed : 0.0);
    return doc;
}

void
ProgressSink::emit(const char *state) const
{
    if (opts_.stderrLine) {
        const std::uint64_t done =
            campaignsDone.load(std::memory_order_relaxed);
        const std::uint64_t selected =
            campaignsSelected.load(std::memory_order_relaxed);
        const std::uint64_t cached =
            campaignsCached.load(std::memory_order_relaxed);
        const std::uint64_t inj =
            injections.load(std::memory_order_relaxed);
        const double elapsed = secondsSince(t0_);
        std::fprintf(
            stderr,
            "progress: %llu/%llu campaigns (%llu cached), %llu "
            "injections, %.1f inj/s, %.1fs%s\n",
            static_cast<unsigned long long>(done),
            static_cast<unsigned long long>(selected),
            static_cast<unsigned long long>(cached),
            static_cast<unsigned long long>(inj),
            elapsed > 0.0 ? static_cast<double>(inj) / elapsed : 0.0,
            elapsed, std::string(state) == "done" ? " [done]" : "");
    }
    if (!opts_.jsonPath.empty()) {
        // Atomic rewrite: readers (dispatch.sh) always see a complete
        // document.  No fsync — this is an operational signal, not
        // durable state; a crash simply leaves the previous rewrite.
        const std::string tmp = opts_.jsonPath + ".tmp";
        {
            std::ofstream os(tmp, std::ios::trunc);
            if (!os)
                fatal("progress: cannot write '", tmp, "'");
            os << toJson(state).dump(2) << '\n';
            os.flush();
            os.close();
            if (!os.good())
                fatal("progress: write to '", tmp,
                      "' failed (disk full?)");
        }
        if (std::rename(tmp.c_str(), opts_.jsonPath.c_str()) != 0)
            fatal("progress: cannot rename '", tmp, "' to '",
                  opts_.jsonPath, "'");
    }
}

void
ProgressSink::loop()
{
    const auto interval = std::chrono::duration<double>(
        opts_.intervalSeconds);
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
        if (cv_.wait_for(lock, interval, [this] { return stop_; }))
            break;
        lock.unlock();
        emit("running");
        lock.lock();
    }
}

void
ProgressSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (emitterConfigured_) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable())
            thread_.join();
        emit("done");
    }
}

} // namespace merlin::obs
