/**
 * @file
 * Low-overhead metrics registry for the campaign engine's hot paths.
 *
 * Three instrument kinds, all safe to hammer from every pool worker:
 *
 *   Counter    monotonic u64 (events, bytes, accumulated microseconds)
 *   Gauge      last-set double plus a running max (bench measurements)
 *   Histogram  log2-bucketed u64 samples with count/sum/min/max
 *              (latencies, queue depths)
 *
 * Updates land in cache-line-padded per-thread shards (indexed by a
 * thread-id hash), so the hot path is one relaxed atomic RMW with no
 * shared line bouncing and no locks.  Aggregation happens only at
 * snapshot() time, deterministically by sorted instrument name — so a
 * metrics dump has stable key order even though the VALUES may differ
 * run to run (threads race on real time; only simulation results are
 * byte-stable).
 *
 * Instruments live forever once created: registry lookups return
 * references that stay valid for the process lifetime (reset() zeroes
 * in place), so call sites cache them in function-local statics or
 * members instead of paying the name lookup per event.
 *
 * Telemetry is strictly out-of-band: nothing here feeds outcomes, the
 * result store, or the journal.
 */

#ifndef MERLIN_OBS_METRICS_HH
#define MERLIN_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "io/json.hh"

namespace merlin::obs
{

namespace detail
{

/** Shard count: enough to spread a few dozen workers, small enough to
 *  keep per-instrument footprint trivial. */
constexpr unsigned kShards = 16;

/** This thread's shard index (a cached thread-id hash). */
unsigned shardIndex() noexcept;

struct alignas(64) PaddedU64
{
    std::atomic<std::uint64_t> v{0};
};

} // namespace detail

/** Monotonic event/byte/microsecond counter. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1) noexcept
    {
        shards_[detail::shardIndex()].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    std::uint64_t
    total() const noexcept
    {
        std::uint64_t t = 0;
        for (const auto &s : shards_)
            t += s.v.load(std::memory_order_relaxed);
        return t;
    }

    void
    reset() noexcept
    {
        for (auto &s : shards_)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    detail::PaddedU64 shards_[detail::kShards];
};

struct GaugeSnapshot
{
    double value = 0.0; ///< most recent set() (any thread)
    double max = 0.0;   ///< largest value ever set (0 until a set)
    std::uint64_t sets = 0;
};

/** Last-set-wins value with a running max; set() is wait-free. */
class Gauge
{
  public:
    void set(double v) noexcept;
    GaugeSnapshot snapshot() const noexcept;
    void reset() noexcept;

  private:
    std::atomic<double> value_{0.0};
    std::atomic<double> max_{std::numeric_limits<double>::lowest()};
    std::atomic<std::uint64_t> sets_{0};
};

/**
 * Aggregated view of a Histogram.  buckets[b] counts samples whose
 * bit width is b, i.e. bucket 0 holds the value 0 and bucket b >= 1
 * holds [2^(b-1), 2^b).  merge() is commutative and associative, so
 * folding shard (or worker) snapshots in any order yields the same
 * aggregate.
 */
struct HistogramSnapshot
{
    static constexpr unsigned kBuckets = 65;

    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0; ///< valid only when count > 0
    std::uint64_t max = 0; ///< valid only when count > 0
    std::array<std::uint64_t, kBuckets> buckets{};

    void merge(const HistogramSnapshot &o);

    double
    mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }
};

/** Log2-bucketed distribution of u64 samples. */
class Histogram
{
  public:
    void observe(std::uint64_t v) noexcept;
    HistogramSnapshot snapshot() const;
    void reset() noexcept;

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> min{
            std::numeric_limits<std::uint64_t>::max()};
        std::atomic<std::uint64_t> max{0};
        std::atomic<std::uint64_t> buckets[HistogramSnapshot::kBuckets] =
            {};
    };

    Shard shards_[detail::kShards];
};

/**
 * A point-in-time aggregate of every instrument, entries sorted by
 * name — the deterministic serialization order.
 */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, GaugeSnapshot>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

    /**
     * `{"format": "merlin-metrics-v1", "counters": {...}, "gauges":
     * {...}, "histograms": {...}}` with keys in sorted-name order;
     * parses back under the strict io::Json parser.  Histogram
     * buckets serialize sparsely as [bucket_floor, count] pairs.
     */
    io::Json toJson() const;
};

/**
 * Name -> instrument registry.  Creation takes a mutex; the returned
 * references are update-hot-path handles valid forever.  One global()
 * registry serves the whole process — separate Registry instances
 * exist for tests.
 */
class Registry
{
  public:
    static Registry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    MetricsSnapshot snapshot() const;

    /** Zero every instrument in place (handles stay valid). */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace merlin::obs

#endif // MERLIN_OBS_METRICS_HH
