#include "obs/clock.hh"

#include <atomic>

namespace merlin::obs
{

namespace
{

/**
 * The installed override, or null for the real clock.  An atomic
 * pointer keeps the common path (no override) to one relaxed load;
 * tests that install an override synchronize their own threads.
 */
std::atomic<std::function<TimePoint()> *> clockOverride{nullptr};

} // namespace

TimePoint
now()
{
    if (auto *fn = clockOverride.load(std::memory_order_acquire))
        return (*fn)();
    return std::chrono::steady_clock::now();
}

ClockOverride::ClockOverride(std::function<TimePoint()> fn)
    : fn_(std::move(fn))
{
    prev_ = clockOverride.exchange(&fn_, std::memory_order_acq_rel);
}

ClockOverride::~ClockOverride()
{
    clockOverride.store(prev_, std::memory_order_release);
}

} // namespace merlin::obs
