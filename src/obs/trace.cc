#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "base/logging.hh"

namespace merlin::obs
{

namespace
{

std::uint64_t
processId()
{
#if defined(__unix__) || defined(__APPLE__)
    return static_cast<std::uint64_t>(::getpid());
#else
    return 1;
#endif
}

/** Small stable per-thread ids (0, 1, 2, ...) for the "tid" field —
 *  far more readable in a trace viewer than hashed native ids. */
std::uint32_t
threadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

} // namespace

TraceWriter &
TraceWriter::global()
{
    static TraceWriter w;
    return w;
}

void
TraceWriter::start(std::string path)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    path_ = std::move(path);
    t0_ = now();
    started_ = true;
    enabled_.store(true, std::memory_order_relaxed);
}

void
TraceWriter::complete(const char *cat, std::string name, TimePoint begin,
                      TimePoint end)
{
    if (!enabled())
        return;
    Event e;
    e.name = std::move(name);
    e.cat = cat;
    e.tid = threadId();
    std::lock_guard<std::mutex> lock(mu_);
    // Timestamps are relative to start(): clamp spans that began
    // before it (or raced with it) instead of underflowing.
    e.ts = microsBetween(t0_, begin);
    e.dur = microsBetween(begin, end);
    events_.push_back(std::move(e));
}

io::Json
TraceWriter::toJson() const
{
    std::vector<const Event *> sorted;
    {
        std::lock_guard<std::mutex> lock(mu_);
        sorted.reserve(events_.size());
        for (const Event &e : events_)
            sorted.push_back(&e);
    }
    // Chronological order (ties broken by thread then name) so the
    // file is stable for a given event multiset and pleasant to diff.
    std::sort(sorted.begin(), sorted.end(),
              [](const Event *a, const Event *b) {
                  if (a->ts != b->ts)
                      return a->ts < b->ts;
                  if (a->tid != b->tid)
                      return a->tid < b->tid;
                  return a->name < b->name;
              });

    const std::uint64_t pid = processId();
    io::Json arr = io::Json::array();
    for (const Event *e : sorted) {
        io::Json ev = io::Json::object();
        ev.set("name", e->name);
        ev.set("cat", e->cat);
        ev.set("ph", "X");
        ev.set("pid", pid);
        ev.set("tid", std::uint64_t(e->tid));
        ev.set("ts", e->ts);
        ev.set("dur", e->dur);
        arr.push(ev);
    }
    io::Json doc = io::Json::object();
    doc.set("traceEvents", arr);
    doc.set("displayTimeUnit", "ms");
    return doc;
}

bool
TraceWriter::finish()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!started_)
            return false;
    }
    // Disable first: stragglers on other threads stop recording while
    // we serialize (any that raced in already hold the buffer's data).
    enabled_.store(false, std::memory_order_relaxed);
    const io::Json doc = toJson();

    std::string path;
    {
        std::lock_guard<std::mutex> lock(mu_);
        path = path_;
        events_.clear();
        path_.clear();
        started_ = false;
    }
    if (path.empty())
        return true;

    // Atomic publish (temp + rename), like every other artifact the
    // tree writes: a crash mid-dump must not leave a torn trace.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            fatal("trace: cannot write '", tmp, "'");
        os << doc.dump(2) << '\n';
        os.flush();
        os.close();
        if (!os.good())
            fatal("trace: write to '", tmp, "' failed (disk full?)");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("trace: cannot rename '", tmp, "' to '", path, "'");
    return true;
}

} // namespace merlin::obs
