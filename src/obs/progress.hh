/**
 * @file
 * Live progress for long suites: a periodic stderr line for humans
 * and an atomically-rewritten progress.json for machines (the
 * heartbeat/completeness source tools/dispatch.sh reads instead of
 * scraping logs).
 *
 * The sink is a bundle of relaxed atomic counters the scheduler and
 * injection callbacks bump, plus an optional background emitter
 * thread that samples them every intervalSeconds.  An unconfigured
 * sink (no stderr line, no json path) never starts the thread, so
 * schedulers can own one unconditionally at the cost of a few
 * atomics.
 *
 * progress.json schema (format "merlin-progress-v1"):
 *
 *   {
 *     "format": "merlin-progress-v1",
 *     "state": "running" | "done",
 *     "pid": 12345,
 *     "epoch": 1754650000,          // unix seconds of this rewrite
 *     "elapsed_seconds": 12.5,
 *     "selection": "0/3 round-robin",   // only under --select
 *     "campaigns": {"total": 8, "selected": 8, "done": 3, "cached": 1},
 *     "injections": 12345,
 *     "injections_per_sec": 456.7
 *   }
 *
 * Each rewrite is temp-file + rename, so a reader never sees a torn
 * document; "epoch" freezing while "injections" stops growing is the
 * stall signature dispatch.sh keys on.  Strictly out-of-band: the
 * sink only ever reads engine state.
 */

#ifndef MERLIN_OBS_PROGRESS_HH
#define MERLIN_OBS_PROGRESS_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "io/json.hh"
#include "obs/clock.hh"

namespace merlin::obs
{

class ProgressSink
{
  public:
    struct Options
    {
        /** Emitter cadence in seconds (applies to both outputs). */
        double intervalSeconds = 1.0;
        /** Print a progress line to stderr each interval. */
        bool stderrLine = false;
        /** Rewrite this progress.json each interval ("" = none). */
        std::string jsonPath;
        /** Selection label for the json ("" = whole suite). */
        std::string selection;
    };

    /** Inert sink: counters usable, nothing emitted. */
    ProgressSink() = default;

    /** Starts the emitter thread when either output is configured. */
    explicit ProgressSink(Options opts);

    ~ProgressSink();

    ProgressSink(const ProgressSink &) = delete;
    ProgressSink &operator=(const ProgressSink &) = delete;

    // Engine-updated counters (relaxed; exactness per sample is not a
    // goal — the final "done" emit sees the settled values).
    std::atomic<std::uint64_t> campaignsTotal{0};
    std::atomic<std::uint64_t> campaignsSelected{0};
    std::atomic<std::uint64_t> campaignsDone{0};
    std::atomic<std::uint64_t> campaignsCached{0};
    std::atomic<std::uint64_t> injections{0};

    /**
     * Stop the emitter and write the final state ("done") to both
     * outputs.  Idempotent; the destructor calls it.
     */
    void finish();

    /** Current snapshot as progress.json content. */
    io::Json toJson(const char *state) const;

  private:
    void emit(const char *state) const;
    void loop();

    Options opts_;
    TimePoint t0_ = now();
    bool emitterConfigured_ = false;
    bool finished_ = false;
    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace merlin::obs

#endif // MERLIN_OBS_PROGRESS_HH
