/**
 * @file
 * The tree's single monotonic-clock wrapper.
 *
 * Every wall-clock read in the engine — suite/campaign phase timing,
 * the injection watchdog, metrics latencies, trace span timestamps —
 * goes through obs::now(), so there is exactly one clock in the tree
 * and exactly one test seam: ClockOverride swaps the source for a
 * deterministic fake, letting tests drive watchdogs and timers
 * without sleeping.
 *
 * Telemetry built on this clock is strictly out-of-band: time values
 * feed reports, metrics and traces, never simulation outcomes.
 */

#ifndef MERLIN_OBS_CLOCK_HH
#define MERLIN_OBS_CLOCK_HH

#include <chrono>
#include <cstdint>
#include <functional>

namespace merlin::obs
{

using TimePoint = std::chrono::steady_clock::time_point;

/** Current monotonic time (the override's, when a test installed one). */
TimePoint now();

/** Seconds from @p t0 to @p t1 (negative if t1 precedes t0). */
inline double
secondsBetween(TimePoint t0, TimePoint t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Seconds elapsed since @p t0. */
inline double
secondsSince(TimePoint t0)
{
    return secondsBetween(t0, now());
}

/** Whole microseconds from @p t0 to @p t1, clamped at zero. */
inline std::uint64_t
microsBetween(TimePoint t0, TimePoint t1)
{
    if (t1 <= t0)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
}

/** Whole microseconds elapsed since @p t0, clamped at zero. */
inline std::uint64_t
microsSince(TimePoint t0)
{
    return microsBetween(t0, now());
}

/**
 * Test seam: while alive, obs::now() returns @p fn() instead of the
 * steady clock.  Overrides do not nest (the previous source is
 * restored on destruction, so scoped use in one test at a time is
 * fine); installing one while worker threads are reading the clock is
 * the test's own race to avoid.
 */
class ClockOverride
{
  public:
    explicit ClockOverride(std::function<TimePoint()> fn);
    ~ClockOverride();

    ClockOverride(const ClockOverride &) = delete;
    ClockOverride &operator=(const ClockOverride &) = delete;

  private:
    std::function<TimePoint()> fn_;
    std::function<TimePoint()> *prev_;
};

} // namespace merlin::obs

#endif // MERLIN_OBS_CLOCK_HH
