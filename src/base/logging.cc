#include "base/logging.hh"

#include <iostream>

namespace merlin::detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "panic: " << msg;
    if (line != 0)
        os << " [" << file << ":" << line << "]";
    throw SimAssertError(os.str());
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << msg;
    if (line != 0)
        os << " [" << file << ":" << line << "]";
    throw FatalError(os.str());
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << "\n";
}

} // namespace merlin::detail
