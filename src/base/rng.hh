/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic step of a campaign (fault sampling, representative
 * selection, Relyzer pilot choice) draws from an explicitly seeded Rng so
 * that campaigns are bit-for-bit reproducible.  The generator is
 * xoshiro256**, seeded through SplitMix64 as its authors recommend.
 */

#ifndef MERLIN_BASE_RNG_HH
#define MERLIN_BASE_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace merlin
{

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextInRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for per-run streams). */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace merlin

#endif // MERLIN_BASE_RNG_HH
