/**
 * @file
 * Error-reporting idioms in the gem5 tradition.
 *
 * panic()  - an internal invariant of the simulator itself is broken;
 *            never the user's fault.  Raises SimAssertError, which the
 *            fault-injection harness classifies in the Assert category
 *            (Table 2 of the paper).
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, malformed program).  Raises FatalError.
 * warn()/inform() - status messages on stderr; never stop the run.
 */

#ifndef MERLIN_BASE_LOGGING_HH
#define MERLIN_BASE_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace merlin
{

/** Thrown by panic()/MERLIN_ASSERT: a simulator-internal bug tripped. */
class SimAssertError : public std::logic_error
{
  public:
    explicit SimAssertError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Thrown by fatal(): user-caused condition the simulation cannot survive. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Stream-concatenate arbitrary arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl("?", 0, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl("?", 0, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace merlin

/**
 * Simulator invariant check.  Unlike assert(3) this stays on in release
 * builds and is trappable: the injection harness catches SimAssertError
 * and classifies the run as Assert instead of killing the process.
 */
#define MERLIN_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::merlin::detail::panicImpl(                                    \
                __FILE__, __LINE__,                                         \
                ::merlin::detail::concat("assertion '" #cond "' failed: ",  \
                                         __VA_ARGS__));                     \
        }                                                                   \
    } while (0)

#endif // MERLIN_BASE_LOGGING_HH
