#include "base/statistics.hh"

#include <cmath>

#include "base/logging.hh"

namespace merlin::stats
{

namespace
{

/**
 * Inverse of the standard normal CDF (Acklam's rational approximation,
 * relative error < 1.15e-9 — far tighter than sampling needs).
 */
double
normalQuantile(double p)
{
    MERLIN_ASSERT(p > 0.0 && p < 1.0, "quantile domain");

    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double plow = 0.02425;
    const double phigh = 1 - plow;

    if (p < plow) {
        double q = std::sqrt(-2 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (p <= phigh) {
        double q = p - 0.5;
        double r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
                1);
    }
    double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

} // namespace

double
zForConfidence(double confidence)
{
    MERLIN_ASSERT(confidence > 0.0 && confidence < 1.0, "confidence domain");
    return normalQuantile(0.5 + confidence / 2.0);
}

std::uint64_t
sampleSize(double population, double error_margin, double confidence,
           double p)
{
    MERLIN_ASSERT(population >= 1.0, "empty population");
    MERLIN_ASSERT(error_margin > 0.0, "zero error margin");
    const double t = zForConfidence(confidence);
    const double denom =
        1.0 + error_margin * error_margin * (population - 1.0) /
                  (t * t * p * (1.0 - p));
    const double n = population / denom;
    return static_cast<std::uint64_t>(std::ceil(n));
}

double
errorMargin(double population, double sample, double confidence, double p)
{
    MERLIN_ASSERT(sample >= 1.0 && population >= sample, "bad sample");
    const double t = zForConfidence(confidence);
    const double e2 = (population / sample - 1.0) * t * t * p * (1.0 - p) /
                      (population - 1.0);
    return std::sqrt(std::max(0.0, e2));
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
variance(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double s = 0.0;
    for (double x : v)
        s += (x - m) * (x - m);
    return s / static_cast<double>(v.size());
}

} // namespace merlin::stats
