/**
 * @file
 * Fundamental scalar types shared by every MeRLiN module.
 */

#ifndef MERLIN_BASE_TYPES_HH
#define MERLIN_BASE_TYPES_HH

#include <cstdint>

namespace merlin
{

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Virtual / physical address in the simulated machine (flat mapping). */
using Addr = std::uint64_t;

/** Instruction pointer of a static macro instruction (the paper's RIP). */
using Rip = std::uint64_t;

/** Index of a micro-op within its macro instruction (the paper's uPC). */
using Upc = std::uint8_t;

/** Global commit sequence number of a dynamic uop. */
using SeqNum = std::uint64_t;

/** Index of an entry inside a hardware structure (register, slot, word). */
using EntryIndex = std::uint32_t;

} // namespace merlin

#endif // MERLIN_BASE_TYPES_HH
