/**
 * @file
 * Bit and byte manipulation helpers used by the ISA and the injector.
 */

#ifndef MERLIN_BASE_BITS_HH
#define MERLIN_BASE_BITS_HH

#include <cstdint>
#include <cstring>

namespace merlin
{

/** Sign-extend the low @p bits of @p value to 64 bits. */
inline std::int64_t
signExtend(std::uint64_t value, unsigned bits)
{
    const unsigned shift = 64 - bits;
    return static_cast<std::int64_t>(value << shift) >> shift;
}

/** Extract bits [lo, lo+len) of @p value. */
inline std::uint64_t
bitsOf(std::uint64_t value, unsigned lo, unsigned len)
{
    if (len >= 64)
        return value >> lo;
    return (value >> lo) & ((1ULL << len) - 1);
}

/** Read a little-endian integer of @p size bytes from @p p. */
inline std::uint64_t
loadLE(const std::uint8_t *p, unsigned size)
{
    std::uint64_t v = 0;
    std::memcpy(&v, p, size);
    return v;
}

/** Write the low @p size bytes of @p v little-endian at @p p. */
inline void
storeLE(std::uint8_t *p, std::uint64_t v, unsigned size)
{
    std::memcpy(p, &v, size);
}

/** True if @p addr is naturally aligned for an access of @p size bytes. */
inline bool
isAligned(std::uint64_t addr, unsigned size)
{
    return (addr & (size - 1)) == 0;
}

} // namespace merlin

#endif // MERLIN_BASE_BITS_HH
