/**
 * @file
 * Strict numeric parsing shared by the CLI and the bench drivers.
 *
 * std::strtoull and friends are traps for command-line input: they
 * skip leading whitespace, accept a sign on UNSIGNED conversions
 * (wrapping "-1" to 2^64-1), ignore trailing junk unless the caller
 * checks the end pointer, and only report overflow through errno.
 * Every flag value goes through these helpers instead, so garbage,
 * overflow and trailing junk are diagnosed identically everywhere.
 */

#ifndef MERLIN_BASE_PARSE_HH
#define MERLIN_BASE_PARSE_HH

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

#include "base/logging.hh"

namespace merlin::base
{

/**
 * Parse the WHOLE of @p s as an unsigned 64-bit integer in @p base.
 * @return nullopt on empty input, leading whitespace or sign, digits
 * outside the base, trailing junk, or overflow.
 */
inline std::optional<std::uint64_t>
tryParseU64(const std::string &s, int base = 10)
{
    if (s.empty() || std::isspace(static_cast<unsigned char>(s[0])) ||
        s[0] == '-' || s[0] == '+')
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(s.c_str(), &end, base);
    if (errno == ERANGE || end != s.c_str() + s.size())
        return std::nullopt;
    return v;
}

/** tryParseU64 or fatal(); @p what names the flag/field for the user. */
inline std::uint64_t
parseU64(const std::string &s, const std::string &what)
{
    const auto v = tryParseU64(s);
    if (!v)
        fatal(what, ": '", s,
              "' is not an unsigned 64-bit integer (garbage, sign, "
              "trailing junk, or overflow)");
    return *v;
}

/**
 * parseU64 restricted to the 32-bit range, for flag values that land
 * in `unsigned` fields (thread counts, structure geometry).  Without
 * the range check a strictly-parsed 2^32 would truncate to 0 — for
 * --jobs that silently means "all hardware threads".
 */
inline unsigned
parseU32(const std::string &s, const std::string &what)
{
    const std::uint64_t v = parseU64(s, what);
    if (v > 0xffffffffULL)
        fatal(what, ": ", v, " does not fit in 32 bits");
    return static_cast<unsigned>(v);
}

/**
 * Parse the WHOLE of @p s as a finite double.  A leading minus is
 * allowed; leading whitespace, trailing junk, over/underflow to
 * +-inf, and the textual "inf"/"nan" forms are not.
 */
inline std::optional<double>
tryParseDouble(const std::string &s)
{
    if (s.empty() || std::isspace(static_cast<unsigned char>(s[0])) ||
        s[0] == '+')
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (errno == ERANGE || end != s.c_str() + s.size() ||
        !std::isfinite(v))
        return std::nullopt;
    return v;
}

/** tryParseDouble or fatal(); @p what names the flag/field. */
inline double
parseDouble(const std::string &s, const std::string &what)
{
    const auto v = tryParseDouble(s);
    if (!v)
        fatal(what, ": '", s, "' is not a finite number");
    return *v;
}

} // namespace merlin::base

#endif // MERLIN_BASE_PARSE_HH
