#include "base/threadpool.hh"

#include <atomic>
#include <memory>

namespace merlin::base
{

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(fn));
    }
    workCv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
        }
        idleCv_.notify_all();
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
ThreadPool::parallelFor(std::uint64_t n,
                        const std::function<void(std::uint64_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        for (std::uint64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    auto next = std::make_shared<std::atomic<std::uint64_t>>(0);
    const std::uint64_t tasks =
        std::min<std::uint64_t>(workers_.size(), n);
    for (std::uint64_t t = 0; t < tasks; ++t) {
        submit([next, n, &fn] {
            for (std::uint64_t i;
                 (i = next->fetch_add(1, std::memory_order_relaxed)) < n;)
                fn(i);
        });
    }
    wait();
}

} // namespace merlin::base
