#include "base/threadpool.hh"

#include <atomic>
#include <memory>

#include "obs/clock.hh"

namespace merlin::base
{

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : tasksSubmitted_(obs::Registry::global().counter(
          "pool.tasks_submitted")),
      tasksRun_(obs::Registry::global().counter("pool.tasks_run")),
      busyMicros_(obs::Registry::global().counter("pool.busy_us")),
      queueDepth_(obs::Registry::global().histogram("pool.queue_depth"))
{
    if (threads == 0)
        threads = hardwareThreads();
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> fn, const void *tag)
{
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(QueuedTask{std::move(fn), tag});
        depth = queue_.size();
    }
    tasksSubmitted_.add();
    queueDepth_.observe(depth);
    workCv_.notify_one();
}

void
ThreadPool::runTask(QueuedTask &task)
{
    const obs::TimePoint t0 = obs::now();
    try {
        task.fn();
    } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
    busyMicros_.add(obs::microsSince(t0));
    tasksRun_.add();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        QueuedTask task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        runTask(task);
        {
            // Notify UNDER the lock: a waiter that saw the drain after
            // an unlocked decrement could destroy the pool before an
            // unlocked notify touched the condition variable.
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            idleCv_.notify_all();
        }
    }
}

bool
ThreadPool::runOne(const void *tag)
{
    QueuedTask task;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = queue_.begin();
        if (tag) {
            while (it != queue_.end() && it->tag != tag)
                ++it;
        }
        if (it == queue_.end())
            return false;
        task = std::move(*it);
        queue_.erase(it);
        ++inFlight_;
    }
    runTask(task);
    {
        // Under the lock, as in workerLoop: runOne may be called by a
        // thread that does not own the pool's lifetime.
        std::lock_guard<std::mutex> lock(mu_);
        --inFlight_;
        idleCv_.notify_all();
    }
    return true;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
ThreadPool::parallelFor(std::uint64_t n,
                        const std::function<void(std::uint64_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        for (std::uint64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    auto next = std::make_shared<std::atomic<std::uint64_t>>(0);
    const std::uint64_t tasks =
        std::min<std::uint64_t>(workers_.size(), n);
    for (std::uint64_t t = 0; t < tasks; ++t) {
        submit([next, n, &fn] {
            for (std::uint64_t i;
                 (i = next->fetch_add(1, std::memory_order_relaxed)) < n;)
                fn(i);
        });
    }
    wait();
}

// ------------------------------------------------------------ TaskGroup

void
TaskGroup::submit(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++pending_;
    }
    try {
        pool_.submit(
            [this, fn = std::move(fn)] {
                // The group's tasks report to the group, not to the
                // pool's firstError_: a suite campaign's failure
                // belongs to that campaign's wait(), not to whoever
                // calls pool.wait() last.
                std::exception_ptr err;
                try {
                    fn();
                } catch (...) {
                    err = std::current_exception();
                }
                {
                    // Notify UNDER the lock: once pending_ hits zero a
                    // waiter may destroy this group, and an unlocked
                    // notify would then touch a dead doneCv_.
                    std::lock_guard<std::mutex> lock(mu_);
                    if (err && !firstError_)
                        firstError_ = err;
                    --pending_;
                    doneCv_.notify_all();
                }
            },
            /*tag=*/this);
    } catch (...) {
        // The task never reached the queue (queue allocation failure):
        // roll the count back, or wait() would block on a task that
        // does not exist.
        std::lock_guard<std::mutex> lock(mu_);
        --pending_;
        throw;
    }
}

void
TaskGroup::wait()
{
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (pending_ == 0)
                break;
        }
        if (!pool_.runOne(/*tag=*/this)) {
            // None of OUR tasks are queued (they run on workers, or
            // foreign tasks head the queue — those are the workers'
            // business, never nested here).  Any completion notifies,
            // so re-checking under the lock before sleeping closes
            // the lost-wakeup window.
            std::unique_lock<std::mutex> lock(mu_);
            if (pending_ != 0)
                doneCv_.wait(lock);
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
TaskGroup::waitNoThrow() noexcept
{
    try {
        wait();
    } catch (...) {
        // Destructor context: the error was already lost to the caller.
    }
}

} // namespace merlin::base
