#include "base/cow.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "base/logging.hh"

namespace merlin::base
{

CowBytes::CowBytes(std::size_t size, std::uint32_t chunk_bytes)
    : size_(size), chunkBytes_(chunk_bytes)
{
    MERLIN_ASSERT(std::has_single_bit(chunk_bytes) && chunk_bytes >= 8,
                  "CowBytes chunk size must be a power of two >= 8");
    chunkShift_ = static_cast<std::uint32_t>(std::countr_zero(chunk_bytes));
    const std::size_t n = (size + chunk_bytes - 1) >> chunkShift_;
    chunks_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        chunks_.push_back(std::make_shared<Chunk>(chunk_bytes, 0));
}

std::uint8_t *
CowBytes::chunkForWrite(std::size_t idx)
{
    std::shared_ptr<Chunk> &c = chunks_[idx];
    // use_count() can transiently over-count under concurrent release;
    // that only costs a spurious copy (see the header's thread note).
    if (c.use_count() > 1) {
        c = std::make_shared<Chunk>(*c);
        bytesDetached_ += chunkBytes_;
    }
    return c->data();
}

const std::uint8_t *
CowBytes::readPtr(std::size_t off, std::size_t len) const
{
    MERLIN_ASSERT(off + len <= size_ && len > 0, "CowBytes read range");
    MERLIN_ASSERT((off >> chunkShift_) == ((off + len - 1) >> chunkShift_),
                  "CowBytes read spans chunks");
    return chunks_[off >> chunkShift_]->data() +
           (off & (chunkBytes_ - 1));
}

std::uint8_t *
CowBytes::writePtr(std::size_t off, std::size_t len)
{
    MERLIN_ASSERT(off + len <= size_ && len > 0, "CowBytes write range");
    MERLIN_ASSERT((off >> chunkShift_) == ((off + len - 1) >> chunkShift_),
                  "CowBytes write spans chunks");
    return chunkForWrite(off >> chunkShift_) + (off & (chunkBytes_ - 1));
}

void
CowBytes::read(std::size_t off, void *out, std::size_t len) const
{
    MERLIN_ASSERT(off + len <= size_, "CowBytes read range");
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        const std::size_t in_chunk = off & (chunkBytes_ - 1);
        const std::size_t run =
            std::min<std::size_t>(len, chunkBytes_ - in_chunk);
        std::memcpy(dst, chunks_[off >> chunkShift_]->data() + in_chunk,
                    run);
        off += run;
        dst += run;
        len -= run;
    }
}

void
CowBytes::write(std::size_t off, const void *in, std::size_t len)
{
    MERLIN_ASSERT(off + len <= size_, "CowBytes write range");
    const auto *src = static_cast<const std::uint8_t *>(in);
    while (len > 0) {
        const std::size_t in_chunk = off & (chunkBytes_ - 1);
        const std::size_t run =
            std::min<std::size_t>(len, chunkBytes_ - in_chunk);
        std::memcpy(chunkForWrite(off >> chunkShift_) + in_chunk, src,
                    run);
        off += run;
        src += run;
        len -= run;
    }
}

bool
CowBytes::contentEquals(const CowBytes &o) const
{
    if (size_ != o.size_)
        return false;
    if (chunkBytes_ == o.chunkBytes_) {
        for (std::size_t i = 0; i < chunks_.size(); ++i) {
            if (chunks_[i] == o.chunks_[i])
                continue; // physically shared: equal by identity
            if (std::memcmp(chunks_[i]->data(), o.chunks_[i]->data(),
                            chunkBytes_) != 0) {
                return false;
            }
        }
        return true;
    }
    // Mixed granularities: compare the overlap of each chunk pair.
    std::size_t off = 0;
    while (off < size_) {
        const std::size_t a_room = chunkBytes_ - (off & (chunkBytes_ - 1));
        const std::size_t b_room =
            o.chunkBytes_ - (off & (o.chunkBytes_ - 1));
        const std::size_t run =
            std::min({a_room, b_room, size_ - off});
        if (std::memcmp(chunks_[off >> chunkShift_]->data() +
                            (off & (chunkBytes_ - 1)),
                        o.chunks_[off >> o.chunkShift_]->data() +
                            (off & (o.chunkBytes_ - 1)),
                        run) != 0) {
            return false;
        }
        off += run;
    }
    return true;
}

std::size_t
CowBytes::sharedChunksWith(const CowBytes &o) const
{
    if (chunkBytes_ != o.chunkBytes_ || size_ != o.size_)
        return 0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < chunks_.size(); ++i)
        n += chunks_[i] == o.chunks_[i] ? 1 : 0;
    return n;
}

std::size_t
CowBytes::exclusiveChunks() const
{
    std::size_t n = 0;
    for (const auto &c : chunks_)
        n += c.use_count() == 1 ? 1 : 0;
    return n;
}

void
CowBytes::detachAll()
{
    for (std::size_t i = 0; i < chunks_.size(); ++i)
        chunkForWrite(i);
}

} // namespace merlin::base
