/**
 * @file
 * Small fixed-size worker pool for fan-out/join parallelism, plus a
 * TaskGroup for tracking completion of a subset of tasks on a shared
 * pool.
 *
 * The campaign engine uses the pool to spread independent injection
 * runs across cores.  Scheduling is dynamic (a shared work queue), so
 * the assignment of items to threads is nondeterministic — callers
 * that need deterministic results must write each item's output to a
 * slot derived from the item itself, never from arrival order.
 *
 * The suite scheduler multiplexes many campaigns onto ONE pool: each
 * campaign submits its injections through its own TaskGroup, so
 * workers that finish one campaign's tasks steal the next queued task
 * regardless of which campaign it belongs to.  TaskGroup::wait() also
 * help-runs the group's own queued tasks on the waiting thread, so a
 * pool task may itself fan out a batch and wait on it without
 * deadlocking — even on a single-worker pool.
 *
 * The first exception thrown by a task is captured and rethrown from
 * wait() on the submitting thread (per group for TaskGroup); later
 * exceptions are dropped.
 */

#ifndef MERLIN_BASE_THREADPOOL_HH
#define MERLIN_BASE_THREADPOOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace merlin::base
{

class ThreadPool
{
  public:
    /** @p threads worker threads; 0 picks the hardware concurrency. */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Enqueue one task, optionally tagged with its TaskGroup. */
    void submit(std::function<void()> fn, const void *tag = nullptr);

    /** Block until every submitted task has finished; rethrows. */
    void wait();

    /**
     * Pop one queued task and run it on the calling thread; with a
     * non-null @p tag, only a task carrying that tag (i.e. one
     * TaskGroup's own work).  @return false when no eligible task was
     * queued (one may still be running on a worker).  Lets blocked
     * waiters contribute work instead of idling — the basis of
     * TaskGroup's deadlock-free nested wait().
     */
    bool runOne(const void *tag = nullptr);

    /**
     * Run fn(0) .. fn(n-1) across the pool with dynamic scheduling and
     * block until all are done.  With an empty pool (threads == 1 would
     * still spawn a worker; an explicit 0-item call is a no-op) the
     * items run inline on the caller.
     */
    void parallelFor(std::uint64_t n,
                     const std::function<void(std::uint64_t)> &fn);

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned hardwareThreads();

  private:
    struct QueuedTask
    {
        std::function<void()> fn;
        const void *tag = nullptr; ///< owning TaskGroup, if any
    };

    void workerLoop();
    void runTask(QueuedTask &task);

    // Pool telemetry (global obs registry instruments, shared by every
    // pool in the process): tasks submitted/run, queue depth at each
    // submit, and accumulated task-execution microseconds — the
    // utilization numerator against workers x wall time.
    obs::Counter &tasksSubmitted_;
    obs::Counter &tasksRun_;
    obs::Counter &busyMicros_;
    obs::Histogram &queueDepth_;

    std::vector<std::thread> workers_;
    std::deque<QueuedTask> queue_;
    mutable std::mutex mu_;
    std::condition_variable workCv_;  ///< workers wait for tasks
    std::condition_variable idleCv_;  ///< wait() waits for drain
    std::size_t inFlight_ = 0;
    std::exception_ptr firstError_;
    bool stop_ = false;
};

/**
 * Completion tracking for a subset of tasks on a shared ThreadPool.
 *
 * Many groups can multiplex one pool; each group's wait() returns as
 * soon as ITS tasks are done, independent of the others.  wait()
 * help-runs queued pool tasks (from any group) while waiting, so a
 * task running on the pool may submit a nested batch through a group
 * and wait on it — this is what lets a campaign fan its injections
 * into the shared suite pool from inside a pool task.
 *
 * A group must outlive its submitted tasks; wait() before destruction.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool) : pool_(pool) {}

    ~TaskGroup() { waitNoThrow(); }

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Enqueue one task counted toward this group. */
    void submit(std::function<void()> fn);

    /**
     * Block until every task of this group has finished, help-running
     * THIS group's queued tasks meanwhile (foreign tasks are left to
     * the pool workers, so a waiting campaign never nests another
     * campaign on its stack).  Rethrows the group's first task
     * exception.
     */
    void wait();

    ThreadPool &pool() { return pool_; }

  private:
    void waitNoThrow() noexcept;

    ThreadPool &pool_;
    std::mutex mu_;
    std::condition_variable doneCv_;
    std::size_t pending_ = 0;
    std::exception_ptr firstError_;
};

} // namespace merlin::base

#endif // MERLIN_BASE_THREADPOOL_HH
