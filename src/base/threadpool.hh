/**
 * @file
 * Small fixed-size worker pool for fan-out/join parallelism.
 *
 * The campaign engine uses it to spread independent injection runs
 * across cores.  Scheduling is dynamic (a shared work index), so the
 * assignment of items to threads is nondeterministic — callers that
 * need deterministic results must write each item's output to a slot
 * derived from the item itself, never from arrival order.
 *
 * The first exception thrown by a task is captured and rethrown from
 * wait() on the submitting thread; later exceptions are dropped.
 */

#ifndef MERLIN_BASE_THREADPOOL_HH
#define MERLIN_BASE_THREADPOOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace merlin::base
{

class ThreadPool
{
  public:
    /** @p threads worker threads; 0 picks the hardware concurrency. */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Enqueue one task. */
    void submit(std::function<void()> fn);

    /** Block until every submitted task has finished; rethrows. */
    void wait();

    /**
     * Run fn(0) .. fn(n-1) across the pool with dynamic scheduling and
     * block until all are done.  With an empty pool (threads == 1 would
     * still spawn a worker; an explicit 0-item call is a no-op) the
     * items run inline on the caller.
     */
    void parallelFor(std::uint64_t n,
                     const std::function<void(std::uint64_t)> &fn);

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mu_;
    std::condition_variable workCv_;  ///< workers wait for tasks
    std::condition_variable idleCv_;  ///< wait() waits for drain
    std::size_t inFlight_ = 0;
    std::exception_ptr firstError_;
    bool stop_ = false;
};

} // namespace merlin::base

#endif // MERLIN_BASE_THREADPOOL_HH
