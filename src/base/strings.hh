/**
 * @file
 * Small string helpers shared by the CLI and the bench drivers.
 */

#ifndef MERLIN_BASE_STRINGS_HH
#define MERLIN_BASE_STRINGS_HH

#include <string>
#include <vector>

namespace merlin::base
{

/**
 * Split a comma-separated list, dropping empty items so stray
 * separators ("a,,b", trailing comma) cannot inject a nameless
 * entry.
 */
inline std::vector<std::string>
splitCommaList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        std::size_t c = s.find(',', pos);
        std::string item =
            s.substr(pos, c == std::string::npos ? c : c - pos);
        if (!item.empty())
            out.push_back(std::move(item));
        pos = c == std::string::npos ? c : c + 1;
    }
    return out;
}

} // namespace merlin::base

#endif // MERLIN_BASE_STRINGS_HH
