/**
 * @file
 * Chunked copy-on-write byte storage.
 *
 * A CowBytes is a flat byte array split into fixed-size chunks, each
 * held by a shared_ptr.  Copying the array copies only the chunk
 * pointer table (O(#chunks)); the first write into a shared chunk
 * detaches a private copy of that chunk only.  This is the substrate
 * under both the simulated machine's SegmentedMemory and the cache
 * data arrays: core snapshots become pointer copies, restored cores
 * pay only for the chunks they actually dirty, and state comparison
 * short-circuits on chunk identity.
 *
 * Thread-safety: a CowBytes value is confined to one thread, but two
 * values sharing chunks may live on different threads (a snapshot and
 * the cores restored from it).  Shared chunk bytes are never mutated —
 * writers detach first — and a racy use_count() can only over-count,
 * which costs an unnecessary copy, never an aliased write.
 */

#ifndef MERLIN_BASE_COW_HH
#define MERLIN_BASE_COW_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace merlin::base
{

class CowBytes
{
  public:
    /** Default chunk granularity (bytes); a power of two. */
    static constexpr std::uint32_t kDefaultChunkBytes = 4096;

    CowBytes() = default;

    /**
     * Zero-filled array of @p size bytes in chunks of @p chunk_bytes
     * (a power of two >= 8; the last chunk is padded to full size).
     */
    CowBytes(std::size_t size, std::uint32_t chunk_bytes);

    std::size_t size() const { return size_; }
    std::uint32_t chunkBytes() const { return chunkBytes_; }
    std::size_t numChunks() const { return chunks_.size(); }

    /**
     * Read-only pointer to [off, off+len); the range must not cross a
     * chunk boundary.
     */
    const std::uint8_t *readPtr(std::size_t off, std::size_t len) const;

    /**
     * Writable pointer to [off, off+len) within one chunk; detaches
     * the chunk if it is shared.
     */
    std::uint8_t *writePtr(std::size_t off, std::size_t len);

    /** Copy out [off, off+len), chunk-spanning allowed. */
    void read(std::size_t off, void *out, std::size_t len) const;

    /** Copy in [off, off+len), chunk-spanning allowed; detaches. */
    void write(std::size_t off, const void *in, std::size_t len);

    /**
     * Byte equality with @p o (same logical size required).  Chunks
     * shared between the two arrays compare by pointer identity and
     * are never touched; only detached chunks are compared bytewise.
     * Arrays with different chunk granularities fall back to a
     * run-wise byte compare.
     */
    bool contentEquals(const CowBytes &o) const;

    /** Chunks physically shared with @p o (same granularity only). */
    std::size_t sharedChunksWith(const CowBytes &o) const;

    /** Chunks this array does not share with any other CowBytes. */
    std::size_t exclusiveChunks() const;

    /** Give every chunk a private copy (emulates a deep copy). */
    void detachAll();

    /**
     * Bytes copied by detaches since this value was constructed or
     * copied (a copy inherits the donor's count; take deltas).
     */
    std::uint64_t bytesDetached() const { return bytesDetached_; }

  private:
    using Chunk = std::vector<std::uint8_t>;

    std::uint8_t *chunkForWrite(std::size_t idx);

    std::vector<std::shared_ptr<Chunk>> chunks_;
    std::size_t size_ = 0;
    std::uint32_t chunkBytes_ = 0;
    std::uint32_t chunkShift_ = 0;
    std::uint64_t bytesDetached_ = 0;
};

} // namespace merlin::base

#endif // MERLIN_BASE_COW_HH
