#include "base/rng.hh"

#include "base/logging.hh"

namespace merlin
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : state_)
        w = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    MERLIN_ASSERT(bound != 0, "nextBelow(0)");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextInRange(std::uint64_t lo, std::uint64_t hi)
{
    MERLIN_ASSERT(lo <= hi, "bad range");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace merlin
