/**
 * @file
 * Statistical fault-sampling math (Leveugle et al., DATE 2009 [26]).
 *
 * The initial fault list of a campaign is a simple random sample from the
 * exhaustive fault population N = structure_bits x execution_cycles.  The
 * sample size for error margin e and confidence level c (with the
 * conservative p = 0.5) is
 *
 *     n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))
 *
 * where t is the two-sided normal quantile for confidence c.  The paper's
 * campaigns: e = 0.0288, c = 0.99  ->  ~2,000 faults;
 *            e = 0.0063, c = 0.998 ->  ~60,000 faults;
 *            e = 0.0019, c = 0.998 ->  ~600,000 faults.
 */

#ifndef MERLIN_BASE_STATISTICS_HH
#define MERLIN_BASE_STATISTICS_HH

#include <cstdint>
#include <vector>

namespace merlin::stats
{

/** Two-sided standard-normal quantile for a confidence level in (0,1). */
double zForConfidence(double confidence);

/**
 * Leveugle sample size for a finite population.
 *
 * @param population     exhaustive fault count N (bits x cycles)
 * @param error_margin   e, e.g. 0.0063
 * @param confidence     c, e.g. 0.998
 * @param p              assumed proportion (0.5 is the conservative choice)
 */
std::uint64_t sampleSize(double population, double error_margin,
                         double confidence, double p = 0.5);

/**
 * Error margin achieved by a sample of size n from population N at the
 * given confidence (inverse of sampleSize).
 */
double errorMargin(double population, double sample, double confidence,
                   double p = 0.5);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &v);

/** Population variance; 0 for fewer than two elements. */
double variance(const std::vector<double> &v);

} // namespace merlin::stats

#endif // MERLIN_BASE_STATISTICS_HH
