#include "profile/ace.hh"

#include <algorithm>

#include "base/logging.hh"

namespace merlin::profile
{

using uarch::Structure;

StructureProfile::StructureProfile(unsigned num_entries)
    : perEntry_(num_entries)
{
}

const VulnerableInterval *
StructureProfile::find(EntryIndex entry, Cycle t) const
{
    MERLIN_ASSERT(entry < perEntry_.size(), "entry out of range");
    const auto &iv = perEntry_[entry];
    // First interval with end >= t; intervals are sorted and disjoint.
    auto it = std::lower_bound(
        iv.begin(), iv.end(), t,
        [](const VulnerableInterval &a, Cycle v) { return a.end < v; });
    if (it != iv.end() && it->start < t && t <= it->end)
        return &*it;
    return nullptr;
}

double
StructureProfile::aceAvf(Cycle total_cycles) const
{
    if (total_cycles == 0 || perEntry_.empty())
        return 0.0;
    return static_cast<double>(totalVulnerable_) /
           (static_cast<double>(perEntry_.size()) *
            static_cast<double>(total_cycles));
}

AceProfiler::AceProfiler(unsigned rf_entries, unsigned sq_entries,
                         unsigned l1d_words)
    : rf_(rf_entries), sq_(sq_entries), l1d_(l1d_words)
{
    rfEvents_.reserve(1 << 16);
    sqEvents_.reserve(1 << 12);
    l1dEvents_.reserve(1 << 14);
}

std::vector<AceProfiler::Event> &
AceProfiler::events(Structure s)
{
    switch (s) {
      case Structure::RegisterFile: return rfEvents_;
      case Structure::StoreQueue:   return sqEvents_;
      case Structure::L1DCache:     return l1dEvents_;
    }
    panic("bad structure");
}

StructureProfile &
AceProfiler::mutableProfile(Structure s)
{
    switch (s) {
      case Structure::RegisterFile: return rf_;
      case Structure::StoreQueue:   return sq_;
      case Structure::L1DCache:     return l1d_;
    }
    panic("bad structure");
}

const StructureProfile &
AceProfiler::profile(Structure s) const
{
    MERLIN_ASSERT(finalized_, "profile queried before finalize()");
    switch (s) {
      case Structure::RegisterFile: return rf_;
      case Structure::StoreQueue:   return sq_;
      case Structure::L1DCache:     return l1d_;
    }
    panic("bad structure");
}

void
AceProfiler::onWrite(Structure s, EntryIndex entry, Cycle cycle,
                     std::uint8_t phase)
{
    events(s).push_back(Event{cycle, 0, 0, entry, 0, phase, false});
}

void
AceProfiler::onCommittedRead(Structure s, EntryIndex entry,
                             Cycle read_cycle, std::uint8_t phase, Rip rip,
                             Upc upc, SeqNum seq)
{
    events(s).push_back(
        Event{read_cycle, rip, seq, entry, upc, phase, true});
}

void
AceProfiler::onCommitBranch(Rip rip, bool taken, SeqNum seq)
{
    branches_.push_back(BranchRecord{seq, rip, taken});
}

void
AceProfiler::finalize()
{
    MERLIN_ASSERT(!finalized_, "finalize() called twice");
    finalized_ = true;

    for (Structure s : {Structure::RegisterFile, Structure::StoreQueue,
                        Structure::L1DCache}) {
        auto &evs = events(s);
        StructureProfile &prof = mutableProfile(s);

        // Committed reads arrive at commit time, out of physical order;
        // restore it.  stable_sort keeps arrival order for exact ties.
        std::stable_sort(evs.begin(), evs.end(),
                         [](const Event &a, const Event &b) {
                             if (a.entry != b.entry)
                                 return a.entry < b.entry;
                             if (a.cycle != b.cycle)
                                 return a.cycle < b.cycle;
                             return a.phase < b.phase;
                         });

        EntryIndex cur = ~EntryIndex(0);
        Cycle last = 0;
        for (const Event &e : evs) {
            if (e.entry != cur) {
                cur = e.entry;
                last = 0; // implicit initial write at cycle 0
            }
            if (e.isRead) {
                if (e.cycle > last) {
                    prof.perEntry_[e.entry].push_back(VulnerableInterval{
                        last, e.cycle, e.rip, e.upc, e.seq});
                    prof.totalVulnerable_ += e.cycle - last;
                }
                last = e.cycle;
            } else {
                last = e.cycle;
            }
        }
        evs.clear();
        evs.shrink_to_fit();
    }
}

std::uint64_t
AceProfiler::pathSignature(SeqNum seq, unsigned depth) const
{
    // First committed branch strictly younger than the reader.
    auto it = std::upper_bound(branches_.begin(), branches_.end(), seq,
                               [](SeqNum v, const BranchRecord &b) {
                                   return v < b.seq;
                               });
    // FNV-1a over the next `depth` (rip, taken) pairs.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    for (unsigned i = 0; i < depth && it != branches_.end(); ++i, ++it) {
        mix(it->rip);
        mix(it->taken ? 0x9e37u : 0x79b9u);
    }
    return h;
}

} // namespace merlin::profile
