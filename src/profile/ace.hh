/**
 * @file
 * ACE-like vulnerable-interval profiler (Section 3.1.1 of the paper).
 *
 * A vulnerable interval of an entry
 *   - starts at a write (or the previous committed read) and
 *   - ends at a committed read of that entry,
 * and is tagged with the RIP and uPC of the micro-op performing the
 * ending read.  Squashed reads never end intervals (Figure 3); physical
 * writes always reset them.  Time after the last read of a value is dead
 * (the next event is a write or nothing), so faults there are masked.
 *
 * A fault flipped at the start of cycle T corrupts interval (start, end]
 * iff start < T <= end.
 */

#ifndef MERLIN_PROFILE_ACE_HH
#define MERLIN_PROFILE_ACE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "uarch/probe.hh"

namespace merlin::profile
{

/** One vulnerable interval of one entry. */
struct VulnerableInterval
{
    Cycle start = 0; ///< exclusive (flip at start is overwritten/read)
    Cycle end = 0;   ///< inclusive (flip at end is consumed by the read)
    Rip rip = 0;     ///< static instruction performing the ending read
    Upc upc = 0;     ///< micro-op within it
    SeqNum endSeq = 0; ///< dynamic instance (commit sequence number)
};

/** All vulnerable intervals of one hardware structure. */
class StructureProfile
{
  public:
    explicit StructureProfile(unsigned num_entries);

    /** Interval of @p entry containing a flip at cycle @p t, or null. */
    const VulnerableInterval *find(EntryIndex entry, Cycle t) const;

    const std::vector<VulnerableInterval> &
    intervals(EntryIndex entry) const
    {
        return perEntry_[entry];
    }

    unsigned numEntries() const
    {
        return static_cast<unsigned>(perEntry_.size());
    }

    /** Sum of interval lengths over all entries (entry-cycles). */
    std::uint64_t totalVulnerableCycles() const
    {
        return totalVulnerable_;
    }

    /**
     * ACE-like AVF: vulnerable entry-cycles over total entry-cycles.
     * Whole entries are counted vulnerable (no logical-masking credit),
     * which is exactly why this is an upper bound on the injection AVF.
     */
    double aceAvf(Cycle total_cycles) const;

  private:
    friend class AceProfiler;
    std::vector<std::vector<VulnerableInterval>> perEntry_;
    std::uint64_t totalVulnerable_ = 0;
};

/** A committed conditional branch (Relyzer control-path heuristic). */
struct BranchRecord
{
    SeqNum seq = 0;
    Rip rip = 0;
    bool taken = false;
};

/**
 * The profiler: attach to a Core as its Probe for the golden run, then
 * finalize() once the run ends.
 */
class AceProfiler : public uarch::Probe
{
  public:
    /** Entry counts: physical registers, SQ slots, L1D 8-byte words. */
    AceProfiler(unsigned rf_entries, unsigned sq_entries,
                unsigned l1d_words);

    // Probe interface.
    void onWrite(uarch::Structure s, EntryIndex entry, Cycle cycle,
                 std::uint8_t phase) override;
    void onCommittedRead(uarch::Structure s, EntryIndex entry,
                         Cycle read_cycle, std::uint8_t phase, Rip rip,
                         Upc upc, SeqNum seq) override;
    void onCommitBranch(Rip rip, bool taken, SeqNum seq) override;

    /** Build interval lists; call exactly once, after the golden run. */
    void finalize();

    const StructureProfile &profile(uarch::Structure s) const;

    /** Committed conditional-branch trace, ordered by sequence number. */
    const std::vector<BranchRecord> &branchTrace() const
    {
        return branches_;
    }

    /**
     * Control-flow path signature of depth @p depth following dynamic
     * instance @p seq (Relyzer's control-equivalence key).
     */
    std::uint64_t pathSignature(SeqNum seq, unsigned depth = 5) const;

  private:
    struct Event
    {
        Cycle cycle;
        Rip rip;
        SeqNum seq;
        EntryIndex entry;
        Upc upc;
        std::uint8_t phase;
        bool isRead;
    };

    StructureProfile &mutableProfile(uarch::Structure s);
    std::vector<Event> &events(uarch::Structure s);

    bool finalized_ = false;
    StructureProfile rf_;
    StructureProfile sq_;
    StructureProfile l1d_;
    std::vector<Event> rfEvents_;
    std::vector<Event> sqEvents_;
    std::vector<Event> l1dEvents_;
    std::vector<BranchRecord> branches_;
};

} // namespace merlin::profile

#endif // MERLIN_PROFILE_ACE_HH
