#include "io/journal.hh"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "base/logging.hh"
#include "io/json.hh"
#include "obs/metrics.hh"

namespace merlin::io
{

namespace
{

constexpr const char *kJournalTag = "merlin-journal-v1";

/** Journal instruments, resolved once (the lookup takes a mutex). */
struct JournalMetrics
{
    obs::Counter &appends =
        obs::Registry::global().counter("journal.appends");
    obs::Counter &fsyncs =
        obs::Registry::global().counter("journal.fsyncs");
    obs::Counter &restored =
        obs::Registry::global().counter("journal.restored");
};

JournalMetrics &
journalMetrics()
{
    static JournalMetrics m;
    return m;
}

void
syncFile(std::FILE *f, const std::string &path)
{
#if defined(__unix__) || defined(__APPLE__)
    if (::fsync(fileno(f)) != 0)
        fatal("outcome journal: fsync '", path,
              "' failed: ", std::strerror(errno));
#else
    (void)f;
    (void)path;
#endif
}

} // namespace

OutcomeJournal::OutcomeJournal(std::string path, std::string spec_key)
    : path_(std::move(path)), specKey_(std::move(spec_key))
{
}

OutcomeJournal::~OutcomeJournal()
{
    // Best-effort: a campaign that completed has already close()d (or
    // remove()d); reaching here with an open handle means an exception
    // is unwinding past the campaign, and a flush failure must not
    // turn that into std::terminate.
    try {
        close();
    } catch (...) {
    }
}

OutcomeJournal::Restored
OutcomeJournal::restore(
    const std::function<void(std::uint64_t, faultsim::Outcome)> &sink)
{
    return restore([&sink](std::uint64_t key, faultsim::Outcome outcome,
                           const faultsim::InjectDetail &) {
        sink(key, outcome);
    });
}

OutcomeJournal::Restored
OutcomeJournal::restore(
    const std::function<void(std::uint64_t, faultsim::Outcome,
                             const faultsim::InjectDetail &)> &sink)
{
    Restored r;
    if (path_.empty())
        return r;
    std::string text;
    {
        std::ifstream in(path_, std::ios::binary);
        if (!in) {
            restored_ = true; // nothing to resume, but appends are fresh
            return r;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }

    // Walk complete (newline-terminated) lines only.  The valid prefix
    // grows line by line; whatever follows it — at most one torn line,
    // the artifact of a mid-append crash — is truncated away so open()
    // appends after well-formed bytes.
    std::size_t valid = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            if (!headerPresent_)
                warn("outcome journal '", path_,
                     "': torn header, no entries to resume — starting "
                     "the campaign over");
            else
                warn("outcome journal '", path_,
                     "': dropping torn final entry (mid-append crash); "
                     "that injection will re-run");
            break;
        }
        const std::string line = text.substr(pos, nl - pos);
        Json j;
        try {
            j = Json::parse(line);
        } catch (const FatalError &e) {
            // A COMPLETE line that does not parse was never half
            // written by a crash — the file is genuinely corrupt.
            fatal("outcome journal '", path_, "' is corrupt (", e.what(),
                  "); delete it to drop the resume data and re-run the "
                  "campaign from scratch");
        }
        if (!headerPresent_) {
            if (!j.isObject() || j.strOr("format", "") != kJournalTag)
                fatal("outcome journal '", path_, "': unknown format");
            const std::string spec = j.strOr("spec", "");
            if (spec != specKey_)
                fatal("outcome journal '", path_, "': records spec ",
                      spec, ", not ", specKey_,
                      " — stale file from a different suite?");
            headerPresent_ = true;
        } else {
            // Sizes 6/7 carry the replay fields; 3/4 are the legacy
            // shape without them (the optional extra element is the
            // quarantine reason either way).
            if (!j.isArray() ||
                (j.size() != 3 && j.size() != 4 && j.size() != 6 &&
                 j.size() != 7))
                fatal("outcome journal '", path_,
                      "': malformed entry; delete the journal to drop "
                      "the resume data");
            const std::uint64_t key = j[0].asU64();
            const std::uint64_t o = j[1].asU64();
            if (o >= faultsim::NUM_OUTCOMES)
                fatal("outcome journal '", path_,
                      "': entry carries outcome ", o,
                      ", beyond this build's outcome classes");
            faultsim::InjectDetail detail;
            detail.earlyExit = j[2].asU64() != 0;
            ++r.runs;
            if (detail.earlyExit)
                ++r.earlyExits;
            if (j.size() >= 6) {
                const std::uint64_t action = j[3].asU64();
                if (action ==
                    static_cast<std::uint64_t>(
                        faultsim::ReplayAction::Masked)) {
                    detail.replay = faultsim::ReplayAction::Masked;
                    ++r.replayMasked;
                } else if (action ==
                           static_cast<std::uint64_t>(
                               faultsim::ReplayAction::Handoff)) {
                    detail.replay = faultsim::ReplayAction::Handoff;
                    ++r.replayHandoffs;
                }
                detail.replayCyclesSkipped = j[4].asU64();
                detail.replayHeadCycles = j[5].asU64();
                r.replayCyclesSkipped += detail.replayCyclesSkipped;
                r.replayHeadCycles += detail.replayHeadCycles;
            }
            if (j.size() == 4 || j.size() == 7) {
                detail.quarantined = true;
                detail.reason = j[j.size() - 1].asString();
                r.quarantine.push_back(faultsim::QuarantineRecord{
                    key, detail.reason});
            }
            sink(key, static_cast<faultsim::Outcome>(o), detail);
        }
        pos = nl + 1;
        valid = pos;
    }

    if (valid != text.size()) {
        std::error_code ec;
        std::filesystem::resize_file(path_, valid, ec);
        if (ec)
            fatal("outcome journal: cannot truncate torn tail of '",
                  path_, "': ", ec.message());
    }
    restored_ = true;
    journalMetrics().restored.add(r.runs);
    return r;
}

void
OutcomeJournal::open()
{
    if (path_.empty())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (file_)
        return;
    // Appending is only sound after restore() vetted the prefix; a
    // caller that skipped restore chose to re-run everything, so any
    // leftover file is started over.
    file_ = std::fopen(path_.c_str(), restored_ ? "ab" : "wb");
    if (!file_)
        fatal("outcome journal: cannot open '", path_,
              "': ", std::strerror(errno));
    if (!restored_)
        headerPresent_ = false;
    if (!headerPresent_) {
        Json h = Json::object();
        h.set("format", kJournalTag);
        h.set("spec", specKey_);
        const std::string line = h.dump() + "\n";
        if (std::fwrite(line.data(), 1, line.size(), file_) !=
            line.size())
            fatal("outcome journal: write to '", path_,
                  "' failed (disk full?)");
        // The header reaches the disk before any entry does: restore
        // never sees entries under a missing header.
        flushLocked();
        headerPresent_ = true;
    }
}

void
OutcomeJournal::append(std::uint64_t key, faultsim::Outcome outcome,
                       const faultsim::InjectDetail &detail)
{
    if (path_.empty())
        return;
    Json e = Json::array();
    e.push(key);
    e.push(static_cast<std::uint64_t>(outcome));
    e.push(static_cast<std::uint64_t>(detail.earlyExit ? 1 : 0));
    e.push(static_cast<std::uint64_t>(detail.replay));
    e.push(detail.replayCyclesSkipped);
    e.push(detail.replayHeadCycles);
    if (detail.quarantined)
        e.push(detail.reason);
    const std::string line = e.dump() + "\n";

    std::lock_guard<std::mutex> lock(mu_);
    MERLIN_ASSERT(file_ != nullptr, "journal append before open()");
    // One fwrite per entry: a crash tears at most the final line, the
    // exact shape restore() knows how to discard.
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size())
        fatal("outcome journal: write to '", path_,
              "' failed (disk full?)");
    journalMetrics().appends.add();
    if (++sinceFlush_ >= kFlushInterval)
        flushLocked();
}

void
OutcomeJournal::flushLocked()
{
    if (std::fflush(file_) != 0)
        fatal("outcome journal: flush of '", path_,
              "' failed: ", std::strerror(errno));
    syncFile(file_, path_);
    journalMetrics().fsyncs.add();
    sinceFlush_ = 0;
}

void
OutcomeJournal::close()
{
    if (path_.empty())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_)
        return;
    flushLocked();
    std::fclose(file_);
    file_ = nullptr;
}

void
OutcomeJournal::remove()
{
    close();
    if (path_.empty())
        return;
    std::error_code ec;
    std::filesystem::remove(path_, ec); // missing file is fine
}

} // namespace merlin::io
