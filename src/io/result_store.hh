/**
 * @file
 * Persistent campaign-result store.
 *
 * Serializes every CampaignResult of a suite run to one JSON file,
 * keyed by a content hash of the producing CampaignSpec.  Suite runs
 * get three things from it:
 *
 *   --out results.json   the suite's deliverable (all class counts,
 *                        group models, homogeneity and timing, one
 *                        entry per campaign);
 *   cache hits           a spec whose key is already in the store is
 *                        not re-run — its stored result is returned;
 *   --resume             the store is saved after every campaign
 *                        completes, so an interrupted suite restarts
 *                        from the finished prefix, not from scratch.
 *
 * Entries are kept sorted by key and doubles are written in their
 * shortest round-trip form, so a store's serialization is a pure
 * function of its contents — byte-identical for any job count or
 * campaign completion order.
 *
 * Stores are written in the merlin-store-v2 shape, which adds an
 * optional "sections" member beside "campaigns": section-keyed tables
 * (reduced spec x golden-run section) that let the suite scheduler
 * serve PARTIAL hits — re-running only the sections a knob change
 * actually misses.  Legacy merlin-results-v1 files load unchanged
 * (their whole-campaign entries are served as all-sections hits).
 *
 * Not internally synchronized: concurrent writers must serialize
 * access (the suite scheduler holds one mutex across put()+save()).
 */

#ifndef MERLIN_IO_RESULT_STORE_HH
#define MERLIN_IO_RESULT_STORE_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "io/json.hh"
#include "merlin/campaign.hh"

namespace merlin::io
{

/** CampaignResult -> JSON (every field, including the optionals). */
Json resultToJson(const core::CampaignResult &r);

/**
 * JSON -> CampaignResult; throws FatalError on malformed input.
 * Quarantine records this reader does not understand (a newer writer
 * may have extended them) are skipped: with @p skipped_quarantine set
 * they are counted there silently — load() aggregates the counts into
 * ONE warning per store — and without it each skip warns individually.
 */
core::CampaignResult
resultFromJson(const Json &j,
               std::size_t *skipped_quarantine = nullptr);

/** SectionData -> JSON (one section-store table entry). */
Json sectionDataToJson(const core::SectionData &s);

/** Inverse of sectionDataToJson (same quarantine-skip contract). */
core::SectionData
sectionDataFromJson(const Json &j,
                    std::size_t *skipped_quarantine = nullptr);

class ResultStore
{
  public:
    /** One stored campaign: the producing spec and its result. */
    struct Entry
    {
        Json spec;
        Json result;
    };

    /**
     * One section-keyed table (the merlin-store-v2 addition): the
     * per-section slices of every campaign sharing one reduced spec —
     * the spec minus the swept knobs, plus the section count.  Tables
     * are always written COMPLETE (one entry per section index, empty
     * sections included) and pin the golden-run length they were cut
     * from, so a reader can verify the sectioning still lines up
     * before serving partial hits.
     */
    struct SectionTable
    {
        Json spec; ///< the reduced spec the table key hashes
        std::uint64_t goldenCycles = 0;
        std::map<unsigned, Json> entries; ///< section index -> data
    };

    /** A lookupSections() answer: the decoded table, if any. */
    struct SectionLookup
    {
        bool found = false;
        std::uint64_t goldenCycles = 0;
        std::map<unsigned, core::SectionData> sections;
    };

    /** What a merge() did, for reporting. */
    struct MergeStats
    {
        std::size_t added = 0;     ///< keys new to this store
        std::size_t identical = 0; ///< keys present with identical payload
        std::size_t replaced = 0;  ///< conflicts resolved force-theirs
        std::size_t sectionEntriesAdded = 0; ///< new section slices
    };

    /** @p path may be empty for a memory-only store (no load/save IO). */
    explicit ResultStore(std::string path = "");

    const std::string &path() const { return path_; }
    std::size_t size() const { return entries_.size(); }

    /**
     * Read the store file.  @return false when the file is absent (a
     * fresh store); throws FatalError when present but malformed —
     * silently dropping a corrupt store would re-run every campaign.
     */
    bool load();

    /**
     * Atomically write the store (temp file + rename), entries sorted
     * by key.  No-op for a memory-only store.
     */
    void save() const;

    /** @return true and fill @p out when @p key is stored. */
    bool lookup(const std::string &key, core::CampaignResult &out) const;

    bool contains(const std::string &key) const;

    /** Insert or replace the entry for @p key. */
    void put(const std::string &key, Json spec,
             const core::CampaignResult &result);

    /** Remove the entry for @p key.  @return true if it existed. */
    bool erase(const std::string &key);

    /** Decode the section table stored under @p key (found == false
     *  when the store has none). */
    SectionLookup lookupSections(const std::string &key) const;

    /**
     * Insert or replace the COMPLETE section table for @p key:
     * @p table must carry one SectionData per section (index = vector
     * position), @p spec the reduced spec the key hashes, and
     * @p golden_cycles the golden-run length the sections cut up.
     */
    void putSections(const std::string &key, Json spec,
                     std::uint64_t golden_cycles,
                     const std::vector<core::SectionData> &table);

    /** Copy one raw table in (shard spill / merge plumbing). */
    void putSectionTable(const std::string &key, SectionTable table);

    /** Remove the section table for @p key.  @return true if present. */
    bool eraseSections(const std::string &key);

    /** All section tables, sorted by reduced key. */
    const std::map<std::string, SectionTable> &sectionTables() const
    {
        return sections_;
    }

    /**
     * Which suite selection produced this store, for distributed
     * workers (`suite --select i/n --out worker.json`).  Recorded in
     * the store file so a `--resume` against the wrong worker's store
     * is refused instead of silently mixing shares.  Absent (the
     * default) for single-host stores and merged stores — merge()
     * never propagates it, which is what keeps a merged store
     * byte-identical to the single-host run.
     */
    const std::optional<Json> &selection() const { return selection_; }
    void setSelection(Json sel) { selection_ = std::move(sel); }
    void clearSelection() { selection_.reset(); }

    /**
     * Fold @p other into this store.  Content-hash keys make the
     * operation order-independent: a key present in both sides must
     * carry a bit-identical payload (spec and result dumps), because
     * the same spec always produces the same result — a mismatch
     * means one store is corrupt or was produced by a different
     * engine, and is fatal unless @p force_theirs resolves it by
     * taking @p other's entry.  Merging the per-campaign shards of a
     * suite therefore reproduces the single-store run byte-for-byte,
     * in any shard order.
     */
    MergeStats merge(const ResultStore &other, bool force_theirs = false);

    /** All entries, sorted by key (what toJson()/merge() iterate). */
    const std::map<std::string, Entry> &entries() const
    {
        return entries_;
    }

    /** The full store as a JSON document (what save() writes). */
    Json toJson() const;

  private:
    std::string path_;
    std::map<std::string, Entry> entries_; ///< sorted => stable dumps
    std::map<std::string, SectionTable> sections_; ///< v2 tables
    std::optional<Json> selection_;        ///< worker share, if any
};

/**
 * Expand a mixed list of store files and shard directories into the
 * store files to merge: directories contribute their *.json members,
 * sorted.  fatal() on a missing input or a directory with no shards —
 * a gather that silently skips a worker's output would "succeed" with
 * an incomplete store.
 */
std::vector<std::string>
gatherStoreFiles(const std::vector<std::string> &inputs);

/**
 * Load every file of @p files and fold it into @p into (see
 * ResultStore::merge for the conflict rules).  The gather half of
 * distributed dispatch: inputs from any number of workers, in any
 * order, reassemble the single-host store.
 */
ResultStore::MergeStats
mergeStoreFiles(ResultStore &into, const std::vector<std::string> &files,
                bool force_theirs = false);

} // namespace merlin::io

#endif // MERLIN_IO_RESULT_STORE_HH
