#include "io/wire.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include "base/logging.hh"
#include "obs/trace.hh"

#if defined(__unix__) || defined(__APPLE__)
#define MERLIN_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define MERLIN_HAVE_UNIX_SOCKETS 0
#endif

namespace merlin::io
{

namespace
{

#if MERLIN_HAVE_UNIX_SOCKETS

/** Full read; @return bytes read (short only at EOF), loops on EINTR. */
std::size_t
readFull(int fd, void *buf, std::size_t n)
{
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, static_cast<char *>(buf) + got,
                                 n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            fatal("wire: read failed: ", std::strerror(errno));
        }
        if (r == 0)
            break;
        got += static_cast<std::size_t>(r);
    }
    return got;
}

void
writeFull(int fd, const void *buf, std::size_t n)
{
    std::size_t put = 0;
    while (put < n) {
        const ssize_t w = ::write(fd, static_cast<const char *>(buf) + put,
                                  n - put);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            fatal("wire: write failed: ", std::strerror(errno));
        }
        put += static_cast<std::size_t>(w);
    }
}

sockaddr_un
unixAddr(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("wire: socket path '", path, "' exceeds the ",
              sizeof(addr.sun_path) - 1, "-byte AF_UNIX limit");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

#endif // MERLIN_HAVE_UNIX_SOCKETS

[[noreturn]] [[maybe_unused]] void
noSockets()
{
    fatal("wire: Unix domain sockets are not available on this "
          "platform; merlin_serve requires a POSIX host");
}

} // namespace

// ------------------------------------------------------------ framing

bool
wireReadFrame(int fd, std::string &payload)
{
#if MERLIN_HAVE_UNIX_SOCKETS
    unsigned char len_be[4];
    const std::size_t got = readFull(fd, len_be, sizeof(len_be));
    if (got == 0)
        return false; // clean EOF at a frame boundary
    if (got < sizeof(len_be))
        fatal("wire: connection closed mid-length (", got, " of 4 "
              "prefix bytes)");
    const std::uint32_t len = (std::uint32_t{len_be[0]} << 24) |
                              (std::uint32_t{len_be[1]} << 16) |
                              (std::uint32_t{len_be[2]} << 8) |
                              std::uint32_t{len_be[3]};
    if (len > kWireMaxFrame)
        fatal("wire: frame of ", len, " bytes exceeds the ",
              kWireMaxFrame, "-byte cap");
    payload.resize(len);
    if (len > 0 && readFull(fd, payload.data(), len) < len)
        fatal("wire: connection closed mid-frame (expected ", len,
              " payload bytes)");
    return true;
#else
    (void)fd;
    (void)payload;
    noSockets();
#endif
}

void
wireWriteFrame(int fd, const std::string &payload)
{
#if MERLIN_HAVE_UNIX_SOCKETS
    if (payload.size() > kWireMaxFrame)
        fatal("wire: refusing to send a ", payload.size(),
              "-byte frame (cap ", kWireMaxFrame, ")");
    const auto len = static_cast<std::uint32_t>(payload.size());
    const unsigned char len_be[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len),
    };
    writeFull(fd, len_be, sizeof(len_be));
    if (len > 0)
        writeFull(fd, payload.data(), len);
#else
    (void)fd;
    (void)payload;
    noSockets();
#endif
}

// ----------------------------------------------------- WireConnection

WireConnection::~WireConnection()
{
#if MERLIN_HAVE_UNIX_SOCKETS
    if (fd_ >= 0)
        ::close(fd_);
#endif
}

WireConnection::WireConnection(WireConnection &&o) noexcept
    : fd_(std::exchange(o.fd_, -1))
{
}

WireConnection &
WireConnection::operator=(WireConnection &&o) noexcept
{
#if MERLIN_HAVE_UNIX_SOCKETS
    if (this != &o) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = std::exchange(o.fd_, -1);
    }
#else
    fd_ = std::exchange(o.fd_, -1);
#endif
    return *this;
}

bool
WireConnection::read(Json &msg)
{
    std::string payload;
    if (!wireReadFrame(fd_, payload))
        return false;
    msg = Json::parse(payload);
    if (!msg.isObject())
        fatal("wire: message must be a JSON object");
    return true;
}

std::size_t
WireConnection::write(const Json &msg)
{
    obs::Span span("wire", "wire.write");
    const std::string payload = msg.dump();
    wireWriteFrame(fd_, payload);
    return payload.size();
}

void
WireConnection::shutdownBoth()
{
#if MERLIN_HAVE_UNIX_SOCKETS
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
#endif
}

// ------------------------------------------------------------ sockets

int
wireListen(const std::string &path)
{
#if MERLIN_HAVE_UNIX_SOCKETS
    const sockaddr_un addr = unixAddr(path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("wire: socket(): ", std::strerror(errno));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        if (errno != EADDRINUSE) {
            ::close(fd);
            fatal("wire: cannot bind '", path, "': ",
                  std::strerror(errno));
        }
        // The path exists.  A connect() probe tells a live daemon
        // (fatal — two daemons must not share a store) from the stale
        // socket file of a dead one (unlink and rebind).
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe >= 0 &&
            ::connect(probe, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            ::close(probe);
            ::close(fd);
            fatal("wire: a daemon is already listening on '", path, "'");
        }
        if (probe >= 0)
            ::close(probe);
        ::unlink(path.c_str());
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            ::close(fd);
            fatal("wire: cannot bind '", path, "': ",
                  std::strerror(errno));
        }
    }
    if (::listen(fd, 64) < 0) {
        ::close(fd);
        fatal("wire: listen('", path, "'): ", std::strerror(errno));
    }
    return fd;
#else
    (void)path;
    noSockets();
#endif
}

int
wireAccept(int listen_fd)
{
#if MERLIN_HAVE_UNIX_SOCKETS
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        // EBADF/EINVAL: the listener was closed or shut down — the
        // daemon's orderly way out of the accept loop.
        return -1;
    }
#else
    (void)listen_fd;
    noSockets();
#endif
}

int
wireConnect(const std::string &path)
{
#if MERLIN_HAVE_UNIX_SOCKETS
    const sockaddr_un addr = unixAddr(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("wire: socket(): ", std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        fatal("wire: cannot connect to '", path, "': ",
              std::strerror(err),
              " (is merlin_serve running on this socket?)");
    }
    return fd;
#else
    (void)path;
    noSockets();
#endif
}

} // namespace merlin::io
