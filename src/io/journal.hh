/**
 * @file
 * Append-only injection-outcome journal: the suite scheduler's
 * crash-safety layer UNDER the per-campaign store save.
 *
 * The result store persists whole campaigns; a process killed
 * mid-campaign loses every injection it had already simulated.  The
 * journal closes that gap: as injections of a campaign complete, their
 * (fault key, outcome) pairs are appended to a per-spec file next to
 * the shard spill and fsync'd on a short cadence.  A resumed suite
 * (--resume) replays the journal into the batch memo, so only the
 * missing injections run again — and because outcomes are a pure
 * function of their fault, the resumed campaign's result (and the
 * saved store) is byte-identical to an uninterrupted run's.
 *
 * Format: one header line `{"format":"merlin-journal-v1","spec":K}`
 * then one compact JSON array per entry,
 * `[key, outcome, early_exit, replay, cycles_skipped, head_cycles]`
 * with a seventh element — the quarantine reason — when the injection
 * was quarantined (`replay` is the numeric ReplayAction).  Legacy
 * 3/4-element entries without the replay fields restore fine, counting
 * zero toward the replay totals.  A torn final line is the expected
 * crash artifact
 * and is truncated away on restore; garbage in a COMPLETE line is real
 * corruption and fatal.  The journal is removed once the campaign's
 * result reaches the store, whose atomic save takes over from there.
 */

#ifndef MERLIN_IO_JOURNAL_HH
#define MERLIN_IO_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "faultsim/runner.hh"

namespace merlin::io
{

class OutcomeJournal
{
  public:
    /** What restore() recovered from a previous, interrupted run. */
    struct Restored
    {
        /** Completed injection runs replayed from the journal. */
        std::uint64_t runs = 0;
        /** Of which ended at a golden-reconvergence checkpoint. */
        std::uint64_t earlyExits = 0;
        /** Of which the replay fast path proved dead (Masked). */
        std::uint64_t replayMasked = 0;
        /** Of which replay handed off to full simulation. */
        std::uint64_t replayHandoffs = 0;
        /** Full-simulation cycles the replay fast path avoided. */
        std::uint64_t replayCyclesSkipped = 0;
        /** Total pre-divergence head cycles of replayed entries. */
        std::uint64_t replayHeadCycles = 0;
        /** Quarantined injections, with their recorded reasons. */
        std::vector<faultsim::QuarantineRecord> quarantine;
    };

    /** Entries are fsync'd at least this often (and on close()). */
    static constexpr unsigned kFlushInterval = 32;

    /**
     * A journal for the campaign keyed @p spec_key, stored at @p path.
     * Purely descriptive: nothing is opened or created until
     * restore()/open().  An empty path disables the journal — every
     * method degrades to a no-op.
     */
    OutcomeJournal(std::string path, std::string spec_key);

    ~OutcomeJournal();

    OutcomeJournal(const OutcomeJournal &) = delete;
    OutcomeJournal &operator=(const OutcomeJournal &) = delete;

    /**
     * Replay an existing journal file, feeding every complete entry to
     * @p sink (the caller seeds its OutcomeMemo with them) and
     * returning the recovered counters.  A torn final line — the
     * artifact of a mid-append crash — is truncated off the file so a
     * later open() appends after the valid prefix; a torn HEADER means
     * no entry ever landed, so the file is discarded with a warning.
     * A complete-but-malformed line, or a header naming a different
     * spec, is real corruption and fatal.  Missing file or disabled
     * journal: returns zeros.
     */
    Restored
    restore(const std::function<void(std::uint64_t, faultsim::Outcome)>
                &sink);

    /**
     * Like restore(sink), but hands the sink the full per-injection
     * detail reconstructed from the entry (replay action, skipped and
     * head cycles, quarantine flag + reason).  Sectioned campaigns use
     * this to re-attribute every restored injection to its section;
     * the detail-free overload above is a thin wrapper.
     */
    Restored
    restore(const std::function<void(std::uint64_t, faultsim::Outcome,
                                     const faultsim::InjectDetail &)>
                &sink);

    /**
     * Open for appending, writing the header first when the file is
     * new/empty.  Without a prior restore() any existing file is
     * started over — its entries belong to a run the caller chose not
     * to resume.
     */
    void open();

    /**
     * Record one completed injection.  Thread-safe; called from pool
     * workers as injections finish, in whatever order they finish
     * (order never matters: restore feeds a memo, not a result).
     */
    void append(std::uint64_t key, faultsim::Outcome outcome,
                const faultsim::InjectDetail &detail);

    /** Flush + fsync + close the append handle (idempotent). */
    void close();

    /**
     * Close and delete the file: the campaign's result reached the
     * durable store, so the journal has nothing left to protect.
     */
    void remove();

    const std::string &path() const { return path_; }

  private:
    void flushLocked();

    std::string path_;
    std::string specKey_;
    std::mutex mu_;
    std::FILE *file_ = nullptr;
    unsigned sinceFlush_ = 0;
    /** restore() ran and kept a valid prefix worth appending after. */
    bool restored_ = false;
    /** The valid prefix already starts with a good header line. */
    bool headerPresent_ = false;
};

} // namespace merlin::io

#endif // MERLIN_IO_JOURNAL_HH
