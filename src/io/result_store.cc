#include "io/result_store.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "base/logging.hh"
#include "base/parse.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace merlin::io
{

using core::CampaignResult;
using core::ClassCounts;
using core::GroupModel;
using core::HomogeneityReport;

namespace
{

// Written format.  v1 files (whole-campaign entries only, no
// "sections" member) still load; their entries are served as
// all-sections hits by the suite scheduler.
constexpr const char *kFormatTag = "merlin-store-v2";
constexpr const char *kFormatTagV1 = "merlin-results-v1";

Json
classCountsToJson(const ClassCounts &c)
{
    Json arr = Json::array();
    for (std::uint64_t n : c.counts)
        arr.push(n);
    return arr;
}

ClassCounts
classCountsFromJson(const Json &j)
{
    ClassCounts c;
    if (j.size() != c.counts.size())
        fatal("result store: class-count arity mismatch");
    for (std::size_t i = 0; i < c.counts.size(); ++i)
        c.counts[i] = j[i].asU64();
    return c;
}

/**
 * fsync @p path (a file before rename, its directory after): the
 * atomic-rename save is only crash-safe once both the new bytes and
 * the directory entry pointing at them are on stable storage.
 * Directory sync is best-effort — some filesystems refuse O_RDONLY
 * directory fds — but a file sync failure is a real write error.
 */
void
syncToDisk(const std::string &path, bool directory)
{
#if defined(__unix__) || defined(__APPLE__)
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (directory)
            return;
        fatal("result store: cannot reopen '", path,
              "' to sync: ", std::strerror(errno));
    }
    if (::fsync(fd) != 0 && !directory) {
        const int err = errno;
        ::close(fd);
        fatal("result store: fsync '", path,
              "' failed: ", std::strerror(err));
    }
    ::close(fd);
#else
    (void)path;
    (void)directory;
#endif
}

Json
quarantineToJson(const std::vector<faultsim::QuarantineRecord> &recs)
{
    Json q = Json::array();
    for (const faultsim::QuarantineRecord &rec : recs) {
        Json e = Json::object();
        e.set("fault_key", rec.faultKey);
        e.set("reason", rec.reason);
        q.push(e);
    }
    return q;
}

/**
 * Decode a quarantine array, degrading gracefully on records a newer
 * writer may have extended: take the two fields this reader
 * understands and skip the rest.  With @p skipped set, skips are
 * counted there silently (the store load aggregates them into one
 * warning); without it each skip warns individually.
 */
void
quarantineFromJson(const Json &q,
                   std::vector<faultsim::QuarantineRecord> &out,
                   std::size_t *skipped)
{
    out.reserve(out.size() + q.size());
    for (const Json &e : q.items()) {
        if (!e.isObject() || !e.find("fault_key") || !e.find("reason")) {
            if (skipped)
                ++*skipped;
            else
                warn("result store: skipping unrecognized quarantine "
                     "record (newer schema?); outcomes are unaffected");
            continue;
        }
        out.push_back(faultsim::QuarantineRecord{
            e.at("fault_key").asU64(), e.at("reason").asString()});
    }
}

} // namespace

Json
resultToJson(const CampaignResult &r)
{
    Json j = Json::object();
    j.set("golden_cycles", r.goldenCycles);
    j.set("golden_instret", r.goldenInstret);
    j.set("ace_avf", r.aceAvf);
    j.set("initial_faults", r.initialFaults);
    j.set("ace_masked", r.aceMasked);
    j.set("survivors", r.survivors);
    j.set("num_groups", r.numGroups);
    j.set("injections", r.injections);
    j.set("merlin_estimate", classCountsToJson(r.merlinEstimate));
    j.set("merlin_survivor_estimate",
          classCountsToJson(r.merlinSurvivorEstimate));
    if (r.survivorTruth)
        j.set("survivor_truth", classCountsToJson(*r.survivorTruth));
    if (r.homogeneity) {
        Json h = Json::object();
        h.set("fine", r.homogeneity->fine);
        h.set("coarse", r.homogeneity->coarse);
        h.set("perfect_fraction", r.homogeneity->perfectFraction);
        h.set("groups", r.homogeneity->groups);
        h.set("faults", r.homogeneity->faults);
        h.set("avg_group_size", r.homogeneity->avgGroupSize);
        j.set("homogeneity", h);
    }
    if (!r.groupModels.empty()) {
        Json models = Json::array();
        for (const GroupModel &g : r.groupModels) {
            Json m = Json::array();
            m.push(g.size);
            m.push(g.pNonMasked);
            models.push(m);
        }
        j.set("group_models", models);
    }
    j.set("speedup_ace", r.speedupAce);
    j.set("speedup_total", r.speedupTotal);
    j.set("injection_runs", r.injectionRuns);
    j.set("early_exits", r.earlyExits);
    j.set("replay_masked", r.replayMasked);
    j.set("replay_handoffs", r.replayHandoffs);
    j.set("replay_cycles_skipped", r.replayCyclesSkipped);
    j.set("replay_head_cycles", r.replayHeadCycles);
    if (!r.quarantine.empty()) {
        // Only when non-empty, so stores of clean campaigns keep their
        // pre-quarantine bytes.  Entries are (packed fault key, reason)
        // in the result's deterministic sort order; the producing spec
        // (with its seed) sits beside this result in the store entry,
        // so each record pins down one reproducible injection.
        j.set("quarantine", quarantineToJson(r.quarantine));
    }
    j.set("profile_seconds", r.profileSeconds);
    j.set("injection_seconds", r.injectionSeconds);
    j.set("seconds_per_injection", r.secondsPerInjection);
    return j;
}

CampaignResult
resultFromJson(const Json &j, std::size_t *skipped_quarantine)
{
    CampaignResult r;
    r.goldenCycles = j.at("golden_cycles").asU64();
    r.goldenInstret = j.at("golden_instret").asU64();
    r.aceAvf = j.at("ace_avf").asDouble();
    r.initialFaults = j.at("initial_faults").asU64();
    r.aceMasked = j.at("ace_masked").asU64();
    r.survivors = j.at("survivors").asU64();
    r.numGroups = j.at("num_groups").asU64();
    r.injections = j.at("injections").asU64();
    r.merlinEstimate = classCountsFromJson(j.at("merlin_estimate"));
    r.merlinSurvivorEstimate =
        classCountsFromJson(j.at("merlin_survivor_estimate"));
    if (const Json *t = j.find("survivor_truth"))
        r.survivorTruth = classCountsFromJson(*t);
    if (const Json *h = j.find("homogeneity")) {
        HomogeneityReport rep;
        rep.fine = h->at("fine").asDouble();
        rep.coarse = h->at("coarse").asDouble();
        rep.perfectFraction = h->at("perfect_fraction").asDouble();
        rep.groups = h->at("groups").asU64();
        rep.faults = h->at("faults").asU64();
        rep.avgGroupSize = h->at("avg_group_size").asDouble();
        r.homogeneity = rep;
    }
    if (const Json *models = j.find("group_models")) {
        r.groupModels.reserve(models->size());
        for (const Json &m : models->items()) {
            if (m.size() != 2)
                fatal("result store: malformed group model");
            r.groupModels.push_back(
                GroupModel{m[0].asU64(), m[1].asDouble()});
        }
    }
    r.speedupAce = j.at("speedup_ace").asDouble();
    r.speedupTotal = j.at("speedup_total").asDouble();
    // Tolerant reads: absent in pre-early-exit / pre-replay stores.
    r.injectionRuns = j.u64Or("injection_runs", 0);
    r.earlyExits = j.u64Or("early_exits", 0);
    r.replayMasked = j.u64Or("replay_masked", 0);
    r.replayHandoffs = j.u64Or("replay_handoffs", 0);
    r.replayCyclesSkipped = j.u64Or("replay_cycles_skipped", 0);
    r.replayHeadCycles = j.u64Or("replay_head_cycles", 0);
    if (const Json *q = j.find("quarantine"))
        quarantineFromJson(*q, r.quarantine, skipped_quarantine);
    r.profileSeconds = j.numOr("profile_seconds", 0.0);
    r.injectionSeconds = j.numOr("injection_seconds", 0.0);
    r.secondsPerInjection = j.numOr("seconds_per_injection", 0.0);
    return r;
}

Json
sectionDataToJson(const core::SectionData &s)
{
    Json j = Json::object();
    j.set("estimate", classCountsToJson(s.estimate));
    j.set("injection_runs", s.injectionRuns);
    j.set("early_exits", s.earlyExits);
    j.set("replay_masked", s.replayMasked);
    j.set("replay_handoffs", s.replayHandoffs);
    j.set("replay_cycles_skipped", s.replayCyclesSkipped);
    j.set("replay_head_cycles", s.replayHeadCycles);
    if (!s.quarantine.empty())
        j.set("quarantine", quarantineToJson(s.quarantine));
    return j;
}

core::SectionData
sectionDataFromJson(const Json &j, std::size_t *skipped_quarantine)
{
    core::SectionData s;
    s.estimate = classCountsFromJson(j.at("estimate"));
    s.injectionRuns = j.at("injection_runs").asU64();
    s.earlyExits = j.at("early_exits").asU64();
    s.replayMasked = j.at("replay_masked").asU64();
    s.replayHandoffs = j.at("replay_handoffs").asU64();
    s.replayCyclesSkipped = j.at("replay_cycles_skipped").asU64();
    s.replayHeadCycles = j.at("replay_head_cycles").asU64();
    if (const Json *q = j.find("quarantine"))
        quarantineFromJson(*q, s.quarantine, skipped_quarantine);
    return s;
}

// ---------------------------------------------------------- ResultStore

ResultStore::ResultStore(std::string path) : path_(std::move(path)) {}

bool
ResultStore::load()
{
    if (path_.empty())
        return false;
    obs::Span span("io", "store.load");
    // A directory at the store path opens "successfully" but reads
    // nothing, which would fall through to the empty-file diagnosis
    // and blame a truncated save for what is a path mix-up (a shard
    // --out-dir passed as --out, say).  Name the real problem.
    if (std::filesystem::is_directory(path_))
        fatal("result store '", path_,
              "' is a directory, not a store file — pass the store "
              "FILE here (a shard directory merges with `merlin_cli "
              "store merge`)");
    std::ifstream in(path_);
    if (!in)
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    // Diagnose the two corruption shapes a crashed save can leave
    // by name, instead of letting the JSON parser's offset-zero
    // error stand in for them: an empty file (rename published a
    // never-written temp) and a truncated/garbled document.
    if (text.find_first_not_of(" \t\r\n") == std::string::npos)
        fatal("result store '", path_,
              "' is empty — likely truncated by an interrupted save; "
              "delete it (or restore it from shards with `merlin_cli "
              "store merge`) before resuming");
    Json doc;
    try {
        doc = Json::parse(text);
    } catch (const FatalError &e) {
        fatal("result store '", path_,
              "' is not a valid store (", e.what(),
              "); delete it (or restore it from shards with "
              "`merlin_cli store merge`) before resuming");
    }
    const std::string format = doc.strOr("format", "");
    if (format != kFormatTag && format != kFormatTagV1)
        fatal("result store '", path_, "': unknown format");
    entries_.clear();
    sections_.clear();
    selection_.reset();
    if (const Json *sel = doc.find("selection"))
        selection_ = *sel;
    // One aggregated warning per store for quarantine records a newer
    // writer extended, not one per record: a large store read by an
    // old binary must not flood stderr with identical lines.
    std::size_t skipped = 0;
    for (const auto &[key, entry] : doc.at("campaigns").members()) {
        // Validate eagerly: a malformed entry should fail the load,
        // not the lookup that happens to hit it mid-suite.
        resultFromJson(entry.at("result"), &skipped);
        entries_[key] = Entry{entry.at("spec"), entry.at("result")};
    }
    if (const Json *secs = doc.find("sections")) {
        for (const auto &[key, tbl] : secs->members()) {
            SectionTable table;
            table.spec = tbl.at("spec");
            table.goldenCycles = tbl.at("golden_cycles").asU64();
            for (const auto &[idx, data] : tbl.at("entries").members()) {
                sectionDataFromJson(data, &skipped); // eager validation
                table.entries[base::parseU32(
                    idx, "result store section index")] = data;
            }
            sections_[key] = std::move(table);
        }
    }
    if (skipped > 0)
        warn("result store '", path_, "': skipped ", skipped,
             " unrecognized quarantine record", skipped == 1 ? "" : "s",
             " (newer schema?); outcomes are unaffected");
    return true;
}

Json
ResultStore::toJson() const
{
    Json campaigns = Json::object();
    for (const auto &[key, entry] : entries_) {
        Json e = Json::object();
        e.set("spec", entry.spec);
        e.set("result", entry.result);
        campaigns.set(key, e);
    }
    Json doc = Json::object();
    doc.set("format", kFormatTag);
    if (selection_)
        doc.set("selection", *selection_);
    doc.set("campaigns", campaigns);
    if (!sections_.empty()) {
        // Only when non-empty, so unsectioned stores keep their
        // pre-section bytes (modulo the format tag).  Table keys sort
        // lexically, entry keys numerically — both pure functions of
        // the contents.
        Json secs = Json::object();
        for (const auto &[key, table] : sections_) {
            Json t = Json::object();
            t.set("spec", table.spec);
            t.set("golden_cycles", table.goldenCycles);
            Json entries = Json::object();
            for (const auto &[idx, data] : table.entries)
                entries.set(std::to_string(idx), data);
            t.set("entries", entries);
            secs.set(key, t);
        }
        doc.set("sections", secs);
    }
    return doc;
}

void
ResultStore::save() const
{
    if (path_.empty())
        return;
    obs::Span span("io", "store.save");
    const obs::TimePoint t0 = obs::now();
    // Serialize to a string first: the telemetry wants the byte count,
    // and streaming via a string changes nothing about the bytes.
    const std::string text = toJson().dump(2) + "\n";
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            fatal("result store: cannot write '", tmp, "'");
        out << text;
        // Flush and close under an explicit state check: a full disk
        // must surface here, not as a truncated store discovered by
        // the next --resume.
        out.flush();
        out.close();
        if (!out.good())
            fatal("result store: write to '", tmp,
                  "' failed (disk full?)");
    }
    // Durability order: temp bytes reach the disk before the rename
    // publishes them, the directory entry after — a crash leaves
    // either the complete old store or the complete new one.
    syncToDisk(tmp, false);
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        fatal("result store: cannot rename '", tmp, "' to '", path_,
              "'");
    const auto dir = std::filesystem::path(path_).parent_path();
    syncToDisk(dir.empty() ? "." : dir.string(), true);

    obs::Registry &reg = obs::Registry::global();
    reg.counter("store.saves").add();
    reg.counter("store.save_bytes").add(text.size());
    reg.histogram("store.save_us").observe(obs::microsSince(t0));
}

bool
ResultStore::lookup(const std::string &key, CampaignResult &out) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    // Silent skip counter: load() already warned (once) about any
    // unrecognized quarantine records in this store.
    std::size_t skipped = 0;
    out = resultFromJson(it->second.result, &skipped);
    return true;
}

bool
ResultStore::contains(const std::string &key) const
{
    return entries_.count(key) != 0;
}

void
ResultStore::put(const std::string &key, Json spec,
                 const CampaignResult &result)
{
    entries_[key] = Entry{std::move(spec), resultToJson(result)};
}

bool
ResultStore::erase(const std::string &key)
{
    return entries_.erase(key) != 0;
}

ResultStore::SectionLookup
ResultStore::lookupSections(const std::string &key) const
{
    SectionLookup out;
    auto it = sections_.find(key);
    if (it == sections_.end())
        return out;
    out.found = true;
    out.goldenCycles = it->second.goldenCycles;
    std::size_t skipped = 0; // load() already warned once
    for (const auto &[idx, data] : it->second.entries)
        out.sections[idx] = sectionDataFromJson(data, &skipped);
    return out;
}

void
ResultStore::putSections(const std::string &key, Json spec,
                         std::uint64_t golden_cycles,
                         const std::vector<core::SectionData> &table)
{
    SectionTable t;
    t.spec = std::move(spec);
    t.goldenCycles = golden_cycles;
    for (std::size_t i = 0; i < table.size(); ++i)
        t.entries[static_cast<unsigned>(i)] = sectionDataToJson(table[i]);
    sections_[key] = std::move(t);
}

void
ResultStore::putSectionTable(const std::string &key, SectionTable table)
{
    sections_[key] = std::move(table);
}

bool
ResultStore::eraseSections(const std::string &key)
{
    return sections_.erase(key) != 0;
}

ResultStore::MergeStats
ResultStore::merge(const ResultStore &other, bool force_theirs)
{
    MergeStats stats;
    for (const auto &[key, theirs] : other.entries_) {
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            entries_[key] = theirs;
            ++stats.added;
            continue;
        }
        // Bit-identity on the serialized payload, not value equality:
        // the store's contract is byte-stable dumps, so anything short
        // of identical bytes is a real divergence.
        const Entry &ours = it->second;
        if (ours.spec.dump() == theirs.spec.dump() &&
            ours.result.dump() == theirs.result.dump()) {
            ++stats.identical;
            continue;
        }
        if (!force_theirs)
            fatal("result store merge: key '", key,
                  "' has conflicting payloads (same spec hash, "
                  "different spec/result bytes); re-run one side or "
                  "merge with --force-theirs");
        it->second = theirs;
        ++stats.replaced;
    }
    // Section tables fold per key and per section index under the
    // same bit-identity rule: sections are deterministic slices of
    // deterministic campaigns, so two stores disagreeing on a slice's
    // bytes means one of them is corrupt.
    for (const auto &[key, theirs] : other.sections_) {
        auto it = sections_.find(key);
        if (it == sections_.end()) {
            stats.sectionEntriesAdded += theirs.entries.size();
            sections_[key] = theirs;
            continue;
        }
        SectionTable &ours = it->second;
        if (ours.spec.dump() != theirs.spec.dump() ||
            ours.goldenCycles != theirs.goldenCycles) {
            if (!force_theirs)
                fatal("result store merge: section table '", key,
                      "' has conflicting spec/golden-cycle payloads; "
                      "re-run one side or merge with --force-theirs");
            stats.sectionEntriesAdded += theirs.entries.size();
            ours = theirs;
            continue;
        }
        for (const auto &[idx, data] : theirs.entries) {
            auto eit = ours.entries.find(idx);
            if (eit == ours.entries.end()) {
                ours.entries[idx] = data;
                ++stats.sectionEntriesAdded;
                continue;
            }
            if (eit->second.dump() == data.dump())
                continue;
            if (!force_theirs)
                fatal("result store merge: section ", idx,
                      " of table '", key,
                      "' has conflicting payloads; re-run one side "
                      "or merge with --force-theirs");
            eit->second = data;
        }
    }
    return stats;
}

std::vector<std::string>
gatherStoreFiles(const std::vector<std::string> &inputs)
{
    std::vector<std::string> files;
    for (const std::string &in : inputs) {
        if (std::filesystem::is_directory(in)) {
            std::vector<std::string> shard_files;
            for (const auto &e :
                 std::filesystem::directory_iterator(in)) {
                if (e.is_regular_file() &&
                    e.path().extension() == ".json")
                    shard_files.push_back(e.path().string());
            }
            if (shard_files.empty())
                fatal("store gather: directory '", in,
                      "' holds no .json shards");
            // Sorted so the fold order is reproducible (merge is
            // order-independent anyway unless --force-theirs resolves
            // conflicts).
            std::sort(shard_files.begin(), shard_files.end());
            files.insert(files.end(), shard_files.begin(),
                         shard_files.end());
        } else if (std::filesystem::is_regular_file(in)) {
            files.push_back(in);
        } else {
            fatal("store gather: '", in,
                  "' is neither a store file nor a shard directory — "
                  "did a worker fail to deliver its output?");
        }
    }
    return files;
}

ResultStore::MergeStats
mergeStoreFiles(ResultStore &into, const std::vector<std::string> &files,
                bool force_theirs)
{
    ResultStore::MergeStats total;
    for (const std::string &f : files) {
        ResultStore part(f);
        if (!part.load())
            fatal("store gather: cannot open result store '", f, "'");
        const auto stats = into.merge(part, force_theirs);
        total.added += stats.added;
        total.identical += stats.identical;
        total.replaced += stats.replaced;
    }
    return total;
}

} // namespace merlin::io
