/**
 * @file
 * Dependency-free JSON value, writer and reader.
 *
 * Backs the persistent result store and the suite manifests, so the
 * design goals are (in order): deterministic output, exact integer
 * round-trips, zero third-party code.
 *
 *  - Objects preserve insertion order (a vector of members, not a
 *    map), so a fixed construction order yields byte-stable dumps —
 *    the property the suite's determinism guarantee rests on.
 *  - Integers are kept as int64/uint64, never squeezed through a
 *    double, so 64-bit counters (cycles, fault counts) round-trip
 *    exactly.  Doubles are written with the shortest representation
 *    that parses back to the same value (std::to_chars).
 *  - parse() throws FatalError with an offset on malformed input.
 */

#ifndef MERLIN_IO_JSON_HH
#define MERLIN_IO_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace merlin::io
{

class Json
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Int,    ///< negative integers
        Uint,   ///< non-negative integers
        Double,
        String,
        Array,
        Object,
    };

    using Array = std::vector<Json>;
    using Member = std::pair<std::string, Json>;
    using Object = std::vector<Member>; ///< insertion-ordered

    // ---- constructors ----
    Json() = default; ///< null
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Double), dbl_(d) {}
    Json(std::int64_t i);
    Json(std::uint64_t u) : type_(Type::Uint), uint_(u) {}
    Json(int i) : Json(static_cast<std::int64_t>(i)) {}
    Json(unsigned u) : Json(static_cast<std::uint64_t>(u)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json
    array()
    {
        Json j;
        j.type_ = Type::Array;
        return j;
    }
    static Json
    object()
    {
        Json j;
        j.type_ = Type::Object;
        return j;
    }

    // ---- inspection ----
    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool
    isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Uint ||
               type_ == Type::Double;
    }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; fatal() on type mismatch. */
    bool asBool() const;
    double asDouble() const; ///< any numeric type
    std::int64_t asI64() const;
    std::uint64_t asU64() const; ///< fatal on negative values
    const std::string &asString() const;

    // ---- array ----
    /** Element/member count of an array/object (0 otherwise). */
    std::size_t size() const;
    const Json &operator[](std::size_t i) const;
    void push(Json v);
    const Array &items() const;

    // ---- object ----
    /** @return the member value or nullptr when absent/not an object. */
    const Json *find(const std::string &key) const;
    /** Member value; fatal() when absent. */
    const Json &at(const std::string &key) const;
    /** Append a member, replacing an existing key in place. */
    void set(const std::string &key, Json v);
    /** Remove a member; no-op when absent.  @return true if removed. */
    bool erase(const std::string &key);
    const Object &members() const;

    // Typed lookups with defaults, for tolerant readers.
    std::uint64_t u64Or(const std::string &key, std::uint64_t def) const;
    double numOr(const std::string &key, double def) const;
    std::string strOr(const std::string &key,
                      const std::string &def) const;
    bool boolOr(const std::string &key, bool def) const;

    // ---- serialization ----
    /** Compact when @p indent < 0, pretty-printed otherwise. */
    std::string dump(int indent = -1) const;

    /** Parse @p text; throws FatalError on malformed input. */
    static Json parse(const std::string &text);

    /** Nesting depth parse() accepts before rejecting the document. */
    static constexpr int kMaxParseDepth = 256;

    bool operator==(const Json &o) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

/**
 * Content hash of a value (16 hex digits, FNV-1a 64 over the compact
 * dump).  Because dumps are a pure function of the value, so is the
 * key — this is what the result store and the suite differ join on.
 */
std::string contentKey(const Json &j);

} // namespace merlin::io

#endif // MERLIN_IO_JSON_HH
