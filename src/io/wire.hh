/**
 * @file
 * merlin-wire-v1: length-prefixed JSON framing for the campaign
 * service, over Unix domain sockets.
 *
 * Every frame is a 4-byte big-endian payload length followed by
 * exactly that many bytes of UTF-8 JSON — one message object per
 * frame, parsed by the strict io::Json parser (duplicate keys, bad
 * number grammar and over-deep nesting are all connection errors, not
 * silent acceptance).  The frame cap kWireMaxFrame bounds what a
 * malformed or hostile peer can make the daemon buffer.
 *
 * Message shapes (documented normatively in docs/wire-protocol.md):
 * requests `hello | submit | status | result | cancel | shutdown`,
 * replies `ok | submitted | status | result | error`.  The framing
 * layer below is shape-agnostic: it moves one Json per call and
 * reports clean EOF separately from mid-frame truncation.
 *
 * POSIX only (Unix sockets); the CMake build only targets POSIX
 * toolchains today, and every entry point fatal()s with a clear
 * message if the socket layer is unavailable.
 */

#ifndef MERLIN_IO_WIRE_HH
#define MERLIN_IO_WIRE_HH

#include <cstdint>
#include <string>

#include "io/json.hh"

namespace merlin::io
{

/** Protocol tag clients and daemon exchange in hello/ok. */
inline constexpr const char *kWireFormat = "merlin-wire-v1";

/** Largest accepted frame payload; a 4-byte length field could name
 *  4 GiB, which no legitimate message approaches. */
inline constexpr std::uint32_t kWireMaxFrame = 64u << 20;

/**
 * Blocking framed-JSON transport over one stream fd (socket or
 * socketpair end).  Owns the fd; reads and writes may run on
 * different threads, but each direction must have a single caller at
 * a time.
 */
class WireConnection
{
  public:
    /** Takes ownership of @p fd (-1 = empty connection). */
    explicit WireConnection(int fd = -1) : fd_(fd) {}
    ~WireConnection();

    WireConnection(WireConnection &&o) noexcept;
    WireConnection &operator=(WireConnection &&o) noexcept;
    WireConnection(const WireConnection &) = delete;
    WireConnection &operator=(const WireConnection &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /**
     * Read one message.  @return false on clean EOF (peer closed at a
     * frame boundary); fatal() on a truncated frame, an oversize
     * length, malformed JSON, or a non-object payload.
     */
    bool read(Json &msg);

    /**
     * Write one message; fatal() on any I/O error (including EPIPE —
     * callers that tolerate vanishing peers catch FatalError).
     * @return the framed payload size in bytes (for accounting).
     */
    std::size_t write(const Json &msg);

    /**
     * Disallow further sends and wake a blocked reader (SHUT_RDWR) —
     * how the daemon unsticks per-client session threads at shutdown.
     * The fd stays owned and open until destruction.
     */
    void shutdownBoth();

  private:
    int fd_ = -1;
};

// Raw framing primitives under WireConnection, exposed for tests and
// for callers managing their own fds.  Both loop over EINTR and
// partial transfers.
/** @return false on clean EOF before any byte of the length prefix. */
bool wireReadFrame(int fd, std::string &payload);
void wireWriteFrame(int fd, const std::string &payload);

// Unix-domain socket plumbing (all fatal() on error).
/**
 * Bind and listen on @p path.  A stale socket file (bound by a dead
 * daemon: connect() is refused) is silently replaced; a LIVE daemon
 * on the path is fatal().
 */
int wireListen(const std::string &path);
/** Accept one client; -1 when the listening fd was closed/shut down. */
int wireAccept(int listen_fd);
/** Connect to a daemon at @p path. */
int wireConnect(const std::string &path);

} // namespace merlin::io

#endif // MERLIN_IO_WIRE_HH
