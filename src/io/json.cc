#include "io/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"

namespace merlin::io
{

Json::Json(std::int64_t i)
{
    // Canonicalize non-negative integers to Uint so that 5 and 5u
    // compare and dump identically no matter how they were produced.
    if (i >= 0) {
        type_ = Type::Uint;
        uint_ = static_cast<std::uint64_t>(i);
    } else {
        type_ = Type::Int;
        int_ = i;
    }
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        fatal("json: not a bool");
    return bool_;
}

double
Json::asDouble() const
{
    switch (type_) {
      case Type::Int:    return static_cast<double>(int_);
      case Type::Uint:   return static_cast<double>(uint_);
      case Type::Double: return dbl_;
      default:           fatal("json: not a number");
    }
}

std::int64_t
Json::asI64() const
{
    switch (type_) {
      case Type::Int:  return int_;
      case Type::Uint:
        if (uint_ > static_cast<std::uint64_t>(INT64_MAX))
            fatal("json: integer out of int64 range");
        return static_cast<std::int64_t>(uint_);
      default: fatal("json: not an integer");
    }
}

std::uint64_t
Json::asU64() const
{
    switch (type_) {
      case Type::Uint: return uint_;
      case Type::Int:  fatal("json: negative value for u64");
      case Type::Double:
        // "2e3" and "128.0" parse as doubles; accept them when they
        // hold an exact non-negative integer.
        if (dbl_ >= 0 && dbl_ < 18446744073709551616.0 &&
            dbl_ == std::floor(dbl_))
            return static_cast<std::uint64_t>(dbl_);
        fatal("json: not an integer");
      default: fatal("json: not an integer");
    }
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        fatal("json: not a string");
    return str_;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

const Json &
Json::operator[](std::size_t i) const
{
    if (type_ != Type::Array || i >= arr_.size())
        fatal("json: bad array access");
    return arr_[i];
}

void
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        fatal("json: push on non-array");
    arr_.push_back(std::move(v));
}

const Json::Array &
Json::items() const
{
    if (type_ != Type::Array)
        fatal("json: not an array");
    return arr_;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const Member &m : obj_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *v = find(key);
    if (!v)
        fatal("json: missing key '", key, "'");
    return *v;
}

void
Json::set(const std::string &key, Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        fatal("json: set on non-object");
    for (Member &m : obj_) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

bool
Json::erase(const std::string &key)
{
    if (type_ != Type::Object)
        return false;
    for (auto it = obj_.begin(); it != obj_.end(); ++it) {
        if (it->first == key) {
            obj_.erase(it);
            return true;
        }
    }
    return false;
}

const Json::Object &
Json::members() const
{
    if (type_ != Type::Object)
        fatal("json: not an object");
    return obj_;
}

std::uint64_t
Json::u64Or(const std::string &key, std::uint64_t def) const
{
    const Json *v = find(key);
    if (!v)
        return def;
    if (v->type_ == Type::Uint)
        return v->uint_;
    // Same integral-double tolerance as asU64 ("128.0", "2e3"), so a
    // manifest author's notation cannot silently change a campaign's
    // configuration.
    if (v->type_ == Type::Double && v->dbl_ >= 0 &&
        v->dbl_ < 18446744073709551616.0 &&
        v->dbl_ == std::floor(v->dbl_))
        return v->asU64();
    return def;
}

double
Json::numOr(const std::string &key, double def) const
{
    const Json *v = find(key);
    return v && v->isNumber() ? v->asDouble() : def;
}

std::string
Json::strOr(const std::string &key, const std::string &def) const
{
    const Json *v = find(key);
    return v && v->isString() ? v->asString() : def;
}

bool
Json::boolOr(const std::string &key, bool def) const
{
    const Json *v = find(key);
    return v && v->isBool() ? v->asBool() : def;
}

bool
Json::operator==(const Json &o) const
{
    if (type_ != o.type_) {
        // Cross-type numeric equality only for identical values.
        if (isNumber() && o.isNumber())
            return asDouble() == o.asDouble();
        return false;
    }
    switch (type_) {
      case Type::Null:   return true;
      case Type::Bool:   return bool_ == o.bool_;
      case Type::Int:    return int_ == o.int_;
      case Type::Uint:   return uint_ == o.uint_;
      case Type::Double: return dbl_ == o.dbl_;
      case Type::String: return str_ == o.str_;
      case Type::Array:  return arr_ == o.arr_;
      case Type::Object: return obj_ == o.obj_;
    }
    return false;
}

// ------------------------------------------------------------- writer

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
appendDouble(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no NaN/Inf; null is the least-lossy encoding.
        out += "null";
        return;
    }
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof buf, d);
    if (ec != std::errc{})
        fatal("json: double conversion failed");
    out.append(buf, end);
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    const auto newline = [&](int d) {
        if (pretty) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) *
                           static_cast<std::size_t>(d),
                       ' ');
        }
    };

    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        out += std::to_string(int_);
        break;
      case Type::Uint:
        out += std::to_string(uint_);
        break;
      case Type::Double:
        appendDouble(out, dbl_);
        break;
      case Type::String:
        appendEscaped(out, str_);
        break;
      case Type::Array:
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        out += ']';
        break;
      case Type::Object:
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            appendEscaped(out, obj_[i].first);
            out += pretty ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

std::string
contentKey(const Json &j)
{
    // FNV-1a 64 over the canonical (compact) dump.
    const std::string canon = j.dump();
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : canon) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

// ------------------------------------------------------------- parser

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    run()
    {
        Json v = value();
        skipWs();
        if (at_ != text_.size())
            err("trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    err(const char *what)
    {
        fatal("json parse error at offset ", at_, ": ", what);
    }

    void
    skipWs()
    {
        while (at_ < text_.size() &&
               (text_[at_] == ' ' || text_[at_] == '\t' ||
                text_[at_] == '\n' || text_[at_] == '\r'))
            ++at_;
    }

    char
    peek()
    {
        if (at_ >= text_.size())
            err("unexpected end of input");
        return text_[at_];
    }

    void
    expect(char c)
    {
        if (at_ >= text_.size() || text_[at_] != c)
            err("unexpected character");
        ++at_;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t n = std::char_traits<char>::length(w);
        if (text_.compare(at_, n, w) == 0) {
            at_ += n;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        skipWs();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case 'N':
          case 'I':
            // Catch the common non-JSON spellings head-on: strtod
            // would otherwise accept "Infinity"/"NaN" on some libcs.
            err("NaN/Infinity are not valid JSON");
          case '"': return Json(string());
          case 't':
            if (!consumeWord("true"))
                err("bad literal");
            return Json(true);
          case 'f':
            if (!consumeWord("false"))
                err("bad literal");
            return Json(false);
          case 'n':
            if (!consumeWord("null"))
                err("bad literal");
            return Json();
          default: return number();
        }
    }

    Json
    object()
    {
        // Recursion guard: "[[[[..." / "{{{{..." must report an error,
        // not exhaust the stack.
        if (++depth_ > Json::kMaxParseDepth)
            err("nesting too deep");
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++at_;
            --depth_;
            return obj;
        }
        for (;;) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            // Reject duplicates instead of silently keeping the last
            // one: two spellings of the same member in a manifest or
            // store are always a mistake, and "last wins" would make
            // the parsed value depend on member order.
            if (obj.find(key))
                err("duplicate object key");
            obj.set(key, value());
            skipWs();
            if (peek() == ',') {
                ++at_;
                continue;
            }
            expect('}');
            --depth_;
            return obj;
        }
    }

    Json
    array()
    {
        if (++depth_ > Json::kMaxParseDepth)
            err("nesting too deep");
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++at_;
            --depth_;
            return arr;
        }
        for (;;) {
            arr.push(value());
            skipWs();
            if (peek() == ',') {
                ++at_;
                continue;
            }
            expect(']');
            --depth_;
            return arr;
        }
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    unsigned
    hex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            char c = peek();
            ++at_;
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                err("bad \\u escape");
        }
        return v;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (at_ >= text_.size())
                err("unterminated string");
            char c = text_[at_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (at_ >= text_.size())
                err("unterminated escape");
            char e = text_[at_++];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                unsigned cp = hex4();
                if (cp >= 0xD800 && cp < 0xDC00) {
                    // Surrogate pair.
                    if (at_ + 1 >= text_.size() || text_[at_] != '\\' ||
                        text_[at_ + 1] != 'u')
                        err("lone surrogate");
                    at_ += 2;
                    unsigned lo = hex4();
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        err("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                }
                appendUtf8(out, cp);
                break;
              }
              default: err("bad escape");
            }
        }
    }

    /**
     * Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?
     * ([eE][+-]?[0-9]+)?  — strtod alone is far laxer (it accepts
     * "+1", "2.", ".5", even "Infinity" on some libcs).
     */
    static bool
    validNumberToken(const std::string &t)
    {
        std::size_t i = 0;
        const auto digit = [&](std::size_t k) {
            return k < t.size() && t[k] >= '0' && t[k] <= '9';
        };
        if (i < t.size() && t[i] == '-')
            ++i;
        if (!digit(i))
            return false;
        if (t[i] == '0') {
            ++i; // no leading zeros
        } else {
            while (digit(i))
                ++i;
        }
        if (i < t.size() && t[i] == '.') {
            ++i;
            if (!digit(i))
                return false;
            while (digit(i))
                ++i;
        }
        if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
            ++i;
            if (i < t.size() && (t[i] == '+' || t[i] == '-'))
                ++i;
            if (!digit(i))
                return false;
            while (digit(i))
                ++i;
        }
        return i == t.size();
    }

    Json
    number()
    {
        const std::size_t start = at_;
        bool floating = false;
        if (at_ < text_.size() && text_[at_] == '-')
            ++at_;
        while (at_ < text_.size()) {
            char c = text_[at_];
            if (c >= '0' && c <= '9') {
                ++at_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                floating = true;
                ++at_;
            } else {
                break;
            }
        }
        if (at_ == start)
            err("expected a value");
        const std::string tok = text_.substr(start, at_ - start);
        if (!validNumberToken(tok))
            err("malformed number");
        if (!floating) {
            if (tok[0] == '-') {
                std::int64_t v = 0;
                auto [p, ec] = std::from_chars(
                    tok.data(), tok.data() + tok.size(), v);
                if (ec == std::errc{} && p == tok.data() + tok.size())
                    return Json(v);
            } else {
                std::uint64_t v = 0;
                auto [p, ec] = std::from_chars(
                    tok.data(), tok.data() + tok.size(), v);
                if (ec == std::errc{} && p == tok.data() + tok.size())
                    return Json(v);
            }
            // Out-of-range integer: fall through to double.
        }
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            err("malformed number");
        // "1e999" overflows strtod to +-Inf: letting it through would
        // materialize a non-finite double that dump() can only write
        // back as null — reject at the boundary instead.
        if (!std::isfinite(d))
            err("number out of range");
        return Json(d);
    }

    const std::string &text_;
    std::size_t at_ = 0;
    int depth_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).run();
}

} // namespace merlin::io
