/**
 * @file
 * gcc (SPEC-like): a stack-machine bytecode interpreter — the irregular,
 * branch-heavy dispatch loop characteristic of compilers and language
 * tools.  The interpreted program is generated (valid by construction)
 * and bounded by a step budget.
 */

#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

// Bytecode: one op per quad pair (opcode, arg).
enum Op : std::int64_t
{
    OP_PUSH = 0, // push arg
    OP_ADD = 1,  // pop b, a; push a+b
    OP_SUB = 2,
    OP_MUL = 3,
    OP_DUP = 4,   // duplicate top
    OP_SWAP = 5,  // swap top two
    OP_JNZ = 6,   // pop v; if v != 0 jump to arg
    OP_DEC = 7,   // top -= 1
    OP_XOR = 8,   // pop b, a; push a^b
    OP_HALT = 9,
};

struct Prog
{
    std::vector<std::int64_t> code; // (op, arg) pairs
};

/** A nest of counted loops doing arithmetic — always terminates. */
Prog
makeBytecode()
{
    Prog p;
    auto emit = [&](std::int64_t op, std::int64_t arg) {
        p.code.push_back(op);
        p.code.push_back(arg);
    };
    // acc = 1
    emit(OP_PUSH, 1);
    // outer counter = 120
    emit(OP_PUSH, 120);
    const std::int64_t outer_top = static_cast<std::int64_t>(
        p.code.size() / 2);
    //   swap -> acc on top; mix acc
    emit(OP_SWAP, 0);
    emit(OP_DUP, 0);
    emit(OP_PUSH, 2654435761LL);
    emit(OP_MUL, 0);
    emit(OP_XOR, 0);
    emit(OP_PUSH, 17);
    emit(OP_ADD, 0);
    //   inner counter = 9
    emit(OP_PUSH, 9);
    const std::int64_t inner_top = static_cast<std::int64_t>(
        p.code.size() / 2);
    emit(OP_SWAP, 0);
    emit(OP_PUSH, 3);
    emit(OP_MUL, 0);
    emit(OP_PUSH, 1);
    emit(OP_SUB, 0);
    emit(OP_SWAP, 0);
    emit(OP_DEC, 0);
    emit(OP_DUP, 0);
    emit(OP_JNZ, inner_top);
    //   drop inner counter: xor-with-self leaves 0, add into acc
    emit(OP_XOR, 0); // pops counter(0) ^ acc-ish... stack: acc^0
    emit(OP_SWAP, 0);
    emit(OP_DEC, 0);
    emit(OP_DUP, 0);
    emit(OP_JNZ, outer_top);
    // stack now: [acc, outer(0)]; fold and stop
    emit(OP_ADD, 0);
    emit(OP_HALT, 0);
    return p;
}

/** Reference interpreter mirroring the assembly exactly. */
std::pair<std::uint64_t, std::uint64_t>
refRun(const Prog &p, std::uint64_t max_steps)
{
    std::vector<std::int64_t> stack;
    std::uint64_t steps = 0;
    std::int64_t pc = 0;
    while (steps < max_steps) {
        const std::int64_t op = p.code[2 * pc];
        const std::int64_t arg = p.code[2 * pc + 1];
        ++steps;
        ++pc;
        switch (op) {
          case OP_PUSH: stack.push_back(arg); break;
          case OP_ADD: {
            auto b = stack.back();
            stack.pop_back();
            stack.back() += b;
            break;
          }
          case OP_SUB: {
            auto b = stack.back();
            stack.pop_back();
            stack.back() -= b;
            break;
          }
          case OP_MUL: {
            auto b = stack.back();
            stack.pop_back();
            stack.back() *= b;
            break;
          }
          case OP_DUP: stack.push_back(stack.back()); break;
          case OP_SWAP:
            std::swap(stack.back(), stack[stack.size() - 2]);
            break;
          case OP_JNZ: {
            auto v = stack.back();
            stack.pop_back();
            if (v != 0)
                pc = arg;
            break;
          }
          case OP_DEC: stack.back() -= 1; break;
          case OP_XOR: {
            auto b = stack.back();
            stack.pop_back();
            stack.back() ^= b;
            break;
          }
          case OP_HALT:
            return {static_cast<std::uint64_t>(stack.back()), steps};
        }
    }
    return {0, steps};
}

} // namespace

WorkloadSource
wlGcc()
{
    WorkloadSource w;
    w.description = "stack-machine bytecode interpreter (dispatch-heavy)";
    w.window = 25'000;

    Prog p = makeBytecode();

    std::ostringstream os;
    os << ".data\n"
       << quadTable("code", p.code) << "stk: .space 2048\n"
       << ".text\n";
    // s0 = code base, s1 = vm pc, s2 = stack ptr (grows up, points to
    // next free quad), s3 = step count, t8 = 0.
    os << R"(_start:
  la s0, code
  movi s1, 0
  la s2, stk
  movi s3, 0
vm_loop:
  shli t0, s1, 4         ; pc * 16 (two quads per op)
  add t0, t0, s0
  ld.d t1, [t0]          ; opcode
  ld.d t2, [t0+8]        ; arg
  addi s3, s3, 1
  addi s1, s1, 1
  ; dispatch chain (compilers love unpredictable branches)
  beq t1, t8, op_push
  movi t3, 1
  beq t1, t3, op_add
  movi t3, 2
  beq t1, t3, op_sub
  movi t3, 3
  beq t1, t3, op_mul
  movi t3, 4
  beq t1, t3, op_dup
  movi t3, 5
  beq t1, t3, op_swap
  movi t3, 6
  beq t1, t3, op_jnz
  movi t3, 7
  beq t1, t3, op_dec
  movi t3, 8
  beq t1, t3, op_xor
  jmp vm_done            ; OP_HALT

op_push:
  st.d t2, [s2]
  addi s2, s2, 8
  jmp vm_loop
op_add:
  ld.d t3, [s2-8]
  ld.d t4, [s2-16]
  add t4, t4, t3
  st.d t4, [s2-16]
  addi s2, s2, -8
  jmp vm_loop
op_sub:
  ld.d t3, [s2-8]
  ld.d t4, [s2-16]
  sub t4, t4, t3
  st.d t4, [s2-16]
  addi s2, s2, -8
  jmp vm_loop
op_mul:
  ld.d t3, [s2-8]
  ld.d t4, [s2-16]
  mul t4, t4, t3
  st.d t4, [s2-16]
  addi s2, s2, -8
  jmp vm_loop
op_dup:
  ld.d t3, [s2-8]
  st.d t3, [s2]
  addi s2, s2, 8
  jmp vm_loop
op_swap:
  ld.d t3, [s2-8]
  ld.d t4, [s2-16]
  st.d t4, [s2-8]
  st.d t3, [s2-16]
  jmp vm_loop
op_jnz:
  ld.d t3, [s2-8]
  addi s2, s2, -8
  beq t3, t8, vm_loop
  mov s1, t2
  jmp vm_loop
op_dec:
  ld.d t3, [s2-8]
  addi t3, t3, -1
  st.d t3, [s2-8]
  jmp vm_loop
op_xor:
  ld.d t3, [s2-8]
  ld.d t4, [s2-16]
  xor t4, t4, t3
  st.d t4, [s2-16]
  addi s2, s2, -8
  jmp vm_loop

vm_done:
  ld.d t0, [s2-8]
  out.d t0
  out.d s3
  halt 0
)";
    w.source = os.str();

    auto [result, steps] = refRun(p, 10'000'000);
    outD(w.expected, result);
    outD(w.expected, steps);
    return w;
}

} // namespace merlin::workloads
