/**
 * @file
 * gobmk (SPEC-like): Go board analysis — flood-fill group discovery and
 * liberty counting over 19x19 boards, the data-dependent traversal at the
 * heart of Go engines.
 */

#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned B = 19;
constexpr unsigned CELLS = B * B;
constexpr unsigned BOARDS = 3;

std::vector<std::uint8_t>
makeBoards()
{
    std::vector<std::uint8_t> v(BOARDS * CELLS);
    for (unsigned b = 0; b < BOARDS; ++b) {
        for (unsigned i = 0; i < CELLS; ++i) {
            // 0 empty, 1 black, 2 white; ~60% stones.
            std::uint64_t r = mix64(b * 7919 + i);
            v[b * CELLS + i] =
                static_cast<std::uint8_t>(r % 5 < 2 ? 0 : 1 + (r % 2));
        }
    }
    return v;
}

} // namespace

WorkloadSource
wlGobmk()
{
    WorkloadSource w;
    w.description = "Go group flood-fill + liberty counting, 3 boards";
    w.window = 25'000;

    auto boards = makeBoards();

    std::ostringstream os;
    os << ".data\n"
       << byteTable("boards", boards) << "seen: .space " << CELLS << "\n"
       << ".align 8\n"
       << "stack: .space " << CELLS * 8 << "\n"
       << "libseen: .space " << CELLS << "\n"
       << ".text\n";
    // s0 = board base, s1 = seen, s2 = stack base, s3 = groups,
    // s4 = liberty checksum, s5 = board index, s9 = libseen.
    os << R"(_start:
  la s1, seen
  la s2, stack
  la s9, libseen
  movi s3, 0
  movi s4, 0
  movi s5, 0
board_loop:
  la s0, boards
  movi t0, )" << CELLS << R"(
  mul t1, s5, t0
  add s0, s0, t1
  ; clear seen
  movi t0, 0
clr:
  add t1, s1, t0
  st.b t8, [t1]
  addi t0, t0, 1
  slti t1, t0, )" << CELLS << R"(
  bne t1, t8, clr
  ; scan all cells
  movi s6, 0             ; cell index
cell_loop:
  add t0, s1, s6
  ld.bu t1, [t0]
  bne t1, t8, next_cell  ; already visited
  add t0, s0, s6
  ld.bu s7, [t0]         ; color
  beq s7, t8, next_cell  ; empty
  ; ---- new group: flood fill from s6 ----
  addi s3, s3, 1
  ; clear libseen
  movi t0, 0
clr2:
  add t1, s9, t0
  st.b t8, [t1]
  addi t0, t0, 1
  slti t1, t0, )" << CELLS << R"(
  bne t1, t8, clr2
  movi s8, 0             ; group liberties
  ; push s6
  st.d s6, [s2]
  movi t9, 8             ; stack top offset
  add t0, s1, s6
  movi t1, 1
  st.b t1, [t0]
fill_loop:
  beq t9, t8, group_done
  addi t9, t9, -8
  add t0, s2, t9
  ld.d t7, [t0]          ; current cell
  ; visit 4 neighbours: up, down, left, right
  ; --- up ---
  movi t0, )" << B << R"(
  blt t7, t0, no_up
  sub t1, t7, t0
  call visit
no_up:
  ; --- down ---
  movi t0, )" << (CELLS - B) << R"(
  bge t7, t0, no_down
  addi t1, t7, )" << B << R"(
  call visit
no_down:
  ; --- left ---
  movi t0, )" << B << R"(
  rem t2, t7, t0
  beq t2, t8, no_left
  addi t1, t7, -1
  call visit
no_left:
  ; --- right ---
  movi t0, )" << B << R"(
  rem t2, t7, t0
  movi t3, )" << (B - 1) << R"(
  beq t2, t3, no_right
  addi t1, t7, 1
  call visit
no_right:
  jmp fill_loop
group_done:
  ; checksum: liberties * group number
  mul t0, s8, s3
  add s4, s4, t0
next_cell:
  addi s6, s6, 1
  slti t0, s6, )" << CELLS << R"(
  bne t0, t8, cell_loop
  addi s5, s5, 1
  slti t0, s5, )" << BOARDS << R"(
  bne t0, t8, board_loop
  out.d s3
  out.d s4
  halt 0

; visit(t1 = neighbour cell): same color -> push if unseen;
; empty -> count liberty once per group (libseen)
visit:
  add t2, s0, t1
  ld.bu t3, [t2]
  beq t3, t8, v_liberty
  bne t3, s7, v_ret      ; other color: wall
  add t2, s1, t1
  ld.bu t3, [t2]
  bne t3, t8, v_ret      ; already seen
  movi t3, 1
  st.b t3, [t2]
  add t2, s2, t9
  st.d t1, [t2]
  addi t9, t9, 8
v_ret:
  ret
v_liberty:
  add t2, s9, t1
  ld.bu t3, [t2]
  bne t3, t8, v_ret
  movi t3, 1
  st.b t3, [t2]
  addi s8, s8, 1
  ret
)";
    w.source = os.str();

    // Reference.
    std::uint64_t groups = 0, libsum = 0;
    std::vector<std::uint8_t> seen(CELLS);
    std::vector<std::uint8_t> libseen(CELLS);
    std::vector<std::uint64_t> stack(CELLS);
    for (unsigned b = 0; b < BOARDS; ++b) {
        const std::uint8_t *bd = &boards[b * CELLS];
        std::fill(seen.begin(), seen.end(), 0);
        for (unsigned c = 0; c < CELLS; ++c) {
            if (seen[c] || bd[c] == 0)
                continue;
            ++groups;
            std::fill(libseen.begin(), libseen.end(), 0);
            std::uint64_t libs = 0;
            unsigned top = 0;
            stack[top++] = c;
            seen[c] = 1;
            const std::uint8_t color = bd[c];
            while (top) {
                unsigned cur = static_cast<unsigned>(stack[--top]);
                auto visit = [&](unsigned n) {
                    if (bd[n] == 0) {
                        if (!libseen[n]) {
                            libseen[n] = 1;
                            ++libs;
                        }
                    } else if (bd[n] == color && !seen[n]) {
                        seen[n] = 1;
                        stack[top++] = n;
                    }
                };
                if (cur >= B)
                    visit(cur - B);
                if (cur < CELLS - B)
                    visit(cur + B);
                if (cur % B != 0)
                    visit(cur - 1);
                if (cur % B != B - 1)
                    visit(cur + 1);
            }
            libsum += libs * groups;
        }
    }
    outD(w.expected, groups);
    outD(w.expected, libsum);
    return w;
}

} // namespace merlin::workloads
