#include "workloads/workloads.hh"

#include <map>

#include "base/logging.hh"
#include "masm/asm.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

using Builder = WorkloadSource (*)();

const std::map<std::string, Builder> &
registry()
{
    static const std::map<std::string, Builder> table = {
        // MiBench-like.
        {"qsort", &wlQsort},
        {"sha", &wlSha},
        {"stringsearch", &wlStringsearch},
        {"fft", &wlFft},
        {"susan_s", &wlSusanS},
        {"susan_e", &wlSusanE},
        {"susan_c", &wlSusanC},
        {"djpeg", &wlDjpeg},
        {"cjpeg", &wlCjpeg},
        {"caes", &wlCaes},
        // SPEC-like.
        {"bzip2", &wlBzip2},
        {"gcc", &wlGcc},
        {"mcf", &wlMcf},
        {"gobmk", &wlGobmk},
        {"hmmer", &wlHmmer},
        {"sjeng", &wlSjeng},
        {"libquantum", &wlLibquantum},
        {"h264ref", &wlH264ref},
        {"omnetpp", &wlOmnetpp},
        {"astar", &wlAstar},
    };
    return table;
}

} // namespace

const std::vector<std::string> &
mibenchWorkloads()
{
    static const std::vector<std::string> names = {
        "susan_c", "susan_s", "susan_e", "stringsearch", "djpeg",
        "sha",     "fft",     "qsort",   "cjpeg",        "caes",
    };
    return names;
}

const std::vector<std::string> &
specWorkloads()
{
    static const std::vector<std::string> names = {
        "bzip2", "gcc",        "mcf",     "gobmk",   "hmmer",
        "sjeng", "libquantum", "h264ref", "omnetpp", "astar",
    };
    return names;
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> all = mibenchWorkloads();
    const auto &spec = specWorkloads();
    all.insert(all.end(), spec.begin(), spec.end());
    return all;
}

BuiltWorkload
buildWorkload(const std::string &name)
{
    auto it = registry().find(name);
    if (it == registry().end())
        fatal("unknown workload '", name, "'");
    WorkloadSource src = it->second();
    BuiltWorkload w;
    w.program = masm::assemble(src.source, name);
    w.expectedOutput = std::move(src.expected);
    w.suggestedWindow = src.window;
    w.description = src.description;
    return w;
}

} // namespace merlin::workloads
