/**
 * @file
 * bzip2 (SPEC-like): run-length encoding followed by a move-to-front
 * transform over a 4KB runs-heavy buffer — the byte-shuffling core of
 * block-sorting compressors.
 */

#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned IN_LEN = 4096;

std::vector<std::uint8_t>
makeInput()
{
    std::vector<std::uint8_t> v;
    v.reserve(IN_LEN);
    std::uint64_t s = 99;
    while (v.size() < IN_LEN) {
        s = mix64(s);
        const std::uint8_t byte = static_cast<std::uint8_t>(s % 32);
        unsigned run = 1 + static_cast<unsigned>((s >> 8) % 7);
        while (run-- && v.size() < IN_LEN)
            v.push_back(byte);
    }
    return v;
}

} // namespace

WorkloadSource
wlBzip2()
{
    WorkloadSource w;
    w.description = "RLE + move-to-front transform over 4KB";
    w.window = 25'000;

    auto input = makeInput();

    std::ostringstream os;
    os << ".data\n"
       << byteTable("inp", input) << "rle: .space " << 2 * IN_LEN + 16
       << "\nmtf: .space 256\n"
       << ".text\n";
    // Phase 1: RLE -> (byte, runlen<=255) pairs in `rle`, s6 = pair count
    // Phase 2: MTF over the RLE literals, checksum the ranks.
    os << R"(_start:
  la s0, inp
  la s1, rle
  movi s2, 0             ; read pos
  movi s6, 0             ; pairs
rle_loop:
  add t0, s0, s2
  ld.bu t1, [t0]         ; current byte
  movi t2, 1             ; run length
run_scan:
  add t3, s2, t2
  slti t4, t3, )" << IN_LEN << R"(
  beq t4, t8, run_end
  add t4, s0, t3
  ld.bu t5, [t4]
  bne t5, t1, run_end
  slti t4, t2, 255
  beq t4, t8, run_end
  addi t2, t2, 1
  jmp run_scan
run_end:
  shli t3, s6, 1
  add t3, t3, s1
  st.b t1, [t3]
  st.b t2, [t3+1]
  addi s6, s6, 1
  add s2, s2, t2
  slti t3, s2, )" << IN_LEN << R"(
  bne t3, t8, rle_loop

  ; ---- init MTF table: mtf[i] = i ----
  la s3, mtf
  movi t0, 0
mtf_init:
  add t1, s3, t0
  st.b t0, [t1]
  addi t0, t0, 1
  slti t1, t0, 256
  bne t1, t8, mtf_init

  ; ---- MTF pass over RLE literals ----
  movi s4, 0             ; pair index
  movi s5, 0             ; rank checksum
  movi s7, 0             ; runlen checksum
mtf_loop:
  shli t0, s4, 1
  add t0, t0, s1
  ld.bu t1, [t0]         ; literal
  ld.bu t2, [t0+1]       ; run length
  mul t3, t2, s4
  add s7, s7, t3
  ; find rank of literal in mtf table
  movi t3, 0
rank_scan:
  add t4, s3, t3
  ld.bu t5, [t4]
  beq t5, t1, rank_found
  addi t3, t3, 1
  jmp rank_scan
rank_found:
  ; checksum: rank * (index+1)
  addi t4, s4, 1
  mul t5, t3, t4
  add s5, s5, t5
  ; move to front: shift mtf[0..rank-1] up by one
  mov t4, t3
shift_loop:
  beq t4, t8, shift_done
  add t5, s3, t4
  ld.bu t6, [t5-1]
  st.b t6, [t5]
  addi t4, t4, -1
  jmp shift_loop
shift_done:
  st.b t1, [s3]
  addi s4, s4, 1
  blt s4, s6, mtf_loop

  out.d s6
  out.d s5
  out.d s7
  halt 0
)";
    w.source = os.str();

    // Reference.
    std::vector<std::pair<std::uint8_t, unsigned>> rle;
    for (unsigned pos = 0; pos < IN_LEN;) {
        std::uint8_t b = input[pos];
        unsigned run = 1;
        while (pos + run < IN_LEN && input[pos + run] == b && run < 255)
            ++run;
        rle.emplace_back(b, run);
        pos += run;
    }
    std::uint8_t mtf[256];
    for (unsigned i = 0; i < 256; ++i)
        mtf[i] = static_cast<std::uint8_t>(i);
    std::uint64_t ranksum = 0, runsum = 0;
    for (unsigned i = 0; i < rle.size(); ++i) {
        runsum += static_cast<std::uint64_t>(rle[i].second) * i;
        unsigned rank = 0;
        while (mtf[rank] != rle[i].first)
            ++rank;
        ranksum += static_cast<std::uint64_t>(rank) * (i + 1);
        for (unsigned k = rank; k > 0; --k)
            mtf[k] = mtf[k - 1];
        mtf[0] = rle[i].first;
    }
    outD(w.expected, rle.size());
    outD(w.expected, ranksum);
    outD(w.expected, runsum);
    return w;
}

} // namespace merlin::workloads
