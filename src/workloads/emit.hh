/**
 * @file
 * Helpers for generating assembly sources with embedded data tables.
 */

#ifndef MERLIN_WORKLOADS_EMIT_HH
#define MERLIN_WORKLOADS_EMIT_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace merlin::workloads
{

/** Emit "label: .quad v0, v1, ..." (8 values per line). */
inline std::string
quadTable(const std::string &label, const std::vector<std::int64_t> &vals)
{
    std::ostringstream os;
    os << label << ":";
    for (std::size_t i = 0; i < vals.size(); ++i) {
        os << (i % 8 == 0 ? (i ? "\n .quad " : " .quad ") : ", ")
           << vals[i];
    }
    os << "\n";
    return os.str();
}

/** Emit "label: .byte v0, v1, ..." (16 values per line). */
inline std::string
byteTable(const std::string &label, const std::vector<std::uint8_t> &vals)
{
    std::ostringstream os;
    os << label << ":";
    for (std::size_t i = 0; i < vals.size(); ++i) {
        os << (i % 16 == 0 ? (i ? "\n .byte " : " .byte ") : ", ")
           << static_cast<int>(vals[i]);
    }
    os << "\n";
    return os.str();
}

/** Append 8 little-endian bytes of @p v (mirrors OUT.D). */
inline void
outD(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/** Deterministic 64-bit mixer used by input generators. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace merlin::workloads

#endif // MERLIN_WORKLOADS_EMIT_HH
