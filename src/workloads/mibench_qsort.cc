/**
 * @file
 * qsort (MiBench-like): recursive quicksort of 256 pseudo-random 64-bit
 * keys, followed by a verification / checksum pass.
 */

#include <algorithm>
#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{
constexpr unsigned N = 256;

std::vector<std::int64_t>
inputKeys()
{
    std::vector<std::int64_t> v(N);
    for (unsigned i = 0; i < N; ++i) {
        // Mixed-sign keys exercise the signed comparisons.
        v[i] = static_cast<std::int64_t>(mix64(i + 7)) >> 16;
    }
    return v;
}

} // namespace

WorkloadSource
wlQsort()
{
    WorkloadSource w;
    w.description = "recursive quicksort of 256 keys + verify pass";

    auto keys = inputKeys();

    std::ostringstream os;
    os << ".data\n" << quadTable("arr", keys) << ".text\n";
    os << R"(_start:
  la a0, arr
  la a1, arr
  addi a1, a1, )" << (N - 1) * 8 << R"(
  call qsort
  ; verify + checksum: s0 = weighted sum, s1 = order violations
  la t0, arr
  movi t1, 0
  movi t2, )" << N << R"(
  movi s0, 0
  movi s1, 0
  ld.d s2, [t0]
chk:
  shli t3, t1, 3
  add t3, t3, t0
  ld.d t4, [t3]
  addi t5, t1, 1
  mul t6, t4, t5
  add s0, s0, t6
  bge t4, s2, inorder
  addi s1, s1, 1
inorder:
  mov s2, t4
  addi t1, t1, 1
  blt t1, t2, chk
  out.d s0
  out.d s1
  trapnz s1            ; sortedness is a software integrity check
  halt 0

; qsort(a0 = lo ptr, a1 = hi ptr inclusive), Lomuto partition
qsort:
  blt a0, a1, qs_go
  ret
qs_go:
  push ra
  push s0
  push s1
  push s2
  mov s0, a0
  mov s1, a1
  ld.d t0, [s1]        ; pivot = *hi
  mov t1, s0           ; store slot
  mov t2, s0           ; scan ptr
qs_loop:
  bgeu t2, s1, qs_after
  ld.d t3, [t2]
  bge t3, t0, qs_next  ; only move smaller-than-pivot keys left
  ld.d t4, [t1]
  st.d t3, [t1]
  st.d t4, [t2]
  addi t1, t1, 8
qs_next:
  addi t2, t2, 8
  jmp qs_loop
qs_after:
  ld.d t3, [t1]
  ld.d t4, [s1]
  st.d t4, [t1]
  st.d t3, [s1]
  mov s2, t1           ; pivot slot
  mov a0, s0
  addi a1, s2, -8
  call qsort
  addi a0, s2, 8
  mov a1, s1
  call qsort
  pop s2
  pop s1
  pop s0
  pop ra
  ret
)";
    w.source = os.str();

    // Reference: sort and replay the checksum pass.
    std::sort(keys.begin(), keys.end());
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < N; ++i) {
        sum += static_cast<std::uint64_t>(keys[i]) * (i + 1);
    }
    outD(w.expected, sum);
    outD(w.expected, 0); // violations
    return w;
}

} // namespace merlin::workloads
