/**
 * @file
 * Random MRL-64 program generator for differential testing.
 *
 * Generates structurally-terminating programs (counted loops, bounded
 * if/else diamonds, leaf calls, composite memory ops) whose architectural
 * outcome is well defined, so the out-of-order core can be checked
 * instruction-for-instruction against the functional interpreter.
 */

#ifndef MERLIN_WORKLOADS_RANDOM_PROGRAM_HH
#define MERLIN_WORKLOADS_RANDOM_PROGRAM_HH

#include <cstdint>
#include <string>

namespace merlin::workloads
{

/** Knobs for the generator. */
struct RandomProgramOptions
{
    unsigned loops = 3;           ///< number of top-level counted loops
    unsigned loopIterations = 20; ///< iterations per loop
    unsigned bodyOps = 12;        ///< random operations per loop body
    bool useMemory = true;        ///< loads/stores/composites
    bool useBranches = true;      ///< data-dependent diamonds
    bool useCalls = true;         ///< leaf calls incl. indirect
    bool useDivision = true;      ///< div/rem (divisor forced non-zero)
};

/** Produce assembly source for a random, halting program. */
std::string generateRandomProgram(std::uint64_t seed,
                                  const RandomProgramOptions &opts = {});

} // namespace merlin::workloads

#endif // MERLIN_WORKLOADS_RANDOM_PROGRAM_HH
