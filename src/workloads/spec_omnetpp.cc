/**
 * @file
 * omnetpp (SPEC-like): discrete-event simulation — a binary min-heap
 * future-event set; each processed event updates counters and schedules
 * new events, the pointer-light but branch-heavy core of event-driven
 * simulators.
 */

#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned MAX_EVENTS = 512;   // heap capacity
constexpr unsigned PROCESS = 1500;     // events to process

} // namespace

WorkloadSource
wlOmnetpp()
{
    WorkloadSource w;
    w.description = "discrete-event sim: binary-heap FES, 1500 events";
    w.window = 25'000;

    // Heap entries are packed as time*16 + type (type < 16) in one quad.
    std::ostringstream os;
    os << ".data\n"
       << "heap: .space " << (MAX_EVENTS + 1) * 8
       << "\n"
       << ".text\n";
    // s0 = heap base, s1 = heap size, s2 = processed count,
    // s3 = rng state, s4 = clock, s5/s6/s7 = per-type counters.
    os << R"(_start:
  la s0, heap
  movi s1, 0
  movi s2, 0
  movi s3, 12345
  movi s4, 0
  movi s5, 0
  movi s6, 0
  movi s7, 0
  ; seed: 4 initial events at times 1..4, types 0..3 mod 3
  movi t9, 0
seed:
  addi t0, t9, 1
  shli t0, t0, 4         ; time = i+1, packed
  movi t1, 3
  remu t1, t9, t1
  or a0, t0, t1
  call heap_push
  addi t9, t9, 1
  slti t0, t9, 4
  bne t0, t8, seed

main_loop:
  beq s1, t8, sim_done   ; empty FES
  call heap_pop          ; a0 = packed event
  addi s2, s2, 1
  ; unpack
  shri t9, a0, 4         ; event time
  andi s8, a0, 15        ; type
  mov s4, t9             ; advance clock
  ; update per-type counters; schedule follow-ups
  beq s8, t8, type0
  movi t0, 1
  beq s8, t0, type1
  ; ---- type 2: count; schedule nothing ----
  addi s7, s7, 1
  jmp sched_done
type0:
  ; ---- type 0: schedule two events (types 1 and 2) ----
  addi s5, s5, 1
  call next_rand
  andi t0, a0, 63
  addi t0, t0, 1
  add t0, t0, s4         ; t = clock + 1..64
  shli t0, t0, 4
  ori a0, t0, 1
  call heap_push
  call next_rand
  andi t0, a0, 31
  addi t0, t0, 2
  add t0, t0, s4
  shli t0, t0, 4
  ori a0, t0, 2
  call heap_push
  ; self-sustaining: respawn a type-0 event
  call next_rand
  andi t0, a0, 15
  addi t0, t0, 1
  add t0, t0, s4
  shli t0, t0, 4
  or a0, t0, t8
  call heap_push
  jmp sched_done
type1:
  ; ---- type 1: count; 50% chance to respawn a type-0 event ----
  addi s6, s6, 1
  call next_rand
  andi t0, a0, 1
  beq t0, t8, sched_done
  call next_rand
  andi t0, a0, 15
  addi t0, t0, 1
  add t0, t0, s4
  shli t0, t0, 4
  or a0, t0, t8          ; type 0
  call heap_push
sched_done:
  slti t0, s2, )" << PROCESS << R"(
  bne t0, t8, main_loop

sim_done:
  out.d s2
  out.d s4
  out.d s5
  out.d s6
  out.d s7
  ; drain checksum of remaining heap
  movi t9, 1
  movi t7, 0
drain:
  bgeu t9, s1, drained
  shli t0, t9, 3
  add t0, t0, s0
  ld.d t1, [t0]
  xor t7, t7, t1
  addi t9, t9, 1
  jmp drain
drained:
  out.d t7
  halt 0

; xorshift-style PRNG; returns a0, state in s3
next_rand:
  shli t0, s3, 13
  xor s3, s3, t0
  shri t0, s3, 7
  xor s3, s3, t0
  shli t0, s3, 17
  xor s3, s3, t0
  mov a0, s3
  ret

; heap_push(a0 = packed event); 1-based heap in `heap`
heap_push:
  movi t0, )" << MAX_EVENTS << R"(
  bge s1, t0, hp_full    ; drop when full (sim still deterministic)
  addi s1, s1, 1
  mov t1, s1             ; i
  shli t2, t1, 3
  add t2, t2, s0
  st.d a0, [t2]
hp_sift:
  movi t0, 2
  blt t1, t0, hp_done    ; at root
  shri t3, t1, 1         ; parent
  shli t4, t3, 3
  add t4, t4, s0
  ld.d t5, [t4]
  shli t6, t1, 3
  add t6, t6, s0
  ld.d t7, [t6]
  bge t7, t5, hp_done    ; parent <= child: heap OK
  st.d t7, [t4]
  st.d t5, [t6]
  mov t1, t3
  jmp hp_sift
hp_done:
hp_full:
  ret

; heap_pop() -> a0 = min event
heap_pop:
  ld.d a0, [s0+8]        ; root
  shli t0, s1, 3
  add t0, t0, s0
  ld.d t1, [t0]          ; last
  st.d t1, [s0+8]
  addi s1, s1, -1
  movi t1, 1             ; i
po_sift:
  shli t2, t1, 1         ; left child
  bltu s1, t2, po_done   ; left > size: no children
  mov t3, t2             ; smallest = left
  addi t4, t2, 1         ; right
  bltu s1, t4, po_noright ; right > size
  shli t5, t4, 3
  add t5, t5, s0
  ld.d t6, [t5]
  shli t5, t2, 3
  add t5, t5, s0
  ld.d t7, [t5]
  bge t6, t7, po_noright
  mov t3, t4
po_noright:
  shli t5, t3, 3
  add t5, t5, s0
  ld.d t6, [t5]          ; child value
  shli t7, t1, 3
  add t7, t7, s0
  ld.d t9, [t7]          ; node value
  bge t6, t9, po_done    ; child >= node: done
  st.d t6, [t7]
  st.d t9, [t5]
  mov t1, t3
  jmp po_sift
po_done:
  ret
)";
    w.source = os.str();

    // ---- reference ----
    std::vector<std::uint64_t> heap(MAX_EVENTS + 1, 0);
    unsigned size = 0;
    std::uint64_t rng = 12345;
    auto next_rand = [&]() {
        // Mirrors the asm xorshift on 64-bit registers.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    auto push = [&](std::uint64_t v) {
        if (size >= MAX_EVENTS)
            return;
        heap[++size] = v;
        unsigned i = size;
        while (i >= 2 &&
               static_cast<std::int64_t>(heap[i]) <
                   static_cast<std::int64_t>(heap[i / 2])) {
            std::swap(heap[i], heap[i / 2]);
            i /= 2;
        }
    };
    auto pop = [&]() {
        std::uint64_t top = heap[1];
        heap[1] = heap[size--];
        unsigned i = 1;
        for (;;) {
            unsigned l = 2 * i;
            // The asm uses `size` as the current count post-decrement
            // and compares children against it with >=/== semantics
            // mirrored here.
            if (l > size)
                break;
            unsigned smallest = l;
            unsigned r = l + 1;
            if (r <= size &&
                static_cast<std::int64_t>(heap[r]) <
                    static_cast<std::int64_t>(heap[l])) {
                smallest = r;
            }
            if (static_cast<std::int64_t>(heap[smallest]) >=
                static_cast<std::int64_t>(heap[i])) {
                break;
            }
            std::swap(heap[i], heap[smallest]);
            i = smallest;
        }
        return top;
    };

    for (unsigned i = 0; i < 4; ++i)
        push(((i + 1ULL) << 4) | (i % 3));
    std::uint64_t processed = 0, clock = 0, c0 = 0, c1 = 0, c2 = 0;
    while (size != 0) {
        std::uint64_t ev = pop();
        ++processed;
        clock = ev >> 4;
        const unsigned type = ev & 15;
        if (type == 0) {
            ++c0;
            std::uint64_t d1 = (next_rand() & 63) + 1;
            push(((clock + d1) << 4) | 1);
            std::uint64_t d2 = (next_rand() & 31) + 2;
            push(((clock + d2) << 4) | 2);
            std::uint64_t d3 = (next_rand() & 15) + 1;
            push(((clock + d3) << 4) | 0);
        } else if (type == 1) {
            ++c1;
            if (next_rand() & 1) {
                std::uint64_t d = (next_rand() & 15) + 1;
                push(((clock + d) << 4) | 0);
            }
        } else {
            ++c2;
        }
        if (processed >= PROCESS)
            break;
    }
    outD(w.expected, processed);
    outD(w.expected, clock);
    outD(w.expected, c0);
    outD(w.expected, c1);
    outD(w.expected, c2);
    std::uint64_t drain = 0;
    for (unsigned i = 1; i < size; ++i)
        drain ^= heap[i];
    outD(w.expected, drain);
    return w;
}

} // namespace merlin::workloads
