/**
 * @file
 * mcf (SPEC-like): Bellman-Ford single-source shortest paths over a
 * sparse random digraph — the relaxation core of min-cost-flow solvers,
 * dominated by pointer-chasing loads and data-dependent branches.
 */

#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned NODES = 96;
constexpr unsigned EDGES = 384;
constexpr std::int64_t INF = 1'000'000'000;

struct Graph
{
    std::vector<std::int64_t> from, to, cost;
};

Graph
makeGraph()
{
    Graph g;
    for (unsigned e = 0; e < EDGES; ++e) {
        std::uint64_t r = mix64(e * 37 + 3);
        std::int64_t u, v;
        if (e < NODES - 1) {
            // A spine guarantees reachability.
            u = e;
            v = e + 1;
        } else {
            u = static_cast<std::int64_t>(r % NODES);
            v = static_cast<std::int64_t>((r >> 16) % NODES);
        }
        g.from.push_back(u);
        g.to.push_back(v);
        g.cost.push_back(1 + static_cast<std::int64_t>((r >> 32) % 100));
    }
    return g;
}

} // namespace

WorkloadSource
wlMcf()
{
    WorkloadSource w;
    w.description = "Bellman-Ford over 96 nodes / 384 edges";
    w.window = 25'000;

    Graph g = makeGraph();

    std::ostringstream os;
    os << ".data\n"
       << quadTable("efrom", g.from) << quadTable("eto", g.to)
       << quadTable("ecost", g.cost) << "dist: .space " << NODES * 8
       << "\n.text\n";
    // s0..s2 = edge arrays, s3 = dist, s4 = pass, s5 = changed flag
    os << R"(_start:
  la s0, efrom
  la s1, eto
  la s2, ecost
  la s3, dist
  ; init distances: dist[0] = 0, others INF
  movi t0, 1
  li t1, )" << INF << R"(
init:
  shli t2, t0, 3
  add t2, t2, s3
  st.d t1, [t2]
  addi t0, t0, 1
  slti t2, t0, )" << NODES << R"(
  bne t2, t8, init
  st.d t8, [s3]          ; dist[0] = 0

  movi s4, 0             ; pass
pass_loop:
  movi s5, 0             ; changed
  movi s6, 0             ; edge index
edge_loop:
  shli t0, s6, 3
  add t1, t0, s0
  ld.d t2, [t1]          ; u
  add t1, t0, s1
  ld.d t3, [t1]          ; v
  add t1, t0, s2
  ld.d t4, [t1]          ; cost
  shli t2, t2, 3
  add t2, t2, s3
  ld.d t5, [t2]          ; dist[u]
  li t6, )" << INF << R"(
  bge t5, t6, no_relax   ; unreachable source
  add t5, t5, t4
  shli t3, t3, 3
  add t3, t3, s3
  ld.d t6, [t3]          ; dist[v]
  bge t5, t6, no_relax
  st.d t5, [t3]
  movi s5, 1
no_relax:
  addi s6, s6, 1
  slti t0, s6, )" << EDGES << R"(
  bne t0, t8, edge_loop
  addi s4, s4, 1
  beq s5, t8, converged
  slti t0, s4, )" << NODES << R"(
  bne t0, t8, pass_loop

converged:
  ; checksum distances
  movi t0, 0
  movi t1, 0
  movi t2, 0
sum:
  shli t3, t0, 3
  add t3, t3, s3
  ld.d t4, [t3]
  add t1, t1, t4
  mul t5, t4, t0
  xor t2, t2, t5
  addi t0, t0, 1
  slti t3, t0, )" << NODES << R"(
  bne t3, t8, sum
  out.d t1
  out.d t2
  out.d s4
  halt 0
)";
    w.source = os.str();

    // Reference.
    std::vector<std::int64_t> dist(NODES, INF);
    dist[0] = 0;
    std::uint64_t passes = 0;
    for (unsigned p = 0; p < NODES; ++p) {
        bool changed = false;
        for (unsigned e = 0; e < EDGES; ++e) {
            if (dist[g.from[e]] >= INF)
                continue;
            std::int64_t nd = dist[g.from[e]] + g.cost[e];
            if (nd < dist[g.to[e]]) {
                dist[g.to[e]] = nd;
                changed = true;
            }
        }
        ++passes;
        if (!changed)
            break;
    }
    std::uint64_t sum = 0, mixv = 0;
    for (unsigned i = 0; i < NODES; ++i) {
        sum += static_cast<std::uint64_t>(dist[i]);
        mixv ^= static_cast<std::uint64_t>(dist[i]) * i;
    }
    outD(w.expected, sum);
    outD(w.expected, mixv);
    outD(w.expected, passes);
    return w;
}

} // namespace merlin::workloads
