/**
 * @file
 * sjeng (SPEC-like): depth-limited negamax search with alpha-beta pruning
 * over a deterministic 2-player stone-taking game — the deep recursive
 * call tree with irregular cutoff branches typical of game engines.
 *
 * Game: three heaps; a move takes 1..3 stones from one heap.  Leaf
 * evaluation mixes heap contents so cutoffs depend on data.
 */

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr int DEPTH = 7;
constexpr std::int64_t H0 = 5, H1 = 6, H2 = 4;

std::uint64_t g_nodes;

std::int64_t
evalLeaf(std::int64_t h0, std::int64_t h1, std::int64_t h2)
{
    // Data-dependent leaf score (mirrored bit-for-bit in assembly).
    std::int64_t v = h0 * 3 + h1 * 5 + h2 * 7;
    v ^= (h0 + h1 + h2) << 2;
    return v & 63;
}

std::int64_t
negamax(std::int64_t h0, std::int64_t h1, std::int64_t h2, int depth,
        std::int64_t alpha, std::int64_t beta)
{
    ++g_nodes;
    if (depth == 0 || (h0 == 0 && h1 == 0 && h2 == 0))
        return evalLeaf(h0, h1, h2);
    std::int64_t best = -1000;
    for (int heap = 0; heap < 3; ++heap) {
        const std::int64_t have = heap == 0 ? h0 : heap == 1 ? h1 : h2;
        for (std::int64_t take = 1; take <= 3 && take <= have; ++take) {
            std::int64_t a = h0, b = h1, c = h2;
            (heap == 0 ? a : heap == 1 ? b : c) -= take;
            const std::int64_t s =
                -negamax(a, b, c, depth - 1, -beta, -alpha);
            best = std::max(best, s);
            alpha = std::max(alpha, s);
            if (alpha >= beta)
                return best; // cutoff
        }
    }
    return best;
}

} // namespace

WorkloadSource
wlSjeng()
{
    WorkloadSource w;
    w.description = "negamax + alpha-beta over a 3-heap game, depth 7";
    w.window = 25'000;

    std::ostringstream os;
    os << ".text\n";
    // negamax(a0=h0, a1=h1, a2=h2, a3=depth, a4=alpha, a5=beta) -> a0
    // s9 = global node counter.
    os << R"(_start:
  movi s9, 0
  movi a0, )" << H0 << R"(
  movi a1, )" << H1 << R"(
  movi a2, )" << H2 << R"(
  movi a3, )" << DEPTH << R"(
  movi a4, -1000
  movi a5, 1000
  call negamax
  out.d a0
  out.d s9
  halt 0

evalleaf:
  ; t0 = (h0*3 + h1*5 + h2*7) ^ ((h0+h1+h2) << 2), masked to 6 bits
  movi t1, 3
  mul t0, a0, t1
  movi t1, 5
  mul t2, a1, t1
  add t0, t0, t2
  movi t1, 7
  mul t2, a2, t1
  add t0, t0, t2
  add t1, a0, a1
  add t1, t1, a2
  shli t1, t1, 2
  xor t0, t0, t1
  andi t0, t0, 63
  ret

negamax:
  addi s9, s9, 1
  ; leaf tests
  beq a3, t8, leaf
  or t0, a0, a1
  or t0, t0, a2
  beq t0, t8, leaf
  ; save state on the stack
  push ra
  push s0
  push s1
  push s2
  push s3
  push s4
  push s5
  push s6
  push s7
  mov s0, a0             ; h0
  mov s1, a1             ; h1
  mov s2, a2             ; h2
  mov s3, a3             ; depth
  mov s4, a4             ; alpha
  mov s5, a5             ; beta
  movi s6, -1000         ; best
  movi s7, 0             ; heap index
heap_loop:
  movi t9, 1             ; take
take_loop:
  ; have = heaps[s7]
  beq s7, t8, have0
  movi t0, 1
  beq s7, t0, have1
  mov t1, s2
  jmp have_done
have0:
  mov t1, s0
  jmp have_done
have1:
  mov t1, s1
have_done:
  blt t1, t9, next_heap  ; take > have
  ; child position
  mov a0, s0
  mov a1, s1
  mov a2, s2
  beq s7, t8, sub0
  movi t0, 1
  beq s7, t0, sub1
  sub a2, a2, t9
  jmp sub_done
sub0:
  sub a0, a0, t9
  jmp sub_done
sub1:
  sub a1, a1, t9
sub_done:
  addi a3, s3, -1
  sub a4, t8, s5         ; -beta
  sub a5, t8, s4         ; -alpha
  push t9
  call negamax
  pop t9
  sub t0, t8, a0         ; s = -result
  bge s6, t0, no_best
  mov s6, t0
no_best:
  bge s4, t0, no_alpha
  mov s4, t0
no_alpha:
  blt s4, s5, no_cut
  jmp nm_done            ; alpha >= beta: cutoff
no_cut:
  addi t9, t9, 1
  movi t0, 4
  blt t9, t0, take_loop
next_heap:
  addi s7, s7, 1
  movi t0, 3
  blt s7, t0, heap_loop
nm_done:
  mov a0, s6
  pop s7
  pop s6
  pop s5
  pop s4
  pop s3
  pop s2
  pop s1
  pop s0
  pop ra
  ret
leaf:
  push ra
  call evalleaf
  mov a0, t0
  pop ra
  ret
)";
    w.source = os.str();

    g_nodes = 0;
    std::int64_t best = negamax(H0, H1, H2, DEPTH, -1000, 1000);
    outD(w.expected, static_cast<std::uint64_t>(best));
    outD(w.expected, g_nodes);
    return w;
}

} // namespace merlin::workloads
