/**
 * @file
 * caes (MiBench-like): AES-128 ECB encryption of 4 blocks, with the key
 * schedule computed in-program and table-based SubBytes.
 */

#include <array>
#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned BLOCKS = 4;

const std::uint8_t SBOX[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
    0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
    0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
    0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
    0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
    0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
    0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
    0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
    0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
    0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
    0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
    0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
    0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
    0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
    0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
    0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
    0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
    0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
    0x54, 0xbb, 0x16};

std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
}

/** Reference AES-128 ECB encrypt (column-major state, as in FIPS-197). */
std::array<std::uint8_t, 16>
refEncrypt(const std::uint8_t key[16], const std::uint8_t in[16])
{
    std::uint8_t rk[176];
    std::copy(key, key + 16, rk);
    std::uint8_t rcon = 1;
    for (unsigned i = 16; i < 176; i += 4) {
        std::uint8_t t[4] = {rk[i - 4], rk[i - 3], rk[i - 2], rk[i - 1]};
        if (i % 16 == 0) {
            std::uint8_t tmp = t[0];
            t[0] = static_cast<std::uint8_t>(SBOX[t[1]] ^ rcon);
            t[1] = SBOX[t[2]];
            t[2] = SBOX[t[3]];
            t[3] = SBOX[tmp];
            rcon = xtime(rcon);
        }
        for (int k = 0; k < 4; ++k)
            rk[i + k] = rk[i - 16 + k] ^ t[k];
    }

    std::array<std::uint8_t, 16> s;
    std::copy(in, in + 16, s.begin());
    auto addRk = [&](unsigned r) {
        for (int i = 0; i < 16; ++i)
            s[i] ^= rk[16 * r + i];
    };
    auto subShift = [&] {
        std::uint8_t t[16];
        // state laid out column-major: s[c*4 + r]
        for (int c = 0; c < 4; ++c)
            for (int r = 0; r < 4; ++r)
                t[c * 4 + r] = SBOX[s[((c + r) % 4) * 4 + r]];
        std::copy(t, t + 16, s.begin());
    };
    auto mixCols = [&] {
        for (int c = 0; c < 4; ++c) {
            std::uint8_t a0 = s[c * 4], a1 = s[c * 4 + 1],
                         a2 = s[c * 4 + 2], a3 = s[c * 4 + 3];
            s[c * 4] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
            s[c * 4 + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
            s[c * 4 + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
            s[c * 4 + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
        }
    };
    addRk(0);
    for (unsigned r = 1; r <= 9; ++r) {
        subShift();
        mixCols();
        addRk(r);
    }
    subShift();
    addRk(10);
    return s;
}

} // namespace

WorkloadSource
wlCaes()
{
    WorkloadSource w;
    w.description = "AES-128 ECB encrypt of 4 blocks, in-program key "
                    "schedule";

    std::vector<std::uint8_t> sbox(SBOX, SBOX + 256);
    std::vector<std::uint8_t> key(16);
    for (unsigned i = 0; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>(mix64(i + 42));
    std::vector<std::uint8_t> plain(BLOCKS * 16);
    for (unsigned i = 0; i < plain.size(); ++i)
        plain[i] = static_cast<std::uint8_t>(mix64(i * 13 + 5));

    std::ostringstream os;
    os << ".data\n"
       << byteTable("sbox", sbox) << byteTable("key", key)
       << byteTable("plain", plain) << "rk: .space 176\n"
       << "st: .space 16\n"
       << "tmpst: .space 16\n"
       << "ct: .space " << BLOCKS * 16 << "\n"
       << ".text\n";
    os << R"(_start:
  ; ================= key schedule =================
  ; copy key -> rk[0..15]
  la t0, key
  la t1, rk
  movi t2, 0
kc:
  add t3, t0, t2
  ld.bu t4, [t3]
  add t3, t1, t2
  st.b t4, [t3]
  addi t2, t2, 1
  slti t3, t2, 16
  bne t3, t8, kc
  movi s0, 16            ; i
  movi s1, 1             ; rcon
ks_loop:
  ; t[0..3] = rk[i-4 .. i-1] in t4..t7
  la t1, rk
  add t0, t1, s0
  ld.bu t4, [t0-4]
  ld.bu t5, [t0-3]
  ld.bu t6, [t0-2]
  ld.bu t7, [t0-1]
  ; if i % 16 == 0: rotate+sub+rcon
  andi t2, s0, 15
  bne t2, t8, ks_noxf
  la t3, sbox
  add t2, t3, t5
  ld.bu t9, [t2]
  xor t9, t9, s1         ; t0' = sbox[t1] ^ rcon
  add t2, t3, t6
  ld.bu s4, [t2]         ; t1' = sbox[t2]
  add t2, t3, t7
  ld.bu s5, [t2]         ; t2' = sbox[t3]
  add t2, t3, t4
  ld.bu s6, [t2]         ; t3' = sbox[t0]
  mov t4, t9
  mov t5, s4
  mov t6, s5
  mov t7, s6
  ; rcon = xtime(rcon)
  shli s1, s1, 1
  andi t2, s1, 256
  beq t2, t8, ks_noxf
  xori s1, s1, 0x11b
ks_noxf:
  ; rk[i+k] = rk[i-16+k] ^ t[k]
  ld.bu t2, [t0-16]
  xor t2, t2, t4
  st.b t2, [t0]
  ld.bu t2, [t0-15]
  xor t2, t2, t5
  st.b t2, [t0+1]
  ld.bu t2, [t0-14]
  xor t2, t2, t6
  st.b t2, [t0+2]
  ld.bu t2, [t0-13]
  xor t2, t2, t7
  st.b t2, [t0+3]
  addi s0, s0, 4
  slti t2, s0, 176
  bne t2, t8, ks_loop

  ; ================= encrypt blocks =================
  movi s7, 0             ; block index
blk_loop:
  ; load plaintext block into st
  la t0, plain
  shli t1, s7, 4
  add t0, t0, t1
  la t1, st
  movi t2, 0
pc:
  add t3, t0, t2
  ld.bu t4, [t3]
  add t3, t1, t2
  st.b t4, [t3]
  addi t2, t2, 1
  slti t3, t2, 16
  bne t3, t8, pc
  ; round 0: add round key 0
  movi a0, 0
  call addrk
  ; rounds 1..9
  movi s2, 1
round_loop:
  call subshift
  call mixcols
  mov a0, s2
  call addrk
  addi s2, s2, 1
  slti t0, s2, 10
  bne t0, t8, round_loop
  ; final round
  call subshift
  movi a0, 10
  call addrk
  ; store ciphertext
  la t0, ct
  shli t1, s7, 4
  add t0, t0, t1
  la t1, st
  movi t2, 0
cc:
  add t3, t1, t2
  ld.bu t4, [t3]
  add t3, t0, t2
  st.b t4, [t3]
  addi t2, t2, 1
  slti t3, t2, 16
  bne t3, t8, cc
  addi s7, s7, 1
  slti t0, s7, )" << BLOCKS << R"(
  bne t0, t8, blk_loop

  ; ================= checksum =================
  la t0, ct
  movi t1, 0
  li s4, 0xcbf29ce484222325
  li s5, 0x100000001b3
fnv:
  add t2, t0, t1
  ld.bu t3, [t2]
  xor s4, s4, t3
  mul s4, s4, s5
  addi t1, t1, 1
  slti t2, t1, )" << BLOCKS * 16 << R"(
  bne t2, t8, fnv
  out.d s4
  halt 0

; ---- addrk(a0 = round): st[i] ^= rk[16*round + i] ----
addrk:
  la t0, rk
  shli t1, a0, 4
  add t0, t0, t1
  la t1, st
  movi t2, 0
ar_l:
  add t3, t0, t2
  ld.bu t4, [t3]
  add t3, t1, t2
  ld.bu t5, [t3]
  xor t4, t4, t5
  st.b t4, [t3]
  addi t2, t2, 1
  slti t3, t2, 16
  bne t3, t8, ar_l
  ret

; ---- subshift: tmpst[c*4+r] = sbox[st[((c+r)%4)*4+r]]; st = tmpst ----
subshift:
  la t0, st
  la t1, tmpst
  la t9, sbox
  movi t2, 0             ; c
ss_c:
  movi t3, 0             ; r
ss_r:
  add t4, t2, t3
  andi t4, t4, 3
  shli t4, t4, 2
  add t4, t4, t3
  add t4, t4, t0
  ld.bu t5, [t4]
  add t5, t5, t9
  ld.bu t5, [t5]
  shli t4, t2, 2
  add t4, t4, t3
  add t4, t4, t1
  st.b t5, [t4]
  addi t3, t3, 1
  slti t4, t3, 4
  bne t4, t8, ss_r
  addi t2, t2, 1
  slti t4, t2, 4
  bne t4, t8, ss_c
  ; copy back
  movi t2, 0
ss_cp:
  add t3, t1, t2
  ld.bu t4, [t3]
  add t3, t0, t2
  st.b t4, [t3]
  addi t2, t2, 1
  slti t3, t2, 16
  bne t3, t8, ss_cp
  ret

; ---- mixcols: GF(2^8) column mix; xt(x) inlined ----
mixcols:
  la t0, st
  movi t1, 0             ; column
mc_c:
  shli t2, t1, 2
  add t2, t2, t0
  ld.bu t3, [t2]         ; a0
  ld.bu t4, [t2+1]       ; a1
  ld.bu t5, [t2+2]       ; a2
  ld.bu t6, [t2+3]       ; a3
  ; xtime helpers: t7 = xt(a0), t9 = xt(a1), s4 = xt(a2), s5 = xt(a3)
  shli t7, t3, 1
  andi s6, t7, 256
  beq s6, t8, mc0
  xori t7, t7, 0x11b
mc0:
  shli t9, t4, 1
  andi s6, t9, 256
  beq s6, t8, mc1
  xori t9, t9, 0x11b
mc1:
  shli s4, t5, 1
  andi s6, s4, 256
  beq s6, t8, mc2
  xori s4, s4, 0x11b
mc2:
  shli s5, t6, 1
  andi s6, s5, 256
  beq s6, t8, mc3
  xori s5, s5, 0x11b
mc3:
  ; b0 = xt0 ^ xt1 ^ a1 ^ a2 ^ a3
  xor s6, t7, t9
  xor s6, s6, t4
  xor s6, s6, t5
  xor s6, s6, t6
  st.b s6, [t2]
  ; b1 = a0 ^ xt1 ^ xt2 ^ a2 ^ a3
  xor s6, t3, t9
  xor s6, s6, s4
  xor s6, s6, t5
  xor s6, s6, t6
  st.b s6, [t2+1]
  ; b2 = a0 ^ a1 ^ xt2 ^ xt3 ^ a3
  xor s6, t3, t4
  xor s6, s6, s4
  xor s6, s6, s5
  xor s6, s6, t6
  st.b s6, [t2+2]
  ; b3 = xt0 ^ a0 ^ a1 ^ a2 ^ xt3
  xor s6, t7, t3
  xor s6, s6, t4
  xor s6, s6, t5
  xor s6, s6, s5
  st.b s6, [t2+3]
  addi t1, t1, 1
  slti t2, t1, 4
  bne t2, t8, mc_c
  ret
)";
    w.source = os.str();

    std::vector<std::uint8_t> ct;
    for (unsigned b = 0; b < BLOCKS; ++b) {
        auto c = refEncrypt(key.data(), &plain[b * 16]);
        ct.insert(ct.end(), c.begin(), c.end());
    }
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : ct) {
        h ^= b;
        h *= 1099511628211ULL;
    }
    outD(w.expected, h);
    return w;
}

} // namespace merlin::workloads
