#include "workloads/random_program.hh"

#include <sstream>

#include "base/rng.hh"

namespace merlin::workloads
{

namespace
{

/**
 * Working registers the generator mutates freely: s0..s7 (r16..r23).
 * t0/t1 are scratch, s8 holds the data-buffer base, s9 the byte mask.
 */
const char *const kWork[] = {"s0", "s1", "s2", "s3",
                             "s4", "s5", "s6", "s7"};
constexpr unsigned kNumWork = 8;

class Generator
{
  public:
    Generator(std::uint64_t seed, const RandomProgramOptions &opts)
        : rng_(seed), opts_(opts)
    {}

    std::string
    run()
    {
        os_ << ".data\n";
        os_ << "buf: .space 512\n";
        // Pre-seeded table the program reads.
        os_ << "tab:";
        for (int i = 0; i < 16; ++i) {
            os_ << (i == 0 ? " .quad " : ", ")
                << (rng_.next() & 0xffffff);
        }
        os_ << "\n.text\n";
        os_ << "_start:\n";

        // Register setup.
        for (unsigned i = 0; i < kNumWork; ++i) {
            os_ << "  movi " << kWork[i] << ", "
                << static_cast<std::int32_t>(rng_.next() & 0x7fffffff)
                << "\n";
        }
        os_ << "  la s8, buf\n";
        os_ << "  movi s9, 448\n"; // mask for in-bounds offsets

        for (unsigned l = 0; l < opts_.loops; ++l)
            emitLoop(l);

        // Checksum epilogue.
        for (unsigned i = 0; i < kNumWork; ++i)
            os_ << "  out.d " << kWork[i] << "\n";
        os_ << "  halt 0\n";

        if (opts_.useCalls)
            emitLeafFunctions();
        return os_.str();
    }

  private:
    const char *
    work()
    {
        return kWork[rng_.nextBelow(kNumWork)];
    }

    void
    emitRandomOp(unsigned loop, unsigned idx)
    {
        // Weighted pick over op categories.
        unsigned cat = rng_.nextBelow(100);
        const char *a = work();
        const char *b = work();
        const char *c = work();

        if (cat < 40) {
            // Plain ALU.
            static const char *const ops[] = {"add", "sub",  "and", "or",
                                              "xor", "mul",  "slt", "sltu",
                                              "shl", "shr",  "sra"};
            const char *op = ops[rng_.nextBelow(11)];
            if (op[0] == 's' && (op[1] == 'h' || op[1] == 'r')) {
                // Bound shift amounts to keep them interesting.
                os_ << "  andi t0, " << b << ", 31\n";
                os_ << "  " << op << " " << a << ", " << c << ", t0\n";
            } else {
                os_ << "  " << op << " " << a << ", " << b << ", " << c
                    << "\n";
            }
        } else if (cat < 50) {
            // Immediate ALU.
            static const char *const ops[] = {"addi", "andi", "ori",
                                              "xori"};
            os_ << "  " << ops[rng_.nextBelow(4)] << " " << a << ", " << b
                << ", "
                << static_cast<std::int32_t>(rng_.next() & 0xffff) << "\n";
        } else if (cat < 58 && opts_.useDivision) {
            // Division with a non-zero divisor.
            os_ << "  ori t0, " << b << ", 1\n";
            os_ << "  " << (rng_.nextBelow(2) ? "divu" : "remu") << " " << a
                << ", " << c << ", t0\n";
        } else if (cat < 78 && opts_.useMemory) {
            emitMemoryOp(a, b);
        } else if (cat < 90 && opts_.useBranches) {
            emitDiamond(a, b, loop, idx);
        } else if (opts_.useCalls) {
            emitCall();
        } else {
            os_ << "  addi " << a << ", " << b << ", 1\n";
        }
    }

    void
    emitMemoryOp(const char *a, const char *b)
    {
        // In-bounds aligned address: t1 = base + (b & mask & ~7).
        os_ << "  and t1, " << b << ", s9\n";
        os_ << "  andi t1, t1, -8\n";
        os_ << "  add t1, t1, s8\n";
        switch (rng_.nextBelow(8)) {
          case 0:
            os_ << "  st.d " << a << ", [t1]\n";
            break;
          case 1:
            os_ << "  ld.d " << a << ", [t1]\n";
            break;
          case 2:
            os_ << "  st.w " << a << ", [t1+4]\n";
            break;
          case 3:
            os_ << "  ld.w " << a << ", [t1+4]\n";
            break;
          case 4:
            os_ << "  ldadd " << a << ", [t1]\n";
            break;
          case 5:
            os_ << "  memadd " << a << ", [t1]\n";
            break;
          case 6:
            os_ << "  st.b " << a << ", [t1+3]\n";
            os_ << "  ld.bu " << a << ", [t1+3]\n";
            break;
          case 7:
            os_ << "  push " << a << "\n";
            os_ << "  pop " << a << "\n";
            break;
        }
    }

    void
    emitDiamond(const char *a, const char *b, unsigned loop, unsigned idx)
    {
        const std::string lbl =
            "d" + std::to_string(loop) + "_" + std::to_string(idx) + "_" +
            std::to_string(labelId_++);
        // Data-dependent branch on a low bit (hard to predict).
        os_ << "  andi t0, " << b << ", "
            << (1 << rng_.nextBelow(3)) << "\n";
        os_ << "  movi t1, 0\n";
        os_ << "  beq t0, t1, " << lbl << "_else\n";
        os_ << "  addi " << a << ", " << a << ", 3\n";
        os_ << "  xor " << a << ", " << a << ", " << b << "\n";
        os_ << "  jmp " << lbl << "_end\n";
        os_ << lbl << "_else:\n";
        os_ << "  sub " << a << ", " << a << ", " << b << "\n";
        os_ << lbl << "_end:\n";
    }

    void
    emitCall()
    {
        if (rng_.nextBelow(3) == 0) {
            os_ << "  la t0, leaf" << rng_.nextBelow(2) << "\n";
            os_ << "  callr t0\n";
        } else {
            os_ << "  call leaf" << rng_.nextBelow(2) << "\n";
        }
    }

    void
    emitLoop(unsigned l)
    {
        os_ << "  movi t9, " << opts_.loopIterations << "\n";
        os_ << "  movi t8, 0\n";
        os_ << "L" << l << ":\n";
        for (unsigned i = 0; i < opts_.bodyOps; ++i)
            emitRandomOp(l, i);
        os_ << "  addi t9, t9, -1\n";
        os_ << "  bne t9, t8, L" << l << "\n";
    }

    void
    emitLeafFunctions()
    {
        os_ << "leaf0:\n"
            << "  add a0, s0, s1\n"
            << "  xor s2, s2, a0\n"
            << "  ret\n";
        os_ << "leaf1:\n"
            << "  push s3\n"
            << "  addi s3, s3, 17\n"
            << "  mul s4, s4, s3\n"
            << "  pop s3\n"
            << "  ret\n";
    }

    Rng rng_;
    RandomProgramOptions opts_;
    std::ostringstream os_;
    unsigned labelId_ = 0;
};

} // namespace

std::string
generateRandomProgram(std::uint64_t seed, const RandomProgramOptions &opts)
{
    Generator g(seed, opts);
    return g.run();
}

} // namespace merlin::workloads
