/**
 * @file
 * susan_s / susan_e / susan_c (MiBench-like): smoothing, edge detection
 * and corner detection over a 32x32 synthetic grayscale image, mirroring
 * the structure of the SUSAN image-processing kernels.
 */

#include <cstdlib>
#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned W = 32;
constexpr unsigned H = 32;

std::vector<std::uint8_t>
makeImage()
{
    std::vector<std::uint8_t> img(W * H);
    for (unsigned y = 0; y < H; ++y) {
        for (unsigned x = 0; x < W; ++x) {
            // Blocks + gradient + noise: gives edges and corners.
            unsigned v = ((x / 8 + y / 8) % 2) ? 200 : 40;
            v += x * 2;
            v += static_cast<unsigned>(mix64(y * W + x) % 16);
            img[y * W + x] = static_cast<std::uint8_t>(v & 0xff);
        }
    }
    return img;
}

/** FNV-1a over bytes; both sides use it as the image checksum. */
std::uint64_t
fnv(const std::vector<std::uint8_t> &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ULL;
    }
    return h;
}

/** Shared assembly epilogue: FNV over `out` image + emit. */
std::string
fnvEpilogue(unsigned bytes)
{
    std::ostringstream os;
    os << R"(
checksum:
  la t0, outimg
  movi t1, 0
  li s0, 0xcbf29ce484222325
  li s1, 0x100000001b3
chk_loop:
  add t2, t0, t1
  ld.bu t3, [t2]
  xor s0, s0, t3
  mul s0, s0, s1
  addi t1, t1, 1
  slti t2, t1, )" << bytes << R"(
  bne t2, t8, chk_loop
  out.d s0
  halt 0
)";
    return os.str();
}

} // namespace

WorkloadSource
wlSusanS()
{
    WorkloadSource w;
    w.description = "3x3 weighted smoothing over a 32x32 image";

    auto img = makeImage();
    std::ostringstream os;
    os << ".data\n"
       << byteTable("img", img) << "outimg: .space " << W * H << "\n"
       << ".text\n";
    // Kernel 1 2 1 / 2 4 2 / 1 2 1, divide by 16.  Borders copied.
    os << R"(_start:
  la s2, img
  la s3, outimg
  movi s4, 1             ; y
row:
  movi s5, 1             ; x
col:
  movi t0, )" << W << R"(
  mul t1, s4, t0
  add t1, t1, s5         ; idx = y*W + x
  add t2, t1, s2
  ; weighted sum of the 3x3 neighbourhood
  ld.bu t3, [t2-)" << (W + 1) << R"(]
  ld.bu t4, [t2-)" << W << R"(]
  shli t4, t4, 1
  add t3, t3, t4
  ld.bu t4, [t2-)" << (W - 1) << R"(]
  add t3, t3, t4
  ld.bu t4, [t2-1]
  shli t4, t4, 1
  add t3, t3, t4
  ld.bu t4, [t2]
  shli t4, t4, 2
  add t3, t3, t4
  ld.bu t4, [t2+1]
  shli t4, t4, 1
  add t3, t3, t4
  ld.bu t4, [t2+)" << (W - 1) << R"(]
  add t3, t3, t4
  ld.bu t4, [t2+)" << W << R"(]
  shli t4, t4, 1
  add t3, t3, t4
  ld.bu t4, [t2+)" << (W + 1) << R"(]
  add t3, t3, t4
  shri t3, t3, 4
  add t4, t1, s3
  st.b t3, [t4]
  addi s5, s5, 1
  slti t0, s5, )" << (W - 1) << R"(
  bne t0, t8, col
  addi s4, s4, 1
  slti t0, s4, )" << (H - 1) << R"(
  bne t0, t8, row
)" << fnvEpilogue(W * H);
    w.source = os.str();

    std::vector<std::uint8_t> out(W * H, 0);
    for (unsigned y = 1; y + 1 < H; ++y) {
        for (unsigned x = 1; x + 1 < W; ++x) {
            unsigned i = y * W + x;
            unsigned s = img[i - W - 1] + 2 * img[i - W] + img[i - W + 1] +
                         2 * img[i - 1] + 4 * img[i] + 2 * img[i + 1] +
                         img[i + W - 1] + 2 * img[i + W] + img[i + W + 1];
            out[i] = static_cast<std::uint8_t>(s >> 4);
        }
    }
    outD(w.expected, fnv(out));
    return w;
}

WorkloadSource
wlSusanE()
{
    WorkloadSource w;
    w.description = "Sobel edge map + threshold over a 32x32 image";

    auto img = makeImage();
    std::ostringstream os;
    os << ".data\n"
       << byteTable("img", img) << "outimg: .space " << W * H << "\n"
       << ".text\n";
    // |gx| + |gy| with Sobel masks; mark edge when magnitude > 96.
    os << R"(_start:
  la s2, img
  la s3, outimg
  movi s6, 0             ; edge count
  movi s4, 1
row:
  movi s5, 1
col:
  movi t0, )" << W << R"(
  mul t1, s4, t0
  add t1, t1, s5
  add t2, t1, s2
  ; gx = (tr + 2r + br) - (tl + 2l + bl)
  ld.bu t3, [t2-)" << (W - 1) << R"(]
  ld.bu t4, [t2+1]
  shli t4, t4, 1
  add t3, t3, t4
  ld.bu t4, [t2+)" << (W + 1) << R"(]
  add t3, t3, t4
  ld.bu t4, [t2-)" << (W + 1) << R"(]
  sub t3, t3, t4
  ld.bu t4, [t2-1]
  shli t4, t4, 1
  sub t3, t3, t4
  ld.bu t4, [t2+)" << (W - 1) << R"(]
  sub t3, t3, t4
  ; gy = (bl + 2b + br) - (tl + 2t + tr)
  ld.bu t5, [t2+)" << (W - 1) << R"(]
  ld.bu t4, [t2+)" << W << R"(]
  shli t4, t4, 1
  add t5, t5, t4
  ld.bu t4, [t2+)" << (W + 1) << R"(]
  add t5, t5, t4
  ld.bu t4, [t2-)" << (W + 1) << R"(]
  sub t5, t5, t4
  ld.bu t4, [t2-)" << W << R"(]
  shli t4, t4, 1
  sub t5, t5, t4
  ld.bu t4, [t2-)" << (W - 1) << R"(]
  sub t5, t5, t4
  ; |gx| + |gy|
  bge t3, t8, gxpos
  sub t3, t8, t3
gxpos:
  bge t5, t8, gypos
  sub t5, t8, t5
gypos:
  add t3, t3, t5
  ; clamp to 255 and threshold
  slti t4, t3, 256
  bne t4, t8, noclamp
  movi t3, 255
noclamp:
  slti t4, t3, 97
  bne t4, t8, noedge
  addi s6, s6, 1
noedge:
  add t4, t1, s3
  st.b t3, [t4]
  addi s5, s5, 1
  slti t0, s5, )" << (W - 1) << R"(
  bne t0, t8, col
  addi s4, s4, 1
  slti t0, s4, )" << (H - 1) << R"(
  bne t0, t8, row
  out.d s6
)" << fnvEpilogue(W * H);
    w.source = os.str();

    std::vector<std::uint8_t> out(W * H, 0);
    std::uint64_t edges = 0;
    for (unsigned y = 1; y + 1 < H; ++y) {
        for (unsigned x = 1; x + 1 < W; ++x) {
            unsigned i = y * W + x;
            int gx = img[i - W + 1] + 2 * img[i + 1] + img[i + W + 1] -
                     img[i - W - 1] - 2 * img[i - 1] - img[i + W - 1];
            int gy = img[i + W - 1] + 2 * img[i + W] + img[i + W + 1] -
                     img[i - W - 1] - 2 * img[i - W] - img[i - W + 1];
            int m = std::abs(gx) + std::abs(gy);
            if (m > 255)
                m = 255;
            if (m > 96)
                ++edges;
            out[i] = static_cast<std::uint8_t>(m);
        }
    }
    outD(w.expected, edges);
    outD(w.expected, fnv(out));
    return w;
}

WorkloadSource
wlSusanC()
{
    WorkloadSource w;
    w.description = "USAN-style corner detection over a 32x32 image";

    auto img = makeImage();
    std::ostringstream os;
    os << ".data\n"
       << byteTable("img", img) << "outimg: .space " << W * H << "\n"
       << ".text\n";
    // USAN: count 3x3 neighbours within +/-20 of the center; a pixel is
    // a corner candidate when fewer than 3 neighbours are similar.
    os << R"(_start:
  la s2, img
  la s3, outimg
  movi s6, 0             ; corner count
  movi s7, 0             ; position accumulator
  movi s4, 1
row:
  movi s5, 1
col:
  movi t0, )" << W << R"(
  mul t1, s4, t0
  add t1, t1, s5
  add t2, t1, s2
  ld.bu t9, [t2]         ; center
  movi t3, 0             ; similar count
  movi s8, -)" << (W + 1) << R"(
nb_loop:
  add t4, t2, s8
  ld.bu t5, [t4]
  sub t5, t5, t9
  bge t5, t8, posd
  sub t5, t8, t5
posd:
  slti t6, t5, 21
  beq t6, t8, dissim
  addi t3, t3, 1
dissim:
  ; advance neighbour offset over the 3x3 ring (skip center)
  movi t6, -)" << (W - 1) << R"(
  beq s8, t6, jump_row1
  movi t6, -1
  beq s8, t6, skip_center
  movi t6, 1
  beq s8, t6, jump_row2
  movi t6, )" << (W + 1) << R"(
  beq s8, t6, nb_done
  addi s8, s8, 1
  jmp nb_loop
jump_row1:
  movi s8, -1
  jmp nb_loop
skip_center:
  movi s8, 1
  jmp nb_loop
jump_row2:
  movi s8, )" << (W - 1) << R"(
  jmp nb_loop
nb_done:
  add t4, t1, s3
  st.b t3, [t4]
  slti t5, t3, 3
  beq t5, t8, nocorner
  addi s6, s6, 1
  add s7, s7, t1
nocorner:
  addi s5, s5, 1
  slti t0, s5, )" << (W - 1) << R"(
  bne t0, t8, col
  addi s4, s4, 1
  slti t0, s4, )" << (H - 1) << R"(
  bne t0, t8, row
  out.d s6
  out.d s7
)" << fnvEpilogue(W * H);
    w.source = os.str();

    std::vector<std::uint8_t> out(W * H, 0);
    std::uint64_t corners = 0, possum = 0;
    const int offs[8] = {-(int)W - 1, -(int)W, -(int)W + 1, -1,
                         1,           (int)W - 1, (int)W, (int)W + 1};
    for (unsigned y = 1; y + 1 < H; ++y) {
        for (unsigned x = 1; x + 1 < W; ++x) {
            unsigned i = y * W + x;
            int c = img[i];
            unsigned similar = 0;
            for (int o : offs) {
                int d = img[i + o] - c;
                if (std::abs(d) < 21)
                    ++similar;
            }
            out[i] = static_cast<std::uint8_t>(similar);
            if (similar < 3) {
                ++corners;
                possum += i;
            }
        }
    }
    outD(w.expected, corners);
    outD(w.expected, possum);
    outD(w.expected, fnv(out));
    return w;
}

} // namespace merlin::workloads
