/**
 * @file
 * djpeg / cjpeg (MiBench-like): the 8x8 block transform cores of JPEG
 * decompression and compression — dequantize + 2D IDCT with clamping,
 * and 2D forward DCT + quantization — over 8 blocks, in Q13 fixed point.
 */

#include <cmath>
#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned BLOCKS = 8;

/** Q13 DCT-II basis matrix c[u][x] (includes normalization). */
std::vector<std::int64_t>
dctMatrix()
{
    std::vector<std::int64_t> c(64);
    for (unsigned u = 0; u < 8; ++u) {
        for (unsigned x = 0; x < 8; ++x) {
            double a = (u == 0) ? std::sqrt(1.0 / 8.0)
                                : std::sqrt(2.0 / 8.0);
            c[u * 8 + x] = static_cast<std::int64_t>(std::lround(
                a * std::cos((2 * x + 1) * u * M_PI / 16.0) * 8192.0));
        }
    }
    return c;
}

std::vector<std::int64_t>
quantTable()
{
    std::vector<std::int64_t> q(64);
    for (unsigned u = 0; u < 8; ++u)
        for (unsigned v = 0; v < 8; ++v)
            q[u * 8 + v] = 8 + 3 * (u + v);
    return q;
}

/** JPEG-like sparse coefficient blocks (decoder input). */
std::vector<std::int64_t>
coeffBlocks()
{
    std::vector<std::int64_t> c(BLOCKS * 64, 0);
    for (unsigned b = 0; b < BLOCKS; ++b) {
        for (unsigned i = 0; i < 64; ++i) {
            const std::uint64_t r = mix64(b * 977 + i);
            // Mostly zero, low-frequency heavy, like real DCT data.
            if (i == 0) {
                c[b * 64] = static_cast<std::int64_t>(r % 128) - 64;
            } else if (r % 5 == 0 && i < 24) {
                c[b * 64 + i] = static_cast<std::int64_t>(r % 32) - 16;
            }
        }
    }
    return c;
}

/** Pixel blocks (encoder input), centered at 0 (pixel - 128). */
std::vector<std::int64_t>
pixelBlocks()
{
    std::vector<std::int64_t> p(BLOCKS * 64);
    for (unsigned b = 0; b < BLOCKS; ++b)
        for (unsigned i = 0; i < 64; ++i)
            p[b * 64 + i] =
                static_cast<std::int64_t>(mix64(b * 131 + i * 7) % 256) -
                128;
    return p;
}

/** Shared assembly: out[8x8] = (A^T x B x A-ish) fixed-point products. */
const char *MATMUL_ASM = R"(
; mat8(a0=dst, a1=lhs, a2=rhs): dst[i][j] = sum_k lhs[k][i]*rhs[k][j] >> 13
; (lhs indexed transposed: lhs[k*8+i])
mat8:
  movi t0, 0              ; i
m_i:
  movi t1, 0              ; j
m_j:
  movi t2, 0              ; k
  movi t3, 0              ; acc
m_k:
  shli t4, t2, 3
  add t4, t4, t0          ; k*8 + i
  shli t4, t4, 3
  add t4, t4, a1
  ld.d t5, [t4]
  shli t4, t2, 3
  add t4, t4, t1          ; k*8 + j
  shli t4, t4, 3
  add t4, t4, a2
  ld.d t6, [t4]
  mul t5, t5, t6
  add t3, t3, t5
  addi t2, t2, 1
  slti t4, t2, 8
  bne t4, t8, m_k
  srai t3, t3, 13
  shli t4, t0, 3
  add t4, t4, t1
  shli t4, t4, 3
  add t4, t4, a0
  st.d t3, [t4]
  addi t1, t1, 1
  slti t4, t1, 8
  bne t4, t8, m_j
  addi t0, t0, 1
  slti t4, t0, 8
  bne t4, t8, m_i
  ret
)";

} // namespace

WorkloadSource
wlDjpeg()
{
    WorkloadSource w;
    w.description = "dequantize + 2D IDCT + clamp over 8 coeff blocks";

    auto cmat = dctMatrix();
    auto quant = quantTable();
    auto coeffs = coeffBlocks();

    std::ostringstream os;
    os << ".data\n"
       << quadTable("cmat", cmat) << quadTable("quant", quant)
       << quadTable("coef", coeffs) << "deq: .space 512\n"
       << "tmp: .space 512\n"
       << "pix: .space 512\n"
       << ".text\n";
    // s0 = block counter, s1 = current coeff base.
    os << R"(_start:
  movi s0, 0
  la s1, coef
blk:
  ; ---- dequantize into deq ----
  movi t0, 0
deq_l:
  shli t1, t0, 3
  add t2, t1, s1
  ld.d t3, [t2]
  la t2, quant
  add t2, t2, t1
  ld.d t4, [t2]
  mul t3, t3, t4
  la t2, deq
  add t2, t2, t1
  st.d t3, [t2]
  addi t0, t0, 1
  slti t1, t0, 64
  bne t1, t8, deq_l
  ; ---- tmp = C^T x deq ; pix = tmp x C (via transposed-lhs mat8) ----
  la a0, tmp
  la a1, cmat
  la a2, deq
  call mat8
  ; second stage: pix[x][y] = sum_v tmp[x][v] * c[v][y] >> 13
  ; mat8 computes dst[i][j] = sum_k lhs[k*8+i] * rhs[k*8+j], so pass
  ; lhs = tmp transposed-in-effect by building tmpT first.
  movi t0, 0
tr_l:
  movi t1, 0
tr_j:
  shli t2, t0, 3
  add t2, t2, t1
  shli t2, t2, 3
  la t3, tmp
  add t3, t3, t2
  ld.d t4, [t3]
  shli t2, t1, 3
  add t2, t2, t0
  shli t2, t2, 3
  la t3, pix
  add t3, t3, t2
  st.d t4, [t3]        ; pix used as scratch transpose
  addi t1, t1, 1
  slti t2, t1, 8
  bne t2, t8, tr_j
  addi t0, t0, 1
  slti t2, t0, 8
  bne t2, t8, tr_l
  la a0, tmp
  la a1, pix
  la a2, cmat
  call mat8
  ; ---- clamp to 0..255 after +128, accumulate checksum ----
  movi t0, 0
cl_l:
  shli t1, t0, 3
  la t2, tmp
  add t2, t2, t1
  ld.d t3, [t2]
  addi t3, t3, 128
  bge t3, t8, cl_pos
  movi t3, 0
cl_pos:
  slti t4, t3, 256
  bne t4, t8, cl_ok
  movi t3, 255
cl_ok:
  mul t4, t3, t0
  add s4, s4, t4        ; weighted sum
  xor s5, s5, t3
  addi s5, s5, 3
  addi t0, t0, 1
  slti t1, t0, 64
  bne t1, t8, cl_l
  addi s1, s1, 512
  addi s0, s0, 1
  slti t0, s0, )" << BLOCKS << R"(
  bne t0, t8, blk
  out.d s4
  out.d s5
  halt 0
)" << MATMUL_ASM;
    w.source = os.str();

    // Reference.
    std::uint64_t wsum = 0, xmix = 0;
    for (unsigned b = 0; b < BLOCKS; ++b) {
        std::int64_t deq[64], tmp[64], tmpt[64], pix[64];
        for (unsigned i = 0; i < 64; ++i)
            deq[i] = coeffs[b * 64 + i] * quant[i];
        for (unsigned i = 0; i < 8; ++i) {
            for (unsigned j = 0; j < 8; ++j) {
                std::int64_t acc = 0;
                for (unsigned k = 0; k < 8; ++k)
                    acc += cmat[k * 8 + i] * deq[k * 8 + j];
                tmp[i * 8 + j] = acc >> 13;
            }
        }
        for (unsigned i = 0; i < 8; ++i)
            for (unsigned j = 0; j < 8; ++j)
                tmpt[j * 8 + i] = tmp[i * 8 + j];
        for (unsigned i = 0; i < 8; ++i) {
            for (unsigned j = 0; j < 8; ++j) {
                std::int64_t acc = 0;
                for (unsigned k = 0; k < 8; ++k)
                    acc += tmpt[k * 8 + i] * cmat[k * 8 + j];
                pix[i * 8 + j] = acc >> 13;
            }
        }
        for (unsigned i = 0; i < 64; ++i) {
            std::int64_t v = pix[i] + 128;
            if (v < 0)
                v = 0;
            if (v > 255)
                v = 255;
            wsum += static_cast<std::uint64_t>(v) * i;
            xmix ^= static_cast<std::uint64_t>(v);
            xmix += 3;
        }
    }
    outD(w.expected, wsum);
    outD(w.expected, xmix);
    return w;
}

WorkloadSource
wlCjpeg()
{
    WorkloadSource w;
    w.description = "2D forward DCT + quantization over 8 pixel blocks";

    auto cmat = dctMatrix();
    auto quant = quantTable();
    auto pixels = pixelBlocks();

    // Transposed basis so the same mat8 kernel computes the FDCT:
    // F = C x P x C^T;  stage 1: tmp[u][y] = sum_x C[u][x] P[x][y]
    //   = mat8(lhs = C^T, rhs = P).
    std::vector<std::int64_t> cmatT(64);
    for (unsigned u = 0; u < 8; ++u)
        for (unsigned x = 0; x < 8; ++x)
            cmatT[x * 8 + u] = cmat[u * 8 + x];

    std::ostringstream os;
    os << ".data\n"
       << quadTable("cmat", cmat) << quadTable("cmatt", cmatT)
       << quadTable("quant", quant) << quadTable("pixin", pixels)
       << "tmp: .space 512\n"
       << "tmpt: .space 512\n"
       << ".text\n";
    os << R"(_start:
  movi s0, 0
  la s1, pixin
blk:
  ; tmp[u][y] = sum_x cmatt[x*8+u] * pix[x*8+y]  (= C x P)
  la a0, tmp
  la a1, cmatt
  la a2, pixin
  mov a2, s1
  call mat8
  ; transpose tmp into tmpt
  movi t0, 0
tr_l:
  movi t1, 0
tr_j:
  shli t2, t0, 3
  add t2, t2, t1
  shli t2, t2, 3
  la t3, tmp
  add t3, t3, t2
  ld.d t4, [t3]
  shli t2, t1, 3
  add t2, t2, t0
  shli t2, t2, 3
  la t3, tmpt
  add t3, t3, t2
  st.d t4, [t3]
  addi t1, t1, 1
  slti t2, t1, 8
  bne t2, t8, tr_j
  addi t0, t0, 1
  slti t2, t0, 8
  bne t2, t8, tr_l
  ; F[u][v] = sum_y tmpt[y*8+u] * cmatt[y*8+v]  (= tmp x C^T)
  la a0, tmp
  la a1, tmpt
  la a2, cmatt
  call mat8
  ; quantize with the DIV unit + accumulate
  movi t0, 0
q_l:
  shli t1, t0, 3
  la t2, tmp
  add t2, t2, t1
  ld.d t3, [t2]
  la t2, quant
  add t2, t2, t1
  ld.d t4, [t2]
  div t3, t3, t4
  mul t4, t3, t0
  add s4, s4, t4
  xor s5, s5, t3
  addi t0, t0, 1
  slti t1, t0, 64
  bne t1, t8, q_l
  addi s1, s1, 512
  addi s0, s0, 1
  slti t0, s0, )" << BLOCKS << R"(
  bne t0, t8, blk
  out.d s4
  out.d s5
  halt 0
)" << MATMUL_ASM;
    w.source = os.str();

    std::uint64_t wsum = 0, xmix = 0;
    for (unsigned b = 0; b < BLOCKS; ++b) {
        std::int64_t tmp[64], tmpt[64], f[64];
        const std::int64_t *p = &pixels[b * 64];
        for (unsigned i = 0; i < 8; ++i) {
            for (unsigned j = 0; j < 8; ++j) {
                std::int64_t acc = 0;
                for (unsigned k = 0; k < 8; ++k)
                    acc += cmatT[k * 8 + i] * p[k * 8 + j];
                tmp[i * 8 + j] = acc >> 13;
            }
        }
        for (unsigned i = 0; i < 8; ++i)
            for (unsigned j = 0; j < 8; ++j)
                tmpt[j * 8 + i] = tmp[i * 8 + j];
        for (unsigned i = 0; i < 8; ++i) {
            for (unsigned j = 0; j < 8; ++j) {
                std::int64_t acc = 0;
                for (unsigned k = 0; k < 8; ++k)
                    acc += tmpt[k * 8 + i] * cmatT[k * 8 + j];
                f[i * 8 + j] = acc >> 13;
            }
        }
        for (unsigned i = 0; i < 64; ++i) {
            std::int64_t q = f[i] / quant[i];
            wsum += static_cast<std::uint64_t>(q * static_cast<std::int64_t>(i));
            xmix ^= static_cast<std::uint64_t>(q);
        }
    }
    outD(w.expected, wsum);
    outD(w.expected, xmix);
    return w;
}

} // namespace merlin::workloads
