/**
 * @file
 * sha (MiBench-like): SHA-1 over a 512-byte message (9 padded blocks).
 *
 * Words are consumed little-endian (non-standard but structurally
 * identical to SHA-1: same expansion, rotations and round structure);
 * the C++ reference mirrors the exact same definition.
 */

#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned MSG_BYTES = 512;

std::vector<std::uint8_t>
paddedMessage()
{
    std::vector<std::uint8_t> m(MSG_BYTES);
    for (unsigned i = 0; i < MSG_BYTES; ++i)
        m[i] = static_cast<std::uint8_t>(mix64(i * 31 + 5));
    // SHA-1 padding: 0x80, zeros, 64-bit length (little-endian here).
    m.push_back(0x80);
    while (m.size() % 64 != 56)
        m.push_back(0);
    std::uint64_t bits = MSG_BYTES * 8ULL;
    for (int i = 0; i < 8; ++i)
        m.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    return m;
}

std::uint32_t
rotl32(std::uint32_t x, unsigned n)
{
    return (x << n) | (x >> (32 - n));
}

/** Reference SHA-1 (LE word order) returning h0..h4. */
std::vector<std::uint32_t>
refSha(const std::vector<std::uint8_t> &msg)
{
    std::uint32_t h[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                          0x10325476u, 0xC3D2E1F0u};
    for (std::size_t blk = 0; blk < msg.size(); blk += 64) {
        std::uint32_t w[80];
        for (int i = 0; i < 16; ++i) {
            w[i] = static_cast<std::uint32_t>(msg[blk + 4 * i]) |
                   (static_cast<std::uint32_t>(msg[blk + 4 * i + 1]) << 8) |
                   (static_cast<std::uint32_t>(msg[blk + 4 * i + 2]) << 16) |
                   (static_cast<std::uint32_t>(msg[blk + 4 * i + 3]) << 24);
        }
        for (int i = 16; i < 80; ++i)
            w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
        std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
        for (int i = 0; i < 80; ++i) {
            std::uint32_t f, k;
            if (i < 20) {
                f = (b & c) | (~b & d);
                k = 0x5A827999u;
            } else if (i < 40) {
                f = b ^ c ^ d;
                k = 0x6ED9EBA1u;
            } else if (i < 60) {
                f = (b & c) | (b & d) | (c & d);
                k = 0x8F1BBCDCu;
            } else {
                f = b ^ c ^ d;
                k = 0xCA62C1D6u;
            }
            std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
            e = d;
            d = c;
            c = rotl32(b, 30);
            b = a;
            a = tmp;
        }
        h[0] += a;
        h[1] += b;
        h[2] += c;
        h[3] += d;
        h[4] += e;
    }
    return {h[0], h[1], h[2], h[3], h[4]};
}

} // namespace

WorkloadSource
wlSha()
{
    WorkloadSource w;
    w.description = "SHA-1 (LE word order) over a 512-byte message";

    auto msg = paddedMessage();
    const unsigned blocks = static_cast<unsigned>(msg.size() / 64);

    std::ostringstream os;
    os << ".data\n"
       << byteTable("msg", msg) << ".align 8\n"
       << "wbuf: .space 320\n" // 80 x 32-bit words
       << ".text\n";
    // Register plan:
    //   s0..s4 = a b c d e     s5 = block ptr   s6 = blocks left
    //   s7 = wbuf   s8 = 0xffffffff mask   s9 = h-state base ptr
    os << R"(_start:
  la s5, msg
  movi s6, )" << blocks << R"(
  la s7, wbuf
  movi s8, -1
  shri s8, s8, 32
  ; initial hash state pushed on the stack: [sp]=h0..[sp+32]=h4
  addi sp, sp, -40
  li t0, 0x67452301
  st.d t0, [sp]
  li t0, 0xEFCDAB89
  st.d t0, [sp+8]
  li t0, 0x98BADCFE
  st.d t0, [sp+16]
  li t0, 0x10325476
  st.d t0, [sp+24]
  li t0, 0xC3D2E1F0
  st.d t0, [sp+32]

block_loop:
  ; ---- load 16 message words (LE) into wbuf ----
  movi t0, 0
ld16:
  shli t1, t0, 2
  add t2, t1, s5
  ld.wu t3, [t2]
  add t2, t1, s7
  st.w t3, [t2]
  addi t0, t0, 1
  slti t1, t0, 16
  bne t1, t8, ld16        ; t8 == 0 always (never written)
  ; ---- expand w[16..79] ----
  movi t0, 16
expand:
  shli t1, t0, 2
  add t2, t1, s7
  ld.wu t3, [t2-12]       ; w[i-3]
  ld.wu t4, [t2-32]       ; w[i-8]
  xor t3, t3, t4
  ld.wu t4, [t2-56]       ; w[i-14]
  xor t3, t3, t4
  ld.wu t4, [t2-64]       ; w[i-16]
  xor t3, t3, t4
  shli t4, t3, 1
  shri t3, t3, 31
  or t3, t3, t4
  and t3, t3, s8
  st.w t3, [t2]
  addi t0, t0, 1
  slti t1, t0, 80
  bne t1, t8, expand
  ; ---- rounds ----
  ld.d s0, [sp]
  ld.d s1, [sp+8]
  ld.d s2, [sp+16]
  ld.d s3, [sp+24]
  ld.d s4, [sp+32]
  movi t0, 0              ; round index
rounds:
  slti t1, t0, 20
  beq t1, t8, ph2
  and t2, s1, s2          ; f = (b&c) | (~b & d)
  xor t3, s1, s8          ; ~b (32-bit)
  and t3, t3, s3
  or t2, t2, t3
  li t3, 0x5A827999
  jmp round_body
ph2:
  slti t1, t0, 40
  beq t1, t8, ph3
  xor t2, s1, s2
  xor t2, t2, s3
  li t3, 0x6ED9EBA1
  jmp round_body
ph3:
  slti t1, t0, 60
  beq t1, t8, ph4
  and t2, s1, s2          ; maj
  and t4, s1, s3
  or t2, t2, t4
  and t4, s2, s3
  or t2, t2, t4
  li t3, 0x8F1BBCDC
  jmp round_body
ph4:
  xor t2, s1, s2
  xor t2, t2, s3
  li t3, 0xCA62C1D6
round_body:
  ; tmp = rotl(a,5) + f + e + k + w[i]
  shli t4, s0, 5
  shri t5, s0, 27
  or t4, t4, t5
  and t4, t4, s8
  add t4, t4, t2
  add t4, t4, s4
  add t4, t4, t3
  shli t5, t0, 2
  add t5, t5, s7
  ld.wu t6, [t5]
  add t4, t4, t6
  and t4, t4, s8
  ; e=d d=c c=rotl(b,30) b=a a=tmp
  mov s4, s3
  mov s3, s2
  shli t5, s1, 30
  shri t6, s1, 2
  or t5, t5, t6
  and s2, t5, s8
  mov s1, s0
  mov s0, t4
  addi t0, t0, 1
  slti t1, t0, 80
  bne t1, t8, rounds
  ; ---- add into h state ----
  ld.d t0, [sp]
  add t0, t0, s0
  and t0, t0, s8
  st.d t0, [sp]
  ld.d t0, [sp+8]
  add t0, t0, s1
  and t0, t0, s8
  st.d t0, [sp+8]
  ld.d t0, [sp+16]
  add t0, t0, s2
  and t0, t0, s8
  st.d t0, [sp+16]
  ld.d t0, [sp+24]
  add t0, t0, s3
  and t0, t0, s8
  st.d t0, [sp+24]
  ld.d t0, [sp+32]
  add t0, t0, s4
  and t0, t0, s8
  st.d t0, [sp+32]
  ; next block
  addi s5, s5, 64
  addi s6, s6, -1
  bne s6, t8, block_loop

  ld.d t0, [sp]
  out.d t0
  ld.d t0, [sp+8]
  out.d t0
  ld.d t0, [sp+16]
  out.d t0
  ld.d t0, [sp+24]
  out.d t0
  ld.d t0, [sp+32]
  out.d t0
  addi sp, sp, 40
  halt 0
)";
    w.source = os.str();

    for (std::uint32_t hv : refSha(msg))
        outD(w.expected, hv);
    return w;
}

} // namespace merlin::workloads
