/**
 * @file
 * stringsearch (MiBench-like): Boyer-Moore-Horspool search of 8 patterns
 * over a 2KB text; half the patterns occur by construction.
 */

#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned TEXT_LEN = 2048;
constexpr unsigned NUM_PATTERNS = 8;
constexpr unsigned PAT_LEN = 6;

std::vector<std::uint8_t>
makeText()
{
    std::vector<std::uint8_t> t(TEXT_LEN);
    for (unsigned i = 0; i < TEXT_LEN; ++i)
        t[i] = 'a' + static_cast<std::uint8_t>(mix64(i * 3 + 11) % 16);
    return t;
}

std::vector<std::uint8_t>
makePatterns(const std::vector<std::uint8_t> &text)
{
    std::vector<std::uint8_t> p;
    for (unsigned k = 0; k < NUM_PATTERNS; ++k) {
        if (k % 2 == 0) {
            // Present: copy a substring of the text.
            unsigned off =
                static_cast<unsigned>(mix64(k) % (TEXT_LEN - PAT_LEN));
            for (unsigned i = 0; i < PAT_LEN; ++i)
                p.push_back(text[off + i]);
        } else {
            // Absent: uses a letter outside the text alphabet.
            for (unsigned i = 0; i < PAT_LEN; ++i)
                p.push_back('a' + static_cast<std::uint8_t>(
                                       mix64(k * 97 + i) % 16));
            p.back() = 'z';
        }
    }
    return p;
}

/** Reference Horspool search; returns first index or -1. */
std::int64_t
refSearch(const std::vector<std::uint8_t> &text,
          const std::uint8_t *pat)
{
    unsigned skip[256];
    for (unsigned c = 0; c < 256; ++c)
        skip[c] = PAT_LEN;
    for (unsigned i = 0; i + 1 < PAT_LEN; ++i)
        skip[pat[i]] = PAT_LEN - 1 - i;
    std::size_t pos = 0;
    while (pos + PAT_LEN <= text.size()) {
        std::int64_t j = PAT_LEN - 1;
        while (j >= 0 && text[pos + j] == pat[j])
            --j;
        if (j < 0)
            return static_cast<std::int64_t>(pos);
        pos += skip[text[pos + PAT_LEN - 1]];
    }
    return -1;
}

} // namespace

WorkloadSource
wlStringsearch()
{
    WorkloadSource w;
    w.description = "Horspool search, 8 patterns over 2KB text";

    auto text = makeText();
    auto pats = makePatterns(text);

    std::ostringstream os;
    os << ".data\n"
       << byteTable("text", text) << byteTable("pats", pats)
       << "skip: .space 256\n"
       << ".text\n";
    // s0 = text, s1 = current pattern ptr, s2 = pattern counter,
    // s3 = found count, s4 = position accumulator, t8 = 0.
    os << R"(_start:
  la s0, text
  la s1, pats
  movi s2, 0
  movi s3, 0
  movi s4, 0

pat_loop:
  ; ---- build the skip table ----
  la t0, skip
  movi t1, 0
  movi t2, )" << PAT_LEN << R"(
fill_skip:
  add t3, t0, t1
  st.b t2, [t3]
  addi t1, t1, 1
  slti t3, t1, 256
  bne t3, t8, fill_skip
  movi t1, 0
skip_pat:
  slti t3, t1, )" << (PAT_LEN - 1) << R"(
  beq t3, t8, search
  add t3, s1, t1
  ld.bu t4, [t3]
  la t0, skip
  add t4, t4, t0
  movi t5, )" << (PAT_LEN - 1) << R"(
  sub t5, t5, t1
  st.b t5, [t4]
  addi t1, t1, 1
  jmp skip_pat

search:
  movi t0, 0               ; pos
  movi t9, -1              ; result
srch_loop:
  movi t1, )" << (TEXT_LEN - PAT_LEN) << R"(
  blt t1, t0, done_pat     ; pos > len - plen: not found
  ; compare backwards
  movi t2, )" << (PAT_LEN - 1) << R"(
cmp_loop:
  blt t2, t8, found
  add t3, s0, t0
  add t3, t3, t2
  ld.bu t4, [t3]
  add t5, s1, t2
  ld.bu t6, [t5]
  bne t4, t6, advance
  addi t2, t2, -1
  jmp cmp_loop
found:
  mov t9, t0
  jmp done_pat
advance:
  add t3, s0, t0
  ld.bu t4, [t3+)" << (PAT_LEN - 1) << R"(]
  la t5, skip
  add t5, t5, t4
  ld.bu t6, [t5]
  add t0, t0, t6
  jmp srch_loop

done_pat:
  out.d t9
  blt t9, t8, miss
  addi s3, s3, 1
  add s4, s4, t9
miss:
  addi s1, s1, )" << PAT_LEN << R"(
  addi s2, s2, 1
  slti t0, s2, )" << NUM_PATTERNS << R"(
  bne t0, t8, pat_loop

  out.d s3
  out.d s4
  halt 0
)";
    w.source = os.str();

    std::uint64_t found = 0, possum = 0;
    for (unsigned k = 0; k < NUM_PATTERNS; ++k) {
        std::int64_t pos = refSearch(text, &pats[k * PAT_LEN]);
        outD(w.expected, static_cast<std::uint64_t>(pos));
        if (pos >= 0) {
            ++found;
            possum += static_cast<std::uint64_t>(pos);
        }
    }
    outD(w.expected, found);
    outD(w.expected, possum);
    return w;
}

} // namespace merlin::workloads
