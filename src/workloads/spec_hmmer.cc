/**
 * @file
 * hmmer (SPEC-like): Viterbi dynamic programming over a profile-HMM-like
 * model — the max-plus recurrence (match / insert / delete states) that
 * dominates hmmsearch.
 */

#include <algorithm>
#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned M = 24;       // model length
constexpr unsigned L = 96;       // sequence length
constexpr unsigned ALPHA = 4;    // alphabet
constexpr std::int64_t NEG = -1'000'000'000;

struct Model
{
    std::vector<std::int64_t> match;  // M x ALPHA emission scores
    std::vector<std::int64_t> insert; // M x ALPHA
    std::vector<std::int64_t> tmm, tim, tdm, tmi, tii, tmd, tdd; // M each
    std::vector<std::int64_t> seq;    // L symbols
};

Model
makeModel()
{
    Model m;
    auto score = [](std::uint64_t r, std::int64_t lo, std::int64_t hi) {
        return lo + static_cast<std::int64_t>(r % (hi - lo));
    };
    for (unsigned k = 0; k < M; ++k) {
        for (unsigned a = 0; a < ALPHA; ++a) {
            m.match.push_back(score(mix64(k * 31 + a), -10, 12));
            m.insert.push_back(score(mix64(k * 77 + a + 1), -12, 4));
        }
        m.tmm.push_back(score(mix64(k + 1000), -3, 3));
        m.tim.push_back(score(mix64(k + 2000), -8, 0));
        m.tdm.push_back(score(mix64(k + 3000), -8, 0));
        m.tmi.push_back(score(mix64(k + 4000), -10, -2));
        m.tii.push_back(score(mix64(k + 5000), -10, -2));
        m.tmd.push_back(score(mix64(k + 6000), -10, -2));
        m.tdd.push_back(score(mix64(k + 7000), -10, -2));
    }
    for (unsigned i = 0; i < L; ++i)
        m.seq.push_back(static_cast<std::int64_t>(mix64(i * 13) % ALPHA));
    return m;
}

} // namespace

WorkloadSource
wlHmmer()
{
    WorkloadSource w;
    w.description = "Viterbi max-plus DP, 24-state profile x 96 symbols";
    w.window = 25'000;

    Model m = makeModel();

    std::ostringstream os;
    os << ".data\n"
       << quadTable("ematch", m.match) << quadTable("eins", m.insert)
       << quadTable("tmm", m.tmm) << quadTable("tim", m.tim)
       << quadTable("tdm", m.tdm) << quadTable("tmi", m.tmi)
       << quadTable("tii", m.tii) << quadTable("tmd", m.tmd)
       << quadTable("tdd", m.tdd) << quadTable("seq", m.seq)
       << "vm: .space " << (M + 1) * 8 << "\n"
       << "vi: .space " << (M + 1) * 8 << "\n"
       << "vd: .space " << (M + 1) * 8 << "\n"
       << "nm: .space " << (M + 1) * 8 << "\n"
       << "ni: .space " << (M + 1) * 8 << "\n"
       << "nd: .space " << (M + 1) * 8 << "\n"
       << ".text\n";
    // Row-by-row DP; s0 = i (sequence pos).
    os << R"(_start:
  ; init row 0: vm[0] = 0, everything else NEG
  li t0, )" << NEG << R"(
  movi t1, 0
init:
  shli t2, t1, 3
  la t3, vm
  add t3, t3, t2
  st.d t0, [t3]
  la t3, vi
  add t3, t3, t2
  st.d t0, [t3]
  la t3, vd
  add t3, t3, t2
  st.d t0, [t3]
  addi t1, t1, 1
  slti t2, t1, )" << (M + 1) << R"(
  bne t2, t8, init
  la t3, vm
  st.d t8, [t3]          ; vm[0] = 0

  movi s0, 0             ; i
seq_loop:
  ; symbol
  la t0, seq
  shli t1, s0, 3
  add t0, t0, t1
  ld.d s1, [t0]          ; sym
  ; new row init to NEG
  li t0, )" << NEG << R"(
  movi t1, 0
ninit:
  shli t2, t1, 3
  la t3, nm
  add t3, t3, t2
  st.d t0, [t3]
  la t3, ni
  add t3, t3, t2
  st.d t0, [t3]
  la t3, nd
  add t3, t3, t2
  st.d t0, [t3]
  addi t1, t1, 1
  slti t2, t1, )" << (M + 1) << R"(
  bne t2, t8, ninit

  movi s2, 1             ; k
k_loop:
  addi s3, s2, -1        ; k-1
  shli t0, s3, 3         ; (k-1)*8
  ; ---- match: nm[k] = ematch[k-1][sym] + max(vm[k-1]+tmm, vi[k-1]+tim,
  ;                                            vd[k-1]+tdm)
  la t1, vm
  add t1, t1, t0
  ld.d t2, [t1]
  la t1, tmm
  add t1, t1, t0
  ld.d t3, [t1]
  add t2, t2, t3         ; vm[k-1] + tmm[k-1]
  la t1, vi
  add t1, t1, t0
  ld.d t3, [t1]
  la t1, tim
  add t1, t1, t0
  ld.d t4, [t1]
  add t3, t3, t4
  bge t2, t3, max1
  mov t2, t3
max1:
  la t1, vd
  add t1, t1, t0
  ld.d t3, [t1]
  la t1, tdm
  add t1, t1, t0
  ld.d t4, [t1]
  add t3, t3, t4
  bge t2, t3, max2
  mov t2, t3
max2:
  ; + emission
  movi t3, )" << ALPHA << R"(
  mul t4, s3, t3
  add t4, t4, s1
  shli t4, t4, 3
  la t1, ematch
  add t1, t1, t4
  ld.d t3, [t1]
  add t2, t2, t3
  shli t4, s2, 3
  la t1, nm
  add t1, t1, t4
  st.d t2, [t1]
  ; ---- insert: ni[k] = eins[k-1][sym] + max(vm[k]+tmi, vi[k]+tii)
  shli t0, s2, 3
  la t1, vm
  add t1, t1, t0
  ld.d t2, [t1]
  la t1, tmi
  add t1, t1, t0
  ld.d t3, [t1-8]        ; tmi[k-1]
  add t2, t2, t3
  la t1, vi
  add t1, t1, t0
  ld.d t3, [t1]
  la t1, tii
  add t1, t1, t0
  ld.d t4, [t1-8]
  add t3, t3, t4
  bge t2, t3, imax
  mov t2, t3
imax:
  movi t3, )" << ALPHA << R"(
  mul t4, s3, t3
  add t4, t4, s1
  shli t4, t4, 3
  la t1, eins
  add t1, t1, t4
  ld.d t3, [t1]
  add t2, t2, t3
  shli t4, s2, 3
  la t1, ni
  add t1, t1, t4
  st.d t2, [t1]
  ; ---- delete: nd[k] = max(nm[k-1]+tmd, nd[k-1]+tdd)  (same row!)
  addi t0, s3, 0
  shli t0, t0, 3
  la t1, nm
  add t1, t1, t0
  ld.d t2, [t1]
  la t1, tmd
  add t1, t1, t0
  ld.d t3, [t1]
  add t2, t2, t3
  la t1, nd
  add t1, t1, t0
  ld.d t3, [t1]
  la t1, tdd
  add t1, t1, t0
  ld.d t4, [t1]
  add t3, t3, t4
  bge t2, t3, dmax
  mov t2, t3
dmax:
  shli t0, s2, 3
  la t1, nd
  add t1, t1, t0
  st.d t2, [t1]
  addi s2, s2, 1
  slti t0, s2, )" << (M + 1) << R"(
  bne t0, t8, k_loop

  ; copy new row -> old row
  movi t1, 0
copy:
  shli t2, t1, 3
  la t3, nm
  add t3, t3, t2
  ld.d t4, [t3]
  la t3, vm
  add t3, t3, t2
  st.d t4, [t3]
  la t3, ni
  add t3, t3, t2
  ld.d t4, [t3]
  la t3, vi
  add t3, t3, t2
  st.d t4, [t3]
  la t3, nd
  add t3, t3, t2
  ld.d t4, [t3]
  la t3, vd
  add t3, t3, t2
  st.d t4, [t3]
  addi t1, t1, 1
  slti t2, t1, )" << (M + 1) << R"(
  bne t2, t8, copy
  ; restore vm[0] to NEG after first row (start state consumed)
  li t0, )" << NEG << R"(
  la t1, vm
  st.d t0, [t1]

  addi s0, s0, 1
  slti t0, s0, )" << L << R"(
  bne t0, t8, seq_loop

  ; best final score over match/delete states + row checksum
  li s4, )" << NEG << R"(
  movi t0, 1
  movi s5, 0
best:
  shli t1, t0, 3
  la t2, vm
  add t2, t2, t1
  ld.d t3, [t2]
  add s5, s5, t3
  bge s4, t3, nb
  mov s4, t3
nb:
  addi t0, t0, 1
  slti t1, t0, )" << (M + 1) << R"(
  bne t1, t8, best
  out.d s4
  out.d s5
  halt 0
)";
    w.source = os.str();

    // Reference DP with identical structure.
    std::vector<std::int64_t> vm(M + 1, NEG), vi(M + 1, NEG),
        vd(M + 1, NEG);
    vm[0] = 0;
    for (unsigned i = 0; i < L; ++i) {
        const std::int64_t sym = m.seq[i];
        std::vector<std::int64_t> nm(M + 1, NEG), ni(M + 1, NEG),
            nd(M + 1, NEG);
        for (unsigned k = 1; k <= M; ++k) {
            std::int64_t best = vm[k - 1] + m.tmm[k - 1];
            best = std::max(best, vi[k - 1] + m.tim[k - 1]);
            best = std::max(best, vd[k - 1] + m.tdm[k - 1]);
            nm[k] = best + m.match[(k - 1) * ALPHA + sym];
            std::int64_t ib = vm[k] + m.tmi[k - 1];
            ib = std::max(ib, vi[k] + m.tii[k - 1]);
            ni[k] = ib + m.insert[(k - 1) * ALPHA + sym];
            nd[k] = std::max(nm[k - 1] + m.tmd[k - 1],
                             nd[k - 1] + m.tdd[k - 1]);
        }
        vm = nm;
        vi = ni;
        vd = nd;
        vm[0] = NEG;
    }
    std::int64_t best = NEG;
    std::int64_t sum = 0;
    for (unsigned k = 1; k <= M; ++k) {
        sum += vm[k];
        best = std::max(best, vm[k]);
    }
    outD(w.expected, static_cast<std::uint64_t>(best));
    outD(w.expected, static_cast<std::uint64_t>(sum));
    return w;
}

} // namespace merlin::workloads
