/**
 * @file
 * astar (SPEC-like): A* pathfinding on a 24x24 obstacle grid with a
 * Manhattan heuristic — open-set scanning, neighbour relaxation and
 * data-dependent control flow of pathfinding engines.
 */

#include <cstdlib>
#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned G = 24;
constexpr unsigned CELLS = G * G;
constexpr std::int64_t INF = 1'000'000;

std::vector<std::uint8_t>
makeGrid()
{
    std::vector<std::uint8_t> g(CELLS, 0);
    for (unsigned i = 0; i < CELLS; ++i)
        g[i] = (mix64(i * 53 + 9) % 100) < 28; // ~28% obstacles
    // Keep start and goal free, plus a thin guaranteed corridor.
    g[0] = 0;
    g[CELLS - 1] = 0;
    for (unsigned i = 0; i < G; ++i) {
        g[(G / 2) * G + i] = 0; // middle row
        g[i * G + (G / 2)] = 0; // middle column
    }
    return g;
}

} // namespace

WorkloadSource
wlAstar()
{
    WorkloadSource w;
    w.description = "A* on a 24x24 grid, Manhattan heuristic";
    w.window = 25'000;

    auto grid = makeGrid();

    std::ostringstream os;
    os << ".data\n"
       << byteTable("grid", grid) << ".align 8\n"
       << "gs: .space " << CELLS * 8 << "\n"   // g-scores
       << "fs: .space " << CELLS * 8 << "\n"   // f-scores
       << "open: .space " << CELLS << "\n"
       << "closed: .space " << CELLS << "\n"
       << ".text\n";
    // s0 = grid, s1 = gs, s2 = fs, s3 = open, s4 = closed,
    // s5 = expansions, s6 = current cell, t8 = 0.
    os << R"(_start:
  la s0, grid
  la s1, gs
  la s2, fs
  la s3, open
  la s4, closed
  movi s5, 0
  ; init scores to INF
  movi t0, 0
  li t1, )" << INF << R"(
init:
  shli t2, t0, 3
  add t3, t2, s1
  st.d t1, [t3]
  add t3, t2, s2
  st.d t1, [t3]
  addi t0, t0, 1
  slti t2, t0, )" << CELLS << R"(
  bne t2, t8, init
  ; start: g=0, f=h(start), open
  st.d t8, [s1]
  movi t0, )" << 2 * (G - 1) << R"(
  st.d t0, [s2]
  movi t0, 1
  st.b t0, [s3]

search_loop:
  ; ---- find open cell with smallest f (linear scan) ----
  movi s6, -1
  li s7, )" << INF + 1 << R"(
  movi t0, 0
scan:
  add t1, s3, t0
  ld.bu t2, [t1]
  beq t2, t8, scan_next
  shli t1, t0, 3
  add t1, t1, s2
  ld.d t3, [t1]
  bge t3, s7, scan_next
  mov s7, t3
  mov s6, t0
scan_next:
  addi t0, t0, 1
  slti t1, t0, )" << CELLS << R"(
  bne t1, t8, scan
  ; no open node: unreachable
  blt s6, t8, no_path
  ; goal?
  movi t0, )" << (CELLS - 1) << R"(
  beq s6, t0, found
  ; close current
  add t0, s3, s6
  st.b t8, [t0]
  add t0, s4, s6
  movi t1, 1
  st.b t1, [t0]
  addi s5, s5, 1
  ; ---- relax 4 neighbours ----
  ; up
  movi t0, )" << G << R"(
  blt s6, t0, n_up
  sub a0, s6, t0
  call relax
n_up:
  ; down
  movi t0, )" << (CELLS - G) << R"(
  bge s6, t0, n_down
  addi a0, s6, )" << G << R"(
  call relax
n_down:
  ; left
  movi t0, )" << G << R"(
  rem t1, s6, t0
  beq t1, t8, n_left
  addi a0, s6, -1
  call relax
n_left:
  ; right
  movi t0, )" << G << R"(
  rem t1, s6, t0
  movi t2, )" << (G - 1) << R"(
  beq t1, t2, n_right
  addi a0, s6, 1
  call relax
n_right:
  jmp search_loop

found:
  shli t0, s6, 3
  add t0, t0, s1
  ld.d t1, [t0]
  out.d t1               ; path cost
  out.d s5               ; expansions
  ; g-score checksum
  movi t0, 0
  movi t2, 0
gsum:
  shli t3, t0, 3
  add t3, t3, s1
  ld.d t4, [t3]
  li t5, )" << INF << R"(
  beq t4, t5, gskip
  add t2, t2, t4
gskip:
  addi t0, t0, 1
  slti t3, t0, )" << CELLS << R"(
  bne t3, t8, gsum
  out.d t2
  halt 0
no_path:
  movi t0, -1
  out.d t0
  out.d s5
  out.d t8
  halt 0

; relax(a0 = neighbour): skip obstacles/closed; improve g via current
relax:
  add t3, s0, a0
  ld.bu t4, [t3]
  bne t4, t8, r_ret      ; obstacle
  add t3, s4, a0
  ld.bu t4, [t3]
  bne t4, t8, r_ret      ; closed
  ; tentative g = g[current] + 1
  shli t3, s6, 3
  add t3, t3, s1
  ld.d t4, [t3]
  addi t4, t4, 1
  shli t3, a0, 3
  add t3, t3, s1
  ld.d t5, [t3]
  bge t4, t5, r_ret      ; not an improvement
  st.d t4, [t3]
  ; f = g + manhattan(goal)
  movi t5, )" << G << R"(
  divu t6, a0, t5
  remu t7, a0, t5
  movi t3, )" << (G - 1) << R"(
  sub t6, t3, t6
  sub t7, t3, t7
  add t6, t6, t7
  add t6, t6, t4
  shli t3, a0, 3
  add t3, t3, s2
  st.d t6, [t3]
  add t3, s3, a0
  movi t4, 1
  st.b t4, [t3]          ; (re)open
r_ret:
  ret
)";
    w.source = os.str();

    // ---- reference ----
    std::vector<std::int64_t> gsc(CELLS, INF), fsc(CELLS, INF);
    std::vector<std::uint8_t> open(CELLS, 0), closed(CELLS, 0);
    gsc[0] = 0;
    fsc[0] = 2 * (G - 1);
    open[0] = 1;
    std::uint64_t expansions = 0;
    std::int64_t path_cost = -1;
    for (;;) {
        std::int64_t cur = -1, bestf = INF + 1;
        for (unsigned i = 0; i < CELLS; ++i) {
            if (open[i] && fsc[i] < bestf) {
                bestf = fsc[i];
                cur = i;
            }
        }
        if (cur < 0)
            break;
        if (cur == CELLS - 1) {
            path_cost = gsc[cur];
            break;
        }
        open[cur] = 0;
        closed[cur] = 1;
        ++expansions;
        auto relax = [&](unsigned n) {
            if (grid[n] || closed[n])
                return;
            std::int64_t t = gsc[cur] + 1;
            if (t >= gsc[n])
                return;
            gsc[n] = t;
            std::int64_t h = (G - 1 - n / G) + (G - 1 - n % G);
            fsc[n] = t + h;
            open[n] = 1;
        };
        unsigned c = static_cast<unsigned>(cur);
        if (c >= G)
            relax(c - G);
        if (c < CELLS - G)
            relax(c + G);
        if (c % G != 0)
            relax(c - 1);
        if (c % G != G - 1)
            relax(c + 1);
    }
    outD(w.expected, static_cast<std::uint64_t>(path_cost));
    outD(w.expected, expansions);
    std::uint64_t gsum = 0;
    if (path_cost >= 0) {
        for (unsigned i = 0; i < CELLS; ++i)
            if (gsc[i] != INF)
                gsum += static_cast<std::uint64_t>(gsc[i]);
    } else {
        gsum = 0;
    }
    outD(w.expected, gsum);
    return w;
}

} // namespace merlin::workloads
