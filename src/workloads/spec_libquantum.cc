/**
 * @file
 * libquantum (SPEC-like): gate operations over a 256-amplitude quantum
 * register in integer arithmetic — NOT / CNOT permutations and
 * Hadamard-style butterflies, the regular-strided update pattern of
 * quantum simulation.
 */

#include <sstream>
#include <vector>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned QUBITS = 8;
constexpr unsigned STATES = 1u << QUBITS;
constexpr unsigned GATES = 48;

/** Gate program: (kind, target, control) triples. */
std::vector<std::int64_t>
gateProgram()
{
    std::vector<std::int64_t> g;
    for (unsigned i = 0; i < GATES; ++i) {
        const std::uint64_t r = mix64(i * 131 + 17);
        const std::int64_t kind = static_cast<std::int64_t>(r % 3);
        const std::int64_t target =
            static_cast<std::int64_t>((r >> 8) % QUBITS);
        std::int64_t control =
            static_cast<std::int64_t>((r >> 16) % QUBITS);
        if (control == target)
            control = (control + 1) % QUBITS;
        g.push_back(kind);
        g.push_back(target);
        g.push_back(control);
    }
    return g;
}

std::vector<std::int64_t>
initialState()
{
    std::vector<std::int64_t> amp(STATES);
    for (unsigned i = 0; i < STATES; ++i)
        amp[i] = static_cast<std::int64_t>(mix64(i + 321) % 4096) - 2048;
    return amp;
}

} // namespace

WorkloadSource
wlLibquantum()
{
    WorkloadSource w;
    w.description = "48 gates (X/CNOT/H-butterfly) on 256 amplitudes";
    w.window = 25'000;

    auto gates = gateProgram();
    auto amp0 = initialState();

    std::ostringstream os;
    os << ".data\n"
       << quadTable("gates", gates) << quadTable("amp", amp0)
       << ".text\n";
    // s0 = amp, s1 = gate index.
    os << R"(_start:
  la s0, amp
  movi s1, 0
gate_loop:
  movi t0, 24
  mul t0, s1, t0
  la t1, gates
  add t1, t1, t0
  ld.d s2, [t1]          ; kind
  ld.d s3, [t1+8]        ; target
  ld.d s4, [t1+16]       ; control
  movi s5, 1
  shl s5, s5, s3         ; target mask
  movi s6, 1
  shl s6, s6, s4         ; control mask
  movi s7, 0             ; state index
state_loop:
  ; only visit states with target bit 0 (pair base)
  and t0, s7, s5
  bne t0, t8, next_state
  or t1, s7, s5          ; partner
  beq s2, t8, g_not
  movi t0, 1
  beq s2, t0, g_cnot
  ; ---- Hadamard-style butterfly: (a, b) <- (a+b, a-b) ----
  shli t2, s7, 3
  add t2, t2, s0
  shli t3, t1, 3
  add t3, t3, s0
  ld.d t4, [t2]
  ld.d t5, [t3]
  add t6, t4, t5
  sub t7, t4, t5
  srai t6, t6, 1
  srai t7, t7, 1
  st.d t6, [t2]
  st.d t7, [t3]
  jmp next_state
g_not:
  ; ---- X gate: swap the pair ----
  shli t2, s7, 3
  add t2, t2, s0
  shli t3, t1, 3
  add t3, t3, s0
  ld.d t4, [t2]
  ld.d t5, [t3]
  st.d t5, [t2]
  st.d t4, [t3]
  jmp next_state
g_cnot:
  ; ---- CNOT: swap only when the control bit is set ----
  and t0, s7, s6
  beq t0, t8, next_state
  shli t2, s7, 3
  add t2, t2, s0
  shli t3, t1, 3
  add t3, t3, s0
  ld.d t4, [t2]
  ld.d t5, [t3]
  st.d t5, [t2]
  st.d t4, [t3]
next_state:
  addi s7, s7, 1
  slti t0, s7, )" << STATES << R"(
  bne t0, t8, state_loop
  addi s1, s1, 1
  slti t0, s1, )" << GATES << R"(
  bne t0, t8, gate_loop

  ; checksum
  movi t0, 0
  movi t1, 0
  movi t2, 0
sum:
  shli t3, t0, 3
  add t3, t3, s0
  ld.d t4, [t3]
  add t1, t1, t4
  mul t5, t4, t0
  xor t2, t2, t5
  addi t0, t0, 1
  slti t3, t0, )" << STATES << R"(
  bne t3, t8, sum
  out.d t1
  out.d t2
  halt 0
)";
    w.source = os.str();

    // Reference.
    auto amp = amp0;
    for (unsigned g = 0; g < GATES; ++g) {
        const std::int64_t kind = gates[3 * g];
        const unsigned target = static_cast<unsigned>(gates[3 * g + 1]);
        const unsigned control = static_cast<unsigned>(gates[3 * g + 2]);
        const unsigned tmask = 1u << target;
        const unsigned cmask = 1u << control;
        for (unsigned s = 0; s < STATES; ++s) {
            if (s & tmask)
                continue;
            const unsigned partner = s | tmask;
            if (kind == 0) {
                std::swap(amp[s], amp[partner]);
            } else if (kind == 1) {
                if (s & cmask)
                    std::swap(amp[s], amp[partner]);
            } else {
                const std::int64_t a = amp[s], b = amp[partner];
                amp[s] = (a + b) >> 1;
                amp[partner] = (a - b) >> 1;
            }
        }
    }
    std::uint64_t sum = 0, mixv = 0;
    for (unsigned i = 0; i < STATES; ++i) {
        sum += static_cast<std::uint64_t>(amp[i]);
        mixv ^= static_cast<std::uint64_t>(amp[i]) * i;
    }
    outD(w.expected, sum);
    outD(w.expected, mixv);
    return w;
}

} // namespace merlin::workloads
