/**
 * @file
 * Internal declarations of the per-workload builders.  Each builder
 * returns the assembly source (with generated data tables embedded), the
 * expected full-run output computed by a mirrored C++ reference
 * implementation, and the suggested SimPoint-style window for the
 * SPEC-like kernels.
 */

#ifndef MERLIN_WORKLOADS_SUITE_HH
#define MERLIN_WORKLOADS_SUITE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace merlin::workloads
{

struct WorkloadSource
{
    std::string source;
    std::vector<std::uint8_t> expected;
    std::uint64_t window = 0; ///< 0 = run to completion
    const char *description = "";
};

// MiBench-like (run to completion).
WorkloadSource wlQsort();
WorkloadSource wlSha();
WorkloadSource wlStringsearch();
WorkloadSource wlFft();
WorkloadSource wlSusanS();
WorkloadSource wlSusanE();
WorkloadSource wlSusanC();
WorkloadSource wlDjpeg();
WorkloadSource wlCjpeg();
WorkloadSource wlCaes();

// SPEC-CPU2006-like (windowed).
WorkloadSource wlBzip2();
WorkloadSource wlGcc();
WorkloadSource wlMcf();
WorkloadSource wlGobmk();
WorkloadSource wlHmmer();
WorkloadSource wlSjeng();
WorkloadSource wlLibquantum();
WorkloadSource wlH264ref();
WorkloadSource wlOmnetpp();
WorkloadSource wlAstar();

} // namespace merlin::workloads

#endif // MERLIN_WORKLOADS_SUITE_HH
