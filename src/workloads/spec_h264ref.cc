/**
 * @file
 * h264ref (SPEC-like): full-search motion estimation — SAD (sum of
 * absolute differences) of an 8x8 block against a +/-8 search window in
 * a reference frame, the inner loop of video encoders.
 */

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned FRAME = 48;   // reference frame is FRAME x FRAME
constexpr unsigned BS = 8;       // block size
constexpr int RANGE = 8;         // search +/- RANGE
constexpr unsigned CUR_X = 20, CUR_Y = 20;

std::vector<std::uint8_t>
makeFrame(std::uint64_t salt)
{
    std::vector<std::uint8_t> f(FRAME * FRAME);
    for (unsigned y = 0; y < FRAME; ++y)
        for (unsigned x = 0; x < FRAME; ++x)
            f[y * FRAME + x] = static_cast<std::uint8_t>(
                128 + 64 * std::sin(0.3 * x) * std::cos(0.23 * y) +
                static_cast<int>(mix64(salt + y * FRAME + x) % 17) - 8);
    return f;
}

} // namespace

WorkloadSource
wlH264ref()
{
    WorkloadSource w;
    w.description = "8x8 full-search motion estimation, +/-8 window";
    w.window = 25'000;

    auto ref = makeFrame(1);
    // Current block: the reference shifted by a known motion + noise.
    std::vector<std::uint8_t> cur(BS * BS);
    for (unsigned y = 0; y < BS; ++y) {
        for (unsigned x = 0; x < BS; ++x) {
            cur[y * BS + x] = static_cast<std::uint8_t>(
                ref[(CUR_Y + 3 + y) * FRAME + (CUR_X - 2 + x)] +
                static_cast<int>(mix64(y * BS + x) % 5) - 2);
        }
    }

    std::ostringstream os;
    os << ".data\n"
       << byteTable("ref", ref) << byteTable("cur", cur) << ".align 8\n"
       << "sadlog: .space " << (2 * RANGE + 1) * (2 * RANGE + 1) * 8
       << "\n.text\n";
    // s0 = ref, s1 = cur, s2 = best SAD, s3 = best dx, s4 = best dy,
    // s5 = dy, s6 = dx, s7 = SAD accumulator.
    os << R"(_start:
  la s0, ref
  la s1, cur
  li s2, 99999999
  movi s3, 0
  movi s4, 0
  movi s5, -)" << RANGE << R"(
dy_loop:
  movi s6, -)" << RANGE << R"(
dx_loop:
  movi s7, 0             ; SAD
  movi t9, 0             ; y
sad_y:
  movi t7, 0             ; x
sad_x:
  ; ref pixel at (CUR_Y+dy+y)*FRAME + CUR_X+dx+x
  movi t0, )" << CUR_Y << R"(
  add t0, t0, s5
  add t0, t0, t9
  movi t1, )" << FRAME << R"(
  mul t0, t0, t1
  movi t1, )" << CUR_X << R"(
  add t0, t0, t1
  add t0, t0, s6
  add t0, t0, t7
  add t0, t0, s0
  ld.bu t2, [t0]
  ; cur pixel
  shli t0, t9, 3
  add t0, t0, t7
  add t0, t0, s1
  ld.bu t3, [t0]
  sub t4, t2, t3
  bge t4, t8, posd
  sub t4, t8, t4
posd:
  add s7, s7, t4
  ; early exit when SAD already exceeds the best
  blt s7, s2, no_abort
  jmp cand_done
no_abort:
  addi t7, t7, 1
  slti t0, t7, )" << BS << R"(
  bne t0, t8, sad_x
  addi t9, t9, 1
  slti t0, t9, )" << BS << R"(
  bne t0, t8, sad_y
  ; new best?
  bge s7, s2, cand_done
  mov s2, s7
  mov s3, s6
  mov s4, s5
cand_done:
  ; record the candidate SAD in the motion-field log (encoders keep
  ; these for rate-distortion decisions); gives the search store traffic
  movi t0, )" << (2 * RANGE + 1) << R"(
  addi t1, s5, )" << RANGE << R"(
  mul t0, t1, t0
  addi t1, s6, )" << RANGE << R"(
  add t0, t0, t1
  shli t0, t0, 3
  la t1, sadlog
  add t0, t0, t1
  st.d s7, [t0]
  addi s6, s6, 1
  movi t0, )" << (RANGE + 1) << R"(
  blt s6, t0, dx_loop
  addi s5, s5, 1
  movi t0, )" << (RANGE + 1) << R"(
  blt s5, t0, dy_loop
  out.d s2
  out.d s3
  out.d s4
  halt 0
)";
    w.source = os.str();

    // Reference with the same early-abort structure.
    std::int64_t best = 99999999, bdx = 0, bdy = 0;
    for (int dy = -RANGE; dy <= RANGE; ++dy) {
        for (int dx = -RANGE; dx <= RANGE; ++dx) {
            std::int64_t sad = 0;
            bool aborted = false;
            for (unsigned y = 0; y < BS && !aborted; ++y) {
                for (unsigned x = 0; x < BS; ++x) {
                    int rp = ref[(CUR_Y + dy + y) * FRAME +
                                 (CUR_X + dx + x)];
                    int cp = cur[y * BS + x];
                    sad += std::abs(rp - cp);
                    if (sad >= best) {
                        aborted = true;
                        break;
                    }
                }
            }
            if (!aborted && sad < best) {
                best = sad;
                bdx = dx;
                bdy = dy;
            }
        }
    }
    outD(w.expected, static_cast<std::uint64_t>(best));
    outD(w.expected, static_cast<std::uint64_t>(bdx));
    outD(w.expected, static_cast<std::uint64_t>(bdy));
    return w;
}

} // namespace merlin::workloads
