/**
 * @file
 * fft (MiBench-like): 64-point iterative radix-2 FFT in Q15 fixed point
 * with precomputed twiddle tables.
 */

#include <cmath>
#include <sstream>

#include "workloads/emit.hh"
#include "workloads/suite.hh"

namespace merlin::workloads
{

namespace
{

constexpr unsigned N = 64;
constexpr unsigned LOG2N = 6;

std::vector<std::int64_t>
inputSignal(bool imag)
{
    std::vector<std::int64_t> v(N);
    for (unsigned i = 0; i < N; ++i) {
        // A couple of tones plus pseudo-noise, Q15 range.
        double t = 2.0 * M_PI * static_cast<double>(i) / N;
        double s = 0.4 * std::sin(3 * t) + 0.25 * std::cos(7 * t);
        std::int64_t noise =
            static_cast<std::int64_t>(mix64(i + (imag ? 999 : 1)) % 2048) -
            1024;
        v[i] = static_cast<std::int64_t>(s * 32767.0) + (imag ? 0 : noise);
    }
    return v;
}

std::vector<std::int64_t>
twiddle(bool imag)
{
    std::vector<std::int64_t> v(N / 2);
    for (unsigned i = 0; i < N / 2; ++i) {
        double a = -2.0 * M_PI * static_cast<double>(i) / N;
        v[i] = static_cast<std::int64_t>(
            std::lround((imag ? std::sin(a) : std::cos(a)) * 32767.0));
    }
    return v;
}

unsigned
bitrev(unsigned x, unsigned bits)
{
    unsigned r = 0;
    for (unsigned i = 0; i < bits; ++i)
        r |= ((x >> i) & 1) << (bits - 1 - i);
    return r;
}

/** Reference FFT identical in structure to the assembly. */
void
refFft(std::vector<std::int64_t> &re, std::vector<std::int64_t> &im,
       const std::vector<std::int64_t> &wr,
       const std::vector<std::int64_t> &wi)
{
    for (unsigned i = 0; i < N; ++i) {
        unsigned j = bitrev(i, LOG2N);
        if (j > i) {
            std::swap(re[i], re[j]);
            std::swap(im[i], im[j]);
        }
    }
    for (unsigned len = 2; len <= N; len <<= 1) {
        const unsigned half = len / 2;
        const unsigned step = N / len;
        for (unsigned base = 0; base < N; base += len) {
            for (unsigned k = 0; k < half; ++k) {
                const unsigned tw = k * step;
                const std::int64_t cr = wr[tw], ci = wi[tw];
                const unsigned a = base + k, b = base + k + half;
                const std::int64_t tr = (re[b] * cr - im[b] * ci) >> 15;
                const std::int64_t ti = (re[b] * ci + im[b] * cr) >> 15;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] = re[a] + tr;
                im[a] = im[a] + ti;
            }
        }
    }
}

} // namespace

WorkloadSource
wlFft()
{
    WorkloadSource w;
    w.description = "64-point radix-2 FFT, Q15 fixed point";

    auto re = inputSignal(false);
    auto im = inputSignal(true);
    auto wr = twiddle(false);
    auto wi = twiddle(true);

    std::vector<std::int64_t> brtab(N);
    for (unsigned i = 0; i < N; ++i)
        brtab[i] = bitrev(i, LOG2N);

    std::ostringstream os;
    os << ".data\n"
       << quadTable("re", re) << quadTable("im", im)
       << quadTable("wr", wr) << quadTable("wi", wi)
       << quadTable("brtab", brtab) << ".text\n";
    // s0 = re, s1 = im, s2 = wr, s3 = wi, t8 = 0.
    os << R"(_start:
  la s0, re
  la s1, im
  la s2, wr
  la s3, wi
  ; ---- bit-reversal permutation ----
  la t0, brtab
  movi t1, 0
brl:
  shli t2, t1, 3
  add t3, t2, t0
  ld.d t4, [t3]          ; j
  bge t1, t4, brskip     ; only swap when j > i
  shli t5, t4, 3
  add t6, t2, s0
  add t7, t5, s0
  ld.d t9, [t6]
  ld.d s4, [t7]
  st.d s4, [t6]
  st.d t9, [t7]
  add t6, t2, s1
  add t7, t5, s1
  ld.d t9, [t6]
  ld.d s4, [t7]
  st.d s4, [t6]
  st.d t9, [t7]
brskip:
  addi t1, t1, 1
  slti t2, t1, )" << N << R"(
  bne t2, t8, brl

  ; ---- butterfly stages: s5 = len ----
  movi s5, 2
stage:
  shri s6, s5, 1         ; half
  movi s7, )" << N << R"(
  divu s7, s7, s5        ; step = N / len
  movi s8, 0             ; base
base_loop:
  movi s9, 0             ; k
k_loop:
  mul t0, s9, s7         ; tw index
  shli t0, t0, 3
  add t1, t0, s2
  ld.d t2, [t1]          ; cr
  add t1, t0, s3
  ld.d t3, [t1]          ; ci
  add t4, s8, s9         ; a
  add t5, t4, s6         ; b
  shli t4, t4, 3
  shli t5, t5, 3
  add t6, t5, s0
  ld.d t7, [t6]          ; re[b]
  add t6, t5, s1
  ld.d t9, [t6]          ; im[b]
  ; tr = (re[b]*cr - im[b]*ci) >> 15
  mul t0, t7, t2
  mul t1, t9, t3
  sub t0, t0, t1
  srai t0, t0, 15
  ; ti = (re[b]*ci + im[b]*cr) >> 15
  mul t1, t7, t3
  mul t6, t9, t2
  add t1, t1, t6
  srai t1, t1, 15
  ; update
  add t6, t4, s0
  ld.d t7, [t6]          ; re[a]
  sub t9, t7, t0
  add t7, t7, t0
  st.d t7, [t6]
  add t6, t5, s0
  st.d t9, [t6]
  add t6, t4, s1
  ld.d t7, [t6]          ; im[a]
  sub t9, t7, t1
  add t7, t7, t1
  st.d t7, [t6]
  add t6, t5, s1
  st.d t9, [t6]
  addi s9, s9, 1
  blt s9, s6, k_loop
  add s8, s8, s5
  movi t0, )" << N << R"(
  blt s8, t0, base_loop
  shli s5, s5, 1
  movi t0, )" << N << R"(
  bge t0, s5, stage

  ; ---- spectrum checksum ----
  movi t0, 0
  movi t1, 0             ; sum
  movi t2, 0             ; xor mix
sum_loop:
  shli t3, t0, 3
  add t4, t3, s0
  ld.d t5, [t4]
  add t4, t3, s1
  ld.d t6, [t4]
  mul t7, t5, t5
  mul t9, t6, t6
  add t7, t7, t9
  add t1, t1, t7         ; power sum
  xor t2, t2, t7
  addi t0, t0, 1
  slti t3, t0, )" << N << R"(
  bne t3, t8, sum_loop
  out.d t1
  out.d t2
  ; a few raw bins
  ld.d t0, [s0+24]
  out.d t0
  ld.d t0, [s1+56]
  out.d t0
  halt 0
)";
    w.source = os.str();

    refFft(re, im, wr, wi);
    std::uint64_t sum = 0, mixv = 0;
    for (unsigned i = 0; i < N; ++i) {
        std::uint64_t p = static_cast<std::uint64_t>(re[i] * re[i]) +
                          static_cast<std::uint64_t>(im[i] * im[i]);
        sum += p;
        mixv ^= p;
    }
    outD(w.expected, sum);
    outD(w.expected, mixv);
    outD(w.expected, static_cast<std::uint64_t>(re[3]));
    outD(w.expected, static_cast<std::uint64_t>(im[7]));
    return w;
}

} // namespace merlin::workloads
