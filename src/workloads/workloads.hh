/**
 * @file
 * The benchmark suite of the reproduction.
 *
 * Ten MiBench-like kernels (run to completion, as in the paper's
 * accuracy experiments) and ten SPEC-CPU2006-like kernels (evaluated on
 * a SimPoint-style instruction window, as in the paper's Section 4.4.2.3
 * and Table 4).  Each workload mirrors the computational core of its
 * namesake, is written in MRL-64 assembly with tables generated at build
 * time, and is validated against a C++ reference implementation.
 */

#ifndef MERLIN_WORKLOADS_WORKLOADS_HH
#define MERLIN_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace merlin::workloads
{

/** A ready-to-run workload. */
struct BuiltWorkload
{
    isa::Program program;
    /** Full-run output stream per the C++ reference implementation. */
    std::vector<std::uint8_t> expectedOutput;
    /** SimPoint-style window (committed instructions); 0 = run to end. */
    std::uint64_t suggestedWindow = 0;
    std::string description;
};

/** The 10 MiBench-like workloads (Figures 6-11, 13-17). */
const std::vector<std::string> &mibenchWorkloads();

/** The 10 SPEC-CPU2006-like workloads (Figure 12, Table 4). */
const std::vector<std::string> &specWorkloads();

/** All 20 names. */
std::vector<std::string> allWorkloadNames();

/** Assemble a workload and compute its reference output. */
BuiltWorkload buildWorkload(const std::string &name);

} // namespace merlin::workloads

#endif // MERLIN_WORKLOADS_WORKLOADS_HH
