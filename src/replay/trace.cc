#include "replay/trace.hh"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>

#include "base/logging.hh"

namespace merlin::replay
{

namespace
{

constexpr char kMagic[8] = {'M', 'R', 'L', 'N', 'E', 'F', 'T', '1'};

void
writeRaw(std::ostream &out, const void *p, std::size_t n)
{
    out.write(static_cast<const char *>(p),
              static_cast<std::streamsize>(n));
}

void
readRaw(std::istream &in, void *p, std::size_t n, const std::string &what,
        const char *field)
{
    in.read(static_cast<char *>(p), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in.gcount()) != n) {
        fatal("effect trace ", what, ": truncated while reading ", field,
              " (wanted ", n, " bytes, got ", in.gcount(),
              ") — the trace was cut short and cannot drive replay; "
              "re-record the golden run");
    }
}

} // namespace

EffectTrace::EffectTrace(unsigned rf_entries, unsigned sq_entries,
                         unsigned l1d_words)
    : counts_{rf_entries, sq_entries, l1d_words}
{
    base_[0] = 0;
    base_[1] = counts_[0];
    base_[2] = base_[1] + counts_[1];
    events_.resize(base_[2] + counts_[2]);
}

std::size_t
EffectTrace::slotOf(uarch::Structure s, EntryIndex entry) const
{
    const auto si = static_cast<std::size_t>(s);
    MERLIN_ASSERT(si < 3 && entry < counts_[si],
                  "effect-trace entry out of range");
    return base_[si] + entry;
}

void
EffectTrace::onEffect(uarch::Structure s, EntryIndex entry, Cycle cycle,
                      std::uint8_t byte_mask, bool is_write)
{
    MERLIN_ASSERT(cycle < (1ULL << (64 - kCycleShift)),
                  "effect-trace cycle overflow");
    std::vector<std::uint64_t> &v = events_[slotOf(s, entry)];
    MERLIN_ASSERT(v.empty() || (v.back() >> kCycleShift) <= cycle,
                  "effect-trace events must arrive in cycle order");
    v.push_back((cycle << kCycleShift) |
                (static_cast<std::uint64_t>(byte_mask) << 1) |
                (is_write ? 1u : 0u));
}

FirstTouch
EffectTrace::firstTouch(uarch::Structure s, EntryIndex entry,
                        unsigned bit, Cycle from) const
{
    const std::vector<std::uint64_t> &v = events_[slotOf(s, entry)];
    const std::uint64_t byte_bit = 1ULL << (bit / 8 + 1); // mask field
    auto it = std::lower_bound(
        v.begin(), v.end(), from,
        [](std::uint64_t ev, Cycle c) { return (ev >> kCycleShift) < c; });
    for (; it != v.end(); ++it) {
        if (*it & byte_bit) {
            return FirstTouch{(*it & 1u) ? Touch::Killed : Touch::Diverged,
                              *it >> kCycleShift};
        }
    }
    return FirstTouch{};
}

unsigned
EffectTrace::entries(uarch::Structure s) const
{
    return counts_[static_cast<std::size_t>(s)];
}

std::uint64_t
EffectTrace::numEvents() const
{
    return std::accumulate(events_.begin(), events_.end(),
                           std::uint64_t{0},
                           [](std::uint64_t n, const auto &v) {
                               return n + v.size();
                           });
}

std::uint64_t
EffectTrace::memoryBytes() const
{
    std::uint64_t n = events_.size() * sizeof(events_[0]);
    for (const auto &v : events_)
        n += v.capacity() * sizeof(std::uint64_t);
    return n;
}

void
EffectTrace::serialize(std::ostream &out) const
{
    writeRaw(out, kMagic, sizeof(kMagic));
    for (std::uint32_t c : counts_)
        writeRaw(out, &c, sizeof(c));
    for (const auto &v : events_) {
        const std::uint64_t n = v.size();
        writeRaw(out, &n, sizeof(n));
        if (n)
            writeRaw(out, v.data(), n * sizeof(std::uint64_t));
    }
}

EffectTrace
EffectTrace::deserialize(std::istream &in, const std::string &what)
{
    char magic[8];
    readRaw(in, magic, sizeof(magic), what, "magic");
    if (!std::equal(std::begin(magic), std::end(magic),
                    std::begin(kMagic))) {
        fatal("effect trace ", what,
              ": bad magic — not an effect trace, or written by an "
              "incompatible build");
    }
    std::uint32_t counts[3];
    for (std::uint32_t &c : counts)
        readRaw(in, &c, sizeof(c), what, "entry counts");
    EffectTrace t(counts[0], counts[1], counts[2]);
    for (std::size_t slot = 0; slot < t.events_.size(); ++slot) {
        std::uint64_t n = 0;
        readRaw(in, &n, sizeof(n), what, "event count");
        if (n) {
            t.events_[slot].resize(n);
            readRaw(in, t.events_[slot].data(),
                    n * sizeof(std::uint64_t), what, "events");
        }
    }
    return t;
}

bool
EffectTrace::operator==(const EffectTrace &o) const
{
    return counts_ == o.counts_ && events_ == o.events_;
}

} // namespace merlin::replay
