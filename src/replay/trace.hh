/**
 * @file
 * Golden-run effect trace: the record that powers the replay fast path.
 *
 * The golden run is executed once with an EffectSink attached; every
 * physical touch of a target-structure byte (reads at consumption time,
 * writes at overwrite time — wrong-path and scheduling accesses
 * included) lands here as one packed event per (structure, entry).
 *
 * An injection then asks one question: starting from the flip cycle,
 * what is the FIRST recorded event that covers the flipped byte?
 *
 *  - none, and the run is not windowed: the byte is never consumed nor
 *    rewritten, so the faulty run's observable behaviour is the golden
 *    run's — Masked without simulating a single cycle;
 *  - a write: the flip is overwritten with data derived only from
 *    un-flipped state before anything reads it — the fault is dead,
 *    Masked (valid even for windowed runs);
 *  - a read at cycle D: the flip's first architectural consequence is
 *    at D, so full simulation can start from any golden checkpoint in
 *    [flip, D] with the flip applied at restore, skipping the whole
 *    pre-divergence head.
 *
 * Soundness rests on an asymmetry in how the core reports events:
 * reads may be over-reported (a spurious read only costs a handoff
 * into full simulation, never a wrong outcome), while writes are
 * reported exactly when bytes are overwritten independently of their
 * prior content.
 */

#ifndef MERLIN_REPLAY_TRACE_HH
#define MERLIN_REPLAY_TRACE_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.hh"
#include "uarch/probe.hh"

namespace merlin::replay
{

/** How (and when) the golden run first touches a flipped byte. */
enum class Touch : std::uint8_t
{
    None,     ///< never touched at or after the flip cycle
    Killed,   ///< first touch overwrites it: the fault cannot propagate
    Diverged, ///< first touch reads it: first architectural consequence
};

struct FirstTouch
{
    Touch kind = Touch::None;
    Cycle cycle = 0; ///< cycle of the deciding event (Killed/Diverged)
};

/**
 * Per-(structure, entry) streams of packed effect events.
 *
 * Event packing: cycle << 9 | byte_mask << 1 | is_write.  Events of one
 * entry are appended in nondecreasing cycle order (within a cycle, in
 * physical stage order), so the divergence query is a binary search to
 * the flip cycle plus a linear scan for the first covering byte mask.
 */
class EffectTrace final : public uarch::EffectSink
{
  public:
    /** Cycle budget of the packing (55 bits of cycle). */
    static constexpr unsigned kCycleShift = 9;

    EffectTrace() = default; ///< empty trace (deserialize target)

    EffectTrace(unsigned rf_entries, unsigned sq_entries,
                unsigned l1d_words);

    void onEffect(uarch::Structure s, EntryIndex entry, Cycle cycle,
                  std::uint8_t byte_mask, bool is_write) override;

    /**
     * First recorded event at cycle >= @p from that covers the byte
     * holding @p bit of @p entry.
     */
    FirstTouch firstTouch(uarch::Structure s, EntryIndex entry,
                          unsigned bit, Cycle from) const;

    /** Entry count recorded for @p s. */
    unsigned entries(uarch::Structure s) const;

    std::uint64_t numEvents() const;

    /** Approximate heap footprint of the recorded events. */
    std::uint64_t memoryBytes() const;

    /**
     * Binary round-trip.  deserialize() raises FatalError with a
     * diagnostic naming @p what on a truncated or foreign stream.
     */
    void serialize(std::ostream &out) const;
    static EffectTrace deserialize(std::istream &in,
                                   const std::string &what);

    bool operator==(const EffectTrace &o) const;

  private:
    std::size_t slotOf(uarch::Structure s, EntryIndex entry) const;

    /** Entry counts per structure, indexed by Structure value. */
    std::array<std::uint32_t, 3> counts_{};
    /** events_ offset of each structure's first entry. */
    std::array<std::size_t, 3> base_{};
    std::vector<std::vector<std::uint64_t>> events_;
};

} // namespace merlin::replay

#endif // MERLIN_REPLAY_TRACE_HH
