/** @file `merlin_cli suite | suite --plan | suite --diff | store
 *  merge`: the batch suite family. */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/strings.hh"
#include "io/result_store.hh"
#include "sched/diff.hh"
#include "sched/suite.hh"
#include "tools/cli_cmds.hh"

namespace merlin::tools
{

namespace
{

/**
 * suite --plan n: emit one manifest per worker instead of running.
 * Each output holds that worker's selection, fully resolved (defaults
 * folded in, every member explicit), so running it — with or without
 * a further --select — spills shards that merge back into exactly the
 * single-host store.
 */
int
cmdSuitePlan(const std::vector<sched::CampaignSpec> &specs,
             const Args &args)
{
    const std::uint64_t n = args.getU("plan", 0);
    if (n == 0)
        fatal("--plan: worker count must be >= 1");
    if (n > specs.size())
        fatal("--plan: ", n, " workers for ", specs.size(),
              " campaign", specs.size() == 1 ? "" : "s",
              " — at least one per-worker manifest would be empty");
    const auto mode = args.has("hash")
                          ? sched::SpecSelector::Mode::Hash
                          : sched::SpecSelector::Mode::RoundRobin;
    const std::string dir = args.get("plan-dir", "plan");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("--plan: cannot create directory '", dir,
              "': ", ec.message());

    for (std::uint64_t i = 0; i < n; ++i) {
        sched::SpecSelector sel;
        sel.mode = mode;
        sel.index = i;
        sel.count = n;
        io::Json camps = io::Json::array();
        for (std::size_t j = 0; j < specs.size(); ++j) {
            if (sel.selects(j, specs[j].key()))
                camps.push(specs[j].toJson());
        }
        if (camps.size() == 0)
            fatal("--plan: worker ", i, " of ", n, " selects no "
                  "campaigns under hash partitioning — use fewer "
                  "workers or round-robin");
        io::Json manifest = io::Json::object();
        manifest.set("campaigns", camps);
        const std::string path =
            (std::filesystem::path(dir) /
             ("worker-" + std::to_string(i) + "-of-" +
              std::to_string(n) + ".json"))
                .string();
        writeTextFile(path, manifest.dump(2) + "\n");
        std::printf("%s: %zu campaign%s (%s)\n", path.c_str(),
                    camps.size(), camps.size() == 1 ? "" : "s",
                    sel.describe().c_str());
    }
    return 0;
}

io::ResultStore
loadStore(const std::string &path)
{
    io::ResultStore store(path);
    if (!store.load())
        fatal("cannot open result store '", path, "'");
    return store;
}

} // namespace

int
cmdSuite(const std::string &manifest_path, const Args &args)
{
    std::vector<sched::CampaignSpec> specs =
        loadManifestFile(manifest_path);

    if (args.has("plan")) {
        requireKnownFlags(args, {"plan", "plan-dir", "hash"},
                          "suite --plan");
        return cmdSuitePlan(specs, args);
    }
    requireKnownFlags(args,
                      {"jobs", "out", "out-dir", "resume", "no-timing",
                       "sections", "select", "select-hash", "quarantine",
                       "inject-wall-limit", "trace", "metrics",
                       "progress", "progress-json"},
                      "suite");

    sched::SuiteOptions opts = suiteOptionsFromArgs(args);

    startTelemetry(args);
    sched::SuiteScheduler scheduler(specs, opts);
    sched::SuiteResult suite = scheduler.run();
    finishTelemetry(args);

    printSuiteReport(specs, suite, opts);
    return 0;
}

int
cmdSuiteDiff(const std::string &path_a, const std::string &path_b,
             const Args &args)
{
    requireKnownFlags(args, {"axis", "confidence", "out"},
                      "suite --diff");
    const io::ResultStore a = loadStore(path_a);
    const io::ResultStore b = loadStore(path_b);

    sched::DiffOptions dopts;
    dopts.axis = base::splitCommaList(args.get("axis"));
    dopts.confidence = args.getD("confidence", dopts.confidence);

    sched::SuiteDiffResult diff =
        sched::SuiteDiff(a, b, dopts).run();
    std::fputs(diff.table().c_str(), stdout);

    const std::string out = args.get("out");
    if (!out.empty()) {
        writeTextFile(out, diff.toJson().dump(2) + "\n");
        std::printf("diff written to %s\n", out.c_str());
    }
    return 0;
}

int
cmdStoreMerge(int argc, char **argv, int start)
{
    std::string out;
    bool force_theirs = false;
    std::vector<std::string> inputs;
    for (int i = start; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--force-theirs") {
            force_theirs = true;
        } else if (a == "--out") {
            if (++i >= argc)
                fatal("--out requires a path");
            out = argv[i];
        } else if (a.rfind("--out=", 0) == 0) {
            out = a.substr(6);
        } else if (a.rfind("--", 0) == 0) {
            fatal("store merge: unknown flag '", a, "'");
        } else {
            inputs.push_back(a);
        }
    }
    if (out.empty())
        fatal("store merge requires --out <merged.json>");
    if (inputs.empty())
        fatal("store merge requires at least one input store or "
              "shard directory");

    // The gather half of distributed dispatch, shared with the tests:
    // expand shard directories (sorted members), then fold every
    // store into one.  Worker stores carry a recorded selection;
    // merge() drops it, so the merged store is byte-identical to the
    // single-host run whatever the gather order.
    const std::vector<std::string> files = io::gatherStoreFiles(inputs);
    io::ResultStore merged(out);
    const io::ResultStore::MergeStats total =
        io::mergeStoreFiles(merged, files, force_theirs);
    merged.save();
    std::printf("merged %zu input%s -> %s: %zu campaigns "
                "(%zu added, %zu identical, %zu replaced)\n",
                files.size(), files.size() == 1 ? "" : "s",
                out.c_str(), merged.size(), total.added,
                total.identical, total.replaced);
    return 0;
}

} // namespace merlin::tools
