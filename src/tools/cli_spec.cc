#include "tools/cli_spec.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "base/logging.hh"
#include "base/parse.hh"
#include "faultsim/runner.hh"
#include "io/json.hh"
#include "isa/memory.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sched/diff.hh"

namespace merlin::tools
{

// ---------------------------------------------------------------- Args

Args
Args::parse(int argc, char **argv, int start)
{
    Args a;
    for (int i = start; i < argc; ++i) {
        std::string k = argv[i];
        if (k.rfind("--", 0) != 0)
            fatal("unexpected argument '", k, "'");
        k = k.substr(2);
        // --key=value style.
        if (const auto eq = k.find('='); eq != std::string::npos) {
            a.kv[k.substr(0, eq)] = k.substr(eq + 1);
            continue;
        }
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
            a.kv[k] = argv[++i];
        } else {
            a.kv[k] = "1"; // boolean flag
        }
    }
    return a;
}

std::string
Args::get(const std::string &k, const std::string &def) const
{
    auto it = kv.find(k);
    return it == kv.end() ? def : it->second;
}

std::uint64_t
Args::getU(const std::string &k, std::uint64_t def) const
{
    auto it = kv.find(k);
    if (it == kv.end())
        return def;
    // One strict parser for every numeric flag (base::parseU64):
    // signs, whitespace, trailing junk and overflow are all fatal,
    // where raw strtoull would wrap "-1" to 2^64-1 silently.
    return base::parseU64(it->second, "--" + k);
}

unsigned
Args::getU32(const std::string &k, unsigned def) const
{
    auto it = kv.find(k);
    if (it == kv.end())
        return def;
    return base::parseU32(it->second, "--" + k);
}

bool
Args::getOnOff(const std::string &k, bool def) const
{
    auto it = kv.find(k);
    if (it == kv.end())
        return def;
    if (it->second == "on" || it->second == "1")
        return true;
    if (it->second == "off" || it->second == "0")
        return false;
    fatal("--", k, ": '", it->second, "' is not on|off");
}

double
Args::getD(const std::string &k, double def) const
{
    auto it = kv.find(k);
    if (it == kv.end())
        return def;
    return base::parseDouble(it->second, "--" + k);
}

void
requireKnownFlags(const Args &args,
                  std::initializer_list<const char *> known,
                  const char *what)
{
    for (const auto &[flag, value] : args.kv) {
        (void)value;
        bool ok = false;
        for (const char *k : known)
            ok = ok || flag == k;
        if (!ok)
            fatal(what, ": unknown flag '--", flag, "'");
    }
}

// --------------------------------------------------------------- files

void
writeTextFile(const std::string &path, const std::string &text)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            fatal("cannot write '", tmp, "'");
        os << text;
        os.flush();
        os.close();
        if (!os.good())
            fatal("write to '", tmp, "' failed (disk full?)");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename '", tmp, "' to '", path, "'");
}

io::Json
loadJsonFile(const std::string &path, const char *what)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open ", what, " '", path, "'");
    std::stringstream ss;
    ss << in.rdbuf();
    return io::Json::parse(ss.str());
}

std::vector<sched::CampaignSpec>
loadManifestFile(const std::string &path)
{
    return sched::parseManifest(loadJsonFile(path, "manifest"));
}

// ----------------------------------------------------------- telemetry

void
startTelemetry(const Args &args)
{
    const std::string trace = args.get("trace");
    if (!trace.empty())
        obs::TraceWriter::global().start(trace);
}

void
finishTelemetry(const Args &args)
{
    if (obs::TraceWriter::global().finish())
        std::printf("trace written to %s\n", args.get("trace").c_str());
    const std::string metrics = args.get("metrics");
    if (!metrics.empty()) {
        writeTextFile(metrics,
                      obs::Registry::global().snapshot().toJson().dump(2) +
                          "\n");
        std::printf("metrics written to %s\n", metrics.c_str());
    }
}

// ------------------------------------------------------- flag grammars

uarch::Structure
parseStructure(const std::string &s)
{
    if (s == "rf" || s == "RF")
        return uarch::Structure::RegisterFile;
    if (s == "sq" || s == "SQ")
        return uarch::Structure::StoreQueue;
    if (s == "l1d" || s == "L1D")
        return uarch::Structure::L1DCache;
    fatal("unknown structure '", s, "' (use rf | sq | l1d)");
}

bool
parseQuarantineFail(const Args &args)
{
    const std::string q = args.get("quarantine", "continue");
    if (q == "continue")
        return false;
    if (q == "fail")
        return true;
    fatal("--quarantine: '", q, "' is not fail|continue");
}

core::CampaignConfig
campaignConfig(const Args &args, std::uint64_t default_window)
{
    core::CampaignConfig cc;
    cc.target = parseStructure(args.get("structure", "rf"));
    cc.core = uarch::CoreConfig{}
                  .withRegisterFile(args.getU32("regs", 256))
                  .withStoreQueue(args.getU32("sq", 64))
                  .withL1dKb(args.getU32("l1d", 64));
    cc.core.instructionWindowEnd = args.getU("window", default_window);
    if (args.has("faults")) {
        cc.sampling = core::specFixed(args.getU("faults", 2000));
    } else if (args.has("margin")) {
        cc.sampling.errorMargin = args.getD("margin", 0.0063);
        cc.sampling.confidence = args.getD("conf", 0.998);
    } else {
        cc.sampling = core::specFixed(2000);
    }
    cc.seed = args.getU("seed", 1);
    cc.jobs = args.getU32("jobs", 1);
    cc.checkpointInterval = args.getU(
        "checkpoint-interval",
        faultsim::InjectionRunner::kDefaultCheckpointInterval);
    cc.maxCheckpoints = args.getU32(
        "max-checkpoints",
        faultsim::InjectionRunner::kDefaultMaxCheckpoints);
    cc.earlyExit = args.getOnOff("early-exit", true);
    cc.replay = args.getOnOff("replay", true);
    cc.timeoutFactor = args.getU32(
        "timeout-factor", faultsim::RunnerOptions::kDefaultTimeoutFactor);
    const std::uint64_t chunk = args.getU(
        "mem-chunk-bytes", isa::SegmentedMemory::kDefaultChunkBytes);
    if (!isa::isValidChunkBytes(chunk))
        fatal("--mem-chunk-bytes: ", chunk,
              " is not a power of two >= 64");
    cc.core.memChunkBytes = static_cast<std::uint32_t>(chunk);
    cc.injectWallLimit = args.getD("inject-wall-limit", 0.0);
    cc.quarantineFail = parseQuarantineFail(args);
    return cc;
}

sched::SuiteOptions
suiteOptionsFromArgs(const Args &args)
{
    sched::SuiteOptions opts;
    opts.jobs = args.getU32("jobs", 1);
    opts.storePath = args.get("out");
    opts.shardDir = args.get("out-dir");
    opts.reuseCached = args.has("resume");
    opts.recordTiming = !args.has("no-timing");
    opts.sections = args.getU32("sections", 0);
    if (args.has("sections") &&
        (opts.sections == 0 || opts.sections > 4096))
        fatal("--sections must be in [1, 4096]");
    opts.injectWallLimit = args.getD("inject-wall-limit", 0.0);
    opts.quarantineFail = parseQuarantineFail(args);
    // --progress / --progress=SECS: periodic stderr line (a bare flag
    // parses as "1" — one second).  --progress-json FILE additionally
    // rewrites a machine-readable progress file at the same cadence.
    opts.progressStderr = args.has("progress");
    opts.progressInterval = args.getD("progress", 1.0);
    opts.progressPath = args.get("progress-json");
    if (opts.reuseCached && opts.storePath.empty())
        fatal("--resume requires --out <results.json>");
    if (args.has("select") && args.has("select-hash"))
        fatal("suite: --select and --select-hash are mutually "
              "exclusive");
    if (args.has("select"))
        opts.select = sched::SpecSelector::parse(
            args.get("select"), sched::SpecSelector::Mode::RoundRobin);
    else if (args.has("select-hash"))
        opts.select = sched::SpecSelector::parse(
            args.get("select-hash"), sched::SpecSelector::Mode::Hash);
    return opts;
}

sched::CampaignService::Config
serviceConfigFromArgs(const Args &args)
{
    sched::CampaignService::Config cfg;
    // A daemon defaults to every hardware thread — it IS the machine's
    // campaign engine — where the one-shot suite defaults to 1.
    cfg.jobs = args.getU32("jobs", 0);
    cfg.storePath = args.get("store");
    cfg.sections = args.getU32("sections", 0);
    if (args.has("sections") &&
        (cfg.sections == 0 || cfg.sections > 4096))
        fatal("--sections must be in [1, 4096]");
    cfg.recordTiming = !args.has("no-timing");
    cfg.injectWallLimit = args.getD("inject-wall-limit", 0.0);
    cfg.quarantineFail = parseQuarantineFail(args);
    // The daemon always warms from its store: a persistent cache is
    // the point of process-lifetime service.
    cfg.loadStore = !cfg.storePath.empty();
    if (!cfg.storePath.empty())
        cfg.journalDir = cfg.storePath + ".journal";
    return cfg;
}

// ------------------------------------------------------------- reports

std::uint64_t
structureBits(const core::CampaignConfig &cc)
{
    switch (cc.target) {
      case uarch::Structure::RegisterFile:
        return std::uint64_t(cc.core.numPhysIntRegs) * 64;
      case uarch::Structure::StoreQueue:
        return std::uint64_t(cc.core.sqEntries) * 64;
      default:
        return std::uint64_t(cc.core.l1d.totalWords()) * 64;
    }
}

void
printCampaign(const core::CampaignResult &r, std::uint64_t bits)
{
    std::printf("golden: %llu instructions, %llu cycles; ACE-like AVF "
                "%.2f%%\n",
                static_cast<unsigned long long>(r.goldenInstret),
                static_cast<unsigned long long>(r.goldenCycles),
                100 * r.aceAvf);
    std::printf("faults: %llu initial -> %llu survivors -> %llu "
                "injected (%.1fX / %.1fX)\n",
                static_cast<unsigned long long>(r.initialFaults),
                static_cast<unsigned long long>(r.survivors),
                static_cast<unsigned long long>(r.injections),
                r.speedupAce, r.speedupTotal);
    for (unsigned c = 0; c < faultsim::NUM_OUTCOMES; ++c) {
        auto o = static_cast<faultsim::Outcome>(c);
        if (r.merlinEstimate.of(o) == 0)
            continue;
        std::printf("  %-8s %7.3f%%\n", faultsim::outcomeName(o),
                    100.0 * r.merlinEstimate.fraction(o));
    }
    std::printf("AVF %.3f%%  FIT %.4f (0.01 FIT/bit x %llu bits)\n",
                100 * r.merlinEstimate.avf(), r.merlinFit(bits),
                static_cast<unsigned long long>(bits));
    if (r.survivorTruth) {
        std::printf("ground truth: AVF %.3f%%; max class inaccuracy "
                    "%.2f pp; homogeneity %.3f\n",
                    100 * r.fullTruth().avf(),
                    r.merlinEstimate.maxInaccuracyVs(r.fullTruth()),
                    r.homogeneity->fine);
    }
    if (r.injectionRuns) {
        std::printf("early exit: %llu of %llu runs reconverged with the "
                    "golden state (%.1f%%)\n",
                    static_cast<unsigned long long>(r.earlyExits),
                    static_cast<unsigned long long>(r.injectionRuns),
                    100.0 * r.earlyExitRate());
    }
    if (r.replayMasked + r.replayHandoffs) {
        std::printf("replay: %llu dead flips shortcut Masked, %llu "
                    "handed off to simulation (divergence rate %.1f%%)"
                    "\n",
                    static_cast<unsigned long long>(r.replayMasked),
                    static_cast<unsigned long long>(r.replayHandoffs),
                    100 * r.replayDivergenceRate());
        std::printf("replay: %llu of %llu head cycles skipped "
                    "(%.1f%%)\n",
                    static_cast<unsigned long long>(
                        r.replayCyclesSkipped),
                    static_cast<unsigned long long>(r.replayHeadCycles),
                    100 * r.replaySkipRate());
    }
    if (!r.quarantine.empty()) {
        std::printf("quarantined: %zu injection%s failed the simulator "
                    "and %s counted Crash:\n",
                    r.quarantine.size(),
                    r.quarantine.size() == 1 ? "" : "s",
                    r.quarantine.size() == 1 ? "was" : "were");
        for (const auto &q : r.quarantine)
            std::printf("  fault 0x%016llx: %s\n",
                        static_cast<unsigned long long>(q.faultKey),
                        q.reason.c_str());
    }
    std::printf("wall clock: %.2fs profile + %.2fs injections "
                "(%.3f ms/injection)\n",
                r.profileSeconds, r.injectionSeconds,
                1e3 * r.secondsPerInjection);
}

void
printSuiteReport(const std::vector<sched::CampaignSpec> &specs,
                 const sched::SuiteResult &suite,
                 const sched::SuiteOptions &opts)
{
    // New columns go AFTER ee%: downstream consumers (CI's awk among
    // them) address AVF% as whitespace-separated field 7.
    std::printf("%-14s %-4s %-13s %10s %10s %10s %8s %6s %6s %6s %s\n",
                "workload", "tgt", "mode", "initial", "survivors",
                "injected", "AVF%", "ee%", "skip%", "div%", "");
    std::uint64_t cached = 0;
    std::uint64_t selected = 0;
    std::uint64_t sectionsHit = 0;
    std::uint64_t sectionsMissed = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!suite.selected[i])
            continue; // another worker's share
        const auto &r = suite.results[i];
        ++selected;
        cached += suite.cached[i] ? 1 : 0;
        sectionsHit += suite.sectionsHit[i];
        sectionsMissed += suite.sectionsMissed[i];
        // Trailing tags, strictly after every numeric column:
        // [cached] for whole-campaign hits, [sections h/N] for the
        // section-eligible campaigns of a --sections run.
        std::string tag = suite.cached[i] ? "[cached]" : "";
        if (suite.sectionsHit[i] + suite.sectionsMissed[i] > 0) {
            if (!tag.empty())
                tag += ' ';
            tag += "[sections " + std::to_string(suite.sectionsHit[i]) +
                   "/" +
                   std::to_string(suite.sectionsHit[i] +
                                  suite.sectionsMissed[i]) +
                   "]";
        }
        std::printf(
            "%-14s %-4s %-13s %10llu %10llu %10llu %7.3f%% %5.1f%% "
            "%5.1f%% %5.1f%% %s\n",
            specs[i].workload.c_str(),
            uarch::structureName(specs[i].structure),
            specs[i].mode == sched::CampaignSpec::Mode::GroupingOnly
                ? "grouping-only"
                : (specs[i].mode == sched::CampaignSpec::Mode::Truth
                       ? "truth"
                       : "estimate"),
            static_cast<unsigned long long>(r.initialFaults),
            static_cast<unsigned long long>(r.survivors),
            static_cast<unsigned long long>(r.injections),
            100 * r.merlinEstimate.avf(), 100 * r.earlyExitRate(),
            100 * r.replaySkipRate(), 100 * r.replayDivergenceRate(),
            tag.c_str());
    }
    std::printf("\n%llu campaigns (%llu run, %llu cached) in %.2fs "
                "with --jobs %u\n",
                static_cast<unsigned long long>(selected),
                static_cast<unsigned long long>(suite.campaignsRun),
                static_cast<unsigned long long>(cached),
                suite.wallSeconds, opts.jobs);
    if (opts.sections > 0) {
        std::printf("sections (--sections %u): %llu hit, %llu missed\n",
                    opts.sections,
                    static_cast<unsigned long long>(sectionsHit),
                    static_cast<unsigned long long>(sectionsMissed));
        // Composed per-campaign AVF with its Leveugle sampling margin:
        // the CI is a function of the INITIAL sample size, so partial
        // composition leaves it — like the AVF itself — identical to
        // a cold full run's.
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (!suite.selected[i] ||
                suite.sectionsHit[i] + suite.sectionsMissed[i] == 0)
                continue;
            const auto &r = suite.results[i];
            const double confidence = specs[i].sampling.confidence;
            const std::optional<double> margin =
                sched::samplingMargin(r.initialFaults, confidence);
            if (margin) {
                std::printf("  %-14s %-4s composed AVF %7.3f%% +- "
                            "%.3fpp at %.3g%% confidence\n",
                            specs[i].workload.c_str(),
                            uarch::structureName(specs[i].structure),
                            100 * r.merlinEstimate.avf(), 100 * *margin,
                            100 * confidence);
            } else {
                std::printf("  %-14s %-4s composed AVF %7.3f%% (no "
                            "sampling margin: zero initial faults)\n",
                            specs[i].workload.c_str(),
                            uarch::structureName(specs[i].structure),
                            100 * r.merlinEstimate.avf());
            }
        }
    }
    if (suite.injectionsSimulated && suite.wallSeconds > 0.0) {
        std::printf("throughput: %llu injections at %.0f/s\n",
                    static_cast<unsigned long long>(
                        suite.injectionsSimulated),
                    static_cast<double>(suite.injectionsSimulated) /
                        suite.wallSeconds);
    }
    if (opts.select) {
        // The suite report records the selection: which share of the
        // manifest this worker ran, and what it left for the others.
        std::printf("selection %s: %llu of %zu manifest campaigns\n",
                    opts.select->describe().c_str(),
                    static_cast<unsigned long long>(selected),
                    specs.size());
    }
    if (!opts.storePath.empty())
        std::printf("results written to %s\n", opts.storePath.c_str());
    if (!opts.shardDir.empty())
        std::printf("shards spilled to %s/\n", opts.shardDir.c_str());
}

} // namespace merlin::tools
