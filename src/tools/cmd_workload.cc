/** @file `merlin_cli list | run | asm`: workload-level commands. */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "masm/asm.hh"
#include "merlin/campaign.hh"
#include "tools/cli_cmds.hh"
#include "uarch/core.hh"
#include "workloads/workloads.hh"

namespace merlin::tools
{

int
cmdList()
{
    std::printf("MiBench-like (run to completion):\n");
    for (const auto &n : workloads::mibenchWorkloads()) {
        auto w = workloads::buildWorkload(n);
        std::printf("  %-14s %s\n", n.c_str(), w.description.c_str());
    }
    std::printf("SPEC-like (SimPoint-style windows):\n");
    for (const auto &n : workloads::specWorkloads()) {
        auto w = workloads::buildWorkload(n);
        std::printf("  %-14s window=%llu  %s\n", n.c_str(),
                    static_cast<unsigned long long>(w.suggestedWindow),
                    w.description.c_str());
    }
    return 0;
}

int
cmdRun(const Args &args)
{
    auto w = workloads::buildWorkload(args.get("workload", "qsort"));
    uarch::Core core(w.program, uarch::CoreConfig{});
    auto r = core.run();
    const auto &st = core.stats();
    std::printf("%s: %llu instructions, %llu cycles, IPC %.2f\n",
                w.program.name.c_str(),
                static_cast<unsigned long long>(r.instret),
                static_cast<unsigned long long>(st.cycles), st.ipc());
    std::printf("branches: %llu cond, %llu mispredicted (%.1f%%)\n",
                static_cast<unsigned long long>(st.condBranches),
                static_cast<unsigned long long>(st.branchMispredicts),
                st.condBranches ? 100.0 * st.branchMispredicts /
                                      st.condBranches
                                : 0.0);
    std::printf("L1D: %llu hits, %llu misses; %llu store-forwards\n",
                static_cast<unsigned long long>(st.l1dHits),
                static_cast<unsigned long long>(st.l1dMisses),
                static_cast<unsigned long long>(st.storeForwards));
    std::printf("output %s the reference implementation\n",
                r.output == w.expectedOutput ? "matches"
                                             : "DOES NOT match");
    return r.output == w.expectedOutput ? 0 : 1;
}

int
cmdAsm(const Args &args)
{
    const std::string path = args.get("file");
    if (path.empty())
        fatal("asm requires --file <program.s>");
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '", path, "'");
    std::stringstream ss;
    ss << in.rdbuf();
    isa::Program prog = masm::assemble(ss.str(), path);
    std::printf("assembled %llu instructions, %zu data bytes\n",
                static_cast<unsigned long long>(
                    prog.instructionCount()),
                prog.data.size());

    uarch::Core core(prog, uarch::CoreConfig{});
    auto r = core.run();
    std::printf("run: reason=%d exit=%d, %llu instructions, %llu "
                "cycles, %zu output bytes\n",
                static_cast<int>(r.reason), r.exitCode,
                static_cast<unsigned long long>(r.instret),
                static_cast<unsigned long long>(core.stats().cycles),
                r.output.size());

    if (args.has("campaign")) {
        Args a2 = args;
        a2.kv["structure"] = args.get("campaign");
        core::CampaignConfig cc = campaignConfig(a2, 0);
        core::Campaign camp(prog, cc);
        auto res = camp.run(a2.has("truth"));
        printCampaign(res, 64ULL * 64);
    }
    return 0;
}

} // namespace merlin::tools
