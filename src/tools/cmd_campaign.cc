/** @file `merlin_cli campaign`: run one MeRLiN campaign and report. */

#include <cstdio>

#include "merlin/campaign.hh"
#include "tools/cli_cmds.hh"
#include "uarch/core.hh"
#include "workloads/workloads.hh"

namespace merlin::tools
{

int
cmdCampaign(const Args &args)
{
    requireKnownFlags(args,
                      {"workload", "structure", "regs", "sq", "l1d",
                       "faults", "margin", "conf", "seed", "window",
                       "truth", "relyzer", "jobs",
                       "checkpoint-interval", "max-checkpoints",
                       "early-exit", "replay", "mem-chunk-bytes",
                       "timeout-factor", "inject-wall-limit",
                       "quarantine", "trace", "metrics"},
                      "campaign");
    auto w = workloads::buildWorkload(args.get("workload", "qsort"));
    core::CampaignConfig cc = campaignConfig(
        args, args.has("window") ? 0 : w.suggestedWindow);
    startTelemetry(args);
    core::Campaign camp(w.program, cc);
    auto r = args.has("relyzer") ? camp.runRelyzer(args.has("truth"))
                                 : camp.run(args.has("truth"));
    finishTelemetry(args);
    std::printf("== %s / %s ==\n", w.program.name.c_str(),
                uarch::structureName(cc.target));
    printCampaign(r, structureBits(cc));
    return 0;
}

} // namespace merlin::tools
