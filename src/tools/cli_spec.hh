/**
 * @file
 * Shared CLI plumbing for the merlin tools.
 *
 * merlin_cli and merlin_serve must parse specs and flags IDENTICALLY —
 * a campaign submitted over the wire has to hash to the same content
 * key the batch CLI would give it, and a daemon flag must accept
 * exactly the grammar the one-shot suite accepts.  Everything that
 * defines that grammar lives here: the --flag parser, the strict
 * numeric/on-off accessors, manifest loading, the SuiteOptions /
 * CampaignService::Config derivations, and the report printers both
 * front ends share.
 */

#ifndef MERLIN_TOOLS_CLI_SPEC_HH
#define MERLIN_TOOLS_CLI_SPEC_HH

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "merlin/campaign.hh"
#include "sched/service.hh"
#include "sched/suite.hh"
#include "uarch/core.hh"

namespace merlin::tools
{

/** Minimal --key value / --flag parser. */
struct Args
{
    std::map<std::string, std::string> kv;

    static Args parse(int argc, char **argv, int start);

    bool has(const std::string &k) const { return kv.count(k) != 0; }
    std::string get(const std::string &k,
                    const std::string &def = "") const;
    /** Unsigned value of --k; fatal() on garbage instead of reading
     *  0 (one strict parser, base::parseU64, for every numeric
     *  flag). */
    std::uint64_t getU(const std::string &k, std::uint64_t def) const;
    /** Like getU but range-checked for `unsigned` destinations, so a
     *  2^32 cannot truncate to 0 (for --jobs: "all threads"). */
    unsigned getU32(const std::string &k, unsigned def) const;
    /** on/off value of --k; fatal() on anything else. */
    bool getOnOff(const std::string &k, bool def) const;
    /** Floating-point value of --k; fatal() on garbage. */
    double getD(const std::string &k, double def) const;
};

/** Reject flags outside @p known — a typo'd flag must not silently
 *  fall back to a default. */
void requireKnownFlags(const Args &args,
                       std::initializer_list<const char *> known,
                       const char *what);

/** Write @p text to @p path atomically (temp file + rename). */
void writeTextFile(const std::string &path, const std::string &text);

/**
 * Telemetry flags shared by `campaign`, `suite` and the daemon:
 * --trace=FILE records Chrome trace_event spans, --metrics=FILE dumps
 * the metrics registry snapshot.  Strictly out-of-band — simulation
 * results and store/journal bytes are identical with or without them.
 */
void startTelemetry(const Args &args);
void finishTelemetry(const Args &args);

uarch::Structure parseStructure(const std::string &s);

/** --quarantine=fail|continue (the fault-tolerance policy switch). */
bool parseQuarantineFail(const Args &args);

core::CampaignConfig campaignConfig(const Args &args,
                                    std::uint64_t default_window);

/** Read and strictly parse the JSON file at @p path. */
io::Json loadJsonFile(const std::string &path, const char *what);

/** Load a suite manifest file into fully-resolved specs. */
std::vector<sched::CampaignSpec>
loadManifestFile(const std::string &path);

/**
 * The one-shot suite knobs (--jobs/--out/--resume/--sections/...),
 * validations included — the single derivation both `suite` and any
 * batch-flavored front end use.
 */
sched::SuiteOptions suiteOptionsFromArgs(const Args &args);

/**
 * The daemon-lifetime service knobs from the SAME flag grammar
 * (--jobs/--store/--sections/--no-timing/quarantine).  The daemon
 * always loads its store — a warm cache is its reason to exist.
 */
sched::CampaignService::Config serviceConfigFromArgs(const Args &args);

/** Print one campaign's reliability report (`campaign` / `result`). */
void printCampaign(const core::CampaignResult &r, std::uint64_t bits);

/** Target-structure bit count for FIT math, from a resolved config. */
std::uint64_t structureBits(const core::CampaignConfig &cc);

/**
 * Print the suite report table + summary blocks exactly as
 * `merlin_cli suite` always has (byte-identical contract: CI awks
 * these columns).  @p opts supplies jobs/sections/select/store paths
 * for the trailer lines.
 */
void printSuiteReport(const std::vector<sched::CampaignSpec> &specs,
                      const sched::SuiteResult &suite,
                      const sched::SuiteOptions &opts);

} // namespace merlin::tools

#endif // MERLIN_TOOLS_CLI_SPEC_HH
