/**
 * @file
 * merlin_cli subcommand handlers, one translation unit per family:
 * cmd_workload.cc (list/run/asm), cmd_campaign.cc (campaign),
 * cmd_suite.cc (suite/plan/diff/store merge), cmd_client.cc (the
 * daemon client: submit/status/result/shutdown).  main() in
 * merlin_cli.cc only dispatches; all parsing lives in cli_spec.
 */

#ifndef MERLIN_TOOLS_CLI_CMDS_HH
#define MERLIN_TOOLS_CLI_CMDS_HH

#include <string>

#include "tools/cli_spec.hh"

namespace merlin::tools
{

// cmd_workload.cc
int cmdList();
int cmdRun(const Args &args);
int cmdAsm(const Args &args);

// cmd_campaign.cc
int cmdCampaign(const Args &args);

// cmd_suite.cc
int cmdSuite(const std::string &manifest_path, const Args &args);
int cmdSuiteDiff(const std::string &path_a, const std::string &path_b,
                 const Args &args);
int cmdStoreMerge(int argc, char **argv, int start);

// cmd_client.cc — talk to a running merlin_serve over its socket.
int cmdSubmit(const std::string &manifest_path, const Args &args);
int cmdStatus(const Args &args);
int cmdResult(const Args &args);
int cmdShutdown(const Args &args);

} // namespace merlin::tools

#endif // MERLIN_TOOLS_CLI_CMDS_HH
