/**
 * @file
 * `merlin_cli submit | status | result | shutdown`: the client side of
 * merlin-wire-v1, talking to a running merlin_serve daemon.
 *
 * `submit manifest.json --socket S` is a remote `suite`: every spec is
 * submitted (the daemon serves store hits and coalesces identical
 * in-flight specs), the client waits for each outcome in manifest
 * order and prints the SAME suite report the batch command prints —
 * the daemon's store stays the single source of truth for the bytes.
 * `status`/`result` query by spec content key, so any client can pick
 * up results another client's submissions produced.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "io/result_store.hh"
#include "io/wire.hh"
#include "merlin/campaign.hh"
#include "sched/suite.hh"
#include "tools/cli_cmds.hh"
#include "uarch/core.hh"
#include "workloads/workloads.hh"

namespace merlin::tools
{

namespace
{

/** Connect to --socket and run the hello handshake; fills @p hello_ok
 *  with the daemon's `ok` reply (jobs, sections, store path). */
io::WireConnection
connectDaemon(const Args &args, io::Json &hello_ok)
{
    const std::string sock = args.get("socket");
    if (sock.empty())
        fatal("client commands require --socket <path>");
    io::WireConnection conn(io::wireConnect(sock));
    io::Json hello = io::Json::object();
    hello.set("type", "hello");
    hello.set("format", io::kWireFormat);
    hello.set("client", args.get("client", "cli"));
    conn.write(hello);
    if (!conn.read(hello_ok))
        fatal("daemon closed the connection during the handshake");
    if (hello_ok.strOr("type", "") == "error")
        fatal("daemon: ", hello_ok.strOr("error", "unknown error"));
    if (hello_ok.strOr("type", "") != "ok" ||
        hello_ok.strOr("format", "") != io::kWireFormat)
        fatal("unexpected handshake reply: ", hello_ok.dump());
    return conn;
}

/** One request/reply round trip; daemon `error` replies are fatal. */
io::Json
request(io::WireConnection &conn, const io::Json &msg)
{
    conn.write(msg);
    io::Json reply;
    if (!conn.read(reply))
        fatal("daemon closed the connection mid-request");
    if (reply.strOr("type", "") == "error")
        fatal("daemon: ", reply.strOr("error", "unknown error"));
    return reply;
}

} // namespace

int
cmdSubmit(const std::string &manifest_path, const Args &args)
{
    requireKnownFlags(args, {"socket", "client", "no-resume", "no-wait"},
                      "submit");
    const std::vector<sched::CampaignSpec> specs =
        loadManifestFile(manifest_path);
    const bool resume = !args.has("no-resume");

    io::Json hello_ok;
    io::WireConnection conn = connectDaemon(args, hello_ok);
    const auto t0 = std::chrono::steady_clock::now();

    for (std::size_t i = 0; i < specs.size(); ++i) {
        io::Json msg = io::Json::object();
        msg.set("type", "submit");
        msg.set("id", std::uint64_t(i));
        msg.set("spec", specs[i].toJson());
        msg.set("resume", resume);
        const io::Json reply = request(conn, msg);
        if (reply.strOr("type", "") != "submitted")
            fatal("unexpected submit reply: ", reply.dump());
        if (args.has("no-wait"))
            std::printf("submitted %s %s %s\n",
                        reply.strOr("key", "?").c_str(),
                        reply.strOr("state", "?").c_str(),
                        specs[i].workload.c_str());
    }
    if (args.has("no-wait"))
        return 0;

    // Wait for every outcome in manifest order and rebuild the batch
    // suite report from the replies (byte-identical table/summary —
    // the daemon's --jobs fills the trailer).
    sched::SuiteResult suite;
    suite.results.resize(specs.size());
    suite.cached.assign(specs.size(), false);
    suite.selected.assign(specs.size(), true);
    suite.sectionsHit.assign(specs.size(), 0);
    suite.sectionsMissed.assign(specs.size(), 0);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        io::Json msg = io::Json::object();
        msg.set("type", "result");
        msg.set("id", std::uint64_t(i));
        const io::Json reply = request(conn, msg);
        const std::string state = reply.strOr("state", "?");
        if (state != "done")
            fatal("campaign '", specs[i].workload, "' (key ",
                  reply.strOr("key", "?"), ") ended ", state,
                  reply.find("error")
                      ? ": " + reply.at("error").asString()
                      : std::string());
        suite.results[i] = io::resultFromJson(reply.at("result"));
        suite.cached[i] = reply.boolOr("cached", false);
        suite.sectionsHit[i] = static_cast<std::uint32_t>(
            reply.u64Or("sections_hit", 0));
        suite.sectionsMissed[i] = static_cast<std::uint32_t>(
            reply.u64Or("sections_missed", 0));
        if (!suite.cached[i]) {
            ++suite.campaignsRun;
            suite.injectionsSimulated += suite.results[i].injectionRuns;
        }
    }
    suite.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    sched::SuiteOptions ropts;
    ropts.jobs = static_cast<unsigned>(hello_ok.u64Or("jobs", 0));
    ropts.sections = static_cast<unsigned>(hello_ok.u64Or("sections", 0));
    ropts.storePath = hello_ok.strOr("store", "");
    printSuiteReport(specs, suite, ropts);
    return 0;
}

int
cmdStatus(const Args &args)
{
    requireKnownFlags(args, {"socket", "client", "key"}, "status");
    io::Json hello_ok;
    io::WireConnection conn = connectDaemon(args, hello_ok);

    io::Json msg = io::Json::object();
    msg.set("type", "status");
    if (args.has("key"))
        msg.set("key", args.get("key"));
    const io::Json reply = request(conn, msg);

    if (args.has("key")) {
        std::printf("key %s: %s\n", args.get("key").c_str(),
                    reply.boolOr("known", false)
                        ? reply.strOr("state", "?").c_str()
                        : "unknown");
        return reply.boolOr("known", false) ? 0 : 1;
    }
    const io::Json *stats = reply.find("stats");
    if (!stats)
        fatal("unexpected status reply: ", reply.dump());
    std::printf("daemon on %s: %llu queued, %llu running%s\n",
                args.get("socket").c_str(),
                static_cast<unsigned long long>(
                    stats->u64Or("queued", 0)),
                static_cast<unsigned long long>(
                    stats->u64Or("running", 0)),
                reply.boolOr("draining", false) ? ", draining" : "");
    std::printf("submitted %llu, executed %llu, cache hits %llu, "
                "coalesced %llu, failed %llu, cancelled %llu\n",
                static_cast<unsigned long long>(
                    stats->u64Or("submitted", 0)),
                static_cast<unsigned long long>(
                    stats->u64Or("executed", 0)),
                static_cast<unsigned long long>(
                    stats->u64Or("cache_hits", 0)),
                static_cast<unsigned long long>(
                    stats->u64Or("coalesced", 0)),
                static_cast<unsigned long long>(
                    stats->u64Or("failed", 0)),
                static_cast<unsigned long long>(
                    stats->u64Or("cancelled", 0)));
    return 0;
}

int
cmdResult(const Args &args)
{
    requireKnownFlags(args, {"socket", "client", "key", "out"},
                      "result");
    const std::string key = args.get("key");
    if (key.empty())
        fatal("result requires --key <spec content key>");

    io::Json hello_ok;
    io::WireConnection conn = connectDaemon(args, hello_ok);
    io::Json msg = io::Json::object();
    msg.set("type", "result");
    msg.set("key", key);
    const io::Json reply = request(conn, msg);
    const std::string state = reply.strOr("state", "?");
    if (state != "done")
        fatal("key ", key, ": ", state,
              reply.find("error") ? ": " + reply.at("error").asString()
                                  : std::string());

    const std::string out = args.get("out");
    if (!out.empty()) {
        writeTextFile(out, reply.at("result").dump(2) + "\n");
        std::printf("result written to %s\n", out.c_str());
        return 0;
    }
    const core::CampaignResult r =
        io::resultFromJson(reply.at("result"));
    const sched::CampaignSpec spec =
        sched::CampaignSpec::fromJson(reply.at("spec"));
    const auto w = workloads::buildWorkload(spec.workload);
    const core::CampaignConfig cc = spec.campaignConfig(w);
    std::printf("== %s / %s ==\n", spec.workload.c_str(),
                uarch::structureName(cc.target));
    printCampaign(r, structureBits(cc));
    return 0;
}

int
cmdShutdown(const Args &args)
{
    requireKnownFlags(args, {"socket", "client", "cancel-queued"},
                      "shutdown");
    io::Json hello_ok;
    io::WireConnection conn = connectDaemon(args, hello_ok);
    io::Json msg = io::Json::object();
    msg.set("type", "shutdown");
    msg.set("cancel_queued", args.has("cancel-queued"));
    const io::Json reply = request(conn, msg);
    if (reply.strOr("type", "") != "ok")
        fatal("unexpected shutdown reply: ", reply.dump());
    std::printf("daemon draining%s\n",
                args.has("cancel-queued")
                    ? " (queued submissions cancelled)"
                    : "");
    return 0;
}

} // namespace merlin::tools
