/**
 * @file
 * merlin_serve — the campaign service as a daemon.
 *
 *   merlin_serve --socket /run/merlin.sock [--store results.json]
 *       [--jobs N] [--sections N] [--no-timing]
 *       [--inject-wall-limit SECONDS] [--quarantine=fail|continue]
 *       [--trace trace.json] [--metrics metrics.json]
 *
 * One resident sched::CampaignService behind a Unix domain socket
 * speaking merlin-wire-v1 (docs/wire-protocol.md).  Clients submit
 * campaign specs at any time; the daemon serves whole and sectioned
 * store hits, coalesces identical in-flight specs across clients
 * (single-flight: the simulation runs ONCE, every subscriber gets the
 * byte-identical result), schedules round-robin across clients, and
 * persists every completed campaign to --store exactly as a batch
 * `merlin_cli suite --out` run would — the store file is
 * byte-compatible and `store merge`/`suite --diff` work on it
 * directly.
 *
 * Lifecycle: the daemon prints one readiness line and serves until
 * SIGTERM/SIGINT or a client `shutdown` request.  Shutdown is
 * graceful: the listener closes, running campaigns complete and
 * persist (their outcome journals close and are removed once the
 * store save lands), queued submissions are cancelled (SIGTERM) or
 * honored (`shutdown` without cancel_queued), sessions are unblocked
 * and joined, and the socket file is unlinked.  Exit code 0 on a
 * clean drain.
 *
 * Each client connection runs on its own session thread; the service
 * itself owns the worker pool, so a session thread only parses,
 * submits and waits.  Telemetry: the service's per-client
 * service.client.<name>.* gauges/counters, plus the daemon's
 * serve.client.<name>.bytes_served counters and wire-level trace
 * spans (wire.write, serve.<request type>).
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <unistd.h>
#endif

#include "base/logging.hh"
#include "io/result_store.hh"
#include "io/wire.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sched/service.hh"
#include "tools/cli_spec.hh"

namespace
{

using namespace merlin;
using tools::Args;

/**
 * Self-pipe shutdown plumbing: the signal handler and the wire
 * `shutdown` request both write one byte here, and the accept loop
 * polls the read end beside the listener.  Writing a pipe is
 * async-signal-safe where everything else we'd want to do is not.
 */
int g_shutdownPipe[2] = {-1, -1};
std::atomic<bool> g_cancelQueued{true};
std::atomic<int> g_activeSessions{0};

extern "C" void
onSignal(int)
{
    const char byte = 1;
    // Best-effort: a full pipe already means shutdown is requested.
    [[maybe_unused]] ssize_t r = ::write(g_shutdownPipe[1], &byte, 1);
}

void
requestShutdown(bool cancel_queued)
{
    g_cancelQueued.store(cancel_queued);
    const char byte = 1;
    [[maybe_unused]] ssize_t r = ::write(g_shutdownPipe[1], &byte, 1);
}

/** Fairness-queue / telemetry names come from the client hello;
 *  restrict them to [A-Za-z0-9._-] so they embed safely in metric
 *  names and log lines. */
std::string
sanitizeClient(const std::string &name)
{
    std::string out;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        out += ok ? c : '_';
    }
    if (out.empty() || out.size() > 64)
        return "client";
    return out;
}

/** One connected client: its connection, its session thread, and the
 *  per-session ticket table (ids are client-chosen, session-scoped;
 *  cross-session queries go by spec content key). */
struct Session
{
    explicit Session(int fd) : conn(fd) {}

    io::WireConnection conn;
    std::thread thread;
};

struct SessionRegistry
{
    std::mutex mu;
    std::vector<std::shared_ptr<Session>> sessions;
};

io::Json
errorReply(const std::string &msg)
{
    io::Json j = io::Json::object();
    j.set("type", "error");
    j.set("error", msg);
    return j;
}

/** The terminal-state half of a result reply, shared by the by-id and
 *  by-key paths. */
io::Json
ticketResultReply(const sched::CampaignService::TicketPtr &ticket)
{
    io::Json reply = io::Json::object();
    reply.set("type", "result");
    reply.set("key", ticket->key());
    const auto state = ticket->wait();
    reply.set("state", sched::CampaignService::stateName(state));
    if (state == sched::CampaignService::State::Done) {
        const auto &o = ticket->outcome();
        reply.set("cached", o.cached);
        reply.set("coalesced", o.coalesced);
        reply.set("sections_hit", std::uint64_t(o.sectionsHit));
        reply.set("sections_missed", std::uint64_t(o.sectionsMissed));
        reply.set("spec", ticket->spec().toJson());
        reply.set("result", io::resultToJson(o.result));
    } else if (state == sched::CampaignService::State::Failed) {
        try {
            std::rethrow_exception(ticket->error());
        } catch (const std::exception &e) {
            reply.set("error", std::string(e.what()));
        }
    }
    return reply;
}

/** Handle one parsed request; never throws for per-request problems —
 *  those come back as an `error` reply and the session lives on. */
io::Json
handleRequest(sched::CampaignService &svc, const std::string &client,
              std::map<std::uint64_t, sched::CampaignService::TicketPtr>
                  &tickets,
              const io::Json &msg)
{
    const std::string type = msg.strOr("type", "");
    obs::Span span("wire", "serve." + (type.empty() ? "?" : type));

    if (type == "submit") {
        const io::Json *spec_json = msg.find("spec");
        if (!spec_json)
            return errorReply("submit: missing 'spec'");
        const sched::CampaignSpec spec =
            sched::CampaignSpec::fromJson(*spec_json);
        sched::CampaignService::SubmitOptions sopts;
        sopts.reuseCached = msg.boolOr("resume", true);
        sopts.client = client;
        const auto ticket = svc.submit(spec, sopts);
        if (!ticket)
            return errorReply("daemon is draining; submission refused");
        const std::uint64_t id = msg.u64Or("id", 0);
        tickets[id] = ticket;
        io::Json reply = io::Json::object();
        reply.set("type", "submitted");
        reply.set("id", id);
        reply.set("key", ticket->key());
        const auto state = ticket->state();
        reply.set("state", sched::CampaignService::stateName(state));
        if (state == sched::CampaignService::State::Done)
            reply.set("cached", ticket->outcome().cached);
        return reply;
    }

    if (type == "status") {
        io::Json reply = io::Json::object();
        reply.set("type", "status");
        if (const io::Json *key = msg.find("key")) {
            reply.set("key", key->asString());
            sched::CampaignService::State st;
            const bool known = svc.keyState(key->asString(), st);
            reply.set("known", known);
            if (known)
                reply.set("state",
                          sched::CampaignService::stateName(st));
            return reply;
        }
        if (msg.find("id")) {
            const auto it = tickets.find(msg.u64Or("id", 0));
            if (it == tickets.end())
                return errorReply("status: unknown submission id");
            reply.set("id", msg.u64Or("id", 0));
            reply.set("key", it->second->key());
            reply.set("state", sched::CampaignService::stateName(
                                   it->second->state()));
            return reply;
        }
        const auto s = svc.stats();
        io::Json stats = io::Json::object();
        stats.set("submitted", s.submitted);
        stats.set("executed", s.executed);
        stats.set("cache_hits", s.cacheHits);
        stats.set("coalesced", s.coalesced);
        stats.set("failed", s.failed);
        stats.set("cancelled", s.cancelled);
        stats.set("queued", s.queued);
        stats.set("running", s.running);
        reply.set("stats", stats);
        reply.set("draining", svc.draining());
        return reply;
    }

    if (type == "result") {
        if (msg.find("id")) {
            const auto it = tickets.find(msg.u64Or("id", 0));
            if (it == tickets.end())
                return errorReply("result: unknown submission id");
            io::Json reply = ticketResultReply(it->second);
            reply.set("id", msg.u64Or("id", 0));
            return reply;
        }
        const io::Json *key = msg.find("key");
        if (!key)
            return errorReply("result: need 'id' or 'key'");
        // In flight?  Subscribe (single-flight: we become one more
        // waiter on the same simulation).  Else it can only be in the
        // store.
        if (const auto ticket = svc.subscribe(key->asString()))
            return ticketResultReply(ticket);
        io::Json reply;
        svc.withStore([&](io::ResultStore &store) {
            const auto &entries = store.entries();
            const auto it = entries.find(key->asString());
            if (it == entries.end()) {
                reply = errorReply("result: unknown key '" +
                                   key->asString() + "'");
                return;
            }
            reply = io::Json::object();
            reply.set("type", "result");
            reply.set("key", it->first);
            reply.set("state", "done");
            reply.set("cached", true);
            reply.set("coalesced", false);
            reply.set("sections_hit", std::uint64_t(0));
            reply.set("sections_missed", std::uint64_t(0));
            reply.set("spec", it->second.spec);
            reply.set("result", it->second.result);
        });
        return reply;
    }

    if (type == "cancel") {
        const auto it = tickets.find(msg.u64Or("id", 0));
        if (it == tickets.end())
            return errorReply("cancel: unknown submission id");
        const bool cancelled = svc.cancel(it->second);
        io::Json reply = io::Json::object();
        reply.set("type", "status");
        reply.set("id", msg.u64Or("id", 0));
        reply.set("key", it->second->key());
        reply.set("cancelled", cancelled);
        reply.set("state", sched::CampaignService::stateName(
                               it->second->state()));
        return reply;
    }

    if (type == "shutdown") {
        requestShutdown(msg.boolOr("cancel_queued", false));
        io::Json reply = io::Json::object();
        reply.set("type", "ok");
        return reply;
    }

    return errorReply("unknown request type '" + type + "'");
}

/** Per-connection session: handshake, then request/reply until EOF. */
void
runSession(const std::shared_ptr<Session> &session,
           sched::CampaignService &svc)
{
    auto &clients_gauge = obs::Registry::global().gauge("serve.clients");
    clients_gauge.set(static_cast<double>(++g_activeSessions));
    struct Departure
    {
        obs::Gauge &gauge;
        ~Departure()
        {
            gauge.set(static_cast<double>(--g_activeSessions));
        }
    } departure{clients_gauge};

    std::string client = "client";
    try {
        io::Json hello;
        if (!session->conn.read(hello))
            return; // probe connection (e.g. wireListen's stale check)
        if (hello.strOr("type", "") != "hello" ||
            hello.strOr("format", "") != io::kWireFormat) {
            session->conn.write(errorReply(
                std::string("expected hello with format ") +
                io::kWireFormat));
            return;
        }
        client = sanitizeClient(hello.strOr("client", "client"));
        auto &bytes_served = obs::Registry::global().counter(
            "serve.client." + client + ".bytes_served");

        io::Json ok = io::Json::object();
        ok.set("type", "ok");
        ok.set("format", io::kWireFormat);
        ok.set("jobs", std::uint64_t(svc.config().jobs));
        ok.set("sections", std::uint64_t(svc.config().sections));
        ok.set("store", svc.config().storePath);
        bytes_served.add(session->conn.write(ok));

        std::map<std::uint64_t, sched::CampaignService::TicketPtr>
            tickets;
        io::Json msg;
        while (session->conn.read(msg)) {
            io::Json reply;
            try {
                reply = handleRequest(svc, client, tickets, msg);
            } catch (const std::exception &e) {
                // A bad spec or a failed store decode poisons the
                // request, not the session.
                reply = errorReply(e.what());
            }
            bytes_served.add(session->conn.write(reply));
        }
    } catch (const std::exception &e) {
        // Torn frames / vanished peers end the session, not the
        // daemon.
        std::fprintf(stderr, "merlin_serve: session '%s': %s\n",
                     client.c_str(), e.what());
    }
}

int
serve(const Args &args)
{
    const std::string socket_path = args.get("socket");
    if (socket_path.empty())
        fatal("merlin_serve requires --socket <path>");

    sched::CampaignService::Config cfg =
        tools::serviceConfigFromArgs(args);
    tools::startTelemetry(args);
    sched::CampaignService svc(cfg);

    if (::pipe(g_shutdownPipe) != 0)
        fatal("merlin_serve: pipe(): ", std::strerror(errno));
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    // A client that disconnects mid-reply must cost us an EPIPE error
    // on its own session, never a process-wide SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    const int listen_fd = io::wireListen(socket_path);
    std::printf("merlin_serve: listening on %s (store %s, jobs %u, "
                "sections %u)\n",
                socket_path.c_str(),
                cfg.storePath.empty() ? "<memory>"
                                      : cfg.storePath.c_str(),
                cfg.jobs, cfg.sections);
    std::fflush(stdout);

    SessionRegistry registry;

    for (;;) {
        pollfd fds[2] = {
            {listen_fd, POLLIN, 0},
            {g_shutdownPipe[0], POLLIN, 0},
        };
        const int n = ::poll(fds, 2, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("merlin_serve: poll(): ", std::strerror(errno));
        }
        if (fds[1].revents & POLLIN)
            break; // shutdown requested (signal or wire)
        if (!(fds[0].revents & POLLIN))
            continue;
        const int client_fd = io::wireAccept(listen_fd);
        if (client_fd < 0)
            break; // listener closed under us
        auto session = std::make_shared<Session>(client_fd);
        {
            std::lock_guard<std::mutex> lk(registry.mu);
            registry.sessions.push_back(session);
        }
        session->thread = std::thread(
            [session, &svc] { runSession(session, svc); });
    }

    // Graceful drain: no new clients, no new submissions; queued work
    // is cancelled under the SIGTERM policy (a wire `shutdown` chose
    // its own flag); running campaigns complete, persist, and close
    // their journals before we exit.
    ::close(listen_fd);
    svc.beginShutdown(g_cancelQueued.load());
    {
        std::lock_guard<std::mutex> lk(registry.mu);
        for (const auto &s : registry.sessions)
            s->conn.shutdownBoth();
    }
    for (const auto &s : registry.sessions) {
        if (s->thread.joinable())
            s->thread.join();
    }
    svc.drain();
    ::unlink(socket_path.c_str());
    ::close(g_shutdownPipe[0]);
    ::close(g_shutdownPipe[1]);
    tools::finishTelemetry(args);
    std::printf("merlin_serve: drained, exiting\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Args args = Args::parse(argc, argv, 1);
        tools::requireKnownFlags(args,
                                 {"socket", "store", "jobs", "sections",
                                  "no-timing", "inject-wall-limit",
                                  "quarantine", "trace", "metrics"},
                                 "merlin_serve");
        return serve(args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
